// Benchmarks regenerating the paper's evaluation artefacts (§V). Each
// benchmark drives the calibrated simulation and reports the *simulated*
// metric the paper measured — sim-us/op for offload costs (Fig. 9),
// sim-GiB/s for transfer bandwidths (Fig. 10 / Table IV). Wall-clock ns/op
// is reported by the framework as usual but is not the number under study.
//
// Run with: go test -bench=. -benchmem
package hamoffload_test

import (
	"fmt"
	"sync"
	"testing"

	"hamoffload/bench"
	"hamoffload/internal/units"
)

// --- Fig. 9: function offload cost, VH to local VE -------------------------

func reportFig9(b *testing.B, measure func(bench.Fig9Config) (float64, error)) {
	b.Helper()
	reps := b.N
	if reps > 2000 {
		reps = 2000 // averages are converged long before this
	}
	us, err := measure(bench.Fig9Config{Reps: reps})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(us, "sim-us/op")
}

// BenchmarkFig9VEONative is the paper's baseline: a native veo_call_async
// offload of an empty kernel (paper: ≈80 µs, derived).
func BenchmarkFig9VEONative(b *testing.B) {
	reportFig9(b, bench.MeasureVEONative)
}

// BenchmarkFig9HAMOverVEO is HAM-Offload with the §III-D VEO protocol
// (paper: 5.4× the native call ≈ 430 µs).
func BenchmarkFig9HAMOverVEO(b *testing.B) {
	reportFig9(b, func(c bench.Fig9Config) (float64, error) {
		return bench.MeasureHAMEmpty(c, false)
	})
}

// BenchmarkFig9HAMOverDMA is HAM-Offload with the §IV-B DMA protocol
// (paper: 6.1 µs, 13.1× faster than native VEO).
func BenchmarkFig9HAMOverDMA(b *testing.B) {
	reportFig9(b, func(c bench.Fig9Config) (float64, error) {
		return bench.MeasureHAMEmpty(c, true)
	})
}

// BenchmarkFig9SecondSocket offloads over UPI from socket 1 (§V-A: adds up
// to ~1 µs to the DMA measurement).
func BenchmarkFig9SecondSocket(b *testing.B) {
	reps := b.N
	if reps > 2000 {
		reps = 2000
	}
	us, err := bench.MeasureHAMEmpty(bench.Fig9Config{Reps: reps, Socket: 1}, true)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(us, "sim-us/op")
}

// --- Fig. 10 / Table IV: transfer bandwidth sweeps --------------------------

// The full sweep is expensive (real bytes move through the simulated
// memories), so it runs once and is shared by all bandwidth benchmarks.
var (
	sweepOnce sync.Once
	sweepData []bench.Series
	sweepErr  error
)

func sweep(b *testing.B) []bench.Series {
	b.Helper()
	sweepOnce.Do(func() {
		sweepData, sweepErr = bench.Fig10(bench.Fig10Config{Reps: 2})
	})
	if sweepErr != nil {
		b.Fatal(sweepErr)
	}
	return sweepData
}

func reportSeries(b *testing.B, method, dir string, sizes []int64) {
	b.Helper()
	for _, s := range sweep(b) {
		if s.Method != method || s.Direction != dir {
			continue
		}
		for _, size := range sizes {
			p, ok := s.At(size)
			if !ok {
				b.Fatalf("no point at %d", size)
			}
			b.Run(units.Bytes(size).String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					// The measurement is the deterministic simulated point;
					// iterations only steady the wall-clock column.
					_ = p
				}
				b.ReportMetric(p.GiBps, "sim-GiB/s")
				b.ReportMetric(p.US, "sim-us/op")
			})
		}
		return
	}
	b.Fatalf("missing series %s %s", method, dir)
}

var fig10Sizes = []int64{
	8, 256, (64 * units.KiB).Int64(), units.MiB.Int64(), (256 * units.MiB).Int64(),
}

var instSizes = []int64{8, 256, (64 * units.KiB).Int64(), (4 * units.MiB).Int64()}

// BenchmarkFig10VEOWrite is the "VEO Read/Write" series, VH ⇒ VE panel
// (paper peak: 9.9 GiB/s, saturating around 64 MiB).
func BenchmarkFig10VEOWrite(b *testing.B) {
	reportSeries(b, bench.MethodVEO, bench.DirDown, fig10Sizes)
}

// BenchmarkFig10VEORead is the VE ⇒ VH panel (paper peak: 10.4 GiB/s).
func BenchmarkFig10VEORead(b *testing.B) {
	reportSeries(b, bench.MethodVEO, bench.DirUp, fig10Sizes)
}

// BenchmarkFig10UserDMADown is "VE User DMA", VH ⇒ VE (paper peak:
// 10.6 GiB/s, near peak from ~1 MiB).
func BenchmarkFig10UserDMADown(b *testing.B) {
	reportSeries(b, bench.MethodDMA, bench.DirDown, fig10Sizes)
}

// BenchmarkFig10UserDMAUp is VE ⇒ VH (paper peak: 11.1 GiB/s).
func BenchmarkFig10UserDMAUp(b *testing.B) {
	reportSeries(b, bench.MethodDMA, bench.DirUp, fig10Sizes)
}

// BenchmarkFig10LHM is the "VE SHM/LHM" series, VH ⇒ VE direction: LHM
// loads, capped at 4 MiB as in the paper (peak 0.01 GiB/s).
func BenchmarkFig10LHM(b *testing.B) {
	reportSeries(b, bench.MethodInst, bench.DirDown, instSizes)
}

// BenchmarkFig10SHM is the VE ⇒ VH direction: SHM stores (peak 0.06 GiB/s;
// fastest method below 256 B).
func BenchmarkFig10SHM(b *testing.B) {
	reportSeries(b, bench.MethodInst, bench.DirUp, instSizes)
}

// BenchmarkTableIV reports the whole max-bandwidth table as metrics.
func BenchmarkTableIV(b *testing.B) {
	rows := bench.TableIV(sweep(b))
	for i := 0; i < b.N; i++ {
		_ = rows
	}
	for _, r := range rows {
		tag := map[string]string{
			bench.MethodVEO:  "veo",
			bench.MethodDMA:  "udma",
			bench.MethodInst: "inst",
		}[r.Method]
		b.ReportMetric(r.DownGiBps, fmt.Sprintf("%s-down-GiB/s", tag))
		b.ReportMetric(r.UpGiBps, fmt.Sprintf("%s-up-GiB/s", tag))
	}
}

// --- Ablations (DESIGN.md §5) -----------------------------------------------

// BenchmarkAblationResultPath compares SHM vs user-DMA result return in the
// DMA protocol (§V-B's small-message finding).
func BenchmarkAblationResultPath(b *testing.B) {
	rows, err := bench.AblateResultPath()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = rows
	}
	b.ReportMetric(rows[0].Value, "shm-sim-us/op")
	b.ReportMetric(rows[1].Value, "dma-sim-us/op")
}

// BenchmarkAblationBufferCount measures async pipelining against the slot
// count.
func BenchmarkAblationBufferCount(b *testing.B) {
	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("buffers=%d", n), func(b *testing.B) {
			rows, err := bench.AblateBufferCount([]int{n}, 32)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				_ = rows
			}
			b.ReportMetric(rows[0].Value, "sim-us/op")
		})
	}
}

// BenchmarkRemoteOffload reports the §VI-outlook cluster numbers: local and
// remote empty-offload cost over InfiniBand.
func BenchmarkRemoteOffload(b *testing.B) {
	reps := b.N
	if reps > 500 {
		reps = 500
	}
	r, err := bench.Remote(reps)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(r.LocalUS, "local-sim-us/op")
	b.ReportMetric(r.RemoteUS, "remote-sim-us/op")
}

// BenchmarkPutGet reports the public-API data path at 64 MiB (rides the VEO
// read/write curves of Fig. 10).
func BenchmarkPutGet(b *testing.B) {
	pts, err := bench.PutGet([]int64{(64 * units.MiB).Int64()}, 2)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = pts
	}
	b.ReportMetric(pts[0].PutGiBps, "put-sim-GiB/s")
	b.ReportMetric(pts[0].GetGiBps, "get-sim-GiB/s")
}

// BenchmarkGranularity reports the protocol speedup at the paper-companion's
// application-relevant kernel grain (~100 µs).
func BenchmarkGranularity(b *testing.B) {
	rows, err := bench.AblateGranularity([]float64{100})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		_ = rows
	}
	b.ReportMetric(rows[0].VEOUS, "veo-sim-us/op")
	b.ReportMetric(rows[0].DMAUS, "dma-sim-us/op")
	b.ReportMetric(rows[0].Speedup, "speedup-x")
}
