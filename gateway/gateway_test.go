package gateway_test

import (
	"encoding/json"
	"errors"
	"testing"

	"hamoffload/gateway"
	"hamoffload/internal/faults"
	"hamoffload/machine"
	"hamoffload/offload"
	"hamoffload/sched"
)

// gwWork is the test kernel: a small roofline-charged vector loop so
// offloads take a few microseconds of simulated time each.
var gwWork = offload.NewFunc1[offload.Unit]("gateway.test_work",
	func(c *offload.Ctx, n int64) (offload.Unit, error) {
		c.ChargeVector(n*100_000, n*12_500, 8)
		return offload.Unit{}, nil
	})

// withGateway runs fn on a fresh simulated machine with a DMA-connected
// runtime and a gateway over its VE nodes.
func withGateway(t *testing.T, ves int, cfg gateway.Config, fn func(p *machine.Proc, gw *gateway.Gateway[offload.Unit])) {
	t.Helper()
	m, err := machine.New(machine.Config{VEs: ves})
	if err != nil {
		t.Fatalf("machine.New: %v", err)
	}
	err = m.RunMain(func(p *machine.Proc) error {
		rt, cerr := machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		if cerr != nil {
			return cerr
		}
		defer func() { _ = rt.Finalize() }()
		nodes := make([]offload.NodeID, ves)
		for i := range nodes {
			nodes[i] = offload.NodeID(i + 1)
		}
		gw, gerr := gateway.New[offload.Unit](rt, nodes, cfg)
		if gerr != nil {
			return gerr
		}
		fn(p, gw)
		return nil
	})
	if err != nil {
		t.Fatalf("RunMain: %v", err)
	}
}

func TestTenantQuotaRefill(t *testing.T) {
	cfg := gateway.Config{
		Tenants: []gateway.TenantConfig{
			{Name: "metered", Burst: 2, Refill: 10 * machine.Microsecond},
			{Name: "free"},
		},
	}
	withGateway(t, 2, cfg, func(p *machine.Proc, gw *gateway.Gateway[offload.Unit]) {
		// Burst of 2 admits exactly 2.
		for i := 0; i < 2; i++ {
			if _, err := gw.Submit(0, gateway.LatencyCritical, gwWork.Bind(1)); err != nil {
				t.Fatalf("submit %d within burst: %v", i, err)
			}
		}
		if _, err := gw.Submit(0, gateway.LatencyCritical, gwWork.Bind(1)); !errors.Is(err, gateway.ErrQuota) {
			t.Fatalf("want ErrQuota past burst, got %v", err)
		}
		// The unmetered tenant is unaffected.
		if _, err := gw.Submit(1, gateway.Batch, gwWork.Bind(1)); err != nil {
			t.Fatalf("unmetered tenant rejected: %v", err)
		}
		// One Refill interval restores exactly one token.
		p.Sleep(10 * machine.Microsecond)
		if _, err := gw.Submit(0, gateway.LatencyCritical, gwWork.Bind(1)); err != nil {
			t.Fatalf("submit after refill: %v", err)
		}
		if _, err := gw.Submit(0, gateway.LatencyCritical, gwWork.Bind(1)); !errors.Is(err, gateway.ErrQuota) {
			t.Fatalf("want ErrQuota after spending refilled token, got %v", err)
		}
		// A long idle refills to Burst, not beyond.
		p.Sleep(100 * machine.Microsecond)
		for i := 0; i < 2; i++ {
			if _, err := gw.Submit(0, gateway.LatencyCritical, gwWork.Bind(1)); err != nil {
				t.Fatalf("submit %d after long idle: %v", i, err)
			}
		}
		if _, err := gw.Submit(0, gateway.LatencyCritical, gwWork.Bind(1)); !errors.Is(err, gateway.ErrQuota) {
			t.Fatalf("want ErrQuota: bucket must cap at Burst, got %v", err)
		}
		gw.Drain()
		r := gw.Report()
		if r.Tenants[0].Admitted != 5 || r.Tenants[0].Rejected != 3 {
			t.Fatalf("tenant 0 accounting = %+v, want 5 admitted / 3 rejected", r.Tenants[0])
		}
	})
}

func TestClassShareOverload(t *testing.T) {
	// MaxQueued 10 with 6:3:1 weights gives strict queue shares 6/3/1.
	cfg := gateway.Config{MaxQueued: 10, Window: 1, MaxBatch: 1}
	withGateway(t, 1, cfg, func(p *machine.Proc, gw *gateway.Gateway[offload.Unit]) {
		// First best-effort issues immediately (window 1), second queues and
		// fills the class's share of 1, third must bounce.
		for i := 0; i < 2; i++ {
			if _, err := gw.Submit(0, gateway.BestEffort, gwWork.Bind(1)); err != nil {
				t.Fatalf("best-effort %d: %v", i, err)
			}
		}
		if _, err := gw.Submit(0, gateway.BestEffort, gwWork.Bind(1)); !errors.Is(err, gateway.ErrOverloaded) {
			t.Fatalf("want ErrOverloaded for best-effort past share, got %v", err)
		}
		// Batch share (3) is untouched by best-effort pressure.
		for i := 0; i < 3; i++ {
			if _, err := gw.Submit(0, gateway.Batch, gwWork.Bind(1)); err != nil {
				t.Fatalf("batch %d: %v", i, err)
			}
		}
		if _, err := gw.Submit(0, gateway.Batch, gwWork.Bind(1)); !errors.Is(err, gateway.ErrOverloaded) {
			t.Fatalf("want ErrOverloaded for batch past share, got %v", err)
		}
		// Latency-critical share (6) still has full headroom.
		for i := 0; i < 6; i++ {
			if _, err := gw.Submit(0, gateway.LatencyCritical, gwWork.Bind(1)); err != nil {
				t.Fatalf("latency-critical %d: %v", i, err)
			}
		}
		gw.Drain()
		r := gw.Report()
		if got := r.Classes[gateway.BestEffort].RejectedShare; got != 1 {
			t.Fatalf("best-effort share rejections = %d, want 1", got)
		}
		if got := r.Classes[gateway.Batch].RejectedShare; got != 1 {
			t.Fatalf("batch share rejections = %d, want 1", got)
		}
		if got := r.Classes[gateway.LatencyCritical].RejectedShare; got != 0 {
			t.Fatalf("latency-critical share rejections = %d, want 0", got)
		}
	})
}

func TestWorkStealing(t *testing.T) {
	// Pin every placement onto VE 1; VE 2 only gets work by stealing.
	cfg := gateway.Config{
		Window:    2,
		MaxBatch:  1,
		Placement: sched.Affinity(func(task int) offload.NodeID { return 1 }),
	}
	withGateway(t, 2, cfg, func(p *machine.Proc, gw *gateway.Gateway[offload.Unit]) {
		tks := make([]*gateway.Ticket[offload.Unit], 0, 16)
		for i := 0; i < 16; i++ {
			tk, err := gw.Submit(0, gateway.LatencyCritical, gwWork.Bind(1))
			if err != nil {
				t.Fatalf("submit %d: %v", i, err)
			}
			tks = append(tks, tk)
		}
		gw.Drain()
		if gw.Steals() == 0 {
			t.Fatal("expected the idle VE to steal from the pinned queue")
		}
		r := gw.Report()
		if r.VEs[1].StolenIn == 0 || r.VEs[1].Issued == 0 {
			t.Fatalf("VE 2 should have stolen and issued work: %+v", r.VEs[1])
		}
		if r.VEs[0].Issued+r.VEs[1].Issued != 16 {
			t.Fatalf("issued %d + %d, want 16 total", r.VEs[0].Issued, r.VEs[1].Issued)
		}
		for i, tk := range tks {
			if !tk.Done() || tk.Err() != nil {
				t.Fatalf("ticket %d not cleanly settled: done=%v err=%v", i, tk.Done(), tk.Err())
			}
		}
	})
}

func TestInvalidSubmits(t *testing.T) {
	withGateway(t, 1, gateway.Config{}, func(p *machine.Proc, gw *gateway.Gateway[offload.Unit]) {
		if _, err := gw.Submit(1, gateway.Batch, gwWork.Bind(1)); !errors.Is(err, gateway.ErrTenant) {
			t.Fatalf("want ErrTenant for tenant out of range, got %v", err)
		}
		if _, err := gw.Submit(-1, gateway.Batch, gwWork.Bind(1)); !errors.Is(err, gateway.ErrTenant) {
			t.Fatalf("want ErrTenant for negative tenant, got %v", err)
		}
		if _, err := gw.Submit(0, gateway.Class(7), gwWork.Bind(1)); err == nil {
			t.Fatal("want error for invalid class")
		}
		gw.Drain()
	})
}

// runMixed drives one deterministic mixed workload and returns the report
// serialised to JSON.
func runMixed(t *testing.T, seed uint64) []byte {
	t.Helper()
	cfg := gateway.Config{
		Window:   4,
		MaxBatch: 4,
		Tenants: []gateway.TenantConfig{
			{Name: "starved", Burst: 8, Refill: 20 * machine.Microsecond},
			{Name: "heavy"},
		},
		KeepSamples: true,
	}
	var out []byte
	withGateway(t, 4, cfg, func(p *machine.Proc, gw *gateway.Gateway[offload.Unit]) {
		for i := 0; i < 600; i++ {
			r := faults.Mix(seed, uint64(i))
			class := gateway.Class(r % 3)
			tenant := int(r >> 8 % 2)
			_, err := gw.Submit(tenant, class, gwWork.Bind(int64(1+r%4)))
			if err != nil && !errors.Is(err, gateway.ErrQuota) && !errors.Is(err, gateway.ErrOverloaded) {
				t.Fatalf("submit %d: %v", i, err)
			}
			if r%5 == 0 {
				p.Sleep(machine.Duration(1+r%3) * machine.Microsecond)
				gw.Poll()
			}
		}
		gw.Drain()
		r := gw.Report()
		var sum int64
		for _, c := range r.Classes {
			if c.Completed != c.Admitted {
				t.Fatalf("class %s: completed %d != admitted %d", c.Class, c.Completed, c.Admitted)
			}
			if c.Failed != 0 {
				t.Fatalf("class %s: %d failures", c.Class, c.Failed)
			}
			sum += c.Admitted + c.RejectedQuota + c.RejectedShare
		}
		if sum != r.Submitted || r.Submitted != 600 {
			t.Fatalf("accounting leak: classes sum to %d, submitted %d", sum, r.Submitted)
		}
		var err error
		out, err = json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal report: %v", err)
		}
	})
	return out
}

func TestMixedWorkloadDeterministic(t *testing.T) {
	a := runMixed(t, 0xC0FFEE)
	b := runMixed(t, 0xC0FFEE)
	if string(a) != string(b) {
		t.Fatal("same seed must produce a byte-identical report")
	}
	c := runMixed(t, 0xBEEF)
	if string(a) == string(c) {
		t.Fatal("different seeds should not collide byte-for-byte")
	}
}
