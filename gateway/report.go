package gateway

import (
	"hamoffload/internal/telemetry"
)

// ClassReport is one QoS class's serving accounting.
type ClassReport struct {
	Class         Class
	Admitted      int64
	RejectedQuota int64 // rejected: tenant token bucket empty
	RejectedShare int64 // rejected: class queue share full
	Completed     int64
	Failed        int64
	SLO           telemetry.SLOReport
	// Samples holds every completed request's latency in µs of simulated
	// time, in completion order. Populated only with Config.KeepSamples.
	Samples []float64
}

// TenantReport is one tenant's admission accounting.
type TenantReport struct {
	Name     string
	Admitted int64
	Rejected int64
}

// VEReport is one target VE's dispatch accounting.
type VEReport struct {
	Node     int
	Issued   int64
	StolenIn int64 // requests stolen into this VE while it idled
	MaxQueue int   // high-water queue depth
}

// Report is the gateway's full accounting snapshot.
type Report struct {
	Submitted int64 // admission attempts (admitted + rejected)
	Steals    int64 // steal operations performed
	Classes   []ClassReport
	Tenants   []TenantReport
	VEs       []VEReport
}

// Report snapshots the gateway's accounting. Latency percentiles are exact
// over every completed request (histogram-quantised inside the SLO report;
// use KeepSamples for exact ranks).
func (g *Gateway[R]) Report() Report {
	r := Report{Submitted: g.submitted, Steals: g.steals}
	for c := range g.classes {
		cs := &g.classes[c]
		cr := ClassReport{
			Class:         Class(c),
			Admitted:      cs.admitted,
			RejectedQuota: cs.rejectedQuota,
			RejectedShare: cs.rejectedShare,
			Completed:     cs.completed,
			Failed:        cs.failed,
			SLO:           cs.slo.Report(),
		}
		if g.cfg.KeepSamples {
			cr.Samples = append([]float64(nil), cs.samples...)
		}
		r.Classes = append(r.Classes, cr)
	}
	for i := range g.tenants {
		name := "default"
		if i < len(g.cfg.Tenants) {
			name = g.cfg.Tenants[i].Name
		}
		r.Tenants = append(r.Tenants, TenantReport{
			Name:     name,
			Admitted: g.tenants[i].admitted,
			Rejected: g.tenants[i].rejected,
		})
	}
	for vi, node := range g.nodes {
		r.VEs = append(r.VEs, VEReport{
			Node:     int(node),
			Issued:   g.issued[vi],
			StolenIn: g.stolen[vi],
			MaxQueue: g.maxQueue[vi],
		})
	}
	return r
}

// Rejected returns the total rejections across classes (quota + share).
func (r Report) Rejected() int64 {
	var n int64
	for _, c := range r.Classes {
		n += c.RejectedQuota + c.RejectedShare
	}
	return n
}
