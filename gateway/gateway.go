// Package gateway is the million-offload serving layer over the HAM-Offload
// runtime: it fronts a set of VE targets with QoS-classed admission control,
// per-tenant token-bucket quotas, per-VE run queues with work stealing, and
// per-class SLO accounting — the operating regime of a many-tenant vector
// appliance rather than a single batch job (see docs/SERVING.md).
//
// Requests enter through Submit, which makes the full admission decision
// synchronously: the tenant's token bucket is charged (deterministic refill
// on the simulated clock), the request's QoS class must have room in its
// weighted share of the queue capacity, and only then is the request placed
// on a per-VE queue by the configured scheduling policy. Rejected requests
// never reach a queue — the caller gets ErrQuota or ErrOverloaded and the
// rejection is counted, traced (trace.PhaseAdmit) and recorded in telemetry.
//
// Dispatch is window-based: each VE runs at most Window offloads at a time.
// Latency-critical requests ship one per wire message; Batch and BestEffort
// requests coalesce into batch frames sized by however much contiguous
// backlog is waiting (up to MaxBatch), so amortisation grows exactly when
// queues do and evaporates when latency matters more than throughput. A VE
// that goes fully idle steals the back half of the longest queue
// (trace.PhaseSteal), keeping the fleet work-conserving under skewed
// placement or a gray-degraded card.
//
// Everything is deterministic: time comes from the runtime's simulated
// clock, all state lives in slices indexed by VE/class/tenant, and the only
// randomness is whatever the caller's traffic carries. Two runs of the same
// workload produce bit-identical reports.
package gateway

import (
	"errors"
	"fmt"

	"hamoffload/internal/core"
	"hamoffload/internal/simtime"
	"hamoffload/internal/telemetry"
	"hamoffload/internal/trace"
	"hamoffload/sched"
)

// Class is a request's quality-of-service class.
type Class uint8

const (
	// LatencyCritical requests get the largest admission share and never
	// coalesce into batch frames: one request, one wire message.
	LatencyCritical Class = iota
	// Batch requests are throughput traffic: they coalesce into batch
	// frames with whatever contiguous backlog is queued behind them.
	Batch
	// BestEffort requests get the smallest admission share; they batch
	// like Batch traffic and are the first to be rejected under pressure.
	BestEffort

	// NumClasses is the number of QoS classes.
	NumClasses = 3
)

func (c Class) String() string {
	switch c {
	case LatencyCritical:
		return "latency-critical"
	case Batch:
		return "batch"
	case BestEffort:
		return "best-effort"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Admission rejection errors. Both are synchronous Submit results; a
// rejected request holds no gateway state.
var (
	// ErrQuota rejects a request whose tenant token bucket is empty.
	ErrQuota = errors.New("gateway: tenant quota exhausted")
	// ErrOverloaded rejects a request whose QoS class has filled its
	// weighted share of the queue capacity.
	ErrOverloaded = errors.New("gateway: class queue share full")
	// ErrTenant rejects a tenant index outside the configured table.
	ErrTenant = errors.New("gateway: unknown tenant")
)

// IsRejection reports whether err is a normal admission rejection (quota or
// overload) rather than a dispatch failure.
func IsRejection(err error) bool {
	return errors.Is(err, ErrQuota) || errors.Is(err, ErrOverloaded)
}

// TenantConfig is one tenant's token-bucket quota. The bucket starts full,
// holds at most Burst tokens, and regains one token every Refill of
// simulated time — refill is computed arithmetically from the clock, so
// admission at time t depends only on t and the tenant's admission history,
// never on how often the gateway was polled.
type TenantConfig struct {
	Name string
	// Burst is the bucket capacity (default 64 when metered).
	Burst int
	// Refill grants one token per interval; zero or negative leaves the
	// tenant unmetered.
	Refill simtime.Duration
}

// Config parameterises a Gateway. The zero value of every field selects a
// sensible default.
type Config struct {
	// Weights splits MaxQueued between the QoS classes: class c may hold at
	// most MaxQueued*Weights[c]/sum queued requests. The shares are strict
	// partitions — unused best-effort capacity is not lent to batch traffic —
	// so a class's admission headroom never depends on another class's load.
	// Default 6:3:1.
	Weights [NumClasses]int
	// MaxQueued caps the total queued (admitted, not yet issued) requests
	// across all VE queues (default 4096).
	MaxQueued int
	// Window is the per-VE in-flight window: how many offloads may be
	// outstanding on one VE at a time (default 8).
	Window int
	// MaxBatch caps how many contiguous batchable requests one issue pops
	// into a single batch frame (default 8; 1 disables coalescing). New arms
	// the runtime's batching policy to match when it is not already armed.
	MaxBatch int
	// Tenants is the quota table; Submit takes an index into it. An empty
	// table means a single unmetered tenant 0.
	Tenants []TenantConfig
	// SLOTargets are the per-class latency objectives the SLO trackers
	// account against (defaults 60 µs, 300 µs, 1 ms).
	SLOTargets [NumClasses]simtime.Duration
	// SLOBudget is the violation budget per class (default 1%).
	SLOBudget float64
	// SLOWindow is the SLO accounting window length (default 500 µs).
	SLOWindow simtime.Duration
	// Placement picks the VE queue for an admitted request; it sees the
	// per-VE backlog (queued + in flight) as the in-flight slice. Default
	// sched.LeastInFlight.
	Placement sched.Policy
	// KeepSamples retains every completed request's latency (µs of
	// simulated time) per class, for percentile reporting by callers that
	// need exact ranks rather than histogram quantiles.
	KeepSamples bool
}

func (c Config) withDefaults() Config {
	if c.Weights == ([NumClasses]int{}) {
		c.Weights = [NumClasses]int{6, 3, 1}
	}
	for i, w := range c.Weights {
		if w <= 0 {
			c.Weights[i] = 1
		}
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 4096
	}
	if c.Window <= 0 {
		c.Window = 8
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.SLOTargets == ([NumClasses]simtime.Duration{}) {
		c.SLOTargets = [NumClasses]simtime.Duration{
			60 * simtime.Microsecond,
			300 * simtime.Microsecond,
			simtime.Millisecond,
		}
	}
	for i, d := range c.SLOTargets {
		if d <= 0 {
			c.SLOTargets[i] = 60 * simtime.Microsecond
		}
	}
	if c.SLOBudget <= 0 {
		c.SLOBudget = 0.01
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = 500 * simtime.Microsecond
	}
	if c.Placement == nil {
		c.Placement = sched.LeastInFlight()
	}
	c.Tenants = append([]TenantConfig(nil), c.Tenants...)
	for i := range c.Tenants {
		if c.Tenants[i].Refill > 0 && c.Tenants[i].Burst <= 0 {
			c.Tenants[i].Burst = 64
		}
	}
	return c
}

// Ticket is one admitted request's handle. The gateway settles it during
// Poll or Drain; afterwards Done reports true and Err/Latency are valid.
type Ticket[R any] struct {
	Tenant int
	Class  Class

	fn     core.Functor[R]
	fut    *core.Future[R]
	vi     int // index into the gateway's node list
	arrive simtime.Time
	done   bool
	val    R
	err    error
	lat    simtime.Duration
}

// Done reports whether the request has settled.
func (tk *Ticket[R]) Done() bool { return tk.done }

// Value returns the request's result; valid once Done.
func (tk *Ticket[R]) Value() (R, error) { return tk.val, tk.err }

// Err returns the settled request's error (nil on success).
func (tk *Ticket[R]) Err() error { return tk.err }

// Latency returns the admission-to-settle latency; ok once Done.
func (tk *Ticket[R]) Latency() (simtime.Duration, bool) { return tk.lat, tk.done }

// bucket is one tenant's token-bucket state.
type bucket struct {
	tokens int
	last   simtime.Time // refill high-water mark; remainder carries over
}

// fifo is a slice-backed FIFO with a moving head, compacted when the dead
// prefix outgrows the live tail.
type fifo[R any] struct {
	items []*Ticket[R]
	head  int
}

func (q *fifo[R]) len() int { return len(q.items) - q.head }

func (q *fifo[R]) push(tk *Ticket[R]) { q.items = append(q.items, tk) }

func (q *fifo[R]) at(i int) *Ticket[R] { return q.items[q.head+i] }

func (q *fifo[R]) pop() *Ticket[R] {
	tk := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head > len(q.items)/2 && q.head > 32 {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items = q.items[:n]
		q.head = 0
	}
	return tk
}

// stealTail removes the back k items (preserving order) for a thief.
func (q *fifo[R]) stealTail(k int) []*Ticket[R] {
	n := len(q.items)
	out := q.items[n-k:]
	q.items = q.items[:n-k]
	return out
}

// veQueue is one VE's run queue. Latency-critical requests wait in their
// own FIFO and always dispatch ahead of the bulk (batchable) FIFO, so a
// burst of batch traffic cannot head-of-line-block an interactive request
// that is still on the host.
type veQueue[R any] struct {
	lc   fifo[R]
	bulk fifo[R]
}

func (q *veQueue[R]) len() int { return q.lc.len() + q.bulk.len() }

func (q *veQueue[R]) push(tk *Ticket[R]) {
	if tk.Class == LatencyCritical {
		q.lc.push(tk)
	} else {
		q.bulk.push(tk)
	}
}

// classStats is one QoS class's accounting.
type classStats struct {
	admitted      int64
	rejectedQuota int64
	rejectedShare int64
	completed     int64
	failed        int64
	slo           *telemetry.SLO
	samples       []float64 // µs, only with KeepSamples
}

// tenantStats is one tenant's accounting.
type tenantStats struct {
	admitted int64
	rejected int64
}

// Gateway fronts a set of VE target nodes of one runtime. Like the rest of
// the initiator-side stack it is not safe for concurrent use; on the
// simulated backends everything runs on the single DES process.
type Gateway[R any] struct {
	rt    *core.Runtime
	cfg   Config
	nodes []core.NodeID

	queues   []veQueue[R]
	inflight []int
	issued   []int64
	stolen   []int64 // requests stolen INTO this VE
	maxQueue []int
	backlog  []int // placement scratch: queued + inflight per VE

	// infl holds each VE's issued, unsettled tickets in issue order. The
	// DMA target executes messages in arrival order, so testing only the
	// head of each FIFO is enough to discover settlements — one simulated
	// flag probe per VE per poll instead of one per in-flight request.
	infl    []fifo[R]
	batcher *core.Batcher

	queued        int
	queuedByClass [NumClasses]int
	classCap      [NumClasses]int

	buckets []bucket
	tenants []tenantStats
	classes [NumClasses]classStats

	steals    int64
	submitted int64
}

// New builds a gateway over rt's target nodes. The runtime's batching
// policy is armed to the gateway's MaxBatch when not already enabled, so
// batchable classes can coalesce.
func New[R any](rt *core.Runtime, nodes []core.NodeID, cfg Config) (*Gateway[R], error) {
	if len(nodes) == 0 {
		return nil, errors.New("gateway: no target nodes")
	}
	cfg = cfg.withDefaults()
	g := &Gateway[R]{
		rt:       rt,
		cfg:      cfg,
		nodes:    append([]core.NodeID(nil), nodes...),
		queues:   make([]veQueue[R], len(nodes)),
		infl:     make([]fifo[R], len(nodes)),
		inflight: make([]int, len(nodes)),
		issued:   make([]int64, len(nodes)),
		stolen:   make([]int64, len(nodes)),
		maxQueue: make([]int, len(nodes)),
		backlog:  make([]int, len(nodes)),
		batcher:  core.NewBatcher(rt),
		buckets:  make([]bucket, len(cfg.Tenants)),
		tenants:  make([]tenantStats, max(1, len(cfg.Tenants))),
	}
	sum := 0
	for _, w := range cfg.Weights {
		sum += w
	}
	for c := range g.classCap {
		g.classCap[c] = max(1, cfg.MaxQueued*cfg.Weights[c]/sum)
	}
	for i := range g.buckets {
		g.buckets[i] = bucket{tokens: cfg.Tenants[i].Burst, last: rt.SimNow()}
	}
	for c := range g.classes {
		g.classes[c].slo = telemetry.NewSLO(cfg.SLOTargets[c], cfg.SLOBudget, cfg.SLOWindow, 0)
	}
	if cfg.MaxBatch > 1 && !rt.Batching().Enabled() {
		rt.SetBatching(core.BatchPolicy{MaxMessages: cfg.MaxBatch})
	}
	return g, nil
}

// Nodes returns the gateway's target set in order.
func (g *Gateway[R]) Nodes() []core.NodeID {
	return append([]core.NodeID(nil), g.nodes...)
}

// takeToken charges tenant ti's bucket at simulated time now, refilling
// first. Unmetered tenants always pass.
func (g *Gateway[R]) takeToken(ti int, now simtime.Time) bool {
	if ti >= len(g.buckets) {
		return true // empty tenant table: single unmetered tenant
	}
	tc := g.cfg.Tenants[ti]
	if tc.Refill <= 0 {
		return true
	}
	b := &g.buckets[ti]
	if dt := now.Sub(b.last); dt > 0 {
		n := int64(dt / tc.Refill)
		if n > 0 {
			b.tokens += int(n)
			if b.tokens > tc.Burst {
				b.tokens = tc.Burst
			}
			b.last = b.last.Add(simtime.Duration(n) * tc.Refill)
		}
	}
	if b.tokens <= 0 {
		return false
	}
	b.tokens--
	return true
}

// Submit runs the admission decision for one request and, if admitted,
// places it on a VE queue and pumps the dispatch windows. The returned
// ticket settles during a later Poll or Drain. A rejection returns a nil
// ticket and ErrTenant, ErrQuota or ErrOverloaded.
func (g *Gateway[R]) Submit(tenant int, class Class, fn core.Functor[R]) (*Ticket[R], error) {
	if tenant < 0 || class >= NumClasses ||
		(len(g.cfg.Tenants) > 0 && tenant >= len(g.cfg.Tenants)) ||
		(len(g.cfg.Tenants) == 0 && tenant != 0) {
		if class >= NumClasses {
			return nil, fmt.Errorf("gateway: invalid class %d", class)
		}
		return nil, fmt.Errorf("%w: %d", ErrTenant, tenant)
	}
	now := g.rt.SimNow()
	tel := g.rt.Telemetry()
	g.submitted++
	if !g.takeToken(tenant, now) {
		g.classes[class].rejectedQuota++
		g.tenants[tenant].rejected++
		g.rt.Tracer().Instant(trace.PhaseAdmit,
			fmt.Sprintf("reject quota tenant %d %s", tenant, class), g.submitted)
		tel.Add(int(g.rt.ThisNode()), telemetry.SeriesGatewayReject, now, 1)
		return nil, fmt.Errorf("%w: tenant %d", ErrQuota, tenant)
	}
	if g.queuedByClass[class] >= g.classCap[class] {
		g.classes[class].rejectedShare++
		g.tenants[tenant].rejected++
		g.rt.Tracer().Instant(trace.PhaseAdmit,
			fmt.Sprintf("reject overload %s", class), g.submitted)
		tel.Add(int(g.rt.ThisNode()), telemetry.SeriesGatewayReject, now, 1)
		return nil, fmt.Errorf("%w: class %s", ErrOverloaded, class)
	}
	for i := range g.nodes {
		g.backlog[i] = g.queues[i].len() + g.inflight[i]
	}
	vi := g.cfg.Placement.Pick(int(g.submitted), g.nodes, g.backlog)
	tk := &Ticket[R]{Tenant: tenant, Class: class, fn: fn, vi: vi, arrive: now}
	g.queues[vi].push(tk)
	g.queued++
	g.queuedByClass[class]++
	g.classes[class].admitted++
	g.tenants[tenant].admitted++
	if n := g.queues[vi].len(); n > g.maxQueue[vi] {
		g.maxQueue[vi] = n
	}
	tel.Add(int(g.rt.ThisNode()), telemetry.SeriesGatewayAdmit, now, 1)
	tel.Gauge(int(g.nodes[vi]), telemetry.SeriesGatewayQueue, now, int64(g.queues[vi].len()))
	g.pump()
	return tk, nil
}

// settle records one ticket's completion. It runs from the future's
// OnSettle hook, i.e. during Poll's Test sweep or a Drain Get.
func (g *Gateway[R]) settle(tk *Ticket[R]) {
	now := g.rt.SimNow()
	tk.done = true
	tk.val, tk.err = tk.fut.Get() // already settled: returns immediately
	tk.lat = now.Sub(tk.arrive)
	g.inflight[tk.vi]--
	cs := &g.classes[tk.Class]
	cs.completed++
	if tk.err != nil {
		cs.failed++
	}
	cs.slo.Observe(now, tk.lat)
	if g.cfg.KeepSamples {
		cs.samples = append(cs.samples, tk.lat.Microseconds())
	}
}

// steal moves the back half of the longest queue to idle VE vi. It returns
// false when no queue has at least two waiting requests.
func (g *Gateway[R]) steal(vi int) bool {
	victim, best := -1, 1
	for j := range g.queues {
		if j == vi {
			continue
		}
		if n := g.queues[j].len(); n > best {
			victim, best = j, n
		}
	}
	if victim < 0 {
		return false
	}
	k := best / 2
	now := g.rt.SimNow()
	// Take bulk work first — moving batchables costs the victim nothing it
	// was about to do — and dip into the latency-critical FIFO only when the
	// backlog is mostly interactive.
	vq := &g.queues[victim]
	kBulk := min(k, vq.bulk.len())
	moved := append([]*Ticket[R](nil), vq.bulk.stealTail(kBulk)...)
	if kBulk < k {
		moved = append(moved, vq.lc.stealTail(k-kBulk)...)
	}
	for _, tk := range moved {
		tk.vi = vi
		g.queues[vi].push(tk)
	}
	g.steals++
	g.stolen[vi] += int64(k)
	g.rt.Tracer().Instant(trace.PhaseSteal,
		fmt.Sprintf("ve %d steals %d of %d from ve %d", g.nodes[vi], k, best, g.nodes[victim]), g.steals)
	tel := g.rt.Telemetry()
	tel.Add(int(g.nodes[vi]), telemetry.SeriesGatewaySteals, now, int64(k))
	tel.Gauge(int(g.nodes[victim]), telemetry.SeriesGatewayQueue, now, int64(g.queues[victim].len()))
	tel.Gauge(int(g.nodes[vi]), telemetry.SeriesGatewayQueue, now, int64(g.queues[vi].len()))
	if n := g.queues[vi].len(); n > g.maxQueue[vi] {
		g.maxQueue[vi] = n
	}
	return true
}

// pump fills every VE's dispatch window from its queue, stealing into fully
// idle VEs first. Latency-critical requests issue one per message; batchable
// runs coalesce into batch frames (see issue).
func (g *Gateway[R]) pump() {
	for vi := range g.nodes {
		for g.inflight[vi] < g.cfg.Window {
			if g.queues[vi].len() == 0 {
				if g.inflight[vi] > 0 || !g.steal(vi) {
					break
				}
			}
			if !g.issue(vi) {
				break
			}
		}
	}
}

// issue ships one dispatch unit from VE vi's queue: a single
// latency-critical message, or one batch frame of bulk requests. It returns
// false when it declines to ship (nothing runnable, or a partial frame held
// back to fill).
func (g *Gateway[R]) issue(vi int) bool {
	q := &g.queues[vi]
	node := g.nodes[vi]
	if q.lc.len() > 0 {
		tk := q.lc.pop()
		g.noteIssued(tk, vi)
		tk.fut = core.Async(g.rt, node, tk.fn)
		g.track(tk)
		return true
	}
	run := min(g.cfg.Window-g.inflight[vi], g.cfg.MaxBatch, q.bulk.len())
	if run == 0 {
		return false
	}
	// Nagle-style frame building: while the VE has in-flight work covering
	// the wait, hold a partial frame back so it can fill to MaxBatch — the
	// amortisation is what buys bulk throughput. An idle VE ships whatever
	// it has; the held frame ships at the latest when the window drains.
	if g.inflight[vi] > 0 && run < g.cfg.MaxBatch {
		return false
	}
	for i := 0; i < run; i++ {
		tk := q.bulk.pop()
		g.noteIssued(tk, vi)
		tk.fut = core.BatchAdd(g.batcher, node, tk.fn)
		g.track(tk)
	}
	g.batcher.Flush(node)
	return true
}

// noteIssued moves one ticket's accounting from queued to in flight.
func (g *Gateway[R]) noteIssued(tk *Ticket[R], vi int) {
	g.queued--
	g.queuedByClass[tk.Class]--
	g.inflight[vi]++
	g.issued[vi]++
}

// track registers the settle hook and adds tk to its VE's in-flight FIFO.
func (g *Gateway[R]) track(tk *Ticket[R]) {
	tk.fut.OnSettle(func() { g.settle(tk) })
	g.infl[tk.vi].push(tk)
}

// Poll harvests settled requests without blocking and refills the dispatch
// windows. It probes only the oldest in-flight request of each VE (the DMA
// target settles in issue order, so the head gates the rest) and returns
// how many requests settled. Callers drive it from their event loop
// between arrivals. A backend that settles out of order only delays
// discovery to the next Drain — nothing is lost.
func (g *Gateway[R]) Poll() int {
	settled := 0
	for vi := range g.infl {
		q := &g.infl[vi]
		for q.len() > 0 {
			tk := q.at(0)
			if !tk.done && !tk.fut.Test() {
				break
			}
			q.pop()
			settled++
		}
	}
	g.pump()
	return settled
}

// Drain blocks until every admitted request has settled, pumping queues as
// windows free up. Time advances on the simulated clock while it waits.
func (g *Gateway[R]) Drain() {
	for {
		g.Poll()
		var head *Ticket[R]
		for vi := range g.infl {
			if g.infl[vi].len() > 0 {
				head = g.infl[vi].at(0)
				break
			}
		}
		if head == nil {
			if g.queued != 0 {
				// Queues non-empty with nothing in flight cannot happen: pump
				// always issues when a window is free. Guard anyway.
				panic("gateway: queued requests with no in-flight work")
			}
			return
		}
		// Block on a VE's oldest in-flight request; its settlement advances
		// the clock and usually settles neighbours, which the next Poll
		// sweep harvests.
		head.fut.Get()
	}
}

// InFlight returns the total number of issued, unsettled requests.
func (g *Gateway[R]) InFlight() int {
	n := 0
	for vi := range g.infl {
		n += g.infl[vi].len()
	}
	return n
}

// Queued returns the total number of admitted, not yet issued requests.
func (g *Gateway[R]) Queued() int { return g.queued }

// Steals returns how many steal operations have run.
func (g *Gateway[R]) Steals() int64 { return g.steals }
