package bench

import (
	"fmt"

	"hamoffload/internal/dma"
	"hamoffload/internal/pcie"
	"hamoffload/internal/units"
	"hamoffload/machine"
)

// Method and direction labels, matching Fig. 10's legend.
const (
	MethodVEO  = "VEO Read/Write"
	MethodDMA  = "VE User DMA"
	MethodInst = "VE SHM/LHM"

	DirDown = "VH=>VE"
	DirUp   = "VE=>VH"
)

// Fig10Config parameterises the bandwidth sweep. The paper swept each size
// 10³ times after warm-ups; the deterministic simulation needs fewer.
type Fig10Config struct {
	Socket  int
	MinSize int64 // default 8 B
	MaxSize int64 // default 256 MiB
	// InstMaxSize caps the SHM/LHM series (default 4 MiB — the paper
	// stopped there "due to prohibitive runtimes").
	InstMaxSize int64
	Reps        int // default 3
	Warmup      int // default 1
	// Machine knobs for the ablations.
	HugePages       *bool
	NaiveDMAManager bool
}

func (c *Fig10Config) fill() {
	if c.MinSize <= 0 {
		c.MinSize = 8
	}
	if c.MaxSize <= 0 {
		c.MaxSize = (256 * units.MiB).Int64()
	}
	if c.InstMaxSize <= 0 {
		c.InstMaxSize = (4 * units.MiB).Int64()
	}
	if c.InstMaxSize > c.MaxSize {
		c.InstMaxSize = c.MaxSize
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Warmup <= 0 {
		c.Warmup = 1
	}
}

// Fig10 runs the full bandwidth sweep: three transfer methods, both
// directions. It returns six series (SHM/LHM capped at InstMaxSize).
func Fig10(cfg Fig10Config) ([]Series, error) {
	cfg.fill()
	m, err := machine.New(machine.Config{
		VEs:             1,
		Socket:          cfg.Socket,
		HugePages:       cfg.HugePages,
		NaiveDMAManager: cfg.NaiveDMAManager,
		HostMemoryBytes: cfg.MaxSize*4 + (64 * units.MiB).Int64(),
		VEMemoryBytes:   cfg.MaxSize*2 + (64 * units.MiB).Int64(),
	})
	if err != nil {
		return nil, err
	}

	series := []Series{
		{Method: MethodVEO, Direction: DirDown},
		{Method: MethodVEO, Direction: DirUp},
		{Method: MethodDMA, Direction: DirDown},
		{Method: MethodDMA, Direction: DirUp},
		{Method: MethodInst, Direction: DirDown},
		{Method: MethodInst, Direction: DirUp},
	}

	err = m.RunMain(func(p *machine.Proc) error {
		card := m.Cards[0]
		host := card.Host

		// Buffers: a host heap buffer for VEO transfers, a shm segment
		// (DMAATB registered) for the VE-initiated methods, and a VE buffer.
		hostBuf, err := host.Alloc(cfg.MaxSize)
		if err != nil {
			return err
		}
		seg, err := host.ShmCreate(cfg.MaxSize)
		if err != nil {
			return err
		}
		veBuf, err := card.Mem.Alloc(cfg.MaxSize)
		if err != nil {
			return err
		}
		shmVEHVA, err := card.Mem.ATB().Register(host.Mem, seg.Addr, seg.Size)
		if err != nil {
			return err
		}
		veVEHVA, err := card.Mem.ATB().Register(card.Mem.HBM, veBuf, cfg.MaxSize)
		if err != nil {
			return err
		}
		p.Sleep(2 * card.Timing.DMAATBRegister)

		udma := dma.NewUserDMA(m.Eng, "bench", card.Timing, card.Mem.ATB(), card.Path)
		instr := dma.NewInstr(card.Timing, card.Mem.ATB(), card.Path)
		instBuf := make([]byte, cfg.InstMaxSize)

		for size := cfg.MinSize; size <= cfg.MaxSize; size *= 2 {
			sz := size
			ops := []struct {
				idx int
				op  func() error
			}{
				// VEO write: VH → VE via privileged DMA.
				{0, func() error { return card.DMAWrite(p, uint64(veBuf), uint64(hostBuf), sz) }},
				// VEO read: VE → VH.
				{1, func() error { return card.DMARead(p, uint64(hostBuf), uint64(veBuf), sz) }},
				// User DMA read: VH shm → VE local (the ve_dma_post_wait API).
				{2, func() error { return udma.Post(p, dma.API, pcie.Down, veVEHVA, shmVEHVA, sz) }},
				// User DMA write: VE local → VH shm.
				{3, func() error { return udma.Post(p, dma.API, pcie.Up, shmVEHVA, veVEHVA, sz) }},
			}
			if sz <= cfg.InstMaxSize {
				buf := instBuf[:sz]
				ops = append(ops,
					// LHM: load host memory words into the VE.
					struct {
						idx int
						op  func() error
					}{4, func() error { return instr.LoadBytes(p, shmVEHVA, buf) }},
					// SHM: store VE words into host memory.
					struct {
						idx int
						op  func() error
					}{5, func() error { return instr.StoreBytes(p, shmVEHVA, buf) }},
				)
			}
			for _, o := range ops {
				us, err := timedLoop(p, cfg.Warmup, cfg.Reps, o.op)
				if err != nil {
					return fmt.Errorf("bench: %s %s at %s: %w",
						series[o.idx].Method, series[o.idx].Direction, sizeLabel(sz), err)
				}
				series[o.idx].Points = append(series[o.idx].Points,
					Point{Size: sz, GiBps: gibps(sz, us), US: us})
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return series, nil
}

// TableIV reduces a Fig. 10 sweep to the paper's Table IV: the maximum
// bandwidth per method and direction.
type TableIVRow struct {
	Method     string
	DownGiBps  float64 // VH ⇒ VE
	UpGiBps    float64 // VE ⇒ VH
	DownAtSize int64
	UpAtSize   int64
}

// TableIV computes the max-bandwidth table from sweep series.
func TableIV(series []Series) []TableIVRow {
	rows := map[string]*TableIVRow{}
	order := []string{}
	for _, s := range series {
		r, ok := rows[s.Method]
		if !ok {
			r = &TableIVRow{Method: s.Method}
			rows[s.Method] = r
			order = append(order, s.Method)
		}
		max := s.Max()
		if s.Direction == DirDown {
			r.DownGiBps, r.DownAtSize = max.GiBps, max.Size
		} else {
			r.UpGiBps, r.UpAtSize = max.GiBps, max.Size
		}
	}
	out := make([]TableIVRow, 0, len(order))
	for _, m := range order {
		out = append(out, *rows[m])
	}
	return out
}

// Crossover reports the largest size at which series a is still faster than
// series b (lower per-op time), or 0 when a never wins. It reproduces the
// §V-B observations: SHM beats user DMA up to 256 B and beats VEO reads for
// small messages.
func Crossover(a, b Series) int64 {
	var last int64
	for _, pa := range a.Points {
		pb, ok := b.At(pa.Size)
		if !ok {
			continue
		}
		if pa.US < pb.US {
			last = pa.Size
		}
	}
	return last
}
