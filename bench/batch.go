package bench

import (
	"fmt"
	"io"

	"hamoffload/machine"
	"hamoffload/offload"
)

// This file measures message batching (docs/BATCHING.md): how the one-flag,
// one-transfer batch frame amortises the DMA protocol's per-message cost as
// the batch size grows, against the Fig. 9 single-message baseline.

// BatchConfig parameterises the batch-amortisation experiment.
type BatchConfig struct {
	Socket int   // CPU socket the VH process is pinned to
	Reps   int   // timed batches per size (default 50)
	Warmup int   // warm-up batches per size (default 5)
	Sizes  []int // batch sizes to sweep (default 1,2,4,8,16,32)
}

func (c *BatchConfig) fill() {
	if c.Reps <= 0 {
		c.Reps = 50
	}
	if c.Warmup <= 0 {
		c.Warmup = 5
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{1, 2, 4, 8, 16, 32}
	}
}

// BatchPoint is one batch size's outcome.
type BatchPoint struct {
	BatchSize int
	BatchUS   float64 // whole-batch round trip, µs of simulated time
	PerMsgUS  float64 // BatchUS / BatchSize — the amortised per-message cost
	Speedup   float64 // single-message DMA cost / PerMsgUS
}

// BatchResult is the full sweep plus its single-message baseline.
type BatchResult struct {
	Socket   int
	SingleUS float64 // Fig. 9 HAM-DMA single sync offload
	Points   []BatchPoint
}

// Batch runs the batch-amortisation sweep over the DMA protocol on fresh
// machines and returns the per-size amortised costs.
func Batch(cfg BatchConfig) (BatchResult, error) {
	cfg.fill()
	res := BatchResult{Socket: cfg.Socket}

	single, err := MeasureHAMEmpty(Fig9Config{Socket: cfg.Socket, Reps: cfg.Reps, Warmup: cfg.Warmup}, true)
	if err != nil {
		return res, fmt.Errorf("bench: single-message baseline: %w", err)
	}
	res.SingleUS = single

	for _, k := range cfg.Sizes {
		us, err := MeasureBatchEmpty(cfg, k)
		if err != nil {
			return res, fmt.Errorf("bench: batch of %d: %w", k, err)
		}
		res.Points = append(res.Points, BatchPoint{
			BatchSize: k,
			BatchUS:   us * float64(k),
			PerMsgUS:  us,
			Speedup:   single / us,
		})
	}
	return res, nil
}

// MeasureBatchEmpty times batches of k empty offloads shipped as one batch
// frame over the DMA protocol and returns the amortised per-message cost in
// microseconds of simulated time.
func MeasureBatchEmpty(cfg BatchConfig, k int) (float64, error) {
	cfg.fill()
	if k < 1 {
		return 0, fmt.Errorf("bench: batch size must be >= 1, got %d", k)
	}
	samples, err := MeasureBatchEmptySamples(cfg, k)
	if err != nil {
		return 0, err
	}
	var sum float64
	for _, s := range samples {
		sum += s
	}
	return sum / float64(len(samples)), nil
}

// MeasureBatchEmptySamples is MeasureBatchEmpty returning one amortised
// per-message sample per timed batch instead of the mean.
func MeasureBatchEmptySamples(cfg BatchConfig, k int) ([]float64, error) {
	cfg.fill()
	m, err := machine.New(machine.Config{VEs: 1, Socket: cfg.Socket})
	if err != nil {
		return nil, err
	}
	var samples []float64
	err = m.RunMain(func(p *machine.Proc) error {
		rt, cerr := machine.ConnectDMA(p, m, machine.ProtocolOptions{
			Batch: offload.BatchPolicy{MaxMessages: k},
		})
		if cerr != nil {
			return cerr
		}
		defer func() { _ = rt.Finalize() }()
		fns := make([]offload.Functor[offload.Unit], k)
		for i := range fns {
			fns[i] = benchEmpty.Bind()
		}
		batch := func() error {
			_, err := offload.GetAll(offload.AsyncBatch(rt, 1, fns))
			return err
		}
		for i := 0; i < cfg.Warmup; i++ {
			if err := batch(); err != nil {
				return err
			}
		}
		for i := 0; i < cfg.Reps; i++ {
			start := p.Now()
			if err := batch(); err != nil {
				return err
			}
			samples = append(samples, p.Now().Sub(start).Microseconds()/float64(k))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return samples, nil
}

// MeasureHAMEmptySamples is MeasureHAMEmpty returning one latency sample per
// timed offload instead of the mean — the input of the regression baselines.
func MeasureHAMEmptySamples(cfg Fig9Config, dmaProtocol bool) ([]float64, error) {
	cfg.fill()
	m, err := machine.New(cfg.machineConfig())
	if err != nil {
		return nil, err
	}
	var samples []float64
	err = m.RunMain(func(p *machine.Proc) error {
		var rt *offload.Runtime
		var cerr error
		if dmaProtocol {
			rt, cerr = machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		} else {
			rt, cerr = machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		}
		if cerr != nil {
			return cerr
		}
		defer func() { _ = rt.Finalize() }()
		for i := 0; i < cfg.Warmup; i++ {
			if _, err := offload.Sync(rt, 1, benchEmpty.Bind()); err != nil {
				return err
			}
		}
		for i := 0; i < cfg.Reps; i++ {
			start := p.Now()
			if _, err := offload.Sync(rt, 1, benchEmpty.Bind()); err != nil {
				return err
			}
			samples = append(samples, p.Now().Sub(start).Microseconds())
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return samples, nil
}

// RenderBatch prints the sweep as a fixed-width table.
func RenderBatch(w io.Writer, r BatchResult) {
	fmt.Fprintf(w, "Batch amortisation — empty offloads, DMA protocol (socket %d)\n", r.Socket)
	fmt.Fprintf(w, "single sync offload: %8.2f us  (Fig. 9 HAM-DMA baseline)\n", r.SingleUS)
	fmt.Fprintf(w, "%8s  %12s  %12s  %8s\n", "batch", "batch us", "per-msg us", "speedup")
	for _, pt := range r.Points {
		fmt.Fprintf(w, "%8d  %12.2f  %12.2f  %7.2fx\n",
			pt.BatchSize, pt.BatchUS, pt.PerMsgUS, pt.Speedup)
	}
}
