package bench

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// RenderFig9 prints the offload-cost comparison in the style of the paper's
// horizontal bar chart, annotated with the quoted ratios.
func RenderFig9(w io.Writer, r Fig9Result) {
	fmt.Fprintf(w, "Function Offload Cost, VH to local VE (socket %d)\n", r.Socket)
	fmt.Fprintln(w, strings.Repeat("-", 64))
	rows := []struct {
		name string
		us   float64
	}{
		{"HAM-Offload (VEO transfer)", r.HAMVEOUS},
		{"VEO (native offload)", r.VEONativeUS},
		{"HAM-Offload (VE DMA)", r.HAMDMAUS},
	}
	max := 0.0
	for _, row := range rows {
		if row.us > max {
			max = row.us
		}
	}
	for _, row := range rows {
		bar := int(row.us / max * 40)
		if bar < 1 {
			bar = 1
		}
		fmt.Fprintf(w, "%-28s %8.1f us |%s\n", row.name, row.us, strings.Repeat("#", bar))
	}
	fmt.Fprintln(w, strings.Repeat("-", 64))
	fmt.Fprintf(w, "HAM-VEO / native VEO : %5.1fx   (paper:  5.4x)\n", r.HAMVEOOverNative)
	fmt.Fprintf(w, "native VEO / HAM-DMA : %5.1fx   (paper: 13.1x)\n", r.NativeOverDMA)
	fmt.Fprintf(w, "HAM-VEO / HAM-DMA    : %5.1fx   (paper: 70.8x)\n", r.HAMVEOOverDMA)
}

// RenderFig10 prints the four panels of Fig. 10: {direction} × {small ≤1 KiB,
// large} with one column per method.
func RenderFig10(w io.Writer, series []Series, smallCut int64) {
	if smallCut <= 0 {
		smallCut = 1024
	}
	for _, dir := range []string{DirDown, DirUp} {
		var cols []Series
		for _, s := range series {
			if s.Direction == dir {
				cols = append(cols, s)
			}
		}
		for _, panel := range []struct {
			name string
			keep func(int64) bool
		}{
			{"small messages (<= " + sizeLabel(smallCut) + ")", func(n int64) bool { return n <= smallCut }},
			{"large messages (> " + sizeLabel(smallCut) + ")", func(n int64) bool { return n > smallCut }},
		} {
			fmt.Fprintf(w, "\n%s, %s — bandwidth in GiB/s\n", dir, panel.name)
			fmt.Fprintf(w, "%-10s", "size")
			for _, c := range cols {
				fmt.Fprintf(w, " %16s", c.Method)
			}
			fmt.Fprintln(w)
			sizes := sizesOf(cols, panel.keep)
			for _, sz := range sizes {
				fmt.Fprintf(w, "%-10s", sizeLabel(sz))
				for _, c := range cols {
					if p, ok := c.At(sz); ok {
						fmt.Fprintf(w, " %16s", fmtGiBps(p.GiBps))
					} else {
						fmt.Fprintf(w, " %16s", "-")
					}
				}
				fmt.Fprintln(w)
			}
		}
	}
}

func sizesOf(series []Series, keep func(int64) bool) []int64 {
	seen := map[int64]bool{}
	var out []int64
	for _, s := range series {
		for _, p := range s.Points {
			if keep(p.Size) && !seen[p.Size] {
				seen[p.Size] = true
				out = append(out, p.Size)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RenderTableIV prints the maximum-bandwidth table next to the paper's
// numbers.
func RenderTableIV(w io.Writer, rows []TableIVRow) {
	paper := map[string][2]float64{
		MethodVEO:  {9.9, 10.4},
		MethodDMA:  {10.6, 11.1},
		MethodInst: {0.01, 0.06},
	}
	fmt.Fprintln(w, "Max. PCIe bandwidths between VH and VE (GiB/s)")
	fmt.Fprintf(w, "%-16s %12s %12s %14s %14s\n",
		"Transfer Method", "VH=>VE", "VE=>VH", "paper VH=>VE", "paper VE=>VH")
	for _, r := range rows {
		p := paper[r.Method]
		fmt.Fprintf(w, "%-16s %12s %12s %14s %14s\n",
			r.Method, fmtGiBps(r.DownGiBps), fmtGiBps(r.UpGiBps),
			fmtGiBps(p[0]), fmtGiBps(p[1]))
	}
}

// RenderAblation prints ablation rows as a two-column table.
func RenderAblation(w io.Writer, title string, rows []AblationRow) {
	fmt.Fprintln(w, title)
	fmt.Fprintln(w, strings.Repeat("-", len(title)))
	for _, r := range rows {
		fmt.Fprintf(w, "%-40s %10.3f %s\n", r.Config, r.Value, r.Unit)
	}
}

// RenderASCIIPlot draws a crude log-log bandwidth plot of the series for a
// direction, one letter per method, for terminal inspection of the curve
// shapes (saturation points, crossovers).
func RenderASCIIPlot(w io.Writer, series []Series, dir string) {
	const width, height = 64, 16
	letters := map[string]byte{MethodVEO: 'V', MethodDMA: 'D', MethodInst: 'S'}
	var cols []Series
	minSize, maxSize := int64(math.MaxInt64), int64(0)
	minBW, maxBW := math.MaxFloat64, 0.0
	for _, s := range series {
		if s.Direction != dir || len(s.Points) == 0 {
			continue
		}
		cols = append(cols, s)
		for _, p := range s.Points {
			if p.Size < minSize {
				minSize = p.Size
			}
			if p.Size > maxSize {
				maxSize = p.Size
			}
			if p.GiBps > 0 && p.GiBps < minBW {
				minBW = p.GiBps
			}
			if p.GiBps > maxBW {
				maxBW = p.GiBps
			}
		}
	}
	if len(cols) == 0 || maxSize <= minSize || maxBW <= 0 {
		return
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	lx := func(n int64) int {
		f := (math.Log2(float64(n)) - math.Log2(float64(minSize))) /
			(math.Log2(float64(maxSize)) - math.Log2(float64(minSize)))
		x := int(f * float64(width-1))
		return clamp(x, 0, width-1)
	}
	ly := func(bw float64) int {
		f := (math.Log10(bw) - math.Log10(minBW)) / (math.Log10(maxBW) - math.Log10(minBW))
		y := height - 1 - int(f*float64(height-1))
		return clamp(y, 0, height-1)
	}
	for _, s := range cols {
		ch := letters[s.Method]
		for _, p := range s.Points {
			if p.GiBps <= 0 {
				continue
			}
			grid[ly(p.GiBps)][lx(p.Size)] = ch
		}
	}
	fmt.Fprintf(w, "\n%s bandwidth (log-log), V=%s D=%s S=%s\n", dir, MethodVEO, MethodDMA, MethodInst)
	fmt.Fprintf(w, "%8s +%s\n", fmtGiBps(maxBW), strings.Repeat("-", width))
	for _, row := range grid {
		fmt.Fprintf(w, "%8s |%s\n", "", string(row))
	}
	fmt.Fprintf(w, "%8s +%s\n", fmtGiBps(minBW), strings.Repeat("-", width))
	fmt.Fprintf(w, "%10s%s -> %s\n", "", sizeLabel(minSize), sizeLabel(maxSize))
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// WriteCSV emits the series in long form: method,direction,size,gibps,us.
func WriteCSV(w io.Writer, series []Series) error {
	if _, err := fmt.Fprintln(w, "method,direction,size_bytes,gibps,us_per_op"); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			if _, err := fmt.Fprintf(w, "%s,%s,%d,%g,%g\n",
				s.Method, s.Direction, p.Size, p.GiBps, p.US); err != nil {
				return err
			}
		}
	}
	return nil
}
