package bench

import (
	"bytes"
	"strings"
	"testing"

	"hamoffload/internal/units"
)

// TestFig9ShapeMatchesPaper verifies the headline comparison: who wins, and
// by roughly what factor (§V-A).
func TestFig9ShapeMatchesPaper(t *testing.T) {
	r, err := Fig9(Fig9Config{Reps: 60})
	if err != nil {
		t.Fatal(err)
	}
	if !(r.HAMDMAUS < r.VEONativeUS && r.VEONativeUS < r.HAMVEOUS) {
		t.Fatalf("ordering broken: DMA=%.1f native=%.1f HAM-VEO=%.1f",
			r.HAMDMAUS, r.VEONativeUS, r.HAMVEOUS)
	}
	checks := []struct {
		name      string
		got, want float64
		tol       float64
	}{
		{"HAM-DMA us", r.HAMDMAUS, 6.1, 0.25},
		{"HAM-VEO us", r.HAMVEOUS, 432, 0.25},
		{"native VEO us", r.VEONativeUS, 80, 0.25},
		{"HAM-VEO/native", r.HAMVEOOverNative, 5.4, 0.3},
		{"native/HAM-DMA", r.NativeOverDMA, 13.1, 0.3},
		{"HAM-VEO/HAM-DMA", r.HAMVEOOverDMA, 70.8, 0.3},
	}
	for _, c := range checks {
		if c.got < c.want*(1-c.tol) || c.got > c.want*(1+c.tol) {
			t.Errorf("%s = %.2f, want ≈%.1f (±%.0f%%)", c.name, c.got, c.want, c.tol*100)
		}
	}
}

// TestFig9SecondSocket reproduces the §V-A UPI note: up to ~1 µs extra.
func TestFig9SecondSocket(t *testing.T) {
	local, err := Fig9(Fig9Config{Reps: 60, Socket: 0})
	if err != nil {
		t.Fatal(err)
	}
	remote, err := Fig9(Fig9Config{Reps: 60, Socket: 1})
	if err != nil {
		t.Fatal(err)
	}
	extra := remote.HAMDMAUS - local.HAMDMAUS
	if extra <= 0 || extra > 1.2 {
		t.Errorf("UPI penalty on DMA protocol = %.2f us, want (0, ~1]", extra)
	}
}

// fig10Small runs a reduced sweep for the shape tests (full range is
// exercised by the root-level benchmarks and cmd/hambench).
func fig10Small(t *testing.T) []Series {
	t.Helper()
	series, err := Fig10(Fig10Config{
		MaxSize:     (16 * units.MiB).Int64(),
		InstMaxSize: (256 * units.KiB).Int64(),
		Reps:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return series
}

// TestFig10Shapes verifies the qualitative claims of §V-B on a reduced
// sweep: user DMA beats VEO everywhere, saturates much earlier, and SHM/LHM
// are slow in bulk but SHM wins for tiny VE→VH messages.
func TestFig10Shapes(t *testing.T) {
	series := fig10Small(t)
	get := func(method, dir string) Series {
		for _, s := range series {
			if s.Method == method && s.Direction == dir {
				return s
			}
		}
		t.Fatalf("missing series %s %s", method, dir)
		return Series{}
	}
	veoUp, veoDown := get(MethodVEO, DirUp), get(MethodVEO, DirDown)
	dmaUp, dmaDown := get(MethodDMA, DirUp), get(MethodDMA, DirDown)
	shmUp, lhmDown := get(MethodInst, DirUp), get(MethodInst, DirDown)

	// "VE user DMA is always faster than VEO's read and write."
	for i, p := range dmaDown.Points {
		if v := veoDown.Points[i]; p.US >= v.US {
			t.Errorf("user DMA down not faster at %s: %.2f vs %.2f us", sizeLabel(p.Size), p.US, v.US)
		}
	}
	for i, p := range dmaUp.Points {
		if v := veoUp.Points[i]; p.US >= v.US {
			t.Errorf("user DMA up not faster at %s: %.2f vs %.2f us", sizeLabel(p.Size), p.US, v.US)
		}
	}

	// User DMA reaches ≥90 % of its peak by 1 MiB; VEO is still below 80 %
	// there (it needs ~64 MiB).
	oneMiB := units.MiB.Int64()
	dmaPeak, veoPeak := dmaUp.Max().GiBps, veoUp.Max().GiBps
	if p, ok := dmaUp.At(oneMiB); !ok || p.GiBps < 0.9*dmaPeak {
		t.Errorf("user DMA at 1MiB = %.2f, want >= 90%% of peak %.2f", p.GiBps, dmaPeak)
	}
	if p, ok := veoUp.At(oneMiB); !ok || p.GiBps > 0.8*veoPeak {
		t.Errorf("VEO at 1MiB = %.2f, should be < 80%% of peak %.2f", p.GiBps, veoPeak)
	}

	// "Transferring data from the VE to the VH is in general faster." (For
	// VEO the direction flip only shows at >64 MiB where the read-path setup
	// amortises; the full-size check lives in TestTableIVPeaks.)
	if dmaUp.Max().GiBps <= dmaDown.Max().GiBps {
		t.Error("user DMA up peak should exceed down peak")
	}

	// SHM beats user DMA up to 256 B and not at 512 B (§V-B).
	if c := Crossover(shmUp, dmaUp); c != 256 {
		t.Errorf("SHM/userDMA crossover = %d B, want 256", c)
	}
	// SHM beats VEO reads for small messages (paper: up to 32 KiB; our
	// calibration puts it at ~8-16 KiB, recorded in EXPERIMENTS.md).
	if c := Crossover(shmUp, veoUp); c < 4096 || c > 64*1024 {
		t.Errorf("SHM/VEO-read crossover = %d B, want small-KiB range", c)
	}
	// LHM is the slowest bulk path.
	if p, ok := lhmDown.At(256 * 1024); ok {
		if v, _ := veoDown.At(256 * 1024); p.GiBps >= v.GiBps {
			t.Error("LHM should be far slower than VEO for bulk")
		}
	}
}

// TestTableIVPeaks checks the absolute peaks against the paper's table at a
// full 256 MiB sweep for the DMA/VEO methods.
func TestTableIVPeaks(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size sweep")
	}
	series, err := Fig10(Fig10Config{Reps: 2})
	if err != nil {
		t.Fatal(err)
	}
	rows := TableIV(series)
	want := map[string][2]float64{
		MethodVEO:  {9.9, 10.4},
		MethodDMA:  {10.6, 11.1},
		MethodInst: {0.01, 0.06},
	}
	for _, r := range rows {
		w := want[r.Method]
		if r.DownGiBps < w[0]*0.9 || r.DownGiBps > w[0]*1.1 {
			t.Errorf("%s down peak = %.3f, want ≈%.2f", r.Method, r.DownGiBps, w[0])
		}
		if r.UpGiBps < w[1]*0.9 || r.UpGiBps > w[1]*1.1 {
			t.Errorf("%s up peak = %.3f, want ≈%.2f", r.Method, r.UpGiBps, w[1])
		}
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-machine sweeps")
	}
	t.Run("hugepages", func(t *testing.T) {
		rows, err := AblateHugePages((16 * units.MiB).Int64())
		if err != nil {
			t.Fatal(err)
		}
		// rows: [huge/4dma, huge/naive, 4k/4dma, 4k/naive]. 4 KiB pages with
		// the naive manager must be clearly slower than huge pages.
		if rows[3].Value >= rows[1].Value*0.9 {
			t.Errorf("4KiB naive (%.2f) should be well below huge naive (%.2f)",
				rows[3].Value, rows[1].Value)
		}
		// The 4dma manager rescues the 4 KiB case.
		if rows[2].Value <= rows[3].Value {
			t.Errorf("4dma (%.2f) should beat naive (%.2f) on 4KiB pages",
				rows[2].Value, rows[3].Value)
		}
	})
	t.Run("poll-interval", func(t *testing.T) {
		rows, err := AblatePollInterval([]int64{50, 2000})
		if err != nil {
			t.Fatal(err)
		}
		if rows[0].Value >= rows[1].Value {
			t.Errorf("finer polling (%.2f us) should beat coarse (%.2f us)",
				rows[0].Value, rows[1].Value)
		}
	})
	t.Run("result-path", func(t *testing.T) {
		rows, err := AblateResultPath()
		if err != nil {
			t.Fatal(err)
		}
		// §V-B: SHM stores beat a DMA write for small results.
		if rows[0].Value >= rows[1].Value {
			t.Errorf("SHM result path (%.2f us) should beat DMA (%.2f us)",
				rows[0].Value, rows[1].Value)
		}
	})
	t.Run("buffer-count", func(t *testing.T) {
		rows, err := AblateBufferCount([]int{1, 8}, 16)
		if err != nil {
			t.Fatal(err)
		}
		// With a single buffer every offload serialises on the slot; more
		// buffers let the pipeline overlap.
		if rows[1].Value >= rows[0].Value {
			t.Errorf("8 buffers (%.2f us) should beat 1 buffer (%.2f us)",
				rows[1].Value, rows[0].Value)
		}
	})
}

func TestRenderers(t *testing.T) {
	r := Fig9Result{
		VEONativeUS: 80, HAMVEOUS: 432, HAMDMAUS: 6.1,
		HAMVEOOverNative: 5.4, NativeOverDMA: 13.1, HAMVEOOverDMA: 70.8,
	}
	var buf bytes.Buffer
	RenderFig9(&buf, r)
	out := buf.String()
	for _, want := range []string{"HAM-Offload (VE DMA)", "70.8x", "5.4x"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig9 output missing %q:\n%s", want, out)
		}
	}

	series := []Series{
		{Method: MethodVEO, Direction: DirDown, Points: []Point{{Size: 8, GiBps: 0.0001, US: 100}, {Size: 4096, GiBps: 0.04, US: 101}}},
		{Method: MethodDMA, Direction: DirDown, Points: []Point{{Size: 8, GiBps: 0.002, US: 5}, {Size: 4096, GiBps: 0.8, US: 6}}},
	}
	buf.Reset()
	RenderFig10(&buf, series, 1024)
	if !strings.Contains(buf.String(), "VH=>VE") || !strings.Contains(buf.String(), "4KiB") {
		t.Errorf("Fig10 output malformed:\n%s", buf.String())
	}

	buf.Reset()
	RenderTableIV(&buf, TableIV(series))
	if !strings.Contains(buf.String(), MethodVEO) {
		t.Errorf("TableIV output malformed:\n%s", buf.String())
	}

	buf.Reset()
	RenderASCIIPlot(&buf, series, DirDown)
	if !strings.Contains(buf.String(), "log-log") {
		t.Errorf("ASCII plot malformed:\n%s", buf.String())
	}

	buf.Reset()
	if err := WriteCSV(&buf, series); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "method,direction,size_bytes") {
		t.Errorf("CSV header missing:\n%s", buf.String())
	}

	buf.Reset()
	RenderAblation(&buf, "Test", []AblationRow{{Config: "a", Value: 1.5, Unit: "us"}})
	if !strings.Contains(buf.String(), "1.500 us") {
		t.Errorf("ablation output malformed:\n%s", buf.String())
	}
}

func TestPowerOfTwoSizes(t *testing.T) {
	s := PowerOfTwoSizes(8, 64)
	want := []int64{8, 16, 32, 64}
	if len(s) != len(want) {
		t.Fatalf("sizes = %v", s)
	}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("sizes = %v", s)
		}
	}
}

// TestGranularitySweep ties the microbenchmark to application impact: the
// protocol gap collapses as kernels grow (§V-A's granularity discussion).
func TestGranularitySweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-machine sweep")
	}
	rows, err := AblateGranularity([]float64{0, 100, 5000})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Speedup < 40 {
		t.Errorf("empty-kernel speedup = %.1f, want the full protocol gap", rows[0].Speedup)
	}
	if rows[1].Speedup < 2 || rows[1].Speedup > 8 {
		t.Errorf("100us-kernel speedup = %.1f, want the paper-companion ~2.6x regime", rows[1].Speedup)
	}
	if rows[2].Speedup > 1.2 {
		t.Errorf("5ms-kernel speedup = %.1f, should be amortised away", rows[2].Speedup)
	}
	var buf bytes.Buffer
	RenderGranularity(&buf, rows)
	if !strings.Contains(buf.String(), "speedup") {
		t.Error("render output malformed")
	}
}

// TestTraceOffloadsProducesChromeJSON smoke-tests the trace facility end to
// end: both protocols leave their signature spans.
func TestTraceOffloadsProducesChromeJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := TraceOffloads(2, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"veo_write_mem", "user-dma", "dmab-poll-hit", "veob-poll-hit", "execute fn:bench.empty", `"ph":"X"`} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q", want)
		}
	}
}

// TestHistogramMeasurement checks the latency-distribution variant agrees
// with the scalar measurement.
func TestHistogramMeasurement(t *testing.T) {
	h, err := MeasureHAMEmptyHist(Fig9Config{Reps: 50}, true)
	if err != nil {
		t.Fatal(err)
	}
	if h.Count() != 50 {
		t.Errorf("Count = %d", h.Count())
	}
	mean := h.Mean().Microseconds()
	if mean < 5 || mean > 8 {
		t.Errorf("mean = %.2f us, want ≈6", mean)
	}
}

// TestNativeVsOffloadCrossover quantifies §I: with no scalar code native VE
// execution wins; a few percent of scalar work flips the balance to
// offloading — the motivation for low-overhead offloading on this platform.
func TestNativeVsOffloadCrossover(t *testing.T) {
	rows, err := NativeVsOffload(NativeVsOffloadConfig{
		Fractions: []float64{0, 0.05, 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].OffloadWins {
		t.Error("pure vector code should favour native execution")
	}
	if !rows[1].OffloadWins || !rows[2].OffloadWins {
		t.Error("scalar-heavy code should favour offloading")
	}
	// The scalar-heavy gap should be large (the 1.4 GHz scalar pipeline vs
	// the host), not marginal.
	if rows[2].NativeUS < 5*rows[2].OffloadUS {
		t.Errorf("at 50%% scalar work native=%.0f offload=%.0f, expected a wide gap",
			rows[2].NativeUS, rows[2].OffloadUS)
	}
	var buf bytes.Buffer
	RenderNativeVsOffload(&buf, rows)
	if !strings.Contains(buf.String(), "winner") {
		t.Error("render malformed")
	}
}

// TestRemoteClusterExperiment checks the §VI-outlook numbers' shape: remote
// offloads cost more than local but stay the same order of magnitude, and
// the staged remote data path loses bandwidth to the extra IB hop.
func TestRemoteClusterExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster build")
	}
	r, err := Remote(60)
	if err != nil {
		t.Fatal(err)
	}
	if r.LocalUS < 5 || r.LocalUS > 8 {
		t.Errorf("local = %.2f us, want ≈6", r.LocalUS)
	}
	if r.RemoteUS < r.LocalUS+3 || r.RemoteUS > r.LocalUS+25 {
		t.Errorf("remote = %.2f us vs local %.2f", r.RemoteUS, r.LocalUS)
	}
	if r.PutRemoteGiB >= r.PutLocalGiB {
		t.Errorf("remote put %.2f should be below local %.2f GiB/s", r.PutRemoteGiB, r.PutLocalGiB)
	}
	if r.PutRemoteGiB < 2 {
		t.Errorf("remote put %.2f GiB/s implausibly low", r.PutRemoteGiB)
	}
	var buf bytes.Buffer
	RenderRemote(&buf, r)
	if !strings.Contains(buf.String(), "remote VE") {
		t.Error("render malformed")
	}
}

// TestPutGetTracksVEOCurve ties the public API data path to the Fig. 10
// VEO series it rides on.
func TestPutGetTracksVEOCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("large transfers")
	}
	pts, err := PutGet(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	last := pts[len(pts)-1] // 64 MiB
	if last.PutGiBps < 9 || last.PutGiBps > 10.5 {
		t.Errorf("64MiB put = %.2f GiB/s, want ≈9.8 (VEO write)", last.PutGiBps)
	}
	if last.GetGiBps < 9 || last.GetGiBps > 11 {
		t.Errorf("64MiB get = %.2f GiB/s, want ≈10.1 (VEO read)", last.GetGiBps)
	}
	// Bandwidth grows with size.
	for i := 1; i < len(pts); i++ {
		if pts[i].PutGiBps <= pts[i-1].PutGiBps {
			t.Errorf("put bandwidth not monotone at %d", pts[i].Size)
		}
	}
	var buf bytes.Buffer
	RenderPutGet(&buf, pts)
	if !strings.Contains(buf.String(), "put GiB/s") {
		t.Error("render malformed")
	}
}
