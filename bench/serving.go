package bench

import (
	"fmt"
	"io"

	"hamoffload/gateway"
	"hamoffload/internal/faults"
	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
	"hamoffload/internal/trace"
	"hamoffload/machine"
	"hamoffload/offload"
)

// The serving experiment drives the gateway package at production scale: an
// open-loop traffic generator offers a million requests to an 8-VE machine
// through QoS-classed admission, tenant quotas and work-stealing dispatch,
// while a windowed gray-failure plan degrades one VE mid-run. Arrivals are
// open loop — the generator never waits for completions, so queueing delay
// shows up in the latency distribution instead of throttling the offered
// load (the coordinated-omission trap).
//
// The arrival process composes three deterministic parts, all drawn from
// the splitmix64 stream seeded by ServingConfig.Seed:
//
//   - a diurnal triangle wave sweeping the base inter-arrival gap between
//     GapTroughNS and GapPeakNS over DiurnalCycles cycles (integer math —
//     no trig, so baselines are bit-identical across platforms);
//   - uniform per-arrival jitter of 0.5x..1.5x the base gap;
//   - Poisson-ish bursts: roughly one arrival in 96 triggers a burst of 32
//     arrivals at a quarter of the current gap.
//
// Everything runs on the simulated clock, so two runs with the same seed
// produce byte-identical reports (and Chrome traces, when armed);
// BENCH_serving.json pins the per-class latency distributions and benchreg
// enforces the QoS design gate (latency-critical p99 well under
// best-effort p99).

// ServingConfig parameterises the serving-gateway experiment.
type ServingConfig struct {
	VEs      int    // offload targets (default 8)
	Offloads int    // arrivals to offer (default 1_000_000)
	Seed     uint64 // seeds the arrival process (default 42)
	// GapPeakNS / GapTroughNS bound the diurnal base inter-arrival gap in
	// nanoseconds: the peak of the wave offers one request per GapPeakNS
	// (defaults 140 / 1000 — the peak oversubscribes the fleet, the trough
	// leaves it mostly idle).
	GapPeakNS, GapTroughNS int64
	// DiurnalCycles is how many peak-trough cycles span the run (default 4).
	DiurnalCycles int
	// GrayFactor degrades one VE (node 1) to GrayFactor x its nominal
	// service time for the middle ~30% of the expected run (default 4;
	// set 1 to disable).
	GrayFactor float64
	// Tracer, when set, records the run with full lifecycle tracing.
	Tracer *trace.Tracer
}

func (c *ServingConfig) fill() {
	if c.VEs <= 0 {
		c.VEs = 8
	}
	if c.Offloads <= 0 {
		c.Offloads = 1_000_000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.GapPeakNS <= 0 {
		c.GapPeakNS = 250
	}
	if c.GapTroughNS <= 0 {
		c.GapTroughNS = 2500
	}
	if c.DiurnalCycles <= 0 {
		c.DiurnalCycles = 4
	}
	if c.GrayFactor <= 0 {
		c.GrayFactor = 4
	}
}

// servingWork is the per-request kernel: a roofline-charged vector op of a
// few microseconds, so the fleet is VE-bound — queues build at the diurnal
// peaks instead of the host wire path being the bottleneck.
var servingWork = offload.NewFunc1[offload.Unit]("bench.serving.work",
	func(c *offload.Ctx, n int64) (offload.Unit, error) {
		c.ChargeVector(n*6_000_000, n*750_000, 8)
		return offload.Unit{}, nil
	})

// ServingResult is one run of the experiment.
type ServingResult struct {
	VEs, Offloads int
	Seed          uint64
	Elapsed       simtime.Duration // simulated span of the whole run
	GrayFrom      simtime.Time
	GrayUntil     simtime.Time
	GrayFactor    float64
	Gateway       gateway.Report
	PerClass      [gateway.NumClasses]Stats // exact nearest-rank percentiles
}

// servingGap returns arrival i's inter-arrival gap in picoseconds.
// burstLeft is decremented across calls while a burst is active.
func servingGap(cfg *ServingConfig, i int, burstLeft *int) simtime.Duration {
	period := cfg.Offloads / cfg.DiurnalCycles
	if period <= 0 {
		period = 1
	}
	// Integer triangle wave: tri runs 0 -> scale -> 0 over one period.
	const scale = 1 << 16
	pos := (i % period) * 2 * scale / period
	tri := pos
	if tri > scale {
		tri = 2*scale - tri
	}
	// tri=scale is the traffic peak (smallest gap).
	baseNS := cfg.GapTroughNS - (cfg.GapTroughNS-cfg.GapPeakNS)*int64(tri)/scale
	// Uniform 0.5x..1.5x jitter.
	j := faults.Mix(cfg.Seed, 0xA1, uint64(i))
	gapNS := baseNS * int64(50+j%101) / 100
	// Bursts: ~1/96 arrivals opens a 32-arrival burst at quarter gap.
	if *burstLeft > 0 {
		*burstLeft--
		gapNS /= 4
	} else if faults.Mix(cfg.Seed, 0xB2, uint64(i))%96 == 0 {
		*burstLeft = 32
	}
	if gapNS < 1 {
		gapNS = 1
	}
	return simtime.Duration(gapNS) * simtime.Nanosecond
}

// servingPlan degrades VE 0 (application node 1) by factor for the window
// [from, until) — the fail-slow card of docs/FAULTS.md, mid-run.
func servingPlan(factor float64, from, until simtime.Time) *faults.Plan {
	if factor <= 1 {
		return nil
	}
	return &faults.Plan{Rules: []faults.Rule{
		{Kind: faults.SlowDown, Site: faults.SiteAny, Node: 0, Factor: factor,
			From: from, Until: until},
	}}
}

// Serving runs the million-offload serving sweep.
func Serving(cfg ServingConfig) (ServingResult, error) {
	cfg.fill()
	res := ServingResult{VEs: cfg.VEs, Offloads: cfg.Offloads, Seed: cfg.Seed, GrayFactor: cfg.GrayFactor}

	// Expected run length from the mean gap (trough+peak)/2 x jitter mean 1.0;
	// the gray window brackets the middle ~30% of it.
	meanGapNS := (cfg.GapTroughNS + cfg.GapPeakNS) / 2
	expected := simtime.Duration(int64(cfg.Offloads)*meanGapNS) * simtime.Nanosecond
	var epoch simtime.Time
	res.GrayFrom = epoch.Add(expected * 35 / 100)
	res.GrayUntil = epoch.Add(expected * 65 / 100)

	mcfg := machine.Config{
		VEs:    cfg.VEs,
		Faults: servingPlan(cfg.GrayFactor, res.GrayFrom, res.GrayUntil),
	}
	timing := topology.DefaultTiming()
	timing.Tracer = cfg.Tracer
	// A serving fleet coarsens the VE receive-flag poll to trade a couple of
	// microseconds of pickup latency (noise against multi-microsecond kernels
	// and SLO targets) for far fewer wasted poll cycles on idle cards — the
	// ablate-poll experiment quantifies this trade-off.
	timing.HAMVEPollInterval = 2 * simtime.Microsecond
	mcfg.Timing = &timing
	m, err := machine.New(mcfg)
	if err != nil {
		return res, err
	}
	err = m.RunMain(func(p *machine.Proc) error {
		rt, cerr := machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		if cerr != nil {
			return cerr
		}
		defer func() { _ = rt.Finalize() }()
		nodes := make([]offload.NodeID, cfg.VEs)
		for i := range nodes {
			nodes[i] = offload.NodeID(i + 1)
		}
		gw, gerr := gateway.New[offload.Unit](rt, nodes, gateway.Config{
			MaxQueued: 512,
			Window:    6,
			MaxBatch:  3,
			Tenants: []gateway.TenantConfig{
				// The metered tenant's sustained rate cap (one request per
				// 2 µs = 0.5 M/s) sits under its peak-hour demand, so quota
				// rejections concentrate at the diurnal peaks.
				{Name: "metered", Burst: 64, Refill: 6 * machine.Microsecond},
				{Name: "gold"},
				{Name: "silver"},
			},
			SLOTargets: [gateway.NumClasses]simtime.Duration{
				120 * simtime.Microsecond, // latency-critical
				500 * simtime.Microsecond, // batch
				2 * simtime.Millisecond,   // best-effort
			},
			SLOWindow:   5 * simtime.Millisecond,
			KeepSamples: true,
		})
		if gerr != nil {
			return gerr
		}
		start := p.Now()
		burstLeft := 0
		for i := 0; i < cfg.Offloads; i++ {
			p.Sleep(servingGap(&cfg, i, &burstLeft))
			// Polling every few arrivals keeps settle-discovery latency well
			// under the SLO targets without paying a full live-list sweep per
			// sub-microsecond arrival gap.
			if i%8 == 0 {
				gw.Poll()
			}
			r := faults.Mix(cfg.Seed, 0xC3, uint64(i))
			// Class mix 25% latency-critical / 50% batch / 25% best-effort;
			// tenant mix 25% metered / 50% gold / 25% silver, independent.
			var class gateway.Class
			switch r % 4 {
			case 0:
				class = gateway.LatencyCritical
			case 1, 2:
				class = gateway.Batch
			default:
				class = gateway.BestEffort
			}
			var tenant int
			switch (r >> 16) % 4 {
			case 0:
				tenant = 0
			case 1, 2:
				tenant = 1
			default:
				tenant = 2
			}
			_, serr := gw.Submit(tenant, class, servingWork.Bind(int64(1+(r>>32)%4)))
			if serr != nil {
				// Quota and share rejections are the experiment's point;
				// anything else is a bug.
				if !gateway.IsRejection(serr) {
					return serr
				}
			}
		}
		gw.Drain()
		res.Elapsed = p.Now().Sub(start)
		res.Gateway = gw.Report()
		for c := range res.PerClass {
			res.PerClass[c] = NewStats(res.Gateway.Classes[c].Samples)
		}
		return nil
	})
	return res, err
}

// ServingReport runs the sweep and shapes the per-class latency
// distributions as a regression report.
func ServingReport(cfg ServingConfig) (Report, error) {
	res, err := Serving(cfg)
	if err != nil {
		return Report{}, err
	}
	r := Report{Experiment: "serving"}
	for c := range res.PerClass {
		r.Entries = append(r.Entries, ReportEntry{
			Name:  gateway.Class(c).String(),
			Stats: res.PerClass[c],
		})
	}
	return r, nil
}

// RenderServing prints the sweep as fixed-width tables. Everything printed
// is simulated time, so output is byte-identical across runs of one seed.
func RenderServing(w io.Writer, r ServingResult) {
	fmt.Fprintf(w, "Serving gateway — DMA protocol, %d VEs, %d offered requests, seed %d\n",
		r.VEs, r.Offloads, r.Seed)
	fmt.Fprintf(w, "simulated span %v; VE 1 degraded %gx in [%v, %v)\n\n",
		r.Elapsed, r.GrayFactor, r.GrayFrom, r.GrayUntil)

	fmt.Fprintf(w, "%-17s  %9s  %8s  %8s  %9s  %9s  %9s  %9s  %7s\n",
		"class", "admitted", "r-quota", "r-share", "p50 us", "p99 us", "p99.9 us", "slo-viol", "burn")
	for c, cl := range r.Gateway.Classes {
		st := r.PerClass[c]
		fmt.Fprintf(w, "%-17s  %9d  %8d  %8d  %9.2f  %9.2f  %9.2f  %9d  %7.2f\n",
			cl.Class, cl.Admitted, cl.RejectedQuota, cl.RejectedShare,
			st.P50US, st.P99US, st.P999US, cl.SLO.Violations, cl.SLO.BurnRate)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-17s  %9s  %9s\n", "tenant", "admitted", "rejected")
	for _, tn := range r.Gateway.Tenants {
		fmt.Fprintf(w, "%-17s  %9d  %9d\n", tn.Name, tn.Admitted, tn.Rejected)
	}
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%-17s  %9s  %9s  %9s\n", "ve", "issued", "stolen-in", "max-queue")
	for _, ve := range r.Gateway.VEs {
		fmt.Fprintf(w, "ve %-14d  %9d  %9d  %9d\n", ve.Node, ve.Issued, ve.StolenIn, ve.MaxQueue)
	}
	fmt.Fprintf(w, "\nsteal operations: %d; total rejected: %d of %d offered\n",
		r.Gateway.Steals, r.Gateway.Rejected(), r.Gateway.Submitted)
}
