package bench

import (
	"fmt"
	"io"

	"hamoffload/internal/units"
	"hamoffload/machine"
	"hamoffload/offload"
)

// RemoteResult captures the §VI-outlook experiment: local vs remote offload
// cost and data-path bandwidth in a two-machine cluster.
type RemoteResult struct {
	LocalUS      float64 // empty offload to a local VE
	RemoteUS     float64 // empty offload to a remote VE over IB
	PutLocalGiB  float64 // 64 MiB put to a local VE
	PutRemoteGiB float64 // 64 MiB put to a remote VE (staged over IB)
}

// Remote measures offloading across the simulated InfiniBand cluster.
func Remote(reps int) (RemoteResult, error) {
	if reps <= 0 {
		reps = 100
	}
	var res RemoteResult
	cl, err := machine.NewCluster(2, machine.Config{VEs: 1})
	if err != nil {
		return res, err
	}
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()

		measure := func(node offload.NodeID) (float64, error) {
			op := func() error {
				_, err := offload.Sync(rt, node, benchEmpty.Bind())
				return err
			}
			return timedLoop(p, 10, reps, op)
		}
		if res.LocalUS, err = measure(1); err != nil {
			return err
		}
		if res.RemoteUS, err = measure(2); err != nil {
			return err
		}

		// Bulk data path: 64 MiB puts.
		size := (64 * units.MiB).Int64()
		data := make([]float64, size/8)
		putBW := func(node offload.NodeID) (float64, error) {
			buf, err := offload.Allocate[float64](rt, node, size/8)
			if err != nil {
				return 0, err
			}
			us, err := timedLoop(p, 1, 3, func() error {
				return offload.Put(rt, data, buf)
			})
			if err != nil {
				return 0, err
			}
			if err := offload.Free(rt, buf); err != nil {
				return 0, err
			}
			return gibps(size, us), nil
		}
		if res.PutLocalGiB, err = putBW(1); err != nil {
			return err
		}
		if res.PutRemoteGiB, err = putBW(2); err != nil {
			return err
		}
		return nil
	})
	return res, err
}

// RenderRemote prints the cluster experiment.
func RenderRemote(w io.Writer, r RemoteResult) {
	fmt.Fprintln(w, "Remote offloading over InfiniBand (§VI outlook, 2-node cluster)")
	fmt.Fprintf(w, "%-34s %10.2f us\n", "empty offload, local VE", r.LocalUS)
	fmt.Fprintf(w, "%-34s %10.2f us   (+IB round trip + proxy)\n", "empty offload, remote VE", r.RemoteUS)
	fmt.Fprintf(w, "%-34s %10.2f GiB/s\n", "64MiB put, local VE", r.PutLocalGiB)
	fmt.Fprintf(w, "%-34s %10.2f GiB/s (staged over IB)\n", "64MiB put, remote VE", r.PutRemoteGiB)
}

// PutGetPoint is one size of the offload-API data-path sweep.
type PutGetPoint struct {
	Size     int64
	PutGiBps float64
	GetGiBps float64
}

// PutGet measures Table II's put/get through the public offload API over the
// DMA protocol (whose bulk path is the VEO API, as in the paper), relating
// the application-visible data-path to the raw Fig. 10 curves.
func PutGet(sizes []int64, reps int) ([]PutGetPoint, error) {
	if len(sizes) == 0 {
		sizes = []int64{
			(64 * units.KiB).Int64(), units.MiB.Int64(),
			(16 * units.MiB).Int64(), (64 * units.MiB).Int64(),
		}
	}
	if reps <= 0 {
		reps = 3
	}
	maxSize := sizes[len(sizes)-1]
	m, err := machine.New(machine.Config{
		VEs:             1,
		HostMemoryBytes: maxSize*4 + (64 * units.MiB).Int64(),
		VEMemoryBytes:   maxSize*2 + (64 * units.MiB).Int64(),
	})
	if err != nil {
		return nil, err
	}
	var out []PutGetPoint
	err = m.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		buf, err := offload.Allocate[float64](rt, 1, maxSize/8)
		if err != nil {
			return err
		}
		for _, size := range sizes {
			data := make([]float64, size/8)
			putUS, err := timedLoop(p, 1, reps, func() error {
				return offload.Put(rt, data, buf)
			})
			if err != nil {
				return err
			}
			getUS, err := timedLoop(p, 1, reps, func() error {
				return offload.Get(rt, buf, data)
			})
			if err != nil {
				return err
			}
			out = append(out, PutGetPoint{
				Size:     size,
				PutGiBps: gibps(size, putUS),
				GetGiBps: gibps(size, getUS),
			})
		}
		return nil
	})
	return out, err
}

// RenderPutGet prints the data-path sweep.
func RenderPutGet(w io.Writer, pts []PutGetPoint) {
	fmt.Fprintln(w, "offload.Put / offload.Get bandwidth (Table II data path; rides the VEO API)")
	fmt.Fprintf(w, "%-10s %12s %12s\n", "size", "put GiB/s", "get GiB/s")
	for _, p := range pts {
		fmt.Fprintf(w, "%-10s %12s %12s\n", sizeLabel(p.Size), fmtGiBps(p.PutGiBps), fmtGiBps(p.GetGiBps))
	}
}
