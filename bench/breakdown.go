package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"hamoffload/internal/simtime"
	"hamoffload/internal/trace"
	"hamoffload/machine"
	"hamoffload/offload"
)

// BreakdownResult decomposes one empty synchronous offload into its
// lifecycle phases. It is the simulated counterpart of the paper's Fig. 9
// discussion, which splits the DMA protocol's 6.1 µs into roughly 1.2 µs of
// PCIe wire crossings and ~5 µs of framework time.
type BreakdownResult struct {
	Protocol string // "DMA" or "VEO"

	TotalUS     float64 // end-to-end latency of the analysed offload
	PCIeUS      float64 // time attributed to PCIe wire crossings (cat "pcie")
	FrameworkUS float64 // everything else: framework code paths + residual

	Rows       []trace.PhaseSlice // innermost-span attribution, tiles the window
	Spans      []trace.Span       // recorded spans overlapping the window
	Start, End simtime.Time       // the analysed offload window
}

// Breakdown runs the configured warm-ups plus one analysed empty sync
// offload over the chosen protocol with tracing attached, then attributes
// every picosecond of the final offload's window to the innermost recorded
// span covering it. The returned rows tile the window exactly, so their
// totals sum to the end-to-end latency by construction.
func Breakdown(cfg Fig9Config, dmaProtocol bool) (BreakdownResult, error) {
	cfg.fill()
	if cfg.Tracer == nil {
		cfg.Tracer = trace.NewTracer()
	}
	res := BreakdownResult{Protocol: "VEO"}
	if dmaProtocol {
		res.Protocol = "DMA"
	}
	m, err := machine.New(cfg.machineConfig())
	if err != nil {
		return res, err
	}
	err = m.RunMain(func(p *machine.Proc) error {
		var rt *offload.Runtime
		var cerr error
		if dmaProtocol {
			rt, cerr = machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		} else {
			rt, cerr = machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		}
		if cerr != nil {
			return cerr
		}
		defer func() { _ = rt.Finalize() }()
		for i := 0; i < cfg.Warmup+1; i++ {
			if _, err := offload.Sync(rt, 1, benchEmpty.Bind()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return res, err
	}

	spans := cfg.Tracer.Spans()
	win, ok := lastOffloadSpan(spans)
	if !ok {
		return res, fmt.Errorf("bench: no offload span recorded")
	}
	res.Start, res.End = win.Start, win.End
	res.TotalUS = win.Dur().Microseconds()
	res.Rows = trace.BreakdownWindow(spans, win.Start, win.End)
	for _, r := range res.Rows {
		if r.Cat == "pcie" {
			res.PCIeUS += r.Total.Microseconds()
		}
	}
	res.FrameworkUS = res.TotalUS - res.PCIeUS
	for _, s := range spans {
		if s.End > win.Start && s.Start < win.End {
			res.Spans = append(res.Spans, s)
		}
	}
	return res, nil
}

// lastOffloadSpan finds the initiator-side lifecycle span of the last
// application offload in the trace, skipping the runtime's own messages
// (the ham.rt.terminate sent during Finalize would otherwise win).
func lastOffloadSpan(spans []trace.Span) (trace.Span, bool) {
	var win trace.Span
	found := false
	for _, s := range spans {
		if s.Phase == trace.PhaseOffload && s.Node == 0 &&
			!strings.Contains(s.Name, "ham.rt.") {
			if !found || s.Start >= win.Start {
				win, found = s, true
			}
		}
	}
	return win, found
}

// RenderBreakdown prints the phase table, the PCIe/framework split the paper
// quotes for Fig. 9, and an ASCII timeline of the analysed offload.
func RenderBreakdown(w io.Writer, r BreakdownResult) {
	fmt.Fprintf(w, "Offload phase decomposition — %s protocol, one empty sync offload\n", r.Protocol)
	fmt.Fprintf(w, "%-34s %10s %7s\n", "phase", "µs", "%")
	var sum float64
	for _, row := range r.Rows {
		us := row.Total.Microseconds()
		sum += us
		fmt.Fprintf(w, "%-34s %10.3f %6.1f%%\n", rowLabel(row), us, 100*us/r.TotalUS)
	}
	fmt.Fprintf(w, "%-34s %10.3f %6.1f%%\n", "end-to-end", sum, 100*sum/r.TotalUS)
	fmt.Fprintln(w)
	fmt.Fprintf(w, "PCIe wire time : %6.2f µs\n", r.PCIeUS)
	fmt.Fprintf(w, "framework time : %6.2f µs\n", r.FrameworkUS)
	if r.Protocol == "DMA" {
		fmt.Fprintf(w, "paper (Fig. 9) : 1.2 µs PCIe + ~5 µs framework = 6.1 µs total\n")
	}
	fmt.Fprintln(w)
	renderTimeline(w, r)
}

func rowLabel(row trace.PhaseSlice) string {
	if row.Cat == "pcie" {
		return row.Name + "  [pcie]"
	}
	return row.Name
}

// renderTimeline draws the window's spans as a scaled ASCII gantt chart, one
// row per span, ordered by start time; outer spans come first, so nesting
// reads top-down.
func renderTimeline(w io.Writer, r BreakdownResult) {
	const width = 64
	window := r.End.Sub(r.Start)
	if window <= 0 || len(r.Spans) == 0 {
		return
	}
	spans := append([]trace.Span(nil), r.Spans...)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].Dur() > spans[j].Dur()
	})
	fmt.Fprintf(w, "timeline (window %.3f µs, 1 column ≈ %.0f ns)\n",
		window.Microseconds(), window.Microseconds()*1000/width)
	col := func(t simtime.Time) int {
		c := int(int64(t.Sub(r.Start)) * width / int64(window))
		if c < 0 {
			c = 0
		}
		if c > width {
			c = width
		}
		return c
	}
	for _, s := range spans {
		lo, hi := col(s.Start), col(s.End)
		if hi <= lo {
			hi = lo + 1
			if hi > width {
				lo, hi = width-1, width
			}
		}
		bar := strings.Repeat(" ", lo) + strings.Repeat("=", hi-lo) +
			strings.Repeat(" ", width-hi)
		fmt.Fprintf(w, "%-12s %-24s |%s|\n", trackLabel(s), s.Name, bar)
	}
}

func trackLabel(s trace.Span) string {
	if s.Node == trace.NodeInfra {
		return s.Tid
	}
	return fmt.Sprintf("node%d", s.Node)
}
