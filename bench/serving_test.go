package bench

import (
	"bytes"
	"strings"
	"testing"

	"hamoffload/internal/trace"
)

// servingSmall is a scaled-down sweep that still crosses two diurnal cycles
// and the gray-failure window, so every mechanism (quota and share
// rejections, stealing, SLO burn) exercises in a test-sized run.
func servingSmall(seed uint64, tracer *trace.Tracer) (ServingResult, error) {
	return Serving(ServingConfig{
		Offloads:      40_000,
		Seed:          seed,
		DiurnalCycles: 2,
		Tracer:        tracer,
	})
}

func TestServingMechanisms(t *testing.T) {
	res, err := servingSmall(42, nil)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Gateway
	if r.Submitted != 40_000 {
		t.Fatalf("submitted %d, want 40000", r.Submitted)
	}
	var quota, share, admitted, completed int64
	for _, c := range r.Classes {
		quota += c.RejectedQuota
		share += c.RejectedShare
		admitted += c.Admitted
		completed += c.Completed
		if c.Failed != 0 {
			t.Errorf("class %s: %d dispatch failures", c.Class, c.Failed)
		}
	}
	if completed != admitted {
		t.Fatalf("completed %d != admitted %d: dropped or unsettled futures", completed, admitted)
	}
	if admitted+quota+share != r.Submitted {
		t.Fatalf("admission accounting leak: %d + %d + %d != %d", admitted, quota, share, r.Submitted)
	}
	if quota == 0 {
		t.Error("expected tenant-quota rejections at the diurnal peaks")
	}
	if share == 0 {
		t.Error("expected class-share rejections under peak overload")
	}
	if r.Steals == 0 {
		t.Error("expected work stealing around the gray-failure window")
	}
	// The QoS point of the experiment: latency-critical traffic must keep a
	// far shorter tail than bulk traffic on the same saturated fleet.
	lc, be := res.PerClass[0], res.PerClass[2]
	if lc.P99US >= be.P99US/2 {
		t.Errorf("latency-critical p99 %.2f us not well under best-effort p99 %.2f us", lc.P99US, be.P99US)
	}
}

func TestServingDeterministic(t *testing.T) {
	render := func(seed uint64) (string, string) {
		tracer := trace.NewTracer()
		res, err := servingSmall(seed, tracer)
		if err != nil {
			t.Fatal(err)
		}
		var rep, chr bytes.Buffer
		RenderServing(&rep, res)
		if err := tracer.ExportChrome(&chr); err != nil {
			t.Fatal(err)
		}
		return rep.String(), chr.String()
	}
	rep1, chr1 := render(42)
	rep2, chr2 := render(42)
	if rep1 != rep2 {
		t.Error("same seed must render a byte-identical report")
	}
	if chr1 != chr2 {
		t.Error("same seed must export a byte-identical Chrome trace")
	}
	if !strings.Contains(chr1, `"steal"`) {
		t.Error("Chrome trace should carry steal instants")
	}
	if !strings.Contains(chr1, `"admit"`) {
		t.Error("Chrome trace should carry admission-rejection instants")
	}
	rep3, _ := render(7)
	if rep1 == rep3 {
		t.Error("different seeds should not produce identical reports")
	}
}

func TestServingReportShape(t *testing.T) {
	r, err := ServingReport(ServingConfig{Offloads: 6_000, DiurnalCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Experiment != "serving" {
		t.Fatalf("experiment = %q", r.Experiment)
	}
	want := []string{"latency-critical", "batch", "best-effort"}
	if len(r.Entries) != len(want) {
		t.Fatalf("entries = %d, want %d", len(r.Entries), len(want))
	}
	for i, name := range want {
		if r.Entries[i].Name != name {
			t.Errorf("entry %d = %q, want %q", i, r.Entries[i].Name, name)
		}
		if r.Entries[i].N == 0 || r.Entries[i].P99US <= 0 {
			t.Errorf("entry %q has empty stats: %+v", name, r.Entries[i])
		}
	}
}
