package bench

import (
	"fmt"
	"io"

	"hamoffload/internal/faults"
	"hamoffload/internal/simtime"
	"hamoffload/internal/telemetry"
	"hamoffload/machine"
	"hamoffload/offload"
	"hamoffload/sched"
)

// The continuous-telemetry experiment exercises every instrument of
// internal/telemetry on one deterministic workload: waves of scheduled
// offloads over several VEs, batched four to a frame, with seeded user-DMA
// faults so the retry path shows up in the series and the causal flows.
// Everything the experiment prints through RenderTelemetry is simulated
// time, so two runs produce byte-identical output; the wall-clock side of
// the DES engine profile is reported separately (hambench sends it to
// stderr) because it is machine-dependent by design.

// TelemetryConfig parameterises the telemetry experiment.
type TelemetryConfig struct {
	VEs   int // offload targets (default 4)
	Tasks int // tasks per wave (default 24)
	Waves int // waves separated by idle gaps (default 3)
}

func (c *TelemetryConfig) fill() {
	if c.VEs <= 0 {
		c.VEs = 4
	}
	if c.Tasks <= 0 {
		c.Tasks = 24
	}
	if c.Waves <= 0 {
		c.Waves = 3
	}
}

// TelemetryResult is one run of the experiment.
type TelemetryResult struct {
	VEs, Tasks, Waves int
	Collector         *telemetry.Collector
	Engine            telemetry.EngineStats
	Retries           int64
}

// telemetryWork is the experiment's kernel: a roofline-charged vector loop
// whose size varies per task, so offload latencies spread across the SLO
// histogram buckets instead of collapsing onto one value.
var telemetryWork = offload.NewFunc1[offload.Unit]("bench.telemetry_work",
	func(c *offload.Ctx, n int64) (offload.Unit, error) {
		c.ChargeVector(n*200_000, n*25_000, 8)
		return offload.Unit{}, nil
	})

// telemetryPlan seeds payload bit flips so the armed retry policy produces
// nonzero retry telemetry. The flips are detected by the fault-tolerance
// checksum and re-sent; with a fixed seed the whole cascade is
// deterministic. (Op-scheduled DMA errors would miss: the small batch
// frames of this workload never touch the bulk user-DMA engine.)
func telemetryPlan() *faults.Plan {
	return &faults.Plan{Seed: 0x7E1E, Rules: []faults.Rule{
		{Kind: faults.BitFlip, Node: faults.AnyNode, Rate: 0.05},
	}}
}

// Telemetry runs the workload with every instrument armed (flows included)
// and returns the collector plus the engine profile of the run.
func Telemetry(cfg TelemetryConfig) (TelemetryResult, error) {
	cfg.fill()
	res := TelemetryResult{VEs: cfg.VEs, Tasks: cfg.Tasks, Waves: cfg.Waves}
	col := telemetry.New(telemetry.Config{
		Interval:  5 * simtime.Microsecond,
		SLOTarget: 60 * simtime.Microsecond,
		SLOWindow: 250 * simtime.Microsecond,
		Flows:     true,
	})
	m, err := machine.New(machine.Config{
		VEs:       cfg.VEs,
		Telemetry: col,
		Faults:    telemetryPlan(),
	})
	if err != nil {
		return res, err
	}
	res.Engine, err = telemetry.ProfileEngine(m.Eng, func() error {
		return m.RunMain(func(p *machine.Proc) error {
			rt, cerr := machine.ConnectDMA(p, m, machine.ProtocolOptions{
				Batch: offload.BatchPolicy{MaxMessages: 4},
				Retry: offload.FaultTolerance{
					MaxRetries:  3,
					BackoffBase: 2 * machine.Microsecond,
					BackoffMax:  16 * machine.Microsecond,
				},
			})
			if cerr != nil {
				return cerr
			}
			defer func() { _ = rt.Finalize() }()
			nodes := make([]offload.NodeID, cfg.VEs)
			for i := range nodes {
				nodes[i] = offload.NodeID(i + 1)
			}
			s, serr := sched.New(rt, nodes, sched.LeastInFlight())
			if serr != nil {
				return serr
			}
			for w := 0; w < cfg.Waves; w++ {
				if w > 0 {
					// Idle gap between waves, so the series show bursts.
					p.Sleep(60 * machine.Microsecond)
				}
				wave := w
				err := sched.ForEach(s, cfg.Tasks, func(task int) offload.Functor[offload.Unit] {
					return telemetryWork.Bind(int64(1 + (task+wave)%5))
				})
				if err != nil {
					return err
				}
			}
			res.Retries = rt.Retries()
			return nil
		})
	})
	res.Collector = col
	return res, err
}

// RenderTelemetry prints the experiment's deterministic artefacts: the
// sparkline timelines, the SLO table, the causal-flow summary, and the
// simulated-clock half of the engine profile. Wall-clock engine numbers are
// deliberately excluded — print them with telemetry.RenderEngineStats to a
// channel that is not diffed.
func RenderTelemetry(w io.Writer, r TelemetryResult) {
	fmt.Fprintf(w, "Continuous telemetry — DMA protocol, %d VEs, %d waves x %d tasks (batch 4, retries armed)\n\n",
		r.VEs, r.Waves, r.Tasks)
	r.Collector.Render(w)
	fmt.Fprintf(w, "runtime retries observed: %d\n", r.Retries)
	fmt.Fprintf(w, "engine (deterministic): %d events to t=%v, max queue depth %d\n",
		r.Engine.Events, r.Engine.FinalTime, r.Engine.MaxQueueLen)
}
