package bench

import (
	"fmt"
	"io"

	"hamoffload/internal/faults"
	"hamoffload/internal/simtime"
	"hamoffload/machine"
	"hamoffload/offload"
	"hamoffload/sched"
	"hamoffload/sched/health"
)

// Tail latency under a gray failure: one of two VEs degrades to Factor x
// its nominal service time (a window-mode SlowDown plan — the fail-slow VE
// of docs/FAULTS.md) while a round-robin workload keeps offloading to both.
// Four configurations isolate what each resilience mechanism buys back:
//
//   - baseline: retries armed, no hedging, no health scheduling — every
//     other offload eats the sick VE's full latency.
//   - hedged: offloads still in flight after the hedge delay re-issue to
//     the healthy VE and the first settled copy wins, capping the tail at
//     roughly delay + healthy latency.
//   - breaker: health-scored scheduling ejects the sick VE once its EWMA
//     is an outlier, so only the strike-window offloads pay full price.
//   - hedged-breaker: both — hedging bounds the strike-window offloads the
//     breaker has not yet ejected, the breaker keeps steady-state traffic
//     off the sick VE, and hedge-target selection avoids ejected nodes.
//
// Everything runs on the simulated clock, so the percentiles are exactly
// reproducible; BENCH_resilience.json pins them, and benchreg enforces the
// design target that hedged-breaker recovers at least 2x of the baseline's
// p99.9 (see cmd/benchreg).

// ResilienceConfig parameterises the gray-failure tail-latency experiment.
type ResilienceConfig struct {
	Offloads int     // timed sync offloads per mode (default 400)
	Warmup   int     // untimed warm-up offloads per mode (default 20)
	VecN     int64   // result vector length per offload (default 2048)
	Factor   float64 // sick VE degradation factor (default 10)
	Seed     uint64  // seeds hedge-delay and backoff jitter (default 42)
	// HedgeDelay is how long an offload may stay in flight before the hedge
	// fires; set between the healthy and sick latencies (default 40 us).
	HedgeDelay machine.Duration
}

func (c *ResilienceConfig) fill() {
	if c.Offloads <= 0 {
		c.Offloads = 400
	}
	if c.Warmup <= 0 {
		c.Warmup = 20
	}
	if c.VecN <= 0 {
		c.VecN = 2048
	}
	if c.Factor <= 1 {
		c.Factor = 10
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.HedgeDelay <= 0 {
		c.HedgeDelay = 40 * machine.Microsecond
	}
}

// resilienceVec is the experiment's kernel: a vector result big enough that
// the sick VE's degraded transfer path dominates the offload latency.
var resilienceVec = offload.NewFunc1[[]float64]("bench.resilience.vec",
	func(c *offload.Ctx, n int64) ([]float64, error) {
		out := make([]float64, n)
		for i := range out {
			out[i] = float64(i)
		}
		return out, nil
	})

// ResilienceMode is one configuration of the experiment.
type ResilienceMode struct {
	Name        string
	Hedging     bool
	Breaker     bool
	Hedges      int64 // hedged requests issued
	HedgeWins   int64 // offloads settled by the hedge
	Retries     int64
	Transitions int64 // breaker state transitions
	Stats       Stats // per-offload latency, us of simulated time
}

// ResilienceResult is the full four-mode comparison.
type ResilienceResult struct {
	Factor     float64
	HedgeDelay machine.Duration
	Modes      []ResilienceMode
}

// resiliencePlan degrades VE 0 (application node 1) by factor for the whole
// run: the canonical sick-but-alive card.
func resiliencePlan(factor float64) *faults.Plan {
	return &faults.Plan{Rules: []faults.Rule{
		{Kind: faults.SlowDown, Site: faults.SiteAny, Node: 0, Factor: factor,
			Until: simtime.Time(1 << 62)},
	}}
}

// measureResilienceMode runs one configuration on a fresh two-VE machine
// and returns its per-offload latency samples and counters.
func measureResilienceMode(cfg ResilienceConfig, mode *ResilienceMode) ([]float64, error) {
	cfg.fill()
	m, err := machine.New(machine.Config{VEs: 2, Faults: resiliencePlan(cfg.Factor)})
	if err != nil {
		return nil, err
	}
	var samples []float64
	err = m.RunMain(func(p *machine.Proc) error {
		nodes := []offload.NodeID{1, 2}
		var trk *health.Tracker
		opts := machine.ProtocolOptions{
			BufSize: 1 << 16,
			Retry: offload.FaultTolerance{
				MaxRetries:  3,
				BackoffBase: machine.Microsecond,
				BackoffMax:  20 * machine.Microsecond,
				Seed:        cfg.Seed,
			},
		}
		if mode.Hedging {
			opts.Hedge = offload.HedgePolicy{
				Delay:   cfg.HedgeDelay,
				Targets: nodes,
				Healthy: func(n offload.NodeID) bool { return trk == nil || trk.Allows(n) },
				Seed:    cfg.Seed,
			}
			opts.RetryBudget = offload.RetryBudget{Tokens: 64, Refill: 50 * machine.Microsecond}
		}
		rt, err := machine.ConnectDMA(p, m, opts)
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		pol := sched.RoundRobin()
		if mode.Breaker {
			trk = health.New(health.Config{
				OutlierFactor:  3,
				OutlierStrikes: 4,
				FailureStrikes: 3,
				OpenFor:        5 * machine.Millisecond,
			}, nodes, rt.SimNow)
			pol = sched.HealthAware(pol, trk)
		}
		inflight := make([]int, len(nodes))
		for i := 0; i < cfg.Warmup+cfg.Offloads; i++ {
			node := nodes[pol.Pick(i, nodes, inflight)]
			start := p.Now()
			_, err := offload.Sync(rt, node, resilienceVec.Bind(cfg.VecN))
			lat := p.Now().Sub(start)
			if trk != nil {
				trk.Observe(node, lat, err != nil)
			}
			if err != nil {
				return err
			}
			if i >= cfg.Warmup {
				samples = append(samples, lat.Microseconds())
			}
		}
		mode.Hedges = rt.Hedges()
		mode.HedgeWins = rt.HedgeWins()
		mode.Retries = rt.Retries()
		if trk != nil {
			mode.Transitions = trk.Transitions()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return samples, nil
}

// Resilience runs the four-mode gray-failure comparison.
func Resilience(cfg ResilienceConfig) (ResilienceResult, error) {
	cfg.fill()
	res := ResilienceResult{Factor: cfg.Factor, HedgeDelay: cfg.HedgeDelay}
	for _, mode := range []ResilienceMode{
		{Name: "baseline"},
		{Name: "hedged", Hedging: true},
		{Name: "breaker", Breaker: true},
		{Name: "hedged-breaker", Hedging: true, Breaker: true},
	} {
		samples, err := measureResilienceMode(cfg, &mode)
		if err != nil {
			return res, fmt.Errorf("bench: resilience %s: %w", mode.Name, err)
		}
		mode.Stats = NewStats(samples)
		res.Modes = append(res.Modes, mode)
	}
	return res, nil
}

// ResilienceReport runs the comparison and shapes it as a regression
// report: one entry per mode, named after the mode.
func ResilienceReport(cfg ResilienceConfig) (Report, error) {
	res, err := Resilience(cfg)
	if err != nil {
		return Report{}, err
	}
	r := Report{Experiment: "resilience"}
	for _, mode := range res.Modes {
		r.Entries = append(r.Entries, ReportEntry{Name: mode.Name, Stats: mode.Stats})
	}
	return r, nil
}

// RenderResilience prints the comparison as a fixed-width table.
func RenderResilience(w io.Writer, r ResilienceResult) {
	fmt.Fprintf(w, "Gray-failure tail latency — DMA protocol, VE 1 of 2 degraded %gx, hedge delay %v\n",
		r.Factor, r.HedgeDelay)
	fmt.Fprintf(w, "%-16s  %8s  %8s  %8s  %8s  %7s  %6s  %8s  %6s\n",
		"mode", "p50 us", "p99 us", "p99.9 us", "mean us", "hedges", "wins", "retries", "trans")
	for _, m := range r.Modes {
		fmt.Fprintf(w, "%-16s  %8.2f  %8.2f  %8.2f  %8.2f  %7d  %6d  %8d  %6d\n",
			m.Name, m.Stats.P50US, m.Stats.P99US, m.Stats.P999US, m.Stats.MeanUS,
			m.Hedges, m.HedgeWins, m.Retries, m.Transitions)
	}
	base, hb := r.Modes[0].Stats, r.Modes[len(r.Modes)-1].Stats
	if hb.P999US > 0 {
		fmt.Fprintf(w, "p99.9 recovered: %.2fx (baseline %.2f us -> hedged-breaker %.2f us)\n",
			base.P999US/hb.P999US, base.P999US, hb.P999US)
	}
}
