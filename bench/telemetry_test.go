package bench

import (
	"bytes"
	"testing"
)

// Determinism guard for the armed telemetry experiment: two identical runs
// must produce byte-identical renders, Chrome flow exports and folded
// flamegraph stacks, and identical deterministic engine-profile fields —
// the property CI's telemetry smoke job enforces on the full binary.
func TestTelemetryArmedDeterministic(t *testing.T) {
	cfg := TelemetryConfig{VEs: 2, Tasks: 8, Waves: 2}
	type dump struct {
		render, chrome, folded []byte
	}
	run := func() (TelemetryResult, dump) {
		res, err := Telemetry(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var d dump
		var render, chrome, folded bytes.Buffer
		RenderTelemetry(&render, res)
		if err := res.Collector.ExportChromeFlows(&chrome); err != nil {
			t.Fatal(err)
		}
		if err := res.Collector.ExportFolded(&folded); err != nil {
			t.Fatal(err)
		}
		d.render, d.chrome, d.folded = render.Bytes(), chrome.Bytes(), folded.Bytes()
		return res, d
	}
	res1, d1 := run()
	res2, d2 := run()
	if !bytes.Equal(d1.render, d2.render) {
		t.Error("telemetry render differs between identical runs")
	}
	if !bytes.Equal(d1.chrome, d2.chrome) {
		t.Error("Chrome flow export differs between identical runs")
	}
	if !bytes.Equal(d1.folded, d2.folded) {
		t.Error("folded flamegraph export differs between identical runs")
	}
	if res1.Engine.Events != res2.Engine.Events ||
		res1.Engine.FinalTime != res2.Engine.FinalTime ||
		res1.Engine.MaxQueueLen != res2.Engine.MaxQueueLen {
		t.Errorf("deterministic engine fields differ: %+v vs %+v", res1.Engine, res2.Engine)
	}
	if res1.Retries != res2.Retries {
		t.Errorf("retry counts differ: %d vs %d", res1.Retries, res2.Retries)
	}
	if len(d1.folded) == 0 {
		t.Error("armed run produced no folded stacks")
	}
}

// The engine report's deterministic fields must reproduce across separate
// profiled runs; the wall-clock fields only have to pass their own gates.
func TestEngineReportDeterministicFields(t *testing.T) {
	cfg := TelemetryConfig{VEs: 2, Tasks: 8, Waves: 2}
	r1, err := EngineProfileReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := EngineProfileReport(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Neutralise the machine-dependent fields, then demand exact agreement.
	r2.WallEventsPerSec = r1.WallEventsPerSec
	r2.AllocsPerEvent = r1.AllocsPerEvent
	if bad := CompareEngineReports(r1, r2); len(bad) != 0 {
		t.Errorf("deterministic engine fields drifted: %v", bad)
	}
}
