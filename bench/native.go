package bench

import (
	"fmt"
	"io"

	"hamoffload/internal/vecore"
	"hamoffload/machine"
	"hamoffload/offload"
)

// This file quantifies the paper's §I framing: "Whether native execution or
// offloading is the right match in practise depends on the application at
// hand, specifically the amount of scalar code, I/O, and the existing
// structure of the code." A synthetic application alternates vectorisable
// phases with scalar phases and runs in two modes:
//
//   - native: everything on the VE — vector phases fly, scalar phases crawl
//     on the 1.4 GHz scalar pipeline (and I/O reverse-offloads to the VH);
//   - offload: scalar phases run on the fast host, vector phases are
//     offloaded over the DMA protocol, paying the per-offload cost.
//
// Sweeping the scalar fraction locates the crossover that §I argues about.

// NativeVsOffloadRow is one point of the scalar-fraction sweep.
type NativeVsOffloadRow struct {
	ScalarFraction float64
	NativeUS       float64
	OffloadUS      float64
	OffloadWins    bool
}

// NativeVsOffloadConfig parameterises the sweep.
type NativeVsOffloadConfig struct {
	// Phases is the number of alternating vector/scalar phase pairs
	// (default 20) — each vector phase is one offload in offload mode.
	Phases int
	// WorkOps is the total operation count split between vector and scalar
	// phases (default 20e6).
	WorkOps int64
	// Fractions are the scalar-work fractions to sweep (default 0..0.5).
	Fractions []float64
}

func (c *NativeVsOffloadConfig) fill() {
	if c.Phases <= 0 {
		c.Phases = 20
	}
	if c.WorkOps <= 0 {
		c.WorkOps = 20_000_000
	}
	if len(c.Fractions) == 0 {
		c.Fractions = []float64{0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5}
	}
}

var nvoVector = offload.NewFunc1[offload.Unit]("bench.nvo_vector",
	func(c *offload.Ctx, flops int64) (offload.Unit, error) {
		c.ChargeVector(flops, 0, 8)
		return offload.Unit{}, nil
	})

// NativeVsOffload runs the sweep and returns one row per scalar fraction.
func NativeVsOffload(cfg NativeVsOffloadConfig) ([]NativeVsOffloadRow, error) {
	cfg.fill()
	ve := vecore.DefaultModel()
	host := vecore.DefaultHostModel()

	var rows []NativeVsOffloadRow
	for _, f := range cfg.Fractions {
		scalarOps := int64(f * float64(cfg.WorkOps))
		vectorOps := cfg.WorkOps - scalarOps
		perPhaseVector := vectorOps / int64(cfg.Phases)
		perPhaseScalar := scalarOps / int64(cfg.Phases)

		// Native mode: pure cost-model arithmetic — every phase on the VE,
		// no transfers at all.
		native := float64(0)
		for i := 0; i < cfg.Phases; i++ {
			native += ve.VectorTime(perPhaseVector, 0, 8).Microseconds()
			native += ve.ScalarTime(perPhaseScalar).Microseconds()
		}

		// Offload mode: scalar on the host (measured through the host
		// model), vector phases offloaded over the DMA protocol on a real
		// simulated machine, so the protocol cost is the measured one.
		m, err := machine.New(machine.Config{VEs: 1})
		if err != nil {
			return nil, err
		}
		var offloadUS float64
		err = m.RunMain(func(p *machine.Proc) error {
			rt, err := machine.ConnectDMA(p, m, machine.ProtocolOptions{})
			if err != nil {
				return err
			}
			defer func() { _ = rt.Finalize() }()
			// Warm the protocol path.
			if _, err := offload.Sync(rt, 1, nvoVector.Bind(0)); err != nil {
				return err
			}
			start := m.Now()
			for i := 0; i < cfg.Phases; i++ {
				if _, err := offload.Sync(rt, 1, nvoVector.Bind(perPhaseVector)); err != nil {
					return err
				}
				// Scalar phase on the host: a serial region, one core.
				p.Sleep(host.VectorTime(perPhaseScalar, 0, 1))
			}
			offloadUS = (m.Now() - start).Microseconds()
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, NativeVsOffloadRow{
			ScalarFraction: f,
			NativeUS:       native,
			OffloadUS:      offloadUS,
			OffloadWins:    offloadUS < native,
		})
	}
	return rows, nil
}

// RenderNativeVsOffload prints the sweep.
func RenderNativeVsOffload(w io.Writer, rows []NativeVsOffloadRow) {
	fmt.Fprintln(w, "Native VE execution vs offloading (paper §I), by scalar-work fraction")
	fmt.Fprintf(w, "%14s %14s %14s %10s\n", "scalar frac", "native [us]", "offload [us]", "winner")
	for _, r := range rows {
		winner := "native"
		if r.OffloadWins {
			winner = "offload"
		}
		fmt.Fprintf(w, "%14.3f %14.1f %14.1f %10s\n",
			r.ScalarFraction, r.NativeUS, r.OffloadUS, winner)
	}
}
