package bench

import (
	"hamoffload/internal/trace"
	"hamoffload/machine"
	"hamoffload/offload"
)

// MeasureHAMEmptyHist is MeasureHAMEmpty with a per-offload latency
// distribution: it exposes protocol jitter such as poll-phase alignment and
// slot-drain stalls that the plain average hides. The simulation is
// deterministic, so the histogram is reproducible.
func MeasureHAMEmptyHist(cfg Fig9Config, dmaProtocol bool) (*trace.Histogram, error) {
	cfg.fill()
	m, err := machine.New(machine.Config{VEs: 1, Socket: cfg.Socket})
	if err != nil {
		return nil, err
	}
	name := "HAM-Offload empty offload (VEO protocol)"
	if dmaProtocol {
		name = "HAM-Offload empty offload (DMA protocol)"
	}
	hist := trace.NewHistogram(name)
	err = m.RunMain(func(p *machine.Proc) error {
		var rt *offload.Runtime
		var cerr error
		if dmaProtocol {
			rt, cerr = machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		} else {
			rt, cerr = machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		}
		if cerr != nil {
			return cerr
		}
		defer func() { _ = rt.Finalize() }()
		for i := 0; i < cfg.Warmup; i++ {
			if _, err := offload.Sync(rt, 1, benchEmpty.Bind()); err != nil {
				return err
			}
		}
		for i := 0; i < cfg.Reps; i++ {
			start := p.Now()
			if _, err := offload.Sync(rt, 1, benchEmpty.Bind()); err != nil {
				return err
			}
			hist.Observe(p.Now().Sub(start))
		}
		return nil
	})
	return hist, err
}
