package bench

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"hamoffload/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestNilTracerKeepsFig9BitIdentical is the near-zero-cost guarantee: with a
// tracer attached the DMA protocol's simulated offload cost must be
// bit-identical to the untraced run, because instrumentation only records
// spans and never adds simulated time.
func TestNilTracerKeepsFig9BitIdentical(t *testing.T) {
	cfg := Fig9Config{Reps: 60}
	plain, err := MeasureHAMEmpty(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Tracer = trace.NewTracer()
	traced, err := MeasureHAMEmpty(cfg, true)
	if err != nil {
		t.Fatal(err)
	}
	if plain != traced {
		t.Errorf("tracing changed the simulation: untraced %.6f µs, traced %.6f µs", plain, traced)
	}
	if cfg.Tracer.Len() == 0 {
		t.Error("traced run recorded no spans")
	}
	// Guard against timing drift relative to the recorded EXPERIMENTS.md
	// value (5.93 µs per empty DMA-protocol offload).
	if math.Abs(plain-5.93) > 0.05 {
		t.Errorf("HAM-DMA empty offload = %.3f µs, want ≈5.93", plain)
	}
}

// TestBreakdownTilesEndToEnd is the Fig. 9 decomposition criterion: the
// phase rows must sum to the offload's end-to-end latency (they tile the
// window by construction) and the PCIe/framework split must resemble the
// paper's 1.2 µs + ~5 µs of 6.1 µs.
func TestBreakdownTilesEndToEnd(t *testing.T) {
	res, err := Breakdown(Fig9Config{}, true)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range res.Rows {
		sum += r.Total.Microseconds()
	}
	if res.TotalUS <= 0 || math.Abs(sum-res.TotalUS) > res.TotalUS*0.01 {
		t.Errorf("phase rows sum to %.4f µs, end-to-end is %.4f µs (>1%% off)", sum, res.TotalUS)
	}
	if math.Abs(res.TotalUS-5.93) > 0.3 {
		t.Errorf("end-to-end = %.3f µs, want ≈5.93", res.TotalUS)
	}
	if res.PCIeUS < 0.5 || res.PCIeUS > 2.5 {
		t.Errorf("PCIe share = %.3f µs, want the paper's ≈1.2 µs regime", res.PCIeUS)
	}
	if res.FrameworkUS <= res.PCIeUS {
		t.Errorf("framework share %.3f µs should dominate PCIe share %.3f µs", res.FrameworkUS, res.PCIeUS)
	}
	var buf bytes.Buffer
	RenderBreakdown(&buf, res)
	for _, want := range []string{"PCIe wire time", "framework time", "timeline"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("rendered breakdown missing %q", want)
		}
	}
}

// TestHostSpansSumToOffload mirrors the trace-validity acceptance check on
// the exported span set: for one empty HAM-DMA offload, the initiator-side
// encode + call + wait spans must sum to the end-to-end offload latency
// within 1% (the host path has no uninstrumented gaps).
func TestHostSpansSumToOffload(t *testing.T) {
	cfg := Fig9Config{Reps: 30, Tracer: trace.NewTracer()}
	if _, err := MeasureHAMEmpty(cfg, true); err != nil {
		t.Fatal(err)
	}
	spans := cfg.Tracer.Spans()
	win, ok := lastOffloadSpan(spans)
	if !ok {
		t.Fatal("no offload span recorded")
	}
	var sub float64
	for _, s := range spans {
		if s.Node != 0 || s.MsgID < 0 {
			continue
		}
		if s.Start >= win.Start && s.End <= win.End &&
			(s.Phase == trace.PhaseEncode || s.Phase == trace.PhaseCall || s.Phase == trace.PhaseWait) {
			sub += s.Dur().Microseconds()
		}
	}
	total := win.Dur().Microseconds()
	if total <= 0 || math.Abs(sub-total) > total*0.01 {
		t.Errorf("encode+call+wait = %.4f µs, offload = %.4f µs (>1%% apart)", sub, total)
	}
}

// TestChromeExportGolden pins the Chrome trace-event export byte-for-byte:
// the simulation is deterministic, so the exported JSON must be stable.
// Regenerate with `go test ./bench -run Golden -update` after intentional
// format or timing changes.
func TestChromeExportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := TraceOffloads(2, &buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("export is not a JSON array: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("export is empty")
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export drifted from golden file (%d vs %d bytes); run with -update if intentional",
			buf.Len(), len(want))
	}
}
