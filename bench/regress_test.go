package bench

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestBatchAmortisation is the design target of docs/BATCHING.md as a
// tier-1 test: a 16-message batch's amortised per-message empty-offload
// cost must be at most half the single-message DMA-protocol cost (the
// committed baseline says it is ~8%).
func TestBatchAmortisation(t *testing.T) {
	r, err := Batch(BatchConfig{Reps: 10, Warmup: 3, Sizes: []int{1, 16}})
	if err != nil {
		t.Fatal(err)
	}
	if r.SingleUS < 4 || r.SingleUS > 8 {
		t.Errorf("single-message baseline %.2f us drifted from the Fig. 9 ballpark (5.93)", r.SingleUS)
	}
	var b1, b16 *BatchPoint
	for i := range r.Points {
		switch r.Points[i].BatchSize {
		case 1:
			b1 = &r.Points[i]
		case 16:
			b16 = &r.Points[i]
		}
	}
	if b1 == nil || b16 == nil {
		t.Fatalf("sweep missing sizes: %+v", r.Points)
	}
	// A batch of one pays only the 8-byte frame header: within a few
	// percent of the plain protocol.
	if b1.PerMsgUS > r.SingleUS*1.10 {
		t.Errorf("batch of 1 costs %.2f us vs single %.2f us (>10%% framing overhead)",
			b1.PerMsgUS, r.SingleUS)
	}
	if b16.PerMsgUS > r.SingleUS*0.5 {
		t.Errorf("batch of 16 amortised to %.2f us/msg vs single %.2f us — above the 50%% target",
			b16.PerMsgUS, r.SingleUS)
	}
}

// TestRegressReports pins the regression harness itself: stats reduction,
// baseline round trip, and the comparator's verdicts.
func TestRegressReports(t *testing.T) {
	s := NewStats([]float64{5, 1, 4, 2, 3})
	if s.N != 5 || s.MeanUS != 3 || s.P50US != 3 || s.P99US != 5 {
		t.Fatalf("NewStats = %+v", s)
	}
	if z := (NewStats(nil)); z.N != 0 || z.MeanUS != 0 {
		t.Fatalf("NewStats(nil) = %+v", z)
	}

	base := Report{Experiment: "unit", Entries: []ReportEntry{
		{Name: "op-a", Stats: Stats{N: 3, MeanUS: 10, P50US: 9, P99US: 12}},
		{Name: "op-b", Stats: Stats{N: 3, MeanUS: 2, P50US: 2, P99US: 2.5}},
	}}
	path := filepath.Join(t.TempDir(), "BENCH_unit.json")
	if err := WriteReport(path, base); err != nil {
		t.Fatal(err)
	}
	loaded, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if bad := CompareReports(base, loaded, 0); len(bad) != 0 {
		t.Fatalf("round-tripped baseline does not compare clean: %v", bad)
	}

	// Within tolerance passes; beyond it fails, naming the stat.
	cur := Report{Experiment: "unit", Entries: []ReportEntry{
		{Name: "op-a", Stats: Stats{N: 3, MeanUS: 10.4, P50US: 9, P99US: 12}},
		{Name: "op-b", Stats: Stats{N: 3, MeanUS: 2, P50US: 2, P99US: 4}},
	}}
	if bad := CompareReports(base, cur, 0.05); len(bad) != 1 ||
		!strings.Contains(bad[0], "op-b") || !strings.Contains(bad[0], "p99") {
		t.Fatalf("CompareReports(tol 5%%) = %v, want exactly the op-b p99 regression", bad)
	}
	// Improvements never fail.
	better := Report{Experiment: "unit", Entries: []ReportEntry{
		{Name: "op-a", Stats: Stats{N: 3, MeanUS: 5, P50US: 4, P99US: 6}},
		{Name: "op-b", Stats: Stats{N: 3, MeanUS: 1, P50US: 1, P99US: 1}},
	}}
	if bad := CompareReports(base, better, 0); len(bad) != 0 {
		t.Fatalf("improvement flagged as regression: %v", bad)
	}
	// Missing entries and experiment mismatches are violations.
	if bad := CompareReports(base, Report{Experiment: "unit"}, 0.5); len(bad) != 2 {
		t.Fatalf("missing entries = %v, want 2 violations", bad)
	}
	if bad := CompareReports(base, Report{Experiment: "other"}, 0.5); len(bad) != 1 {
		t.Fatalf("experiment mismatch = %v", bad)
	}
}
