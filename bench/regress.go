package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// This file is the benchmark-regression harness: it reduces the Fig. 9 and
// batch experiments to per-operation latency statistics, serialises them as
// JSON baselines (BENCH_fig9.json, BENCH_batch.json at the repo root), and
// compares fresh runs against the committed baselines within a tolerance.
// All times are simulated, so on an unchanged tree a rerun reproduces the
// baseline exactly; any drift is a real change to the modelled protocols.

// Stats summarises per-operation latency samples in microseconds of
// simulated time. Percentiles are nearest-rank over the sorted samples.
type Stats struct {
	N      int     `json:"n"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
}

// NewStats computes Stats from raw samples.
func NewStats(samples []float64) Stats {
	if len(samples) == 0 {
		return Stats{}
	}
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)
	var sum float64
	for _, s := range sorted {
		sum += s
	}
	rank := func(p float64) float64 {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return Stats{
		N:      len(sorted),
		MeanUS: sum / float64(len(sorted)),
		P50US:  rank(0.50),
		P99US:  rank(0.99),
		P999US: rank(0.999),
	}
}

// ReportEntry is one measured operation.
type ReportEntry struct {
	Name string `json:"name"`
	Stats
}

// Report is one experiment's set of entries. Entries is a slice, not a map,
// so the JSON serialisation is byte-stable across runs.
type Report struct {
	Experiment string        `json:"experiment"`
	Entries    []ReportEntry `json:"entries"`
}

// Entry returns the named entry, or false.
func (r Report) Entry(name string) (ReportEntry, bool) {
	for _, e := range r.Entries {
		if e.Name == name {
			return e, true
		}
	}
	return ReportEntry{}, false
}

// Fig9Report measures the two HAM-Offload bars of Fig. 9 with per-offload
// samples and returns them as a regression report.
func Fig9Report(cfg Fig9Config) (Report, error) {
	cfg.fill()
	r := Report{Experiment: "fig9"}
	for _, sys := range []struct {
		name string
		dma  bool
	}{
		{"ham-veo-empty", false},
		{"ham-dma-empty", true},
	} {
		samples, err := MeasureHAMEmptySamples(cfg, sys.dma)
		if err != nil {
			return r, fmt.Errorf("bench: %s: %w", sys.name, err)
		}
		r.Entries = append(r.Entries, ReportEntry{Name: sys.name, Stats: NewStats(samples)})
	}
	return r, nil
}

// BatchReport measures the batch sweep with per-batch samples (amortised to
// per-message cost) and returns it as a regression report. The entry names
// are "batch-<k>-per-msg" plus the "single-dma" baseline.
func BatchReport(cfg BatchConfig) (Report, error) {
	cfg.fill()
	r := Report{Experiment: "batch"}
	single, err := MeasureHAMEmptySamples(Fig9Config{Socket: cfg.Socket, Reps: cfg.Reps, Warmup: cfg.Warmup}, true)
	if err != nil {
		return r, fmt.Errorf("bench: single-dma: %w", err)
	}
	r.Entries = append(r.Entries, ReportEntry{Name: "single-dma", Stats: NewStats(single)})
	for _, k := range cfg.Sizes {
		samples, err := MeasureBatchEmptySamples(cfg, k)
		if err != nil {
			return r, fmt.Errorf("bench: batch-%d: %w", k, err)
		}
		r.Entries = append(r.Entries, ReportEntry{
			Name:  fmt.Sprintf("batch-%d-per-msg", k),
			Stats: NewStats(samples),
		})
	}
	return r, nil
}

// WriteReport serialises r as indented JSON at path (trailing newline, so
// the baseline diffs cleanly).
func WriteReport(path string, r Report) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadReport loads a baseline written by WriteReport.
func ReadReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return r, nil
}

// CompareReports checks cur against the committed baseline base: every
// baseline entry must still exist, and neither its mean nor its p99 may
// regress (grow) by more than tol (e.g. 0.05 = 5%). Improvements pass.
// It returns one human-readable line per violation; empty means clean.
func CompareReports(base, cur Report, tol float64) []string {
	var bad []string
	if base.Experiment != cur.Experiment {
		bad = append(bad, fmt.Sprintf("experiment mismatch: baseline %q vs current %q",
			base.Experiment, cur.Experiment))
		return bad
	}
	for _, be := range base.Entries {
		ce, ok := cur.Entry(be.Name)
		if !ok {
			bad = append(bad, fmt.Sprintf("%s/%s: entry missing from current run",
				base.Experiment, be.Name))
			continue
		}
		check := func(metric string, baseV, curV float64) {
			if baseV <= 0 {
				return
			}
			if curV > baseV*(1+tol) {
				bad = append(bad, fmt.Sprintf("%s/%s: %s regressed %.2f -> %.2f us (+%.1f%%, tolerance %.1f%%)",
					base.Experiment, be.Name, metric, baseV, curV,
					(curV/baseV-1)*100, tol*100))
			}
		}
		check("mean", be.MeanUS, ce.MeanUS)
		check("p99", be.P99US, ce.P99US)
		check("p999", be.P999US, ce.P999US)
	}
	return bad
}
