package bench

import (
	"fmt"
	"io"

	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
	"hamoffload/internal/units"
	"hamoffload/machine"
	"hamoffload/offload"
)

// This file implements the design-space ablations called out in DESIGN.md §5.
// None of them appears as a figure in the paper, but each isolates a design
// choice the paper discusses in prose.

// AblationRow is one configuration's outcome.
type AblationRow struct {
	Config string
	Value  float64
	Unit   string
}

// AblateHugePages compares VEO-write bandwidth at a large size with 2 MiB
// huge pages vs 4 KiB pages (§III-D: bulk bandwidth needs huge pages).
func AblateHugePages(size int64) ([]AblationRow, error) {
	if size <= 0 {
		size = (64 * units.MiB).Int64()
	}
	var rows []AblationRow
	for _, huge := range []bool{true, false} {
		huge := huge
		label := "2MiB huge pages"
		if !huge {
			label = "4KiB pages"
		}
		// The page-size effect shows against the naive translator; the 4dma
		// manager was invented to hide exactly this cost.
		for _, naive := range []bool{false, true} {
			mgr := "4dma"
			if naive {
				mgr = "naive"
			}
			cfg := Fig10Config{
				MinSize: size, MaxSize: size,
				HugePages:       &huge,
				NaiveDMAManager: naive,
				Reps:            3,
			}
			series, err := Fig10(cfg)
			if err != nil {
				return nil, err
			}
			pt, _ := series[0].At(size) // VEO write, VH=>VE
			rows = append(rows, AblationRow{
				Config: fmt.Sprintf("%s, %s DMA manager", label, mgr),
				Value:  pt.GiBps,
				Unit:   "GiB/s (VEO write, " + sizeLabel(size) + ")",
			})
		}
	}
	return rows, nil
}

// AblatePollInterval sweeps the VE runtime's receive-flag poll interval in
// the DMA protocol and reports the empty-offload cost — the latency/VE-core
// waste trade-off of DESIGN.md §5.2.
func AblatePollInterval(intervalsNS []int64) ([]AblationRow, error) {
	if len(intervalsNS) == 0 {
		intervalsNS = []int64{50, 150, 500, 2000, 8000}
	}
	var rows []AblationRow
	for _, ns := range intervalsNS {
		timing := topology.DefaultTiming()
		timing.HAMVEPollInterval = simtime.Duration(ns) * simtime.Nanosecond
		us, err := measureEmptyWithTiming(&timing)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Config: fmt.Sprintf("poll every %dns", ns),
			Value:  us,
			Unit:   "us/offload (DMA protocol)",
		})
	}
	return rows, nil
}

// AblateResultPath compares returning small results via SHM word stores
// (the paper's choice, §V-B) against a user-DMA write.
func AblateResultPath() ([]AblationRow, error) {
	var rows []AblationRow
	for _, viaDMA := range []bool{false, true} {
		label := "SHM word stores"
		if viaDMA {
			label = "user-DMA write"
		}
		us, err := measureEmptyWithOptions(machine.ProtocolOptions{ResultViaDMA: viaDMA})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Config: "result via " + label,
			Value:  us,
			Unit:   "us/offload (DMA protocol)",
		})
	}
	return rows, nil
}

// AblateBufferCount varies the number of message slots and measures the
// completion time of a pipeline of asynchronous offloads — more slots allow
// deeper overlap before the host must drain a slot.
func AblateBufferCount(counts []int, pipelineDepth int) ([]AblationRow, error) {
	if len(counts) == 0 {
		counts = []int{1, 2, 4, 8, 16}
	}
	if pipelineDepth <= 0 {
		pipelineDepth = 32
	}
	// An empty kernel keeps the measurement latency-dominated: the benefit
	// of extra slots is protocol-level overlap, which long-running kernels
	// would mask behind serial VE execution time.
	var rows []AblationRow
	for _, n := range counts {
		m, err := machine.New(machine.Config{VEs: 1})
		if err != nil {
			return nil, err
		}
		var us float64
		err = m.RunMain(func(p *machine.Proc) error {
			rt, err := machine.ConnectDMA(p, m, machine.ProtocolOptions{NumBuffers: n})
			if err != nil {
				return err
			}
			defer func() { _ = rt.Finalize() }()
			if _, err := offload.Sync(rt, 1, benchEmpty.Bind()); err != nil {
				return err
			}
			start := p.Now()
			futs := make([]*offload.Future[offload.Unit], 0, pipelineDepth)
			for i := 0; i < pipelineDepth; i++ {
				futs = append(futs, offload.Async(rt, 1, benchEmpty.Bind()))
			}
			for _, f := range futs {
				if _, err := f.Get(); err != nil {
					return err
				}
			}
			us = p.Now().Sub(start).Microseconds() / float64(pipelineDepth)
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Config: fmt.Sprintf("%d buffers", n),
			Value:  us,
			Unit:   fmt.Sprintf("us/offload (pipeline of %d)", pipelineDepth),
		})
	}
	return rows, nil
}

func measureEmptyWithTiming(t *topology.Timing) (float64, error) {
	m, err := machine.New(machine.Config{VEs: 1, Timing: t})
	if err != nil {
		return 0, err
	}
	return runEmptyLoop(m, machine.ProtocolOptions{})
}

func measureEmptyWithOptions(opts machine.ProtocolOptions) (float64, error) {
	m, err := machine.New(machine.Config{VEs: 1})
	if err != nil {
		return 0, err
	}
	return runEmptyLoop(m, opts)
}

func runEmptyLoop(m *machine.Machine, opts machine.ProtocolOptions) (float64, error) {
	var us float64
	err := m.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectDMA(p, m, opts)
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		op := func() error {
			_, err := offload.Sync(rt, 1, benchEmpty.Bind())
			return err
		}
		v, err := timedLoop(p, 10, 100, op)
		us = v
		return err
	})
	return us, err
}

// GranularityRow is one point of the offload-granularity sweep.
type GranularityRow struct {
	KernelUS  float64 // VE kernel duration
	VEOUS     float64 // time per offloaded kernel, VEO protocol
	DMAUS     float64 // time per offloaded kernel, DMA protocol
	Speedup   float64 // VEO/DMA — the application-level gain
	Efficient bool    // offloading pays off at all (kernel > DMA overhead)
}

// AblateGranularity relates the microbenchmark numbers to application impact,
// following the paper's §V-A discussion ("how much these numbers affect
// application runtimes depends on the frequency and granularity of
// offloading"): for kernels of increasing duration, it measures the per-call
// time under both protocols. Short kernels see the full ~70× protocol gap;
// millisecond kernels amortise it away — the companion SC'14 study's 2.6×
// application speedup sits in the middle of this curve.
func AblateGranularity(kernelsUS []float64) ([]GranularityRow, error) {
	if len(kernelsUS) == 0 {
		kernelsUS = []float64{0, 10, 100, 1000, 10000}
	}
	// flopsFor converts a target kernel duration into a ChargeVector flop
	// count on 8 VE cores at the default efficiency.
	flopsFor := func(us float64) int64 {
		return int64(us / 1e6 * 2150.4e9 * 0.85)
	}
	kernel := offload.NewFunc1[offload.Unit]("bench.granularity_kernel",
		func(c *offload.Ctx, flops int64) (offload.Unit, error) {
			c.ChargeVector(flops, 0, 8)
			return offload.Unit{}, nil
		})

	measure := func(dma bool, flops int64) (float64, error) {
		m, err := machine.New(machine.Config{VEs: 1})
		if err != nil {
			return 0, err
		}
		var us float64
		err = m.RunMain(func(p *machine.Proc) error {
			var rt *offload.Runtime
			var cerr error
			if dma {
				rt, cerr = machine.ConnectDMA(p, m, machine.ProtocolOptions{})
			} else {
				rt, cerr = machine.ConnectVEO(p, m, machine.ProtocolOptions{})
			}
			if cerr != nil {
				return cerr
			}
			defer func() { _ = rt.Finalize() }()
			op := func() error {
				_, err := offload.Sync(rt, 1, kernel.Bind(flops))
				return err
			}
			v, err := timedLoop(p, 5, 20, op)
			us = v
			return err
		})
		return us, err
	}

	var rows []GranularityRow
	for _, k := range kernelsUS {
		flops := flopsFor(k)
		veo, err := measure(false, flops)
		if err != nil {
			return nil, err
		}
		dma, err := measure(true, flops)
		if err != nil {
			return nil, err
		}
		rows = append(rows, GranularityRow{
			KernelUS:  k,
			VEOUS:     veo,
			DMAUS:     dma,
			Speedup:   veo / dma,
			Efficient: k > dma-k,
		})
	}
	return rows, nil
}

// RenderGranularity prints the sweep as a table.
func RenderGranularity(w io.Writer, rows []GranularityRow) {
	fmt.Fprintln(w, "Offload granularity vs protocol impact (per offloaded kernel)")
	fmt.Fprintf(w, "%12s %14s %14s %10s\n", "kernel [us]", "VEO proto [us]", "DMA proto [us]", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "%12.0f %14.1f %14.1f %9.1fx\n", r.KernelUS, r.VEOUS, r.DMAUS, r.Speedup)
	}
}
