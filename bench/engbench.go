package bench

import (
	"encoding/json"
	"fmt"
	"os"
)

// The engine benchmark profiles the DES engine itself while it drives the
// telemetry workload: how many events the run schedules, how deep the event
// queue gets, and — on the wall-clock side — how fast the engine turns
// events over and how much it allocates per event. The simulated-clock
// fields are deterministic and compared exactly against the committed
// BENCH_engine.json; the wall-clock fields are machine-dependent, so the
// comparison only applies loose sanity gates (a throughput floor and an
// allocation ceiling) that catch order-of-magnitude engine regressions
// without flaking on slow CI hosts.

const (
	// minEventsPerWallSec is the engine-throughput floor. The simulator
	// sustains hundreds of thousands of events per second on any modern
	// host; dipping below this means the engine core regressed badly.
	minEventsPerWallSec = 20_000
	// allocSlack is how far allocations per event may grow over the
	// committed baseline before the gate trips.
	allocSlack = 2.0
)

// EngineReport is the committed DES-engine profile baseline.
type EngineReport struct {
	Experiment       string  `json:"experiment"` // always "engine"
	Offloads         int     `json:"offloads"`
	VEs              int     `json:"ves"`
	Events           uint64  `json:"events"`
	SimTimeUS        float64 `json:"sim_time_us"`
	MaxQueueDepth    int     `json:"max_queue_depth"`
	WallEventsPerSec float64 `json:"wall_events_per_sec"`
	AllocsPerEvent   float64 `json:"allocs_per_event"`
}

// EngineProfileReport runs the telemetry workload and reduces its engine
// profile to a regression report.
func EngineProfileReport(cfg TelemetryConfig) (EngineReport, error) {
	cfg.fill()
	res, err := Telemetry(cfg)
	if err != nil {
		return EngineReport{}, err
	}
	e := res.Engine
	return EngineReport{
		Experiment:       "engine",
		Offloads:         cfg.Waves * cfg.Tasks,
		VEs:              cfg.VEs,
		Events:           e.Events,
		SimTimeUS:        e.FinalTime.Microseconds(),
		MaxQueueDepth:    e.MaxQueueLen,
		WallEventsPerSec: e.EventsPerWallSec,
		AllocsPerEvent:   e.AllocsPerEvent,
	}, nil
}

// WriteEngineReport serialises r as indented JSON at path, mirroring
// WriteReport's trailing-newline convention.
func WriteEngineReport(path string, r EngineReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadEngineReport loads a baseline written by WriteEngineReport.
func ReadEngineReport(path string) (EngineReport, error) {
	var r EngineReport
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("bench: parsing %s: %w", path, err)
	}
	return r, nil
}

// CompareEngineReports checks cur against the committed baseline: the
// deterministic fields must match exactly (any drift is a real change to
// the simulated machine or the telemetry workload), while the wall-clock
// fields pass through the loose sanity gates described above. It returns
// one human-readable line per violation; empty means clean.
func CompareEngineReports(base, cur EngineReport) []string {
	var bad []string
	if base.Experiment != cur.Experiment {
		return append(bad, fmt.Sprintf("experiment mismatch: baseline %q vs current %q",
			base.Experiment, cur.Experiment))
	}
	exact := func(metric string, baseV, curV float64) {
		if baseV != curV {
			bad = append(bad, fmt.Sprintf("engine/%s: deterministic value drifted %v -> %v",
				metric, baseV, curV))
		}
	}
	exact("offloads", float64(base.Offloads), float64(cur.Offloads))
	exact("ves", float64(base.VEs), float64(cur.VEs))
	exact("events", float64(base.Events), float64(cur.Events))
	exact("sim_time_us", base.SimTimeUS, cur.SimTimeUS)
	exact("max_queue_depth", float64(base.MaxQueueDepth), float64(cur.MaxQueueDepth))
	if cur.WallEventsPerSec < minEventsPerWallSec {
		bad = append(bad, fmt.Sprintf("engine/wall_events_per_sec: %.0f below floor %d",
			cur.WallEventsPerSec, minEventsPerWallSec))
	}
	if base.AllocsPerEvent > 0 && cur.AllocsPerEvent > base.AllocsPerEvent*(1+allocSlack) {
		bad = append(bad, fmt.Sprintf("engine/allocs_per_event: %.2f exceeds baseline %.2f by more than %.0f%%",
			cur.AllocsPerEvent, base.AllocsPerEvent, allocSlack*100))
	}
	return bad
}
