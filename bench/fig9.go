package bench

import (
	"fmt"

	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
	"hamoffload/internal/trace"
	"hamoffload/internal/veos"
	"hamoffload/machine"
	"hamoffload/offload"
)

// Fig9Config parameterises the offload-cost experiment. The paper timed 10⁶
// repetitions after 10 warm-ups; the simulation is deterministic, so far
// fewer repetitions give the same averages.
type Fig9Config struct {
	Socket int // CPU socket the VH process is pinned to (§V-A studies 1)
	Reps   int // timed repetitions (default 100)
	Warmup int // warm-up repetitions (default 10, as in the paper)
	// Tracer, when non-nil, records the full offload lifecycle of every
	// repetition (warm-ups included) as spans; nil keeps tracing off and the
	// measured times bit-identical to the untraced run.
	Tracer *trace.Tracer
}

// machineConfig assembles the machine parameters, attaching the span tracer
// to the timing model when one is requested.
func (c Fig9Config) machineConfig() machine.Config {
	mcfg := machine.Config{VEs: 1, Socket: c.Socket}
	if c.Tracer != nil {
		timing := topology.DefaultTiming()
		timing.Tracer = c.Tracer
		mcfg.Timing = &timing
	}
	return mcfg
}

func (c *Fig9Config) fill() {
	if c.Reps <= 0 {
		c.Reps = 100
	}
	if c.Warmup <= 0 {
		c.Warmup = 10
	}
}

// Fig9Result holds the three bars of Fig. 9 plus the derived ratios the
// paper quotes in the text.
type Fig9Result struct {
	Socket int

	VEONativeUS float64 // native veo_call_async + wait, empty kernel
	HAMVEOUS    float64 // HAM-Offload over the VEO protocol
	HAMDMAUS    float64 // HAM-Offload over the DMA protocol

	HAMVEOOverNative float64 // paper: 5.4×
	NativeOverDMA    float64 // paper: 13.1×
	HAMVEOOverDMA    float64 // paper: 70.8×
}

const veoBenchLibrary = "libbench-veo.so"

func init() {
	veos.RegisterLibrary(veoBenchLibrary, veos.Library{
		"empty": func(ctx *veos.Ctx, args []uint64) (uint64, error) { return 0, nil },
	})
}

// Fig9 measures the empty-offload cost of all three systems on fresh
// machines and returns the figure's data.
func Fig9(cfg Fig9Config) (Fig9Result, error) {
	cfg.fill()
	res := Fig9Result{Socket: cfg.Socket}

	native, err := MeasureVEONative(cfg)
	if err != nil {
		return res, fmt.Errorf("bench: native VEO: %w", err)
	}
	res.VEONativeUS = native

	hamVEO, err := MeasureHAMEmpty(cfg, false)
	if err != nil {
		return res, fmt.Errorf("bench: HAM-Offload VEO: %w", err)
	}
	res.HAMVEOUS = hamVEO

	hamDMA, err := MeasureHAMEmpty(cfg, true)
	if err != nil {
		return res, fmt.Errorf("bench: HAM-Offload DMA: %w", err)
	}
	res.HAMDMAUS = hamDMA

	res.HAMVEOOverNative = hamVEO / native
	res.NativeOverDMA = native / hamDMA
	res.HAMVEOOverDMA = hamVEO / hamDMA
	return res, nil
}

// MeasureVEONative times the paper's reference point: the low-level VEO
// function offload by symbol name, with basic argument types only. It
// returns the average cost in microseconds of simulated time.
func MeasureVEONative(cfg Fig9Config) (float64, error) {
	cfg.fill()
	m, err := machine.New(cfg.machineConfig())
	if err != nil {
		return 0, err
	}
	var us float64
	err = m.RunMain(func(p *machine.Proc) error {
		card := m.Cards[0]
		vp, err := card.CreateProcess(p)
		if err != nil {
			return err
		}
		if err := vp.LoadLibrary(p, veoBenchLibrary); err != nil {
			return err
		}
		k, err := vp.FindSymbol(p, "empty")
		if err != nil {
			return err
		}
		ctx := vp.OpenContext(p)
		call := func() error {
			cmd := ctx.Submit(p, k, nil)
			_, err := ctx.Wait(p, cmd)
			return err
		}
		for i := 0; i < cfg.Warmup; i++ {
			if err := call(); err != nil {
				return err
			}
		}
		start := p.Now()
		for i := 0; i < cfg.Reps; i++ {
			if err := call(); err != nil {
				return err
			}
		}
		us = p.Now().Sub(start).Microseconds() / float64(cfg.Reps)
		return nil
	})
	return us, err
}

// MeasureHAMEmpty times an empty HAM-Offload sync offload over either
// protocol, in microseconds of simulated time.
func MeasureHAMEmpty(cfg Fig9Config, dmaProtocol bool) (float64, error) {
	cfg.fill()
	m, err := machine.New(cfg.machineConfig())
	if err != nil {
		return 0, err
	}
	var us float64
	err = m.RunMain(func(p *machine.Proc) error {
		var rt *offload.Runtime
		var cerr error
		if dmaProtocol {
			rt, cerr = machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		} else {
			rt, cerr = machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		}
		if cerr != nil {
			return cerr
		}
		defer func() { _ = rt.Finalize() }()
		for i := 0; i < cfg.Warmup; i++ {
			if _, err := offload.Sync(rt, 1, benchEmpty.Bind()); err != nil {
				return err
			}
		}
		start := p.Now()
		for i := 0; i < cfg.Reps; i++ {
			if _, err := offload.Sync(rt, 1, benchEmpty.Bind()); err != nil {
				return err
			}
		}
		us = p.Now().Sub(start).Microseconds() / float64(cfg.Reps)
		return nil
	})
	return us, err
}

// timedLoop is a helper for size sweeps: warm-ups then timed reps of op.
func timedLoop(p *simtime.Proc, warmup, reps int, op func() error) (float64, error) {
	for i := 0; i < warmup; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	start := p.Now()
	for i := 0; i < reps; i++ {
		if err := op(); err != nil {
			return 0, err
		}
	}
	return p.Now().Sub(start).Microseconds() / float64(reps), nil
}
