package bench

import (
	"fmt"

	"hamoffload/internal/faults"
	"hamoffload/machine"
	"hamoffload/offload"
)

// Fault-tolerance overhead on the Fig. 9 empty-offload path: what does
// arming the retry machinery cost when nothing fails, and what does
// surviving an actually faulty substrate cost? Three configurations per
// protocol, all on the simulated clock and therefore deterministic:
//
//   - plain: the unmodified Fig. 9 measurement (no envelope bytes on the
//     wire — the nil-plan zero-cost baseline).
//   - armed: retries enabled but no fault plan; the delta is the pure
//     envelope + checksum + dedup bookkeeping overhead.
//   - faulty: retries enabled against injected DMA errors and payload bit
//     flips; the delta over armed is the price of the retries themselves.

// faultRetryPolicy is the retry policy the overhead rows run under.
func faultRetryPolicy() offload.FaultTolerance {
	return offload.FaultTolerance{
		MaxRetries:  6,
		BackoffBase: machine.Microsecond,
		BackoffMax:  20 * machine.Microsecond,
	}
}

// faultBenchPlan schedules steady fault pressure for the faulty rows: an
// op-scheduled transfer error roughly every 12th transport operation (well
// past the connect sequence) and seeded payload bit flips.
func faultBenchPlan(site faults.Site) *faults.Plan {
	return &faults.Plan{Seed: 0xFA17, Rules: []faults.Rule{
		{Kind: faults.DMAError, Site: site, Node: faults.AnyNode,
			AfterOp: 60, Every: 12, Count: 1 << 30},
		{Kind: faults.BitFlip, Node: faults.AnyNode, Rate: 0.02},
	}}
}

// measureFaulted times reps empty sync offloads over one protocol with the
// given retry policy and fault plan, returning the mean cost in simulated
// microseconds plus the run's retry and injection counters.
func measureFaulted(cfg Fig9Config, dmaProtocol bool, retry offload.FaultTolerance,
	plan *faults.Plan) (us float64, retries int64, injected uint64, err error) {
	cfg.fill()
	mcfg := cfg.machineConfig()
	mcfg.Faults = plan
	m, err := machine.New(mcfg)
	if err != nil {
		return 0, 0, 0, err
	}
	err = m.RunMain(func(p *machine.Proc) error {
		opts := machine.ProtocolOptions{
			Retry:          retry,
			OffloadTimeout: 50 * machine.Millisecond,
		}
		var rt *offload.Runtime
		var cerr error
		if dmaProtocol {
			rt, cerr = machine.ConnectDMA(p, m, opts)
		} else {
			rt, cerr = machine.ConnectVEO(p, m, opts)
		}
		if cerr != nil {
			return cerr
		}
		defer func() { _ = rt.Finalize() }()
		for i := 0; i < cfg.Warmup; i++ {
			if _, err := offload.Sync(rt, 1, benchEmpty.Bind()); err != nil {
				return err
			}
		}
		start := p.Now()
		for i := 0; i < cfg.Reps; i++ {
			if _, err := offload.Sync(rt, 1, benchEmpty.Bind()); err != nil {
				return err
			}
		}
		us = p.Now().Sub(start).Microseconds() / float64(cfg.Reps)
		retries = rt.Retries()
		return nil
	})
	injected = m.Timing.Faults.Injected()
	return us, retries, injected, err
}

// FaultOverhead runs the three configurations over both protocols.
func FaultOverhead(reps int) ([]AblationRow, error) {
	var rows []AblationRow
	for _, proto := range []struct {
		name string
		dma  bool
		site faults.Site
	}{
		{"VEO protocol", false, faults.SitePrivDMA},
		{"DMA protocol", true, faults.SiteUserDMA},
	} {
		cfg := Fig9Config{Reps: reps}
		plain, _, _, err := measureFaulted(cfg, proto.dma, offload.FaultTolerance{}, nil)
		if err != nil {
			return nil, fmt.Errorf("bench: %s plain: %w", proto.name, err)
		}
		armed, _, _, err := measureFaulted(cfg, proto.dma, faultRetryPolicy(), nil)
		if err != nil {
			return nil, fmt.Errorf("bench: %s armed: %w", proto.name, err)
		}
		faulty, retries, injected, err := measureFaulted(cfg, proto.dma, faultRetryPolicy(),
			faultBenchPlan(proto.site))
		if err != nil {
			return nil, fmt.Errorf("bench: %s faulty: %w", proto.name, err)
		}
		if injected == 0 {
			return nil, fmt.Errorf("bench: %s faulty row injected no faults", proto.name)
		}
		rows = append(rows,
			AblationRow{Config: proto.name + ", plain", Value: plain, Unit: "us/offload"},
			AblationRow{Config: proto.name + ", FT armed (no faults)", Value: armed, Unit: "us/offload"},
			AblationRow{Config: fmt.Sprintf("%s, faulty (%d faults, %d retries)",
				proto.name, injected, retries), Value: faulty, Unit: "us/offload"},
		)
	}
	return rows, nil
}
