package bench

import (
	"io"

	"hamoffload/internal/topology"
	"hamoffload/internal/trace"
	"hamoffload/machine"
	"hamoffload/offload"
)

// TraceOffloads runs a handful of empty offloads over both protocols with
// the component-level recorder attached and writes a Chrome trace-event JSON
// to w. Loading it in chrome://tracing or Perfetto shows the structural
// difference between the two protocols at a glance: the VEO protocol's
// offload is dominated by two veo_write_mem spans and a long veo_read_mem
// poll, while the DMA protocol shows only thin user-DMA slivers on the VE
// worker's row.
func TraceOffloads(reps int, w io.Writer) error {
	if reps <= 0 {
		reps = 5
	}
	rec := trace.NewTracer()
	timing := topology.DefaultTiming()
	timing.Tracer = rec
	for _, dma := range []bool{false, true} {
		m, err := machine.New(machine.Config{VEs: 1, Timing: &timing})
		if err != nil {
			return err
		}
		err = m.RunMain(func(p *machine.Proc) error {
			var rt *offload.Runtime
			var cerr error
			if dma {
				rt, cerr = machine.ConnectDMA(p, m, machine.ProtocolOptions{})
			} else {
				rt, cerr = machine.ConnectVEO(p, m, machine.ProtocolOptions{})
			}
			if cerr != nil {
				return cerr
			}
			defer func() { _ = rt.Finalize() }()
			for i := 0; i < reps; i++ {
				if _, err := offload.Sync(rt, 1, benchEmpty.Bind()); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	return rec.ExportChrome(w)
}
