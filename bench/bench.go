// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§V) from the simulated machine:
//
//	Fig. 9   — function offload cost, VH to local VE (three systems)
//	Fig. 10  — data-transfer bandwidth vs size, four panels
//	Table IV — maximum PCIe bandwidths per method and direction
//	§V-A     — second-socket (UPI) offload penalty
//	plus the ablations called out in DESIGN.md (huge pages, 4dma bulk
//	translation, poll interval, buffer count, result-return path).
//
// The same entry points back both the cmd/hambench tool and the testing.B
// benchmarks in the repository root, so the printed artefacts and the
// benchmark metrics always agree.
package bench

import (
	"fmt"

	"hamoffload/internal/units"
	"hamoffload/offload"
)

// Point is one measurement of a size sweep.
type Point struct {
	Size  int64   // transfer size in bytes
	GiBps float64 // achieved bandwidth
	US    float64 // time per operation in microseconds
}

// Series is one curve of Fig. 10.
type Series struct {
	Method    string // "VEO Read/Write", "VE User DMA", "VE SHM/LHM"
	Direction string // "VH=>VE" or "VE=>VH"
	Points    []Point
}

// Max returns the series' peak bandwidth.
func (s Series) Max() Point {
	var best Point
	for _, p := range s.Points {
		if p.GiBps > best.GiBps {
			best = p
		}
	}
	return best
}

// At returns the point for an exact size.
func (s Series) At(size int64) (Point, bool) {
	for _, p := range s.Points {
		if p.Size == size {
			return p, true
		}
	}
	return Point{}, false
}

// PowerOfTwoSizes returns the sweep sizes from lo to hi inclusive.
func PowerOfTwoSizes(lo, hi int64) []int64 {
	var out []int64
	for s := lo; s <= hi; s *= 2 {
		out = append(out, s)
	}
	return out
}

// sizeLabel formats a byte size like the paper's axes.
func sizeLabel(n int64) string { return units.Bytes(n).String() }

// benchEmpty is the empty kernel every offload-cost measurement uses — "the
// minimal cost that occurs with every offload" (§V-A).
var benchEmpty = offload.NewFunc0[offload.Unit]("bench.empty",
	func(c *offload.Ctx) (offload.Unit, error) { return offload.Unit{}, nil })

// gibps converts (bytes, microseconds) to GiB/s.
func gibps(bytes int64, us float64) float64 {
	if us <= 0 {
		return 0
	}
	return float64(bytes) / float64(units.GiB) / (us / 1e6)
}

func fmtGiBps(v float64) string {
	switch {
	case v >= 1:
		return fmt.Sprintf("%.1f", v)
	case v >= 0.01:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}
