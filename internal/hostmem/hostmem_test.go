package hostmem

import (
	"testing"

	"hamoffload/internal/units"
)

func newHost(t *testing.T) *Host {
	t.Helper()
	h, err := New("vh", 256*units.MiB, 2*units.MiB)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h
}

func TestAllocFreeRoundTrip(t *testing.T) {
	h := newHost(t)
	addr, err := h.Alloc(4096)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if err := h.Mem.WriteAt([]byte("host data"), addr); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, 9)
	if err := h.Mem.ReadAt(got, addr); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if string(got) != "host data" {
		t.Fatalf("got %q", got)
	}
	if h.LiveAllocs() != 1 {
		t.Fatalf("LiveAllocs = %d, want 1", h.LiveAllocs())
	}
	if err := h.Free(addr); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if err := h.Mem.ReadAt(got, addr); err == nil {
		t.Error("read after Free should fault")
	}
}

func TestNewRejectsBadPageSize(t *testing.T) {
	if _, err := New("vh", units.MiB, 3000); err == nil {
		t.Error("non-power-of-two page size accepted")
	}
	if _, err := New("vh", units.MiB, 0); err == nil {
		t.Error("zero page size accepted")
	}
}

func TestShmLifecycle(t *testing.T) {
	h := newHost(t)
	seg, err := h.ShmCreate(1000)
	if err != nil {
		t.Fatalf("ShmCreate: %v", err)
	}
	// SysV segments are page-granular.
	if seg.Size != (2 * units.MiB).Int64() {
		t.Errorf("segment size = %d, want one huge page", seg.Size)
	}
	got, err := h.ShmGet(seg.Key)
	if err != nil || got != seg {
		t.Fatalf("ShmGet = %v, %v", got, err)
	}
	if err := h.Mem.WriteAt([]byte{1, 2, 3}, seg.Addr); err != nil {
		t.Fatalf("segment not mapped: %v", err)
	}
	if err := h.ShmRemove(seg.Key); err != nil {
		t.Fatalf("ShmRemove: %v", err)
	}
	if _, err := h.ShmGet(seg.Key); err == nil {
		t.Error("ShmGet after remove should fail")
	}
	if err := h.ShmRemove(seg.Key); err == nil {
		t.Error("double ShmRemove should fail")
	}
}

func TestShmKeysDistinct(t *testing.T) {
	h := newHost(t)
	a, err := h.ShmCreate(100)
	if err != nil {
		t.Fatal(err)
	}
	b, err := h.ShmCreate(100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key == b.Key {
		t.Error("two segments share a key")
	}
	if a.Addr == b.Addr {
		t.Error("two segments share an address")
	}
}

func TestPages(t *testing.T) {
	h := newHost(t)
	page := h.PageSize.Int64()
	addr, err := h.Alloc(3 * page)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Pages(addr, 3*page); got < 3 || got > 4 {
		t.Errorf("Pages(3 pages) = %d", got)
	}
	if got := h.Pages(addr, 1); got != 1 {
		t.Errorf("Pages(1 byte) = %d, want 1", got)
	}
	// 4 KiB pages see 512× more translation work than 2 MiB pages — the
	// mechanism behind the huge-page ablation.
	h4k, err := New("vh4k", 256*units.MiB, 4*units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	a4k, err := h4k.Alloc(2 * units.MiB.Int64())
	if err != nil {
		t.Fatal(err)
	}
	if got := h4k.Pages(a4k, 2*units.MiB.Int64()); got < 512 {
		t.Errorf("4KiB pages for 2MiB = %d, want >= 512", got)
	}
}

func TestAllocExhaustion(t *testing.T) {
	h, err := New("small", 1*units.MiB, 4*units.KiB)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Alloc(2 * units.MiB.Int64()); err == nil {
		t.Error("over-capacity alloc should fail")
	}
}
