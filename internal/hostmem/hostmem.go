// Package hostmem models the Vector Host's DRAM: a sparse memory with an
// allocator, a configurable page size (4 KiB or 2 MiB huge pages — the paper
// stresses that huge pages are required for peak VEO bandwidth), and the
// SystemV shared-memory segment registry used by the DMA-based protocol
// (paper §IV-A, Fig. 7).
package hostmem

import (
	"fmt"

	"hamoffload/internal/mem"
	"hamoffload/internal/units"
)

// Base of the simulated VH heap; an arbitrary but recognisable constant.
const heapBase mem.Addr = 0x7f00_0000_0000

// Host is one Vector Host's memory system.
type Host struct {
	Mem      *mem.Memory
	alloc    *mem.Allocator
	PageSize units.Bytes

	shm     map[int]*ShmSegment
	nextKey int
}

// ShmSegment is a SystemV shared-memory segment created by the VH and
// attachable from VE processes via its key (shmget semantics).
type ShmSegment struct {
	Key  int
	Addr mem.Addr // address within the VH memory
	Size int64
}

// New creates a host memory of the given capacity and page size.
func New(name string, capacity, pageSize units.Bytes) (*Host, error) {
	if !units.IsPowerOfTwo(pageSize) {
		return nil, fmt.Errorf("hostmem: page size %v must be a power of two", pageSize)
	}
	a, err := mem.NewAllocator(name+"-alloc", heapBase, capacity.Int64(), 64)
	if err != nil {
		return nil, err
	}
	return &Host{
		Mem:      mem.NewMemory(name),
		alloc:    a,
		PageSize: pageSize,
		shm:      make(map[int]*ShmSegment),
		nextKey:  0x5845, // arbitrary ftok-style starting key
	}, nil
}

// Alloc reserves and maps size bytes of host memory.
func (h *Host) Alloc(size int64) (mem.Addr, error) {
	addr, err := h.alloc.Alloc(size)
	if err != nil {
		return 0, err
	}
	mapped, _ := h.alloc.SizeOf(addr)
	if err := h.Mem.Map(addr, mapped); err != nil {
		// Cannot happen with a consistent allocator, but keep state sane.
		_ = h.alloc.Free(addr)
		return 0, err
	}
	return addr, nil
}

// Free releases an allocation made with Alloc. The range is unmapped while
// the allocation is still live — once alloc.Free runs, the allocator may
// re-issue the range, so addr must not be touched afterwards.
func (h *Host) Free(addr mem.Addr) error {
	if err := h.Mem.Unmap(addr); err != nil {
		return err
	}
	return h.alloc.Free(addr)
}

// LiveAllocs returns the number of live heap allocations.
func (h *Host) LiveAllocs() int { return h.alloc.LiveCount() }

// ShmCreate allocates a shared-memory segment of size bytes, aligned to the
// host page size (SysV segments are page-granular), and returns it.
func (h *Host) ShmCreate(size int64) (*ShmSegment, error) {
	size = units.AlignUp(units.Bytes(size), h.PageSize).Int64()
	addr, err := h.Alloc(size)
	if err != nil {
		return nil, fmt.Errorf("hostmem: shmget: %w", err)
	}
	h.nextKey++
	seg := &ShmSegment{Key: h.nextKey, Addr: addr, Size: size}
	h.shm[seg.Key] = seg
	return seg, nil
}

// ShmGet looks a segment up by key, as a VE process would after receiving
// the key from the VH.
func (h *Host) ShmGet(key int) (*ShmSegment, error) {
	seg, ok := h.shm[key]
	if !ok {
		return nil, fmt.Errorf("hostmem: shmget: no segment with key %#x", key)
	}
	return seg, nil
}

// ShmRemove destroys a segment and frees its memory.
func (h *Host) ShmRemove(key int) error {
	seg, ok := h.shm[key]
	if !ok {
		return fmt.Errorf("hostmem: shmctl(IPC_RMID): no segment with key %#x", key)
	}
	delete(h.shm, key)
	return h.Free(seg.Addr)
}

// Pages returns how many host pages the range [addr, addr+n) touches, the
// unit of privileged-DMA translation work.
func (h *Host) Pages(addr mem.Addr, n int64) int64 {
	return mem.PageCount(addr, n, h.PageSize.Int64())
}
