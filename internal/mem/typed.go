package mem

import (
	"encoding/binary"
	"math"
)

// Typed accessors used by simulated kernels to operate on buffers in
// simulated memories. All values are little-endian, matching both the x86
// Vector Host and the VE ABI.

// WriteFloat64s stores vals as consecutive float64 words at addr.
func (m *Memory) WriteFloat64s(addr Addr, vals []float64) error {
	buf := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(v))
	}
	return m.WriteAt(buf, addr)
}

// ReadFloat64s loads len(out) float64 words from addr into out.
func (m *Memory) ReadFloat64s(addr Addr, out []float64) error {
	buf := make([]byte, 8*len(out))
	if err := m.ReadAt(buf, addr); err != nil {
		return err
	}
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	return nil
}

// WriteUint64 stores one 64-bit word at addr — the granularity of the VE's
// LHM/SHM instructions.
func (m *Memory) WriteUint64(addr Addr, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	return m.WriteAt(buf[:], addr)
}

// ReadUint64 loads one 64-bit word from addr.
func (m *Memory) ReadUint64(addr Addr) (uint64, error) {
	var buf [8]byte
	if err := m.ReadAt(buf[:], addr); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// WriteUint32 stores one 32-bit word at addr.
func (m *Memory) WriteUint32(addr Addr, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	return m.WriteAt(buf[:], addr)
}

// ReadUint32 loads one 32-bit word from addr.
func (m *Memory) ReadUint32(addr Addr) (uint32, error) {
	var buf [4]byte
	if err := m.ReadAt(buf[:], addr); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}
