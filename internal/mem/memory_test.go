package mem

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestMapReadWrite(t *testing.T) {
	m := NewMemory("test")
	if err := m.Map(0x1000, 256); err != nil {
		t.Fatalf("Map: %v", err)
	}
	data := []byte("hello, vector engine")
	if err := m.WriteAt(data, 0x1010); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	got := make([]byte, len(data))
	if err := m.ReadAt(got, 0x1010); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q, want %q", got, data)
	}
}

func TestMapZeroFilled(t *testing.T) {
	m := NewMemory("test")
	if err := m.Map(0, 64); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 64)
	for i := range got {
		got[i] = 0xff
	}
	if err := m.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestMapOverlapRejected(t *testing.T) {
	m := NewMemory("test")
	if err := m.Map(100, 100); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		addr Addr
		size int64
	}{
		{100, 100}, {150, 10}, {50, 60}, {199, 2}, {0, 300},
	} {
		if err := m.Map(c.addr, c.size); err == nil {
			t.Errorf("Map(%#x,%d) should overlap", c.addr, c.size)
		}
	}
	// Adjacent is fine.
	if err := m.Map(200, 50); err != nil {
		t.Errorf("adjacent Map failed: %v", err)
	}
	if err := m.Map(0, 100); err != nil {
		t.Errorf("adjacent Map before failed: %v", err)
	}
}

func TestAccessSpansAdjacentExtents(t *testing.T) {
	m := NewMemory("test")
	if err := m.Map(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(10, 10); err != nil {
		t.Fatal(err)
	}
	data := []byte("0123456789abcdefghij")
	if err := m.WriteAt(data, 0); err != nil {
		t.Fatalf("spanning WriteAt: %v", err)
	}
	got := make([]byte, 20)
	if err := m.ReadAt(got, 0); err != nil {
		t.Fatalf("spanning ReadAt: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
}

func TestFaultOnUnmapped(t *testing.T) {
	m := NewMemory("test")
	if err := m.Map(0, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(20, 10); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 30)
	if err := m.ReadAt(buf, 0); err == nil {
		t.Error("read across gap should fault")
	}
	if err := m.WriteAt(buf[:5], 28); err == nil {
		t.Error("write past extent should fault")
	}
	if err := m.ReadAt(buf[:1], 1000); err == nil {
		t.Error("read of unmapped should fault")
	}
}

func TestUnmap(t *testing.T) {
	m := NewMemory("test")
	if err := m.Map(0x100, 16); err != nil {
		t.Fatal(err)
	}
	if err := m.Unmap(0x100); err != nil {
		t.Fatalf("Unmap: %v", err)
	}
	if err := m.ReadAt(make([]byte, 1), 0x100); err == nil {
		t.Error("read after Unmap should fault")
	}
	if err := m.Unmap(0x100); err == nil {
		t.Error("double Unmap should fail")
	}
	if err := m.Unmap(0x50); err == nil {
		t.Error("Unmap of never-mapped addr should fail")
	}
}

func TestMapped(t *testing.T) {
	m := NewMemory("test")
	if err := m.Map(10, 10); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(20, 10); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		addr Addr
		size int64
		want bool
	}{
		{10, 20, true}, {10, 10, true}, {15, 10, true},
		{9, 2, false}, {29, 2, false}, {0, 5, false}, {12, 0, true},
	}
	for _, c := range cases {
		if got := m.Mapped(c.addr, c.size); got != c.want {
			t.Errorf("Mapped(%d,%d) = %v, want %v", c.addr, c.size, got, c.want)
		}
	}
}

func TestSlice(t *testing.T) {
	m := NewMemory("test")
	if err := m.Map(0, 100); err != nil {
		t.Fatal(err)
	}
	s, err := m.Slice(10, 20)
	if err != nil {
		t.Fatalf("Slice: %v", err)
	}
	copy(s, "direct view works!")
	got := make([]byte, 18)
	if err := m.ReadAt(got, 10); err != nil {
		t.Fatal(err)
	}
	if string(got) != "direct view works!" {
		t.Fatalf("got %q", got)
	}
	if _, err := m.Slice(90, 20); err == nil {
		t.Error("Slice past extent should fail")
	}
	if _, err := m.Slice(200, 1); err == nil {
		t.Error("Slice of unmapped should fail")
	}
}

func TestCopyBetweenMemories(t *testing.T) {
	src := NewMemory("src")
	dst := NewMemory("dst")
	if err := src.Map(0, 64); err != nil {
		t.Fatal(err)
	}
	if err := dst.Map(0x8000, 64); err != nil {
		t.Fatal(err)
	}
	if err := src.WriteAt([]byte("payload"), 8); err != nil {
		t.Fatal(err)
	}
	if err := Copy(dst, 0x8010, src, 8, 7); err != nil {
		t.Fatalf("Copy: %v", err)
	}
	got := make([]byte, 7)
	if err := dst.ReadAt(got, 0x8010); err != nil {
		t.Fatal(err)
	}
	if string(got) != "payload" {
		t.Fatalf("got %q", got)
	}
}

func TestCopyOverlappingSameMemory(t *testing.T) {
	m := NewMemory("m")
	if err := m.Map(0, 32); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAt([]byte("abcdefgh"), 0); err != nil {
		t.Fatal(err)
	}
	if err := Copy(m, 2, m, 0, 8); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 10)
	if err := m.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "ababcdefgh" {
		t.Fatalf("got %q, want %q", got, "ababcdefgh")
	}
}

func TestPageCount(t *testing.T) {
	cases := []struct {
		addr Addr
		n    int64
		page int64
		want int64
	}{
		{0, 1, 4096, 1},
		{0, 4096, 4096, 1},
		{0, 4097, 4096, 2},
		{4095, 2, 4096, 2},
		{4096, 4096, 4096, 1},
		{0, 0, 4096, 0},
		{1 << 21, 1 << 21, 1 << 21, 1},
		{100, 1 << 21, 1 << 21, 2},
	}
	for _, c := range cases {
		if got := PageCount(c.addr, c.n, c.page); got != c.want {
			t.Errorf("PageCount(%d,%d,%d) = %d, want %d", c.addr, c.n, c.page, got, c.want)
		}
	}
}

// Property: a write followed by a read of the same range always round-trips,
// for arbitrary offsets and lengths within a mapped extent.
func TestReadWriteRoundTripProperty(t *testing.T) {
	m := NewMemory("prop")
	const size = 1 << 16
	if err := m.Map(0x4000, size); err != nil {
		t.Fatal(err)
	}
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		addr := Addr(0x4000 + int64(off)%(size-int64(len(data))))
		if err := m.WriteAt(data, addr); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if err := m.ReadAt(got, addr); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestCopyStreamingLarge covers the chunked path of Copy, including both
// overlap directions within one memory.
func TestCopyStreamingLarge(t *testing.T) {
	const n = 3*ChunkSize + 123 // forces the streaming path
	m := NewMemory("big")
	if err := m.Map(0, 8*ChunkSize); err != nil {
		t.Fatal(err)
	}
	src := make([]byte, n)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := m.WriteAt(src, 0); err != nil {
		t.Fatal(err)
	}
	// Forward overlap (dst > src): must behave like memmove.
	if err := Copy(m, 1000, m, 0, n); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, n)
	if err := m.ReadAt(got, 1000); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("forward-overlap streamed copy corrupted data")
	}
	// Backward overlap (dst < src).
	if err := m.WriteAt(src, 1000); err != nil {
		t.Fatal(err)
	}
	if err := Copy(m, 500, m, 1000, n); err != nil {
		t.Fatal(err)
	}
	if err := m.ReadAt(got, 500); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("backward-overlap streamed copy corrupted data")
	}
	// Cross-memory large copy.
	d := NewMemory("dst")
	if err := d.Map(0, 8*ChunkSize); err != nil {
		t.Fatal(err)
	}
	if err := Copy(d, 64, m, 500, n); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadAt(got, 64); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src) {
		t.Fatal("cross-memory streamed copy corrupted data")
	}
}
