package mem

import "testing"

// BenchmarkWriteRead1MiB measures the sparse memory's bulk copy path, which
// carries every simulated data transfer.
func BenchmarkWriteRead1MiB(b *testing.B) {
	m := NewMemory("bench")
	const size = 1 << 20
	if err := m.Map(0, size); err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, size)
	b.SetBytes(2 * size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.WriteAt(buf, 0); err != nil {
			b.Fatal(err)
		}
		if err := m.ReadAt(buf, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSmallWordAccess measures the flag-sized accesses the messaging
// protocols poll with.
func BenchmarkSmallWordAccess(b *testing.B) {
	m := NewMemory("bench")
	if err := m.Map(0, 4096); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.WriteUint64(128, uint64(i)); err != nil {
			b.Fatal(err)
		}
		if v, err := m.ReadUint64(128); err != nil || v != uint64(i) {
			b.Fatal("round trip failed")
		}
	}
}

// BenchmarkAllocFree measures the first-fit allocator under churn.
func BenchmarkAllocFree(b *testing.B) {
	a, err := NewAllocator("bench", 0, 1<<24, 64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := a.Alloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.Free(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCrossMemoryCopy measures mem.Copy, the heart of every simulated
// DMA transfer.
func BenchmarkCrossMemoryCopy(b *testing.B) {
	src := NewMemory("src")
	dst := NewMemory("dst")
	const size = 1 << 20
	if err := src.Map(0, size); err != nil {
		b.Fatal(err)
	}
	if err := dst.Map(0, size); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(size)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Copy(dst, 0, src, 0, size); err != nil {
			b.Fatal(err)
		}
	}
}
