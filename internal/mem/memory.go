// Package mem provides the byte-addressable sparse memories and allocators
// that back the simulated Vector Host DRAM and Vector Engine HBM. Transfers
// in the simulation copy real bytes between these memories, so offloaded
// kernels compute real results. Extents are lazily chunk-backed: mapping a
// 40 GiB buffer is cheap, and only chunks that are actually written consume
// real memory, which is what makes a simulated 48 GiB HBM affordable.
package mem

import (
	"fmt"
	"sort"
)

// Addr is an address within one Memory.
type Addr uint64

// ChunkSize is the granularity of lazy backing storage. Slice views must not
// cross a chunk boundary; protocol-level buffers (messages, flags) are far
// smaller than this, and bulk data uses ReadAt/WriteAt, which span freely.
const ChunkSize = 256 << 10

// Memory is a sparse, byte-addressable address space made of mapped extents.
// Reads and writes may span multiple adjacent extents but fail on unmapped
// gaps, mimicking a segmentation fault.
type Memory struct {
	name    string
	extents []*extent // sorted by addr, non-overlapping
}

type extent struct {
	addr   Addr
	size   int64
	chunks [][]byte // ceil(size/ChunkSize) entries, nil until first write
}

func (e *extent) end() Addr { return e.addr + Addr(e.size) }

// chunk returns the backing chunk containing extent offset off, allocating
// it when allocate is true. The returned slice covers the whole chunk
// (clipped to the extent size); callers index it with off%ChunkSize.
func (e *extent) chunk(off int64, allocate bool) []byte {
	i := off / ChunkSize
	if e.chunks[i] == nil {
		if !allocate {
			return nil
		}
		size := int64(ChunkSize)
		if rem := e.size - i*ChunkSize; rem < size {
			size = rem
		}
		e.chunks[i] = make([]byte, size)
	}
	return e.chunks[i]
}

// NewMemory returns an empty address space. The name appears in errors.
func NewMemory(name string) *Memory { return &Memory{name: name} }

// Name returns the memory's name.
func (m *Memory) Name() string { return m.name }

// MappedBytes returns the total size of all mapped extents (address space,
// not resident memory).
func (m *Memory) MappedBytes() int64 {
	var n int64
	for _, e := range m.extents {
		n += e.size
	}
	return n
}

// ResidentBytes returns the real memory consumed by touched chunks.
func (m *Memory) ResidentBytes() int64 {
	var n int64
	for _, e := range m.extents {
		for _, c := range e.chunks {
			n += int64(len(c))
		}
	}
	return n
}

// find returns the index of the first extent whose end is above addr.
func (m *Memory) find(addr Addr) int {
	return sort.Search(len(m.extents), func(i int) bool {
		return m.extents[i].end() > addr
	})
}

// Map creates a zero-filled extent of size bytes at addr. It fails if the
// range overlaps an existing extent or size is not positive.
func (m *Memory) Map(addr Addr, size int64) error {
	if size <= 0 {
		return fmt.Errorf("mem %s: Map size %d must be positive", m.name, size)
	}
	end := addr + Addr(size)
	if end < addr {
		return fmt.Errorf("mem %s: Map [%#x,+%d) wraps the address space", m.name, addr, size)
	}
	i := m.find(addr)
	if i < len(m.extents) && m.extents[i].addr < end {
		return fmt.Errorf("mem %s: Map [%#x,+%d) overlaps extent at %#x",
			m.name, addr, size, m.extents[i].addr)
	}
	nChunks := (size + ChunkSize - 1) / ChunkSize
	m.extents = append(m.extents, nil)
	copy(m.extents[i+1:], m.extents[i:])
	m.extents[i] = &extent{addr: addr, size: size, chunks: make([][]byte, nChunks)}
	return nil
}

// Unmap removes the extent starting exactly at addr.
func (m *Memory) Unmap(addr Addr) error {
	i := m.find(addr)
	if i >= len(m.extents) || m.extents[i].addr != addr {
		return fmt.Errorf("mem %s: Unmap: no extent starts at %#x", m.name, addr)
	}
	m.extents = append(m.extents[:i], m.extents[i+1:]...)
	return nil
}

// Mapped reports whether the whole range [addr, addr+size) is mapped.
func (m *Memory) Mapped(addr Addr, size int64) bool {
	if size <= 0 {
		return size == 0
	}
	pos := addr
	end := addr + Addr(size)
	for pos < end {
		i := m.find(pos)
		if i >= len(m.extents) || m.extents[i].addr > pos {
			return false
		}
		pos = m.extents[i].end()
	}
	return true
}

// ReadAt fills p from the bytes at addr. The range may span extents but must
// be fully mapped; untouched chunks read as zero.
func (m *Memory) ReadAt(p []byte, addr Addr) error {
	return m.walk(addr, int64(len(p)), func(e *extent, off, n, pos int64) {
		dst := p[pos : pos+n]
		c := e.chunk(off, false)
		if c == nil {
			for i := range dst {
				dst[i] = 0
			}
			return
		}
		copy(dst, c[off%ChunkSize:])
	})
}

// WriteAt stores p at addr. The range may span extents but must be fully
// mapped.
func (m *Memory) WriteAt(p []byte, addr Addr) error {
	return m.walk(addr, int64(len(p)), func(e *extent, off, n, pos int64) {
		c := e.chunk(off, true)
		copy(c[off%ChunkSize:], p[pos:pos+n])
	})
}

// walk visits the range [addr, addr+n) chunk-piece by chunk-piece. For each
// piece it calls f with the extent, the offset within the extent, the piece
// length (never crossing a chunk boundary), and the offset within the range.
func (m *Memory) walk(addr Addr, n int64, f func(e *extent, off, pieceLen, rangeOff int64)) error {
	if n == 0 {
		return nil
	}
	pos := addr
	end := addr + Addr(n)
	if end < addr {
		return fmt.Errorf("mem %s: access [%#x,+%d) wraps the address space", m.name, addr, n)
	}
	for pos < end {
		i := m.find(pos)
		if i >= len(m.extents) || m.extents[i].addr > pos {
			return fmt.Errorf("mem %s: fault at %#x (range [%#x,+%d))", m.name, pos, addr, n)
		}
		e := m.extents[i]
		for pos < end && pos < e.end() {
			off := int64(pos - e.addr)
			piece := ChunkSize - off%ChunkSize // bytes left in this chunk
			if rem := e.size - off; piece > rem {
				piece = rem
			}
			if rem := int64(end - pos); piece > rem {
				piece = rem
			}
			f(e, off, piece, int64(pos-addr))
			pos += Addr(piece)
		}
	}
	return nil
}

// Slice returns a direct, writable view of [addr, addr+n). The range must
// lie within a single backing chunk of a single extent; it is the zero-copy
// fast path for small protocol structures such as flags and message headers.
func (m *Memory) Slice(addr Addr, n int64) ([]byte, error) {
	if n < 0 {
		return nil, fmt.Errorf("mem %s: Slice negative length %d", m.name, n)
	}
	i := m.find(addr)
	if i >= len(m.extents) || m.extents[i].addr > addr {
		return nil, fmt.Errorf("mem %s: Slice fault at %#x", m.name, addr)
	}
	e := m.extents[i]
	off := int64(addr - e.addr)
	if off+n > e.size {
		return nil, fmt.Errorf("mem %s: Slice [%#x,+%d) crosses extent boundary at %#x",
			m.name, addr, n, e.end())
	}
	if off/ChunkSize != (off+n-1)/ChunkSize && n > 0 {
		return nil, fmt.Errorf("mem %s: Slice [%#x,+%d) crosses a %d-byte chunk boundary",
			m.name, addr, n, int64(ChunkSize))
	}
	c := e.chunk(off, true)
	co := off % ChunkSize
	return c[co : co+n : co+n], nil
}

// Copy moves n bytes from src/srcAddr to dst/dstAddr, possibly between
// different memories. Overlapping same-memory copies behave like memmove.
// Large copies stream through a bounded buffer so a 256 MiB simulated DMA
// does not allocate 256 MiB of real transient memory.
func Copy(dst *Memory, dstAddr Addr, src *Memory, srcAddr Addr, n int64) error {
	if n == 0 {
		return nil
	}
	if n < 0 {
		return fmt.Errorf("mem: Copy negative length %d", n)
	}
	const stride = 4 * ChunkSize
	if n <= stride {
		buf := make([]byte, n)
		if err := src.ReadAt(buf, srcAddr); err != nil {
			return err
		}
		return dst.WriteAt(buf, dstAddr)
	}
	// Overlapping forward copies within one memory would clobber unread
	// source bytes when streamed front to back; copy backwards then.
	backwards := dst == src && dstAddr > srcAddr && dstAddr < srcAddr+Addr(n)
	buf := make([]byte, stride)
	for off := int64(0); off < n; off += stride {
		chunk := n - off
		if chunk > stride {
			chunk = stride
		}
		pos := off
		if backwards {
			pos = n - off - chunk
		}
		b := buf[:chunk]
		if err := src.ReadAt(b, srcAddr+Addr(pos)); err != nil {
			return err
		}
		if err := dst.WriteAt(b, dstAddr+Addr(pos)); err != nil {
			return err
		}
	}
	return nil
}

// PageCount returns how many pages of the given size the range
// [addr, addr+n) touches — the unit of work for DMA address translation.
func PageCount(addr Addr, n int64, pageSize int64) int64 {
	if n <= 0 || pageSize <= 0 {
		return 0
	}
	first := int64(addr) / pageSize
	last := (int64(addr) + n - 1) / pageSize
	return last - first + 1
}
