package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newAlloc(t *testing.T, base Addr, size, align int64) *Allocator {
	t.Helper()
	a, err := NewAllocator("test", base, size, align)
	if err != nil {
		t.Fatalf("NewAllocator: %v", err)
	}
	return a
}

func TestAllocBasic(t *testing.T) {
	a := newAlloc(t, 0x1000, 1024, 8)
	p1, err := a.Alloc(100)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if p1 != 0x1000 {
		t.Errorf("first alloc at %#x, want 0x1000", p1)
	}
	p2, err := a.Alloc(1)
	if err != nil {
		t.Fatal(err)
	}
	if p2%8 != 0 {
		t.Errorf("alloc %#x not 8-aligned", p2)
	}
	if p2 != p1+104 { // 100 rounded up to 104
		t.Errorf("second alloc at %#x, want %#x", p2, p1+104)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocExhaustion(t *testing.T) {
	a := newAlloc(t, 0, 256, 8)
	if _, err := a.Alloc(256); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(1); err == nil {
		t.Error("alloc from full arena should fail")
	}
}

func TestFreeCoalescing(t *testing.T) {
	a := newAlloc(t, 0, 300, 4)
	p1, _ := a.Alloc(100)
	p2, _ := a.Alloc(100)
	p3, _ := a.Alloc(100)
	// Free middle, then neighbours; afterwards one 300-byte alloc must fit.
	if err := a.Free(p2); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p1); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p3); err != nil {
		t.Fatal(err)
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Alloc(300); err != nil {
		t.Errorf("coalesced arena rejected full-size alloc: %v", err)
	}
}

func TestFreeErrors(t *testing.T) {
	a := newAlloc(t, 0, 256, 8)
	p, _ := a.Alloc(16)
	if err := a.Free(p + 8); err == nil {
		t.Error("Free of interior address should fail")
	}
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if err := a.Free(p); err == nil {
		t.Error("double Free should fail")
	}
}

func TestAllocRejectsBadArgs(t *testing.T) {
	if _, err := NewAllocator("x", 0, 0, 8); err == nil {
		t.Error("zero-size arena accepted")
	}
	if _, err := NewAllocator("x", 0, 100, 3); err == nil {
		t.Error("non-power-of-two alignment accepted")
	}
	a := newAlloc(t, 0, 256, 8)
	if _, err := a.Alloc(0); err == nil {
		t.Error("zero-size alloc accepted")
	}
	if _, err := a.Alloc(-5); err == nil {
		t.Error("negative alloc accepted")
	}
}

func TestSizeOfAndCounters(t *testing.T) {
	a := newAlloc(t, 0, 1024, 16)
	p, _ := a.Alloc(20)
	if sz, ok := a.SizeOf(p); !ok || sz != 32 {
		t.Errorf("SizeOf = %d,%v want 32,true", sz, ok)
	}
	if a.LiveCount() != 1 {
		t.Errorf("LiveCount = %d", a.LiveCount())
	}
	if a.FreeBytes() != 1024-32 {
		t.Errorf("FreeBytes = %d", a.FreeBytes())
	}
	if a.ArenaSize() != 1024 {
		t.Errorf("ArenaSize = %d", a.ArenaSize())
	}
}

// Property: arbitrary interleavings of Alloc and Free never violate the
// allocator invariants, never hand out overlapping ranges, and freeing
// everything restores the whole arena.
func TestAllocatorFuzzProperty(t *testing.T) {
	f := func(seed int64, ops []uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		a, err := NewAllocator("fuzz", 0x10000, 1<<16, 64)
		if err != nil {
			return false
		}
		var livePtrs []Addr
		for _, op := range ops {
			if op%3 != 0 || len(livePtrs) == 0 {
				size := int64(op%2048 + 1)
				p, err := a.Alloc(size)
				if err == nil {
					// Overlap check against every live allocation.
					psz, _ := a.SizeOf(p)
					for _, q := range livePtrs {
						qsz, _ := a.SizeOf(q)
						if p < q+Addr(qsz) && q < p+Addr(psz) {
							return false
						}
					}
					livePtrs = append(livePtrs, p)
				}
			} else {
				i := rng.Intn(len(livePtrs))
				if a.Free(livePtrs[i]) != nil {
					return false
				}
				livePtrs = append(livePtrs[:i], livePtrs[i+1:]...)
			}
			if a.CheckInvariants() != nil {
				return false
			}
		}
		for _, p := range livePtrs {
			if a.Free(p) != nil {
				return false
			}
		}
		return a.FreeBytes() == 1<<16 && a.CheckInvariants() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
