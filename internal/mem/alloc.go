package mem

import (
	"fmt"
	"sort"
)

// Allocator hands out address ranges from a fixed arena using a first-fit
// free list with coalescing. It only manages addresses; callers pair it with
// a Memory to actually map the ranges.
type Allocator struct {
	name  string
	base  Addr
	size  int64
	align int64
	free  []span // sorted by addr, coalesced
	live  map[Addr]int64
}

type span struct {
	addr Addr
	size int64
}

// NewAllocator manages [base, base+size) and aligns every allocation to
// align bytes (which must be a positive power of two).
func NewAllocator(name string, base Addr, size, align int64) (*Allocator, error) {
	if size <= 0 {
		return nil, fmt.Errorf("alloc %s: arena size %d must be positive", name, size)
	}
	if align <= 0 || align&(align-1) != 0 {
		return nil, fmt.Errorf("alloc %s: alignment %d must be a positive power of two", name, align)
	}
	return &Allocator{
		name:  name,
		base:  base,
		size:  size,
		align: align,
		free:  []span{{addr: base, size: size}},
		live:  make(map[Addr]int64),
	}, nil
}

// Alloc reserves size bytes and returns the base address.
func (a *Allocator) Alloc(size int64) (Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("alloc %s: size %d must be positive", a.name, size)
	}
	want := (size + a.align - 1) &^ (a.align - 1)
	for i, s := range a.free {
		// The arena base is aligned by construction and spans only split at
		// aligned sizes, so every free span base is aligned.
		if s.size >= want {
			addr := s.addr
			if s.size == want {
				a.free = append(a.free[:i], a.free[i+1:]...)
			} else {
				a.free[i] = span{addr: s.addr + Addr(want), size: s.size - want}
			}
			a.live[addr] = want
			return addr, nil
		}
	}
	return 0, fmt.Errorf("alloc %s: out of memory (%d bytes requested, %d free)",
		a.name, want, a.FreeBytes())
}

// Free releases the allocation starting at addr.
func (a *Allocator) Free(addr Addr) error {
	size, ok := a.live[addr]
	if !ok {
		return fmt.Errorf("alloc %s: Free(%#x): not an allocated base address", a.name, addr)
	}
	delete(a.live, addr)
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].addr > addr })
	a.free = append(a.free, span{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = span{addr: addr, size: size}
	// Coalesce with successor then predecessor.
	if i+1 < len(a.free) && a.free[i].addr+Addr(a.free[i].size) == a.free[i+1].addr {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].addr+Addr(a.free[i-1].size) == a.free[i].addr {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
	return nil
}

// SizeOf returns the (aligned) size of the live allocation at addr.
func (a *Allocator) SizeOf(addr Addr) (int64, bool) {
	s, ok := a.live[addr]
	return s, ok
}

// LiveCount returns the number of live allocations.
func (a *Allocator) LiveCount() int { return len(a.live) }

// FreeBytes returns the total free space (which may be fragmented).
func (a *Allocator) FreeBytes() int64 {
	var n int64
	for _, s := range a.free {
		n += s.size
	}
	return n
}

// ArenaSize returns the total managed size.
func (a *Allocator) ArenaSize() int64 { return a.size }

// CheckInvariants verifies the free list is sorted, within the arena,
// coalesced, and that free+live sizes account for the whole arena. It is
// used by tests and property checks.
func (a *Allocator) CheckInvariants() error {
	var prevEnd Addr = a.base
	var freeSum int64
	for i, s := range a.free {
		if s.size <= 0 {
			return fmt.Errorf("alloc %s: free span %d has size %d", a.name, i, s.size)
		}
		if s.addr < prevEnd {
			return fmt.Errorf("alloc %s: free span %d overlaps or unsorted", a.name, i)
		}
		if i > 0 && s.addr == prevEnd {
			return fmt.Errorf("alloc %s: free spans %d and %d not coalesced", a.name, i-1, i)
		}
		if s.addr+Addr(s.size) > a.base+Addr(a.size) {
			return fmt.Errorf("alloc %s: free span %d outside arena", a.name, i)
		}
		prevEnd = s.addr + Addr(s.size)
		freeSum += s.size
	}
	var liveSum int64
	for _, sz := range a.live {
		liveSum += sz
	}
	if freeSum+liveSum != a.size {
		return fmt.Errorf("alloc %s: free %d + live %d != arena %d", a.name, freeSum, liveSum, a.size)
	}
	return nil
}
