// Package dma models the three data-movement engines of the SX-Aurora
// platform (paper §I-B, §IV-A):
//
//   - the privileged (system) DMA engine, shared by all cores of one VE and
//     driven by the VEOS DMA manager, which must translate VH virtual
//     addresses to physical on the fly (naively per page, or in bulk
//     overlapped with the transfer as in VEOS 1.3.2-4dma);
//   - the per-core user DMA engine, programmed directly from VE code against
//     pre-registered DMAATB entries, with no OS interaction;
//   - the LHM/SHM instructions, which load/store single 64-bit words of
//     registered host memory from VE code.
//
// All engines move real bytes between the simulated memories and advance
// simulated time according to the calibrated Timing model.
package dma

import (
	"fmt"

	"hamoffload/internal/faults"
	"hamoffload/internal/mem"
	"hamoffload/internal/pcie"
	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
	"hamoffload/internal/vemem"
)

// checkTransfer runs the shared fault hooks of a DMA transfer start: an
// active link-down window or a scheduled transfer error fails the transfer
// before any byte moves — a failed transfer delivers nothing.
func checkTransfer(p *simtime.Proc, t topology.Timing, site faults.Site, path pcie.Path) error {
	if t.Faults == nil {
		return nil
	}
	if err := path.Err(p); err != nil {
		t.Tracer.Instant(p, "fault", "link-down")
		return err
	}
	if err := t.Faults.TransferError(p.Now(), site, path.Link.VE()); err != nil {
		t.Tracer.Instant(p, "fault", "dma-error "+site.String())
		return err
	}
	return nil
}

// slowDown serves a fail-slow injection at a transfer site: when the plan
// degrades this node, the transfer is delayed by the injector's verdict on
// its nominal cost (SlowDown factors, seed-derived jitter) before the
// engine starts. Zero cost without an injector; see faults.SlowDelay.
func slowDown(p *simtime.Proc, t topology.Timing, site faults.Site, path pcie.Path, base simtime.Duration) {
	if t.Faults == nil {
		return
	}
	if d := t.Faults.SlowDelay(p.Now(), site, path.Link.VE(), base); d > 0 {
		t.Tracer.Instant(p, "fault", "slow-down "+site.String())
		p.Sleep(d)
	}
}

// corrupt flips one byte of the destination region when a bit-flip fault is
// scheduled for this transfer, after the data moved.
func corrupt(p *simtime.Proc, t topology.Timing, site faults.Site, path pcie.Path,
	m *mem.Memory, addr mem.Addr, n int64) {
	if t.Faults == nil {
		return
	}
	off := t.Faults.Corrupt(p.Now(), site, path.Link.VE(), n)
	if off < 0 {
		return
	}
	var b [1]byte
	if m.ReadAt(b[:], addr+mem.Addr(off)) != nil {
		return
	}
	b[0] ^= 0x10
	if m.WriteAt(b[:], addr+mem.Addr(off)) == nil {
		t.Tracer.Instant(p, "fault", "bit-flip "+site.String())
	}
}

// TranslateMode selects the VEOS DMA manager's address-translation strategy.
type TranslateMode int

const (
	// TranslateNaive performs one translation per VH page before the
	// transfer starts (pre-4dma VEOS).
	TranslateNaive TranslateMode = iota
	// TranslateBulk4DMA performs bulk translations overlapped with
	// descriptor generation and the DMA transfer (VEOS 1.3.2-4dma).
	TranslateBulk4DMA
)

func (m TranslateMode) String() string {
	if m == TranslateBulk4DMA {
		return "bulk-4dma"
	}
	return "naive"
}

// Privileged is one VE's system DMA engine as driven by the VEOS DMA
// manager. It is shared by all users of that VE; concurrent requests queue
// on the engine resource.
type Privileged struct {
	timing   topology.Timing
	mode     TranslateMode
	pageSize int64
	path     pcie.Path
	engine   *simtime.Resource
	hostMem  *mem.Memory
	veMem    *mem.Memory
}

// NewPrivileged creates the engine for one VE.
//
// hostPageSize is the VH page size used for translations (the huge-page
// ablation varies it); path is the PCIe route between the VEOS daemon's
// socket and the VE.
func NewPrivileged(eng *simtime.Engine, name string, t topology.Timing, mode TranslateMode,
	hostPageSize int64, path pcie.Path, hostMem, veMem *mem.Memory) *Privileged {
	return &Privileged{
		timing:   t,
		mode:     mode,
		pageSize: hostPageSize,
		path:     path,
		engine:   simtime.NewResource(eng, name+"-privdma"),
		hostMem:  hostMem,
		veMem:    veMem,
	}
}

// Mode returns the translation mode.
func (d *Privileged) Mode() TranslateMode { return d.mode }

// translateTime returns how long address translation delays the transfer of
// n bytes starting at hostAddr whose pure wire time is wire.
func (d *Privileged) translateTime(hostAddr mem.Addr, n int64, wire simtime.Duration) simtime.Duration {
	pages := mem.PageCount(hostAddr, n, d.pageSize)
	switch d.mode {
	case TranslateBulk4DMA:
		// Bulk translation overlaps with descriptor generation and the
		// transfer itself: only translation work exceeding the wire time
		// stalls the engine, plus a fixed setup.
		overlapped := simtime.Duration(pages) * d.timing.BulkTranslatePerPage
		stall := overlapped - wire
		if stall < 0 {
			stall = 0
		}
		return d.timing.BulkTranslateFixed + stall
	default:
		return simtime.Duration(pages) * d.timing.PrivTranslatePerPage
	}
}

// Write moves n bytes from VH memory at hostAddr into VE memory at veAddr
// (direction VH→VE), as performed for veo_write_mem. The calling process is
// the VEOS DMA manager; IPC costs up to that point are charged by the veos
// package.
func (d *Privileged) Write(p *simtime.Proc, veAddr, hostAddr mem.Addr, n int64) error {
	return d.transfer(p, pcie.Down, veAddr, hostAddr, n)
}

// Read moves n bytes from VE memory at veAddr into VH memory at hostAddr
// (direction VE→VH), as performed for veo_read_mem.
func (d *Privileged) Read(p *simtime.Proc, hostAddr, veAddr mem.Addr, n int64) error {
	return d.transfer(p, pcie.Up, veAddr, hostAddr, n)
}

func (d *Privileged) transfer(p *simtime.Proc, dir pcie.Direction, veAddr, hostAddr mem.Addr, n int64) error {
	if n < 0 {
		return fmt.Errorf("dma: privileged transfer of negative size %d", n)
	}
	if err := checkTransfer(p, d.timing, faults.SitePrivDMA, d.path); err != nil {
		return err
	}
	name := "priv-dma-write"
	if dir == pcie.Up {
		name = "priv-dma-read"
	}
	defer d.timing.Tracer.Span(p, "dma", name)()
	rate := d.timing.PrivDMAWriteRate
	if dir == pcie.Up {
		rate = d.timing.PrivDMAReadRate
	}
	wire := simtime.BytesOver(n, rate)
	slowDown(p, d.timing, faults.SitePrivDMA, d.path, wire+d.timing.PrivDMAKick)

	d.engine.Acquire(p)
	p.Sleep(d.translateTime(hostAddr, n, wire))
	p.Sleep(d.timing.PrivDMAKick)
	if dir == pcie.Up {
		// The read path issues a remote descriptor fetch and synchronises
		// with the VE memory controller before data flows back.
		p.Sleep(d.timing.PrivDMAReadExtra)
	}
	endWire := d.timing.Tracer.Span(p, "pcie", "pcie "+dir.String())
	if n > 0 {
		d.path.Link.Occupy(p, dir, n) // engine rate below link rate: charge engine rate
		// The engine's sustained rate is below the link's TLP-limited rate;
		// the residual time is engine-internal pacing.
		if extra := wire - d.path.Link.WireTime(n); extra > 0 {
			p.Sleep(extra)
		}
	}
	p.Sleep(d.path.OneWayLatency())
	endWire()
	d.engine.Release(p)

	if dir == pcie.Down {
		if err := mem.Copy(d.veMem, veAddr, d.hostMem, hostAddr, n); err != nil {
			return err
		}
		corrupt(p, d.timing, faults.SitePrivDMA, d.path, d.veMem, veAddr, n)
		return nil
	}
	if err := mem.Copy(d.hostMem, hostAddr, d.veMem, veAddr, n); err != nil {
		return err
	}
	corrupt(p, d.timing, faults.SitePrivDMA, d.path, d.hostMem, hostAddr, n)
	return nil
}

// UserDMA is one VE core's user DMA engine. Addresses are VEHVA and must be
// registered in the DMAATB; translation is free at transfer time because the
// DMAATB is a hardware TLB (no OS interaction, paper §IV-A).
type UserDMA struct {
	timing topology.Timing
	atb    *vemem.DMAATB
	path   pcie.Path
	engine *simtime.Resource
}

// NewUserDMA creates the user DMA engine of one VE core.
func NewUserDMA(eng *simtime.Engine, name string, t topology.Timing, atb *vemem.DMAATB, path pcie.Path) *UserDMA {
	return &UserDMA{
		timing: t,
		atb:    atb,
		path:   path,
		engine: simtime.NewResource(eng, name+"-userdma"),
	}
}

// Level selects how a user-DMA transfer is issued.
type Level int

const (
	// API models ve_dma_post_wait: descriptor build in the library, post,
	// completion poll. This is what the Fig. 10 "VE User DMA" series uses.
	API Level = iota
	// Raw models a pre-built descriptor hot path as used by the HAM-Offload
	// DMA backend, paying only the hardware latency.
	Raw
)

// Post moves n bytes from srcVEHVA to dstVEHVA in direction dir and blocks
// until completion. Both ranges must be DMAATB-registered. Large transfers
// split into pipelined descriptors of at most UserDMAMaxDescriptor bytes.
func (u *UserDMA) Post(p *simtime.Proc, level Level, dir pcie.Direction, dstVEHVA, srcVEHVA mem.Addr, n int64) error {
	if n < 0 {
		return fmt.Errorf("dma: user DMA transfer of negative size %d", n)
	}
	dstMem, dstAddr, err := u.atb.Translate(dstVEHVA, n)
	if err != nil {
		return err
	}
	srcMem, srcAddr, err := u.atb.Translate(srcVEHVA, n)
	if err != nil {
		return err
	}
	if err := checkTransfer(p, u.timing, faults.SiteUserDMA, u.path); err != nil {
		return err
	}

	rate := u.timing.UserDMAWriteRate
	if dir == pcie.Down {
		rate = u.timing.UserDMAReadRate
	}
	slowDown(p, u.timing, faults.SiteUserDMA, u.path, simtime.BytesOver(n, rate)+u.timing.UserDMAHWLatency)

	defer u.timing.Tracer.Span(p, "dma", "user-dma "+dir.String())()
	u.engine.Acquire(p)
	if level == API {
		p.Sleep(u.timing.UserDMAAPISetup)
	}
	p.Sleep(u.timing.UserDMAHWLatency)
	endWire := u.timing.Tracer.Span(p, "pcie", "pcie "+dir.String())
	if n > 0 {
		// Descriptors pipeline: total time is rate-limited; per-descriptor
		// overhead is hidden behind the transfer of the previous one.
		maxDesc := u.timing.UserDMAMaxDescriptor.Int64()
		for off := int64(0); off < n; off += maxDesc {
			chunk := n - off
			if chunk > maxDesc {
				chunk = maxDesc
			}
			u.path.Link.Occupy(p, dir, chunk)
			if extra := simtime.BytesOver(chunk, rate) - u.path.Link.WireTime(chunk); extra > 0 {
				p.Sleep(extra)
			}
		}
	}
	p.Sleep(u.path.OneWayLatency())
	endWire()
	u.engine.Release(p)

	if err := mem.Copy(dstMem, dstAddr, srcMem, srcAddr, n); err != nil {
		return err
	}
	corrupt(p, u.timing, faults.SiteUserDMA, u.path, dstMem, dstAddr, n)
	return nil
}

// Instr models the LHM and SHM instructions of the VE ISA: word-granular
// loads and stores of DMAATB-registered (host) memory, issued from VE code.
type Instr struct {
	timing topology.Timing
	atb    *vemem.DMAATB
	path   pcie.Path
	loads  int64
	stores int64
}

// NewInstr creates the instruction unit for one VE core.
func NewInstr(t topology.Timing, atb *vemem.DMAATB, path pcie.Path) *Instr {
	return &Instr{timing: t, atb: atb, path: path}
}

// Loads and Stores return the number of words moved, for stats.
func (in *Instr) Loads() int64  { return in.loads }
func (in *Instr) Stores() int64 { return in.stores }

// LoadWord performs one LHM: an 8-byte load from the VEHVA. LHM is a full
// round trip over PCIe and does not pipeline.
func (in *Instr) LoadWord(p *simtime.Proc, vehva mem.Addr) (uint64, error) {
	m, addr, err := in.atb.Translate(vehva, 8)
	if err != nil {
		return 0, err
	}
	if err := checkTransfer(p, in.timing, faults.SiteLHM, in.path); err != nil {
		return 0, err
	}
	slowDown(p, in.timing, faults.SiteLHM, in.path, in.timing.LHMPerWord)
	defer in.timing.Tracer.Span(p, "pcie", "lhm-load")()
	p.Sleep(in.timing.LHMPerWord + simtime.Duration(in.path.UPIHops)*in.timing.UPILatency*2)
	in.loads++
	return m.ReadUint64(addr)
}

// StoreWord performs one SHM: an 8-byte posted store to the VEHVA.
func (in *Instr) StoreWord(p *simtime.Proc, vehva mem.Addr, v uint64) error {
	m, addr, err := in.atb.Translate(vehva, 8)
	if err != nil {
		return err
	}
	if err := checkTransfer(p, in.timing, faults.SiteLHM, in.path); err != nil {
		return err
	}
	slowDown(p, in.timing, faults.SiteLHM, in.path, in.timing.SHMFirstWord)
	defer in.timing.Tracer.Span(p, "pcie", "shm-store")()
	p.Sleep(in.timing.SHMFirstWord + simtime.Duration(in.path.UPIHops)*in.timing.UPILatency)
	in.stores++
	return m.WriteUint64(addr, v)
}

// StoreBytes stores data word-by-word via SHM. The first store pays the
// setup cost; subsequent posted stores pipeline at SHMPerWord. Data is
// padded to a whole word as the instruction writes 8 bytes at a time.
func (in *Instr) StoreBytes(p *simtime.Proc, vehva mem.Addr, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	padded := int64((len(data) + 7) &^ 7)
	m, addr, err := in.atb.Translate(vehva, padded)
	if err != nil {
		return err
	}
	if err := checkTransfer(p, in.timing, faults.SiteLHM, in.path); err != nil {
		return err
	}
	words := padded / 8
	cost := in.timing.SHMFirstWord + simtime.Duration(words-1)*in.timing.SHMPerWord
	slowDown(p, in.timing, faults.SiteLHM, in.path, cost)
	defer in.timing.Tracer.Span(p, "pcie", "shm-store")()
	p.Sleep(cost + simtime.Duration(in.path.UPIHops)*in.timing.UPILatency)
	in.stores += words
	buf := make([]byte, padded)
	copy(buf, data)
	if err := m.WriteAt(buf, addr); err != nil {
		return err
	}
	corrupt(p, in.timing, faults.SiteLHM, in.path, m, addr, padded)
	return nil
}

// LoadBytes loads len(out) bytes word-by-word via LHM. Every word is a full
// round trip; this is why Fig. 10 caps the LHM series at 0.01 GiB/s.
func (in *Instr) LoadBytes(p *simtime.Proc, vehva mem.Addr, out []byte) error {
	if len(out) == 0 {
		return nil
	}
	padded := int64((len(out) + 7) &^ 7)
	m, addr, err := in.atb.Translate(vehva, padded)
	if err != nil {
		return err
	}
	if err := checkTransfer(p, in.timing, faults.SiteLHM, in.path); err != nil {
		return err
	}
	words := padded / 8
	slowDown(p, in.timing, faults.SiteLHM, in.path, simtime.Duration(words)*in.timing.LHMPerWord)
	defer in.timing.Tracer.Span(p, "pcie", "lhm-load")()
	p.Sleep(simtime.Duration(words)*in.timing.LHMPerWord +
		simtime.Duration(in.path.UPIHops)*in.timing.UPILatency*2)
	in.loads += words
	buf := make([]byte, padded)
	if err := m.ReadAt(buf, addr); err != nil {
		return err
	}
	copy(out, buf)
	return nil
}
