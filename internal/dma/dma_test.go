package dma

import (
	"testing"

	"hamoffload/internal/hostmem"
	"hamoffload/internal/pcie"
	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
	"hamoffload/internal/units"
	"hamoffload/internal/vemem"
)

// rig bundles a minimal VH+VE memory pair with a PCIe path for engine tests.
type rig struct {
	eng  *simtime.Engine
	tm   topology.Timing
	host *hostmem.Host
	ve   *vemem.VE
	path pcie.Path
}

func newRig(t *testing.T, pageSize units.Bytes) *rig {
	t.Helper()
	eng := simtime.NewEngine()
	tm := topology.DefaultTiming()
	host, err := hostmem.New("vh", 2*units.GiB, pageSize)
	if err != nil {
		t.Fatal(err)
	}
	ve, err := vemem.New("ve0", 4*units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := pcie.NewFabric(eng, topology.A300_8(), tm)
	if err != nil {
		t.Fatal(err)
	}
	path, err := fab.PathFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, tm: tm, host: host, ve: ve, path: path}
}

// runIn executes fn as a single simulated process and returns its duration.
func (r *rig) runIn(t *testing.T, fn func(p *simtime.Proc)) simtime.Duration {
	t.Helper()
	var took simtime.Duration
	r.eng.Spawn("test", func(p *simtime.Proc) {
		start := p.Now()
		fn(p)
		took = p.Now().Sub(start)
	})
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	return took
}

func TestPrivilegedWriteMovesBytes(t *testing.T) {
	r := newRig(t, 2*units.MiB)
	hAddr, err := r.host.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	vAddr, err := r.ve.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.host.Mem.WriteAt([]byte("offload me"), hAddr); err != nil {
		t.Fatal(err)
	}
	d := NewPrivileged(r.eng, "ve0", r.tm, TranslateBulk4DMA,
		r.host.PageSize.Int64(), r.path, r.host.Mem, r.ve.HBM)
	took := r.runIn(t, func(p *simtime.Proc) {
		if err := d.Write(p, vAddr, hAddr, 10); err != nil {
			t.Errorf("Write: %v", err)
		}
	})
	got := make([]byte, 10)
	if err := r.ve.HBM.ReadAt(got, vAddr); err != nil {
		t.Fatal(err)
	}
	if string(got) != "offload me" {
		t.Fatalf("VE memory = %q", got)
	}
	if took <= 0 {
		t.Fatal("transfer took no simulated time")
	}
}

func TestPrivilegedReadSlowerThanWrite(t *testing.T) {
	// The read path pays PrivDMAReadExtra (remote descriptor fetch).
	r := newRig(t, 2*units.MiB)
	hAddr, _ := r.host.Alloc(4096)
	vAddr, _ := r.ve.Alloc(4096)
	d := NewPrivileged(r.eng, "ve0", r.tm, TranslateBulk4DMA,
		r.host.PageSize.Int64(), r.path, r.host.Mem, r.ve.HBM)
	var wTime, rTime simtime.Duration
	r.runIn(t, func(p *simtime.Proc) {
		s := p.Now()
		if err := d.Write(p, vAddr, hAddr, 8); err != nil {
			t.Error(err)
		}
		wTime = p.Now().Sub(s)
		s = p.Now()
		if err := d.Read(p, hAddr, vAddr, 8); err != nil {
			t.Error(err)
		}
		rTime = p.Now().Sub(s)
	})
	if rTime <= wTime {
		t.Errorf("read %v should be slower than write %v", rTime, wTime)
	}
	if rTime-wTime < r.tm.PrivDMAReadExtra {
		t.Errorf("read extra = %v, want >= %v", rTime-wTime, r.tm.PrivDMAReadExtra)
	}
}

func TestNaiveTranslationPenalizes4KiBPages(t *testing.T) {
	// 2 MiB of data on 4 KiB pages = 512 translations; the naive manager
	// pays them serially, bulk-4dma overlaps them with the transfer.
	size := (2 * units.MiB).Int64()
	timeFor := func(mode TranslateMode) simtime.Duration {
		r := newRig(t, 4*units.KiB)
		hAddr, _ := r.host.Alloc(size)
		vAddr, _ := r.ve.Alloc(size)
		d := NewPrivileged(r.eng, "ve0", r.tm, mode,
			r.host.PageSize.Int64(), r.path, r.host.Mem, r.ve.HBM)
		return r.runIn(t, func(p *simtime.Proc) {
			if err := d.Write(p, vAddr, hAddr, size); err != nil {
				t.Error(err)
			}
		})
	}
	naive, bulk := timeFor(TranslateNaive), timeFor(TranslateBulk4DMA)
	if naive <= bulk {
		t.Errorf("naive %v should be slower than bulk %v on 4KiB pages", naive, bulk)
	}
	// The naive penalty is 512 × PrivTranslatePerPage ≈ 307 µs on top.
	tm := topology.DefaultTiming()
	wantExtra := 512 * tm.PrivTranslatePerPage
	extra := naive - bulk
	if extra < wantExtra/2 {
		t.Errorf("naive extra = %v, want ≈%v", extra, wantExtra)
	}
}

func TestHugePagesCutTranslationWork(t *testing.T) {
	size := (8 * units.MiB).Int64()
	timeFor := func(page units.Bytes) simtime.Duration {
		r := newRig(t, page)
		hAddr, _ := r.host.Alloc(size)
		vAddr, _ := r.ve.Alloc(size)
		d := NewPrivileged(r.eng, "ve0", r.tm, TranslateNaive,
			r.host.PageSize.Int64(), r.path, r.host.Mem, r.ve.HBM)
		return r.runIn(t, func(p *simtime.Proc) {
			if err := d.Write(p, vAddr, hAddr, size); err != nil {
				t.Error(err)
			}
		})
	}
	small, huge := timeFor(4*units.KiB), timeFor(2*units.MiB)
	if small <= huge {
		t.Errorf("4KiB pages %v should be slower than huge pages %v", small, huge)
	}
}

func TestUserDMAMovesBytesAndRespectsATB(t *testing.T) {
	r := newRig(t, 2*units.MiB)
	seg, err := r.host.ShmCreate(4096)
	if err != nil {
		t.Fatal(err)
	}
	vAddr, err := r.ve.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	hostVEHVA, err := r.ve.ATB().Register(r.host.Mem, seg.Addr, seg.Size)
	if err != nil {
		t.Fatal(err)
	}
	veVEHVA, err := r.ve.ATB().Register(r.ve.HBM, vAddr, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.ve.HBM.WriteAt([]byte("result!"), vAddr); err != nil {
		t.Fatal(err)
	}
	u := NewUserDMA(r.eng, "ve0c0", r.tm, r.ve.ATB(), r.path)
	r.runIn(t, func(p *simtime.Proc) {
		// VE→VH: write local buffer into host shm.
		if err := u.Post(p, API, pcie.Up, hostVEHVA, veVEHVA, 7); err != nil {
			t.Errorf("Post: %v", err)
		}
	})
	got := make([]byte, 7)
	if err := r.host.Mem.ReadAt(got, seg.Addr); err != nil {
		t.Fatal(err)
	}
	if string(got) != "result!" {
		t.Fatalf("host shm = %q", got)
	}

	// Unregistered addresses must raise a DMA exception.
	r2 := newRig(t, 2*units.MiB)
	u2 := NewUserDMA(r2.eng, "x", r2.tm, r2.ve.ATB(), r2.path)
	r2.runIn(t, func(p *simtime.Proc) {
		if err := u2.Post(p, API, pcie.Up, 0xdead000, 0xbeef000, 8); err == nil {
			t.Error("Post with unregistered VEHVA should fail")
		}
	})
}

func TestUserDMARawFasterThanAPI(t *testing.T) {
	r := newRig(t, 2*units.MiB)
	seg, _ := r.host.ShmCreate(4096)
	vAddr, _ := r.ve.Alloc(4096)
	hostVEHVA, _ := r.ve.ATB().Register(r.host.Mem, seg.Addr, seg.Size)
	veVEHVA, _ := r.ve.ATB().Register(r.ve.HBM, vAddr, 4096)
	u := NewUserDMA(r.eng, "ve0c0", r.tm, r.ve.ATB(), r.path)
	var api, raw simtime.Duration
	r.runIn(t, func(p *simtime.Proc) {
		s := p.Now()
		if err := u.Post(p, API, pcie.Up, hostVEHVA, veVEHVA, 64); err != nil {
			t.Error(err)
		}
		api = p.Now().Sub(s)
		s = p.Now()
		if err := u.Post(p, Raw, pcie.Up, hostVEHVA, veVEHVA, 64); err != nil {
			t.Error(err)
		}
		raw = p.Now().Sub(s)
	})
	if api-raw != r.tm.UserDMAAPISetup {
		t.Errorf("API-Raw difference = %v, want %v", api-raw, r.tm.UserDMAAPISetup)
	}
}

func TestUserDMAPeakBandwidth(t *testing.T) {
	// Table IV: VE user DMA peaks at 11.1 GiB/s VE→VH and 10.6 GiB/s VH→VE.
	for _, c := range []struct {
		dir  pcie.Direction
		want float64
	}{
		{pcie.Up, 11.1},
		{pcie.Down, 10.6},
	} {
		r := newRig(t, 2*units.MiB)
		size := (256 * units.MiB).Int64()
		seg, err := r.host.ShmCreate(size)
		if err != nil {
			t.Fatal(err)
		}
		vAddr, err := r.ve.Alloc(size)
		if err != nil {
			t.Fatal(err)
		}
		hostVEHVA, _ := r.ve.ATB().Register(r.host.Mem, seg.Addr, size)
		veVEHVA, _ := r.ve.ATB().Register(r.ve.HBM, vAddr, size)
		u := NewUserDMA(r.eng, "ve0c0", r.tm, r.ve.ATB(), r.path)
		took := r.runIn(t, func(p *simtime.Proc) {
			dst, src := hostVEHVA, veVEHVA
			if c.dir == pcie.Down {
				dst, src = veVEHVA, hostVEHVA
			}
			if err := u.Post(p, API, c.dir, dst, src, size); err != nil {
				t.Error(err)
			}
		})
		gibps := float64(size) / float64(units.GiB) / took.Seconds()
		if gibps < c.want*0.95 || gibps > c.want*1.05 {
			t.Errorf("%v user DMA peak = %.2f GiB/s, want ≈%.1f", c.dir, gibps, c.want)
		}
	}
}

func TestSHMStoreAndLHMLoad(t *testing.T) {
	r := newRig(t, 2*units.MiB)
	seg, _ := r.host.ShmCreate(4096)
	vehva, _ := r.ve.ATB().Register(r.host.Mem, seg.Addr, seg.Size)
	in := NewInstr(r.tm, r.ve.ATB(), r.path)
	r.runIn(t, func(p *simtime.Proc) {
		if err := in.StoreWord(p, vehva, 0xdeadbeef); err != nil {
			t.Fatalf("StoreWord: %v", err)
		}
		v, err := in.LoadWord(p, vehva)
		if err != nil {
			t.Fatalf("LoadWord: %v", err)
		}
		if v != 0xdeadbeef {
			t.Errorf("LoadWord = %#x", v)
		}
	})
	if in.Loads() != 1 || in.Stores() != 1 {
		t.Errorf("counters = %d/%d", in.Loads(), in.Stores())
	}
}

func TestSHMBytesPipelineAndLHMDoesNot(t *testing.T) {
	r := newRig(t, 2*units.MiB)
	seg, _ := r.host.ShmCreate(1 << 20)
	vehva, _ := r.ve.ATB().Register(r.host.Mem, seg.Addr, seg.Size)
	in := NewInstr(r.tm, r.ve.ATB(), r.path)
	data := make([]byte, 4096)
	for i := range data {
		data[i] = byte(i)
	}
	var storeT, loadT simtime.Duration
	r.runIn(t, func(p *simtime.Proc) {
		s := p.Now()
		if err := in.StoreBytes(p, vehva, data); err != nil {
			t.Fatal(err)
		}
		storeT = p.Now().Sub(s)
		s = p.Now()
		out := make([]byte, 4096)
		if err := in.LoadBytes(p, vehva, out); err != nil {
			t.Fatal(err)
		}
		loadT = p.Now().Sub(s)
		for i := range out {
			if out[i] != data[i] {
				t.Fatalf("byte %d mismatch", i)
			}
		}
	})
	// 512 words: stores pipeline at ~124 ns/word (≈64 µs); loads round-trip
	// at 700 ns/word (≈358 µs).
	words := simtime.Duration(4096 / 8)
	wantStore := r.tm.SHMFirstWord + (words-1)*r.tm.SHMPerWord
	if storeT != wantStore {
		t.Errorf("StoreBytes = %v, want %v", storeT, wantStore)
	}
	wantLoad := words * r.tm.LHMPerWord
	if loadT != wantLoad {
		t.Errorf("LoadBytes = %v, want %v", loadT, wantLoad)
	}
	if loadT <= storeT {
		t.Error("LHM should be much slower than SHM")
	}
}

func TestSHMPeakBandwidths(t *testing.T) {
	// Table IV: SHM/LHM column — 0.06 GiB/s VE→VH (SHM), 0.01 GiB/s VH→VE
	// (LHM), measured at the 4 MiB sweep cap.
	r := newRig(t, 2*units.MiB)
	size := (4 * units.MiB).Int64()
	seg, _ := r.host.ShmCreate(size)
	vehva, _ := r.ve.ATB().Register(r.host.Mem, seg.Addr, size)
	in := NewInstr(r.tm, r.ve.ATB(), r.path)
	buf := make([]byte, size)
	var storeT, loadT simtime.Duration
	r.runIn(t, func(p *simtime.Proc) {
		s := p.Now()
		if err := in.StoreBytes(p, vehva, buf); err != nil {
			t.Fatal(err)
		}
		storeT = p.Now().Sub(s)
		s = p.Now()
		if err := in.LoadBytes(p, vehva, buf); err != nil {
			t.Fatal(err)
		}
		loadT = p.Now().Sub(s)
	})
	shm := float64(size) / float64(units.GiB) / storeT.Seconds()
	lhm := float64(size) / float64(units.GiB) / loadT.Seconds()
	if shm < 0.055 || shm > 0.068 {
		t.Errorf("SHM peak = %.4f GiB/s, want ≈0.06", shm)
	}
	if lhm < 0.009 || lhm > 0.012 {
		t.Errorf("LHM peak = %.4f GiB/s, want ≈0.01", lhm)
	}
}

func TestPrivilegedEngineSerializesRequests(t *testing.T) {
	// The system DMA engine is shared: two concurrent writes serialize.
	r := newRig(t, 2*units.MiB)
	size := (1 * units.MiB).Int64()
	h1, _ := r.host.Alloc(size)
	h2, _ := r.host.Alloc(size)
	v1, _ := r.ve.Alloc(size)
	v2, _ := r.ve.Alloc(size)
	d := NewPrivileged(r.eng, "ve0", r.tm, TranslateBulk4DMA,
		r.host.PageSize.Int64(), r.path, r.host.Mem, r.ve.HBM)
	var t1, t2 simtime.Time
	r.eng.Spawn("a", func(p *simtime.Proc) {
		if err := d.Write(p, v1, h1, size); err != nil {
			t.Error(err)
		}
		t1 = p.Now()
	})
	r.eng.Spawn("b", func(p *simtime.Proc) {
		if err := d.Write(p, v2, h2, size); err != nil {
			t.Error(err)
		}
		t2 = p.Now()
	})
	if err := r.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if t2 < t1*2-simtime.Time(simtime.Microsecond) {
		t.Errorf("second transfer finished at %v, first at %v: not serialized", t2, t1)
	}
}

func TestNegativeSizesRejected(t *testing.T) {
	r := newRig(t, 2*units.MiB)
	d := NewPrivileged(r.eng, "ve0", r.tm, TranslateBulk4DMA,
		r.host.PageSize.Int64(), r.path, r.host.Mem, r.ve.HBM)
	u := NewUserDMA(r.eng, "c0", r.tm, r.ve.ATB(), r.path)
	r.runIn(t, func(p *simtime.Proc) {
		if err := d.Write(p, 0, 0, -1); err == nil {
			t.Error("negative privileged write accepted")
		}
		if err := u.Post(p, API, pcie.Up, 0, 0, -1); err == nil {
			t.Error("negative user DMA accepted")
		}
	})
}
