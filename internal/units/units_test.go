package units

import (
	"testing"
	"testing/quick"
)

func TestString(t *testing.T) {
	cases := []struct {
		b    Bytes
		want string
	}{
		{0, "0B"},
		{8, "8B"},
		{1023, "1023B"},
		{KiB, "1KiB"},
		{256 * MiB, "256MiB"},
		{48 * GiB, "48GiB"},
		{1536 * MiB, "1.5GiB"},
		{-2 * KiB, "-2KiB"},
	}
	for _, c := range cases {
		if got := c.b.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.b), got, c.want)
		}
	}
}

func TestGiBvsGB(t *testing.T) {
	// The paper's Table I: VE memory bandwidth 1228.8 GB/s is decimal.
	if got := Bytes(1228_800_000_000).GBs(); got != 1228.8 {
		t.Errorf("GBs = %v, want 1228.8", got)
	}
	// 48 GiB HBM is binary.
	if got := (48 * GiB).Int64(); got != 48*(1<<30) {
		t.Errorf("48GiB = %d", got)
	}
}

func TestAlign(t *testing.T) {
	if AlignUp(5, 8) != 8 || AlignUp(8, 8) != 8 || AlignUp(9, 8) != 16 {
		t.Error("AlignUp broken")
	}
	if AlignDown(5, 8) != 0 || AlignDown(8, 8) != 8 || AlignDown(15, 8) != 8 {
		t.Error("AlignDown broken")
	}
	if AlignUp(5, 0) != 5 {
		t.Error("AlignUp with zero align should be identity")
	}
}

func TestIsPowerOfTwo(t *testing.T) {
	for _, b := range []Bytes{1, 2, 4, 1024, GiB} {
		if !IsPowerOfTwo(b) {
			t.Errorf("%v should be a power of two", b)
		}
	}
	for _, b := range []Bytes{0, -2, 3, 1000} {
		if IsPowerOfTwo(b) {
			t.Errorf("%v should not be a power of two", b)
		}
	}
}

func TestAlignProperties(t *testing.T) {
	f := func(bRaw uint32, shift uint8) bool {
		b := Bytes(bRaw)
		align := Bytes(1) << (shift % 20)
		up, down := AlignUp(b, align), AlignDown(b, align)
		return up >= b && down <= b && up-down < 2*align &&
			up%align == 0 && down%align == 0 && up-b < align
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
