// Package units provides byte-size types and helpers. The paper is explicit
// about the distinction between binary units (GiB = 2^30 bytes) and decimal
// units (GB = 10^9 bytes): memory sizes and measured bandwidths use GiB,
// while link rates such as the VE's 1228.8 GB/s HBM bandwidth use GB. This
// package keeps both spellable and unambiguous.
package units

import "fmt"

// Bytes is a byte count.
type Bytes int64

// Binary (IEC) units: 2^10 steps.
const (
	B   Bytes = 1
	KiB       = 1024 * B
	MiB       = 1024 * KiB
	GiB       = 1024 * MiB
	TiB       = 1024 * GiB
)

// Decimal (SI) units: 10^3 steps.
const (
	KB Bytes = 1000 * B
	MB       = 1000 * KB
	GB       = 1000 * MB
	TB       = 1000 * GB
)

// Int returns b as an int. It panics if the value does not fit, which cannot
// happen for the sizes used in this repository on 64-bit platforms.
func (b Bytes) Int() int {
	n := int(b)
	if Bytes(n) != b {
		panic(fmt.Sprintf("units: %d bytes does not fit in int", int64(b)))
	}
	return n
}

// Int64 returns b as an int64.
func (b Bytes) Int64() int64 { return int64(b) }

// GiBs returns b as a floating-point GiB count.
func (b Bytes) GiBs() float64 { return float64(b) / float64(GiB) }

// GBs returns b as a floating-point decimal-GB count.
func (b Bytes) GBs() float64 { return float64(b) / float64(GB) }

// String renders b with an adaptive binary unit, e.g. "256MiB".
func (b Bytes) String() string {
	neg := ""
	v := b
	if v < 0 {
		neg = "-"
		v = -v
	}
	switch {
	case v < KiB:
		return fmt.Sprintf("%s%dB", neg, int64(v))
	case v < MiB:
		return fmtUnit(neg, float64(v)/float64(KiB), "KiB")
	case v < GiB:
		return fmtUnit(neg, float64(v)/float64(MiB), "MiB")
	case v < TiB:
		return fmtUnit(neg, float64(v)/float64(GiB), "GiB")
	default:
		return fmtUnit(neg, float64(v)/float64(TiB), "TiB")
	}
}

func fmtUnit(neg string, v float64, unit string) string {
	if v == float64(int64(v)) {
		return fmt.Sprintf("%s%d%s", neg, int64(v), unit)
	}
	return fmt.Sprintf("%s%.4g%s", neg, v, unit)
}

// AlignUp rounds b up to the next multiple of align (a power of two or any
// positive value).
func AlignUp(b, align Bytes) Bytes {
	if align <= 0 {
		return b
	}
	rem := b % align
	if rem == 0 {
		return b
	}
	return b + align - rem
}

// AlignDown rounds b down to a multiple of align.
func AlignDown(b, align Bytes) Bytes {
	if align <= 0 {
		return b
	}
	return b - b%align
}

// IsPowerOfTwo reports whether b is a positive power of two.
func IsPowerOfTwo(b Bytes) bool { return b > 0 && b&(b-1) == 0 }
