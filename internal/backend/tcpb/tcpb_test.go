package tcpb_test

import (
	"strings"
	"sync"
	"testing"

	"hamoffload/internal/backend/tcpb"
	"hamoffload/internal/core"
)

var (
	tcpSquare = core.NewFunc1[int64]("tcpb.square",
		func(c *core.Ctx, x int64) (int64, error) { return x * x, nil })

	tcpSumBuf = core.NewFunc1[float64]("tcpb.sumbuf",
		func(c *core.Ctx, b core.BufferPtr[float64]) (float64, error) {
			v, err := core.ReadLocal(c, b, 0, b.Count)
			if err != nil {
				return 0, err
			}
			s := 0.0
			for _, x := range v {
				s += x
			}
			return s, nil
		})
)

// tcpApp starts a real TCP target on a random loopback port, dials it, and
// returns the host runtime plus a cleanup function.
func tcpApp(t *testing.T) (*core.Runtime, func()) {
	t.Helper()
	target, err := tcpb.Listen("127.0.0.1:0", 1, 2, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	targetRT := core.NewRuntime(target, "tcp-target-arch")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := targetRT.Serve(); err != nil {
			t.Errorf("target Serve: %v", err)
		}
	}()
	host, err := tcpb.Dial([]string{target.Addr()}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	hostRT := core.NewRuntime(host, "tcp-host-arch")
	return hostRT, func() {
		if err := hostRT.Finalize(); err != nil {
			t.Errorf("Finalize: %v", err)
		}
		wg.Wait()
	}
}

func TestOffloadOverRealSockets(t *testing.T) {
	rt, done := tcpApp(t)
	defer done()
	v, err := core.Sync(rt, 1, tcpSquare.Bind(12))
	if err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if v != 144 {
		t.Fatalf("square = %d", v)
	}
}

func TestAllocatePutOffloadGetOverTCP(t *testing.T) {
	rt, done := tcpApp(t)
	defer done()
	buf, err := core.Allocate[float64](rt, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float64, 256)
	want := 0.0
	for i := range vals {
		vals[i] = float64(i)
		want += vals[i]
	}
	if err := core.Put(rt, vals, buf); err != nil {
		t.Fatal(err)
	}
	got, err := core.Sync(rt, 1, tcpSumBuf.Bind(buf))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	// Read back and verify Get too.
	back := make([]float64, 256)
	if err := core.Get(rt, buf, back); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Fatalf("get mismatch at %d", i)
		}
	}
	if err := core.Free(rt, buf); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncPipelineOverTCP(t *testing.T) {
	rt, done := tcpApp(t)
	defer done()
	futs := make([]*core.Future[int64], 16)
	for i := range futs {
		futs[i] = core.Async(rt, 1, tcpSquare.Bind(int64(i)))
	}
	for i, f := range futs {
		v, err := f.Get()
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(i*i) {
			t.Fatalf("futs[%d] = %d", i, v)
		}
	}
}

func TestRemotePutGetErrors(t *testing.T) {
	rt, done := tcpApp(t)
	defer done()
	// Put to an unmapped address must propagate the remote fault.
	err := rt.Backend().Put(1, []byte{1, 2, 3}, 0xdeadbeef)
	if err == nil || !strings.Contains(err.Error(), "remote error") {
		t.Fatalf("put fault = %v", err)
	}
	err = rt.Backend().Get(1, 0xdeadbeef, make([]byte, 8))
	if err == nil || !strings.Contains(err.Error(), "remote error") {
		t.Fatalf("get fault = %v", err)
	}
	// The connection stays usable after remote errors.
	if _, err := core.Sync(rt, 1, tcpSquare.Bind(3)); err != nil {
		t.Fatalf("offload after faults: %v", err)
	}
}

func TestPingDescriptorOverTCP(t *testing.T) {
	rt, done := tcpApp(t)
	defer done()
	d, err := rt.Ping(1)
	if err != nil {
		t.Fatal(err)
	}
	if d.Arch != "tcp-target" || d.Name != "tcp1" {
		t.Errorf("descriptor = %+v", d)
	}
}

func TestListenValidation(t *testing.T) {
	if _, err := tcpb.Listen("127.0.0.1:0", 0, 2, 1<<20); err == nil {
		t.Error("rank 0 target accepted")
	}
	if _, err := tcpb.Listen("127.0.0.1:0", 2, 2, 1<<20); err == nil {
		t.Error("rank == total accepted")
	}
	if _, err := tcpb.Dial(nil, 1<<20); err == nil {
		t.Error("empty address list accepted")
	}
	if _, err := tcpb.Dial([]string{"127.0.0.1:1"}, 1<<20); err == nil {
		t.Error("dial to closed port succeeded")
	}
}

// BenchmarkTCPOffloadRoundTrip measures the real (wall-clock) offload cost
// over loopback TCP — the portability-over-performance backend.
func BenchmarkTCPOffloadRoundTrip(b *testing.B) {
	target, err := tcpb.Listen("127.0.0.1:0", 1, 2, 1<<24)
	if err != nil {
		b.Fatal(err)
	}
	targetRT := core.NewRuntime(target, "tcp-bench-target")
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = targetRT.Serve()
	}()
	host, err := tcpb.Dial([]string{target.Addr()}, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	rt := core.NewRuntime(host, "tcp-bench-host")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Sync(rt, 1, tcpSquare.Bind(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := rt.Finalize(); err != nil {
		b.Fatal(err)
	}
	<-done
}

// BenchmarkTCPPut1MiB measures the bulk data path over loopback TCP.
func BenchmarkTCPPut1MiB(b *testing.B) {
	target, err := tcpb.Listen("127.0.0.1:0", 1, 2, 1<<26)
	if err != nil {
		b.Fatal(err)
	}
	targetRT := core.NewRuntime(target, "tcp-bench-target2")
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = targetRT.Serve()
	}()
	host, err := tcpb.Dial([]string{target.Addr()}, 1<<20)
	if err != nil {
		b.Fatal(err)
	}
	rt := core.NewRuntime(host, "tcp-bench-host2")
	buf, err := core.Allocate[float64](rt, 1, 1<<17)
	if err != nil {
		b.Fatal(err)
	}
	data := make([]float64, 1<<17)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := core.Put(rt, data, buf); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := rt.Finalize(); err != nil {
		b.Fatal(err)
	}
	<-done
}
