package tcpb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"hamoffload/internal/core"
	"hamoffload/internal/trace"
)

// Target is the serving side of the TCP backend: it accepts one host
// connection and processes frames until terminated.
type Target struct {
	ln    net.Listener
	self  core.NodeID
	total int
	heap  *lockedHeap
	nt    *trace.NodeTracer

	mu   sync.Mutex
	conn net.Conn
}

// SetTracer attaches a wall-clock trace handle for the target's serve loop.
// Call it before Serve.
func (t *Target) SetTracer(tr *trace.Tracer, clock trace.Clock) {
	t.nt = tr.Node(int(t.self), "tcpb", clock)
}

// lockedHeap guards the heap against concurrent put/get and dispatch access.
type lockedHeap struct {
	mu sync.Mutex
	h  *core.Heap
}

func (l *lockedHeap) Alloc(n int64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Alloc(n)
}

func (l *lockedHeap) Free(addr uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Free(addr)
}

func (l *lockedHeap) Read(addr uint64, p []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Read(addr, p)
}

func (l *lockedHeap) Write(addr uint64, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Write(addr, data)
}

// Listen starts a target on addr (e.g. "127.0.0.1:0"). self is this node's
// rank (usually 1), total the application's node count; heapBytes sizes the
// node's memory.
func Listen(addr string, self, total int, heapBytes int64) (*Target, error) {
	if self <= 0 || self >= total {
		return nil, fmt.Errorf("tcpb: target rank %d must be in 1..%d", self, total-1)
	}
	heap, err := core.NewHeap(fmt.Sprintf("tcpb-node%d", self), heapBytes)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Target{ln: ln, self: core.NodeID(self), total: total, heap: &lockedHeap{h: heap}}, nil
}

// Addr returns the listening address, for handing to Dial.
func (t *Target) Addr() string { return t.ln.Addr().String() }

// Self implements core.Backend.
func (t *Target) Self() core.NodeID { return t.self }

// NumNodes implements core.Backend.
func (t *Target) NumNodes() int { return t.total }

// Descriptor implements core.Backend.
func (t *Target) Descriptor(n core.NodeID) core.NodeDescriptor {
	if n == t.self {
		return core.NodeDescriptor{
			Name: fmt.Sprintf("tcp%d", t.self), Arch: "tcp-target", Device: t.Addr(),
		}
	}
	if n == 0 {
		return core.NodeDescriptor{Name: "host", Arch: "tcp-host", Device: "initiator"}
	}
	return core.NodeDescriptor{Name: fmt.Sprintf("node%d", n)}
}

// Call implements core.Backend; targets do not initiate offloads over TCP.
func (t *Target) Call(core.NodeID, []byte) (core.Handle, error) {
	return nil, fmt.Errorf("tcpb: targets cannot initiate offloads")
}

// Wait implements core.Backend.
func (t *Target) Wait(core.Handle) ([]byte, error) {
	return nil, fmt.Errorf("tcpb: targets cannot initiate offloads")
}

// Poll implements core.Backend.
func (t *Target) Poll(core.Handle) ([]byte, bool, error) {
	return nil, false, fmt.Errorf("tcpb: targets cannot initiate offloads")
}

// Put implements core.Backend.
func (t *Target) Put(core.NodeID, []byte, uint64) error {
	return fmt.Errorf("tcpb: targets cannot initiate transfers")
}

// Get implements core.Backend.
func (t *Target) Get(core.NodeID, uint64, []byte) error {
	return fmt.Errorf("tcpb: targets cannot initiate transfers")
}

// Serve implements core.Backend: accept the host connection and process
// frames until a terminate message has been dispatched.
func (t *Target) Serve(s core.Server) error {
	conn, err := t.ln.Accept()
	if err != nil {
		return err
	}
	t.mu.Lock()
	t.conn = conn
	t.mu.Unlock()
	defer func() {
		_ = conn.Close()
		_ = t.ln.Close()
	}()
	for !s.Done() {
		pollStart := t.nt.Now()
		typ, id, addr, payload, err := readFrame(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return fmt.Errorf("tcpb: host disconnected before terminate")
			}
			return err
		}
		switch typ {
		case frameCall:
			t.nt.Since(trace.PhasePoll, "tcpb-recv", int64(id), pollStart)
			resp := s.Dispatch(payload)
			endResult := t.nt.Begin(trace.PhaseResult, "tcpb-result", int64(id))
			err := writeFrame(conn, frameResp, id, 0, resp)
			endResult()
			if err != nil {
				return err
			}
		case framePut:
			if err := t.heap.Write(addr, payload); err != nil {
				if werr := writeFrame(conn, frameError, id, 0, []byte(err.Error())); werr != nil {
					return werr
				}
				continue
			}
			if err := writeFrame(conn, frameAck, id, 0, nil); err != nil {
				return err
			}
		case frameGet:
			if len(payload) != 4 {
				return fmt.Errorf("tcpb: malformed get frame")
			}
			n := binary.LittleEndian.Uint32(payload)
			buf := make([]byte, n)
			if err := t.heap.Read(addr, buf); err != nil {
				if werr := writeFrame(conn, frameError, id, 0, []byte(err.Error())); werr != nil {
					return werr
				}
				continue
			}
			if err := writeFrame(conn, frameData, id, 0, buf); err != nil {
				return err
			}
		default:
			return fmt.Errorf("tcpb: unexpected frame type %d from host", typ)
		}
	}
	return nil
}

// Memory implements core.Backend.
func (t *Target) Memory() core.LocalMemory { return t.heap }

// ChargeVector implements core.Backend.
func (t *Target) ChargeVector(flops, bytes int64, cores int) {}

// ChargeScalar implements core.Backend.
func (t *Target) ChargeScalar(ops int64) {}

// Close implements core.Backend.
func (t *Target) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.conn != nil {
		_ = t.conn.Close()
	}
	return t.ln.Close()
}

var _ core.Backend = (*Target)(nil)
