// Package tcpb is the portable TCP/IP communication backend of HAM-Offload
// (Fig. 1). It trades performance for interoperability, exactly as the paper
// describes (§I-A): it runs over real sockets between OS processes (or
// goroutines), enabling offloading between hosts where neither MPI nor a
// PCIe-attached accelerator is available — including the paper's
// x86-to-anything scenario. On the SX-Aurora itself it is not usable because
// the VE runs no network stack, which is why the two dedicated protocols
// exist.
package tcpb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"hamoffload/internal/core"
	"hamoffload/internal/faults"
	"hamoffload/internal/trace"
)

// Frame types of the wire protocol.
const (
	frameCall  = 1 // host → target: active message; expects frameResp
	frameResp  = 2 // target → host: response payload
	framePut   = 3 // host → target: addr + data; expects frameAck
	frameGet   = 4 // host → target: addr + length; expects frameData
	frameAck   = 5
	frameData  = 6
	frameError = 7 // target → host: failed put/get
)

// frame header: type u8, id u64, addr u64, length u32 (of payload).
const headerSize = 1 + 8 + 8 + 4

func writeFrame(w io.Writer, typ byte, id, addr uint64, payload []byte) error {
	var hdr [headerSize]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint64(hdr[1:], id)
	binary.LittleEndian.PutUint64(hdr[9:], addr)
	binary.LittleEndian.PutUint32(hdr[17:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (typ byte, id, addr uint64, payload []byte, err error) {
	var hdr [headerSize]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, nil, err
	}
	typ = hdr[0]
	id = binary.LittleEndian.Uint64(hdr[1:])
	addr = binary.LittleEndian.Uint64(hdr[9:])
	n := binary.LittleEndian.Uint32(hdr[17:])
	payload = make([]byte, n)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, 0, nil, err
	}
	return typ, id, addr, payload, nil
}

// Host is the initiator side: one TCP connection per target node.
type Host struct {
	conns []*hostConn
	descs []core.NodeDescriptor
	heap  *core.Heap
	nt    *trace.NodeTracer
	inj   *faults.Injector
}

// SetFaultInjector arms connection-level fault injection (faults.SiteConn
// send errors and faults.ConnReset schedules). This backend runs on the wall
// clock, so only rate- and op-scheduled rules apply; time-window rules never
// fire (the injector is consulted at simulated time zero).
func (h *Host) SetFaultInjector(inj *faults.Injector) { h.inj = inj }

// SetTracer attaches a wall-clock trace handle for the host's protocol
// spans (frame ids are the message correlators).
func (h *Host) SetTracer(tr *trace.Tracer, clock trace.Clock) {
	h.nt = tr.Node(0, "tcpb", clock)
}

type hostConn struct {
	c      net.Conn
	mu     sync.Mutex // serialises writes
	nextID uint64

	pendMu  sync.Mutex
	pending map[uint64]chan result
	readErr error
}

type result struct {
	typ     byte
	payload []byte
}

// handle is one in-flight round trip; it keeps the conn so a waiter can
// surface the reader loop's underlying error instead of a generic message.
type handle struct {
	hc *hostConn
	ch chan result
	id uint64
}

// errShutdown marks the clean-EOF case: the target closed its side after the
// terminate exchange with nothing outstanding — a graceful shutdown, not a
// node failure.
var errShutdown = errors.New("tcpb: connection shut down")

// renderDead renders a connection's terminal read error for a waiter or
// sender: a broken connection carries the underlying error wrapped in
// core.ErrNodeFailed; a clean shutdown stays a plain closed-connection error.
func renderDead(err error) error {
	switch {
	case err == nil:
		return fmt.Errorf("tcpb: connection closed while waiting")
	case errors.Is(err, errShutdown):
		return errShutdown
	default:
		return fmt.Errorf("tcpb: %w: %v", core.ErrNodeFailed, err)
	}
}

func (hc *hostConn) deadErr() error {
	hc.pendMu.Lock()
	defer hc.pendMu.Unlock()
	return renderDead(hc.readErr)
}

// Dial connects to the listed target addresses; they become nodes 1..n.
// heapBytes sizes the host's own local memory.
func Dial(addrs []string, heapBytes int64) (*Host, error) {
	if len(addrs) == 0 {
		return nil, fmt.Errorf("tcpb: no target addresses")
	}
	heap, err := core.NewHeap("tcpb-host", heapBytes)
	if err != nil {
		return nil, err
	}
	h := &Host{heap: heap}
	h.descs = append(h.descs, core.NodeDescriptor{Name: "host", Arch: "tcp-host", Device: "initiator"})
	for i, addr := range addrs {
		c, err := net.Dial("tcp", addr)
		if err != nil {
			h.closeAll()
			return nil, fmt.Errorf("tcpb: dialing node %d at %s: %w", i+1, addr, err)
		}
		hc := &hostConn{c: c, pending: make(map[uint64]chan result)}
		go hc.readLoop()
		h.conns = append(h.conns, hc)
		h.descs = append(h.descs, core.NodeDescriptor{
			Name: fmt.Sprintf("tcp%d", i+1), Arch: "tcp-target", Device: addr,
		})
	}
	return h, nil
}

func (hc *hostConn) readLoop() {
	for {
		typ, id, _, payload, err := readFrame(hc.c)
		if err != nil {
			hc.pendMu.Lock()
			if errors.Is(err, io.EOF) && len(hc.pending) == 0 {
				// Clean EOF with nothing in flight: the target shut down
				// after the terminate exchange.
				err = errShutdown
			}
			hc.readErr = err
			// Closing the channels releases every pending waiter; each then
			// reads the recorded error through deadErr, so nobody blocks
			// forever on a response that will never arrive.
			for _, ch := range hc.pending {
				close(ch)
			}
			hc.pending = make(map[uint64]chan result)
			hc.pendMu.Unlock()
			return
		}
		hc.pendMu.Lock()
		ch, ok := hc.pending[id]
		if ok {
			delete(hc.pending, id)
		}
		hc.pendMu.Unlock()
		if ok {
			ch <- result{typ: typ, payload: payload}
		}
	}
}

// send writes a frame and registers a response channel for its id.
func (hc *hostConn) send(typ byte, addr uint64, payload []byte) (chan result, uint64, error) {
	hc.mu.Lock()
	defer hc.mu.Unlock()
	hc.pendMu.Lock()
	if err := hc.readErr; err != nil {
		hc.pendMu.Unlock()
		return nil, 0, renderDead(err)
	}
	hc.nextID++
	id := hc.nextID
	ch := make(chan result, 1)
	hc.pending[id] = ch
	hc.pendMu.Unlock()
	if err := writeFrame(hc.c, typ, id, addr, payload); err != nil {
		hc.pendMu.Lock()
		delete(hc.pending, id)
		hc.pendMu.Unlock()
		// A failed write means the transport is broken: the node is
		// unreachable, whatever the reader loop has observed so far.
		return nil, 0, fmt.Errorf("tcpb: %w: %v", core.ErrNodeFailed, err)
	}
	return ch, id, nil
}

func (hc *hostConn) roundTrip(typ byte, addr uint64, payload []byte, wantTyp byte) ([]byte, error) {
	ch, _, err := hc.send(typ, addr, payload)
	if err != nil {
		return nil, err
	}
	res, ok := <-ch
	if !ok {
		return nil, hc.deadErr()
	}
	if res.typ == frameError {
		return nil, fmt.Errorf("tcpb: remote error: %s", res.payload)
	}
	if res.typ != wantTyp {
		return nil, fmt.Errorf("tcpb: unexpected frame type %d (want %d)", res.typ, wantTyp)
	}
	return res.payload, nil
}

// Self implements core.Backend.
func (h *Host) Self() core.NodeID { return 0 }

// NumNodes implements core.Backend.
func (h *Host) NumNodes() int { return len(h.conns) + 1 }

// Descriptor implements core.Backend.
func (h *Host) Descriptor(n core.NodeID) core.NodeDescriptor {
	if int(n) < 0 || int(n) >= len(h.descs) {
		return core.NodeDescriptor{Name: "invalid"}
	}
	return h.descs[n]
}

func (h *Host) conn(target core.NodeID) (*hostConn, error) {
	i := int(target) - 1
	if i < 0 || i >= len(h.conns) {
		return nil, fmt.Errorf("tcpb: no target node %d", target)
	}
	return h.conns[i], nil
}

// Call implements core.Backend.
func (h *Host) Call(target core.NodeID, msg []byte) (core.Handle, error) {
	hc, err := h.conn(target)
	if err != nil {
		return nil, err
	}
	if err := h.injectSend(hc, target); err != nil {
		return nil, err
	}
	callStart := h.nt.Now()
	ch, id, err := hc.send(frameCall, 0, msg)
	if err != nil {
		return nil, err
	}
	h.nt.Since(trace.PhaseCall, "tcpb-call", int64(id), callStart)
	return &handle{hc: hc, ch: ch, id: id}, nil
}

// injectSend consults the fault plan before a send: a SiteConn transfer
// error fails just this attempt (transient, so core's retry layer may
// resubmit), and a scheduled connection reset tears the socket down — the
// reader loop then fails every pending waiter.
func (h *Host) injectSend(hc *hostConn, target core.NodeID) error {
	if h.inj == nil {
		return nil
	}
	if h.inj.ConnReset(int(target)) {
		_ = hc.c.Close()
	}
	if err := h.inj.TransferError(0, faults.SiteConn, int(target)); err != nil {
		return err
	}
	return nil
}

// DropConn forcibly closes the transport to target, simulating a node
// failure: the reader loop fails every pending waiter with
// core.ErrNodeFailed and later offloads are rejected the same way. This
// backend cannot redial, so a dropped node stays dead.
func (h *Host) DropConn(target core.NodeID) error {
	hc, err := h.conn(target)
	if err != nil {
		return err
	}
	return hc.c.Close()
}

// MaxMessageLen implements core.MessageSizer: the frame header carries a
// u32 payload length; 1 GiB keeps well clear of it on every platform.
func (h *Host) MaxMessageLen() int { return 1 << 30 }

// Wait implements core.Backend.
func (h *Host) Wait(hh core.Handle) ([]byte, error) {
	hd, ok := hh.(*handle)
	if !ok {
		return nil, fmt.Errorf("tcpb: foreign handle %T", hh)
	}
	defer h.nt.Begin(trace.PhaseWait, "tcpb-wait", int64(hd.id))()
	res, open := <-hd.ch
	if !open {
		return nil, hd.hc.deadErr()
	}
	return res.payload, nil
}

// Poll implements core.Backend.
func (h *Host) Poll(hh core.Handle) ([]byte, bool, error) {
	hd, ok := hh.(*handle)
	if !ok {
		return nil, false, fmt.Errorf("tcpb: foreign handle %T", hh)
	}
	select {
	case res, open := <-hd.ch:
		if !open {
			return nil, false, hd.hc.deadErr()
		}
		return res.payload, true, nil
	default:
		return nil, false, nil
	}
}

// Put implements core.Backend.
func (h *Host) Put(target core.NodeID, data []byte, dstAddr uint64) error {
	hc, err := h.conn(target)
	if err != nil {
		return err
	}
	_, err = hc.roundTrip(framePut, dstAddr, data, frameAck)
	return err
}

// Get implements core.Backend.
func (h *Host) Get(target core.NodeID, srcAddr uint64, dst []byte) error {
	hc, err := h.conn(target)
	if err != nil {
		return err
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(dst)))
	payload, err := hc.roundTrip(frameGet, srcAddr, lenBuf[:], frameData)
	if err != nil {
		return err
	}
	if len(payload) != len(dst) {
		return fmt.Errorf("tcpb: get returned %d bytes, want %d", len(payload), len(dst))
	}
	copy(dst, payload)
	return nil
}

// Serve implements core.Backend; hosts do not serve in this backend.
func (h *Host) Serve(core.Server) error {
	return fmt.Errorf("tcpb: the host node does not serve active messages")
}

// Memory implements core.Backend.
func (h *Host) Memory() core.LocalMemory { return h.heap }

// ChargeVector implements core.Backend; wall-clock nodes compute for real.
func (h *Host) ChargeVector(flops, bytes int64, cores int) {}

// ChargeScalar implements core.Backend.
func (h *Host) ChargeScalar(ops int64) {}

// Close implements core.Backend.
func (h *Host) Close() error {
	h.closeAll()
	return nil
}

func (h *Host) closeAll() {
	for _, hc := range h.conns {
		_ = hc.c.Close()
	}
}

var _ core.Backend = (*Host)(nil)
