// Package mpib implements the remote-offloading backend the paper's outlook
// (§VI) anticipates: "As soon as NEC's MPI will support heterogeneous jobs,
// that are combining processes running on the host and on the Vector
// Engines, HAM-Offload applications will also benefit from remote offloading
// capabilities, again without changes in the application code."
//
// The backend spans several simulated SX-Aurora nodes connected by the
// InfiniBand fabric of Fig. 3: node 0 is the Vector Host of the first
// machine; the Vector Engines of all machines follow machine-major. Local
// VEs are driven directly through the DMA protocol (backend/dmab); offloads
// to a remote machine's VEs travel over IB to a proxy rank on that machine's
// VH, which forwards them through its own local DMA-protocol connection —
// the hybrid-MPI execution model, with HAM's handler keys staying globally
// valid across every binary involved.
package mpib

import (
	"fmt"

	"hamoffload/internal/backend/adapter"
	"hamoffload/internal/backend/dmab"
	"hamoffload/internal/core"
	"hamoffload/internal/ib"
	"hamoffload/internal/simtime"
	"hamoffload/internal/trace"
	"hamoffload/internal/vecore"
	"hamoffload/internal/veos"
)

var hostModel = vecore.DefaultHostModel()

// reqKind discriminates proxy requests.
type reqKind int

const (
	reqCall reqKind = iota
	reqPut
	reqGet
	reqShutdown
)

// request is one forwarded operation, delivered to a proxy's queue after the
// IB transfer of its payload completed.
type request struct {
	kind   reqKind
	target core.NodeID // node id local to the proxy's machine
	msg    []byte      // call message or put data
	addr   uint64      // put/get address
	getLen int64
	mid    int64 // trace correlator

	done *simtime.Event
	resp []byte
	err  error
}

// wire sizes: a small header accompanies every forwarded operation.
const headerBytes = 64

// Options configures the cluster backend. The InfiniBand model itself is a
// property of the fabric passed to Connect.
type Options struct {
	// Local holds the protocol options for each machine's DMA-protocol
	// connection.
	Local dmab.Options
}

// Host is the initiator backend on machine 0's VH.
type Host struct {
	p      *simtime.Proc
	fabric *ib.Fabric
	local  *dmab.Host // machine 0's VEs

	// node translation: global node -> (machine, local node)
	perMachine []int // VEs per machine
	descs      []core.NodeDescriptor

	proxies []*proxy // index 1.. for machines 1..; index 0 nil
	mem     core.LocalMemory

	nt   *trace.NodeTracer
	seqs int64 // correlator for forwarded (remote) requests
}

// proxy is the forwarding rank on one remote machine's VH.
type proxy struct {
	machine int
	queue   *simtime.Queue[*request]
	stopped bool
}

// Connect builds the cluster application: machine 0 hosts the initiator,
// every machine's cards become targets. cards[i] lists machine i's VE cards;
// the shared engine must drive all machines and the IB fabric.
func Connect(p *simtime.Proc, eng *simtime.Engine, fabric *ib.Fabric,
	cards [][]*veos.Card, opts Options) (*Host, error) {
	if len(cards) < 1 || len(cards[0]) == 0 {
		return nil, fmt.Errorf("mpib: machine 0 needs at least one VE")
	}
	if fabric.Hosts() < len(cards) {
		return nil, fmt.Errorf("mpib: fabric has %d hosts for %d machines", fabric.Hosts(), len(cards))
	}
	h := &Host{p: p, fabric: fabric}
	h.nt = cards[0][0].Timing.Tracer.Node(0, "mpib", p)
	h.mem = &adapter.HostHeap{H: cards[0][0].Host}
	h.descs = append(h.descs, core.NodeDescriptor{
		Name: "vh0", Arch: "x86_64", Device: "Vector Host, machine 0",
	})

	total := 1
	for _, mc := range cards {
		total += len(mc)
	}

	// Machine 0: direct local connection with global node ids 1..k.
	localOpts := opts.Local
	localOpts.NodeBase = 0
	localOpts.TotalNodes = total
	local, err := dmab.Connect(p, cards[0], localOpts)
	if err != nil {
		return nil, fmt.Errorf("mpib: local connect: %w", err)
	}
	h.local = local
	h.perMachine = append(h.perMachine, len(cards[0]))
	for i, card := range cards[0] {
		h.descs = append(h.descs, core.NodeDescriptor{
			Name:   fmt.Sprintf("m0-ve%d", card.ID),
			Arch:   localArch(opts),
			Device: fmt.Sprintf("NEC VE Type 10B (machine 0, VE %d)", i),
		})
	}

	// Remote machines: spawn a proxy rank per machine, which connects its
	// own VEs and then serves forwarded requests.
	h.proxies = make([]*proxy, len(cards))
	for m := 1; m < len(cards); m++ {
		if len(cards[m]) == 0 {
			return nil, fmt.Errorf("mpib: machine %d has no VEs", m)
		}
		px := &proxy{
			machine: m,
			queue:   simtime.NewQueue[*request](eng, fmt.Sprintf("mpib-proxy%d", m)),
		}
		h.proxies[m] = px
		ready := simtime.NewEvent(eng)
		var connErr error
		mcards := cards[m]
		remoteOpts := opts.Local
		remoteOpts.NodeBase = len(h.descs) - 1 // nodes assigned so far, minus the host
		remoteOpts.TotalNodes = total
		eng.Spawn(fmt.Sprintf("mpib-proxy%d", m), func(pp *simtime.Proc) {
			inner, err := dmab.Connect(pp, mcards, remoteOpts)
			if err != nil {
				connErr = err
				ready.Fire()
				return
			}
			ready.Fire()
			px.serve(pp, h.fabric, inner)
		})
		ready.Wait(p)
		if connErr != nil {
			return nil, fmt.Errorf("mpib: machine %d connect: %w", m, connErr)
		}
		h.perMachine = append(h.perMachine, len(mcards))
		for i, card := range mcards {
			h.descs = append(h.descs, core.NodeDescriptor{
				Name:   fmt.Sprintf("m%d-ve%d", m, card.ID),
				Arch:   localArch(opts),
				Device: fmt.Sprintf("NEC VE Type 10B (machine %d, VE %d)", m, i),
			})
		}
	}
	return h, nil
}

func localArch(opts Options) string {
	if opts.Local.TargetArch != "" {
		return opts.Local.TargetArch
	}
	return "aurora-ve"
}

// route returns the machine hosting a global node id. Node ids are global
// throughout the cluster (each machine's dmab connection is configured with
// its NodeBase), so no per-machine renumbering is needed.
func (h *Host) route(n core.NodeID) (int, core.NodeID, error) {
	if n <= 0 {
		return 0, 0, fmt.Errorf("mpib: node %d is not an offload target", n)
	}
	rest := int(n) - 1
	for m, count := range h.perMachine {
		if rest < count {
			return m, n, nil
		}
		rest -= count
	}
	return 0, 0, fmt.Errorf("mpib: no node %d in this cluster", n)
}

// Self implements core.Backend.
func (h *Host) Self() core.NodeID { return 0 }

// NumNodes implements core.Backend.
func (h *Host) NumNodes() int { return len(h.descs) }

// Descriptor implements core.Backend.
func (h *Host) Descriptor(n core.NodeID) core.NodeDescriptor {
	if int(n) < 0 || int(n) >= len(h.descs) {
		return core.NodeDescriptor{Name: "invalid"}
	}
	return h.descs[n]
}

// Call implements core.Backend: local targets go straight to the DMA
// protocol; remote targets are forwarded over InfiniBand to the machine's
// proxy rank.
func (h *Host) Call(target core.NodeID, msg []byte) (core.Handle, error) {
	m, local, err := h.route(target)
	if err != nil {
		return nil, err
	}
	if m == 0 {
		return h.local.Call(local, msg)
	}
	h.seqs++
	// The proxy rank reads the request after the simulated IB transfer, long
	// after Call returned; msg may alias the initiator's scratch buffers, so
	// the forwarded request carries its own copy.
	rq := &request{
		kind:   reqCall,
		target: local,
		msg:    append([]byte(nil), msg...),
		mid:    h.seqs,
		done:   simtime.NewEvent(h.p.Engine()),
	}
	callStart := h.nt.Now()
	if err := h.forward(m, rq, int64(len(msg))+headerBytes); err != nil {
		return nil, err
	}
	h.nt.Since(trace.PhaseCall, "mpib-call", rq.mid, callStart)
	return rq, nil
}

// forward ships a request to machine m's proxy: the IB transfer completes
// before the request becomes visible there.
func (h *Host) forward(m int, rq *request, bytes int64) error {
	if err := h.fabric.Send(h.p, 0, m, bytes); err != nil {
		return err
	}
	h.proxies[m].queue.Push(rq)
	return nil
}

// Wait implements core.Backend.
func (h *Host) Wait(hh core.Handle) ([]byte, error) {
	switch v := hh.(type) {
	case *request:
		defer h.nt.Begin(trace.PhaseWait, "mpib-wait", v.mid)()
		v.done.Wait(h.p)
		return v.resp, v.err
	default:
		return h.local.Wait(hh)
	}
}

// Poll implements core.Backend.
func (h *Host) Poll(hh core.Handle) ([]byte, bool, error) {
	switch v := hh.(type) {
	case *request:
		// A remote status check costs a host-side progress call.
		h.p.Sleep(200 * simtime.Nanosecond)
		if !v.done.Fired() {
			return nil, false, nil
		}
		return v.resp, true, v.err
	default:
		return h.local.Poll(hh)
	}
}

// Put implements core.Backend.
func (h *Host) Put(target core.NodeID, data []byte, dstAddr uint64) error {
	m, local, err := h.route(target)
	if err != nil {
		return err
	}
	if m == 0 {
		return h.local.Put(local, data, dstAddr)
	}
	rq := &request{
		kind:   reqPut,
		target: local,
		msg:    data,
		addr:   dstAddr,
		done:   simtime.NewEvent(h.p.Engine()),
	}
	if err := h.forward(m, rq, int64(len(data))+headerBytes); err != nil {
		return err
	}
	rq.done.Wait(h.p)
	return rq.err
}

// Get implements core.Backend.
func (h *Host) Get(target core.NodeID, srcAddr uint64, dst []byte) error {
	m, local, err := h.route(target)
	if err != nil {
		return err
	}
	if m == 0 {
		return h.local.Get(local, srcAddr, dst)
	}
	rq := &request{
		kind:   reqGet,
		target: local,
		addr:   srcAddr,
		getLen: int64(len(dst)),
		done:   simtime.NewEvent(h.p.Engine()),
	}
	if err := h.forward(m, rq, headerBytes); err != nil {
		return err
	}
	rq.done.Wait(h.p)
	if rq.err != nil {
		return rq.err
	}
	copy(dst, rq.resp)
	return nil
}

// Serve implements core.Backend; the initiator does not serve.
func (h *Host) Serve(core.Server) error {
	return fmt.Errorf("mpib: the host node does not serve active messages")
}

// Memory implements core.Backend.
func (h *Host) Memory() core.LocalMemory { return h.mem }

// ChargeVector implements core.Backend.
func (h *Host) ChargeVector(flops, bytes int64, cores int) {
	h.p.Sleep(hostModel.VectorTime(flops, bytes, cores))
}

// ChargeScalar implements core.Backend.
func (h *Host) ChargeScalar(ops int64) {
	h.p.Sleep(simtime.Duration(float64(ops) / 2.6e9 * float64(simtime.Second)))
}

// Backoff implements core's optional backoff surface: retry delays advance
// the initiator's simulated clock.
func (h *Host) Backoff(d simtime.Duration) { h.p.Sleep(d) }

// MaxMessageLen implements core.MessageSizer. Local and proxied targets
// both terminate in a DMA-protocol connection, so its slot limit governs
// the whole cluster.
func (h *Host) MaxMessageLen() int { return h.local.MaxMessageLen() }

// SimNow exposes the initiator's simulated clock for deadline-driven batch
// flushes (core's simClock surface).
func (h *Host) SimNow() simtime.Time { return h.p.Now() }

// RecoverNode implements core.Recoverer for machine 0's VEs by delegating to
// the local DMA-protocol connection. Remote recovery would need a proxy-side
// control message; until then it reports the limitation explicitly.
func (h *Host) RecoverNode(n core.NodeID) error {
	m, local, err := h.route(n)
	if err != nil {
		return err
	}
	if m != 0 {
		return fmt.Errorf("mpib: node %d is on remote machine %d; remote recovery is not supported", n, m)
	}
	return h.local.RecoverNode(local)
}

// Close implements core.Backend: shut the proxies down, then the local
// connection. Terminate messages for the targets themselves have already
// flowed through the normal Call path during Runtime.Finalize.
func (h *Host) Close() error {
	var firstErr error
	for m := 1; m < len(h.proxies); m++ {
		rq := &request{kind: reqShutdown, done: simtime.NewEvent(h.p.Engine())}
		if err := h.forward(m, rq, headerBytes); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		rq.done.Wait(h.p)
		if rq.err != nil && firstErr == nil {
			firstErr = rq.err
		}
	}
	if err := h.local.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

var _ core.Backend = (*Host)(nil)

// serve is the proxy rank's event loop: it forwards calls asynchronously
// into its local DMA-protocol connection so kernels on different VEs of the
// same remote machine overlap, and replies over IB as results complete.
func (px *proxy) serve(p *simtime.Proc, fabric *ib.Fabric, inner *dmab.Host) {
	type pending struct {
		rq *request
		h  core.Handle
	}
	var outstanding []pending
	const baseIdle = 300 * simtime.Nanosecond
	idle := baseIdle

	reply := func(rq *request, resp []byte, err error) {
		rq.resp = resp
		rq.err = err
		// Ship the reply back over IB before completing the handle.
		if serr := fabric.Send(p, px.machine, 0, int64(len(resp))+headerBytes); serr != nil && rq.err == nil {
			rq.err = serr
		}
		rq.done.Fire()
	}

	for {
		progressed := false
		if rq, ok := px.queue.TryPop(); ok {
			progressed = true
			switch rq.kind {
			case reqCall:
				hh, err := inner.Call(rq.target, rq.msg)
				if err != nil {
					reply(rq, nil, err)
				} else {
					outstanding = append(outstanding, pending{rq: rq, h: hh})
				}
			case reqPut:
				reply(rq, nil, inner.Put(rq.target, rq.msg, rq.addr))
			case reqGet:
				buf := make([]byte, rq.getLen)
				err := inner.Get(rq.target, rq.addr, buf)
				if err != nil {
					buf = nil
				}
				reply(rq, buf, err)
			case reqShutdown:
				err := inner.Close()
				px.stopped = true
				reply(rq, nil, err)
				return
			}
		}
		// Progress outstanding calls in FIFO order (deterministic).
		for i := 0; i < len(outstanding); {
			resp, done, err := inner.Poll(outstanding[i].h)
			if err != nil {
				reply(outstanding[i].rq, nil, err)
			} else if done {
				reply(outstanding[i].rq, resp, nil)
			} else {
				i++
				continue
			}
			outstanding = append(outstanding[:i], outstanding[i+1:]...)
			progressed = true
		}
		if progressed {
			idle = baseIdle
			continue
		}
		p.Sleep(idle)
		// Back off while fully idle, but keep polling briskly while calls
		// are in flight so completions are not reported late.
		maxIdle := 100 * simtime.Microsecond
		if len(outstanding) > 0 {
			maxIdle = 2 * simtime.Microsecond
		}
		if idle*2 <= maxIdle {
			idle *= 2
		} else {
			idle = maxIdle
		}
	}
}
