package mpib_test

import (
	"strings"
	"testing"

	"hamoffload/internal/backend/mpib"
	"hamoffload/internal/core"
	"hamoffload/internal/dma"
	"hamoffload/internal/hostmem"
	"hamoffload/internal/ib"
	"hamoffload/internal/pcie"
	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
	"hamoffload/internal/units"
	"hamoffload/internal/vemem"
	"hamoffload/internal/veos"
)

var mpEcho = core.NewFunc1[int64]("mpib.echo",
	func(c *core.Ctx, v int64) (int64, error) { return v * 3, nil })

// buildMachines assembles n one-VE machines on a shared engine.
func buildMachines(t *testing.T, eng *simtime.Engine, n int) [][]*veos.Card {
	t.Helper()
	tm := topology.DefaultTiming()
	sys := topology.A300_8()
	cards := make([][]*veos.Card, n)
	for i := 0; i < n; i++ {
		host, err := hostmem.New("vh", 2*units.GiB, tm.HostPageSize)
		if err != nil {
			t.Fatal(err)
		}
		veMem, err := vemem.New("ve", 4*units.GiB)
		if err != nil {
			t.Fatal(err)
		}
		fab, err := pcie.NewFabric(eng, sys, tm)
		if err != nil {
			t.Fatal(err)
		}
		path, err := fab.PathFrom(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		cards[i] = []*veos.Card{veos.NewCard(eng, 0, tm, host, veMem, path, dma.TranslateBulk4DMA)}
	}
	return cards
}

func TestConnectValidation(t *testing.T) {
	eng := simtime.NewEngine()
	fab, err := ib.NewFabric(eng, 2, ib.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cards := buildMachines(t, eng, 3) // more machines than fabric hosts
	eng.Spawn("main", func(p *simtime.Proc) {
		if _, err := mpib.Connect(p, eng, fab, nil, mpib.Options{}); err == nil {
			t.Error("empty cluster accepted")
		}
		if _, err := mpib.Connect(p, eng, fab, cards, mpib.Options{}); err == nil {
			t.Error("cluster larger than fabric accepted")
		}
		if _, err := mpib.Connect(p, eng, fab,
			[][]*veos.Card{cards[0], nil}, mpib.Options{}); err == nil {
			t.Error("machine without VEs accepted")
		}
		eng.Stop()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	eng.Shutdown()
}

func TestRouting(t *testing.T) {
	eng := simtime.NewEngine()
	fab, err := ib.NewFabric(eng, 2, ib.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cards := buildMachines(t, eng, 2)
	eng.Spawn("main", func(p *simtime.Proc) {
		defer eng.Stop()
		h, err := mpib.Connect(p, eng, fab, cards, mpib.Options{})
		if err != nil {
			t.Error(err)
			return
		}
		rt := core.NewRuntime(h, "x86_64-cluster")
		defer func() {
			if err := rt.Finalize(); err != nil {
				t.Error(err)
			}
		}()
		// Node 1 local, node 2 remote — both execute.
		for node := 1; node <= 2; node++ {
			v, err := core.Sync(rt, core.NodeID(node), mpEcho.Bind(int64(node)))
			if err != nil {
				t.Errorf("node %d: %v", node, err)
				return
			}
			if v != int64(node*3) {
				t.Errorf("node %d = %d", node, v)
			}
		}
		// Out-of-range nodes rejected.
		if _, err := core.Sync(rt, 9, mpEcho.Bind(1)); err == nil ||
			!strings.Contains(err.Error(), "no node") {
			t.Errorf("bad node error = %v", err)
		}
		// IB must have carried traffic in both directions.
		if fab.Moved(0, 1) == 0 || fab.Moved(1, 0) == 0 {
			t.Errorf("IB traffic = %d/%d", fab.Moved(0, 1), fab.Moved(1, 0))
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	eng.Shutdown()
}

var mpBoom = core.NewFunc0[core.Unit]("mpib.boom",
	func(c *core.Ctx) (core.Unit, error) {
		return core.Unit{}, errBoom{}
	})

type errBoom struct{}

func (errBoom) Error() string { return "remote kernel failure" }

func TestRemoteErrorPropagation(t *testing.T) {
	eng := simtime.NewEngine()
	fab, err := ib.NewFabric(eng, 2, ib.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	cards := buildMachines(t, eng, 2)
	eng.Spawn("main", func(p *simtime.Proc) {
		defer eng.Stop()
		h, err := mpib.Connect(p, eng, fab, cards, mpib.Options{})
		if err != nil {
			t.Error(err)
			return
		}
		rt := core.NewRuntime(h, "x86_64-cluster")
		defer func() { _ = rt.Finalize() }()
		_, err = core.Sync(rt, 2, mpBoom.Bind()) // remote node
		if err == nil || !strings.Contains(err.Error(), "remote kernel failure") {
			t.Errorf("remote error = %v", err)
		}
		// Channel survives the failure.
		if v, err := core.Sync(rt, 2, mpEcho.Bind(4)); err != nil || v != 12 {
			t.Errorf("after failure: %d, %v", v, err)
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	eng.Shutdown()
}
