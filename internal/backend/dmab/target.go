package dmab

import (
	"fmt"

	"hamoffload/internal/backend/adapter"
	"hamoffload/internal/backend/slots"
	"hamoffload/internal/core"
	"hamoffload/internal/dma"
	"hamoffload/internal/ham"
	"hamoffload/internal/pcie"
	"hamoffload/internal/simtime"
	"hamoffload/internal/trace"
	"hamoffload/internal/veos"
)

// LibraryName is the VE library with the DMA backend's kernels.
const LibraryName = "libham-offload-dmab.so"

// targetState is built by ham_dmab_init: the §IV-A memory setup of Fig. 7.
type targetState struct {
	lay          layout
	arch         string
	selfNode     int
	numNodes     int
	resultViaDMA bool

	shmVEHVA   uint64 // DMAATB mapping of the VH shared-memory segment
	stageAddr  uint64 // local HBM staging buffer (VEMVA)
	stageVEHVA uint64 // DMAATB mapping of the staging buffer
}

var states = map[*veos.Card]*targetState{}

// SetTargetArch records the architecture label of the card's target binary.
func SetTargetArch(card *veos.Card, arch string) {
	if st, ok := states[card]; ok {
		st.arch = arch
	}
}

func init() {
	veos.RegisterLibrary(LibraryName, veos.Library{
		// ham_dmab_init performs the VE side of Fig. 7: attach the VH shm
		// segment by key, register it and a local staging buffer in the
		// DMAATB, making both addressable for user DMA and LHM/SHM.
		"ham_dmab_init": func(ctx *veos.Ctx, args []uint64) (uint64, error) {
			if len(args) != 7 {
				return 0, fmt.Errorf("dmab: ham_dmab_init wants 7 args, got %d", len(args))
			}
			card := ctx.Context.Process().Card()
			st := &targetState{
				lay: layout{
					nbuf:         int(args[1]),
					bufSize:      int(args[2]),
					resultInline: int(args[3]),
				},
				selfNode:     int(args[4]),
				numNodes:     int(args[5]),
				resultViaDMA: args[6] != 0,
			}
			seg, err := card.Host.ShmGet(int(args[0]))
			if err != nil {
				return 0, err
			}
			shmVEHVA, err := card.Mem.ATB().Register(card.Host.Mem, seg.Addr, seg.Size)
			if err != nil {
				return 0, err
			}
			ctx.P.Sleep(card.Timing.DMAATBRegister)
			stage, err := card.Mem.Alloc(int64(st.lay.bufSize))
			if err != nil {
				return 0, err
			}
			stageVEHVA, err := card.Mem.ATB().Register(card.Mem.HBM, stage, int64(st.lay.bufSize))
			if err != nil {
				return 0, err
			}
			ctx.P.Sleep(card.Timing.DMAATBRegister)
			st.shmVEHVA = uint64(shmVEHVA)
			st.stageAddr = uint64(stage)
			st.stageVEHVA = uint64(stageVEHVA)
			states[card] = st
			return 0, nil
		},
		"ham_main": func(ctx *veos.Ctx, args []uint64) (uint64, error) {
			card := ctx.Context.Process().Card()
			st, ok := states[card]
			if !ok {
				return 1, fmt.Errorf("dmab: ham_main before ham_dmab_init on VE %d", card.ID)
			}
			nt := card.Timing.Tracer.Node(st.selfNode, "dmab", ctx.P)
			t := &Target{kctx: ctx, st: st, heap: &adapter.VEHeap{VE: card.Mem}, nt: nt}
			rt := core.NewRuntime(t, st.arch)
			rt.SetTracer(nt)
			rt.SetTelemetry(card.Timing.Telemetry, ctx.P)
			if err := rt.Serve(); err != nil {
				return 1, err
			}
			return 0, nil
		},
	})
}

// Target is the VE-side backend of the DMA protocol: the active side of
// Fig. 8. It polls receive flags in VH memory via LHM, fetches messages with
// user DMA, and pushes results back with SHM stores (or a DMA write).
type Target struct {
	kctx *veos.Ctx
	st   *targetState
	heap *adapter.VEHeap
	nt   *trace.NodeTracer
}

// Self implements core.Backend.
func (t *Target) Self() core.NodeID { return core.NodeID(t.st.selfNode) }

// NumNodes implements core.Backend.
func (t *Target) NumNodes() int { return t.st.numNodes }

// Descriptor implements core.Backend.
func (t *Target) Descriptor(n core.NodeID) core.NodeDescriptor {
	if n == t.Self() {
		return core.NodeDescriptor{
			Name:   fmt.Sprintf("ve%d", t.kctx.Context.Process().Card().ID),
			Arch:   t.st.arch,
			Device: "NEC VE Type 10B",
		}
	}
	if n == 0 {
		return core.NodeDescriptor{Name: "vh", Arch: "x86_64", Device: "Vector Host"}
	}
	return core.NodeDescriptor{Name: fmt.Sprintf("node%d", n)}
}

// Call implements core.Backend; targets do not initiate offloads.
func (t *Target) Call(core.NodeID, []byte) (core.Handle, error) {
	return nil, fmt.Errorf("dmab: targets cannot initiate offloads")
}

// Wait implements core.Backend.
func (t *Target) Wait(core.Handle) ([]byte, error) {
	return nil, fmt.Errorf("dmab: targets cannot initiate offloads")
}

// Poll implements core.Backend.
func (t *Target) Poll(core.Handle) ([]byte, bool, error) {
	return nil, false, fmt.Errorf("dmab: targets cannot initiate offloads")
}

// Put implements core.Backend.
func (t *Target) Put(core.NodeID, []byte, uint64) error {
	return fmt.Errorf("dmab: targets cannot initiate transfers")
}

// Get implements core.Backend.
func (t *Target) Get(core.NodeID, uint64, []byte) error {
	return fmt.Errorf("dmab: targets cannot initiate transfers")
}

// Serve implements core.Backend: the VE-side message loop of Fig. 8. The VE
// actively fetches its messages after seeing a flag via LHM — the cost the
// paper notes the VE pays before executing — while the host finds results in
// its local memory.
func (t *Target) Serve(s core.Server) error {
	card := t.kctx.Context.Process().Card()
	tm := card.Timing
	lay := t.st.lay
	instr := t.kctx.Instr()
	udma := t.kctx.UserDMA()
	seq := make([]uint32, lay.nbuf)
	next := 0

	const backoffAfter = 500 * simtime.Microsecond
	interval := tm.HAMVEPollInterval
	var idle simtime.Duration

	for !s.Done() {
		if card.Crashed() {
			// The VE process died under us (injected crash): stop serving
			// instead of spinning on a dead machine.
			return fmt.Errorf("dmab: serve aborted: %w", veos.ErrCrashed)
		}
		pollStart := t.nt.Now()
		flag, err := instr.LoadWord(t.kctx.P, memA(t.st.shmVEHVA+lay.recvFlagOff(next)))
		if err != nil {
			if core.IsTransient(err) {
				// An injected LHM glitch reads as a miss: back off one poll
				// interval and retry the load.
				t.nt.Instant(trace.PhaseFault, "dmab-poll-fault", int64(next))
				t.kctx.P.Sleep(interval)
				continue
			}
			return err
		}
		n, ok := slots.Decode(flag, seq[next])
		if !ok {
			t.kctx.P.Sleep(interval)
			idle += interval + tm.LHMPerWord
			if idle >= backoffAfter && interval < tm.HAMVEPollInterval*512 {
				interval *= 2
			}
			continue
		}
		interval = tm.HAMVEPollInterval
		idle = 0
		mid := int64(seq[next])*int64(lay.nbuf) + int64(next)
		t.nt.Since(trace.PhasePoll, "dmab-poll-hit", mid, pollStart)

		// Fetch the message into the local staging buffer via user DMA
		// (pre-built descriptor hot path, not the ve_dma_post_wait API).
		// The fetch span also covers the fixed VE-side framework overhead
		// (key translation, functor decode — HAMVEOverhead).
		endFetch := t.nt.Begin(trace.PhaseFetch, "dmab-fetch", mid)
		if err := udma.Post(t.kctx.P, dma.Raw, pcie.Down,
			memA(t.st.stageVEHVA), memA(t.st.shmVEHVA+lay.recvBufOff(next)), int64(n)); err != nil {
			endFetch()
			if core.IsTransient(err) {
				// The flag is still set and the slot sequence untouched:
				// the next iteration re-polls the same slot and refetches,
				// so a transient DMA error delays the message, not drops it.
				t.nt.Instant(trace.PhaseFault, "dmab-fetch-fault", mid)
				t.kctx.P.Sleep(interval)
				continue
			}
			return err
		}
		msg := make([]byte, n)
		if err := card.Mem.HBM.ReadAt(msg, memA(t.st.stageAddr)); err != nil {
			endFetch()
			return err
		}
		t.kctx.P.Sleep(tm.HAMVEOverhead)
		endFetch()

		resp := s.Dispatch(msg)
		endResult := t.nt.Begin(trace.PhaseResult, "dmab-result", mid)
		rerr := t.respond(lay, next, seq[next], resp)
		// The handler already ran exactly once; only the result push is
		// retried, within a bounded window, so a transient burst cannot
		// wedge the serve loop forever.
		for tries := 0; rerr != nil && core.IsTransient(rerr) && tries < respondRetries; tries++ {
			t.nt.Instant(trace.PhaseRetry, "dmab-respond-retry", mid)
			t.kctx.P.Sleep(tm.HAMVEPollInterval)
			rerr = t.respond(lay, next, seq[next], resp)
		}
		endResult()
		if rerr != nil {
			return rerr
		}
		seq[next]++
		next = (next + 1) % lay.nbuf
	}
	return nil
}

// respondRetries bounds the transient-error retry window of one result push.
const respondRetries = 64

// respond pushes the result into the VH send slot: inline payload via SHM
// word stores (the §V-B finding: SHM beats DMA up to 256 B), overflow via a
// user-DMA write, flag last.
func (t *Target) respond(lay layout, slot int, seq uint32, resp []byte) error {
	card := t.kctx.Context.Process().Card()
	instr := t.kctx.Instr()
	udma := t.kctx.UserDMA()
	p := t.kctx.P
	if len(resp) > lay.resultInline+lay.bufSize {
		resp = encodeOverflowError(len(resp))
	}
	inline := len(resp)
	if inline > lay.resultInline {
		inline = lay.resultInline
	}
	useDMA := t.st.resultViaDMA
	if inline > 0 {
		if useDMA {
			// Ablation path: stage the inline part locally, DMA it out.
			if err := card.Mem.HBM.WriteAt(resp[:inline], memA(t.st.stageAddr)); err != nil {
				return err
			}
			if err := udma.Post(p, dma.Raw, pcie.Up,
				memA(t.st.shmVEHVA+lay.sendInlineOff(slot)), memA(t.st.stageVEHVA), int64(inline)); err != nil {
				return err
			}
		} else {
			if err := instr.StoreBytes(p, memA(t.st.shmVEHVA+lay.sendInlineOff(slot)), resp[:inline]); err != nil {
				return err
			}
		}
	}
	if len(resp) > inline {
		over := resp[inline:]
		if err := card.Mem.HBM.WriteAt(over, memA(t.st.stageAddr)); err != nil {
			return err
		}
		if err := udma.Post(p, dma.Raw, pcie.Up,
			memA(t.st.shmVEHVA+lay.overflowOff(slot)), memA(t.st.stageVEHVA), int64(len(over))); err != nil {
			return err
		}
	}
	return instr.StoreWord(p, memA(t.st.shmVEHVA+lay.sendFlagOff(slot)), slots.Encode(seq, len(resp)))
}

// encodeOverflowError builds a ham failure response for oversized results.
func encodeOverflowError(n int) []byte {
	return ham.EncodeFailure(fmt.Sprintf("dmab: result of %d bytes exceeds the send buffer", n))
}

// Memory implements core.Backend.
func (t *Target) Memory() core.LocalMemory { return t.heap }

// ChargeVector implements core.Backend with the VE roofline model.
func (t *Target) ChargeVector(flops, bytes int64, cores int) {
	t.kctx.ChargeVector(flops, bytes, cores)
}

// ChargeScalar implements core.Backend.
func (t *Target) ChargeScalar(ops int64) {
	t.kctx.ChargeScalar(ops)
}

// Close implements core.Backend.
func (t *Target) Close() error { return nil }

var _ core.Backend = (*Target)(nil)
