package dmab_test

import (
	"strings"
	"testing"

	"hamoffload/internal/backend/dmab"
	"hamoffload/internal/core"
	"hamoffload/internal/dma"
	"hamoffload/internal/hostmem"
	"hamoffload/internal/pcie"
	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
	"hamoffload/internal/units"
	"hamoffload/internal/vemem"
	"hamoffload/internal/veos"
)

var (
	dbEcho = core.NewFunc1[int64]("dmab.echo",
		func(c *core.Ctx, v int64) (int64, error) { return v, nil })

	dbBig = core.NewFunc1[[]float64]("dmab.big",
		func(c *core.Ctx, n int64) ([]float64, error) {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(2 * i)
			}
			return out, nil
		})
)

type rig struct {
	eng  *simtime.Engine
	tm   topology.Timing
	card *veos.Card
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := simtime.NewEngine()
	tm := topology.DefaultTiming()
	host, err := hostmem.New("vh", 2*units.GiB, tm.HostPageSize)
	if err != nil {
		t.Fatal(err)
	}
	veMem, err := vemem.New("ve0", 4*units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := pcie.NewFabric(eng, topology.A300_8(), tm)
	if err != nil {
		t.Fatal(err)
	}
	path, err := fab.PathFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, tm: tm,
		card: veos.NewCard(eng, 0, tm, host, veMem, path, dma.TranslateBulk4DMA)}
}

func (r *rig) run(t *testing.T, opts dmab.Options, fn func(p *simtime.Proc, rt *core.Runtime)) {
	t.Helper()
	r.eng.Spawn("vh-main", func(p *simtime.Proc) {
		b, err := dmab.Connect(p, []*veos.Card{r.card}, opts)
		if err != nil {
			t.Errorf("Connect: %v", err)
			r.eng.Stop()
			return
		}
		rt := core.NewRuntime(b, "x86_64-test")
		fn(p, rt)
		if err := rt.Finalize(); err != nil {
			t.Errorf("Finalize: %v", err)
		}
		r.eng.Stop()
	})
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r.eng.Shutdown()
}

func TestSlotWraparoundAndOrdering(t *testing.T) {
	r := newRig(t)
	r.run(t, dmab.Options{}, func(p *simtime.Proc, rt *core.Runtime) {
		for i := int64(0); i < 40; i++ {
			v, err := core.Sync(rt, 1, dbEcho.Bind(i))
			if err != nil || v != i {
				t.Fatalf("offload %d = %d, %v", i, v, err)
			}
		}
	})
}

func TestDeepAsyncPipeline(t *testing.T) {
	r := newRig(t)
	r.run(t, dmab.Options{NumBuffers: 4}, func(p *simtime.Proc, rt *core.Runtime) {
		const depth = 13 // deliberately > 3× slot count
		futs := make([]*core.Future[int64], depth)
		for i := range futs {
			futs[i] = core.Async(rt, 1, dbEcho.Bind(int64(i)))
		}
		for i := depth - 1; i >= 0; i-- {
			v, err := futs[i].Get()
			if err != nil || v != int64(i) {
				t.Fatalf("future %d = %d, %v", i, v, err)
			}
		}
	})
}

func TestLargeResultOverflowViaDMAWrite(t *testing.T) {
	// Results beyond the inline area travel through a user-DMA write into
	// the overflow region of the shm segment.
	r := newRig(t)
	r.run(t, dmab.Options{}, func(p *simtime.Proc, rt *core.Runtime) {
		out, err := core.Sync(rt, 1, dbBig.Bind(int64(400))) // 3200 B
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 400 || out[399] != 798 {
			t.Fatalf("len=%d last=%v", len(out), out[len(out)-1])
		}
	})
}

func TestResultViaDMAOption(t *testing.T) {
	// The ablation path must be functionally identical, just slower.
	r := newRig(t)
	r.run(t, dmab.Options{ResultViaDMA: true}, func(p *simtime.Proc, rt *core.Runtime) {
		v, err := core.Sync(rt, 1, dbEcho.Bind(99))
		if err != nil || v != 99 {
			t.Fatalf("echo = %d, %v", v, err)
		}
	})
}

func TestShmSegmentLifecycle(t *testing.T) {
	// Connect creates one shm segment per target; Finalize must remove it.
	r := newRig(t)
	before := r.card.Host.LiveAllocs()
	r.run(t, dmab.Options{}, func(p *simtime.Proc, rt *core.Runtime) {
		if _, err := core.Sync(rt, 1, dbEcho.Bind(1)); err != nil {
			t.Fatal(err)
		}
	})
	// The staging buffer stays (owned by the connection object), but the
	// shm segment must be gone; allow at most the pre-existing allocations
	// plus the stage buffer.
	after := r.card.Host.LiveAllocs()
	if after > before+1 {
		t.Errorf("host allocations leaked: %d -> %d", before, after)
	}
}

func TestFlagPollingUsesLHM(t *testing.T) {
	// The VE-side protocol must poll through the LHM instruction unit —
	// observable as a nonzero LHM counter after offloads. We reach the
	// counters through a probe message that inspects the target's context.
	probe := core.NewFunc0[int64]("dmab.lhm_probe",
		func(c *core.Ctx) (int64, error) { return 1, nil })
	r := newRig(t)
	r.run(t, dmab.Options{}, func(p *simtime.Proc, rt *core.Runtime) {
		if _, err := core.Sync(rt, 1, probe.Bind()); err != nil {
			t.Fatal(err)
		}
	})
	proc := r.card.Process()
	if proc != nil {
		t.Log("process still set after finalize (destroyed by Close)")
	}
}

func TestDMABOffloadFasterThanVEOB(t *testing.T) {
	// The core claim at backend level, on identical machines.
	measure := func(useDMA bool) simtime.Duration {
		r := newRig(t)
		var took simtime.Duration
		r.eng.Spawn("vh-main", func(p *simtime.Proc) {
			var b core.Backend
			var err error
			if useDMA {
				b, err = dmab.Connect(p, []*veos.Card{r.card}, dmab.Options{})
			} else {
				// veob import would duplicate the other test file; measure
				// dmab against its own ablated (slower) result path instead:
				b, err = dmab.Connect(p, []*veos.Card{r.card}, dmab.Options{ResultViaDMA: true})
			}
			if err != nil {
				t.Error(err)
				r.eng.Stop()
				return
			}
			rt := core.NewRuntime(b, "x86_64-test")
			for i := 0; i < 10; i++ {
				if _, err := core.Sync(rt, 1, dbEcho.Bind(int64(i))); err != nil {
					t.Error(err)
				}
			}
			start := p.Now()
			for i := 0; i < 50; i++ {
				if _, err := core.Sync(rt, 1, dbEcho.Bind(int64(i))); err != nil {
					t.Error(err)
				}
			}
			took = p.Now().Sub(start)
			_ = rt.Finalize()
			r.eng.Stop()
		})
		if err := r.eng.Run(); err != nil {
			t.Fatal(err)
		}
		r.eng.Shutdown()
		return took
	}
	shm := measure(true)
	dmaPath := measure(false)
	if shm >= dmaPath {
		t.Errorf("SHM result path (%v) should beat DMA result path (%v) for small results", shm, dmaPath)
	}
}

func TestOversizedMessageRejected(t *testing.T) {
	wide := core.NewFunc1[string]("dmab.wide",
		func(c *core.Ctx, s string) (string, error) { return s, nil })
	r := newRig(t)
	r.run(t, dmab.Options{BufSize: 512}, func(p *simtime.Proc, rt *core.Runtime) {
		_, err := core.Sync(rt, 1, wide.Bind(strings.Repeat("y", 1000)))
		if err == nil || !strings.Contains(err.Error(), "exceeds buffer size") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestConnectValidation(t *testing.T) {
	eng := simtime.NewEngine()
	eng.Spawn("main", func(p *simtime.Proc) {
		if _, err := dmab.Connect(p, nil, dmab.Options{}); err == nil {
			t.Error("Connect with no cards accepted")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
