// Package dmab implements the paper's DMA-based communication protocol
// (§IV, Fig. 8): a one-sided protocol with all communication buffers in
// Vector Host memory, inside a SystemV shared-memory segment registered in
// the VE's DMAATB (Fig. 7). The VE initiates every transfer: it polls the
// receive flags with LHM instructions, fetches messages with user DMA, and
// pushes result messages and flags back with SHM stores. All host-side
// protocol steps become local memory accesses, which is what cuts the
// empty-offload cost from ~430 µs (VEO protocol) to ~6 µs.
//
// Application start, initialisation and bulk data exchange still go through
// the VEO API, exactly as in the paper.
package dmab

import (
	"errors"
	"fmt"

	"hamoffload/internal/backend/adapter"
	"hamoffload/internal/backend/slots"
	"hamoffload/internal/core"
	"hamoffload/internal/hostmem"
	"hamoffload/internal/mem"
	"hamoffload/internal/simtime"
	"hamoffload/internal/trace"
	"hamoffload/internal/vecore"
	"hamoffload/internal/veo"
	"hamoffload/internal/veos"
)

var hostModel = vecore.DefaultHostModel()

func memA(a uint64) mem.Addr { return mem.Addr(a) }

// Options configures the protocol.
type Options struct {
	// NumBuffers is the number of message slots per direction (default 8).
	NumBuffers int
	// BufSize is the capacity of one message buffer (default 4 KiB).
	BufSize int
	// ResultInline is the result payload the VE pushes via SHM word stores;
	// larger results overflow through a user-DMA write (default 248).
	ResultInline int
	// ResultViaDMA returns even small results through a user-DMA write
	// instead of SHM stores — slower for small messages per §V-B, kept as
	// an ablation knob.
	ResultViaDMA bool
	// TargetArch labels the VE binary (default "aurora-ve").
	TargetArch string
	// NodeBase offsets the target node ids: the cards become nodes
	// NodeBase+1 .. NodeBase+len(cards). Zero for a standalone machine; the
	// cluster backend assigns global ranks through it.
	NodeBase int
	// TotalNodes overrides the application's node count (default
	// len(cards)+1); cluster applications span more nodes than one machine.
	TotalNodes int
	// OffloadTimeout bounds how long one offload may stay in flight before
	// Wait gives up with core.ErrOffloadTimeout, measured on the simulated
	// clock from the start of the wait. Zero waits forever.
	OffloadTimeout simtime.Duration
}

func (o *Options) fill() {
	if o.NumBuffers <= 0 {
		o.NumBuffers = 8
	}
	if o.BufSize <= 0 {
		o.BufSize = 4096
	}
	if o.ResultInline <= 0 {
		o.ResultInline = 248
	}
	// SHM stores and flag adjacency work at word granularity.
	o.ResultInline = (o.ResultInline + 7) &^ 7
	if o.TargetArch == "" {
		o.TargetArch = "aurora-ve"
	}
}

// layout describes the communication area inside the VH shared-memory
// segment. Offsets are relative to the segment base.
type layout struct {
	nbuf         int
	bufSize      int
	resultInline int
}

func (l layout) recvFlagOff(slot int) uint64 {
	return uint64(slot * (slots.FlagBits + l.bufSize))
}
func (l layout) recvBufOff(slot int) uint64 {
	return l.recvFlagOff(slot) + slots.FlagBits
}
func (l layout) sendBase() uint64 {
	return uint64(l.nbuf * (slots.FlagBits + l.bufSize))
}
func (l layout) sendFlagOff(slot int) uint64 {
	return l.sendBase() + uint64(slot*(slots.FlagBits+l.resultInline))
}
func (l layout) sendInlineOff(slot int) uint64 {
	return l.sendFlagOff(slot) + slots.FlagBits
}
func (l layout) overflowBase() uint64 {
	return l.sendBase() + uint64(l.nbuf*(slots.FlagBits+l.resultInline))
}
func (l layout) overflowOff(slot int) uint64 {
	return l.overflowBase() + uint64(slot*l.bufSize)
}
func (l layout) totalSize() int64 {
	return int64(l.overflowBase()) + int64(l.nbuf*l.bufSize)
}

// handle tracks one in-flight offload. It pins the conn it was issued on so
// stale handles keep failing against a dead conn after RecoverNode builds a
// fresh one.
type handle struct {
	target core.NodeID
	c      *conn
	slot   int
	seq    uint32
	resp   []byte
	done   bool
}

// conn is the host-side state for one VE target.
type conn struct {
	proc  *veo.Proc
	card  *veos.Card
	seg   *hostmem.ShmSegment
	lay   layout
	seq   []uint32
	inUse []*handle
	next  int
	dead  bool // VE process crashed; reject work until RecoverNode
}

// Host is the initiator-side backend on the Vector Host. All methods must
// run on the simulated process passed to Connect.
type Host struct {
	p     *simtime.Proc
	opts  Options
	host  *hostmem.Host
	conns []*conn
	descs []core.NodeDescriptor
	mem   core.LocalMemory
	nt    *trace.NodeTracer // nil when the cards' Timing has no Tracer
}

// mid builds the protocol-level message correlator for a slot/sequence
// pair; backend spans carry it so host and VE sides of one message line up.
func (c *conn) mid(slot int, seq uint32) int64 {
	return int64(seq)*int64(c.lay.nbuf) + int64(slot)
}

// Connect performs the full §IV-A setup for each card: VE process creation
// and library load via VEO, SysV shared-memory creation on the VH, DMAATB
// registration on the VE (through the ham_dmab_init kernel), and the
// asynchronous start of ham_main.
func Connect(p *simtime.Proc, cards []*veos.Card, opts Options) (*Host, error) {
	opts.fill()
	if len(cards) == 0 {
		return nil, fmt.Errorf("dmab: no target cards")
	}
	h := &Host{p: p, opts: opts, host: cards[0].Host}
	h.mem = &adapter.HostHeap{H: h.host}
	h.nt = cards[0].Timing.Tracer.Node(0, "dmab", p)
	total := opts.TotalNodes
	if total == 0 {
		total = len(cards) + 1
	}
	h.descs = append(h.descs, core.NodeDescriptor{Name: "vh", Arch: "x86_64", Device: "Intel Xeon Gold 6126 (VH)"})
	for i, card := range cards {
		c, err := h.connect(card, opts.NodeBase+i+1, total)
		if err != nil {
			return nil, err
		}
		h.conns = append(h.conns, c)
		h.descs = append(h.descs, core.NodeDescriptor{
			Name:   fmt.Sprintf("ve%d", card.ID),
			Arch:   opts.TargetArch,
			Device: "NEC VE Type 10B",
		})
	}
	return h, nil
}

func (h *Host) connect(card *veos.Card, self, total int) (*conn, error) {
	proc, err := veo.ProcCreate(h.p, card)
	if err != nil {
		return nil, err
	}
	// A failed connect must not leak the VE process or the shm segment.
	ok := false
	defer func() {
		if !ok {
			_ = proc.Destroy(h.p)
		}
	}()
	lib, err := proc.LoadLibrary(h.p, LibraryName)
	if err != nil {
		return nil, err
	}
	lay := layout{nbuf: h.opts.NumBuffers, bufSize: h.opts.BufSize, resultInline: h.opts.ResultInline}
	seg, err := card.Host.ShmCreate(lay.totalSize())
	if err != nil {
		return nil, fmt.Errorf("dmab: creating shm segment: %w", err)
	}
	defer func() {
		if !ok {
			_ = card.Host.ShmRemove(seg.Key)
		}
	}()

	ctx := proc.OpenContext(h.p)
	commInit, err := lib.GetSym(h.p, "ham_dmab_init")
	if err != nil {
		return nil, err
	}
	viaDMA := uint64(0)
	if h.opts.ResultViaDMA {
		viaDMA = 1
	}
	if _, err := ctx.CallAsync(h.p, commInit,
		uint64(seg.Key), uint64(lay.nbuf), uint64(lay.bufSize), uint64(lay.resultInline),
		uint64(self), uint64(total), viaDMA,
	).CallWaitResult(h.p); err != nil {
		return nil, fmt.Errorf("dmab: ham_dmab_init: %w", err)
	}
	SetTargetArch(card, h.opts.TargetArch)
	hamMain, err := lib.GetSym(h.p, "ham_main")
	if err != nil {
		return nil, err
	}
	ctx.CallAsync(h.p, hamMain)

	ok = true
	return &conn{
		proc:  proc,
		card:  card,
		seg:   seg,
		lay:   lay,
		seq:   make([]uint32, lay.nbuf),
		inUse: make([]*handle, lay.nbuf),
	}, nil
}

// Self implements core.Backend.
func (h *Host) Self() core.NodeID { return 0 }

// NumNodes implements core.Backend.
func (h *Host) NumNodes() int { return len(h.conns) + 1 }

// Descriptor implements core.Backend.
func (h *Host) Descriptor(n core.NodeID) core.NodeDescriptor {
	if n == 0 {
		return h.descs[0]
	}
	i := int(n) - h.opts.NodeBase
	if i < 1 || i >= len(h.descs) {
		return core.NodeDescriptor{Name: "invalid"}
	}
	return h.descs[i]
}

func (h *Host) conn(target core.NodeID) (*conn, error) {
	i := int(target) - h.opts.NodeBase - 1
	if i < 0 || i >= len(h.conns) {
		return nil, fmt.Errorf("dmab: no target node %d", target)
	}
	return h.conns[i], nil
}

// Call implements core.Backend: both the message write and the flag set are
// local VH memory stores — the host side of Fig. 8.
func (h *Host) Call(target core.NodeID, msg []byte) (core.Handle, error) {
	c, err := h.conn(target)
	if err != nil {
		return nil, err
	}
	if c.dead || c.card.Crashed() {
		c.dead = true
		return nil, fmt.Errorf("dmab: node %d: %w", target, core.ErrNodeFailed)
	}
	if len(msg) > c.lay.bufSize || len(msg) > slots.MaxLen {
		return nil, fmt.Errorf("dmab: message of %d bytes exceeds buffer size %d", len(msg), c.lay.bufSize)
	}
	callStart := h.nt.Now()
	h.p.Sleep(c.card.Timing.HAMHostOverhead)
	slot := c.next
	if prev := c.inUse[slot]; prev != nil {
		if _, err := h.waitHandle(prev); err != nil {
			return nil, fmt.Errorf("dmab: draining slot %d: %w", slot, err)
		}
	}
	seq := c.seq[slot]

	base := uint64(c.seg.Addr)
	if err := h.host.Mem.WriteAt(msg, memA(base+c.lay.recvBufOff(slot))); err != nil {
		return nil, err
	}
	h.p.Sleep(simtime.BytesOver(int64(len(msg)), c.card.Timing.HostMemCopyRate))
	endFlag := h.nt.Begin(trace.PhaseFlagWrite, "dmab-flag-write", c.mid(slot, seq))
	werr := h.host.Mem.WriteUint64(memA(base+c.lay.recvFlagOff(slot)), slots.Encode(seq, len(msg)))
	endFlag()
	if werr != nil {
		return nil, werr
	}
	// Commit the slot only after the flag is set, so an aborted attempt
	// cannot desynchronise the per-slot sequence — or the ring order the VE
	// serves slots in — with the VE side; a retried attempt must land in
	// the same slot.
	c.seq[slot]++
	c.next = (c.next + 1) % c.lay.nbuf
	hd := &handle{target: target, c: c, slot: slot, seq: seq}
	c.inUse[slot] = hd
	h.nt.Since(trace.PhaseCall, "dmab-call", c.mid(slot, seq), callStart)
	return hd, nil
}

// pollSlot checks the local result flag once and completes the handle when
// the VE has pushed the result.
func (h *Host) pollSlot(c *conn, hd *handle) (bool, error) {
	base := uint64(c.seg.Addr)
	flag, err := h.host.Mem.ReadUint64(memA(base + c.lay.sendFlagOff(hd.slot)))
	if err != nil {
		return false, err
	}
	n, ok := slots.Decode(flag, hd.seq)
	if !ok {
		return false, nil
	}
	resp := make([]byte, n)
	inline := n
	if inline > c.lay.resultInline {
		inline = c.lay.resultInline
	}
	if err := h.host.Mem.ReadAt(resp[:inline], memA(base+c.lay.sendInlineOff(hd.slot))); err != nil {
		return false, err
	}
	if n > inline {
		if err := h.host.Mem.ReadAt(resp[inline:], memA(base+c.lay.overflowOff(hd.slot))); err != nil {
			return false, err
		}
	}
	hd.resp = resp
	hd.done = true
	if c.inUse[hd.slot] == hd {
		c.inUse[hd.slot] = nil
	}
	return true, nil
}

func (h *Host) waitHandle(hd *handle) ([]byte, error) {
	c := hd.c
	defer h.nt.Begin(trace.PhaseWait, "dmab-wait", c.mid(hd.slot, hd.seq))()
	start := h.p.Now()
	for !hd.done {
		// The host polls local memory, which never errors — a dead VE shows
		// up as silence. Detect it through the card's crash state so
		// in-flight futures fail instead of waiting for a result that will
		// never be pushed.
		if c.dead || c.card.Crashed() {
			c.dead = true
			return nil, fmt.Errorf("dmab: node %d: %w", hd.target, core.ErrNodeFailed)
		}
		ok, err := h.pollSlot(c, hd)
		if err != nil {
			return nil, err
		}
		if !ok {
			h.p.Sleep(c.card.Timing.HAMHostPollInterval)
		}
		if d := h.opts.OffloadTimeout; d > 0 && !hd.done && h.p.Now().Sub(start) >= d {
			// The slot stays leased to the lost offload (bounded by
			// NumBuffers); RecoverNode rebuilds the communication area.
			return nil, fmt.Errorf("dmab: node %d slot %d: %w", hd.target, hd.slot, core.ErrOffloadTimeout)
		}
	}
	h.p.Sleep(c.card.Timing.HAMHostOverhead)
	return hd.resp, nil
}

// Wait implements core.Backend.
func (h *Host) Wait(hh core.Handle) ([]byte, error) {
	hd, ok := hh.(*handle)
	if !ok {
		return nil, fmt.Errorf("dmab: foreign handle %T", hh)
	}
	return h.waitHandle(hd)
}

// Poll implements core.Backend.
func (h *Host) Poll(hh core.Handle) ([]byte, bool, error) {
	hd, ok := hh.(*handle)
	if !ok {
		return nil, false, fmt.Errorf("dmab: foreign handle %T", hh)
	}
	if hd.done {
		return hd.resp, true, nil
	}
	c := hd.c
	if c.dead || c.card.Crashed() {
		c.dead = true
		return nil, false, fmt.Errorf("dmab: node %d: %w", hd.target, core.ErrNodeFailed)
	}
	// Each poll costs one local flag check; charging it keeps user-level
	// Test() busy-wait loops advancing simulated time.
	h.p.Sleep(c.card.Timing.HAMHostPollInterval)
	done, err := h.pollSlot(c, hd)
	if err != nil || !done {
		return nil, false, err
	}
	return hd.resp, true, nil
}

// Put implements core.Backend through veo_write_mem — bulk data exchange
// stays on the VEO API in this protocol, as in the paper.
func (h *Host) Put(target core.NodeID, data []byte, dstAddr uint64) error {
	c, err := h.conn(target)
	if err != nil {
		return err
	}
	if c.dead {
		return fmt.Errorf("dmab: node %d: %w", target, core.ErrNodeFailed)
	}
	stage, err := c.card.Host.Alloc(int64(len(data)))
	if err != nil {
		return err
	}
	defer func() { _ = c.card.Host.Free(stage) }()
	if err := c.card.Host.Mem.WriteAt(data, stage); err != nil {
		return err
	}
	return h.stepErr(c, target, c.proc.WriteMem(h.p, dstAddr, uint64(stage), int64(len(data))))
}

// stepErr classifies a failed VEO step: a crashed VE process marks the conn
// dead and surfaces core.ErrNodeFailed; everything else (including injected
// transient DMA errors) passes through.
func (h *Host) stepErr(c *conn, target core.NodeID, err error) error {
	if errors.Is(err, veos.ErrCrashed) {
		c.dead = true
		return fmt.Errorf("dmab: node %d: %w", target, core.ErrNodeFailed)
	}
	return err
}

// Get implements core.Backend through veo_read_mem.
func (h *Host) Get(target core.NodeID, srcAddr uint64, dst []byte) error {
	c, err := h.conn(target)
	if err != nil {
		return err
	}
	if c.dead {
		return fmt.Errorf("dmab: node %d: %w", target, core.ErrNodeFailed)
	}
	stage, err := c.card.Host.Alloc(int64(len(dst)))
	if err != nil {
		return err
	}
	defer func() { _ = c.card.Host.Free(stage) }()
	if err := c.proc.ReadMem(h.p, uint64(stage), srcAddr, int64(len(dst))); err != nil {
		return h.stepErr(c, target, err)
	}
	return c.card.Host.Mem.ReadAt(dst, stage)
}

// Serve implements core.Backend; the host does not serve messages.
func (h *Host) Serve(core.Server) error {
	return fmt.Errorf("dmab: the host node does not serve active messages")
}

// Memory implements core.Backend.
func (h *Host) Memory() core.LocalMemory { return h.mem }

// ChargeVector implements core.Backend with the host roofline model.
func (h *Host) ChargeVector(flops, bytes int64, cores int) {
	h.p.Sleep(hostModel.VectorTime(flops, bytes, cores))
}

// ChargeScalar implements core.Backend.
func (h *Host) ChargeScalar(ops int64) {
	h.p.Sleep(simtime.Duration(float64(ops) / 2.6e9 * float64(simtime.Second)))
}

// Backoff implements core's optional backoff surface: retry delays advance
// the host process's simulated clock.
func (h *Host) Backoff(d simtime.Duration) { h.p.Sleep(d) }

// MaxMessageLen implements core.MessageSizer: a wire message must fit one
// message buffer and its length must be publishable in a slot flag word.
func (h *Host) MaxMessageLen() int {
	if h.opts.BufSize < slots.MaxLen {
		return h.opts.BufSize
	}
	return slots.MaxLen
}

// SimNow exposes the initiator's simulated clock for deadline-driven batch
// flushes (core's simClock surface).
func (h *Host) SimNow() simtime.Time { return h.p.Now() }

// RecoverNode implements core.Recoverer: it reaps the dead VE process,
// removes the old shared-memory segment, and re-runs the §IV-A setup —
// fresh process, shm segment, DMAATB registration, ham_main. Outstanding
// handles stay pinned to the dead conn and keep failing with
// core.ErrNodeFailed.
func (h *Host) RecoverNode(n core.NodeID) error {
	c, err := h.conn(n)
	if err != nil {
		return err
	}
	c.dead = true
	if c.card.Process() != nil {
		_ = c.card.DestroyProcess(h.p)
	}
	_ = h.host.ShmRemove(c.seg.Key)
	total := h.opts.TotalNodes
	if total == 0 {
		total = len(h.conns) + 1
	}
	nc, err := h.connect(c.card, int(n), total)
	if err != nil {
		return err
	}
	h.conns[int(n)-h.opts.NodeBase-1] = nc
	return nil
}

// Close implements core.Backend: tear down VE processes and shm segments.
func (h *Host) Close() error {
	var firstErr error
	for _, c := range h.conns {
		if err := c.proc.Destroy(h.p); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := h.host.ShmRemove(c.seg.Key); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

var _ core.Backend = (*Host)(nil)
