// Package slots provides the notification-flag encoding shared by the two
// SX-Aurora protocols. Each message buffer has an adjacent 64-bit flag; a
// flag value packs a per-slot sequence number with the message length, so
// neither side ever needs to reset a flag it cannot write cheaply — the
// reader simply waits for the sequence number it expects (the paper's
// "invalid value to an index" transition, §III-D, hardened for slot reuse).
package slots

// FlagBits is the width of one notification flag in bytes.
const FlagBits = 8

// Encode packs a sequence number and payload length into a flag word.
// Length is offset by one so that a zero word (fresh memory) is never a
// valid flag.
func Encode(seq uint32, length int) uint64 {
	return uint64(seq)<<24 | uint64(length+1)
}

// Decode splits a flag word; ok reports whether it carries the expected
// sequence number and a valid length.
func Decode(flag uint64, wantSeq uint32) (length int, ok bool) {
	if flag == 0 {
		return 0, false
	}
	if uint32(flag>>24) != wantSeq {
		return 0, false
	}
	l := int(flag&0xffffff) - 1
	if l < 0 {
		return 0, false
	}
	return l, true
}

// MaxLen is the largest payload length a flag can carry.
const MaxLen = 1<<24 - 2
