package slots

import (
	"testing"
	"testing/quick"
)

// FuzzFlagRoundTrip drives the flag encoding with arbitrary sequence
// numbers and lengths: every in-range pair must round-trip, never produce
// the invalid zero word, and never decode under a different sequence
// number. This is the invariant both protocols' ring paths lean on when a
// slot is reused (§III-D "invalid value to an index", hardened).
func FuzzFlagRoundTrip(f *testing.F) {
	f.Add(uint32(0), uint32(0))
	f.Add(uint32(0), uint32(MaxLen))
	f.Add(uint32(1), uint32(1))
	f.Add(^uint32(0), uint32(MaxLen))  // seq about to wrap, max payload
	f.Add(^uint32(0)-1, uint32(0))     // near-wrap, empty payload
	f.Add(uint32(1)<<31, uint32(4096)) // high seq bit set
	f.Fuzz(func(t *testing.T, seq, rawLen uint32) {
		length := int(rawLen % (MaxLen + 1))
		flag := Encode(seq, length)
		if flag == 0 {
			t.Fatalf("Encode(%d, %d) produced the invalid zero word", seq, length)
		}
		got, ok := Decode(flag, seq)
		if !ok || got != length {
			t.Fatalf("Decode(Encode(%d, %d)) = %d, %v", seq, length, got, ok)
		}
		// A reader waiting for any other sequence number must keep waiting:
		// the slot's previous or next generation never masquerades as ours.
		for _, other := range []uint32{seq + 1, seq - 1, ^seq} {
			if other == seq {
				continue
			}
			if l, ok := Decode(flag, other); ok {
				t.Fatalf("flag for seq %d decoded under seq %d (len %d)", seq, other, l)
			}
		}
	})
}

// TestSeqWraparound pins the slot-reuse story at the uint32 boundary: the
// generations ...fffe, ...ffff, 0, 1 of one slot all carry distinct flags
// and each decodes only under its own sequence number.
func TestSeqWraparound(t *testing.T) {
	seqs := []uint32{^uint32(0) - 1, ^uint32(0), 0, 1}
	flags := make([]uint64, len(seqs))
	for i, s := range seqs {
		flags[i] = Encode(s, 64)
	}
	for i, f := range flags {
		for j, s := range seqs {
			l, ok := Decode(f, s)
			if i == j && (!ok || l != 64) {
				t.Errorf("seq %d: own flag failed to decode (%d, %v)", s, l, ok)
			}
			if i != j && ok {
				t.Errorf("flag of seq %d decoded under seq %d", seqs[i], s)
			}
		}
	}
}

// TestLengthEdges pins the boundaries of the 24-bit length field.
func TestLengthEdges(t *testing.T) {
	for _, seq := range []uint32{0, 7, ^uint32(0)} {
		for _, length := range []int{0, 1, MaxLen - 1, MaxLen} {
			flag := Encode(seq, length)
			if flag == 0 {
				t.Fatalf("Encode(%d, %d) = 0", seq, length)
			}
			got, ok := Decode(flag, seq)
			if !ok || got != length {
				t.Errorf("Decode(Encode(%d, %d)) = %d, %v", seq, length, got, ok)
			}
		}
	}
	// MaxLen is the last length whose +1 offset still fits in 24 bits
	// without spilling into the sequence field.
	if spill := Encode(0, MaxLen+1); uint32(spill>>24) == 0 && spill&0xffffff != 0 {
		t.Error("MaxLen+1 unexpectedly fits — MaxLen constant is stale")
	}
}

// TestZeroWordNeverValid: fresh (zeroed) flag memory must not decode under
// any sequence number — that is the whole point of the +1 length offset.
func TestZeroWordNeverValid(t *testing.T) {
	prop := func(seq uint32) bool {
		_, ok := Decode(0, seq)
		return !ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestDistinctFlags: within one slot generation window, distinct
// (seq, length) pairs encode to distinct words, so a torn or stale read
// can never be mistaken for a different valid message.
func TestDistinctFlags(t *testing.T) {
	prop := func(seqA, seqB, lenA, lenB uint32) bool {
		la, lb := int(lenA%(MaxLen+1)), int(lenB%(MaxLen+1))
		if seqA == seqB && la == lb {
			return true
		}
		return Encode(seqA, la) != Encode(seqB, lb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
