package slots

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecode(t *testing.T) {
	f := Encode(3, 100)
	if l, ok := Decode(f, 3); !ok || l != 100 {
		t.Fatalf("Decode = %d,%v", l, ok)
	}
	if _, ok := Decode(f, 4); ok {
		t.Error("wrong sequence accepted")
	}
	if _, ok := Decode(0, 0); ok {
		t.Error("zero flag accepted")
	}
}

func TestZeroLengthMessage(t *testing.T) {
	f := Encode(0, 0)
	if f == 0 {
		t.Fatal("zero-length at seq 0 encodes to the invalid flag")
	}
	if l, ok := Decode(f, 0); !ok || l != 0 {
		t.Fatalf("Decode = %d,%v", l, ok)
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seq uint32, length uint32) bool {
		l := int(length % MaxLen)
		flag := Encode(seq, l)
		got, ok := Decode(flag, seq)
		return ok && got == l && flag != 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
