// Package locb is the in-process loopback communication backend: host and
// target are goroutines in one OS process connected by channels, with a
// plain heap as target memory. It exists to exercise the HAM-Offload
// runtime, protocol bookkeeping and user code without the machine
// simulation, and serves as the reference Backend implementation.
package locb

import (
	"fmt"
	"sync"

	"hamoffload/internal/core"
	"hamoffload/internal/trace"
)

type request struct {
	msg  []byte
	resp chan []byte
}

// lockedHeap makes a core.Heap safe for the concurrent host/target access
// the loopback wiring allows.
type lockedHeap struct {
	mu sync.Mutex
	h  *core.Heap
}

func (l *lockedHeap) Alloc(n int64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Alloc(n)
}

func (l *lockedHeap) Free(addr uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Free(addr)
}

func (l *lockedHeap) Read(addr uint64, p []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Read(addr, p)
}

func (l *lockedHeap) Write(addr uint64, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Write(addr, data)
}

// Node is one side of a loopback application.
type Node struct {
	self  core.NodeID
	descs []core.NodeDescriptor
	heaps []*lockedHeap
	chans []chan request // chans[n] is the inbox of node n
	nt    *trace.NodeTracer
	calls int64 // message correlator for this node's outgoing calls
}

// SetTracer attaches a wall-clock trace handle for this node's protocol
// spans. Call it before the first offload / Serve.
func (b *Node) SetTracer(tr *trace.Tracer, clock trace.Clock) {
	b.nt = tr.Node(int(b.self), "locb", clock)
}

// NewPair creates a two-node loopback application (host node 0, target
// node 1) with heapSize bytes of memory per node.
func NewPair(heapSize int64) (*Node, *Node, error) {
	return newN(2, heapSize)
}

// NewN creates an n-node loopback application. Node 0 is the host.
func NewN(n int, heapSize int64) ([]*Node, error) {
	if n < 2 {
		return nil, fmt.Errorf("locb: need at least 2 nodes, got %d", n)
	}
	host, target, err := newN(n, heapSize)
	if err != nil {
		return nil, err
	}
	nodes := []*Node{host, target}
	for i := 2; i < n; i++ {
		nodes = append(nodes, &Node{
			self:  core.NodeID(i),
			descs: host.descs,
			heaps: host.heaps,
			chans: host.chans,
		})
	}
	return nodes, nil
}

func newN(n int, heapSize int64) (*Node, *Node, error) {
	descs := make([]core.NodeDescriptor, n)
	heaps := make([]*lockedHeap, n)
	chans := make([]chan request, n)
	for i := 0; i < n; i++ {
		role, arch := "target", "loopback-target"
		if i == 0 {
			role, arch = "host", "loopback-host"
		}
		descs[i] = core.NodeDescriptor{
			Name:   fmt.Sprintf("loc%d", i),
			Arch:   arch,
			Device: role,
		}
		h, err := core.NewHeap(fmt.Sprintf("locb%d", i), heapSize)
		if err != nil {
			return nil, nil, err
		}
		heaps[i] = &lockedHeap{h: h}
		chans[i] = make(chan request, 64)
	}
	mk := func(self int) *Node {
		return &Node{self: core.NodeID(self), descs: descs, heaps: heaps, chans: chans}
	}
	return mk(0), mk(1), nil
}

// Self implements core.Backend.
func (b *Node) Self() core.NodeID { return b.self }

// NumNodes implements core.Backend.
func (b *Node) NumNodes() int { return len(b.chans) }

// Descriptor implements core.Backend.
func (b *Node) Descriptor(n core.NodeID) core.NodeDescriptor {
	if int(n) < 0 || int(n) >= len(b.descs) {
		return core.NodeDescriptor{Name: "invalid"}
	}
	return b.descs[n]
}

// Call implements core.Backend.
func (b *Node) Call(target core.NodeID, msg []byte) (core.Handle, error) {
	if int(target) < 0 || int(target) >= len(b.chans) {
		return nil, fmt.Errorf("locb: no node %d", target)
	}
	b.calls++
	defer b.nt.Begin(trace.PhaseCall, "locb-call", b.calls)()
	req := request{msg: msg, resp: make(chan []byte, 1)}
	b.chans[target] <- req
	return req.resp, nil
}

// Wait implements core.Backend.
func (b *Node) Wait(h core.Handle) ([]byte, error) {
	ch, ok := h.(chan []byte)
	if !ok {
		return nil, fmt.Errorf("locb: foreign handle %T", h)
	}
	defer b.nt.Begin(trace.PhaseWait, "locb-wait", b.calls)()
	return <-ch, nil
}

// Poll implements core.Backend.
func (b *Node) Poll(h core.Handle) ([]byte, bool, error) {
	ch, ok := h.(chan []byte)
	if !ok {
		return nil, false, fmt.Errorf("locb: foreign handle %T", h)
	}
	select {
	case resp := <-ch:
		return resp, true, nil
	default:
		return nil, false, nil
	}
}

// Put implements core.Backend by writing straight into the target heap.
func (b *Node) Put(target core.NodeID, data []byte, dstAddr uint64) error {
	if int(target) < 0 || int(target) >= len(b.heaps) {
		return fmt.Errorf("locb: no node %d", target)
	}
	return b.heaps[target].Write(dstAddr, data)
}

// Get implements core.Backend.
func (b *Node) Get(target core.NodeID, srcAddr uint64, dst []byte) error {
	if int(target) < 0 || int(target) >= len(b.heaps) {
		return fmt.Errorf("locb: no node %d", target)
	}
	return b.heaps[target].Read(srcAddr, dst)
}

// Serve implements core.Backend: the target message loop.
func (b *Node) Serve(s core.Server) error {
	inbox := b.chans[b.self]
	var served int64
	for !s.Done() {
		pollStart := b.nt.Now()
		req := <-inbox
		served++
		b.nt.Since(trace.PhasePoll, "locb-recv", served, pollStart)
		resp := s.Dispatch(req.msg)
		endResult := b.nt.Begin(trace.PhaseResult, "locb-result", served)
		req.resp <- resp
		endResult()
	}
	return nil
}

// Memory implements core.Backend.
func (b *Node) Memory() core.LocalMemory { return b.heaps[b.self] }

// ChargeVector implements core.Backend; wall-clock nodes compute for real,
// so no simulated time is charged.
func (b *Node) ChargeVector(flops, bytes int64, cores int) {}

// ChargeScalar implements core.Backend.
func (b *Node) ChargeScalar(ops int64) {}

// Close implements core.Backend.
func (b *Node) Close() error { return nil }

var _ core.Backend = (*Node)(nil)
