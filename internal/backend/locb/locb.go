// Package locb is the in-process loopback communication backend: host and
// target are goroutines in one OS process connected by channels, with a
// plain heap as target memory. It exists to exercise the HAM-Offload
// runtime, protocol bookkeeping and user code without the machine
// simulation, and serves as the reference Backend implementation.
package locb

import (
	"fmt"
	"sync"

	"hamoffload/internal/core"
	"hamoffload/internal/faults"
	"hamoffload/internal/trace"
)

type request struct {
	msg  []byte
	resp chan []byte
}

// life is the liveness table shared by all nodes of one loopback
// application: a dead flag and a broadcast down-channel per node. Closing
// the down channel releases every select blocked on that node — its serve
// loop and all of its waiters — at once.
type life struct {
	mu   sync.Mutex
	dead []bool
	down []chan struct{}
}

func newLife(n int) *life {
	lf := &life{dead: make([]bool, n), down: make([]chan struct{}, n)}
	for i := range lf.down {
		lf.down[i] = make(chan struct{})
	}
	return lf
}

func (lf *life) downCh(n core.NodeID) chan struct{} {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	return lf.down[n]
}

func (lf *life) killed(n core.NodeID) bool {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	return lf.dead[n]
}

func (lf *life) kill(n core.NodeID) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if !lf.dead[n] {
		lf.dead[n] = true
		close(lf.down[n])
	}
}

func (lf *life) revive(n core.NodeID) {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	if lf.dead[n] {
		lf.dead[n] = false
		lf.down[n] = make(chan struct{})
	}
}

// lockedHeap makes a core.Heap safe for the concurrent host/target access
// the loopback wiring allows.
type lockedHeap struct {
	mu sync.Mutex
	h  *core.Heap
}

func (l *lockedHeap) Alloc(n int64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Alloc(n)
}

func (l *lockedHeap) Free(addr uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Free(addr)
}

func (l *lockedHeap) Read(addr uint64, p []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Read(addr, p)
}

func (l *lockedHeap) Write(addr uint64, data []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.h.Write(addr, data)
}

// Node is one side of a loopback application.
type Node struct {
	self  core.NodeID
	descs []core.NodeDescriptor
	heaps []*lockedHeap
	chans []chan request // chans[n] is the inbox of node n
	life  *life
	inj   *faults.Injector
	nt    *trace.NodeTracer
	calls int64 // message correlator for this node's outgoing calls
}

// SetFaultInjector arms connection-level fault injection: SiteConn transfer
// errors fail individual Call attempts (transiently, so core's retry layer
// may resubmit). This backend runs on the wall clock, so only rate- and
// op-scheduled rules apply.
func (b *Node) SetFaultInjector(inj *faults.Injector) { b.inj = inj }

// Kill marks node n failed: its serve loop returns, every pending waiter
// fails with core.ErrNodeFailed, and new offloads to it are rejected until
// RecoverNode.
func (b *Node) Kill(n core.NodeID) { b.life.kill(n) }

// MaxMessageLen implements core.MessageSizer. The in-process channels have
// no framing limit of their own; the bound keeps batch frames within what
// any slot-protocol backend could also carry, so applications tested on
// loopback do not silently depend on unbounded messages.
func (b *Node) MaxMessageLen() int { return 1 << 20 }

// RecoverNode implements core.Recoverer: it revives a killed node and drains
// stale requests from its inbox. The application must restart the node's
// Serve loop afterwards (in-process, the "machine" is a goroutine).
func (b *Node) RecoverNode(n core.NodeID) error {
	if int(n) < 0 || int(n) >= len(b.chans) {
		return fmt.Errorf("locb: no node %d", n)
	}
	for {
		select {
		case req := <-b.chans[n]:
			_ = req // the caller already saw ErrNodeFailed via the down channel
		default:
			b.life.revive(n)
			return nil
		}
	}
}

// SetTracer attaches a wall-clock trace handle for this node's protocol
// spans. Call it before the first offload / Serve.
func (b *Node) SetTracer(tr *trace.Tracer, clock trace.Clock) {
	b.nt = tr.Node(int(b.self), "locb", clock)
}

// NewPair creates a two-node loopback application (host node 0, target
// node 1) with heapSize bytes of memory per node.
func NewPair(heapSize int64) (*Node, *Node, error) {
	return newN(2, heapSize)
}

// NewN creates an n-node loopback application. Node 0 is the host.
func NewN(n int, heapSize int64) ([]*Node, error) {
	if n < 2 {
		return nil, fmt.Errorf("locb: need at least 2 nodes, got %d", n)
	}
	host, target, err := newN(n, heapSize)
	if err != nil {
		return nil, err
	}
	nodes := []*Node{host, target}
	for i := 2; i < n; i++ {
		nodes = append(nodes, &Node{
			self:  core.NodeID(i),
			descs: host.descs,
			heaps: host.heaps,
			chans: host.chans,
			life:  host.life,
		})
	}
	return nodes, nil
}

func newN(n int, heapSize int64) (*Node, *Node, error) {
	descs := make([]core.NodeDescriptor, n)
	heaps := make([]*lockedHeap, n)
	chans := make([]chan request, n)
	for i := 0; i < n; i++ {
		role, arch := "target", "loopback-target"
		if i == 0 {
			role, arch = "host", "loopback-host"
		}
		descs[i] = core.NodeDescriptor{
			Name:   fmt.Sprintf("loc%d", i),
			Arch:   arch,
			Device: role,
		}
		h, err := core.NewHeap(fmt.Sprintf("locb%d", i), heapSize)
		if err != nil {
			return nil, nil, err
		}
		heaps[i] = &lockedHeap{h: h}
		chans[i] = make(chan request, 64)
	}
	lf := newLife(n)
	mk := func(self int) *Node {
		return &Node{self: core.NodeID(self), descs: descs, heaps: heaps, chans: chans, life: lf}
	}
	return mk(0), mk(1), nil
}

// Self implements core.Backend.
func (b *Node) Self() core.NodeID { return b.self }

// NumNodes implements core.Backend.
func (b *Node) NumNodes() int { return len(b.chans) }

// Descriptor implements core.Backend.
func (b *Node) Descriptor(n core.NodeID) core.NodeDescriptor {
	if int(n) < 0 || int(n) >= len(b.descs) {
		return core.NodeDescriptor{Name: "invalid"}
	}
	return b.descs[n]
}

// handle is one in-flight offload; it remembers the target so waiters can
// watch its down channel alongside the response.
type handle struct {
	resp   chan []byte
	target core.NodeID
}

// Call implements core.Backend.
func (b *Node) Call(target core.NodeID, msg []byte) (core.Handle, error) {
	if int(target) < 0 || int(target) >= len(b.chans) {
		return nil, fmt.Errorf("locb: no node %d", target)
	}
	if b.life.killed(target) {
		return nil, fmt.Errorf("locb: node %d: %w", target, core.ErrNodeFailed)
	}
	if err := b.inj.TransferError(0, faults.SiteConn, int(target)); err != nil {
		return nil, err
	}
	b.calls++
	defer b.nt.Begin(trace.PhaseCall, "locb-call", b.calls)()
	// Call must not retain msg past return (it may alias the initiator's
	// scratch buffers); the serving goroutine reads it asynchronously, so it
	// gets its own copy.
	req := request{msg: append([]byte(nil), msg...), resp: make(chan []byte, 1)}
	b.chans[target] <- req
	return &handle{resp: req.resp, target: target}, nil
}

// Wait implements core.Backend.
func (b *Node) Wait(h core.Handle) ([]byte, error) {
	hd, ok := h.(*handle)
	if !ok {
		return nil, fmt.Errorf("locb: foreign handle %T", h)
	}
	defer b.nt.Begin(trace.PhaseWait, "locb-wait", b.calls)()
	// A response that already arrived wins over a later node failure.
	select {
	case resp := <-hd.resp:
		return resp, nil
	default:
	}
	select {
	case resp := <-hd.resp:
		return resp, nil
	case <-b.life.downCh(hd.target):
		return nil, fmt.Errorf("locb: node %d: %w", hd.target, core.ErrNodeFailed)
	}
}

// Poll implements core.Backend.
func (b *Node) Poll(h core.Handle) ([]byte, bool, error) {
	hd, ok := h.(*handle)
	if !ok {
		return nil, false, fmt.Errorf("locb: foreign handle %T", h)
	}
	select {
	case resp := <-hd.resp:
		return resp, true, nil
	default:
	}
	select {
	case <-b.life.downCh(hd.target):
		return nil, false, fmt.Errorf("locb: node %d: %w", hd.target, core.ErrNodeFailed)
	default:
		return nil, false, nil
	}
}

// Put implements core.Backend by writing straight into the target heap.
func (b *Node) Put(target core.NodeID, data []byte, dstAddr uint64) error {
	if int(target) < 0 || int(target) >= len(b.heaps) {
		return fmt.Errorf("locb: no node %d", target)
	}
	return b.heaps[target].Write(dstAddr, data)
}

// Get implements core.Backend.
func (b *Node) Get(target core.NodeID, srcAddr uint64, dst []byte) error {
	if int(target) < 0 || int(target) >= len(b.heaps) {
		return fmt.Errorf("locb: no node %d", target)
	}
	return b.heaps[target].Read(srcAddr, dst)
}

// Serve implements core.Backend: the target message loop. It returns with
// core.ErrNodeFailed when the node is killed.
func (b *Node) Serve(s core.Server) error {
	inbox := b.chans[b.self]
	var served int64
	for !s.Done() {
		pollStart := b.nt.Now()
		var req request
		select {
		case req = <-inbox:
		case <-b.life.downCh(b.self):
			return fmt.Errorf("locb: node %d killed: %w", b.self, core.ErrNodeFailed)
		}
		served++
		b.nt.Since(trace.PhasePoll, "locb-recv", served, pollStart)
		resp := s.Dispatch(req.msg)
		endResult := b.nt.Begin(trace.PhaseResult, "locb-result", served)
		// The response is only valid until the next Dispatch on s; the
		// initiator consumes it asynchronously, so it ships as a copy.
		req.resp <- append([]byte(nil), resp...)
		endResult()
	}
	return nil
}

// Memory implements core.Backend.
func (b *Node) Memory() core.LocalMemory { return b.heaps[b.self] }

// ChargeVector implements core.Backend; wall-clock nodes compute for real,
// so no simulated time is charged.
func (b *Node) ChargeVector(flops, bytes int64, cores int) {}

// ChargeScalar implements core.Backend.
func (b *Node) ChargeScalar(ops int64) {}

// Close implements core.Backend.
func (b *Node) Close() error { return nil }

var _ core.Backend = (*Node)(nil)
