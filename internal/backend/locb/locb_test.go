package locb_test

import (
	"sync"
	"testing"

	"hamoffload/internal/backend/locb"
	"hamoffload/internal/core"
)

var lbAdd = core.NewFunc2[int64]("locb.add",
	func(c *core.Ctx, a, b int64) (int64, error) { return a + b, nil })

func TestPairBasics(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if hb.Self() != 0 || tb.Self() != 1 {
		t.Errorf("Self = %d/%d", hb.Self(), tb.Self())
	}
	if hb.NumNodes() != 2 || tb.NumNodes() != 2 {
		t.Errorf("NumNodes = %d/%d", hb.NumNodes(), tb.NumNodes())
	}
	if d := hb.Descriptor(1); d.Device != "target" {
		t.Errorf("descriptor = %+v", d)
	}
	if d := hb.Descriptor(9); d.Name != "invalid" {
		t.Errorf("bad descriptor = %+v", d)
	}
}

func TestNewNValidation(t *testing.T) {
	if _, err := locb.NewN(1, 1<<20); err == nil {
		t.Error("1-node application accepted")
	}
	nodes, err := locb.NewN(4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 4 {
		t.Fatalf("len(nodes) = %d", len(nodes))
	}
	for i, n := range nodes {
		if int(n.Self()) != i {
			t.Errorf("node %d has Self %d", i, n.Self())
		}
	}
}

func TestHandleValidation(t *testing.T) {
	hb, _, err := locb.NewPair(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hb.Wait(42); err == nil {
		t.Error("foreign handle accepted by Wait")
	}
	if _, _, err := hb.Poll(42); err == nil {
		t.Error("foreign handle accepted by Poll")
	}
	if _, err := hb.Call(7, nil); err == nil {
		t.Error("Call to missing node accepted")
	}
	if err := hb.Put(7, nil, 0); err == nil {
		t.Error("Put to missing node accepted")
	}
	if err := hb.Get(7, 0, nil); err == nil {
		t.Error("Get from missing node accepted")
	}
}

func TestConcurrentPutsAndOffloads(t *testing.T) {
	// The loopback heap must tolerate host puts racing target dispatches.
	hb, tb, err := locb.NewPair(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewRuntime(tb, "locb-t")
	host := core.NewRuntime(hb, "locb-h")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	buf, err := core.Allocate[int64](host, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	var pwg sync.WaitGroup
	for g := 0; g < 4; g++ {
		pwg.Add(1)
		go func(g int) {
			defer pwg.Done()
			data := make([]int64, 64)
			for i := 0; i < 50; i++ {
				off, _ := buf.Offset(int64(g * 64))
				if err := core.Put(host, data, off); err != nil {
					t.Errorf("put: %v", err)
					return
				}
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		if v, err := core.Sync(host, 1, lbAdd.Bind(int64(i), 1)); err != nil || v != int64(i)+1 {
			t.Fatalf("offload %d = %d, %v", i, v, err)
		}
	}
	pwg.Wait()
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}
