package conformance_test

import (
	"sync"
	"testing"

	"hamoffload/internal/backend/conformance"
	"hamoffload/internal/backend/locb"
	"hamoffload/internal/backend/tcpb"
	"hamoffload/internal/core"
	"hamoffload/internal/topology"
	"hamoffload/internal/trace"
	"hamoffload/machine"
	"hamoffload/offload"
)

// TestLoopbackConformance runs the contract against the in-process backend.
func TestLoopbackConformance(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewRuntime(tb, "conf-loc-target")
	host := core.NewRuntime(hb, "conf-loc-host")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	conformance.Exercise(t, host, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestTCPConformance runs the contract over real loopback sockets.
func TestTCPConformance(t *testing.T) {
	tgt, err := tcpb.Listen("127.0.0.1:0", 1, 2, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	targetRT := core.NewRuntime(tgt, "conf-tcp-target")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := targetRT.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	hb, err := tcpb.Dial([]string{tgt.Addr()}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	host := core.NewRuntime(hb, "conf-tcp-host")
	conformance.Exercise(t, host, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestSimulatedProtocolConformance runs the contract over both SX-Aurora
// protocols on the simulated machine.
func TestSimulatedProtocolConformance(t *testing.T) {
	for name, connect := range map[string]func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error){
		"veo": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		},
		"dma": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		},
	} {
		t.Run(name, func(t *testing.T) {
			m, err := machine.New(machine.Config{VEs: 2})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := connect(p, m)
				if err != nil {
					return err
				}
				defer func() { _ = rt.Finalize() }()
				conformance.Exercise(t, rt, 1)
				conformance.Exercise(t, rt, 2)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestClusterConformance runs the contract against a remote VE over the
// InfiniBand cluster backend.
func TestClusterConformance(t *testing.T) {
	cl, err := machine.NewCluster(2, machine.Config{VEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		conformance.Exercise(t, rt, 1) // local VE
		conformance.Exercise(t, rt, 2) // remote VE
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// tracedTiming returns a machine timing model with a fresh tracer attached.
func tracedTiming() (*trace.Tracer, *topology.Timing) {
	tr := trace.NewTracer()
	timing := topology.DefaultTiming()
	timing.Tracer = tr
	return tr, &timing
}

// TestTraceConformanceLoopback asserts the wall-clock loopback backend emits
// the mandatory lifecycle spans.
func TestTraceConformanceLoopback(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.NewTracer()
	clock := trace.NewWallClock()
	hb.SetTracer(tr, clock)
	tb.SetTracer(tr, clock)
	target := core.NewRuntime(tb, "conf-loc-target")
	target.SetTracer(tr.Node(1, "locb", clock))
	host := core.NewRuntime(hb, "conf-loc-host")
	host.SetTracer(tr.Node(0, "locb", clock))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	conformance.ExerciseTrace(t, host, 1, tr)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestTraceConformanceTCP asserts the socket backend emits the mandatory
// lifecycle spans.
func TestTraceConformanceTCP(t *testing.T) {
	tgt, err := tcpb.Listen("127.0.0.1:0", 1, 2, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.NewTracer()
	clock := trace.NewWallClock()
	tgt.SetTracer(tr, clock)
	targetRT := core.NewRuntime(tgt, "conf-tcp-target")
	targetRT.SetTracer(tr.Node(1, "tcpb", clock))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := targetRT.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	hb, err := tcpb.Dial([]string{tgt.Addr()}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	hb.SetTracer(tr, clock)
	host := core.NewRuntime(hb, "conf-tcp-host")
	host.SetTracer(tr.Node(0, "tcpb", clock))
	conformance.ExerciseTrace(t, host, 1, tr)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestTraceConformanceSimulated asserts both SX-Aurora protocols emit the
// mandatory lifecycle spans.
func TestTraceConformanceSimulated(t *testing.T) {
	for name, connect := range map[string]func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error){
		"veo": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		},
		"dma": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		},
	} {
		t.Run(name, func(t *testing.T) {
			tr, timing := tracedTiming()
			m, err := machine.New(machine.Config{VEs: 1, Timing: timing})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := connect(p, m)
				if err != nil {
					return err
				}
				defer func() { _ = rt.Finalize() }()
				conformance.ExerciseTrace(t, rt, 1, tr)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTraceConformanceCluster asserts the InfiniBand cluster backend emits
// the mandatory lifecycle spans for both local and remote targets.
func TestTraceConformanceCluster(t *testing.T) {
	tr, timing := tracedTiming()
	cl, err := machine.NewCluster(2, machine.Config{VEs: 1, Timing: timing})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		conformance.ExerciseTrace(t, rt, 1, tr) // local VE
		conformance.ExerciseTrace(t, rt, 2, tr) // remote VE
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
