package conformance_test

import (
	"errors"
	"sync"
	"testing"

	"hamoffload/internal/backend/conformance"
	"hamoffload/internal/backend/locb"
	"hamoffload/internal/backend/tcpb"
	"hamoffload/internal/core"
	"hamoffload/internal/faults"
	"hamoffload/internal/topology"
	"hamoffload/internal/trace"
	"hamoffload/machine"
	"hamoffload/offload"
)

// TestLoopbackConformance runs the contract against the in-process backend.
func TestLoopbackConformance(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewRuntime(tb, "conf-loc-target")
	host := core.NewRuntime(hb, "conf-loc-host")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	conformance.Exercise(t, host, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestTCPConformance runs the contract over real loopback sockets.
func TestTCPConformance(t *testing.T) {
	tgt, err := tcpb.Listen("127.0.0.1:0", 1, 2, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	targetRT := core.NewRuntime(tgt, "conf-tcp-target")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := targetRT.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	hb, err := tcpb.Dial([]string{tgt.Addr()}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	host := core.NewRuntime(hb, "conf-tcp-host")
	conformance.Exercise(t, host, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestSimulatedProtocolConformance runs the contract over both SX-Aurora
// protocols on the simulated machine.
func TestSimulatedProtocolConformance(t *testing.T) {
	for name, connect := range map[string]func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error){
		"veo": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		},
		"dma": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		},
	} {
		t.Run(name, func(t *testing.T) {
			m, err := machine.New(machine.Config{VEs: 2})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := connect(p, m)
				if err != nil {
					return err
				}
				defer func() { _ = rt.Finalize() }()
				conformance.Exercise(t, rt, 1)
				conformance.Exercise(t, rt, 2)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestClusterConformance runs the contract against a remote VE over the
// InfiniBand cluster backend.
func TestClusterConformance(t *testing.T) {
	cl, err := machine.NewCluster(2, machine.Config{VEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		conformance.Exercise(t, rt, 1) // local VE
		conformance.Exercise(t, rt, 2) // remote VE
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestAliasingConformanceLoopback drives the zero-copy aliasing contracts on
// the in-process backend.
func TestAliasingConformanceLoopback(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewRuntime(tb, "conf-loc-target")
	host := core.NewRuntime(hb, "conf-loc-host")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	conformance.ExerciseAliasing(t, host, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestAliasingConformanceTCP drives the zero-copy aliasing contracts over real
// sockets.
func TestAliasingConformanceTCP(t *testing.T) {
	tgt, err := tcpb.Listen("127.0.0.1:0", 1, 2, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	targetRT := core.NewRuntime(tgt, "conf-tcp-target")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := targetRT.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	hb, err := tcpb.Dial([]string{tgt.Addr()}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	host := core.NewRuntime(hb, "conf-tcp-host")
	conformance.ExerciseAliasing(t, host, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestAliasingConformanceSimulated drives the zero-copy aliasing contracts on
// both SX-Aurora protocols, where Call parks the proc on the simulated clock
// mid-transfer — the widest window for a retained-buffer bug to surface.
func TestAliasingConformanceSimulated(t *testing.T) {
	for name, connect := range map[string]func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error){
		"veo": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		},
		"dma": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		},
	} {
		t.Run(name, func(t *testing.T) {
			m, err := machine.New(machine.Config{VEs: 2})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := connect(p, m)
				if err != nil {
					return err
				}
				defer func() { _ = rt.Finalize() }()
				conformance.ExerciseAliasing(t, rt, 1)
				conformance.ExerciseAliasing(t, rt, 2)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAliasingConformanceCluster drives the zero-copy aliasing contracts on
// the InfiniBand cluster backend, local and remote.
func TestAliasingConformanceCluster(t *testing.T) {
	cl, err := machine.NewCluster(2, machine.Config{VEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		conformance.ExerciseAliasing(t, rt, 1) // local VE
		conformance.ExerciseAliasing(t, rt, 2) // remote VE
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBatchConformanceLoopback runs the batching contract against the
// in-process backend.
func TestBatchConformanceLoopback(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewRuntime(tb, "conf-loc-target")
	host := core.NewRuntime(hb, "conf-loc-host")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	conformance.ExerciseBatch(t, host, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestBatchConformanceTCP runs the batching contract over real sockets.
func TestBatchConformanceTCP(t *testing.T) {
	tgt, err := tcpb.Listen("127.0.0.1:0", 1, 2, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	targetRT := core.NewRuntime(tgt, "conf-tcp-target")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := targetRT.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	hb, err := tcpb.Dial([]string{tgt.Addr()}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	host := core.NewRuntime(hb, "conf-tcp-host")
	conformance.ExerciseBatch(t, host, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestBatchConformanceSimulated runs the batching contract on both SX-Aurora
// protocols.
func TestBatchConformanceSimulated(t *testing.T) {
	for name, connect := range map[string]func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error){
		"veo": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		},
		"dma": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		},
	} {
		t.Run(name, func(t *testing.T) {
			m, err := machine.New(machine.Config{VEs: 2})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := connect(p, m)
				if err != nil {
					return err
				}
				defer func() { _ = rt.Finalize() }()
				conformance.ExerciseBatch(t, rt, 1)
				conformance.ExerciseBatch(t, rt, 2)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBatchConformanceCluster runs the batching contract on the InfiniBand
// cluster backend, against both the local and the remote VE.
func TestBatchConformanceCluster(t *testing.T) {
	cl, err := machine.NewCluster(2, machine.Config{VEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		conformance.ExerciseBatch(t, rt, 1) // local VE
		conformance.ExerciseBatch(t, rt, 2) // remote VE
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBatchRetryConformanceLoopback pins batching against fault tolerance on
// the in-process backend: injected send faults force whole-frame
// retransmissions, and the dedup window must keep every batched message
// at-most-once.
func TestBatchRetryConformanceLoopback(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(&faults.Plan{Seed: 42, Rules: []faults.Rule{
		{Kind: faults.DMAError, Site: faults.SiteConn, Node: 1, AfterOp: 2, Every: 3, Count: 4},
	}})
	hb.SetFaultInjector(inj)
	target := core.NewRuntime(tb, "conf-loc-target")
	host := core.NewRuntime(hb, "conf-loc-host")
	host.SetFaultTolerance(ftPolicy())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	conformance.ExerciseBatchRetry(t, host, 1, inj)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestBatchRetryConformanceSimulated pins batching against fault tolerance
// on the DMA protocol, where injected user-DMA errors and VEOS stalls hit
// frames mid-flight and timed-out frames are retransmitted after the target
// may already have executed them — the dedup window must answer those from
// cache.
func TestBatchRetryConformanceSimulated(t *testing.T) {
	plan := &faults.Plan{Seed: 7, Rules: []faults.Rule{
		{Kind: faults.Stall, Site: faults.SiteVEOS, Node: 0,
			AfterOp: 2, Every: 2, Count: 4, StallFor: 2 * machine.Microsecond},
		{Kind: faults.DMAError, Site: faults.SiteUserDMA, Node: 0,
			AfterOp: 6, Every: 4, Count: 3},
	}}
	m, err := machine.New(machine.Config{VEs: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	err = m.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectDMA(p, m, machine.ProtocolOptions{
			OffloadTimeout: 10 * machine.Millisecond, Retry: ftPolicy(),
		})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		conformance.ExerciseBatchRetry(t, rt, 1, m.Timing.Faults)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestBackpressureConformanceLoopback saturates the in-process backend far
// past its in-flight capacity.
func TestBackpressureConformanceLoopback(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewRuntime(tb, "conf-bp-loc-target")
	host := core.NewRuntime(hb, "conf-bp-loc-host")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	conformance.ExerciseBackpressure(t, host, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestBackpressureConformanceTCP saturates the socket backend far past its
// in-flight capacity.
func TestBackpressureConformanceTCP(t *testing.T) {
	tgt, err := tcpb.Listen("127.0.0.1:0", 1, 2, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	targetRT := core.NewRuntime(tgt, "conf-bp-tcp-target")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := targetRT.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	hb, err := tcpb.Dial([]string{tgt.Addr()}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	host := core.NewRuntime(hb, "conf-bp-tcp-host")
	conformance.ExerciseBackpressure(t, host, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestBackpressureConformanceSimulated saturates both SX-Aurora protocols,
// whose 8 message slots are the tightest in-flight bound of any backend: 96
// concurrent asyncs force Call to park on the simulated clock until slots
// recycle.
func TestBackpressureConformanceSimulated(t *testing.T) {
	for name, connect := range map[string]func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error){
		"veo": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		},
		"dma": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		},
	} {
		t.Run(name, func(t *testing.T) {
			m, err := machine.New(machine.Config{VEs: 2})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := connect(p, m)
				if err != nil {
					return err
				}
				defer func() { _ = rt.Finalize() }()
				conformance.ExerciseBackpressure(t, rt, 1)
				conformance.ExerciseBackpressure(t, rt, 2)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBackpressureConformanceCluster saturates a local and a remote VE over
// the InfiniBand cluster backend.
func TestBackpressureConformanceCluster(t *testing.T) {
	cl, err := machine.NewCluster(2, machine.Config{VEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		conformance.ExerciseBackpressure(t, rt, 1) // local VE
		conformance.ExerciseBackpressure(t, rt, 2) // remote VE
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestErrorsConformanceLoopback pins error propagation on the in-process
// backend.
func TestErrorsConformanceLoopback(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewRuntime(tb, "conf-loc-target")
	host := core.NewRuntime(hb, "conf-loc-host")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	conformance.ExerciseErrors(t, host, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestErrorsConformanceTCP pins error propagation over real sockets.
func TestErrorsConformanceTCP(t *testing.T) {
	tgt, err := tcpb.Listen("127.0.0.1:0", 1, 2, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	targetRT := core.NewRuntime(tgt, "conf-tcp-target")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := targetRT.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	hb, err := tcpb.Dial([]string{tgt.Addr()}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	host := core.NewRuntime(hb, "conf-tcp-host")
	conformance.ExerciseErrors(t, host, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestErrorsConformanceSimulated pins error propagation on both SX-Aurora
// protocols.
func TestErrorsConformanceSimulated(t *testing.T) {
	for name, connect := range map[string]func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error){
		"veo": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		},
		"dma": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		},
	} {
		t.Run(name, func(t *testing.T) {
			m, err := machine.New(machine.Config{VEs: 1})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := connect(p, m)
				if err != nil {
					return err
				}
				defer func() { _ = rt.Finalize() }()
				conformance.ExerciseErrors(t, rt, 1)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestErrorsConformanceCluster pins error propagation on the InfiniBand
// cluster backend, local and remote.
func TestErrorsConformanceCluster(t *testing.T) {
	cl, err := machine.NewCluster(2, machine.Config{VEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		conformance.ExerciseErrors(t, rt, 1) // local VE
		conformance.ExerciseErrors(t, rt, 2) // remote VE
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// ftPolicy is the retry policy the fault exercises run under.
func ftPolicy() core.FaultTolerance {
	return core.FaultTolerance{
		MaxRetries:  4,
		BackoffBase: 2 * machine.Microsecond,
		BackoffMax:  50 * machine.Microsecond,
	}
}

// TestFaultsConformanceLoopback runs the fault-tolerance contract on the
// in-process backend: op-scheduled send faults, a node kill and a recovery
// with a restarted serve loop.
func TestFaultsConformanceLoopback(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(&faults.Plan{Seed: 42, Rules: []faults.Rule{
		{Kind: faults.DMAError, Site: faults.SiteConn, Node: 1, AfterOp: 2, Every: 3, Count: 4},
	}})
	hb.SetFaultInjector(inj)
	target := core.NewRuntime(tb, "conf-loc-target")
	host := core.NewRuntime(hb, "conf-loc-host")
	host.SetFaultTolerance(ftPolicy())

	var wg sync.WaitGroup
	dead := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(dead)
		if err := target.Serve(); !errors.Is(err, core.ErrNodeFailed) {
			t.Errorf("killed Serve = %v (want ErrNodeFailed)", err)
		}
	}()
	conformance.ExerciseFaults(t, host, 1, conformance.FaultHooks{
		Inj: inj,
		Kill: func() error {
			hb.Kill(1)
			<-dead // the old serve loop must be gone before recovery restarts it
			return nil
		},
		Recover: func() error {
			if err := host.RecoverNode(1); err != nil {
				return err
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := target.Serve(); err != nil {
					t.Errorf("Serve after recovery: %v", err)
				}
			}()
			return nil
		},
	})
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestFaultsConformanceTCP runs the fault-tolerance contract over real
// sockets: send faults are retried, and dropping the connection fails
// in-flight and new offloads with ErrNodeFailed (no recovery — tcpb cannot
// redial).
func TestFaultsConformanceTCP(t *testing.T) {
	tgt, err := tcpb.Listen("127.0.0.1:0", 1, 2, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = core.NewRuntime(tgt, "conf-tcp-target").Serve() // dies with the dropped conn
	}()
	hb, err := tcpb.Dial([]string{tgt.Addr()}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(&faults.Plan{Seed: 42, Rules: []faults.Rule{
		{Kind: faults.DMAError, Site: faults.SiteConn, Node: 1, AfterOp: 2, Every: 3, Count: 4},
	}})
	hb.SetFaultInjector(inj)
	host := core.NewRuntime(hb, "conf-tcp-host")
	host.SetFaultTolerance(ftPolicy())
	conformance.ExerciseFaults(t, host, 1, conformance.FaultHooks{
		Inj:  inj,
		Kill: func() error { return hb.DropConn(1) },
	})
	_ = host.Finalize() // the node is dead; the terminate exchange cannot succeed
	wg.Wait()
}

// TestFaultsConformanceSimulated runs the fault-tolerance contract on both
// SX-Aurora protocols: substrate-level injection from a machine fault plan,
// a VE process crash and machine-level recovery.
func TestFaultsConformanceSimulated(t *testing.T) {
	for name, tc := range map[string]struct {
		rules   []faults.Rule
		connect func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error)
	}{
		// The VEO protocol rides entirely on privileged DMA, so both the
		// VEOS stalls and the transfer errors hit its hot path; the op
		// offsets keep the errors clear of the (unretried) connect sequence.
		"veo": {
			rules: []faults.Rule{
				{Kind: faults.Stall, Site: faults.SiteVEOS, Node: 0,
					AfterOp: 10, Every: 25, Count: 6, StallFor: 2 * machine.Microsecond},
				{Kind: faults.DMAError, Site: faults.SitePrivDMA, Node: 0,
					AfterOp: 40, Every: 17, Count: 2},
			},
			connect: func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
				return machine.ConnectVEO(p, m, machine.ProtocolOptions{
					OffloadTimeout: 10 * machine.Millisecond, Retry: ftPolicy(),
				})
			},
		},
		// The DMA protocol touches VEOS only at setup (stalls fire there,
		// harmlessly) and uses user DMA for the VE's message fetches, which
		// redeliver after an injected failure.
		"dma": {
			rules: []faults.Rule{
				{Kind: faults.Stall, Site: faults.SiteVEOS, Node: 0,
					AfterOp: 2, Every: 2, Count: 4, StallFor: 2 * machine.Microsecond},
				{Kind: faults.DMAError, Site: faults.SiteUserDMA, Node: 0,
					AfterOp: 6, Every: 4, Count: 3},
			},
			connect: func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
				return machine.ConnectDMA(p, m, machine.ProtocolOptions{
					OffloadTimeout: 10 * machine.Millisecond, Retry: ftPolicy(),
				})
			},
		},
	} {
		t.Run(name, func(t *testing.T) {
			plan := &faults.Plan{Seed: 7, Rules: tc.rules}
			m, err := machine.New(machine.Config{VEs: 1, Faults: plan})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := tc.connect(p, m)
				if err != nil {
					return err
				}
				defer func() { _ = rt.Finalize() }()
				conformance.ExerciseFaults(t, rt, 1, conformance.FaultHooks{
					Inj:     m.Timing.Faults,
					Kill:    func() error { m.Cards[0].Kill(); return nil },
					Recover: func() error { return rt.RecoverNode(1) },
				})
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestFaultsConformanceCluster runs the fault-tolerance contract on the
// InfiniBand cluster backend: the local VE is killed and recovered; the
// remote VE is killed and stays dead (remote recovery is unsupported).
func TestFaultsConformanceCluster(t *testing.T) {
	plan := &faults.Plan{Seed: 9, Rules: []faults.Rule{
		{Kind: faults.Stall, Site: faults.SiteVEOS, Node: 0,
			AfterOp: 0, Every: 20, Count: 8, StallFor: 2 * machine.Microsecond},
	}}
	cl, err := machine.NewCluster(2, machine.Config{VEs: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{
			OffloadTimeout: 10 * machine.Millisecond, Retry: ftPolicy(),
		})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		conformance.ExerciseFaults(t, rt, 1, conformance.FaultHooks{ // local VE
			Inj:     cl.Nodes[0].Timing.Faults,
			Kill:    func() error { cl.Nodes[0].Cards[0].Kill(); return nil },
			Recover: func() error { return rt.RecoverNode(1) },
		})
		conformance.ExerciseFaults(t, rt, 2, conformance.FaultHooks{ // remote VE
			Inj:  cl.Nodes[1].Timing.Faults,
			Kill: func() error { cl.Nodes[1].Cards[0].Kill(); return nil },
		})
		if err := rt.RecoverNode(2); err == nil {
			t.Errorf("remote RecoverNode succeeded; want unsupported error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// tracedTiming returns a machine timing model with a fresh tracer attached.
func tracedTiming() (*trace.Tracer, *topology.Timing) {
	tr := trace.NewTracer()
	timing := topology.DefaultTiming()
	timing.Tracer = tr
	return tr, &timing
}

// TestTraceConformanceLoopback asserts the wall-clock loopback backend emits
// the mandatory lifecycle spans.
func TestTraceConformanceLoopback(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.NewTracer()
	clock := trace.NewWallClock()
	hb.SetTracer(tr, clock)
	tb.SetTracer(tr, clock)
	target := core.NewRuntime(tb, "conf-loc-target")
	target.SetTracer(tr.Node(1, "locb", clock))
	host := core.NewRuntime(hb, "conf-loc-host")
	host.SetTracer(tr.Node(0, "locb", clock))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	conformance.ExerciseTrace(t, host, 1, tr)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestTraceConformanceTCP asserts the socket backend emits the mandatory
// lifecycle spans.
func TestTraceConformanceTCP(t *testing.T) {
	tgt, err := tcpb.Listen("127.0.0.1:0", 1, 2, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.NewTracer()
	clock := trace.NewWallClock()
	tgt.SetTracer(tr, clock)
	targetRT := core.NewRuntime(tgt, "conf-tcp-target")
	targetRT.SetTracer(tr.Node(1, "tcpb", clock))
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := targetRT.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	hb, err := tcpb.Dial([]string{tgt.Addr()}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	hb.SetTracer(tr, clock)
	host := core.NewRuntime(hb, "conf-tcp-host")
	host.SetTracer(tr.Node(0, "tcpb", clock))
	conformance.ExerciseTrace(t, host, 1, tr)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestTraceConformanceSimulated asserts both SX-Aurora protocols emit the
// mandatory lifecycle spans.
func TestTraceConformanceSimulated(t *testing.T) {
	for name, connect := range map[string]func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error){
		"veo": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		},
		"dma": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		},
	} {
		t.Run(name, func(t *testing.T) {
			tr, timing := tracedTiming()
			m, err := machine.New(machine.Config{VEs: 1, Timing: timing})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := connect(p, m)
				if err != nil {
					return err
				}
				defer func() { _ = rt.Finalize() }()
				conformance.ExerciseTrace(t, rt, 1, tr)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTraceConformanceCluster asserts the InfiniBand cluster backend emits
// the mandatory lifecycle spans for both local and remote targets.
func TestTraceConformanceCluster(t *testing.T) {
	tr, timing := tracedTiming()
	cl, err := machine.NewCluster(2, machine.Config{VEs: 1, Timing: timing})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		conformance.ExerciseTrace(t, rt, 1, tr) // local VE
		conformance.ExerciseTrace(t, rt, 2, tr) // remote VE
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestHedgingConformanceLoopback drives the hedged-request contract on the
// in-process backend (wall-clock: hedges fire immediately).
func TestHedgingConformanceLoopback(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewRuntime(tb, "conf-hedge-loc-target")
	host := core.NewRuntime(hb, "conf-hedge-loc-host")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	conformance.ExerciseHedging(t, host, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestHedgingConformanceTCP drives the hedged-request contract over real
// loopback sockets.
func TestHedgingConformanceTCP(t *testing.T) {
	tgt, err := tcpb.Listen("127.0.0.1:0", 1, 2, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	targetRT := core.NewRuntime(tgt, "conf-hedge-tcp-target")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := targetRT.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	hb, err := tcpb.Dial([]string{tgt.Addr()}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	host := core.NewRuntime(hb, "conf-hedge-tcp-host")
	conformance.ExerciseHedging(t, host, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestHedgingConformanceSimulated drives the hedged-request contract over
// both SX-Aurora protocols; hedge delays run on the simulated clock.
func TestHedgingConformanceSimulated(t *testing.T) {
	for name, connect := range map[string]func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error){
		"veo": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		},
		"dma": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		},
	} {
		t.Run(name, func(t *testing.T) {
			m, err := machine.New(machine.Config{VEs: 2})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := connect(p, m)
				if err != nil {
					return err
				}
				defer func() { _ = rt.Finalize() }()
				conformance.ExerciseHedging(t, rt, 1)
				conformance.ExerciseHedging(t, rt, 2)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestHedgingConformanceCluster drives the hedged-request contract against
// a local and a remote VE over the InfiniBand cluster backend.
func TestHedgingConformanceCluster(t *testing.T) {
	cl, err := machine.NewCluster(2, machine.Config{VEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		conformance.ExerciseHedging(t, rt, 1) // local VE
		conformance.ExerciseHedging(t, rt, 2) // remote VE
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGrayFailureConformanceLoopback drives the health-scored scheduling
// contract on the pair-only in-process backend: a single target means the
// policy must fail open rather than starve.
func TestGrayFailureConformanceLoopback(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewRuntime(tb, "conf-gray-loc-target")
	host := core.NewRuntime(hb, "conf-gray-loc-host")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	conformance.ExerciseGrayFailure(t, host, []core.NodeID{1}, 1)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestGrayFailureConformanceTCP drives ejection, routing-around and probe
// re-admission across two socket targets.
func TestGrayFailureConformanceTCP(t *testing.T) {
	tgt1, err := tcpb.Listen("127.0.0.1:0", 1, 3, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	tgt2, err := tcpb.Listen("127.0.0.1:0", 2, 3, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	rt1 := core.NewRuntime(tgt1, "conf-gray-tcp-t1")
	rt2 := core.NewRuntime(tgt2, "conf-gray-tcp-t2")
	var wg sync.WaitGroup
	for _, trt := range []*core.Runtime{rt1, rt2} {
		wg.Add(1)
		go func(trt *core.Runtime) {
			defer wg.Done()
			if err := trt.Serve(); err != nil {
				t.Errorf("Serve: %v", err)
			}
		}(trt)
	}
	hb, err := tcpb.Dial([]string{tgt1.Addr(), tgt2.Addr()}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	host := core.NewRuntime(hb, "conf-gray-tcp-host")
	conformance.ExerciseGrayFailure(t, host, []core.NodeID{1, 2}, 2)
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

// TestGrayFailureConformanceSimulated drives the contract over both
// SX-Aurora protocols with three VEs, degrading the middle one.
func TestGrayFailureConformanceSimulated(t *testing.T) {
	for name, connect := range map[string]func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error){
		"veo": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectVEO(p, m, machine.ProtocolOptions{})
		},
		"dma": func(p *machine.Proc, m *machine.Machine) (*offload.Runtime, error) {
			return machine.ConnectDMA(p, m, machine.ProtocolOptions{})
		},
	} {
		t.Run(name, func(t *testing.T) {
			m, err := machine.New(machine.Config{VEs: 3})
			if err != nil {
				t.Fatal(err)
			}
			err = m.RunMain(func(p *machine.Proc) error {
				rt, err := connect(p, m)
				if err != nil {
					return err
				}
				defer func() { _ = rt.Finalize() }()
				conformance.ExerciseGrayFailure(t, rt, []core.NodeID{1, 2, 3}, 2)
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestGrayFailureConformanceCluster degrades the remote VE of a two-machine
// cluster: ejection and re-admission must work across the local/remote
// split exactly as on one machine.
func TestGrayFailureConformanceCluster(t *testing.T) {
	cl, err := machine.NewCluster(2, machine.Config{VEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	err = cl.RunMain(func(p *machine.Proc) error {
		rt, err := machine.ConnectCluster(p, cl, machine.ProtocolOptions{})
		if err != nil {
			return err
		}
		defer func() { _ = rt.Finalize() }()
		conformance.ExerciseGrayFailure(t, rt, []core.NodeID{1, 2}, 2) // node 2 is remote
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
