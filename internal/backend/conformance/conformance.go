// Package conformance defines the behavioural contract every HAM-Offload
// communication backend must satisfy — the mechanical form of the paper's
// portability claim that applications run unchanged on any backend (§V).
// The same Exercise function runs against the loopback, TCP, VEO-protocol,
// DMA-protocol and cluster backends.
package conformance

import (
	"errors"
	"fmt"
	"strings"

	"hamoffload/internal/core"
	"hamoffload/internal/faults"
	"hamoffload/internal/ham"
	"hamoffload/internal/simtime"
	"hamoffload/internal/trace"
	"hamoffload/sched"
	"hamoffload/sched/health"
)

// Registered functions of the conformance program. Like any HAM-Offload
// application, they exist identically in every "binary" involved.
var (
	cfEcho = core.NewFunc1[int64]("conformance.echo",
		func(c *core.Ctx, v int64) (int64, error) { return v, nil })

	cfConcat = core.NewFunc2[string]("conformance.concat",
		func(c *core.Ctx, a, b string) (string, error) { return a + b, nil })

	cfSum = core.NewFunc1[float64]("conformance.sum",
		func(c *core.Ctx, buf core.BufferPtr[float64]) (float64, error) {
			v, err := core.ReadLocal(c, buf, 0, buf.Count)
			if err != nil {
				return 0, err
			}
			s := 0.0
			for _, x := range v {
				s += x
			}
			return s, nil
		})

	cfBig = core.NewFunc1[[]float64]("conformance.big",
		func(c *core.Ctx, n int64) ([]float64, error) {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(i) + 0.5
			}
			return out, nil
		})

	cfFail = core.NewFunc0[core.Unit]("conformance.fail",
		func(c *core.Ctx) (core.Unit, error) {
			return core.Unit{}, fmt.Errorf("conformance: deliberate failure")
		})

	cfWho = core.NewFunc0[int]("conformance.who",
		func(c *core.Ctx) (int, error) { return int(c.Node()), nil })

	// cfBump increments a one-cell counter on the target and returns the new
	// value — a side effect that makes duplicate execution visible, which is
	// what the batch retry exercise needs.
	cfBump = core.NewFunc1[int64]("conformance.bump",
		func(c *core.Ctx, buf core.BufferPtr[int64]) (int64, error) {
			v, err := core.ReadLocal(c, buf, 0, 1)
			if err != nil {
				return 0, err
			}
			v[0]++
			if err := core.WriteLocal(c, buf, 0, v); err != nil {
				return 0, err
			}
			return v[0], nil
		})
)

// Reporter receives failures; *testing.T satisfies it.
type Reporter interface {
	Errorf(format string, args ...any)
}

// Exercise runs the full backend contract from the host runtime rt against
// target node. It must be called in the host's execution context (directly
// for wall-clock backends, inside RunMain for simulated ones).
func Exercise(t Reporter, rt *core.Runtime, target core.NodeID) {
	// --- introspection -----------------------------------------------------
	if rt.ThisNode() == target {
		t.Errorf("host and target share a node id")
	}
	if n := rt.NumNodes(); int(target) >= n {
		t.Errorf("target %d outside NumNodes %d", target, n)
	}
	if d := rt.GetNodeDescriptor(target); d.Name == "" || d.Name == "invalid" {
		t.Errorf("target descriptor unusable: %+v", d)
	}
	if _, err := rt.Ping(target); err != nil {
		t.Errorf("Ping: %v", err)
	}
	if err := rt.CheckCompatible(target); err != nil {
		t.Errorf("CheckCompatible: %v", err)
	}

	// --- sync offloads, argument/result fidelity ----------------------------
	if v, err := core.Sync(rt, target, cfEcho.Bind(-12345)); err != nil || v != -12345 {
		t.Errorf("echo = %d, %v", v, err)
	}
	if s, err := core.Sync(rt, target, cfConcat.Bind("hetero", "geneous")); err != nil || s != "heterogeneous" {
		t.Errorf("concat = %q, %v", s, err)
	}
	if w, err := core.Sync(rt, target, cfWho.Bind()); err != nil || w != int(target) {
		t.Errorf("who = %d, %v (want %d)", w, err, target)
	}

	// --- memory lifecycle ----------------------------------------------------
	buf, err := core.Allocate[float64](rt, target, 64)
	if err != nil {
		t.Errorf("Allocate: %v", err)
		return
	}
	vals := make([]float64, 64)
	want := 0.0
	for i := range vals {
		vals[i] = float64(i) * 1.5
		want += vals[i]
	}
	if err := core.Put(rt, vals, buf); err != nil {
		t.Errorf("Put: %v", err)
	}
	if got, err := core.Sync(rt, target, cfSum.Bind(buf)); err != nil || got != want {
		t.Errorf("sum over put data = %v, %v (want %v)", got, err, want)
	}
	back := make([]float64, 64)
	if err := core.Get(rt, buf, back); err != nil {
		t.Errorf("Get: %v", err)
	}
	for i := range vals {
		if back[i] != vals[i] {
			t.Errorf("get mismatch at %d", i)
			break
		}
	}
	if err := core.Free(rt, buf); err != nil {
		t.Errorf("Free: %v", err)
	}
	if err := core.Free(rt, buf); err == nil {
		t.Errorf("double Free accepted")
	}

	// --- asynchrony and ordering --------------------------------------------
	futs := make([]*core.Future[int64], 12)
	for i := range futs {
		futs[i] = core.Async(rt, target, cfEcho.Bind(int64(i*i)))
	}
	for i := len(futs) - 1; i >= 0; i-- { // out-of-order harvest
		if v, err := futs[i].Get(); err != nil || v != int64(i*i) {
			t.Errorf("future %d = %d, %v", i, v, err)
		}
	}
	f := core.Async(rt, target, cfEcho.Bind(7))
	for !f.Test() {
	}
	if v, err := f.Get(); err != nil || v != 7 {
		t.Errorf("Test/Get = %d, %v", v, err)
	}

	// --- large results --------------------------------------------------------
	if out, err := core.Sync(rt, target, cfBig.Bind(int64(200))); err != nil ||
		len(out) != 200 || out[199] != 199.5 {
		t.Errorf("big result: len %d, %v", len(out), err)
	}

	// --- error propagation and liveness after failure -------------------------
	if _, err := core.Sync(rt, target, cfFail.Bind()); err == nil ||
		!strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("remote error = %v", err)
	}
	if v, err := core.Sync(rt, target, cfEcho.Bind(1)); err != nil || v != 1 {
		t.Errorf("offload after failure = %d, %v", v, err)
	}

	// --- validation ------------------------------------------------------------
	if _, err := core.Sync(rt, rt.ThisNode(), cfEcho.Bind(1)); err == nil {
		t.Errorf("offload to self accepted")
	}
	if _, err := core.Sync(rt, core.NodeID(rt.NumNodes()+5), cfEcho.Bind(1)); err == nil {
		t.Errorf("offload to missing node accepted")
	}
	if _, err := core.Allocate[float64](rt, target, -1); err == nil {
		t.Errorf("negative allocate accepted")
	}
}

// ExerciseAliasing is the runtime counterpart of the borrowck analyzer: it
// drives the zero-copy aliasing contracts the //ham:borrowed annotations on
// Backend.Call and Server.Dispatch declare. Call receives a message it may
// only read for the duration of the call, so the exercise clobbers the wire
// bytes the moment Call returns — a backend that retained the buffer (handed
// it to a goroutine, deferred the transfer) would see the corruption and
// answer wrong. Dispatch returns a response that is only valid until the next
// Dispatch, so the exercise consumes each response before dispatching again
// and verifies that scribbling over a stale response cannot corrupt later
// ones. It must run in the host's execution context.
func ExerciseAliasing(t Reporter, rt *core.Runtime, target core.NodeID) {
	be := rt.Backend()
	bin := rt.Binary()

	encodeEcho := func(v int64) []byte {
		msg, err := bin.EncodeRequest("fn:conformance.echo", func(e *ham.Encoder) {
			e.PutI64(v)
		})
		if err != nil {
			t.Errorf("aliasing: encode echo: %v", err)
			return nil
		}
		return msg
	}
	decodeEcho := func(resp []byte) (int64, error) {
		d, err := ham.DecodeResponse(resp)
		if err != nil {
			return 0, err
		}
		v := d.I64()
		return v, d.Err()
	}

	// --- Call must not retain the request buffer --------------------------------
	msg := encodeEcho(4242)
	if msg == nil {
		return
	}
	h, err := be.Call(target, msg)
	if err != nil {
		t.Errorf("aliasing: Call: %v", err)
		return
	}
	for i := range msg { // the borrow ended when Call returned
		msg[i] = 0xFF
	}
	resp, err := be.Wait(h)
	if err != nil {
		t.Errorf("aliasing: Wait: %v", err)
		return
	}
	if v, err := decodeEcho(resp); err != nil || v != 4242 {
		t.Errorf("aliasing: clobbered-request echo = %d, %v (want 4242): backend retained the caller's buffer past Call", v, err)
	}

	// --- pipelined Calls, every request clobbered, harvested out of order ------
	const n = 8
	handles := make([]core.Handle, n)
	for i := range handles {
		m := encodeEcho(int64(9000 + i))
		if m == nil {
			return
		}
		if handles[i], err = be.Call(target, m); err != nil {
			t.Errorf("aliasing: pipelined Call %d: %v", i, err)
			return
		}
		for j := range m {
			m[j] = byte(i) // distinct garbage per request
		}
	}
	for i := n - 1; i >= 0; i-- {
		r, err := be.Wait(handles[i])
		if err != nil {
			t.Errorf("aliasing: pipelined Wait %d: %v", i, err)
			return
		}
		if v, err := decodeEcho(r); err != nil || v != int64(9000+i) {
			t.Errorf("aliasing: pipelined echo %d = %d, %v (want %d)", i, v, err, 9000+i)
		}
	}

	// --- Dispatch responses are scratch: valid until the next Dispatch ----------
	// The host runtime is itself a Server; local dispatches execute the same
	// handler path a serve loop drives. Each response is consumed before the
	// next Dispatch, and scribbling over a stale response must not corrupt a
	// later one — they may share the same scratch buffer.
	m1 := encodeEcho(7)
	m2 := encodeEcho(8)
	if m1 == nil || m2 == nil {
		return
	}
	r1 := rt.Dispatch(m1)
	if v, err := decodeEcho(r1); err != nil || v != 7 {
		t.Errorf("aliasing: dispatch echo = %d, %v (want 7)", v, err)
		return
	}
	for i := range r1 { // r1's validity window ends at the next Dispatch
		r1[i] = 0xEE
	}
	r2 := rt.Dispatch(m2)
	if v, err := decodeEcho(r2); err != nil || v != 8 {
		t.Errorf("aliasing: dispatch after clobbered response = %d, %v (want 8): response scratch not re-armed between dispatches", v, err)
	}
}

// ExerciseBatch runs the message-batching side of the contract: with a
// BatchPolicy armed, queued offloads coalesce into batch frames yet behave
// exactly like individual offloads — results arrive in submission order, a
// failing handler poisons only its own future, frames split under count and
// byte caps, unflushed futures self-flush in Get, and plain Async offloads
// interleave freely. The target needs no configuration: batch frames are
// recognised by magic on any runtime. It must run in the host's execution
// context; the runtime's batching policy is restored on return.
func ExerciseBatch(t Reporter, rt *core.Runtime, target core.NodeID) {
	saved := rt.Batching()
	defer rt.SetBatching(saved)
	rt.SetBatching(core.BatchPolicy{MaxMessages: 8})

	// --- ordering across frames ----------------------------------------------
	// 20 offloads under MaxMessages 8 ship as 8+8+4; the futures must still
	// settle to their own submissions, in submission order.
	fns := make([]core.Functor[int64], 20)
	for i := range fns {
		fns[i] = cfEcho.Bind(int64(i * 3))
	}
	for i, f := range core.AsyncBatch(rt, target, fns) {
		if v, err := f.Get(); err != nil || v != int64(i*3) {
			t.Errorf("batch: future %d = %d, %v (want %d)", i, v, err, i*3)
		}
	}

	// --- mixed result types in one frame ---------------------------------------
	b := core.NewBatcher(rt)
	fe := core.BatchAdd(b, target, cfEcho.Bind(404))
	fc := core.BatchAdd(b, target, cfConcat.Bind("bat", "ched"))
	if n := b.Pending(target); n != 2 {
		t.Errorf("batch: Pending = %d (want 2)", n)
	}
	b.FlushAll()
	if v, err := fe.Get(); err != nil || v != 404 {
		t.Errorf("batch: mixed echo = %d, %v", v, err)
	}
	if s, err := fc.Get(); err != nil || s != "batched" {
		t.Errorf("batch: mixed concat = %q, %v", s, err)
	}

	// --- per-message error isolation -------------------------------------------
	f1 := core.BatchAdd(b, target, cfEcho.Bind(21))
	ff := core.BatchAdd(b, target, cfFail.Bind())
	f2 := core.BatchAdd(b, target, cfEcho.Bind(22))
	b.FlushAll()
	if v, err := f1.Get(); err != nil || v != 21 {
		t.Errorf("batch: echo before failing entry = %d, %v", v, err)
	}
	if _, err := ff.Get(); err == nil || !strings.Contains(err.Error(), "deliberate failure") {
		t.Errorf("batch: failing entry = %v (want deliberate failure)", err)
	}
	if v, err := f2.Get(); err != nil || v != 22 {
		t.Errorf("batch: echo after failing entry = %d, %v", v, err)
	}

	// --- Get on an unflushed future forces the flush ----------------------------
	lone := core.BatchAdd(b, target, cfEcho.Bind(77))
	if v, err := lone.Get(); err != nil || v != 77 {
		t.Errorf("batch: self-flushing future = %d, %v", v, err)
	}

	// --- byte-capped splitting ---------------------------------------------------
	rt.SetBatching(core.BatchPolicy{MaxMessages: 1 << 20, MaxBytes: 256})
	caps := make([]core.Functor[int64], 12)
	for i := range caps {
		caps[i] = cfEcho.Bind(int64(1000 + i))
	}
	for i, f := range core.AsyncBatch(rt, target, caps) {
		if v, err := f.Get(); err != nil || v != int64(1000+i) {
			t.Errorf("batch: byte-capped future %d = %d, %v", i, v, err)
		}
	}

	// --- plain offloads interleave with batched ones -----------------------------
	rt.SetBatching(core.BatchPolicy{MaxMessages: 4})
	bi := core.NewBatcher(rt)
	fb := core.BatchAdd(bi, target, cfEcho.Bind(51))
	if v, err := core.Sync(rt, target, cfEcho.Bind(52)); err != nil || v != 52 {
		t.Errorf("batch: plain sync among queued batch = %d, %v", v, err)
	}
	bi.FlushAll()
	if v, err := fb.Get(); err != nil || v != 51 {
		t.Errorf("batch: queued future around plain sync = %d, %v", v, err)
	}

	// --- validation ---------------------------------------------------------------
	if _, err := core.BatchAdd(bi, rt.ThisNode(), cfEcho.Bind(1)).Get(); err == nil {
		t.Errorf("batch: offload to self accepted")
	}
	if _, err := core.BatchAdd(bi, core.NodeID(rt.NumNodes()+5), cfEcho.Bind(1)).Get(); err == nil {
		t.Errorf("batch: offload to missing node accepted")
	}
}

// ExerciseBatchRetry pins the interaction of batching with fault tolerance:
// under an armed injector (fed through the backend or the machine substrate)
// and a retry policy on rt, every message of every batch frame executes
// exactly once — a retransmitted frame's sub-envelopes land in the target's
// dedup window, which answers them from cache instead of re-executing. The
// effectful bump counter makes any violation visible: n batched bumps must
// leave the counter at exactly n and return a permutation of 1..n. It must
// run in the host's execution context with rt's retry policy armed; inj may
// be nil when the caller cannot observe the injector directly.
func ExerciseBatchRetry(t Reporter, rt *core.Runtime, target core.NodeID, inj *faults.Injector) {
	saved := rt.Batching()
	defer rt.SetBatching(saved)
	rt.SetBatching(core.BatchPolicy{MaxMessages: 4})

	buf, err := core.Allocate[int64](rt, target, 1)
	if err != nil {
		t.Errorf("batch-retry: Allocate: %v", err)
		return
	}
	defer func() { _ = core.Free(rt, buf) }()
	if err := core.Put(rt, []int64{0}, buf); err != nil {
		t.Errorf("batch-retry: Put: %v", err)
		return
	}

	const n = 20
	fns := make([]core.Functor[int64], n)
	for i := range fns {
		fns[i] = cfBump.Bind(buf)
	}
	seen := make([]bool, n+1)
	for i, f := range core.AsyncBatch(rt, target, fns) {
		v, err := f.Get()
		if err != nil {
			t.Errorf("batch-retry: bump %d under injection = %v", i, err)
			return
		}
		// Retried frames may execute after later frames, so the values are a
		// permutation of 1..n, not necessarily in submission order.
		if v < 1 || v > n || seen[v] {
			t.Errorf("batch-retry: bump %d returned %d — duplicate or out-of-range execution", i, v)
			return
		}
		seen[v] = true
	}
	final := make([]int64, 1)
	if err := core.Get(rt, buf, final); err != nil {
		t.Errorf("batch-retry: Get: %v", err)
		return
	}
	if final[0] != n {
		t.Errorf("batch-retry: counter = %d after %d batched bumps (want exactly %d)", final[0], n, n)
	}
	if inj != nil && inj.Injected() == 0 {
		t.Errorf("batch-retry: injector armed but nothing fired")
	}
}

// ExerciseBackpressure saturates the target far past the backend's
// in-flight capacity (the slot protocols hold 8 message slots; this issues
// 96 asyncs back to back) and pins what saturation is allowed to look like:
// a Call either queues behind the busy slots or rejects at submission with
// an error — it may not hang, and above all it may not lose track of a
// future. Every future settles exactly once (pre-registered OnSettle
// counters catch both drops and double-settles), every successful echo
// carries its own payload, and the futures are harvested in a deterministic
// scattered order so late settles of early submissions must still resolve.
// It must run in the host's execution context.
func ExerciseBackpressure(t Reporter, rt *core.Runtime, target core.NodeID) {
	const n = 96 // ≫ the 8 slots of the slot protocols
	futs := make([]*core.Future[int64], n)
	settles := make([]int, n)
	for i := range futs {
		f := core.Async(rt, target, cfEcho.Bind(int64(i)))
		i := i
		f.OnSettle(func() { settles[i]++ })
		futs[i] = f
	}

	// Harvest in a fixed scattered order: stride 29 is coprime to 96, so the
	// walk is a permutation that interleaves early and late submissions. A
	// backend that recycled a slot while its old future was still unsettled
	// would corrupt or drop one of these.
	for k := 0; k < n; k++ {
		i := (k * 29) % n
		v, err := futs[i].Get()
		if err != nil {
			// Rejection at saturation is allowed, but only as a clean error on
			// this future — the echo contract below catches a response that was
			// delivered to the wrong future instead.
			continue
		}
		if v != int64(i) {
			t.Errorf("backpressure: future %d settled to %d — response crossed futures", i, v)
		}
	}
	for i, c := range settles {
		if c != 1 {
			t.Errorf("backpressure: future %d settled %d times (want exactly once)", i, c)
		}
	}

	// A second identical wave must behave identically: saturation may queue
	// or reject, but deterministically — the same submission schedule yields
	// the same per-future outcome.
	first := make([]bool, n)
	for i, f := range futs {
		_, err := f.Get() // settled above; records the outcome
		first[i] = err == nil
	}
	futs2 := make([]*core.Future[int64], n)
	for i := range futs2 {
		futs2[i] = core.Async(rt, target, cfEcho.Bind(int64(i)))
	}
	for k := 0; k < n; k++ {
		i := (k * 29) % n
		v, err := futs2[i].Get()
		if (err == nil) != first[i] {
			t.Errorf("backpressure: future %d outcome changed between identical waves (err %v)", i, err)
		}
		if err == nil && v != int64(i) {
			t.Errorf("backpressure: second-wave future %d settled to %d", i, v)
		}
	}

	// The backend must be fully live after both saturation waves.
	if v, err := core.Sync(rt, target, cfEcho.Bind(4096)); err != nil || v != 4096 {
		t.Errorf("backpressure: echo after saturation = %d, %v", v, err)
	}
}

// ExerciseErrors pins down the error-propagation side of the contract: a
// handler error surfaces identically through Future.Get and Future.MustGet
// (the latter by panicking with the same error), and the backend stays live
// afterwards. It must run in the host's execution context.
func ExerciseErrors(t Reporter, rt *core.Runtime, target core.NodeID) {
	_, getErr := core.Async(rt, target, cfFail.Bind()).Get()
	if getErr == nil || !strings.Contains(getErr.Error(), "deliberate failure") {
		t.Errorf("errors: Get = %v (want the handler's deliberate failure)", getErr)
		return
	}

	var panicked error
	func() {
		defer func() {
			if r := recover(); r != nil {
				err, ok := r.(error)
				if !ok {
					t.Errorf("errors: MustGet panicked with %T %v (want error)", r, r)
					return
				}
				panicked = err
			}
		}()
		core.Async(rt, target, cfFail.Bind()).MustGet()
	}()
	if panicked == nil {
		t.Errorf("errors: MustGet did not panic on a handler error")
	} else if panicked.Error() != getErr.Error() {
		t.Errorf("errors: MustGet panic %q differs from Get error %q", panicked, getErr)
	}

	if v, err := core.Sync(rt, target, cfEcho.Bind(31)); err != nil || v != 31 {
		t.Errorf("errors: echo after failures = %d, %v", v, err)
	}
}

// FaultHooks adapts one backend's failure controls to ExerciseFaults. Inj
// is the armed injector feeding the backend, if any; Kill fails the target
// node; Recover (optional) re-establishes it, restarting whatever serve
// loop the backend needs.
type FaultHooks struct {
	Inj     *faults.Injector
	Kill    func() error
	Recover func() error
}

// ExerciseFaults is the fault-tolerance contract: offloads survive armed
// transient injection (given a retry policy on rt), a killed node fails
// in-flight and new offloads with core.ErrNodeFailed instead of hanging,
// and — when the backend supports recovery — offloads succeed again after
// RecoverNode. It must run in the host's execution context.
func ExerciseFaults(t Reporter, rt *core.Runtime, target core.NodeID, hooks FaultHooks) {
	if v, err := core.Sync(rt, target, cfEcho.Bind(11)); err != nil || v != 11 {
		t.Errorf("faults: pre-fault echo = %d, %v", v, err)
		return
	}

	// --- transient faults are survived, not surfaced --------------------------
	if hooks.Inj != nil {
		for i := int64(0); i < 16; i++ {
			if v, err := core.Sync(rt, target, cfEcho.Bind(100+i)); err != nil || v != 100+i {
				t.Errorf("faults: echo %d under injection = %d, %v", i, v, err)
			}
		}
		if hooks.Inj.Injected() == 0 {
			t.Errorf("faults: injector armed but nothing fired")
		}
	}

	if hooks.Kill == nil {
		return
	}

	// --- node failure ----------------------------------------------------------
	inflight := core.Async(rt, target, cfEcho.Bind(42))
	if err := hooks.Kill(); err != nil {
		t.Errorf("faults: kill: %v", err)
		return
	}
	// The in-flight offload raced the kill: a response that made it out is
	// fine, anything else must resolve to ErrNodeFailed — never a hang.
	if v, err := inflight.Get(); err == nil {
		if v != 42 {
			t.Errorf("faults: in-flight offload across node death = %d (want 42)", v)
		}
	} else if !errors.Is(err, core.ErrNodeFailed) {
		t.Errorf("faults: in-flight offload across node death = %v (want ErrNodeFailed)", err)
	}
	if _, err := core.Sync(rt, target, cfEcho.Bind(43)); !errors.Is(err, core.ErrNodeFailed) {
		t.Errorf("faults: offload to dead node = %v (want ErrNodeFailed)", err)
	}

	if hooks.Recover == nil {
		return
	}

	// --- recovery --------------------------------------------------------------
	if err := hooks.Recover(); err != nil {
		t.Errorf("faults: recover: %v", err)
		return
	}
	if v, err := core.Sync(rt, target, cfEcho.Bind(44)); err != nil || v != 44 {
		t.Errorf("faults: echo after recovery = %d, %v", v, err)
	}
}

// ExerciseTrace extends the contract to observability: with tracing attached,
// one synchronous offload must emit the mandatory lifecycle spans — offload,
// encode, call and wait on the initiating node, and execute on the serving
// node — and the initiator-side sub-spans must nest inside the offload span.
// It must run in the host's execution context, after the backend and both
// runtimes have been wired to tr.
func ExerciseTrace(t Reporter, rt *core.Runtime, target core.NodeID, tr *trace.Tracer) {
	before := tr.Len()
	if v, err := core.Sync(rt, target, cfEcho.Bind(99)); err != nil || v != 99 {
		t.Errorf("traced echo = %d, %v", v, err)
		return
	}
	spans := tr.Spans()[before:]

	pick := func(ph trace.Phase, node int) (trace.Span, bool) {
		for _, s := range spans {
			if s.Phase == ph && s.Node == node {
				return s, true
			}
		}
		return trace.Span{}, false
	}
	self := int(rt.ThisNode())
	offl, okOffl := pick(trace.PhaseOffload, self)
	for _, ph := range []trace.Phase{trace.PhaseOffload, trace.PhaseEncode,
		trace.PhaseCall, trace.PhaseWait} {
		s, ok := pick(ph, self)
		if !ok {
			t.Errorf("mandatory %q span missing on initiating node %d", ph, self)
			continue
		}
		if s.Backend == "" {
			t.Errorf("%q span lacks a backend label", ph)
		}
		// The sub-spans share the initiator's clock, so nesting inside the
		// offload span is well defined even for wall-clock backends.
		if okOffl && ph != trace.PhaseOffload && (s.Start < offl.Start || s.End > offl.End) {
			t.Errorf("%q span [%d..%d] escapes the offload span [%d..%d]",
				ph, s.Start, s.End, offl.Start, offl.End)
		}
	}
	if _, ok := pick(trace.PhaseExecute, int(target)); !ok {
		t.Errorf("mandatory %q span missing on serving node %d", trace.PhaseExecute, target)
	}
}

// ExerciseHedging extends the contract to hedged requests: with fault
// tolerance and a same-node hedge armed, every synchronous offload races a
// speculative duplicate of itself, and the target's dedup window must keep
// the effectful handler at exactly-once no matter which copy settles first.
// More offloads than the protocol has message slots run back to back, so
// abandoned hedge-loser handles must recycle their slots instead of wedging
// the connection. It must run in the host's execution context.
func ExerciseHedging(t Reporter, rt *core.Runtime, target core.NodeID) {
	savedFT := rt.FaultTolerancePolicy()
	savedHedge := rt.HedgingPolicy()
	savedBudget := rt.RetryBudgetPolicy()
	defer func() {
		rt.SetFaultTolerance(savedFT)
		rt.SetHedging(savedHedge)
		rt.SetRetryBudget(savedBudget)
	}()
	rt.SetFaultTolerance(core.FaultTolerance{MaxRetries: 3})
	// A delay of one simulated nanosecond fires the hedge on the first paced
	// poll of every offload on the simulated backends; wall-clock backends
	// hedge immediately by contract. Either way every offload duplicates,
	// which is the worst case the dedup window must absorb. The ample budget
	// exercises the token-spend path without ever denying.
	rt.SetHedging(core.HedgePolicy{Delay: simtime.Nanosecond})
	rt.SetRetryBudget(core.RetryBudget{Tokens: 256})

	buf, err := core.Allocate[int64](rt, target, 1)
	if err != nil {
		t.Errorf("hedging: Allocate: %v", err)
		return
	}
	defer func() { _ = core.Free(rt, buf) }()
	if err := core.Put(rt, []int64{0}, buf); err != nil {
		t.Errorf("hedging: Put: %v", err)
		return
	}

	hedgesBefore := rt.Hedges()
	const n = 20 // more than the default 8 message slots: losers must recycle
	for i := int64(1); i <= n; i++ {
		v, err := core.Sync(rt, target, cfBump.Bind(buf))
		if err != nil {
			t.Errorf("hedging: bump %d = %v", i, err)
			return
		}
		// Synchronous, hedged, deduped: the counter must advance by exactly
		// one per offload — a duplicate execution would skip ahead.
		if v != i {
			t.Errorf("hedging: bump %d returned %d — hedge duplicate executed", i, v)
			return
		}
	}
	final := make([]int64, 1)
	if err := core.Get(rt, buf, final); err != nil {
		t.Errorf("hedging: Get: %v", err)
		return
	}
	if final[0] != n {
		t.Errorf("hedging: counter = %d after %d hedged bumps (want exactly %d)", final[0], n, n)
	}
	if got := rt.Hedges() - hedgesBefore; got < 1 {
		t.Errorf("hedging: no hedge fired across %d offloads", n)
	}
	if rt.BudgetDenied() != 0 {
		t.Errorf("hedging: ample budget denied %d times", rt.BudgetDenied())
	}

	// The connection must be fully live afterwards.
	if v, err := core.Sync(rt, target, cfEcho.Bind(61)); err != nil || v != 61 {
		t.Errorf("hedging: echo after hedged run = %d, %v", v, err)
	}
}

// ExerciseGrayFailure is the health-scored scheduling contract: a fail-slow
// node must be ejected by its circuit breaker, traffic must route around it
// while it is open, and after the cooldown a probe offload must re-admit
// it. Offloads are real; the latency observations fed to the tracker are
// synthetic (a healthy 5 µs versus a sick 60 µs), so the exercise is
// deterministic on wall-clock and simulated backends alike. targets are
// rt's offload targets, sick the one to degrade; with a single target the
// policy must fail open and keep serving it. It must run in the host's
// execution context.
func ExerciseGrayFailure(t Reporter, rt *core.Runtime, targets []core.NodeID, sick core.NodeID) {
	const (
		healthyLat = 5 * simtime.Microsecond
		sickLat    = 60 * simtime.Microsecond
	)
	cfg := health.Config{
		OutlierFactor:  3,
		OutlierStrikes: 4,
		FailureStrikes: 3,
		OpenFor:        100 * simtime.Microsecond,
	}
	var now simtime.Time
	trk := health.New(cfg, targets, func() simtime.Time { return now })
	pol := sched.HealthAware(sched.RoundRobin(), trk)
	inflight := make([]int, len(targets))

	// offloadVia picks through the health-aware policy, runs a real echo on
	// the picked node, and feeds the tracker a synthetic latency shaped by
	// the node's (pretend) condition.
	offloadVia := func(slow bool) core.NodeID {
		i := pol.Pick(0, targets, inflight)
		if i < 0 || i >= len(targets) {
			t.Errorf("gray: policy picked %d of %d nodes", i, len(targets))
			return -1
		}
		n := targets[i]
		if v, err := core.Sync(rt, n, cfEcho.Bind(int64(n))); err != nil || v != int64(n) {
			t.Errorf("gray: echo via node %d = %d, %v", n, v, err)
		}
		lat := healthyLat
		if slow {
			lat = sickLat
		}
		trk.Observe(n, lat, false)
		now = now.Add(lat)
		return n
	}

	// --- phase 1: warm-up — every node healthy, all breakers closed ------------
	for range targets {
		offloadVia(false)
	}
	for _, n := range targets {
		if trk.StateOf(n) != health.Closed || !trk.Allows(n) {
			t.Errorf("gray: node %d not closed/allowed after healthy warm-up", n)
		}
	}

	// --- phase 2: degrade the sick node until its breaker opens ----------------
	// Feed the sick node consecutive outlier observations directly (as its
	// settlements would under real degradation) until the breaker trips.
	if len(targets) > 1 {
		for i := 0; i < cfg.OutlierStrikes; i++ {
			if v, err := core.Sync(rt, sick, cfEcho.Bind(int64(sick))); err != nil || v != int64(sick) {
				t.Errorf("gray: echo on sick node %d = %d, %v", sick, v, err)
			}
			trk.Observe(sick, sickLat, false)
			now = now.Add(sickLat)
		}
	} else {
		// A lone target has no healthy reference for outlier detection; trip
		// the breaker through consecutive failures instead.
		for i := 0; i < cfg.FailureStrikes; i++ {
			trk.Observe(sick, 0, true)
		}
	}
	if trk.StateOf(sick) != health.Open {
		t.Errorf("gray: sick node %d not ejected (state %v)", sick, trk.StateOf(sick))
		return
	}
	if trk.Allows(sick) {
		t.Errorf("gray: open breaker admits traffic inside its cooldown")
	}

	// --- phase 3: traffic routes around the ejected node -----------------------
	if len(targets) > 1 {
		for i := 0; i < 2*len(targets); i++ {
			if n := offloadVia(false); n == sick {
				t.Errorf("gray: offload %d landed on ejected node %d", i, sick)
			}
		}
	} else {
		// Fail open: degraded service beats no service.
		// (The breaker stays open; observations while open are stats-only.)
		prev := trk.StateOf(sick)
		if n := offloadVia(true); n != sick {
			t.Errorf("gray: single-target policy must fail open to node %d, picked %d", sick, n)
		}
		if trk.StateOf(sick) != prev {
			t.Errorf("gray: fail-open traffic moved the breaker")
		}
		return // no healthy sibling: probing/re-admission has nothing to route around
	}

	// --- phase 4: cooldown elapses, a probe re-admits the node -----------------
	now = now.Add(cfg.OpenFor)
	if !trk.Allows(sick) {
		t.Errorf("gray: elapsed cooldown must make the sick node probeable")
	}
	probed := false
	for i := 0; i < 2*len(targets) && !probed; i++ {
		if offloadVia(false) == sick {
			probed = true
		}
	}
	if !probed {
		t.Errorf("gray: no probe reached node %d after its cooldown", sick)
		return
	}
	if trk.StateOf(sick) != health.Closed {
		t.Errorf("gray: successful probe left node %d %v (want closed)", sick, trk.StateOf(sick))
	}

	// --- phase 5: the re-admitted node serves again ----------------------------
	served := false
	for i := 0; i < 2*len(targets); i++ {
		if offloadVia(false) == sick {
			served = true
		}
	}
	if !served {
		t.Errorf("gray: re-admitted node %d got no traffic", sick)
	}
	if trk.Transitions() < 3 {
		t.Errorf("gray: %d breaker transitions, want the full closed->open->half-open->closed cycle", trk.Transitions())
	}
}
