package veob

import (
	"hamoffload/internal/backend/adapter"
	"hamoffload/internal/mem"
	"hamoffload/internal/topology"
	"hamoffload/internal/vecore"
)

type topoTiming = topology.Timing

var hostModel = vecore.DefaultHostModel()

func memA(a uint64) mem.Addr { return mem.Addr(a) }

// VEHeap is re-exported for the target backend's memory.
type VEHeap = adapter.VEHeap
