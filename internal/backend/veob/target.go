package veob

import (
	"fmt"

	"hamoffload/internal/backend/slots"
	"hamoffload/internal/core"
	"hamoffload/internal/ham"
	"hamoffload/internal/simtime"
	"hamoffload/internal/trace"
	"hamoffload/internal/veos"
)

// LibraryName is the VE library containing the backend's C-API kernels and
// ham_main — the build product of Fig. 4's target-side compilation.
const LibraryName = "libham-offload-veob.so"

// targetState carries the communication-area description from ham_comm_init
// to ham_main within one VE process.
type targetState struct {
	lay      layout
	arch     string
	selfNode int
	numNodes int
}

// states holds per-card target state. The simulation is single-threaded per
// engine, so a plain map suffices.
var states = map[*veos.Card]*targetState{}

func init() {
	veos.RegisterLibrary(LibraryName, veos.Library{
		// ham_comm_init receives the addresses of the host-managed
		// communication data structures (Fig. 4's HAM-Offload C-API).
		"ham_comm_init": func(ctx *veos.Ctx, args []uint64) (uint64, error) {
			if len(args) != 6 {
				return 0, fmt.Errorf("veob: ham_comm_init wants 6 args, got %d", len(args))
			}
			card := ctx.Context.Process().Card()
			st := &targetState{
				selfNode: int(args[4]),
				numNodes: int(args[5]),
			}
			st.lay = makeLayout(Options{
				NumBuffers:   int(args[1]),
				BufSize:      int(args[2]),
				ResultInline: int(args[3]),
			}, args[0])
			states[card] = st
			return 0, nil
		},
		// ham_main runs the HAM-Offload runtime's message-processing loop —
		// the renamed main() of the target binary (§III-C).
		"ham_main": func(ctx *veos.Ctx, args []uint64) (uint64, error) {
			card := ctx.Context.Process().Card()
			st, ok := states[card]
			if !ok {
				return 1, fmt.Errorf("veob: ham_main before ham_comm_init on VE %d", card.ID)
			}
			nt := card.Timing.Tracer.Node(st.selfNode, "veob", ctx.P)
			t := &Target{kctx: ctx, st: st, heap: &VEHeap{VE: card.Mem}, nt: nt}
			rt := core.NewRuntime(t, st.arch)
			rt.SetTracer(nt)
			rt.SetTelemetry(card.Timing.Telemetry, ctx.P)
			if err := rt.Serve(); err != nil {
				return 1, err
			}
			return 0, nil
		},
	})
}

// Target is the VE-side backend: it polls the receive flags in local memory,
// executes messages, and leaves results in the local send slots for the host
// to fetch.
type Target struct {
	kctx *veos.Ctx
	st   *targetState
	heap *VEHeap
	nt   *trace.NodeTracer
}

// Self implements core.Backend.
func (t *Target) Self() core.NodeID { return core.NodeID(t.st.selfNode) }

// NumNodes implements core.Backend.
func (t *Target) NumNodes() int { return t.st.numNodes }

// Descriptor implements core.Backend.
func (t *Target) Descriptor(n core.NodeID) core.NodeDescriptor {
	if n == t.Self() {
		return core.NodeDescriptor{
			Name:   fmt.Sprintf("ve%d", t.kctx.Context.Process().Card().ID),
			Arch:   t.st.arch,
			Device: "NEC VE Type 10B",
		}
	}
	if n == 0 {
		return core.NodeDescriptor{Name: "vh", Arch: "x86_64", Device: "Vector Host"}
	}
	return core.NodeDescriptor{Name: fmt.Sprintf("node%d", n)}
}

// Call implements core.Backend; the VEO protocol is host-initiated only.
func (t *Target) Call(core.NodeID, []byte) (core.Handle, error) {
	return nil, fmt.Errorf("veob: targets cannot initiate offloads in the VEO protocol")
}

// Wait implements core.Backend.
func (t *Target) Wait(core.Handle) ([]byte, error) {
	return nil, fmt.Errorf("veob: targets cannot initiate offloads in the VEO protocol")
}

// Poll implements core.Backend.
func (t *Target) Poll(core.Handle) ([]byte, bool, error) {
	return nil, false, fmt.Errorf("veob: targets cannot initiate offloads in the VEO protocol")
}

// Put implements core.Backend.
func (t *Target) Put(core.NodeID, []byte, uint64) error {
	return fmt.Errorf("veob: targets cannot initiate transfers in the VEO protocol")
}

// Get implements core.Backend.
func (t *Target) Get(core.NodeID, uint64, []byte) error {
	return fmt.Errorf("veob: targets cannot initiate transfers in the VEO protocol")
}

// Serve implements core.Backend: the message-processing loop of §III-D. The
// runtime polls the next receive buffer's flag in local memory; when the
// host has written a message, it is executed through HAM and the result
// message is written into the paired send slot.
func (t *Target) Serve(s core.Server) error {
	card := t.kctx.Context.Process().Card()
	tm := card.Timing
	lay := t.st.lay
	seq := make([]uint32, lay.nbuf)
	next := 0

	const backoffAfter = 500 * simtime.Microsecond
	interval := tm.HAMVEPollInterval
	var idle simtime.Duration

	for !s.Done() {
		if card.Crashed() {
			// The VE process died under us (injected crash): stop serving
			// instead of spinning on a dead machine.
			return fmt.Errorf("veob: serve aborted: %w", veos.ErrCrashed)
		}
		pollStart := t.nt.Now()
		flag, err := card.Mem.HBM.ReadUint64(memA(lay.recvFlagAddr(next)))
		if err != nil {
			return err
		}
		n, ok := slots.Decode(flag, seq[next])
		if !ok {
			p := t.kctx.P
			p.Sleep(interval)
			idle += interval
			if idle >= backoffAfter && interval < tm.HAMVEPollInterval*512 {
				interval *= 2
			}
			continue
		}
		interval = tm.HAMVEPollInterval
		idle = 0
		mid := int64(seq[next])*int64(lay.nbuf) + int64(next)
		seq[next]++
		t.nt.Since(trace.PhasePoll, "veob-poll-hit", mid, pollStart)

		// Fetch the message from the local receive buffer. The fetch span
		// also covers the fixed VE-side framework overhead (HAMVEOverhead).
		endFetch := t.nt.Begin(trace.PhaseFetch, "veob-fetch", mid)
		msg := make([]byte, n)
		if err := card.Mem.HBM.ReadAt(msg, memA(lay.recvBufAddr(next))); err != nil {
			endFetch()
			return err
		}
		t.kctx.P.Sleep(simtime.BytesOver(int64(n), tm.VEMemCopyRate) + tm.HAMVEOverhead)
		endFetch()

		resp := s.Dispatch(msg)
		endResult := t.nt.Begin(trace.PhaseResult, "veob-result", mid)
		rerr := t.respond(lay, next, flagSeqOf(flag), resp)
		endResult()
		if rerr != nil {
			return rerr
		}
		next = (next + 1) % lay.nbuf
	}
	return nil
}

func flagSeqOf(flag uint64) uint32 { return uint32(flag >> 24) }

// respond writes the result message into the send slot paired with the
// receive slot: inline payload adjacent to the flag, overflow into the
// extra area, flag written last (the §III-D ordering).
func (t *Target) respond(lay layout, slot int, seq uint32, resp []byte) error {
	card := t.kctx.Context.Process().Card()
	tm := card.Timing
	if len(resp) > lay.bufSize+lay.resultInline {
		resp = overflowError(len(resp))
	}
	inline := len(resp)
	if inline > lay.resultInline {
		inline = lay.resultInline
	}
	if err := card.Mem.HBM.WriteAt(resp[:inline], memA(lay.sendSlotAddr(slot)+slots.FlagBits)); err != nil {
		return err
	}
	if len(resp) > inline {
		if err := card.Mem.HBM.WriteAt(resp[inline:], memA(lay.sendExtraAddr(slot))); err != nil {
			return err
		}
	}
	t.kctx.P.Sleep(simtime.BytesOver(int64(len(resp)), tm.VEMemCopyRate))
	return card.Mem.HBM.WriteUint64(memA(lay.sendSlotAddr(slot)), slots.Encode(seq, len(resp)))
}

// overflowError produces a failure response when a result exceeds the
// protocol's buffer capacity.
func overflowError(n int) []byte {
	return ham.EncodeFailure(fmt.Sprintf("veob: result of %d bytes exceeds the send buffer", n))
}

// Memory implements core.Backend.
func (t *Target) Memory() core.LocalMemory { return t.heap }

// ChargeVector implements core.Backend using the VE roofline model.
func (t *Target) ChargeVector(flops, bytes int64, cores int) {
	t.kctx.ChargeVector(flops, bytes, cores)
}

// ChargeScalar implements core.Backend.
func (t *Target) ChargeScalar(ops int64) {
	t.kctx.ChargeScalar(ops)
}

// Close implements core.Backend.
func (t *Target) Close() error { return nil }

var _ core.Backend = (*Target)(nil)

// SetTargetArch stores the architecture label the next ham_main on card will
// use for its HAM binary. In a real deployment this is a property of the
// compiled target binary; the host-side Connect records it after
// ham_comm_init.
func SetTargetArch(card *veos.Card, arch string) {
	if st, ok := states[card]; ok {
		st.arch = arch
	}
}
