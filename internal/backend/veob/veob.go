// Package veob implements the paper's VEO-based communication protocol
// (§III-D, Fig. 5): a one-sided protocol coordinated by the Vector Host.
// Message and result buffers live in VE memory; the host writes offload
// messages and notification flags with veo_write_mem and polls result flags
// with veo_read_mem, so every protocol step rides on VEOS' privileged DMA
// with its high per-operation latency. The VE side finds messages in its
// local memory, executes them, and leaves results in its local send buffers.
//
// One optimisation over the figure's literal four-transfer sequence is kept
// from the paper's "piggybacking" remark: each result flag is adjacent to
// its result buffer, so the host fetches flag and (small) result in a single
// veo_read_mem. Results larger than the slot's inline capacity cost one
// extra read.
package veob

import (
	"errors"
	"fmt"

	"hamoffload/internal/backend/adapter"
	"hamoffload/internal/backend/slots"
	"hamoffload/internal/core"
	"hamoffload/internal/simtime"
	"hamoffload/internal/trace"
	"hamoffload/internal/veo"
	"hamoffload/internal/veos"
)

// Options configures the protocol.
type Options struct {
	// NumBuffers is the number of message slots per direction (default 8).
	NumBuffers int
	// BufSize is the capacity of one message buffer (default 4 KiB).
	BufSize int
	// ResultInline is the result payload fetched together with the flag in
	// one read (default 248, making flag+inline one 256-byte slot).
	ResultInline int
	// TargetArch labels the VE binary for HAM's translation tables
	// (default "aurora-ve").
	TargetArch string
	// OffloadTimeout bounds how long one offload may stay in flight before
	// Wait gives up with core.ErrOffloadTimeout, measured on the simulated
	// clock from the start of the wait. Zero waits forever (the pre-fault-
	// tolerance behaviour).
	OffloadTimeout simtime.Duration
}

func (o *Options) fill() {
	if o.NumBuffers <= 0 {
		o.NumBuffers = 8
	}
	if o.BufSize <= 0 {
		o.BufSize = 4096
	}
	if o.ResultInline <= 0 {
		o.ResultInline = 248
	}
	// SHM stores and flag adjacency work at word granularity.
	o.ResultInline = (o.ResultInline + 7) &^ 7
	if o.TargetArch == "" {
		o.TargetArch = "aurora-ve"
	}
}

// layout describes the communication area in VE memory.
type layout struct {
	nbuf         int
	bufSize      int
	resultInline int

	base      uint64 // single veo_alloc_mem block
	recvFlags uint64 // nbuf × 8
	recvBufs  uint64 // nbuf × bufSize
	sendSlots uint64 // nbuf × (8 + resultInline): flag adjacent to inline result
	sendExtra uint64 // nbuf × bufSize overflow area for large results
}

func makeLayout(o Options, base uint64) layout {
	l := layout{nbuf: o.NumBuffers, bufSize: o.BufSize, resultInline: o.ResultInline, base: base}
	off := base
	l.recvFlags = off
	off += uint64(l.nbuf * slots.FlagBits)
	l.recvBufs = off
	off += uint64(l.nbuf * l.bufSize)
	l.sendSlots = off
	off += uint64(l.nbuf * (slots.FlagBits + l.resultInline))
	l.sendExtra = off
	return l
}

func (l layout) totalSize() int64 {
	return int64(l.nbuf*slots.FlagBits + l.nbuf*l.bufSize +
		l.nbuf*(slots.FlagBits+l.resultInline) + l.nbuf*l.bufSize)
}

func (l layout) recvFlagAddr(slot int) uint64 { return l.recvFlags + uint64(slot*slots.FlagBits) }
func (l layout) recvBufAddr(slot int) uint64  { return l.recvBufs + uint64(slot*l.bufSize) }
func (l layout) sendSlotAddr(slot int) uint64 {
	return l.sendSlots + uint64(slot*(slots.FlagBits+l.resultInline))
}
func (l layout) sendExtraAddr(slot int) uint64 { return l.sendExtra + uint64(slot*l.bufSize) }

// handle tracks one in-flight offload. It pins the conn it was issued on:
// after a node recovery builds a fresh conn, stale handles must keep failing
// against the dead one instead of polling slots they never owned.
type handle struct {
	target core.NodeID
	c      *conn
	slot   int
	seq    uint32
	resp   []byte
	done   bool
}

// conn is the host-side state for one VE target.
type conn struct {
	proc   *veo.Proc
	card   *veos.Card
	lay    layout
	seq    []uint32  // next send sequence per slot
	inUse  []*handle // outstanding offload per slot
	next   int       // round-robin slot cursor
	bounce uint64    // persistent host-side bounce buffer for flag writes
	dead   bool      // VE process crashed; reject work until RecoverNode
}

// Host is the initiator-side backend running on the Vector Host. All methods
// must be called from the simulated process passed to Connect — HAM-Offload's
// host runtime is single-threaded, like the C++ original's communication
// layer.
type Host struct {
	p     *simtime.Proc
	opts  Options
	conns []*conn // index = NodeID-1
	descs []core.NodeDescriptor
	mem   core.LocalMemory
	nt    *trace.NodeTracer // nil when the cards' Timing has no Tracer
}

// mid builds the protocol-level message correlator for a slot/sequence pair.
func (c *conn) mid(slot int, seq uint32) int64 {
	return int64(seq)*int64(c.lay.nbuf) + int64(slot)
}

// Connect builds the complete Fig. 4 runtime setup for the given VE cards:
// it creates a VE process on each card, loads the application library,
// communicates the communication-area addresses through the HAM-Offload
// C-API kernels, and starts ham_main. The returned backend serves node 0;
// cards become nodes 1..len(cards).
func Connect(p *simtime.Proc, cards []*veos.Card, opts Options) (*Host, error) {
	opts.fill()
	if len(cards) == 0 {
		return nil, fmt.Errorf("veob: no target cards")
	}
	h := &Host{p: p, opts: opts}
	h.mem = &adapter.HostHeap{H: cards[0].Host}
	h.nt = cards[0].Timing.Tracer.Node(0, "veob", p)
	h.descs = append(h.descs, core.NodeDescriptor{Name: "vh", Arch: "x86_64", Device: "Intel Xeon Gold 6126 (VH)"})
	for i, card := range cards {
		c, err := h.connect(card, i+1, len(cards)+1)
		if err != nil {
			return nil, err
		}
		h.conns = append(h.conns, c)
		h.descs = append(h.descs, core.NodeDescriptor{
			Name:   fmt.Sprintf("ve%d", card.ID),
			Arch:   opts.TargetArch,
			Device: "NEC VE Type 10B",
		})
	}
	return h, nil
}

func (h *Host) connect(card *veos.Card, self, total int) (*conn, error) {
	proc, err := veo.ProcCreate(h.p, card)
	if err != nil {
		return nil, err
	}
	// A failed connect must not leak the VE process.
	ok := false
	defer func() {
		if !ok {
			_ = proc.Destroy(h.p)
		}
	}()
	lib, err := proc.LoadLibrary(h.p, LibraryName)
	if err != nil {
		return nil, err
	}
	// Allocate the communication area in VE memory; the host manages it.
	probe := makeLayout(h.opts, 0)
	base, err := proc.AllocMem(h.p, probe.totalSize())
	if err != nil {
		return nil, err
	}
	lay := makeLayout(h.opts, base)

	// Communicate the data-structure addresses through the C-API kernel
	// (Fig. 4's "HAM-Offload C-API"), then start ham_main asynchronously.
	ctx := proc.OpenContext(h.p)
	commInit, err := lib.GetSym(h.p, "ham_comm_init")
	if err != nil {
		return nil, err
	}
	if _, err := ctx.CallAsync(h.p, commInit,
		lay.base, uint64(lay.nbuf), uint64(lay.bufSize), uint64(lay.resultInline),
		uint64(self), uint64(total),
	).CallWaitResult(h.p); err != nil {
		return nil, fmt.Errorf("veob: ham_comm_init: %w", err)
	}
	// The architecture label is a property of the target binary.
	SetTargetArch(card, h.opts.TargetArch)
	hamMain, err := lib.GetSym(h.p, "ham_main")
	if err != nil {
		return nil, err
	}
	// ham_main never returns until terminated; do not wait on it.
	ctx.CallAsync(h.p, hamMain)

	bounce, err := card.Host.Alloc(int64(h.opts.BufSize) + 16)
	if err != nil {
		return nil, err
	}
	ok = true
	return &conn{
		proc:   proc,
		card:   card,
		lay:    lay,
		seq:    make([]uint32, lay.nbuf),
		inUse:  make([]*handle, lay.nbuf),
		bounce: uint64(bounce),
	}, nil
}

// Self implements core.Backend.
func (h *Host) Self() core.NodeID { return 0 }

// NumNodes implements core.Backend.
func (h *Host) NumNodes() int { return len(h.conns) + 1 }

// Descriptor implements core.Backend.
func (h *Host) Descriptor(n core.NodeID) core.NodeDescriptor {
	if int(n) < 0 || int(n) >= len(h.descs) {
		return core.NodeDescriptor{Name: "invalid"}
	}
	return h.descs[n]
}

func (h *Host) conn(target core.NodeID) (*conn, error) {
	i := int(target) - 1
	if i < 0 || i >= len(h.conns) {
		return nil, fmt.Errorf("veob: no target node %d", target)
	}
	return h.conns[i], nil
}

// Call implements core.Backend: write the message into the next free
// receive buffer on the VE, then set its notification flag — two
// veo_write_mem operations, exactly the Fig. 5 sequence.
func (h *Host) Call(target core.NodeID, msg []byte) (core.Handle, error) {
	c, err := h.conn(target)
	if err != nil {
		return nil, err
	}
	if c.dead {
		return nil, fmt.Errorf("veob: node %d: %w", target, core.ErrNodeFailed)
	}
	if len(msg) > c.lay.bufSize || len(msg) > slots.MaxLen {
		return nil, fmt.Errorf("veob: message of %d bytes exceeds buffer size %d", len(msg), c.lay.bufSize)
	}
	callStart := h.nt.Now()
	h.p.Sleep(h.timing(c).HAMHostOverhead)
	slot := c.next
	// The host manages the buffers: a slot is free again once the result of
	// its previous use has been consumed.
	if prev := c.inUse[slot]; prev != nil {
		if _, err := h.waitHandle(prev); err != nil {
			return nil, fmt.Errorf("veob: draining slot %d: %w", slot, err)
		}
	}
	seq := c.seq[slot]

	// Stage the message in host memory and write it into the VE buffer.
	if err := c.card.Host.Mem.WriteAt(msg, memA(c.bounce)); err != nil {
		return nil, err
	}
	if err := c.proc.WriteMem(h.p, c.lay.recvBufAddr(slot), c.bounce, int64(len(msg))); err != nil {
		return nil, h.stepErr(c, target, err)
	}
	// Set the notification flag (second veo_write_mem).
	if err := c.card.Host.Mem.WriteUint64(memA(c.bounce), slots.Encode(seq, len(msg))); err != nil {
		return nil, err
	}
	endFlag := h.nt.Begin(trace.PhaseFlagWrite, "veob-flag-write", c.mid(slot, seq))
	werr := c.proc.WriteMem(h.p, c.lay.recvFlagAddr(slot), c.bounce, slots.FlagBits)
	endFlag()
	if werr != nil {
		return nil, h.stepErr(c, target, werr)
	}
	// Commit the slot only now: an attempt aborted mid-sequence never set a
	// flag, so the VE — which serves its receive slots in ring order — still
	// waits for this slot and sequence number. Advancing either cursor
	// earlier would desynchronise the protocol forever; a retried attempt
	// must land in the same slot.
	c.seq[slot]++
	c.next = (c.next + 1) % c.lay.nbuf
	hd := &handle{target: target, c: c, slot: slot, seq: seq}
	c.inUse[slot] = hd
	h.nt.Since(trace.PhaseCall, "veob-call", c.mid(slot, seq), callStart)
	return hd, nil
}

// stepErr classifies a failed protocol step: a crashed VE process marks the
// conn dead and surfaces core.ErrNodeFailed; everything else — notably
// injected transient DMA errors, which core's retry layer may resubmit —
// passes through unchanged.
func (h *Host) stepErr(c *conn, target core.NodeID, err error) error {
	if errors.Is(err, veos.ErrCrashed) {
		c.dead = true
		return fmt.Errorf("veob: node %d: %w", target, core.ErrNodeFailed)
	}
	return err
}

// pollSlot performs one flag+inline-result read and, if the result is
// present, completes the handle.
func (h *Host) pollSlot(c *conn, hd *handle) (bool, error) {
	readLen := int64(slots.FlagBits + c.lay.resultInline)
	if err := c.proc.ReadMem(h.p, c.bounce, c.lay.sendSlotAddr(hd.slot), readLen); err != nil {
		return false, err
	}
	flag, err := c.card.Host.Mem.ReadUint64(memA(c.bounce))
	if err != nil {
		return false, err
	}
	n, ok := slots.Decode(flag, hd.seq)
	if !ok {
		return false, nil
	}
	resp := make([]byte, n)
	inline := n
	if inline > c.lay.resultInline {
		inline = c.lay.resultInline
	}
	if err := c.card.Host.Mem.ReadAt(resp[:inline], memA(c.bounce+slots.FlagBits)); err != nil {
		return false, err
	}
	if n > inline {
		// Large result: fetch the overflow with a second read.
		if err := c.proc.ReadMem(h.p, c.bounce, c.lay.sendExtraAddr(hd.slot), int64(n-inline)); err != nil {
			return false, err
		}
		if err := c.card.Host.Mem.ReadAt(resp[inline:], memA(c.bounce)); err != nil {
			return false, err
		}
	}
	hd.resp = resp
	hd.done = true
	if c.inUse[hd.slot] == hd {
		c.inUse[hd.slot] = nil
	}
	return true, nil
}

func (h *Host) waitHandle(hd *handle) ([]byte, error) {
	c := hd.c
	defer h.nt.Begin(trace.PhaseWait, "veob-wait", c.mid(hd.slot, hd.seq))()
	start := h.p.Now()
	for !hd.done {
		if c.dead {
			return nil, fmt.Errorf("veob: node %d: %w", hd.target, core.ErrNodeFailed)
		}
		// Each poll is a full veo_read_mem; no extra backoff is needed, the
		// privileged-DMA latency is the poll interval.
		if _, err := h.pollSlot(c, hd); err != nil {
			if core.IsTransient(err) {
				// An injected glitch on the poll read costs one poll
				// interval; the next read retries it for free and the
				// offload itself is unharmed.
				h.nt.Instant(trace.PhaseFault, "veob-poll-fault", c.mid(hd.slot, hd.seq))
				continue
			}
			return nil, h.stepErr(c, hd.target, err)
		}
		if d := h.opts.OffloadTimeout; d > 0 && !hd.done && h.p.Now().Sub(start) >= d {
			// The slot stays leased to the lost offload — the leak is
			// bounded by NumBuffers, and RecoverNode rebuilds the whole
			// communication area.
			return nil, fmt.Errorf("veob: node %d slot %d: %w", hd.target, hd.slot, core.ErrOffloadTimeout)
		}
	}
	h.p.Sleep(h.timing(c).HAMHostOverhead)
	return hd.resp, nil
}

// Wait implements core.Backend.
func (h *Host) Wait(hh core.Handle) ([]byte, error) {
	hd, ok := hh.(*handle)
	if !ok {
		return nil, fmt.Errorf("veob: foreign handle %T", hh)
	}
	return h.waitHandle(hd)
}

// Poll implements core.Backend.
func (h *Host) Poll(hh core.Handle) ([]byte, bool, error) {
	hd, ok := hh.(*handle)
	if !ok {
		return nil, false, fmt.Errorf("veob: foreign handle %T", hh)
	}
	if hd.done {
		return hd.resp, true, nil
	}
	c := hd.c
	if c.dead {
		return nil, false, fmt.Errorf("veob: node %d: %w", hd.target, core.ErrNodeFailed)
	}
	done, err := h.pollSlot(c, hd)
	if err != nil {
		if core.IsTransient(err) {
			// Absorbed like in waitHandle: the probe simply reports "not
			// done yet" and the next poll retries the read.
			h.nt.Instant(trace.PhaseFault, "veob-poll-fault", c.mid(hd.slot, hd.seq))
			return nil, false, nil
		}
		return nil, false, h.stepErr(c, hd.target, err)
	}
	if !done {
		return nil, false, nil
	}
	return hd.resp, true, nil
}

// Put implements core.Backend: an explicit data transfer via veo_write_mem,
// staged through a host bounce buffer (an artifact of the Go API taking
// slices; the staging copy is not charged as it does not exist on the real
// platform, where user data already lives in host memory).
func (h *Host) Put(target core.NodeID, data []byte, dstAddr uint64) error {
	c, err := h.conn(target)
	if err != nil {
		return err
	}
	if c.dead {
		return fmt.Errorf("veob: node %d: %w", target, core.ErrNodeFailed)
	}
	stage, err := c.card.Host.Alloc(int64(len(data)))
	if err != nil {
		return err
	}
	defer func() { _ = c.card.Host.Free(stage) }()
	if err := c.card.Host.Mem.WriteAt(data, stage); err != nil {
		return err
	}
	return h.stepErr(c, target, c.proc.WriteMem(h.p, dstAddr, uint64(stage), int64(len(data))))
}

// Get implements core.Backend via veo_read_mem.
func (h *Host) Get(target core.NodeID, srcAddr uint64, dst []byte) error {
	c, err := h.conn(target)
	if err != nil {
		return err
	}
	if c.dead {
		return fmt.Errorf("veob: node %d: %w", target, core.ErrNodeFailed)
	}
	stage, err := c.card.Host.Alloc(int64(len(dst)))
	if err != nil {
		return err
	}
	defer func() { _ = c.card.Host.Free(stage) }()
	if err := c.proc.ReadMem(h.p, uint64(stage), srcAddr, int64(len(dst))); err != nil {
		return h.stepErr(c, target, err)
	}
	return c.card.Host.Mem.ReadAt(dst, stage)
}

// Serve implements core.Backend; the host node does not serve messages in
// this backend (no reverse offloading over VEO).
func (h *Host) Serve(core.Server) error {
	return fmt.Errorf("veob: the host node does not serve active messages")
}

// Memory implements core.Backend.
func (h *Host) Memory() core.LocalMemory { return h.mem }

// ChargeVector implements core.Backend: host-side kernel work advances the
// host process's simulated clock with the host roofline model.
func (h *Host) ChargeVector(flops, bytes int64, cores int) {
	h.p.Sleep(hostModel.VectorTime(flops, bytes, cores))
}

// ChargeScalar implements core.Backend.
func (h *Host) ChargeScalar(ops int64) {
	h.p.Sleep(simtime.Duration(float64(ops) / (2.6e9) * float64(simtime.Second)))
}

// Backoff implements core's optional backoff surface: retry delays advance
// the host process's simulated clock.
func (h *Host) Backoff(d simtime.Duration) { h.p.Sleep(d) }

// MaxMessageLen implements core.MessageSizer: a wire message must fit one
// message buffer and its length must be publishable in a slot flag word.
func (h *Host) MaxMessageLen() int {
	if h.opts.BufSize < slots.MaxLen {
		return h.opts.BufSize
	}
	return slots.MaxLen
}

// SimNow exposes the initiator's simulated clock for deadline-driven batch
// flushes (core's simClock surface).
func (h *Host) SimNow() simtime.Time { return h.p.Now() }

// RecoverNode implements core.Recoverer: it reaps the dead VE process,
// releases the old communication area and bounce buffer, and re-runs the
// full Fig. 4 connect sequence — fresh process, library load, ham_comm_init,
// ham_main. Outstanding handles stay pinned to the dead conn and keep
// failing with core.ErrNodeFailed; new offloads use the replacement.
func (h *Host) RecoverNode(n core.NodeID) error {
	c, err := h.conn(n)
	if err != nil {
		return err
	}
	c.dead = true
	if c.card.Process() != nil {
		_ = c.card.DestroyProcess(h.p)
	}
	// The VE-side allocations died with the process; release their
	// simulated backing store along with the host bounce buffer.
	_ = c.card.Mem.Free(memA(c.lay.base))
	_ = c.card.Host.Free(memA(c.bounce))
	nc, err := h.connect(c.card, int(n), h.NumNodes())
	if err != nil {
		return err
	}
	h.conns[int(n)-1] = nc
	return nil
}

// Close implements core.Backend: release the host-side bounce buffers and
// destroy the VE processes.
func (h *Host) Close() error {
	var firstErr error
	for _, c := range h.conns {
		if err := c.card.Host.Free(memA(c.bounce)); err != nil && firstErr == nil {
			firstErr = err
		}
		if err := c.proc.Destroy(h.p); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (h *Host) timing(c *conn) topoTiming { return c.card.Timing }

var _ core.Backend = (*Host)(nil)
