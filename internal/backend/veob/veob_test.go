package veob_test

import (
	"strings"
	"testing"

	"hamoffload/internal/backend/veob"
	"hamoffload/internal/core"
	"hamoffload/internal/dma"
	"hamoffload/internal/hostmem"
	"hamoffload/internal/pcie"
	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
	"hamoffload/internal/units"
	"hamoffload/internal/vemem"
	"hamoffload/internal/veos"
)

// Offloadable test functions.
var (
	vbEcho = core.NewFunc1[int64]("veob.echo",
		func(c *core.Ctx, v int64) (int64, error) { return v, nil })

	vbBig = core.NewFunc1[[]float64]("veob.big",
		func(c *core.Ctx, n int64) ([]float64, error) {
			out := make([]float64, n)
			for i := range out {
				out[i] = float64(i)
			}
			return out, nil
		})

	vbWide = core.NewFunc1[string]("veob.wide",
		func(c *core.Ctx, s string) (string, error) { return s, nil })
)

// rig assembles a one-VE machine for backend-level tests.
type rig struct {
	eng  *simtime.Engine
	card *veos.Card
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := simtime.NewEngine()
	tm := topology.DefaultTiming()
	host, err := hostmem.New("vh", 2*units.GiB, tm.HostPageSize)
	if err != nil {
		t.Fatal(err)
	}
	veMem, err := vemem.New("ve0", 4*units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := pcie.NewFabric(eng, topology.A300_8(), tm)
	if err != nil {
		t.Fatal(err)
	}
	path, err := fab.PathFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, card: veos.NewCard(eng, 0, tm, host, veMem, path, dma.TranslateBulk4DMA)}
}

func (r *rig) run(t *testing.T, fn func(p *simtime.Proc, rt *core.Runtime)) {
	t.Helper()
	r.eng.Spawn("vh-main", func(p *simtime.Proc) {
		b, err := veob.Connect(p, []*veos.Card{r.card}, veob.Options{})
		if err != nil {
			t.Errorf("Connect: %v", err)
			r.eng.Stop()
			return
		}
		rt := core.NewRuntime(b, "x86_64-test")
		fn(p, rt)
		if err := rt.Finalize(); err != nil {
			t.Errorf("Finalize: %v", err)
		}
		r.eng.Stop()
	})
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r.eng.Shutdown()
}

func TestSlotWraparound(t *testing.T) {
	// Far more offloads than slots: sequence numbers must keep messages and
	// results correctly paired across many slot reuses.
	r := newRig(t)
	r.run(t, func(p *simtime.Proc, rt *core.Runtime) {
		for i := int64(0); i < 50; i++ {
			v, err := core.Sync(rt, 1, vbEcho.Bind(i))
			if err != nil {
				t.Fatalf("offload %d: %v", i, err)
			}
			if v != i {
				t.Fatalf("offload %d returned %d", i, v)
			}
		}
	})
}

func TestDeepAsyncPipeline(t *testing.T) {
	// More outstanding offloads than slots: Call must transparently drain
	// the oldest handle of a reused slot, and out-of-order Gets must work.
	r := newRig(t)
	r.run(t, func(p *simtime.Proc, rt *core.Runtime) {
		const depth = 20 // > 8 slots
		futs := make([]*core.Future[int64], depth)
		for i := range futs {
			futs[i] = core.Async(rt, 1, vbEcho.Bind(int64(i)))
		}
		// Harvest newest-first to exercise out-of-order completion.
		for i := depth - 1; i >= 0; i-- {
			v, err := futs[i].Get()
			if err != nil {
				t.Fatalf("future %d: %v", i, err)
			}
			if v != int64(i) {
				t.Fatalf("future %d = %d", i, v)
			}
		}
	})
}

func TestLargeResultOverflowPath(t *testing.T) {
	// 300 float64 = 2400 B: beyond the 248 B inline area, within bufSize.
	r := newRig(t)
	r.run(t, func(p *simtime.Proc, rt *core.Runtime) {
		out, err := core.Sync(rt, 1, vbBig.Bind(int64(300)))
		if err != nil {
			t.Fatal(err)
		}
		if len(out) != 300 || out[299] != 299 {
			t.Fatalf("len=%d last=%v", len(out), out[len(out)-1])
		}
	})
}

func TestOversizedResultFailsGracefully(t *testing.T) {
	// A result bigger than inline+bufSize cannot be returned; the offload
	// must fail with a protocol error, not corrupt the channel.
	r := newRig(t)
	r.run(t, func(p *simtime.Proc, rt *core.Runtime) {
		_, err := core.Sync(rt, 1, vbBig.Bind(int64(10000))) // 80 KB
		if err == nil || !strings.Contains(err.Error(), "exceeds the send buffer") {
			t.Fatalf("err = %v", err)
		}
		// Channel still alive afterwards.
		if v, err := core.Sync(rt, 1, vbEcho.Bind(7)); err != nil || v != 7 {
			t.Fatalf("offload after overflow: %v, %v", v, err)
		}
	})
}

func TestOversizedMessageRejected(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *simtime.Proc, rt *core.Runtime) {
		big := strings.Repeat("x", 8000) // message > 4 KiB buffer
		_, err := core.Sync(rt, 1, vbWide.Bind(big))
		if err == nil || !strings.Contains(err.Error(), "exceeds buffer size") {
			t.Fatalf("err = %v", err)
		}
	})
}

func TestTargetCannotInitiate(t *testing.T) {
	// The VEO protocol is strictly host-initiated.
	probe := core.NewFunc0[string]("veob.reverse_probe",
		func(c *core.Ctx) (string, error) {
			_, err := c.Runtime().Backend().Call(0, []byte{0, 0, 0, 0})
			if err == nil {
				return "", nil
			}
			return err.Error(), nil
		})
	r := newRig(t)
	r.run(t, func(p *simtime.Proc, rt *core.Runtime) {
		msg, err := core.Sync(rt, 1, probe.Bind())
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(msg, "cannot initiate") {
			t.Fatalf("target-side Call error = %q", msg)
		}
	})
}

func TestConnectValidation(t *testing.T) {
	eng := simtime.NewEngine()
	eng.Spawn("main", func(p *simtime.Proc) {
		if _, err := veob.Connect(p, nil, veob.Options{}); err == nil {
			t.Error("Connect with no cards accepted")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHostBackendSurface(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *simtime.Proc, rt *core.Runtime) {
		b := rt.Backend()
		if b.Self() != 0 || b.NumNodes() != 2 {
			t.Errorf("Self/NumNodes = %d/%d", b.Self(), b.NumNodes())
		}
		if d := b.Descriptor(1); d.Device != "NEC VE Type 10B" {
			t.Errorf("descriptor = %+v", d)
		}
		if d := b.Descriptor(99); d.Name != "invalid" {
			t.Errorf("bad descriptor = %+v", d)
		}
		if err := b.Serve(nil); err == nil {
			t.Error("host Serve should fail")
		}
		if _, err := b.Call(5, nil); err == nil {
			t.Error("Call to missing node accepted")
		}
		if _, err := b.Wait("bogus"); err == nil {
			t.Error("foreign handle accepted by Wait")
		}
		if _, _, err := b.Poll("bogus"); err == nil {
			t.Error("foreign handle accepted by Poll")
		}
	})
}
