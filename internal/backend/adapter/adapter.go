// Package adapter bridges the simulated VH/VE memory systems to the
// runtime's LocalMemory interface; both SX-Aurora backends share these.
package adapter

import (
	"hamoffload/internal/core"
	"hamoffload/internal/hostmem"
	"hamoffload/internal/mem"
	"hamoffload/internal/vemem"
)

// HostHeap exposes the simulated VH memory as a node-local heap.
type HostHeap struct {
	H *hostmem.Host
}

// Alloc implements core.LocalMemory.
func (m *HostHeap) Alloc(n int64) (uint64, error) {
	a, err := m.H.Alloc(n)
	return uint64(a), err
}

// Free implements core.LocalMemory.
func (m *HostHeap) Free(addr uint64) error { return m.H.Free(mem.Addr(addr)) }

// Read implements core.LocalMemory.
func (m *HostHeap) Read(addr uint64, p []byte) error { return m.H.Mem.ReadAt(p, mem.Addr(addr)) }

// Write implements core.LocalMemory.
func (m *HostHeap) Write(addr uint64, data []byte) error {
	return m.H.Mem.WriteAt(data, mem.Addr(addr))
}

// VEHeap exposes a VE's HBM as a node-local heap.
type VEHeap struct {
	VE *vemem.VE
}

// Alloc implements core.LocalMemory.
func (m *VEHeap) Alloc(n int64) (uint64, error) {
	a, err := m.VE.Alloc(n)
	return uint64(a), err
}

// Free implements core.LocalMemory.
func (m *VEHeap) Free(addr uint64) error { return m.VE.Free(mem.Addr(addr)) }

// Read implements core.LocalMemory.
func (m *VEHeap) Read(addr uint64, p []byte) error { return m.VE.HBM.ReadAt(p, mem.Addr(addr)) }

// Write implements core.LocalMemory.
func (m *VEHeap) Write(addr uint64, data []byte) error {
	return m.VE.HBM.WriteAt(data, mem.Addr(addr))
}

var (
	_ core.LocalMemory = (*HostHeap)(nil)
	_ core.LocalMemory = (*VEHeap)(nil)
)
