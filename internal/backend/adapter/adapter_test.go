package adapter

import (
	"bytes"
	"testing"

	"hamoffload/internal/hostmem"
	"hamoffload/internal/units"
	"hamoffload/internal/vemem"
)

func TestHostHeapRoundTrip(t *testing.T) {
	h, err := hostmem.New("vh", 64*units.MiB, 2*units.MiB)
	if err != nil {
		t.Fatal(err)
	}
	heap := &HostHeap{H: h}
	addr, err := heap.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("host heap adapter")
	if err := heap.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := heap.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	if err := heap.Free(addr); err != nil {
		t.Fatal(err)
	}
	if err := heap.Read(addr, got); err == nil {
		t.Error("read after free should fault")
	}
	if err := heap.Free(addr); err == nil {
		t.Error("double free should fail")
	}
}

func TestVEHeapRoundTrip(t *testing.T) {
	v, err := vemem.New("ve", units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	heap := &VEHeap{VE: v}
	addr, err := heap.Alloc(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("ve heap adapter")
	if err := heap.Write(addr+8, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := heap.Read(addr+8, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("got %q", got)
	}
	if err := heap.Free(addr); err != nil {
		t.Fatal(err)
	}
	if v.LiveAllocs() != 0 {
		t.Errorf("LiveAllocs = %d", v.LiveAllocs())
	}
}
