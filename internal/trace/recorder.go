package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"hamoffload/internal/simtime"
)

// Span is one recorded operation on a simulated timeline.
type Span struct {
	Name  string
	Cat   string // component category: "veo", "dma", "ham", ...
	Tid   string // simulated process name
	Start simtime.Time
	End   simtime.Time
}

// Recorder collects spans from instrumented simulation components. A nil
// *Recorder is valid and records nothing, so instrumentation sites need no
// guards. The simulation is single-threaded per engine, so no locking is
// needed.
type Recorder struct {
	spans []Span
	limit int
}

// NewRecorder returns an empty recorder with the default 1M-span cap.
func NewRecorder() *Recorder { return &Recorder{limit: 1 << 20} }

// Span opens a span at the process's current time; invoke the returned
// closure to close it. Usage:
//
//	defer t.Recorder.Span(p, "dma", "priv-dma-write")()
func (r *Recorder) Span(p *simtime.Proc, cat, name string) func() {
	if r == nil {
		return func() {}
	}
	start := p.Now()
	return func() {
		if len(r.spans) >= r.limit {
			return
		}
		r.spans = append(r.spans, Span{
			Name: name, Cat: cat, Tid: p.Name(), Start: start, End: p.Now(),
		})
	}
}

// Len returns the number of recorded spans.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// Spans returns the recorded spans in recording order.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	return r.spans
}

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, https://ui.perfetto.dev).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ExportChrome writes the spans as a Chrome trace-event JSON array, loadable
// in chrome://tracing or Perfetto. Timestamps are simulated microseconds.
func (r *Recorder) ExportChrome(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("trace: exporting from a nil recorder")
	}
	tids := map[string]int{}
	var events []chromeEvent
	tidOf := func(name string) int {
		id, ok := tids[name]
		if !ok {
			id = len(tids) + 1
			tids[name] = id
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: id,
				Args: map[string]any{"name": name},
			})
		}
		return id
	}
	for _, s := range r.spans {
		tid := tidOf(s.Tid)
		dur := simtime.Duration(s.End - s.Start).Microseconds()
		if dur <= 0 {
			dur = 0.001
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: simtime.Duration(s.Start).Microseconds(), Dur: dur,
			Pid: 1, Tid: tid,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
