package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"hamoffload/internal/simtime"
)

// Property: bucketOf and bucketLow are mutually consistent at every bucket
// boundary — the bucket that claims a duration really does bound it.
func TestBucketBoundsConsistencyProperty(t *testing.T) {
	f := func(raw uint64) bool {
		d := simtime.Duration(raw % uint64(math.MaxInt64))
		i := bucketOf(d)
		if i < 0 || i > 127 {
			return false
		}
		if d >= simtime.Nanosecond && bucketLow(i) > d {
			return false
		}
		if i < 127 && bucketLow(i+1) <= d {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
	// Exact boundaries are the historically broken cases: check every
	// bucket's own lower bound maps back to that bucket. Buckets whose
	// bound saturates the picosecond range all share MaxInt64 and are
	// excluded — only the first of them can win the round trip.
	for i := 0; i < 127; i++ {
		low := bucketLow(i)
		if low >= bucketLow(i+1) {
			break
		}
		if got := bucketOf(low); got != i {
			t.Errorf("bucketOf(bucketLow(%d)=%v) = %d", i, low, got)
		}
	}
	if bucketLow(127) < 0 {
		t.Error("bucketLow must saturate, not wrap negative")
	}
}

func TestNodeTracerSpansAndRegistry(t *testing.T) {
	eng := simtime.NewEngine()
	tr := NewTracer()
	eng.Spawn("vh-main", func(p *simtime.Proc) {
		nt := tr.Node(0, "dmab", p)
		end := nt.Begin(PhaseOffload, "offload empty", 1)
		p.Sleep(6 * simtime.Microsecond)
		end()
		nt.Count("offloads", 1)
		nt.Observe("latency", 6*simtime.Microsecond)
		start := nt.Now()
		p.Sleep(200 * simtime.Nanosecond)
		nt.Since(PhasePoll, "poll-hit", 1, start)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("Spans = %d", len(spans))
	}
	s := spans[0]
	if s.Node != 0 || s.Backend != "dmab" || s.MsgID != 1 || s.Phase != PhaseOffload {
		t.Errorf("span = %+v", s)
	}
	if s.Tid != "vh-main" {
		t.Errorf("Tid = %q", s.Tid)
	}
	if s.Dur() != 6*simtime.Microsecond {
		t.Errorf("Dur = %v", s.Dur())
	}
	if spans[1].Dur() != 200*simtime.Nanosecond {
		t.Errorf("Since span dur = %v", spans[1].Dur())
	}
	reg := tr.Registry(0)
	if reg.Counter("offloads") != 1 {
		t.Error("counter not fed")
	}
	if reg.Hist("latency").Count() != 1 {
		t.Error("histogram not fed")
	}
	st := reg.SpanStat("offload empty")
	if st.Count != 1 || st.Total != 6*simtime.Microsecond || st.Min != 6*simtime.Microsecond {
		t.Errorf("SpanStat = %+v", st)
	}
	if got := reg.PhaseTotal(PhaseOffload); got != 6*simtime.Microsecond {
		t.Errorf("PhaseTotal = %v", got)
	}
	regs := tr.Registries()
	if len(regs) != 1 || regs[0].Node() != 0 || regs[0].Backend() != "dmab" {
		t.Errorf("Registries = %+v", regs)
	}
	var buf bytes.Buffer
	reg.Render(&buf)
	for _, want := range []string{"node 0 (dmab)", "offloads", "offload empty", "latency"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("registry render missing %q:\n%s", want, buf.String())
		}
	}
}

func TestNilNodeTracerIsSafe(t *testing.T) {
	var tr *Tracer
	nt := tr.Node(3, "x", nil)
	if nt != nil {
		t.Fatal("nil tracer should yield nil node handle")
	}
	nt.Begin(PhaseCall, "a", 0)()
	nt.Since(PhaseCall, "b", 0, 0)
	nt.Count("c", 1)
	nt.Observe("d", 1)
	if nt.Registry() != nil || nt.Now() != 0 {
		t.Error("nil node tracer should be inert")
	}
	if tr.Registry(0) != nil || tr.Registries() != nil {
		t.Error("nil tracer registries should be nil")
	}
	var reg *Registry
	reg.Count("x", 1)
	reg.Observe("y", 1)
	if reg.Counter("x") != 0 || reg.Hist("y") != nil || reg.SpanStats() != nil {
		t.Error("nil registry should be inert")
	}
}

func TestEmptySpanStatMinIsZero(t *testing.T) {
	var st SpanStat
	if st.Min != 0 || st.Mean() != 0 {
		t.Error("empty SpanStat must read as zero")
	}
	reg := newRegistry(0, "")
	if got := reg.SpanStat("never"); got.Min != 0 || got.Count != 0 {
		t.Errorf("unseen SpanStat = %+v", got)
	}
}

func TestBreakdownWindowTilesExactly(t *testing.T) {
	us := func(x int64) simtime.Time { return simtime.Time(x) * simtime.Time(simtime.Microsecond) }
	spans := []Span{
		// Outer offload covering [0, 10); inner call [1, 3); innermost
		// pcie [2, 3); disjoint execute [5, 7); stray span outside window.
		{Name: "offload", Cat: "ham", Phase: PhaseOffload, Start: us(0), End: us(10)},
		{Name: "call", Cat: "ham", Phase: PhaseCall, Start: us(1), End: us(3)},
		{Name: "pcie", Cat: "pcie", Start: us(2), End: us(3)},
		{Name: "execute", Cat: "ham", Phase: PhaseExecute, Start: us(5), End: us(7)},
		{Name: "outside", Cat: "ham", Start: us(20), End: us(30)},
	}
	rows := BreakdownWindow(spans, us(0), us(10))
	total := simtime.Duration(0)
	byName := map[string]PhaseSlice{}
	for _, r := range rows {
		total += r.Total
		byName[r.Name] = r
	}
	if total != 10*simtime.Microsecond {
		t.Fatalf("rows must tile the window: total = %v", total)
	}
	if byName["offload"].Total != 6*simtime.Microsecond {
		t.Errorf("offload residual = %v, want 6us", byName["offload"].Total)
	}
	if byName["call"].Total != simtime.Microsecond {
		t.Errorf("call = %v, want 1us (pcie nested inside)", byName["call"].Total)
	}
	if byName["pcie"].Total != simtime.Microsecond {
		t.Errorf("pcie = %v", byName["pcie"].Total)
	}
	if byName["execute"].Total != 2*simtime.Microsecond {
		t.Errorf("execute = %v", byName["execute"].Total)
	}
	if _, ok := byName["outside"]; ok {
		t.Error("span outside window must not appear")
	}
	// Uncovered time shows up as IdleName.
	rows = BreakdownWindow(spans[1:2], us(0), us(10))
	byName = map[string]PhaseSlice{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName[IdleName].Total != 8*simtime.Microsecond {
		t.Errorf("idle = %v, want 8us", byName[IdleName].Total)
	}
	if BreakdownWindow(spans, us(5), us(5)) != nil {
		t.Error("empty window must return nil")
	}
}

func TestChromeExportPerNodeTracks(t *testing.T) {
	eng := simtime.NewEngine()
	tr := NewTracer()
	eng.Spawn("vh-main", func(p *simtime.Proc) {
		host := tr.Node(0, "dmab", p)
		end := host.Begin(PhaseCall, "dmab-call", 7)
		p.Sleep(simtime.Microsecond)
		end()
		defer tr.Span(p, "dma", "priv-dma-write")()
	})
	eng.Spawn("ve0-core0", func(p *simtime.Proc) {
		ve := tr.Node(1, "dmab", p)
		end := ve.Begin(PhaseExecute, "execute", 7)
		p.Sleep(2 * simtime.Microsecond)
		end()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"process_name"`, `"node 0 (dmab)"`, `"node 1 (dmab)"`, `"infra"`,
		`"thread_name"`, `"vh-main"`, `"ve0-core0"`,
		`"phase":"call"`, `"msg":7`, `"ph":"X"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome export missing %s:\n%s", want, out)
		}
	}
	// Valid JSON array.
	trimmed := strings.TrimSpace(out)
	if !strings.HasPrefix(trimmed, "[") || !strings.HasSuffix(trimmed, "]") {
		t.Error("export must be a JSON array of events")
	}
}
