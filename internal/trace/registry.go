package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"hamoffload/internal/simtime"
)

// SpanStat aggregates all closed spans sharing one name on one node.
type SpanStat struct {
	Name  string
	Phase Phase
	Count int64
	Total simtime.Duration
	Min   simtime.Duration // 0 when Count == 0
	Max   simtime.Duration
}

// Mean returns the average span duration (0 when empty).
func (s SpanStat) Mean() simtime.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Total / simtime.Duration(s.Count)
}

// Registry aggregates one node's observability state: named counters, named
// latency histograms, and per-span-name duration stats fed automatically as
// spans close. It is safe for concurrent use; histograms handed out by
// Hist must only be read once recording has quiesced.
type Registry struct {
	mu       sync.Mutex
	node     int
	backend  string
	counters map[string]int64
	hists    map[string]*Histogram
	spans    map[string]*SpanStat
}

func newRegistry(node int, backend string) *Registry {
	return &Registry{
		node:     node,
		backend:  backend,
		counters: map[string]int64{},
		hists:    map[string]*Histogram{},
		spans:    map[string]*SpanStat{},
	}
}

// Node returns the HAM node id this registry belongs to (NodeInfra for
// shared infrastructure).
func (r *Registry) Node() int {
	if r == nil {
		return NodeInfra
	}
	return r.node
}

// Backend returns the backend short name first seen for this node.
func (r *Registry) Backend() string {
	if r == nil {
		return ""
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.backend
}

// Count bumps a named counter by delta.
func (r *Registry) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// Counter reads a counter (0 when never touched or on a nil registry).
func (r *Registry) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// CounterNames returns all counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for n := range r.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Observe adds one duration to a named histogram, creating it on demand.
func (r *Registry) Observe(name string, d simtime.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(name)
		r.hists[name] = h
	}
	h.Observe(d)
	r.mu.Unlock()
}

// Hist returns a named histogram, creating it on demand. The returned
// histogram is live; read it only after recording has quiesced.
func (r *Registry) Hist(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(name)
		r.hists[name] = h
	}
	return h
}

// HistNames returns all histogram names, sorted.
func (r *Registry) HistNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// observeSpan folds one closed span into the per-name stats.
func (r *Registry) observeSpan(s Span) {
	d := s.Dur()
	if d < 0 {
		d = 0
	}
	r.mu.Lock()
	st, ok := r.spans[s.Name]
	if !ok {
		st = &SpanStat{Name: s.Name, Phase: s.Phase}
		r.spans[s.Name] = st
	}
	st.Count++
	st.Total += d
	if st.Count == 1 || d < st.Min {
		st.Min = d
	}
	if d > st.Max {
		st.Max = d
	}
	r.mu.Unlock()
}

// SpanStats returns a snapshot of the per-span-name stats, sorted by name.
func (r *Registry) SpanStats() []SpanStat {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	out := make([]SpanStat, 0, len(r.spans))
	for _, st := range r.spans {
		out = append(out, *st)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// SpanStat returns the stats for one span name (zero-valued when unseen).
func (r *Registry) SpanStat(name string) SpanStat {
	if r == nil {
		return SpanStat{Name: name}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if st, ok := r.spans[name]; ok {
		return *st
	}
	return SpanStat{Name: name}
}

// PhaseTotal sums the total duration of all span names tagged with a phase.
func (r *Registry) PhaseTotal(ph Phase) simtime.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var sum simtime.Duration
	for _, st := range r.spans {
		if st.Phase == ph {
			sum += st.Total
		}
	}
	return sum
}

// Render writes a human-readable dump: counters, span stats, histograms.
func (r *Registry) Render(w io.Writer) {
	if r == nil {
		return
	}
	fmt.Fprintf(w, "node %d (%s)\n", r.Node(), r.Backend())
	for _, n := range r.CounterNames() {
		fmt.Fprintf(w, "  %-30s %12d\n", n, r.Counter(n))
	}
	for _, st := range r.SpanStats() {
		fmt.Fprintf(w, "  span %-25s n=%-7d mean=%-12v min=%-12v max=%v\n",
			st.Name, st.Count, st.Mean(), st.Min, st.Max)
	}
	for _, n := range r.HistNames() {
		r.Hist(n).Render(w)
	}
}

func sortRegistries(rs []*Registry) {
	sort.Slice(rs, func(i, j int) bool { return rs[i].node < rs[j].node })
}
