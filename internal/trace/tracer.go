package trace

import (
	"sync"
	"time"

	"hamoffload/internal/simtime"
)

// Phase identifies one step of the offload lifecycle. The mandatory sequence
// for a synchronous offload is: PhaseOffload wraps the whole call on the
// initiating node, and within it PhaseEncode, PhaseCall, PhaseExecute and
// PhaseWait must all appear (see internal/backend/conformance).
type Phase string

const (
	// PhaseOffload covers the full lifecycle on the initiating node, from
	// the moment the offload is issued until its future resolves.
	PhaseOffload Phase = "offload"
	// PhaseEncode covers active-message serialisation (key + payload).
	PhaseEncode Phase = "encode"
	// PhaseCall covers the backend call path that ships the message to the
	// target (message buffer write + flag write for the one-sided protocols).
	PhaseCall Phase = "call"
	// PhaseFlagWrite covers writing the receive flag that publishes a
	// message buffer to the target (sub-span of PhaseCall).
	PhaseFlagWrite Phase = "flag-write"
	// PhasePoll covers the target-side poll iteration that hit a newly set
	// receive flag (the last flag probe before message receipt).
	PhasePoll Phase = "poll"
	// PhaseFetch covers pulling the message body to the target (user-DMA
	// descriptor fetch for the DMA protocol, buffer read for VEO).
	PhaseFetch Phase = "fetch"
	// PhaseExecute covers handler dispatch and execution on the target.
	PhaseExecute Phase = "execute"
	// PhaseResult covers storing the result back to the initiator (SHM
	// stores / result DMA) including the completion-flag write.
	PhaseResult Phase = "result"
	// PhaseWait covers the initiator blocking on offload completion.
	PhaseWait Phase = "wait"
	// PhaseTransfer covers bulk data movement (Put/Get).
	PhaseTransfer Phase = "transfer"
	// PhaseFault marks an injected fault firing (instant event).
	PhaseFault Phase = "fault"
	// PhaseRetry marks a transient failure being retried (instant event).
	PhaseRetry Phase = "retry"
	// PhaseTimeout marks an offload exceeding its timeout (instant event).
	PhaseTimeout Phase = "timeout"
	// PhaseBatch covers a batch frame: the initiator-side flush that ships
	// N coalesced messages in one backend call, and the target-side loop
	// that executes them back to back.
	PhaseBatch Phase = "batch"
	// PhaseHedge marks a hedged request being issued: the speculative second
	// copy of a slow offload, sent to a healthy node (instant event).
	PhaseHedge Phase = "hedge"
	// PhaseBreaker marks a circuit-breaker state transition on a target node
	// (closed → open → half-open → closed; instant event).
	PhaseBreaker Phase = "breaker"
	// PhaseAdmit marks a serving-gateway admission decision that rejected a
	// request (tenant quota exhausted or class queue share full; instant
	// event). Admitted requests are not marked — at millions of offloads the
	// interesting signal is the rejections.
	PhaseAdmit Phase = "admit"
	// PhaseSteal marks an idle VE stealing half of the longest per-VE queue
	// in the serving gateway (instant event).
	PhaseSteal Phase = "steal"
)

// NodeInfra marks spans recorded by shared infrastructure (DMA engines, VEO
// API calls, kernel workers) that are not tied to one HAM node.
const NodeInfra = -1

// Span is one recorded operation on a timeline. Simulated backends stamp
// spans with simulated picosecond times; wall-clock backends (locb, tcpb)
// use a WallClock mapped onto the same scale.
type Span struct {
	Name    string
	Cat     string // component category: "ham", "veo", "dma", "pcie", ...
	Phase   Phase  // lifecycle phase, empty for infrastructure spans
	Tid     string // process / track name
	Node    int    // HAM node id, or NodeInfra
	Backend string // backend short name ("dmab", "veob", ...), empty for infra
	MsgID   int64  // message correlator, -1 when unknown
	Start   simtime.Time
	End     simtime.Time
	Instant bool // a point-in-time marker (fault, retry, timeout), not a span
}

// Dur returns the span length.
func (s Span) Dur() simtime.Duration { return s.End.Sub(s.Start) }

// Clock abstracts the time source spans are stamped with. *simtime.Proc
// satisfies it for simulated components; NewWallClock covers real-time
// backends.
type Clock interface {
	Now() simtime.Time
}

// WallClock maps real elapsed time since its creation onto the simulated
// picosecond scale, so wall-clock backends (locb, tcpb) share the span and
// export machinery with simulated ones.
type WallClock struct {
	start time.Time
}

// NewWallClock returns a clock whose zero is now.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns the elapsed real time as a simulated timestamp.
func (w *WallClock) Now() simtime.Time {
	return simtime.Time(time.Since(w.start).Nanoseconds() * int64(simtime.Nanosecond))
}

// Tracer collects spans from instrumented components and feeds per-node
// Registries. A nil *Tracer is valid, records nothing, and costs one nil
// check per instrumentation site, so tracing defaults to off everywhere.
// Tracer is safe for concurrent use (the wall-clock backends record from
// multiple goroutines).
type Tracer struct {
	mu    sync.Mutex
	spans []Span
	limit int
	regs  map[int]*Registry
}

// NewTracer returns an empty tracer with the default 1M-span cap.
func NewTracer() *Tracer {
	return &Tracer{limit: 1 << 20, regs: map[int]*Registry{}}
}

// Span opens an infrastructure span (Node = NodeInfra) at the process's
// current simulated time; invoke the returned closure to close it. Usage:
//
//	defer t.Tracer.Span(p, "dma", "priv-dma-write")()
func (t *Tracer) Span(p *simtime.Proc, cat, name string) func() {
	if t == nil {
		return func() {}
	}
	start := p.Now()
	return func() {
		t.record(Span{
			Name: name, Cat: cat, Tid: p.Name(),
			Node: NodeInfra, MsgID: -1,
			Start: start, End: p.Now(),
		})
	}
}

// Instant records an infrastructure point-in-time marker (fault injection
// sites in the DMA/VEOS layers) at the process's current simulated time.
func (t *Tracer) Instant(p *simtime.Proc, cat, name string) {
	if t == nil {
		return
	}
	now := p.Now()
	t.record(Span{
		Name: name, Cat: cat, Tid: p.Name(),
		Node: NodeInfra, MsgID: -1,
		Start: now, End: now, Instant: true,
	})
}

// record appends a finished span and folds it into its node's registry.
func (t *Tracer) record(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.spans) < t.limit {
		t.spans = append(t.spans, s)
	}
	r := t.registryLocked(s.Node, s.Backend)
	t.mu.Unlock()
	r.observeSpan(s)
}

func (t *Tracer) registryLocked(node int, backend string) *Registry {
	r, ok := t.regs[node]
	if !ok {
		r = newRegistry(node, backend)
		t.regs[node] = r
	} else if r.backend == "" && backend != "" {
		r.backend = backend
	}
	return r
}

// Node returns a per-node handle that stamps spans with the node id, the
// backend name, and timestamps from clock. A nil receiver yields a nil
// handle, which is itself a no-op.
func (t *Tracer) Node(node int, backend string, clock Clock) *NodeTracer {
	if t == nil {
		return nil
	}
	tid := ""
	if p, ok := clock.(*simtime.Proc); ok && p != nil {
		tid = p.Name()
	}
	return &NodeTracer{t: t, node: node, backend: backend, clock: clock, tid: tid}
}

// Registry returns the metrics registry for a node, creating it on demand.
// Returns nil on a nil tracer.
func (t *Tracer) Registry(node int) *Registry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.registryLocked(node, "")
}

// Registries returns all node registries ordered by node id.
func (t *Tracer) Registries() []*Registry {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make([]*Registry, 0, len(t.regs))
	for _, r := range t.regs {
		out = append(out, r)
	}
	t.mu.Unlock()
	sortRegistries(out)
	return out
}

// Len returns the number of recorded spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Spans returns a copy of the recorded spans in recording order.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.spans) == 0 {
		return nil
	}
	return append([]Span(nil), t.spans...)
}

// NodeTracer stamps spans for one HAM node. All methods are safe on a nil
// receiver, which is the disabled-tracing fast path.
type NodeTracer struct {
	t       *Tracer
	node    int
	backend string
	clock   Clock
	tid     string
}

// Begin opens a lifecycle span; invoke the returned closure to close it.
// msgID is the message correlator (-1 when unknown).
func (n *NodeTracer) Begin(ph Phase, name string, msgID int64) func() {
	if n == nil {
		return func() {}
	}
	start := n.clock.Now()
	return func() { n.Since(ph, name, msgID, start) }
}

// Since records a span from an explicitly captured start time to now. It
// serves the "only know it was interesting after the fact" sites, such as
// the poll iteration that finally hit a set flag.
func (n *NodeTracer) Since(ph Phase, name string, msgID int64, start simtime.Time) {
	if n == nil {
		return
	}
	n.t.record(Span{
		Name: name, Cat: "ham", Phase: ph, Tid: n.tid,
		Node: n.node, Backend: n.backend, MsgID: msgID,
		Start: start, End: n.clock.Now(),
	})
}

// Instant records a point-in-time lifecycle marker — a fault firing, a
// retry, a timeout — at the clock's current reading. Exported as a Chrome
// instant event rather than a duration span.
func (n *NodeTracer) Instant(ph Phase, name string, msgID int64) {
	if n == nil {
		return
	}
	now := n.clock.Now()
	n.t.record(Span{
		Name: name, Cat: "ham", Phase: ph, Tid: n.tid,
		Node: n.node, Backend: n.backend, MsgID: msgID,
		Start: now, End: now, Instant: true,
	})
}

// Now returns the handle's clock reading (0 on nil), for capturing start
// times to pass to Since.
func (n *NodeTracer) Now() simtime.Time {
	if n == nil {
		return 0
	}
	return n.clock.Now()
}

// Count bumps a counter in the node's registry.
func (n *NodeTracer) Count(name string, delta int64) {
	if n == nil {
		return
	}
	n.Registry().Count(name, delta)
}

// Observe adds one duration to a named histogram in the node's registry.
func (n *NodeTracer) Observe(name string, d simtime.Duration) {
	if n == nil {
		return
	}
	n.Registry().Observe(name, d)
}

// Registry returns the node's metrics registry (nil on a nil handle).
func (n *NodeTracer) Registry() *Registry {
	if n == nil {
		return nil
	}
	n.t.mu.Lock()
	defer n.t.mu.Unlock()
	return n.t.registryLocked(n.node, n.backend)
}
