package trace

import (
	"sort"

	"hamoffload/internal/simtime"
)

// PhaseSlice is one row of a latency decomposition: the total time within
// an analysis window attributed to one span name.
type PhaseSlice struct {
	Name  string
	Cat   string
	Phase Phase
	Total simtime.Duration
	Count int // distinct attributed intervals
}

// IdleName labels window time covered by no recorded span.
const IdleName = "(uninstrumented)"

// BreakdownWindow attributes every instant of [start, end) to exactly one
// recorded span — the innermost span covering it, across all nodes and
// tracks (an offload is sequential in simulated time, so mixing host and
// target spans yields the end-to-end critical path). "Innermost" means the
// latest Start, breaking ties by the earliest End and then by recording
// order. Instants covered by no span are attributed to IdleName. The
// returned slices therefore tile the window: their totals sum exactly to
// end-start. Rows appear in order of first attribution.
func BreakdownWindow(spans []Span, start, end simtime.Time) []PhaseSlice {
	if end <= start {
		return nil
	}
	// Clip to the window, drop non-overlapping spans.
	type clipped struct {
		Span
		idx int
	}
	var in []clipped
	for i, s := range spans {
		if s.End <= start || s.Start >= end {
			continue
		}
		c := clipped{Span: s, idx: i}
		if c.Start < start {
			c.Start = start
		}
		if c.End > end {
			c.End = end
		}
		in = append(in, c)
	}
	// Elementary interval boundaries.
	bounds := make([]simtime.Time, 0, 2*len(in)+2)
	bounds = append(bounds, start, end)
	for _, c := range in {
		bounds = append(bounds, c.Start, c.End)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	// Attribute each elementary interval to its innermost covering span.
	rows := map[string]*PhaseSlice{}
	var order []string
	last := map[string]simtime.Time{} // end of the previous interval per row
	for i := 0; i+1 < len(uniq); i++ {
		lo, hi := uniq[i], uniq[i+1]
		var win *clipped
		for j := range in {
			c := &in[j]
			if c.Start > lo || c.End < hi {
				continue
			}
			if win == nil ||
				c.Span.Start > win.Span.Start ||
				(c.Span.Start == win.Span.Start && (c.Span.End < win.Span.End ||
					(c.Span.End == win.Span.End && c.idx > win.idx))) {
				win = c
			}
		}
		name, cat, ph := IdleName, "", Phase("")
		if win != nil {
			name, cat, ph = win.Name, win.Cat, win.Phase
		}
		row, ok := rows[name]
		if !ok {
			row = &PhaseSlice{Name: name, Cat: cat, Phase: ph}
			rows[name] = row
			order = append(order, name)
		}
		row.Total += hi.Sub(lo)
		if last[name] != lo {
			row.Count++
		}
		last[name] = hi
	}
	out := make([]PhaseSlice, 0, len(order))
	for _, n := range order {
		out = append(out, *rows[n])
	}
	return out
}
