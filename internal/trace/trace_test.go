package trace

import (
	"bytes"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"hamoffload/internal/simtime"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("lat")
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram not zeroed")
	}
	for _, us := range []int64{1, 2, 3, 4, 10} {
		h.Observe(simtime.Duration(us) * simtime.Microsecond)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != simtime.Microsecond {
		t.Errorf("Min = %v", h.Min())
	}
	if h.Max() != 10*simtime.Microsecond {
		t.Errorf("Max = %v", h.Max())
	}
	if h.Mean() != 4*simtime.Microsecond {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Sum() != 20*simtime.Microsecond {
		t.Errorf("Sum = %v", h.Sum())
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram("q")
	for i := 1; i <= 1000; i++ {
		h.Observe(simtime.Duration(i) * simtime.Microsecond)
	}
	p50 := h.Quantile(0.5)
	if p50 < 300*simtime.Microsecond || p50 > 800*simtime.Microsecond {
		t.Errorf("p50 = %v, want near 500us (bucket resolution)", p50)
	}
	if h.Quantile(0) != h.Min() {
		t.Error("q=0 should be min")
	}
	if h.Quantile(1) != h.Max() {
		t.Error("q=1 should be max")
	}
	// Monotone in q.
	prev := simtime.Duration(0)
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Errorf("quantiles not monotone at q=%v", q)
		}
		prev = v
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram("n")
	h.Observe(-5)
	if h.Min() != 0 || h.Max() != 0 {
		t.Error("negative observation not clamped to zero")
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram("render")
	for i := 0; i < 100; i++ {
		h.Observe(6 * simtime.Microsecond)
	}
	var buf bytes.Buffer
	h.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "n=100") || !strings.Contains(out, "#") {
		t.Errorf("render output:\n%s", out)
	}
	// Empty histogram renders without panicking.
	buf.Reset()
	NewHistogram("empty").Render(&buf)
	if !strings.Contains(buf.String(), "n=0") {
		t.Error("empty render missing n=0")
	}
}

// Property: quantile estimates are always within [min, max] and bucket
// bounds never invert the ordering of well-separated populations.
func TestHistogramQuantileBoundsProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram("prop")
		var exact []int64
		for _, r := range raw {
			d := simtime.Duration(r%1_000_000) * simtime.Nanosecond
			h.Observe(d)
			exact = append(exact, int64(d))
		}
		sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
		for _, q := range []float64{0.1, 0.5, 0.9} {
			v := h.Quantile(q)
			if v < h.Min() || v > h.Max() {
				return false
			}
			// The estimator returns the lower bound of the bucket holding
			// the (rank+1)-th smallest sample, where rank = q*count. That
			// sample bounds the estimate from above, and the sqrt(2) bucket
			// width bounds it from below (with 1 ns slack at the bottom).
			idx := int(q * float64(len(exact)))
			if idx >= len(exact) {
				idx = len(exact) - 1
			}
			sample := exact[idx]
			if int64(v) > sample {
				return false
			}
			if low := sample/2 - 2; int64(v) < low && v > h.Min() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Add("offloads", 3)
	c.Add("offloads", 2)
	c.Add("polls", 7)
	if c.Get("offloads") != 5 || c.Get("polls") != 7 {
		t.Errorf("Get = %d/%d", c.Get("offloads"), c.Get("polls"))
	}
	if c.Get("missing") != 0 {
		t.Error("missing counter should be 0")
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "offloads" || names[1] != "polls" {
		t.Errorf("Names = %v", names)
	}
	var buf bytes.Buffer
	c.Render(&buf)
	if !strings.Contains(buf.String(), "offloads") {
		t.Error("render missing counter")
	}
}

func TestTracerSpansAndChromeExport(t *testing.T) {
	eng := simtime.NewEngine()
	r := NewTracer()
	eng.Spawn("worker", func(p *simtime.Proc) {
		end := r.Span(p, "dma", "transfer")
		p.Sleep(5 * simtime.Microsecond)
		end()
		end2 := r.Span(p, "veo", "call")
		p.Sleep(simtime.Microsecond)
		end2()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	spans := r.Spans()
	if spans[0].Name != "transfer" || spans[0].End-spans[0].Start != simtime.Time(5*simtime.Microsecond) {
		t.Errorf("span 0 = %+v", spans[0])
	}
	var buf bytes.Buffer
	if err := r.ExportChrome(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ph":"X"`, `"name":"transfer"`, `"thread_name"`, `"dur":5`} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome export missing %s:\n%s", want, out)
		}
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var r *Tracer
	eng := simtime.NewEngine()
	eng.Spawn("p", func(p *simtime.Proc) {
		end := r.Span(p, "x", "y") // must not panic
		end()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 || r.Spans() != nil {
		t.Error("nil recorder should be empty")
	}
	if err := r.ExportChrome(&bytes.Buffer{}); err == nil {
		t.Error("export from nil recorder should error")
	}
}
