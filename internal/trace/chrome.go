package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// chromeEvent is one entry of the Chrome trace-event format
// (chrome://tracing, https://ui.perfetto.dev).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"` // instant-event scope ("t" = thread)
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromePid maps a HAM node id to a trace-event process id. Node n becomes
// pid n+2 so node 0 is pid 2 and infrastructure (NodeInfra) is pid 1.
func chromePid(node int) int { return node + 2 }

// ExportChrome writes the spans as a Chrome trace-event JSON array (the
// array-of-events form), loadable in chrome://tracing or Perfetto. Each HAM
// node becomes one process row and each simulated process (VH proc, VE
// core, DMA engine) one named thread track under it; simulated picosecond
// timestamps are emitted as microseconds. The output is deterministic for a
// deterministic simulation: events appear in recording order and metadata
// rows are interleaved at first sight of each process/track.
func (t *Tracer) ExportChrome(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: exporting from a nil tracer")
	}
	spans := t.Spans()
	pids := map[int]bool{}
	type trackKey struct {
		pid  int
		name string
	}
	tids := map[trackKey]int{}
	var events []chromeEvent
	pidOf := func(s Span) int {
		pid := chromePid(s.Node)
		if !pids[pid] {
			pids[pid] = true
			label := "infra"
			if s.Node != NodeInfra {
				label = fmt.Sprintf("node %d", s.Node)
				if s.Backend != "" {
					label += " (" + s.Backend + ")"
				}
			}
			events = append(events, chromeEvent{
				Name: "process_name", Ph: "M", Pid: pid,
				Args: map[string]any{"name": label},
			})
			events = append(events, chromeEvent{
				Name: "process_sort_index", Ph: "M", Pid: pid,
				Args: map[string]any{"sort_index": pid},
			})
		}
		return pid
	}
	tidOf := func(pid int, name string) int {
		if name == "" {
			name = "main"
		}
		key := trackKey{pid, name}
		id, ok := tids[key]
		if !ok {
			id = len(tids) + 1
			tids[key] = id
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: pid, Tid: id,
				Args: map[string]any{"name": name},
			})
		}
		return id
	}
	for _, s := range spans {
		pid := pidOf(s)
		tid := tidOf(pid, s.Tid)
		var args map[string]any
		if s.Phase != "" || s.MsgID >= 0 {
			args = map[string]any{}
			if s.Phase != "" {
				args["phase"] = string(s.Phase)
			}
			if s.MsgID >= 0 {
				args["msg"] = s.MsgID
			}
		}
		if s.Instant {
			events = append(events, chromeEvent{
				Name: s.Name, Cat: s.Cat, Ph: "i",
				Ts: s.Start.Microseconds(), S: "t",
				Pid: pid, Tid: tid, Args: args,
			})
			continue
		}
		dur := s.Dur().Microseconds()
		if dur <= 0 {
			dur = 0.001
		}
		events = append(events, chromeEvent{
			Name: s.Name, Cat: s.Cat, Ph: "X",
			Ts: s.Start.Microseconds(), Dur: dur,
			Pid: pid, Tid: tid, Args: args,
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(events)
}
