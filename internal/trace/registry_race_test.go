package trace

import (
	"sync"
	"testing"

	"hamoffload/internal/simtime"
)

// Concurrency guard for the Registry: counters, histograms and span stats
// are fed from wall-clock backends' goroutines (locb target loops, tcpb
// handlers), so Count, Observe and observeSpan must be safe to interleave.
// Run under -race this pins the locking; the totals pin that no update is
// lost.
func TestRegistryConcurrentUpdates(t *testing.T) {
	const workers = 8
	const perWorker = 200
	r := newRegistry(0, "racetest")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				d := simtime.Duration(i+1) * simtime.Microsecond
				r.Count("ops", 1)
				r.Observe("latency", d)
				r.observeSpan(Span{
					Name:  "work",
					Phase: PhaseOffload,
					Start: 0,
					End:   simtime.Time(0).Add(d),
				})
				// Interleave reads with the writes: snapshots must never
				// tear or race with concurrent recording.
				if i%32 == 0 {
					_ = r.Counter("ops")
					_ = r.SpanStats()
					_ = r.CounterNames()
				}
			}
		}(w)
	}
	wg.Wait()

	const total = workers * perWorker
	if got := r.Counter("ops"); got != total {
		t.Errorf("counter ops = %d, want %d (lost updates)", got, total)
	}
	if got := r.Hist("latency").Count(); got != total {
		t.Errorf("histogram count = %d, want %d", got, total)
	}
	st := r.SpanStat("work")
	if st.Count != total {
		t.Errorf("span count = %d, want %d", st.Count, total)
	}
	if st.Min != simtime.Microsecond || st.Max != perWorker*simtime.Microsecond {
		t.Errorf("span min/max = %v/%v, want 1us/%dus", st.Min, st.Max, perWorker)
	}
	// The snapshot machinery used by veinfo -json must agree with the
	// direct accessors once recording has quiesced.
	snap := r.Snapshot()
	if len(snap.Counters) != 1 || snap.Counters[0].Value != total {
		t.Errorf("snapshot counters = %+v, want one entry of %d", snap.Counters, total)
	}
	if len(snap.Histograms) != 1 || snap.Histograms[0].Count != total {
		t.Errorf("snapshot histograms = %+v, want one entry of %d", snap.Histograms, total)
	}
}
