package trace

// Machine-readable snapshots of the per-node registries, for veinfo -json
// and any other tooling that wants the observability state without parsing
// the human-readable Render output. Every duration is reported in
// microseconds of simulated time, matching the benchmark reports.

// SpanStatSnapshot is one span name's aggregate in JSON form.
type SpanStatSnapshot struct {
	Name   string  `json:"name"`
	Phase  string  `json:"phase"`
	Count  int64   `json:"n"`
	MeanUS float64 `json:"mean_us"`
	MinUS  float64 `json:"min_us"`
	MaxUS  float64 `json:"max_us"`
}

// CounterSnapshot is one named counter's value.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistSnapshot reduces one latency histogram to its headline quantiles.
type HistSnapshot struct {
	Name   string  `json:"name"`
	Count  int64   `json:"n"`
	MinUS  float64 `json:"min_us"`
	MeanUS float64 `json:"mean_us"`
	P50US  float64 `json:"p50_us"`
	P99US  float64 `json:"p99_us"`
	P999US float64 `json:"p999_us"`
	MaxUS  float64 `json:"max_us"`
}

// RegistrySnapshot is one node's full observability state.
type RegistrySnapshot struct {
	Node       int                `json:"node"`
	Backend    string             `json:"backend"`
	Counters   []CounterSnapshot  `json:"counters,omitempty"`
	Spans      []SpanStatSnapshot `json:"spans,omitempty"`
	Histograms []HistSnapshot     `json:"histograms,omitempty"`
}

// Snapshot captures the registry's current state. All slices are sorted by
// name, so the serialisation is byte-stable for deterministic runs. Read it
// only after recording has quiesced, like Hist.
func (r *Registry) Snapshot() RegistrySnapshot {
	snap := RegistrySnapshot{Node: r.Node(), Backend: r.Backend()}
	if r == nil {
		return snap
	}
	for _, n := range r.CounterNames() {
		snap.Counters = append(snap.Counters, CounterSnapshot{Name: n, Value: r.Counter(n)})
	}
	for _, st := range r.SpanStats() {
		snap.Spans = append(snap.Spans, SpanStatSnapshot{
			Name:   st.Name,
			Phase:  string(st.Phase),
			Count:  st.Count,
			MeanUS: st.Mean().Microseconds(),
			MinUS:  st.Min.Microseconds(),
			MaxUS:  st.Max.Microseconds(),
		})
	}
	for _, n := range r.HistNames() {
		h := r.Hist(n)
		snap.Histograms = append(snap.Histograms, HistSnapshot{
			Name:   n,
			Count:  h.Count(),
			MinUS:  h.Min().Microseconds(),
			MeanUS: h.Mean().Microseconds(),
			P50US:  h.Quantile(0.50).Microseconds(),
			P99US:  h.Quantile(0.99).Microseconds(),
			P999US: h.Quantile(0.999).Microseconds(),
			MaxUS:  h.Max().Microseconds(),
		})
	}
	return snap
}

// Snapshots captures every node registry of the tracer, sorted by node id.
func (t *Tracer) Snapshots() []RegistrySnapshot {
	if t == nil {
		return nil
	}
	regs := t.Registries()
	out := make([]RegistrySnapshot, 0, len(regs))
	for _, r := range regs {
		out = append(out, r.Snapshot())
	}
	return out
}
