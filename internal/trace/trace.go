// Package trace provides lightweight instrumentation for the simulation and
// the benchmark harness: named counters and log-scaled latency histograms
// with exact min/max/mean and quantile estimates. Everything works on
// simulated durations, so distributions are reproducible bit-for-bit.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"hamoffload/internal/simtime"
)

// Histogram accumulates durations in half-power-of-two buckets between 1 ns
// and ~17 s, with exact extreme values and sums.
type Histogram struct {
	name    string
	count   int64
	sum     simtime.Duration
	min     simtime.Duration
	max     simtime.Duration
	buckets [128]int64
}

// NewHistogram returns an empty histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name, min: math.MaxInt64}
}

// bucketOf maps a duration to a bucket index: 2 buckets per octave starting
// at 1 ns. It is exactly consistent with bucketLow — for every d >= 1 ns,
// bucketLow(bucketOf(d)) <= d, and d < bucketLow(bucketOf(d)+1) unless the
// top bucket caught it. The float log estimate can land one bucket off at
// boundaries (2*log2 truncation vs the truncated pow in bucketLow), so the
// estimate is nudged until the invariant holds.
func bucketOf(d simtime.Duration) int {
	ns := float64(d) / float64(simtime.Nanosecond)
	if ns < 1 {
		return 0
	}
	i := int(2 * math.Log2(ns))
	if i < 0 {
		i = 0
	}
	if i > 127 {
		i = 127
	}
	for i > 0 && bucketLow(i) > d {
		i--
	}
	for i < 127 && bucketLow(i+1) <= d {
		i++
	}
	return i
}

// bucketLow returns the lower bound of bucket i, saturating at MaxInt64:
// buckets past ~2^53 ns exceed the picosecond range, and the naive float
// conversion used to wrap to a negative duration.
func bucketLow(i int) simtime.Duration {
	v := math.Pow(2, float64(i)/2) * float64(simtime.Nanosecond)
	if v >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	return simtime.Duration(v)
}

// Observe records one duration.
func (h *Histogram) Observe(d simtime.Duration) {
	if d < 0 {
		d = 0
	}
	h.count++
	h.sum += d
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.buckets[bucketOf(d)]++
}

// Merge folds o's observations into h. Bucket layouts are identical by
// construction, so merging loses nothing beyond what bucketing already did;
// the SLO tracker uses it to coarsen adjacent accounting windows.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	h.count += o.count
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the total observed duration.
func (h *Histogram) Sum() simtime.Duration { return h.sum }

// Min returns the smallest observation (0 when empty).
func (h *Histogram) Min() simtime.Duration {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation.
func (h *Histogram) Max() simtime.Duration { return h.max }

// Mean returns the average observation.
func (h *Histogram) Mean() simtime.Duration {
	if h.count == 0 {
		return 0
	}
	return h.sum / simtime.Duration(h.count)
}

// Quantile returns an estimate of the q-quantile (0 <= q <= 1), resolved to
// bucket granularity and clamped to the exact min/max.
func (h *Histogram) Quantile(q float64) simtime.Duration {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	rank := int64(q * float64(h.count))
	var cum int64
	for i, c := range h.buckets {
		cum += c
		if cum > rank {
			est := bucketLow(i)
			if est < h.min {
				est = h.min
			}
			if est > h.max {
				est = h.max
			}
			return est
		}
	}
	return h.max
}

// Render writes a human-readable summary plus a bar for every non-empty
// bucket.
func (h *Histogram) Render(w io.Writer) {
	fmt.Fprintf(w, "%s: n=%d min=%v p50=%v p99=%v max=%v mean=%v\n",
		h.name, h.count, h.Min(), h.Quantile(0.5), h.Quantile(0.99), h.Max(), h.Mean())
	if h.count == 0 {
		return
	}
	var peak int64
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	for i, c := range h.buckets {
		if c == 0 {
			continue
		}
		bar := int(float64(c) / float64(peak) * 40)
		if bar < 1 {
			bar = 1
		}
		fmt.Fprintf(w, "  >=%-10v %8d |%s\n", bucketLow(i), c, strings.Repeat("#", bar))
	}
}

// Counters is a registry of named event counters.
type Counters struct {
	m map[string]int64
}

// NewCounters returns an empty registry.
func NewCounters() *Counters { return &Counters{m: map[string]int64{}} }

// Add increments a counter by delta.
func (c *Counters) Add(name string, delta int64) { c.m[name] += delta }

// Get reads a counter (0 when never touched).
func (c *Counters) Get(name string) int64 { return c.m[name] }

// Names returns all counter names, sorted.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.m))
	for n := range c.m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Render writes all counters in sorted order.
func (c *Counters) Render(w io.Writer) {
	for _, n := range c.Names() {
		fmt.Fprintf(w, "%-32s %12d\n", n, c.m[n])
	}
}
