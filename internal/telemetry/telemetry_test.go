package telemetry

import (
	"bytes"
	"sync"
	"testing"

	"hamoffload/internal/simtime"
)

// TestNilCollector: every method on a nil *Collector is a safe no-op — the
// zero-cost-off contract core's instrumentation sites rely on.
func TestNilCollector(t *testing.T) {
	var c *Collector
	c.Gauge(0, SeriesInflight, 0, 1)
	c.Add(0, SeriesBytes, 0, 1)
	c.ObserveLatency(0, simtime.Microsecond)
	c.Event(1, 0, 0, FlowIssue, "x")
	if id := c.NextTraceID(); id != 0 {
		t.Fatalf("nil NextTraceID = %d, want 0", id)
	}
	if c.FlowsEnabled() {
		t.Fatal("nil FlowsEnabled = true")
	}
	if s := c.Series(); s != nil {
		t.Fatalf("nil Series = %v", s)
	}
	if r := c.SLOReport(); r.N != 0 {
		t.Fatalf("nil SLOReport = %+v", r)
	}
	var buf bytes.Buffer
	if err := c.ExportChromeFlows(&buf); err != nil {
		t.Fatal(err)
	}
	if err := c.ExportFolded(&buf); err != nil {
		t.Fatal(err)
	}
	c.Render(&buf)
	if !bytes.Contains(buf.Bytes(), []byte("telemetry disabled")) {
		t.Fatalf("nil Render output %q", buf.String())
	}
}

// TestTraceIDsDeterministic: the ID stream is nonzero, unique, and identical
// across collectors — reruns of the same simulation reuse the same IDs.
func TestTraceIDsDeterministic(t *testing.T) {
	a, b := New(Config{}), New(Config{})
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		ida, idb := a.NextTraceID(), b.NextTraceID()
		if ida != idb {
			t.Fatalf("ID %d differs across collectors: %x vs %x", i, ida, idb)
		}
		if ida == 0 {
			t.Fatalf("ID %d is zero", i)
		}
		if seen[ida] {
			t.Fatalf("ID %x repeated", ida)
		}
		seen[ida] = true
	}
}

// TestCollectorSeriesSorted: Series() snapshots are (node, name)-sorted
// regardless of recording order, and are copies (mutating a snapshot does not
// touch the live series).
func TestCollectorSeriesSorted(t *testing.T) {
	c := New(Config{})
	c.Add(1, SeriesBytes, 0, 10)
	c.Gauge(0, SeriesQueue, 0, 2)
	c.Gauge(0, SeriesInflight, 0, 1)
	s := c.Series()
	if len(s) != 3 {
		t.Fatalf("series %d, want 3", len(s))
	}
	if s[0].Name() != SeriesQueue || s[1].Name() != SeriesInflight || s[2].Node() != 1 {
		t.Fatalf("order: %s/%d, %s/%d, %s/%d", s[0].Name(), s[0].Node(),
			s[1].Name(), s[1].Node(), s[2].Name(), s[2].Node())
	}
	s[0].Bins()[0] = Bin{}
	if c.Series()[0].Bins()[0].Count == 0 {
		t.Fatal("snapshot shares storage with live series")
	}
}

// TestCollectorConcurrent: recording from multiple goroutines (the wall-clock
// backend case) is race-free and loses nothing. Run under -race.
func TestCollectorConcurrent(t *testing.T) {
	c := New(Config{Flows: true})
	const workers, per = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				now := simtime.Time(int64(i) * int64(simtime.Microsecond))
				c.Gauge(w, SeriesInflight, now, int64(i%3))
				c.Add(w, SeriesBytes, now, 64)
				c.ObserveLatency(now, simtime.Duration(i)*simtime.Nanosecond)
				c.Event(c.NextTraceID(), now, w, FlowIssue, "f")
			}
		}(w)
	}
	wg.Wait()
	if got := c.SLOReport().N; got != workers*per {
		t.Fatalf("SLO observations %d, want %d", got, workers*per)
	}
	if got := len(c.FlowEvents()); got != workers*per {
		t.Fatalf("flow events %d, want %d", got, workers*per)
	}
	var bytesTotal int64
	for _, s := range c.Series() {
		if s.Name() == SeriesBytes {
			bytesTotal += s.Total().Sum
		}
	}
	if bytesTotal != workers*per*64 {
		t.Fatalf("bytes total %d, want %d", bytesTotal, workers*per*64)
	}
}
