package telemetry

import (
	"runtime"
	"time"

	"hamoffload/internal/simtime"
)

// EngineStats is one profiled run of the DES engine: how fast the simulator
// itself executes on the machine running it. The simulated-clock fields
// (Events, FinalTime, MaxQueueLen) are deterministic and reproduce
// bit-for-bit; the wall-clock and allocation fields describe the host Go
// runtime and vary run to run — they exist precisely to catch the engine
// getting slower in real terms.
type EngineStats struct {
	Events      uint64        // wake events the engine processed
	FinalTime   simtime.Time  // simulated clock at completion
	MaxQueueLen int           // event-queue high-water mark
	Wall        time.Duration // real elapsed time of the run

	EventsPerWallSec float64 // Events / Wall seconds — the engine-speed gate
	AllocsPerEvent   float64 // heap allocations per simulated event
}

// ProfileEngine runs one simulation (run must drive eng to completion, e.g.
// a machine.RunMain closure) and measures the engine's real-world cost. It
// is the one sanctioned wall-clock reader in the simulation tree: profiling
// the simulator's own speed is meaningless on the simulated clock, so the
// reads below are allowed by name, like trace's WallClock bridge.
func ProfileEngine(eng *simtime.Engine, run func() error) (EngineStats, error) {
	ev0 := eng.Events()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	//lint:allow walltime the engine profiler measures real events/sec by
	// design; this wall-clock read never feeds simulated time.
	start := time.Now()
	err := run()
	//lint:allow walltime closing the same sanctioned real-time measurement.
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)

	st := EngineStats{
		Events:      eng.Events() - ev0,
		FinalTime:   eng.Now(),
		MaxQueueLen: eng.MaxQueueLen(),
		Wall:        wall,
	}
	if s := wall.Seconds(); s > 0 {
		st.EventsPerWallSec = float64(st.Events) / s
	}
	if st.Events > 0 {
		st.AllocsPerEvent = float64(m1.Mallocs-m0.Mallocs) / float64(st.Events)
	}
	return st, err
}
