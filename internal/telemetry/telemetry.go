// Package telemetry is the continuous-observability layer of the simulated
// serving stack: where internal/trace aggregates point-in-time span stats,
// this package records how the system *evolves* over simulated time.
//
// It provides four instruments, all sampled on the deterministic DES clock:
//
//   - fixed-interval time series (gauges and rate counters) in ring buffers
//     that downsample by pair-merging when they fill, so a series covers an
//     arbitrarily long run in bounded memory without losing totals;
//   - a windowed SLO tracker computing rolling p50/p99/p99.9 offload latency
//     and violation (burn-rate) accounting against a latency target;
//   - causal offload traces: a deterministic 64-bit trace ID carried through
//     core's wire envelopes links issue, placement, batch flush, retry,
//     execute and settle events of one offload into a single record,
//     exportable as Chrome flow events or folded flamegraph stacks;
//   - a DES engine profiler measuring the *real* cost of simulation itself
//     (wall-clock events/sec, allocations per event, queue depth).
//
// A nil *Collector is valid and records nothing; every instrumentation site
// in core costs one nil check when telemetry is off, keeping un-armed runs
// bit-identical to the un-instrumented runtime. With a collector attached
// but Flows off, recording is pure bookkeeping on the host — no wire bytes
// change, so simulated timing stays bit-identical too. Arming Flows adds a
// 12-byte causal frame per message, which is a (deterministic) timing change.
package telemetry

import (
	"sort"
	"sync"

	"hamoffload/internal/simtime"
)

// Config parameterises a Collector. The zero value of every field selects a
// sensible default, so Collector{} is usable via New(Config{}).
type Config struct {
	// Interval is the initial time-series bin width (default 1 µs). Bins
	// double in width every time a series outgrows MaxBins.
	Interval simtime.Duration
	// MaxBins caps each series' ring buffer (default 128, rounded up to even).
	MaxBins int
	// SLOTarget is the offload-latency objective (default 50 µs).
	SLOTarget simtime.Duration
	// SLOBudget is the allowed violation fraction (default 0.01 = 1%).
	SLOBudget float64
	// SLOWindow is the initial SLO accounting window (default 100 µs);
	// windows double like series bins when MaxWindows is exceeded.
	SLOWindow simtime.Duration
	// MaxWindows caps the retained SLO windows (default 64, rounded to even).
	MaxWindows int
	// Flows arms causal tracing: trace IDs are allocated per offload and a
	// causal frame is added to every wire message. Off by default because it
	// changes wire bytes (and therefore simulated transfer timing).
	Flows bool
}

func (c Config) fill() Config {
	if c.Interval <= 0 {
		c.Interval = simtime.Microsecond
	}
	if c.MaxBins <= 0 {
		c.MaxBins = 128
	}
	if c.MaxBins%2 != 0 {
		c.MaxBins++
	}
	if c.SLOTarget <= 0 {
		c.SLOTarget = 50 * simtime.Microsecond
	}
	if c.SLOBudget <= 0 {
		c.SLOBudget = 0.01
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = 100 * simtime.Microsecond
	}
	if c.MaxWindows <= 0 {
		c.MaxWindows = 64
	}
	if c.MaxWindows%2 != 0 {
		c.MaxWindows++
	}
	return c
}

// Standard series names recorded by the runtime. Bench and render code keys
// off these; user code may record additional series freely.
const (
	SeriesInflight  = "offload.inflight" // gauge: in-flight offloads per target node
	SeriesQueue     = "batch.queue"      // gauge: queued messages per target node
	SeriesOccupancy = "batch.occupancy"  // counter: messages per shipped frame
	SeriesRetries   = "offload.retries"  // counter: retransmissions per target node
	SeriesBytes     = "wire.bytes"       // counter: wire bytes shipped per target node
	SeriesHedges    = "offload.hedges"   // counter: hedged re-issues per hedge-target node
	SeriesHealth    = "health.ewma"      // gauge: latency EWMA per target node (picoseconds)
	SeriesBreaker   = "health.breaker"   // gauge: breaker state per target node (0 closed, 1 open, 2 half-open)

	// Serving-gateway series (see the gateway package): queue depths and
	// steals are recorded per target VE; admission counters are gateway-wide
	// and recorded on the host node.
	SeriesGatewayQueue  = "gateway.queue"   // gauge: queued requests per VE
	SeriesGatewaySteals = "gateway.steals"  // counter: requests stolen into an idling VE
	SeriesGatewayAdmit  = "gateway.admits"  // counter: admitted requests (host node)
	SeriesGatewayReject = "gateway.rejects" // counter: rejected requests (host node)
)

// Collector owns all telemetry of one simulated application: the host and
// target runtimes of a machine share one Collector, so causal records span
// nodes. It is safe for concurrent use (wall-clock backends record from
// their proxy goroutines); on the simulated backends all recording happens
// from the single running DES process, so the contents are deterministic.
//
// A nil *Collector is valid and ignores everything.
type Collector struct {
	mu       sync.Mutex
	cfg      Config
	series   map[seriesKey]*Series
	order    []*Series
	slo      *SLO
	flows    *FlowLog // nil unless cfg.Flows
	traceSeq uint64
}

type seriesKey struct {
	node int
	name string
}

// New returns an empty collector with cfg's (defaulted) parameters.
func New(cfg Config) *Collector {
	cfg = cfg.fill()
	c := &Collector{
		cfg:    cfg,
		series: map[seriesKey]*Series{},
		slo:    newSLO(cfg.SLOTarget, cfg.SLOBudget, cfg.SLOWindow, cfg.MaxWindows),
	}
	if cfg.Flows {
		c.flows = newFlowLog()
	}
	return c
}

// Config returns the collector's (defaulted) configuration.
func (c *Collector) Config() Config {
	if c == nil {
		return Config{}
	}
	return c.cfg
}

// FlowsEnabled reports whether causal flow tracing is armed. False on nil.
func (c *Collector) FlowsEnabled() bool { return c != nil && c.flows != nil }

// locked returns the series for (node, name), creating it on demand.
// Callers hold c.mu.
func (c *Collector) seriesLocked(node int, name string, kind Kind) *Series {
	k := seriesKey{node: node, name: name}
	s, ok := c.series[k]
	if !ok {
		s = newSeries(name, node, kind, c.cfg.Interval, c.cfg.MaxBins)
		c.series[k] = s
		c.order = append(c.order, s)
	}
	return s
}

// Gauge records an instantaneous level — in-flight offloads, queue depth —
// for (node, name) at simulated time now.
func (c *Collector) Gauge(node int, name string, now simtime.Time, v int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.seriesLocked(node, name, Gauge).record(now, v)
	c.mu.Unlock()
}

// Add records a rate-counter increment — retries, bytes moved — for
// (node, name) at simulated time now.
func (c *Collector) Add(node int, name string, now simtime.Time, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.seriesLocked(node, name, Counter).record(now, delta)
	c.mu.Unlock()
}

// ObserveLatency feeds one completed offload's issue-to-settle latency into
// the SLO tracker, binned by completion time.
func (c *Collector) ObserveLatency(now simtime.Time, d simtime.Duration) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.slo.observe(now, d)
	c.mu.Unlock()
}

// NextTraceID allocates the next deterministic 64-bit trace ID. IDs are a
// splitmix64 mix of an allocation counter: unique, well-spread for display
// tools, and identical across reruns of the same simulation.
func (c *Collector) NextTraceID() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	c.traceSeq++
	id := splitmix64(c.traceSeq)
	c.mu.Unlock()
	return id
}

// Event appends one causal flow event. A no-op unless Flows is armed.
func (c *Collector) Event(id uint64, now simtime.Time, node int, kind FlowKind, name string) {
	if c == nil || c.flows == nil || id == 0 {
		return
	}
	c.mu.Lock()
	c.flows.append(FlowEvent{ID: id, T: now, Node: node, Kind: kind, Name: name})
	c.mu.Unlock()
}

// Series returns snapshots of every recorded series, sorted by (node, name)
// so iteration order is deterministic regardless of recording interleaving.
func (c *Collector) Series() []*Series {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	out := make([]*Series, 0, len(c.order))
	for _, s := range c.order {
		out = append(out, s.clone())
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].node != out[j].node {
			return out[i].node < out[j].node
		}
		return out[i].name < out[j].name
	})
	return out
}

// SLOReport returns the current SLO accounting (zero value on nil).
func (c *Collector) SLOReport() SLOReport {
	if c == nil {
		return SLOReport{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.slo.report()
}

// FlowEvents returns a copy of the causal event log in recording order.
func (c *Collector) FlowEvents() []FlowEvent {
	if c == nil || c.flows == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]FlowEvent(nil), c.flows.events...)
}

// splitmix64 is the finalizer of the SplitMix64 generator — a cheap,
// high-quality bijective mix, so sequential seeds yield well-spread IDs.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E9B5
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}
