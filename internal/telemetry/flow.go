package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"

	"hamoffload/internal/simtime"
)

// FlowKind labels one step of an offload's causal record.
type FlowKind string

const (
	// FlowIssue marks the offload being issued on the initiator.
	FlowIssue FlowKind = "issue"
	// FlowPlace marks a scheduler placement decision (name = policy).
	FlowPlace FlowKind = "place"
	// FlowFlush marks the offload's batch frame shipping (name = frame label).
	FlowFlush FlowKind = "flush"
	// FlowRetry marks a retransmission of the offload's wire message.
	FlowRetry FlowKind = "retry"
	// FlowExecute marks the message dispatching on the target node.
	FlowExecute FlowKind = "execute"
	// FlowSettle marks the offload's future settling on the initiator.
	FlowSettle FlowKind = "settle"
)

// FlowEvent is one step of one offload's causal record. Events sharing an ID
// belong to one offload; recording order within an ID is causal order.
type FlowEvent struct {
	ID   uint64
	T    simtime.Time
	Node int // node the step happened on (target node for place)
	Kind FlowKind
	Name string // functor name, policy name, or retry label
}

// Label is the event's display string in exports.
func (e FlowEvent) Label() string {
	if e.Name == "" {
		return string(e.Kind)
	}
	return string(e.Kind) + " " + e.Name
}

// FlowLog accumulates causal events in recording order with a per-ID index.
type FlowLog struct {
	events []FlowEvent
	byID   map[uint64][]int // event indices per trace ID, recording order
}

func newFlowLog() *FlowLog { return &FlowLog{byID: map[uint64][]int{}} }

func (l *FlowLog) append(e FlowEvent) {
	l.byID[e.ID] = append(l.byID[e.ID], len(l.events))
	l.events = append(l.events, e)
}

// usOf renders a simulated time as Chrome's microsecond float.
func usOf(t simtime.Time) float64 {
	return float64(t) / float64(simtime.Microsecond)
}

// ExportChromeFlows writes the causal log as Chrome trace-event JSON: every
// event is a thin slice on its node's track, and events sharing a trace ID
// are connected with flow arrows (ph s/t/f), so chrome://tracing or Perfetto
// draws each offload's issue → place → flush → execute → settle chain across
// nodes. Output is deterministic: recording order, stable field order.
func (c *Collector) ExportChromeFlows(w io.Writer) error {
	if c == nil || c.flows == nil {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	c.mu.Lock()
	events := append([]FlowEvent(nil), c.flows.events...)
	c.mu.Unlock()
	// Rebuild the per-ID index from the snapshot: recording order, so the
	// export never depends on map iteration order.
	byID := make(map[uint64][]int)
	for i, e := range events {
		byID[e.ID] = append(byID[e.ID], i)
	}

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	first := true
	emit := func(format string, args ...any) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	// pid = node + 2 keeps node tracks aligned with trace.ExportChrome's
	// convention (pids 0/1 are reserved for metadata-ish tracks there).
	seenPid := map[int]bool{}
	for i, e := range events {
		pid := e.Node + 2
		if !seenPid[pid] {
			seenPid[pid] = true
			emit(`{"name":"process_name","ph":"M","pid":%d,"tid":0,"args":{"name":"node %d"}}`, pid, e.Node)
		}
		emit(`{"name":%q,"cat":"flow","ph":"X","ts":%.6f,"dur":0.001,"pid":%d,"tid":1}`,
			e.Label(), usOf(e.T), pid)
		chain := byID[e.ID]
		if len(chain) < 2 {
			continue
		}
		pos := 0
		for j, idx := range chain {
			if idx == i {
				pos = j
				break
			}
		}
		ph := "t"
		switch pos {
		case 0:
			ph = "s"
		case len(chain) - 1:
			ph = "f"
		}
		bp := ""
		if ph == "f" {
			bp = `,"bp":"e"`
		}
		emit(`{"name":"offload","cat":"flow","ph":%q,"id":"0x%x","ts":%.6f,"pid":%d,"tid":1%s}`,
			ph, e.ID, usOf(e.T), pid, bp)
	}
	if _, err := bw.WriteString("\n]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ExportFolded writes the causal log as folded flamegraph stacks (the
// flamegraph.pl / inferno input format): each offload contributes one frame
// per causal step, and the weight of a stack prefix is the simulated time
// spent between its last step and the next. Lines are aggregated and sorted,
// so identical runs produce identical bytes.
func (c *Collector) ExportFolded(w io.Writer) error {
	if c == nil || c.flows == nil {
		return nil
	}
	c.mu.Lock()
	events := append([]FlowEvent(nil), c.flows.events...)
	c.mu.Unlock()
	// Rebuild the per-ID chains from the snapshot; ids keeps first-seen
	// (recording) order, so no map iteration order leaks into the export.
	var ids []uint64
	chains := make(map[uint64][]int)
	for i, e := range events {
		if _, ok := chains[e.ID]; !ok {
			ids = append(ids, e.ID)
		}
		chains[e.ID] = append(chains[e.ID], i)
	}

	weights := map[string]int64{}
	for _, id := range ids {
		chain := chains[id]
		stack := ""
		for i := 0; i+1 < len(chain); i++ {
			cur, next := events[chain[i]], events[chain[i+1]]
			if stack == "" {
				stack = cur.Label()
			} else {
				stack += ";" + cur.Label()
			}
			gap := next.T.Sub(cur.T)
			if gap < 0 {
				gap = 0
			}
			weights[stack] += int64(gap)
		}
	}
	stacks := make([]string, 0, len(weights))
	for s := range weights {
		stacks = append(stacks, s)
	}
	sort.Strings(stacks)
	bw := bufio.NewWriter(w)
	for _, s := range stacks {
		// Weights are picoseconds of simulated time; flamegraph tools treat
		// them as opaque sample counts.
		fmt.Fprintf(bw, "%s %d\n", s, weights[s])
	}
	return bw.Flush()
}

// FlowKindCounts tallies the causal log by kind, sorted by kind name — the
// render summary line.
func (c *Collector) FlowKindCounts() []struct {
	Kind  FlowKind
	Count int64
} {
	if c == nil || c.flows == nil {
		return nil
	}
	c.mu.Lock()
	m := map[FlowKind]int64{}
	for _, e := range c.flows.events {
		m[e.Kind]++
	}
	c.mu.Unlock()
	kinds := make([]FlowKind, 0, len(m))
	for k := range m {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	out := make([]struct {
		Kind  FlowKind
		Count int64
	}, 0, len(kinds))
	for _, k := range kinds {
		out = append(out, struct {
			Kind  FlowKind
			Count int64
		}{k, m[k]})
	}
	return out
}
