package telemetry

import (
	"math/rand"
	"testing"

	"hamoffload/internal/simtime"
)

// oracleBins folds samples directly onto the grid of width interval — the
// downsampling-free reference layout. Samples must be time-nondecreasing.
func oracleBins(samples []sample, interval simtime.Duration) map[int64]Bin {
	out := map[int64]Bin{}
	for _, sm := range samples {
		idx := int64(sm.t) / int64(interval)
		out[idx] = mergeBins(out[idx], Bin{Count: 1, Sum: sm.v, Min: sm.v, Max: sm.v, Last: sm.v})
	}
	return out
}

type sample struct {
	t simtime.Time
	v int64
}

// TestDownsampleDeterministicLossless is the property test for the series
// ring buffer: for random nondecreasing sample streams that overflow the ring
// several times, the final layout must (a) equal the oracle binning computed
// directly at the final interval — i.e. downsampling is deterministic and
// depends only on the samples, not on when the ring filled — and (b) preserve
// the aggregate Count/Sum/Min/Max/Last exactly.
func TestDownsampleDeterministicLossless(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		maxBins := 2 * (2 + rng.Intn(15)) // 4..32, even
		interval := simtime.Duration(1+rng.Intn(1000)) * simtime.Nanosecond
		n := 50 + rng.Intn(500)

		var samples []sample
		now := simtime.Time(rng.Int63n(int64(interval) * 10))
		for i := 0; i < n; i++ {
			// Long strides force repeated downsampling; short ones test
			// same-bin merges.
			now = now.Add(simtime.Duration(rng.Int63n(int64(interval) * 5)))
			samples = append(samples, sample{t: now, v: rng.Int63n(1000) - 200})
		}

		s := newSeries("prop", 0, Counter, interval, maxBins)
		for _, sm := range samples {
			s.record(sm.t, sm.v)
		}

		if len(s.bins) > maxBins {
			t.Fatalf("seed %d: ring overflowed: %d bins > max %d", seed, len(s.bins), maxBins)
		}

		// (a) determinism: final bins == direct binning at the final interval.
		oracle := oracleBins(samples, s.interval)
		for i, b := range s.bins {
			idx := s.firstBin + int64(i)
			want := oracle[idx]
			if b != want {
				t.Fatalf("seed %d: bin %d (grid %d): got %+v want %+v (interval %v)",
					seed, i, idx, b, want, s.interval)
			}
			delete(oracle, idx)
		}
		for idx, b := range oracle {
			t.Fatalf("seed %d: oracle bin at grid %d (%+v) missing from ring", seed, idx, b)
		}

		// (b) losslessness: bins re-aggregate to the all-time total.
		var agg Bin
		for _, b := range s.bins {
			agg = mergeBins(agg, b)
		}
		if agg != s.total {
			t.Fatalf("seed %d: aggregate %+v != total %+v", seed, agg, s.total)
		}
		if agg.Count != int64(n) {
			t.Fatalf("seed %d: aggregate count %d != samples %d", seed, agg.Count, n)
		}
	}
}

// TestDownsampleAtExactBoundary pins the exact ring-boundary behaviour: the
// ring fills to maxBins without downsampling, and the first sample past the
// edge halves resolution once.
func TestDownsampleAtExactBoundary(t *testing.T) {
	const maxBins = 8
	iv := simtime.Microsecond
	s := newSeries("edge", 0, Counter, iv, maxBins)
	for i := 0; i < maxBins; i++ {
		s.record(simtime.Time(int64(i)*int64(iv)), 1)
	}
	if len(s.bins) != maxBins || s.interval != iv {
		t.Fatalf("pre-boundary: %d bins at %v, want %d at %v", len(s.bins), s.interval, maxBins, iv)
	}
	s.record(simtime.Time(int64(maxBins)*int64(iv)), 1)
	if s.interval != 2*iv {
		t.Fatalf("post-boundary interval %v, want %v", s.interval, 2*iv)
	}
	if len(s.bins) != maxBins/2+1 {
		t.Fatalf("post-boundary bins %d, want %d", len(s.bins), maxBins/2+1)
	}
	for i, b := range s.bins {
		wantCount := int64(2)
		if i == len(s.bins)-1 {
			wantCount = 1
		}
		if b.Count != wantCount || b.Sum != wantCount {
			t.Fatalf("bin %d: %+v, want count=sum=%d", i, b, wantCount)
		}
	}
}

// TestStaleSampleClampsToNewestBin: recording with a timestamp older than the
// newest bin folds into the newest bin instead of rewriting history.
func TestStaleSampleClampsToNewestBin(t *testing.T) {
	iv := simtime.Microsecond
	s := newSeries("stale", 0, Gauge, iv, 8)
	s.record(simtime.Time(5*int64(iv)), 10)
	s.record(simtime.Time(2*int64(iv)), 7) // stale
	if got := len(s.bins); got != 1 {
		t.Fatalf("bins %d, want 1 (stale sample must not extend backwards)", got)
	}
	b := s.bins[0]
	if b.Count != 2 || b.Last != 7 || b.Max != 10 {
		t.Fatalf("newest bin %+v, want both samples merged", b)
	}
}

// TestGaugeCounterRendering: empty-bin handling differs by kind.
func TestGaugeCounterRendering(t *testing.T) {
	iv := simtime.Microsecond
	g := newSeries("g", 0, Gauge, iv, 16)
	g.record(0, 3)
	g.record(simtime.Time(3*int64(iv)), 5) // bins 1,2 empty
	line, peak := sparkline(g)
	if peak != 5 {
		t.Fatalf("gauge peak %d, want 5", peak)
	}
	if len(line) != 4 {
		t.Fatalf("gauge line %q, want 4 columns", line)
	}
	// Empty gauge bins inherit the previous level, so columns 1 and 2 must
	// render like column 0, not like zero.
	if line[1] != line[0] || line[2] != line[0] {
		t.Fatalf("gauge carry-forward broken: %q", line)
	}

	c := newSeries("c", 0, Counter, iv, 16)
	c.record(0, 3)
	c.record(simtime.Time(3*int64(iv)), 5)
	cl, _ := sparkline(c)
	if cl[1] != ' ' || cl[2] != ' ' {
		t.Fatalf("counter empty bins should render blank: %q", cl)
	}
}
