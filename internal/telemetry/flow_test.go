package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"hamoffload/internal/simtime"
)

func flowFixture() *Collector {
	c := New(Config{Flows: true})
	us := func(n int64) simtime.Time { return simtime.Time(n * int64(simtime.Microsecond)) }
	a, b := c.NextTraceID(), c.NextTraceID()
	c.Event(a, us(0), 0, FlowIssue, "work")
	c.Event(a, us(1), 1, FlowPlace, "least-inflight")
	c.Event(a, us(2), 0, FlowFlush, "batch")
	c.Event(a, us(5), 1, FlowExecute, "work")
	c.Event(a, us(9), 0, FlowSettle, "")
	c.Event(b, us(3), 0, FlowIssue, "work")
	c.Event(b, us(4), 0, FlowRetry, "work")
	c.Event(b, us(7), 2, FlowExecute, "work")
	c.Event(b, us(8), 0, FlowSettle, "")
	return c
}

func TestExportChromeFlows(t *testing.T) {
	c := flowFixture()
	var buf bytes.Buffer
	if err := c.ExportChromeFlows(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	for _, e := range events {
		phases[e["ph"].(string)]++
	}
	// 9 slices, 3 node metadata records, 9 flow arrows (5 + 4, all chained).
	if phases["X"] != 9 {
		t.Fatalf("slices %d, want 9", phases["X"])
	}
	if phases["M"] != 3 {
		t.Fatalf("metadata %d, want 3 (nodes 0,1,2)", phases["M"])
	}
	if phases["s"] != 2 || phases["f"] != 2 {
		t.Fatalf("flow starts/finishes %d/%d, want 2/2", phases["s"], phases["f"])
	}
	if phases["t"] != 5 {
		t.Fatalf("flow steps %d, want 5", phases["t"])
	}
	// Determinism: a second export is byte-identical.
	var buf2 bytes.Buffer
	if err := c.ExportChromeFlows(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("ExportChromeFlows is not deterministic")
	}
}

func TestExportFolded(t *testing.T) {
	c := flowFixture()
	var buf bytes.Buffer
	if err := c.ExportFolded(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Chain a yields 4 stack prefixes, chain b yields 3, and the two share
	// the "issue work" root: 6 distinct stacks.
	if len(lines) != 6 {
		t.Fatalf("folded lines %d, want 6:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "issue work ") {
		t.Fatalf("folded output not sorted, first line %q", lines[0])
	}
	// Trace a's full chain: 4µs gap between execute and settle.
	want := "issue work;place least-inflight;flush batch;execute work 4000000"
	if !strings.Contains(out, want+"\n") {
		t.Fatalf("missing stack %q in:\n%s", want, out)
	}
	// Weights are nonnegative simulated picoseconds.
	for _, ln := range lines {
		if strings.HasSuffix(ln, " -") || strings.Contains(ln, " -") {
			t.Fatalf("negative weight in %q", ln)
		}
	}
	var buf2 bytes.Buffer
	if err := c.ExportFolded(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("ExportFolded is not deterministic")
	}
}

func TestFlowKindCounts(t *testing.T) {
	c := flowFixture()
	counts := c.FlowKindCounts()
	got := map[FlowKind]int64{}
	for _, kc := range counts {
		got[kc.Kind] = kc.Count
	}
	want := map[FlowKind]int64{
		FlowIssue: 2, FlowPlace: 1, FlowFlush: 1,
		FlowRetry: 1, FlowExecute: 2, FlowSettle: 2,
	}
	for k, n := range want {
		if got[k] != n {
			t.Fatalf("%s count %d, want %d", k, got[k], n)
		}
	}
	for i := 1; i < len(counts); i++ {
		if counts[i-1].Kind >= counts[i].Kind {
			t.Fatal("FlowKindCounts not sorted by kind")
		}
	}
}

func TestFlowsDisabled(t *testing.T) {
	c := New(Config{}) // Flows off
	c.Event(c.NextTraceID(), 0, 0, FlowIssue, "x")
	if c.FlowsEnabled() {
		t.Fatal("flows should be off by default")
	}
	if evs := c.FlowEvents(); evs != nil {
		t.Fatalf("events recorded with flows off: %v", evs)
	}
	var buf bytes.Buffer
	if err := c.ExportChromeFlows(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "[]\n" {
		t.Fatalf("disabled chrome export %q, want empty array", buf.String())
	}
	buf.Reset()
	if err := c.ExportFolded(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("disabled folded export %q, want empty", buf.String())
	}
}
