package telemetry

import (
	"fmt"
	"io"
	"time"
)

// sparkRamp maps a bin's normalised value to a character; index 0 is "no
// activity". ASCII-only so the output is stable across terminals and diffs.
const sparkRamp = " .:-=+*#%@"

// sparkline renders one series' ring as a fixed-alphabet timeline. Gauges
// plot the end-of-bin level with empty bins inheriting the previous level;
// counters plot the per-bin sum with empty bins at zero.
func sparkline(s *Series) (line string, peak int64) {
	bins := s.Bins()
	vals := make([]int64, len(bins))
	var carry int64
	for i, b := range bins {
		switch {
		case b.Count == 0 && s.Kind() == Gauge:
			vals[i] = carry
		case b.Count == 0:
			vals[i] = 0
		case s.Kind() == Gauge:
			vals[i] = b.Last
			carry = b.Last
		default:
			vals[i] = b.Sum
		}
		if vals[i] > peak {
			peak = vals[i]
		}
	}
	out := make([]byte, len(vals))
	for i, v := range vals {
		idx := 0
		if peak > 0 && v > 0 {
			idx = 1 + int(int64(len(sparkRamp)-2)*v/peak)
			if idx >= len(sparkRamp) {
				idx = len(sparkRamp) - 1
			}
		}
		out[i] = sparkRamp[idx]
	}
	return string(out), peak
}

// RenderSeries writes every series of the collector as an ASCII sparkline
// timeline, sorted by (node, name). Deterministic for deterministic runs.
func (c *Collector) RenderSeries(w io.Writer) {
	series := c.Series()
	if len(series) == 0 {
		fmt.Fprintln(w, "(no series recorded)")
		return
	}
	fmt.Fprintln(w, "Time series (simulated clock; one column per bin)")
	for _, s := range series {
		line, peak := sparkline(s)
		t := s.Total()
		fmt.Fprintf(w, "  node %d %-18s %-7s bin=%-8v peak=%-8d |%s|\n",
			s.Node(), s.Name(), s.Kind().String(), s.Interval(), peak, line)
		fmt.Fprintf(w, "         %-18s start=%v samples=%d sum=%d min=%d max=%d last=%d\n",
			"", s.Start(), t.Count, t.Sum, t.Min, t.Max, t.Last)
	}
}

// RenderSLO writes the SLO accounting table: per-window latency quantiles
// and burn rates plus the overall row.
func (c *Collector) RenderSLO(w io.Writer) {
	r := c.SLOReport()
	fmt.Fprintf(w, "SLO: target=%v budget=%.2f%% window=%v\n",
		r.Target, r.Budget*100, r.Window)
	if r.N == 0 {
		fmt.Fprintln(w, "  (no offloads observed)")
		return
	}
	fmt.Fprintf(w, "  %-12s %6s %12s %12s %12s %12s %6s %8s\n",
		"window", "n", "p50", "p99", "p99.9", "max", "viol", "burn")
	// Window starts print as offsets from the first window: absolute
	// simulated times are dominated by machine boot, which would render
	// every label identically at the default precision.
	for _, ws := range r.Windows {
		fmt.Fprintf(w, "  +%-11v %6d %12v %12v %12v %12v %6d %7.2fx\n",
			ws.Start.Sub(r.Windows[0].Start), ws.N, ws.P50, ws.P99, ws.P999, ws.Max,
			ws.Violations, ws.BurnRate)
	}
	fmt.Fprintf(w, "  %-12s %6d %12v %12v %12v %12v %6d %7.2fx\n",
		"overall", r.N, r.P50, r.P99, r.P999, r.Max, r.Violations, r.BurnRate)
	fmt.Fprintf(w, "  mean=%v violation-rate=%.3f%%\n", r.Mean, r.ViolationRate*100)
}

// RenderFlows writes the causal-log summary: event counts by kind.
func (c *Collector) RenderFlows(w io.Writer) {
	counts := c.FlowKindCounts()
	if len(counts) == 0 {
		return
	}
	fmt.Fprint(w, "Causal flow events:")
	for _, kc := range counts {
		fmt.Fprintf(w, " %s=%d", kc.Kind, kc.Count)
	}
	fmt.Fprintln(w)
}

// Render writes the full telemetry dump: series, SLO table, flow summary.
func (c *Collector) Render(w io.Writer) {
	if c == nil {
		fmt.Fprintln(w, "(telemetry disabled)")
		return
	}
	c.RenderSeries(w)
	fmt.Fprintln(w)
	c.RenderSLO(w)
	c.RenderFlows(w)
}

// RenderEngineStats writes one engine-profile row. The wall-clock numbers
// are annotated as machine-dependent so diffs of captured output do not
// read them as regressions.
func RenderEngineStats(w io.Writer, st EngineStats) {
	fmt.Fprintf(w, "DES engine profile: %d events to t=%v, max queue depth %d\n",
		st.Events, st.FinalTime, st.MaxQueueLen)
	fmt.Fprintf(w, "  wall %v  =>  %.0f events/s, %.1f allocs/event (machine-dependent)\n",
		st.Wall.Round(10*time.Microsecond), st.EventsPerWallSec, st.AllocsPerEvent)
}
