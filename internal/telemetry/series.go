package telemetry

import "hamoffload/internal/simtime"

// Kind distinguishes the two series semantics.
type Kind uint8

const (
	// Gauge series record instantaneous levels; a bin's Last is the level at
	// the end of the bin, and empty bins inherit the previous level.
	Gauge Kind = iota
	// Counter series record increments; a bin's Sum is the amount added
	// during the bin, and empty bins are zero.
	Counter
)

// String returns the kind's render label.
func (k Kind) String() string {
	if k == Counter {
		return "counter"
	}
	return "gauge"
}

// Bin aggregates all samples of one fixed-interval time slot. A Bin with
// Count == 0 is empty and its other fields are meaningless.
type Bin struct {
	Count int64 // samples recorded in this slot
	Sum   int64 // sum of sample values (counter: total increment)
	Min   int64 // smallest sample value
	Max   int64 // largest sample value
	Last  int64 // final sample value (gauge: level at end of slot)
}

// mergeBins combines two adjacent bins, ignoring empty operands.
func mergeBins(a, b Bin) Bin {
	if a.Count == 0 {
		return b
	}
	if b.Count == 0 {
		return a
	}
	out := Bin{
		Count: a.Count + b.Count,
		Sum:   a.Sum + b.Sum,
		Min:   a.Min,
		Max:   a.Max,
		Last:  b.Last,
	}
	if b.Min < out.Min {
		out.Min = b.Min
	}
	if b.Max > out.Max {
		out.Max = b.Max
	}
	return out
}

// Series is one fixed-interval time series in a downsampling ring buffer.
// Bins are aligned to the absolute simulated-time grid (bin i covers
// [i*interval, (i+1)*interval)), so two series recorded with identical
// samples are identical bins regardless of when each first saw data — the
// property the downsampling determinism test pins down.
//
// When appending a sample would exceed maxBins, adjacent bin pairs merge on
// even grid boundaries and the interval doubles. Merging preserves every
// total (Count, Sum, Min, Max, Last), so downsampling is lossless in the
// aggregate: only intra-bin resolution is given up.
type Series struct {
	name     string
	node     int
	kind     Kind
	interval simtime.Duration
	firstBin int64 // absolute grid index of bins[0]
	bins     []Bin
	maxBins  int
	total    Bin // all-time aggregate, unaffected by downsampling
}

func newSeries(name string, node int, kind Kind, interval simtime.Duration, maxBins int) *Series {
	return &Series{name: name, node: node, kind: kind, interval: interval, maxBins: maxBins}
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Node returns the node the series describes.
func (s *Series) Node() int { return s.node }

// Kind returns the series semantics.
func (s *Series) Kind() Kind { return s.kind }

// Interval returns the current bin width (doubles as the series downsamples).
func (s *Series) Interval() simtime.Duration { return s.interval }

// Start returns the simulated time of the first bin's left edge.
func (s *Series) Start() simtime.Time {
	return simtime.Time(s.firstBin * int64(s.interval))
}

// Bins returns the ring contents oldest-first. The slice is the series' own
// storage on a live series and a private copy on snapshots from
// Collector.Series.
func (s *Series) Bins() []Bin { return s.bins }

// Total returns the all-time aggregate over every sample ever recorded.
func (s *Series) Total() Bin { return s.total }

func (s *Series) clone() *Series {
	c := *s
	c.bins = append([]Bin(nil), s.bins...)
	return &c
}

// record folds one sample into the grid bin covering now.
func (s *Series) record(now simtime.Time, v int64) {
	if now < 0 {
		now = 0
	}
	if len(s.bins) == 0 {
		s.firstBin = int64(now) / int64(s.interval)
		s.bins = append(s.bins, Bin{})
	}
	for {
		idx := int64(now) / int64(s.interval)
		last := s.firstBin + int64(len(s.bins)) - 1
		if idx < last {
			// Samples arrive in nondecreasing simulated time per series; a
			// stale stamp (clockless recording) clamps into the newest bin.
			idx = last
		}
		if need := idx - last; int64(len(s.bins))+need > int64(s.maxBins) {
			// Appending the gap would overflow the ring: halve resolution
			// and retry at the coarser grid (the gap halves with it).
			s.downsample()
			continue
		}
		for last < idx {
			s.bins = append(s.bins, Bin{})
			last++
		}
		sample := Bin{Count: 1, Sum: v, Min: v, Max: v, Last: v}
		s.bins[idx-s.firstBin] = mergeBins(s.bins[idx-s.firstBin], sample)
		s.total = mergeBins(s.total, sample)
		return
	}
}

// downsample halves the ring's resolution: pairs aligned to even grid
// indices merge and the interval doubles. Alignment to the absolute grid
// (not the ring start) keeps downsampling deterministic: the merged layout
// depends only on the samples, never on when the ring happened to fill.
func (s *Series) downsample() {
	if s.firstBin%2 != 0 {
		s.bins = append([]Bin{{}}, s.bins...)
		s.firstBin--
	}
	merged := make([]Bin, 0, (len(s.bins)+1)/2)
	for i := 0; i < len(s.bins); i += 2 {
		if i+1 < len(s.bins) {
			merged = append(merged, mergeBins(s.bins[i], s.bins[i+1]))
		} else {
			merged = append(merged, s.bins[i])
		}
	}
	s.bins = merged
	s.firstBin /= 2
	s.interval *= 2
}
