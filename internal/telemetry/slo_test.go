package telemetry

import (
	"testing"

	"hamoffload/internal/simtime"
)

func TestSLOWindowsAndViolations(t *testing.T) {
	target := 50 * simtime.Microsecond
	win := 100 * simtime.Microsecond
	s := newSLO(target, 0.01, win, 64)

	// Window 0: 9 fast + 1 slow. Window 1: 10 fast.
	for i := 0; i < 9; i++ {
		s.observe(simtime.Time(int64(i)*int64(simtime.Microsecond)), 10*simtime.Microsecond)
	}
	s.observe(simtime.Time(50*int64(simtime.Microsecond)), 80*simtime.Microsecond)
	for i := 0; i < 10; i++ {
		s.observe(simtime.Time(int64(win)+int64(i)*int64(simtime.Microsecond)), 20*simtime.Microsecond)
	}

	r := s.report()
	if r.N != 20 || r.Violations != 1 {
		t.Fatalf("overall n=%d viol=%d, want 20/1", r.N, r.Violations)
	}
	if len(r.Windows) != 2 {
		t.Fatalf("windows %d, want 2", len(r.Windows))
	}
	w0, w1 := r.Windows[0], r.Windows[1]
	if w0.N != 10 || w0.Violations != 1 {
		t.Fatalf("window 0: n=%d viol=%d, want 10/1", w0.N, w0.Violations)
	}
	if w1.N != 10 || w1.Violations != 0 {
		t.Fatalf("window 1: n=%d viol=%d, want 10/0", w1.N, w1.Violations)
	}
	if w1.Start != simtime.Time(win) {
		t.Fatalf("window 1 start %v, want %v", w1.Start, simtime.Time(win))
	}
	// 1 violation in 10 with a 1% budget burns 10x.
	if w0.BurnRate < 9.99 || w0.BurnRate > 10.01 {
		t.Fatalf("window 0 burn rate %v, want 10x", w0.BurnRate)
	}
	if w0.Max != 80*simtime.Microsecond {
		t.Fatalf("window 0 max %v, want 80µs", w0.Max)
	}
	if w0.P50 > target {
		t.Fatalf("window 0 p50 %v should be well under target", w0.P50)
	}
}

// TestSLOCoarsening: overflowing maxWin pair-merges windows on the absolute
// grid and doubles the window, preserving counts and violations exactly.
func TestSLOCoarsening(t *testing.T) {
	win := 10 * simtime.Microsecond
	s := newSLO(5*simtime.Microsecond, 0.01, win, 4)
	// 8 consecutive windows, one observation each; every other one violates.
	for i := 0; i < 8; i++ {
		d := simtime.Microsecond
		if i%2 == 1 {
			d = 8 * simtime.Microsecond
		}
		s.observe(simtime.Time(int64(i)*int64(win)), d)
	}
	r := s.report()
	if r.Window != 2*win {
		t.Fatalf("window %v, want doubled %v", r.Window, 2*win)
	}
	if len(r.Windows) != 4 {
		t.Fatalf("windows %d, want 4 after coarsening", len(r.Windows))
	}
	var n, viol int64
	for _, w := range r.Windows {
		if w.N != 2 || w.Violations != 1 {
			t.Fatalf("coarsened window %+v, want n=2 viol=1", w)
		}
		n += w.N
		viol += w.Violations
	}
	if n != 8 || viol != 4 || r.Violations != 4 {
		t.Fatalf("totals n=%d viol=%d (report %d), want 8/4/4", n, viol, r.Violations)
	}
}

// TestSLOCoarsenSparse: windows whose indices stay distinct after one halving
// must keep coarsening until the list fits.
func TestSLOCoarsenSparse(t *testing.T) {
	win := 10 * simtime.Microsecond
	s := newSLO(5*simtime.Microsecond, 0.01, win, 2)
	// Windows 0, 4, 8, 12: one halving leaves indices 0, 2, 4, 6 — still 4.
	for i := 0; i < 4; i++ {
		s.observe(simtime.Time(int64(4*i)*int64(win)), simtime.Microsecond)
	}
	if len(s.wins) > 2 {
		t.Fatalf("coarsening stopped early: %d windows, max 2", len(s.wins))
	}
	r := s.report()
	if r.N != 4 {
		t.Fatalf("n=%d, want 4", r.N)
	}
}
