package telemetry

import (
	"hamoffload/internal/simtime"
	"hamoffload/internal/trace"
)

// SLO tracks offload latency against an objective over rolling simulated-
// time windows: each window holds a full latency histogram (so p50/p99/p99.9
// are available per window, not just overall) plus a violation count. When
// the window list outgrows maxWin, adjacent windows pair-merge on even grid
// boundaries and the window length doubles — the same lossless downsampling
// scheme as Series, applied to histograms.
type SLO struct {
	target     simtime.Duration
	budget     float64
	window     simtime.Duration
	maxWin     int
	wins       []*sloWindow
	total      *trace.Histogram
	violations int64
}

// sloWindow is one accounting window on the absolute grid: window idx covers
// [idx*window, (idx+1)*window).
type sloWindow struct {
	idx        int64
	hist       *trace.Histogram
	violations int64
}

func newSLO(target simtime.Duration, budget float64, window simtime.Duration, maxWin int) *SLO {
	return &SLO{
		target: target, budget: budget, window: window, maxWin: maxWin,
		total: trace.NewHistogram("offload.latency"),
	}
}

// NewSLO builds a standalone SLO tracker outside any Collector, for callers
// that account several objectives side by side — the serving gateway keeps
// one per QoS class. Zero or negative parameters select the Collector's
// defaults (50 µs target, 1% budget, 100 µs windows, 64 of them).
func NewSLO(target simtime.Duration, budget float64, window simtime.Duration, maxWin int) *SLO {
	cfg := Config{SLOTarget: target, SLOBudget: budget, SLOWindow: window, MaxWindows: maxWin}.fill()
	return newSLO(cfg.SLOTarget, cfg.SLOBudget, cfg.SLOWindow, cfg.MaxWindows)
}

// Observe records one completed request's latency at simulated time now.
func (s *SLO) Observe(now simtime.Time, d simtime.Duration) { s.observe(now, d) }

// Report snapshots the SLO accounting.
func (s *SLO) Report() SLOReport { return s.report() }

// observe records one offload latency completed at simulated time now.
func (s *SLO) observe(now simtime.Time, d simtime.Duration) {
	if d < 0 {
		d = 0
	}
	s.total.Observe(d)
	viol := int64(0)
	if d > s.target {
		viol = 1
		s.violations++
	}
	idx := int64(now) / int64(s.window)
	if n := len(s.wins); n > 0 && idx < s.wins[n-1].idx {
		idx = s.wins[n-1].idx
	}
	if n := len(s.wins); n == 0 || s.wins[n-1].idx != idx {
		s.wins = append(s.wins, &sloWindow{idx: idx, hist: trace.NewHistogram("slo.window")})
		// Sparse windows may survive one halving with distinct indices, so
		// coarsen until the list fits again.
		for len(s.wins) > s.maxWin {
			s.coarsen()
		}
	}
	w := s.wins[len(s.wins)-1]
	w.hist.Observe(d)
	w.violations += viol
}

// coarsen doubles the window length and re-buckets the existing windows on
// the coarser grid, merging histograms of windows that now share an index.
// Like Series.downsample, alignment is to the absolute grid, so the final
// layout depends only on the observations.
func (s *SLO) coarsen() {
	var merged []*sloWindow
	for _, w := range s.wins {
		idx := w.idx / 2
		if n := len(merged); n > 0 && merged[n-1].idx == idx {
			merged[n-1].hist.Merge(w.hist)
			merged[n-1].violations += w.violations
			continue
		}
		merged = append(merged, &sloWindow{idx: idx, hist: w.hist, violations: w.violations})
	}
	s.wins = merged
	s.window *= 2
}

// SLOWindowStat is the report row for one accounting window.
type SLOWindowStat struct {
	Start         simtime.Time
	N             int64
	P50           simtime.Duration
	P99           simtime.Duration
	P999          simtime.Duration
	Max           simtime.Duration
	Violations    int64
	ViolationRate float64 // Violations / N
	BurnRate      float64 // ViolationRate / budget; >1 burns error budget
}

// SLOReport is the full SLO accounting snapshot.
type SLOReport struct {
	Target  simtime.Duration
	Budget  float64
	Window  simtime.Duration // current (possibly coarsened) window length
	Windows []SLOWindowStat

	// Overall accounting across every observation.
	N             int64
	P50           simtime.Duration
	P99           simtime.Duration
	P999          simtime.Duration
	Max           simtime.Duration
	Mean          simtime.Duration
	Violations    int64
	ViolationRate float64
	BurnRate      float64
}

func (s *SLO) report() SLOReport {
	r := SLOReport{
		Target: s.target, Budget: s.budget, Window: s.window,
		N:    s.total.Count(),
		P50:  s.total.Quantile(0.5),
		P99:  s.total.Quantile(0.99),
		P999: s.total.Quantile(0.999),
		Max:  s.total.Max(),
		Mean: s.total.Mean(),

		Violations: s.violations,
	}
	if r.N > 0 {
		r.ViolationRate = float64(r.Violations) / float64(r.N)
		r.BurnRate = r.ViolationRate / s.budget
	}
	for _, w := range s.wins {
		ws := SLOWindowStat{
			Start:      simtime.Time(w.idx * int64(s.window)),
			N:          w.hist.Count(),
			P50:        w.hist.Quantile(0.5),
			P99:        w.hist.Quantile(0.99),
			P999:       w.hist.Quantile(0.999),
			Max:        w.hist.Max(),
			Violations: w.violations,
		}
		if ws.N > 0 {
			ws.ViolationRate = float64(ws.Violations) / float64(ws.N)
			ws.BurnRate = ws.ViolationRate / s.budget
		}
		r.Windows = append(r.Windows, ws)
	}
	return r
}
