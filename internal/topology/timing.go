package topology

import (
	"fmt"

	"hamoffload/internal/faults"
	"hamoffload/internal/simtime"
	"hamoffload/internal/telemetry"
	"hamoffload/internal/trace"
	"hamoffload/internal/units"
)

// Timing holds every calibrated cost constant of the simulation. All latency
// and bandwidth behaviour of the machine model derives from this one struct,
// so the whole calibration against the paper's measurements lives here.
//
// Calibration targets (paper §V, Figs. 9-10, Table IV):
//
//   - PCIe round trip ~1.2 µs (cited from the HAM-Offload SC'14 paper).
//   - Native VEO empty offload ≈ 80 µs (derived: the DMA protocol's 6.1 µs is
//     reported 13.1× faster than native VEO).
//   - HAM-Offload over VEO ≈ 430 µs (5.4× native VEO, 70.8× the DMA protocol).
//   - HAM-Offload over user DMA ≈ 6.1 µs = 1.2 µs PCIe RTT + ~5 µs framework.
//   - Offloading from the second socket adds up to ~1 µs (UPI hops).
//   - Table IV peaks: VEO read/write 9.9 / 10.4 GiB/s, VE user DMA
//     10.6 / 11.1 GiB/s, SHM/LHM 0.01 / 0.06 GiB/s (VH→VE / VE→VH).
//   - User DMA near peak at ~1 MiB; VEO transfers need ~64 MiB.
//   - SHM beats user DMA up to 256 B (≈89 % faster for one word, ≈16 % at
//     256 B) and beats VEO-read for small messages.
type Timing struct {
	// --- PCIe / UPI fabric --------------------------------------------------

	// PCIeLatency is the one-way propagation latency VH root complex → VE
	// (or back) through one switch. Two of these form the ~1.2 µs round trip.
	PCIeLatency simtime.Duration
	// PCIeRawRate is the raw Gen3 x16 line rate in bytes/second (14.7 GiB/s).
	PCIeRawRate float64
	// PCIeMaxPayload is the maximum TLP payload (256 B for the VE).
	PCIeMaxPayload units.Bytes
	// PCIeTLPHeader is the per-TLP protocol overhead in bytes; with 256 B
	// payloads this yields the paper's 91 % ≙ 13.4 GiB/s achievable ceiling.
	PCIeTLPHeader units.Bytes
	// UPILatency is the one-way latency added per UPI hop when the initiating
	// process runs on the socket not hosting the VE's PCIe switch.
	UPILatency simtime.Duration

	// --- VEOS service chain (privileged DMA, VEO calls) ---------------------

	// VEOLibOverhead is the user-space VEO library cost on the VH per API
	// call (argument marshalling, locking, syscall entry).
	VEOLibOverhead simtime.Duration
	// IPCUserVEOS is the one-way cost of the pseudo-process ↔ VEOS daemon
	// IPC (unix socket + scheduling).
	IPCUserVEOS simtime.Duration
	// DriverHop is the VEOS ↔ ve_drv/vp kernel module interaction per DMA
	// request (command window programming).
	DriverHop simtime.Duration
	// PrivDMAKick is the cost of posting a descriptor to the privileged DMA
	// engine and raising/handling its completion interrupt.
	PrivDMAKick simtime.Duration
	// PrivDMAReadExtra is the additional one-off cost of a VE→VH read via
	// VEO: the DMA manager must issue a remote descriptor fetch and
	// synchronise with the VE memory controller before data flows back.
	PrivDMAReadExtra simtime.Duration
	// PrivTranslatePerPage is the on-the-fly virtual→physical translation
	// cost per VH page in the naive (pre-4dma) DMA manager.
	PrivTranslatePerPage simtime.Duration
	// BulkTranslateFixed and BulkTranslatePerPage describe the VEOS
	// 1.3.2-4dma bulk translation: a fixed setup plus a pipelined per-page
	// cost that overlaps with descriptor generation and the DMA transfer.
	BulkTranslateFixed   simtime.Duration
	BulkTranslatePerPage simtime.Duration
	// PrivDMAWriteRate / PrivDMAReadRate are the sustained privileged-DMA
	// payload rates (bytes/s) for VH→VE writes and VE→VH reads.
	PrivDMAWriteRate float64
	PrivDMAReadRate  float64

	// --- Native VEO function calls ------------------------------------------

	// VEOCallSubmit is the VH-side cost of enqueuing a VEO function-call
	// command (on top of the IPC chain): command marshalling, context lock,
	// in-VEOS request handling.
	VEOCallSubmit simtime.Duration
	// VEOCallDispatchVE is the VE-side cost of popping a command, looking up
	// the symbol and setting up the C calling convention.
	VEOCallDispatchVE simtime.Duration
	// VEOCmdPollInterval is how often the VE-side VEO worker polls its
	// command queue.
	VEOCmdPollInterval simtime.Duration
	// VEOResultPollInterval is how often a VH context waiting on a call
	// result re-checks the completion queue.
	VEOResultPollInterval simtime.Duration

	// --- VE-initiated communication (user DMA, LHM/SHM) ---------------------

	// UserDMAAPISetup is the VE-side ve_dma_post_wait API overhead per
	// transfer (descriptor build, register writes, completion poll loop).
	UserDMAAPISetup simtime.Duration
	// UserDMAHWLatency is the raw descriptor-to-first-byte hardware latency
	// of the per-core user DMA engine.
	UserDMAHWLatency simtime.Duration
	// UserDMAWriteRate / UserDMAReadRate are sustained user-DMA payload
	// rates (bytes/s): write = VE→VH, read = VH→VE, matching Table IV's
	// 11.1 and 10.6 GiB/s.
	UserDMAWriteRate float64
	UserDMAReadRate  float64
	// UserDMAMaxDescriptor is the largest contiguous block one descriptor
	// moves; larger transfers are split and pipelined.
	UserDMAMaxDescriptor units.Bytes

	// SHMFirstWord is the cost of the first SHM (store host memory)
	// instruction of a burst: posted write setup through the DMAATB path.
	SHMFirstWord simtime.Duration
	// SHMPerWord is the pipelined cost of each subsequent 8-byte SHM store.
	SHMPerWord simtime.Duration
	// LHMPerWord is the cost of one LHM (load host memory) 8-byte load; it is
	// a full round trip and does not pipeline.
	LHMPerWord simtime.Duration

	// DMAATBRegister is the cost of registering a memory segment in the
	// DMAATB (VEHVA mapping); paid once per segment during setup.
	DMAATBRegister simtime.Duration

	// --- HAM-Offload framework costs -----------------------------------------

	// HAMHostOverhead is the per-offload host-side framework cost: functor
	// encoding, slot management, handler-address→key translation.
	HAMHostOverhead simtime.Duration
	// HAMVEOverhead is the per-message VE-side framework cost: key→address
	// translation, functor decode, result encode.
	HAMVEOverhead simtime.Duration
	// HAMHostPollInterval is the host's re-check gap while waiting on a
	// local result flag in the DMA protocol (the flag lives in VH memory).
	HAMHostPollInterval simtime.Duration
	// HAMVEPollInterval is the VE runtime's gap between receive-flag polls:
	// local HBM reads in the VEO protocol, LHM round trips in the DMA
	// protocol.
	HAMVEPollInterval simtime.Duration

	// --- Reverse offload (VH syscall service) -------------------------------

	// SyscallRoundTrip is the cost of a VE system call serviced by its VH
	// pseudo-process (excluding the syscall body itself).
	SyscallRoundTrip simtime.Duration

	// --- Process / library management ---------------------------------------

	// ProcCreate is the cost of veo_proc_create: spawning the VE process,
	// loading the statically linked loader, initialising VEOS structures.
	ProcCreate simtime.Duration
	// LoadLibraryBase and LoadLibraryPerKiB approximate dlopen on the VE.
	LoadLibraryBase   simtime.Duration
	LoadLibraryPerKiB simtime.Duration
	// GetSym is the cost of one symbol lookup.
	GetSym simtime.Duration
	// AllocMem is the VH-side cost of a veo_alloc_mem round trip (an IPC to
	// VEOS plus VE-side allocator work).
	AllocMem simtime.Duration

	// --- Host-side memory ----------------------------------------------------

	// HostPageSize is the VH page size used for DMA translations. 2 MiB huge
	// pages by default (the paper: "it is important to use huge pages of at
	// least 2 MiB"); the ablation switches to 4 KiB.
	HostPageSize units.Bytes
	// HostMemCopyRate is the VH local memcpy rate (bytes/s), used when the
	// DMA protocol touches message buffers in local shared memory.
	HostMemCopyRate float64
	// VEMemCopyRate is the VE local HBM copy rate (bytes/s).
	VEMemCopyRate float64

	// Tracer, when non-nil, collects timeline spans from the instrumented
	// components (VEO calls, privileged/user DMA, LHM/SHM ops, HAM protocol
	// steps) for Chrome-trace export, latency breakdowns, and the per-node
	// metrics registries. Nil disables recording at zero cost.
	Tracer *trace.Tracer

	// Faults, when non-nil, is the deterministic fault injector consulted at
	// the substrate hook points (privileged/user DMA, LHM/SHM, VEOS daemon
	// entry, PCIe links). Nil — the default — injects nothing at zero cost,
	// exactly like Tracer. Substrate rules key their Node field to the VE
	// card id.
	Faults *faults.Injector

	// Telemetry, when non-nil, is the continuous-observability collector the
	// HAM runtimes on this machine share: simulated-clock time series, SLO
	// latency accounting and (when armed) causal offload flows. Nil — the
	// default — records nothing at zero cost, exactly like Tracer.
	Telemetry *telemetry.Collector
}

// DefaultTiming returns the calibrated constants reproducing the paper's
// measurements on the A300-8 (VEOS 1.3.2-4dma, huge pages enabled).
func DefaultTiming() Timing {
	return Timing{
		PCIeLatency:    600 * simtime.Nanosecond, // 2 × 600 ns ≈ 1.2 µs RTT
		PCIeRawRate:    14.7 * float64(units.GiB),
		PCIeMaxPayload: 256 * units.B,
		PCIeTLPHeader:  26 * units.B, // 256/282 ≈ 91 % efficiency → 13.4 GiB/s
		UPILatency:     300 * simtime.Nanosecond,

		VEOLibOverhead:       2 * simtime.Microsecond,
		IPCUserVEOS:          18 * simtime.Microsecond,
		DriverHop:            20 * simtime.Microsecond,
		PrivDMAKick:          20 * simtime.Microsecond,
		PrivDMAReadExtra:     128 * simtime.Microsecond,
		PrivTranslatePerPage: 600 * simtime.Nanosecond,
		BulkTranslateFixed:   20 * simtime.Microsecond,
		BulkTranslatePerPage: 450 * simtime.Nanosecond,
		PrivDMAWriteRate:     9.94 * float64(units.GiB),
		PrivDMAReadRate:      10.45 * float64(units.GiB),

		VEOCallSubmit:         8 * simtime.Microsecond,
		VEOCallDispatchVE:     6 * simtime.Microsecond,
		VEOCmdPollInterval:    2 * simtime.Microsecond,
		VEOResultPollInterval: 4 * simtime.Microsecond,

		UserDMAAPISetup:      3400 * simtime.Nanosecond,
		UserDMAHWLatency:     2000 * simtime.Nanosecond,
		UserDMAWriteRate:     11.16 * float64(units.GiB),
		UserDMAReadRate:      10.66 * float64(units.GiB),
		UserDMAMaxDescriptor: 64 * units.MiB,

		SHMFirstWord: 540 * simtime.Nanosecond,
		SHMPerWord:   124 * simtime.Nanosecond,
		LHMPerWord:   700 * simtime.Nanosecond,

		DMAATBRegister: 25 * simtime.Microsecond,

		HAMHostOverhead:     500 * simtime.Nanosecond,
		HAMVEOverhead:       700 * simtime.Nanosecond,
		HAMHostPollInterval: 200 * simtime.Nanosecond,
		HAMVEPollInterval:   150 * simtime.Nanosecond,

		SyscallRoundTrip: 40 * simtime.Microsecond,

		ProcCreate:        900 * simtime.Millisecond,
		LoadLibraryBase:   15 * simtime.Millisecond,
		LoadLibraryPerKiB: 2 * simtime.Microsecond,
		GetSym:            30 * simtime.Microsecond,
		AllocMem:          60 * simtime.Microsecond,

		HostPageSize:    2 * units.MiB,
		HostMemCopyRate: 12 * float64(units.GiB),
		VEMemCopyRate:   100 * float64(units.GiB),
	}
}

// Validate rejects non-physical parameter combinations early.
func (t Timing) Validate() error {
	checks := []struct {
		ok  bool
		msg string
	}{
		{t.PCIeLatency > 0, "PCIeLatency must be positive"},
		{t.PCIeRawRate >= 1, "PCIeRawRate must be at least 1 B/s"},
		{t.PCIeMaxPayload > 0, "PCIeMaxPayload must be positive"},
		{t.PCIeTLPHeader >= 0, "PCIeTLPHeader must be non-negative"},
		{t.PrivDMAWriteRate >= 1 && t.PrivDMAReadRate >= 1, "privileged DMA rates must be at least 1 B/s"},
		{t.UserDMAWriteRate >= 1 && t.UserDMAReadRate >= 1, "user DMA rates must be at least 1 B/s"},
		{t.UserDMAMaxDescriptor > 0, "UserDMAMaxDescriptor must be positive"},
		{t.SHMPerWord > 0 && t.LHMPerWord > 0, "SHM/LHM word costs must be positive"},
		{t.HostPageSize > 0, "HostPageSize must be positive"},
		{t.HostMemCopyRate >= 1 && t.VEMemCopyRate >= 1, "local copy rates must be at least 1 B/s"},
		{t.VEOCmdPollInterval > 0 && t.VEOResultPollInterval > 0, "poll intervals must be positive"},
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("topology: invalid timing: %s", c.msg)
		}
	}
	return nil
}

// PCIeEfficiency returns the fraction of the raw link rate available to
// payload given the TLP payload/header sizes (≈0.91 for 256 B / 26 B).
func (t Timing) PCIeEfficiency() float64 {
	p := float64(t.PCIeMaxPayload)
	return p / (p + float64(t.PCIeTLPHeader))
}
