// Package topology describes the hardware structure of a simulated NEC
// SX-Aurora TSUBASA system: sockets, the UPI inter-socket link, PCIe
// switches, and Vector Engine (VE) cards, together with the component specs
// from Table I and the system configuration from Table III of the paper.
package topology

import (
	"fmt"

	"hamoffload/internal/units"
)

// CPUSpec describes one Vector Host CPU socket (Table I, left column).
type CPUSpec struct {
	Model           string
	Cores           int
	Threads         int
	VectorWidthF64  int // doubles per SIMD vector
	ClockGHz        float64
	PeakGFLOPS      float64
	MaxMemory       units.Bytes
	MemoryBandwidth units.Bytes // per second, decimal GB in the paper
	LastLevelCache  units.Bytes
	TDPWatts        int
}

// VESpec describes one Vector Engine card (Table I, right column).
type VESpec struct {
	Model           string
	Cores           int
	Threads         int
	VectorWidthF64  int // 256 doubles, explicit vector-length register
	ClockGHz        float64
	PeakGFLOPS      float64
	MaxMemory       units.Bytes
	MemoryBandwidth units.Bytes // per second
	LastLevelCache  units.Bytes
	TDPWatts        int
	// Microarchitecture details from §I-B used by the vecore cost model.
	VectorRegisters int         // 64 per core
	FMAPipes        int         // 3 FMA vector units per core
	ALUPipes        int         // 2 fixed-point/logical vector units per core
	SIMDLanes       int         // 32-fold SIMD processing of a vector register
	PipelineDepth   int         // 8 steps
	MaxDMAPayload   units.Bytes // 256 B max PCIe payload for the VE
}

// XeonGold6126 returns the VH CPU spec from Table I.
func XeonGold6126() CPUSpec {
	return CPUSpec{
		Model:           "Intel Xeon Gold 6126",
		Cores:           12,
		Threads:         24,
		VectorWidthF64:  8,
		ClockGHz:        2.6,
		PeakGFLOPS:      998.4,
		MaxMemory:       384 * units.GiB,
		MemoryBandwidth: 128 * units.GB,
		LastLevelCache:  units.Bytes(19.25 * float64(units.MiB)),
		TDPWatts:        125,
	}
}

// VEType10B returns the VE spec from Table I.
func VEType10B() VESpec {
	return VESpec{
		Model:           "NEC VE Type 10B",
		Cores:           8,
		Threads:         8,
		VectorWidthF64:  256,
		ClockGHz:        1.4,
		PeakGFLOPS:      2150.4,
		MaxMemory:       48 * units.GiB,
		MemoryBandwidth: units.Bytes(1228.8 * float64(units.GB)),
		LastLevelCache:  16 * units.MiB,
		TDPWatts:        300,
		VectorRegisters: 64,
		FMAPipes:        3,
		ALUPipes:        2,
		SIMDLanes:       32,
		PipelineDepth:   8,
		MaxDMAPayload:   256 * units.B,
	}
}

// System describes a whole VH+VE node (Fig. 3 / Table III).
type System struct {
	Name       string
	Sockets    []Socket
	Switches   []PCIeSwitch
	VEs        []VESlot
	VHMemory   units.Bytes
	VHOS       string
	VHCompiler string
	VEOSVer    string
	VEOVer     string
	VECompiler string
}

// Socket is one VH CPU socket.
type Socket struct {
	ID  int
	CPU CPUSpec
}

// PCIeSwitch connects a group of VEs to one socket's PCIe root complex.
type PCIeSwitch struct {
	ID     int
	Socket int
}

// VESlot is one VE card and its position in the PCIe topology.
type VESlot struct {
	ID     int
	Switch int
	Spec   VESpec
}

// A300_8 returns the NEC SX-Aurora TSUBASA A300-8 benchmark system used in
// the paper: 2 Xeon Gold 6126 sockets, 192 GiB DDR4, 8 VE Type 10B cards
// behind two PCIe switches (4 VEs each, one switch per socket), software
// versions as in Table III.
func A300_8() *System {
	s := &System{
		Name:       "NEC SX-Aurora TSUBASA A300-8",
		VHMemory:   192 * units.GiB,
		VHOS:       "CentOS Linux release 7.6.1810, kernel 3.10.0-693",
		VHCompiler: "GCC 4.8.5",
		VEOSVer:    "1.3.2-4dma",
		VEOVer:     "1.3.2a",
		VECompiler: "NEC NCC 1.6.0",
	}
	for i := 0; i < 2; i++ {
		s.Sockets = append(s.Sockets, Socket{ID: i, CPU: XeonGold6126()})
		s.Switches = append(s.Switches, PCIeSwitch{ID: i, Socket: i})
	}
	for i := 0; i < 8; i++ {
		s.VEs = append(s.VEs, VESlot{ID: i, Switch: i / 4, Spec: VEType10B()})
	}
	return s
}

// SocketOfVE returns the socket whose PCIe root complex hosts VE ve.
func (s *System) SocketOfVE(ve int) (int, error) {
	if ve < 0 || ve >= len(s.VEs) {
		return 0, fmt.Errorf("topology: no VE %d in %s", ve, s.Name)
	}
	sw := s.VEs[ve].Switch
	if sw < 0 || sw >= len(s.Switches) {
		return 0, fmt.Errorf("topology: VE %d references missing switch %d", ve, sw)
	}
	return s.Switches[sw].Socket, nil
}

// CrossesUPI reports whether a process pinned to socket must traverse the
// UPI inter-socket link to reach VE ve (Fig. 3).
func (s *System) CrossesUPI(socket, ve int) (bool, error) {
	home, err := s.SocketOfVE(ve)
	if err != nil {
		return false, err
	}
	if socket < 0 || socket >= len(s.Sockets) {
		return false, fmt.Errorf("topology: no socket %d in %s", socket, s.Name)
	}
	return home != socket, nil
}

// Validate checks the structural consistency of the system description.
func (s *System) Validate() error {
	if len(s.Sockets) == 0 {
		return fmt.Errorf("topology: %s has no sockets", s.Name)
	}
	if len(s.VEs) == 0 {
		return fmt.Errorf("topology: %s has no VEs", s.Name)
	}
	for _, sw := range s.Switches {
		if sw.Socket < 0 || sw.Socket >= len(s.Sockets) {
			return fmt.Errorf("topology: switch %d attached to missing socket %d", sw.ID, sw.Socket)
		}
	}
	for _, ve := range s.VEs {
		if ve.Switch < 0 || ve.Switch >= len(s.Switches) {
			return fmt.Errorf("topology: VE %d attached to missing switch %d", ve.ID, ve.Switch)
		}
		if ve.Spec.Cores <= 0 || ve.Spec.MaxMemory <= 0 {
			return fmt.Errorf("topology: VE %d has invalid spec", ve.ID)
		}
	}
	return nil
}
