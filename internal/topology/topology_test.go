package topology

import (
	"testing"

	"hamoffload/internal/units"
)

func TestA300_8MatchesTableIII(t *testing.T) {
	s := A300_8()
	if err := s.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(s.Sockets) != 2 {
		t.Errorf("sockets = %d, want 2", len(s.Sockets))
	}
	if len(s.VEs) != 8 {
		t.Errorf("VEs = %d, want 8", len(s.VEs))
	}
	if len(s.Switches) != 2 {
		t.Errorf("switches = %d, want 2", len(s.Switches))
	}
	if s.VHMemory != 192*units.GiB {
		t.Errorf("VH memory = %v, want 192GiB", s.VHMemory)
	}
	if s.VEOSVer != "1.3.2-4dma" || s.VEOVer != "1.3.2a" {
		t.Errorf("software versions = %q/%q", s.VEOSVer, s.VEOVer)
	}
}

func TestTableISpecs(t *testing.T) {
	cpu := XeonGold6126()
	if cpu.Cores != 12 || cpu.Threads != 24 || cpu.VectorWidthF64 != 8 {
		t.Errorf("CPU core spec wrong: %+v", cpu)
	}
	if cpu.PeakGFLOPS != 998.4 || cpu.ClockGHz != 2.6 {
		t.Errorf("CPU perf spec wrong: %+v", cpu)
	}
	if cpu.MaxMemory != 384*units.GiB || cpu.MemoryBandwidth != 128*units.GB {
		t.Errorf("CPU memory spec wrong: %+v", cpu)
	}

	ve := VEType10B()
	if ve.Cores != 8 || ve.VectorWidthF64 != 256 || ve.ClockGHz != 1.4 {
		t.Errorf("VE core spec wrong: %+v", ve)
	}
	if ve.PeakGFLOPS != 2150.4 {
		t.Errorf("VE peak = %v, want 2150.4", ve.PeakGFLOPS)
	}
	if ve.MaxMemory != 48*units.GiB {
		t.Errorf("VE memory = %v, want 48GiB", ve.MaxMemory)
	}
	if ve.MemoryBandwidth.GBs() != 1228.8 {
		t.Errorf("VE bandwidth = %v GB/s, want 1228.8", ve.MemoryBandwidth.GBs())
	}
	if ve.FMAPipes != 3 || ve.ALUPipes != 2 || ve.VectorRegisters != 64 {
		t.Errorf("VE microarch spec wrong: %+v", ve)
	}
	// Peak-performance sanity: 8 cores × 3 FMA pipes × 32 lanes × 2 flops ×
	// 1.4 GHz = 2150.4 GFLOPS — the spec table is internally consistent.
	derived := float64(ve.Cores*ve.FMAPipes*ve.SIMDLanes*2) * ve.ClockGHz
	if diff := derived - ve.PeakGFLOPS; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("derived peak %v != spec %v", derived, ve.PeakGFLOPS)
	}
}

func TestPCIeRouting(t *testing.T) {
	s := A300_8()
	// Fig. 3: VEs 0-3 behind switch 0 on socket 0, VEs 4-7 behind switch 1
	// on socket 1.
	for ve := 0; ve < 8; ve++ {
		sock, err := s.SocketOfVE(ve)
		if err != nil {
			t.Fatalf("SocketOfVE(%d): %v", ve, err)
		}
		want := ve / 4
		if sock != want {
			t.Errorf("SocketOfVE(%d) = %d, want %d", ve, sock, want)
		}
	}
	cross, err := s.CrossesUPI(1, 0)
	if err != nil || !cross {
		t.Errorf("CrossesUPI(1, 0) = %v,%v want true", cross, err)
	}
	cross, err = s.CrossesUPI(0, 0)
	if err != nil || cross {
		t.Errorf("CrossesUPI(0, 0) = %v,%v want false", cross, err)
	}
	if _, err := s.SocketOfVE(99); err == nil {
		t.Error("SocketOfVE(99) should fail")
	}
	if _, err := s.CrossesUPI(9, 0); err == nil {
		t.Error("CrossesUPI with bad socket should fail")
	}
}

func TestValidateCatchesBrokenTopology(t *testing.T) {
	s := A300_8()
	s.VEs[3].Switch = 7
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted VE on missing switch")
	}
	s = A300_8()
	s.Switches[0].Socket = -1
	if err := s.Validate(); err == nil {
		t.Error("Validate accepted switch on missing socket")
	}
	if err := (&System{Name: "empty"}).Validate(); err == nil {
		t.Error("Validate accepted empty system")
	}
}

func TestDefaultTimingValid(t *testing.T) {
	tm := DefaultTiming()
	if err := tm.Validate(); err != nil {
		t.Fatalf("DefaultTiming invalid: %v", err)
	}
	// The TLP efficiency must reproduce the paper's 91 % ⇒ 13.4 GiB/s bound.
	eff := tm.PCIeEfficiency()
	if eff < 0.90 || eff > 0.92 {
		t.Errorf("PCIe efficiency = %v, want ≈0.91", eff)
	}
	achievable := tm.PCIeRawRate * eff / float64(units.GiB)
	if achievable < 13.2 || achievable > 13.6 {
		t.Errorf("achievable = %.2f GiB/s, want ≈13.4", achievable)
	}
}

func TestTimingValidateRejectsBadValues(t *testing.T) {
	bad := DefaultTiming()
	bad.PCIeRawRate = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero PCIe rate")
	}
	bad = DefaultTiming()
	bad.HostPageSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero page size")
	}
	bad = DefaultTiming()
	bad.LHMPerWord = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero LHM cost")
	}
}
