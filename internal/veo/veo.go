// Package veo reproduces the NEC VEO (Vector Engine Offloading) API surface
// on top of the simulated VEOS layer. HAM-Offload's SX-Aurora backend is
// written against exactly these primitives, as in the paper (§III):
// process/context management, library loading and symbol lookup,
// asynchronous function calls with basic-type arguments, explicit memory
// allocation and read/write via privileged DMA, plus the VHcall reverse
// direction (§I-B).
package veo

import (
	"fmt"

	"hamoffload/internal/simtime"
	"hamoffload/internal/veos"
)

// Proc is a handle to a VE process created via ProcCreate, the analog of
// struct veo_proc_handle.
type Proc struct {
	card *veos.Card
	vp   *veos.Process
}

// ProcCreate boots a VE process on the card (veo_proc_create).
func ProcCreate(p *simtime.Proc, card *veos.Card) (*Proc, error) {
	vp, err := card.CreateProcess(p)
	if err != nil {
		return nil, err
	}
	return &Proc{card: card, vp: vp}, nil
}

// Destroy tears down the VE process (veo_proc_destroy).
func (h *Proc) Destroy(p *simtime.Proc) error {
	return h.card.DestroyProcess(p)
}

// Card returns the card the process runs on (simulation-side accessor).
func (h *Proc) Card() *veos.Card { return h.card }

// Alive reports whether the VE process is still usable: created, not
// crashed. Backends use it for cheap node-health checks between DMA polls.
func (h *Proc) Alive() bool { return h.card.Process() == h.vp && !h.card.Crashed() }

// Process returns the underlying VEOS process (simulation-side accessor).
func (h *Proc) Process() *veos.Process { return h.vp }

// LibHandle identifies a loaded VE library (the uint64_t veo_load_library
// returns).
type LibHandle struct {
	h   *Proc
	lib string
}

// LoadLibrary loads a registered VE library into the process
// (veo_load_library).
func (h *Proc) LoadLibrary(p *simtime.Proc, name string) (LibHandle, error) {
	if err := h.vp.LoadLibrary(p, name); err != nil {
		return LibHandle{}, err
	}
	return LibHandle{h: h, lib: name}, nil
}

// Sym is a resolved VE function symbol (veo_get_sym).
type Sym struct {
	name string
	k    veos.Kernel
}

// Name returns the symbol name.
func (s Sym) Name() string { return s.name }

// GetSym resolves a function symbol in the loaded library (veo_get_sym).
func (l LibHandle) GetSym(p *simtime.Proc, name string) (Sym, error) {
	if l.h == nil {
		return Sym{}, fmt.Errorf("veo: GetSym on nil library handle")
	}
	k, err := l.h.vp.FindSymbol(p, name)
	if err != nil {
		return Sym{}, err
	}
	return Sym{name: name, k: k}, nil
}

// Context is a VE execution thread (veo_thr_ctxt).
type Context struct {
	ctx *veos.Context
}

// OpenContext creates a VE worker thread (veo_context_open).
func (h *Proc) OpenContext(p *simtime.Proc) *Context {
	return &Context{ctx: h.vp.OpenContext(p)}
}

// Request is an in-flight asynchronous call (the request ID returned by
// veo_call_async).
type Request struct {
	ctx *Context
	cmd *veos.Command
}

// CallAsync enqueues fn on the context and returns immediately
// (veo_call_async). Arguments are limited to 64-bit basic types, as in VEO.
func (c *Context) CallAsync(p *simtime.Proc, fn Sym, args ...uint64) *Request {
	return &Request{ctx: c, cmd: c.ctx.Submit(p, fn.k, args)}
}

// CallWaitResult blocks until the request completes and returns the
// kernel's 64-bit result (veo_call_wait_result).
func (r *Request) CallWaitResult(p *simtime.Proc) (uint64, error) {
	return r.ctx.ctx.Wait(p, r.cmd)
}

// PeekResult reports whether the request has completed without blocking
// (veo_call_peek_result).
func (r *Request) PeekResult() (uint64, bool) {
	if !r.cmd.Done() {
		return 0, false
	}
	v, _ := r.cmd.Result()
	return v, true
}

// AllocMem allocates n bytes of VE HBM (veo_alloc_mem).
func (h *Proc) AllocMem(p *simtime.Proc, n int64) (uint64, error) {
	return h.vp.AllocMem(p, n)
}

// FreeMem frees VE memory (veo_free_mem).
func (h *Proc) FreeMem(p *simtime.Proc, addr uint64) error {
	return h.vp.FreeMem(p, addr)
}

// WriteMem copies len(src) bytes from the VH buffer at hostAddr into VE
// memory at veAddr via privileged DMA (veo_write_mem). In VEO the source is
// a VH pointer; here it is an address in the simulated host memory.
func (h *Proc) WriteMem(p *simtime.Proc, veAddr, hostAddr uint64, n int64) error {
	return h.card.DMAWrite(p, veAddr, hostAddr, n)
}

// ReadMem copies n bytes from VE memory at veAddr into the VH buffer at
// hostAddr via privileged DMA (veo_read_mem).
func (h *Proc) ReadMem(p *simtime.Proc, hostAddr, veAddr uint64, n int64) error {
	return h.card.DMARead(p, hostAddr, veAddr, n)
}
