package veo

import (
	"testing"

	"hamoffload/internal/dma"
	"hamoffload/internal/hostmem"
	"hamoffload/internal/mem"
	"hamoffload/internal/pcie"
	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
	"hamoffload/internal/units"
	"hamoffload/internal/vemem"
	"hamoffload/internal/veos"
)

type rig struct {
	eng  *simtime.Engine
	tm   topology.Timing
	host *hostmem.Host
	card *veos.Card
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := simtime.NewEngine()
	tm := topology.DefaultTiming()
	host, err := hostmem.New("vh", 2*units.GiB, tm.HostPageSize)
	if err != nil {
		t.Fatal(err)
	}
	veMem, err := vemem.New("ve0", 4*units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := pcie.NewFabric(eng, topology.A300_8(), tm)
	if err != nil {
		t.Fatal(err)
	}
	path, err := fab.PathFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{eng: eng, tm: tm, host: host,
		card: veos.NewCard(eng, 0, tm, host, veMem, path, dma.TranslateBulk4DMA)}
}

func (r *rig) run(t *testing.T, fn func(p *simtime.Proc)) {
	t.Helper()
	r.eng.Spawn("vh-main", func(p *simtime.Proc) {
		fn(p)
		r.eng.Stop()
	})
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r.eng.Shutdown()
}

func TestVEOWorkflowMirrorsCAPI(t *testing.T) {
	// The canonical VEO sequence: proc_create, load_library, get_sym,
	// context_open, call_async, call_wait_result.
	veos.RegisterLibrary("libveok.so", veos.Library{
		"mul": func(ctx *veos.Ctx, args []uint64) (uint64, error) {
			return args[0] * args[1], nil
		},
	})
	r := newRig(t)
	r.run(t, func(p *simtime.Proc) {
		h, err := ProcCreate(p, r.card)
		if err != nil {
			t.Fatalf("ProcCreate: %v", err)
		}
		lib, err := h.LoadLibrary(p, "libveok.so")
		if err != nil {
			t.Fatalf("LoadLibrary: %v", err)
		}
		sym, err := lib.GetSym(p, "mul")
		if err != nil {
			t.Fatalf("GetSym: %v", err)
		}
		if sym.Name() != "mul" {
			t.Errorf("Name = %q", sym.Name())
		}
		ctx := h.OpenContext(p)
		req := ctx.CallAsync(p, sym, 6, 7)
		if _, done := req.PeekResult(); done {
			t.Error("PeekResult done immediately after submit")
		}
		v, err := req.CallWaitResult(p)
		if err != nil {
			t.Fatalf("CallWaitResult: %v", err)
		}
		if v != 42 {
			t.Errorf("result = %d, want 42", v)
		}
		if v2, done := req.PeekResult(); !done || v2 != 42 {
			t.Errorf("PeekResult after wait = %d,%v", v2, done)
		}
		if err := h.Destroy(p); err != nil {
			t.Fatalf("Destroy: %v", err)
		}
	})
}

func TestMemoryAPIRoundTrip(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *simtime.Proc) {
		h, err := ProcCreate(p, r.card)
		if err != nil {
			t.Fatal(err)
		}
		veBuf, err := h.AllocMem(p, 1024)
		if err != nil {
			t.Fatalf("AllocMem: %v", err)
		}
		src, _ := r.host.Alloc(1024)
		dst, _ := r.host.Alloc(1024)
		if err := r.host.Mem.WriteAt([]byte("veo api"), src); err != nil {
			t.Fatal(err)
		}
		if err := h.WriteMem(p, veBuf, uint64(src), 7); err != nil {
			t.Fatalf("WriteMem: %v", err)
		}
		if err := h.ReadMem(p, uint64(dst), veBuf, 7); err != nil {
			t.Fatalf("ReadMem: %v", err)
		}
		got := make([]byte, 7)
		if err := r.host.Mem.ReadAt(got, dst); err != nil {
			t.Fatal(err)
		}
		if string(got) != "veo api" {
			t.Errorf("round trip = %q", got)
		}
		if err := h.FreeMem(p, veBuf); err != nil {
			t.Errorf("FreeMem: %v", err)
		}
	})
}

func TestGetSymOnNilHandle(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *simtime.Proc) {
		var l LibHandle
		if _, err := l.GetSym(p, "x"); err == nil {
			t.Error("GetSym on zero handle should fail")
		}
	})
}

func TestAsyncCallsOverlapWithHostWork(t *testing.T) {
	// veo_call_async returns before the kernel completes: the host can do
	// 5 ms of its own work while a 5 ms kernel runs, for ≈5 ms total.
	kernelTime := 5 * simtime.Millisecond
	veos.RegisterLibrary("libasync.so", veos.Library{
		"slow": func(ctx *veos.Ctx, args []uint64) (uint64, error) {
			ctx.P.Sleep(kernelTime)
			return 1, nil
		},
	})
	r := newRig(t)
	r.run(t, func(p *simtime.Proc) {
		h, _ := ProcCreate(p, r.card)
		lib, err := h.LoadLibrary(p, "libasync.so")
		if err != nil {
			t.Fatal(err)
		}
		sym, _ := lib.GetSym(p, "slow")
		ctx := h.OpenContext(p)
		start := p.Now()
		req := ctx.CallAsync(p, sym, 0)
		p.Sleep(kernelTime) // overlapping host work
		if _, err := req.CallWaitResult(p); err != nil {
			t.Fatal(err)
		}
		total := p.Now().Sub(start)
		if total > kernelTime+kernelTime/2 {
			t.Errorf("overlapped total = %v, want ≈%v", total, kernelTime)
		}
	})
}

func TestVHCallFromKernel(t *testing.T) {
	// The reverse direction: VE code calls a VH function synchronously.
	r := newRig(t)
	called := false
	r.card.RegisterVHCall("host_service", func(p *simtime.Proc, args []uint64) (uint64, error) {
		called = true
		return args[0] + 1, nil
	})
	veos.RegisterLibrary("libvhcall.so", veos.Library{
		"caller": func(ctx *veos.Ctx, args []uint64) (uint64, error) {
			return ctx.VHCall("host_service", 10)
		},
		"badcaller": func(ctx *veos.Ctx, args []uint64) (uint64, error) {
			return ctx.VHCall("missing")
		},
	})
	r.run(t, func(p *simtime.Proc) {
		h, _ := ProcCreate(p, r.card)
		lib, err := h.LoadLibrary(p, "libvhcall.so")
		if err != nil {
			t.Fatal(err)
		}
		sym, _ := lib.GetSym(p, "caller")
		ctx := h.OpenContext(p)
		v, err := ctx.CallAsync(p, sym).CallWaitResult(p)
		if err != nil {
			t.Fatalf("VHcall kernel: %v", err)
		}
		if v != 11 {
			t.Errorf("VHcall result = %d, want 11", v)
		}
		bad, _ := lib.GetSym(p, "badcaller")
		if _, err := ctx.CallAsync(p, bad).CallWaitResult(p); err == nil {
			t.Error("unregistered VHcall should error")
		}
	})
	if !called {
		t.Error("VH handler never ran")
	}
}

func TestArgsBuilder(t *testing.T) {
	a := NewArgs()
	if err := a.SetI64(-1); err != nil {
		t.Fatal(err)
	}
	if err := a.SetU64(7); err != nil {
		t.Fatal(err)
	}
	if err := a.SetDouble(2.5); err != nil {
		t.Fatal(err)
	}
	if a.Len() != 3 {
		t.Fatalf("Len = %d", a.Len())
	}
	w := a.Words()
	if int64(w[0]) != -1 || w[1] != 7 {
		t.Errorf("words = %v", w)
	}
	// The argument cap of the calling convention.
	b := NewArgs()
	for i := 0; i < MaxArgs; i++ {
		if err := b.SetU64(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.SetU64(0); err == nil {
		t.Error("argument beyond MaxArgs accepted")
	}
}

func TestCallAsyncArgs(t *testing.T) {
	veos.RegisterLibrary("libargs.so", veos.Library{
		"sub": func(ctx *veos.Ctx, args []uint64) (uint64, error) {
			return args[0] - args[1], nil
		},
	})
	r := newRig(t)
	r.run(t, func(p *simtime.Proc) {
		h, _ := ProcCreate(p, r.card)
		lib, err := h.LoadLibrary(p, "libargs.so")
		if err != nil {
			t.Fatal(err)
		}
		sym, _ := lib.GetSym(p, "sub")
		ctx := h.OpenContext(p)
		a := NewArgs()
		_ = a.SetU64(50)
		_ = a.SetU64(8)
		v, err := ctx.CallAsyncArgs(p, sym, a).CallWaitResult(p)
		if err != nil || v != 42 {
			t.Fatalf("sub = %d, %v", v, err)
		}
	})
}

func TestAsyncMemoryTransfersOverlap(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *simtime.Proc) {
		h, err := ProcCreate(p, r.card)
		if err != nil {
			t.Fatal(err)
		}
		ve1, _ := h.AllocMem(p, 1<<20)
		ve2, _ := h.AllocMem(p, 1<<20)
		h1, _ := r.host.Alloc(1 << 20)
		h2, _ := r.host.Alloc(1 << 20)
		if err := r.host.Mem.WriteAt([]byte("first"), h1); err != nil {
			t.Fatal(err)
		}
		if err := r.host.Mem.WriteAt([]byte("second"), h2); err != nil {
			t.Fatal(err)
		}

		// Two async writes overlap with host-side work; both must land.
		start := p.Now()
		r1 := h.AsyncWriteMem(p, ve1, uint64(h1), 1<<20)
		r2 := h.AsyncWriteMem(p, ve2, uint64(h2), 1<<20)
		if done, _ := r1.Peek(); done {
			t.Error("transfer reported done immediately")
		}
		p.Sleep(50 * simtime.Microsecond) // overlapping host work
		if err := r1.Wait(p); err != nil {
			t.Fatal(err)
		}
		if err := r2.Wait(p); err != nil {
			t.Fatal(err)
		}
		both := p.Now().Sub(start)

		// Sequential reference: the same two transfers, blocking.
		start = p.Now()
		if err := h.WriteMem(p, ve1, uint64(h1), 1<<20); err != nil {
			t.Fatal(err)
		}
		if err := h.WriteMem(p, ve2, uint64(h2), 1<<20); err != nil {
			t.Fatal(err)
		}
		sequential := p.Now().Sub(start)

		// The engine serialises the DMAs, but the async form overlaps the
		// submission chain, so it must be at least somewhat faster.
		if both >= sequential {
			t.Errorf("async pair (%v) not faster than sequential (%v)", both, sequential)
		}

		got := make([]byte, 6)
		if err := r.card.Mem.HBM.ReadAt(got, mem.Addr(ve2)); err != nil {
			t.Fatal(err)
		}
		if string(got) != "second" {
			t.Errorf("VE memory = %q", got)
		}
	})
}
