package veo

import (
	"fmt"
	"math"

	"hamoffload/internal/simtime"
)

// Args is the argument builder of the VEO API (veo_args_alloc /
// veo_args_set_*): a typed stack of basic-type arguments for a VE function
// call. The paper leans on exactly this restriction — "limited to a few
// basic types for arguments and return types" (§V-A) — which is why
// HAM-Offload's rich functor messages travel as data instead.
type Args struct {
	words []uint64
}

// MaxArgs caps the argument count, as libveo's register/stack convention
// does.
const MaxArgs = 32

// NewArgs returns an empty argument stack (veo_args_alloc).
func NewArgs() *Args { return &Args{} }

// Len returns the number of set arguments.
func (a *Args) Len() int { return len(a.words) }

func (a *Args) push(v uint64) error {
	if len(a.words) >= MaxArgs {
		return fmt.Errorf("veo: more than %d call arguments", MaxArgs)
	}
	a.words = append(a.words, v)
	return nil
}

// SetU64 appends an unsigned 64-bit argument (veo_args_set_u64).
func (a *Args) SetU64(v uint64) error { return a.push(v) }

// SetI64 appends a signed 64-bit argument (veo_args_set_i64).
func (a *Args) SetI64(v int64) error { return a.push(uint64(v)) }

// SetDouble appends a float64 argument (veo_args_set_double).
func (a *Args) SetDouble(v float64) error { return a.push(math.Float64bits(v)) }

// Words returns the raw 64-bit words in call order.
func (a *Args) Words() []uint64 { return append([]uint64(nil), a.words...) }

// CallAsyncArgs enqueues fn with a built argument stack, the veo_args form
// of CallAsync.
func (c *Context) CallAsyncArgs(p *simtime.Proc, fn Sym, args *Args) *Request {
	return c.CallAsync(p, fn, args.Words()...)
}

// TransferRequest is an in-flight asynchronous memory transfer
// (veo_async_read_mem / veo_async_write_mem). The transfer runs in its own
// simulated process, overlapping with the caller's work, and serialises with
// other privileged-DMA requests on the VE's engine.
type TransferRequest struct {
	done *simtime.Event
	err  error
}

// Wait blocks until the transfer completed and returns its error
// (veo_call_wait_result on the transfer's request id).
func (r *TransferRequest) Wait(p *simtime.Proc) error {
	r.done.Wait(p)
	return r.err
}

// Peek reports completion without blocking.
func (r *TransferRequest) Peek() (bool, error) {
	if !r.done.Fired() {
		return false, nil
	}
	return true, r.err
}

// AsyncWriteMem starts a veo_async_write_mem: n bytes from the VH buffer at
// hostAddr into VE memory at veAddr, running concurrently with the caller.
func (h *Proc) AsyncWriteMem(p *simtime.Proc, veAddr, hostAddr uint64, n int64) *TransferRequest {
	return h.asyncXfer(p, func(tp *simtime.Proc) error {
		return h.card.DMAWrite(tp, veAddr, hostAddr, n)
	})
}

// AsyncReadMem starts a veo_async_read_mem: n bytes from VE memory at veAddr
// into the VH buffer at hostAddr.
func (h *Proc) AsyncReadMem(p *simtime.Proc, hostAddr, veAddr uint64, n int64) *TransferRequest {
	return h.asyncXfer(p, func(tp *simtime.Proc) error {
		return h.card.DMARead(tp, hostAddr, veAddr, n)
	})
}

func (h *Proc) asyncXfer(p *simtime.Proc, op func(*simtime.Proc) error) *TransferRequest {
	r := &TransferRequest{done: simtime.NewEvent(h.card.Eng)}
	// Submission itself costs one library call on the issuing thread.
	p.Sleep(h.card.Timing.VEOLibOverhead)
	h.card.Eng.Spawn("veo-async-xfer", func(tp *simtime.Proc) {
		r.err = op(tp)
		r.done.Fire()
	})
	return r
}
