package vecore

import (
	"testing"
	"testing/quick"

	"hamoffload/internal/simtime"
	"hamoffload/internal/units"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	m := DefaultModel()
	m.VectorEfficiency = 0
	if err := m.Validate(); err == nil {
		t.Error("accepted zero efficiency")
	}
	m = DefaultModel()
	m.VectorEfficiency = 1.5
	if err := m.Validate(); err == nil {
		t.Error("accepted efficiency > 1")
	}
	m = DefaultModel()
	m.ScalarIPC = -1
	if err := m.Validate(); err == nil {
		t.Error("accepted negative IPC")
	}
}

func TestVectorTimeComputeBound(t *testing.T) {
	m := DefaultModel()
	// 1 GFLOP of pure compute on all 8 cores at 85 % of 2150.4 GFLOPS.
	flops := int64(1e9)
	d := m.VectorTime(flops, 0, 8)
	wantSec := float64(flops) / (2150.4e9 * 0.85)
	got := d.Seconds()
	if got < wantSec || got > wantSec*1.01+1e-6 {
		t.Errorf("compute-bound time = %v s, want ≈%v s", got, wantSec)
	}
}

func TestVectorTimeMemoryBound(t *testing.T) {
	m := DefaultModel()
	// STREAM-like: 1 GiB of traffic, negligible flops, all cores.
	bytes := units.GiB.Int64()
	d := m.VectorTime(0, bytes, 8)
	wantSec := float64(bytes) / (1228.8e9)
	got := d.Seconds()
	if got < wantSec*0.99 || got > wantSec*1.05 {
		t.Errorf("memory-bound time = %v s, want ≈%v s", got, wantSec)
	}
}

func TestVectorTimeScalesWithCores(t *testing.T) {
	m := DefaultModel()
	one := m.VectorTime(1e9, 0, 1)
	eight := m.VectorTime(1e9, 0, 8)
	ratio := float64(one-m.LaunchOverhead) / float64(eight-m.LaunchOverhead)
	if ratio < 7.5 || ratio > 8.5 {
		t.Errorf("1-core/8-core ratio = %v, want ≈8", ratio)
	}
	// Out-of-range core counts clamp rather than explode.
	if m.VectorTime(1e6, 0, 0) <= 0 || m.VectorTime(1e6, 0, 99) <= 0 {
		t.Error("clamped core counts must still give positive time")
	}
}

func TestScalarMuchSlowerThanVector(t *testing.T) {
	// The paper's point: scalar code on the VE is slow. 1e9 scalar ops take
	// ~0.71 s; the same work vectorised takes ~0.5 ms.
	m := DefaultModel()
	scalar := m.ScalarTime(1e9)
	vector := m.VectorTime(1e9, 0, 8)
	if scalar < 100*vector {
		t.Errorf("scalar %v should dwarf vector %v", scalar, vector)
	}
	if m.ScalarTime(0) != 0 || m.ScalarTime(-5) != 0 {
		t.Error("non-positive op counts should cost nothing")
	}
}

func TestLaunchOverheadApplied(t *testing.T) {
	m := DefaultModel()
	if d := m.VectorTime(0, 0, 8); d != m.LaunchOverhead {
		t.Errorf("empty kernel = %v, want launch overhead %v", d, m.LaunchOverhead)
	}
}

func TestHostModelAndSpeedup(t *testing.T) {
	ve := DefaultModel()
	host := DefaultHostModel()
	// A memory-bound kernel should see roughly the HBM/DDR4 bandwidth ratio
	// (1228.8/128 ≈ 9.6×).
	s := SpeedupOver(ve, host, 0, units.GiB.Int64())
	if s < 7 || s > 12 {
		t.Errorf("memory-bound speedup = %v, want ≈9.6", s)
	}
	// A compute-bound kernel sees the FLOPS ratio (~2150/998 ≈ 2.2×).
	s = SpeedupOver(ve, host, 1e10, 0)
	if s < 1.5 || s > 3 {
		t.Errorf("compute-bound speedup = %v, want ≈2.2", s)
	}
}

func TestHostVectorTimePositive(t *testing.T) {
	h := DefaultHostModel()
	if h.VectorTime(1e6, 1e6, 12) <= 0 {
		t.Error("host kernel time must be positive")
	}
	if h.VectorTime(1e6, 0, 0) <= 0 {
		t.Error("clamped core count must still work")
	}
	var zero simtime.Duration
	if h.VectorTime(0, 0, 12) != zero {
		t.Error("empty host kernel should be free")
	}
}

// Property: kernel time is monotone in flops and bytes, and never below the
// launch overhead.
func TestVectorTimeMonotoneProperty(t *testing.T) {
	m := DefaultModel()
	f := func(f1, f2, b1, b2 uint32, cores uint8) bool {
		c := int(cores%8) + 1
		fa, fb := int64(f1), int64(f1)+int64(f2)
		ba, bb := int64(b1), int64(b1)+int64(b2)
		ta := m.VectorTime(fa, ba, c)
		tb := m.VectorTime(fb, bb, c)
		return tb >= ta && ta >= m.LaunchOverhead
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
