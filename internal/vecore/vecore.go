// Package vecore provides the execution cost model for code running on a
// Vector Engine. Offloaded kernels in this repository do their arithmetic in
// Go (so results are real), and use this model to advance simulated time by
// what the same work would have cost on a VE Type 10B: vectorised code runs
// against the roofline of 2150.4 GFLOPS and 1228.8 GB/s HBM bandwidth, while
// scalar code crawls at a rate limited by the 1.4 GHz scalar pipeline — the
// paper's motivation for offloading only the data-parallel parts (§I).
package vecore

import (
	"fmt"

	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
)

// Model estimates kernel execution times for one VE.
type Model struct {
	Spec topology.VESpec
	// VectorEfficiency derates peak FLOPS for real vector kernels (loop
	// remainders, dependencies). 0 < e <= 1.
	VectorEfficiency float64
	// ScalarIPC is the sustained instructions/cycle of the scalar pipeline.
	ScalarIPC float64
	// LaunchOverhead is the fixed cost of entering a kernel (call, VL setup).
	LaunchOverhead simtime.Duration
}

// DefaultModel returns a model for the VE Type 10B with conservative
// real-world efficiencies.
func DefaultModel() Model {
	return Model{
		Spec:             topology.VEType10B(),
		VectorEfficiency: 0.85,
		ScalarIPC:        1.0,
		LaunchOverhead:   200 * simtime.Nanosecond,
	}
}

// Validate rejects non-physical models.
func (m Model) Validate() error {
	if m.VectorEfficiency <= 0 || m.VectorEfficiency > 1 {
		return fmt.Errorf("vecore: VectorEfficiency %v out of (0,1]", m.VectorEfficiency)
	}
	if m.ScalarIPC <= 0 {
		return fmt.Errorf("vecore: ScalarIPC %v must be positive", m.ScalarIPC)
	}
	if m.Spec.PeakGFLOPS <= 0 || m.Spec.MemoryBandwidth <= 0 || m.Spec.Cores <= 0 {
		return fmt.Errorf("vecore: incomplete VE spec")
	}
	return nil
}

// VectorTime returns the roofline execution time of a vectorised kernel
// performing flops floating-point operations over bytes of memory traffic,
// spread across cores VE cores (1..Spec.Cores).
func (m Model) VectorTime(flops, bytes int64, cores int) simtime.Duration {
	if cores < 1 {
		cores = 1
	}
	if cores > m.Spec.Cores {
		cores = m.Spec.Cores
	}
	frac := float64(cores) / float64(m.Spec.Cores)
	peak := m.Spec.PeakGFLOPS * 1e9 * m.VectorEfficiency * frac
	var ft, bt simtime.Duration
	if flops > 0 {
		ft = simtime.Duration(float64(flops) / peak * float64(simtime.Second))
	}
	if bytes > 0 {
		// HBM bandwidth is shared; a single core cannot saturate it alone,
		// but near-full bandwidth is reachable from a few cores. Model the
		// per-core share with a generous 2× single-core burst factor.
		bw := float64(m.Spec.MemoryBandwidth) * frac
		if burst := 2 * float64(m.Spec.MemoryBandwidth) / float64(m.Spec.Cores) * float64(cores); bw < burst {
			bw = burst
		}
		if max := float64(m.Spec.MemoryBandwidth); bw > max {
			bw = max
		}
		bt = simtime.BytesOver(bytes, bw)
	}
	t := ft
	if bt > t {
		t = bt
	}
	return m.LaunchOverhead + t
}

// ScalarTime returns the execution time of ops scalar instructions on one
// core — the slow path the paper warns about for non-vectorised code.
func (m Model) ScalarTime(ops int64) simtime.Duration {
	if ops <= 0 {
		return 0
	}
	cycles := float64(ops) / m.ScalarIPC
	return simtime.Duration(cycles / (m.Spec.ClockGHz * 1e9) * float64(simtime.Second))
}

// HostModel estimates the same kernels on the Vector Host CPU, for
// load-balancing examples that split work between VH and VEs.
type HostModel struct {
	Spec             topology.CPUSpec
	VectorEfficiency float64
}

// DefaultHostModel returns a model for one Xeon Gold 6126 socket.
func DefaultHostModel() HostModel {
	return HostModel{Spec: topology.XeonGold6126(), VectorEfficiency: 0.8}
}

// VectorTime is the host-side roofline time of a kernel on cores cores.
func (h HostModel) VectorTime(flops, bytes int64, cores int) simtime.Duration {
	if cores < 1 {
		cores = 1
	}
	if cores > h.Spec.Cores {
		cores = h.Spec.Cores
	}
	frac := float64(cores) / float64(h.Spec.Cores)
	peak := h.Spec.PeakGFLOPS * 1e9 * h.VectorEfficiency * frac
	var ft, bt simtime.Duration
	if flops > 0 {
		ft = simtime.Duration(float64(flops) / peak * float64(simtime.Second))
	}
	if bytes > 0 {
		bt = simtime.BytesOver(bytes, float64(h.Spec.MemoryBandwidth)*frac)
	}
	if bt > ft {
		return bt
	}
	return ft
}

// SpeedupOver reports the VE/host speed ratio for a kernel, a convenience
// for sizing examples: a memory-bound kernel sees roughly the 1228.8/128
// HBM-vs-DDR4 bandwidth ratio.
func SpeedupOver(ve Model, host HostModel, flops, bytes int64) float64 {
	tve := ve.VectorTime(flops, bytes, ve.Spec.Cores)
	th := host.VectorTime(flops, bytes, host.Spec.Cores)
	if tve <= 0 {
		return 0
	}
	return float64(th) / float64(tve)
}
