// Package vemem models a Vector Engine's memory system: the HBM2-backed
// local memory with its allocator, and the DMAATB (DMA Address Translation
// Buffer) through which VH shared-memory segments and local VE buffers are
// registered and become addressable as VEHVA (VE Host Virtual Addresses) for
// user DMA and the LHM/SHM instructions (paper §I-B and §IV-A).
package vemem

import (
	"fmt"
	"sort"

	"hamoffload/internal/mem"
	"hamoffload/internal/units"
)

// Address-space layout constants of the simulated VE process. The values are
// arbitrary but distinct so that mixing up address spaces faults loudly.
const (
	HeapBase  mem.Addr = 0x6000_0000_0000 // VEMVA heap (local HBM)
	vehvaBase mem.Addr = 0x1000_0000_0000 // VEHVA window (DMAATB-mapped)
)

// VE is one Vector Engine's memory system.
type VE struct {
	HBM    *mem.Memory
	alloc  *mem.Allocator
	dmaatb *DMAATB
}

// New creates a VE memory with the given HBM capacity (48 GiB on a Type
// 10B; the sparse backing means only allocated buffers consume real memory).
func New(name string, capacity units.Bytes) (*VE, error) {
	a, err := mem.NewAllocator(name+"-hbm-alloc", HeapBase, capacity.Int64(), 64)
	if err != nil {
		return nil, err
	}
	return &VE{
		HBM:    mem.NewMemory(name + "-hbm"),
		alloc:  a,
		dmaatb: newDMAATB(name),
	}, nil
}

// Alloc reserves and maps size bytes of HBM, returning the VEMVA.
func (v *VE) Alloc(size int64) (mem.Addr, error) {
	addr, err := v.alloc.Alloc(size)
	if err != nil {
		return 0, err
	}
	mapped, _ := v.alloc.SizeOf(addr)
	if err := v.HBM.Map(addr, mapped); err != nil {
		_ = v.alloc.Free(addr)
		return 0, err
	}
	return addr, nil
}

// Free releases an allocation made with Alloc. The range is unmapped while
// the allocation is still live — once alloc.Free runs, the allocator may
// re-issue the range, so addr must not be touched afterwards.
func (v *VE) Free(addr mem.Addr) error {
	if err := v.HBM.Unmap(addr); err != nil {
		return err
	}
	return v.alloc.Free(addr)
}

// LiveAllocs returns the number of live HBM allocations.
func (v *VE) LiveAllocs() int { return v.alloc.LiveCount() }

// FreeBytes returns the remaining HBM capacity.
func (v *VE) FreeBytes() int64 { return v.alloc.FreeBytes() }

// ATB returns the VE's DMA address translation buffer.
func (v *VE) ATB() *DMAATB { return v.dmaatb }

// DMAATB maps VEHVA ranges onto backing memories. The VE has no IOMMU, so
// every remote (and local) buffer touched by user DMA or LHM/SHM must be
// registered here first.
type DMAATB struct {
	name    string
	next    mem.Addr
	entries []atbEntry // sorted by vehva
}

type atbEntry struct {
	vehva  mem.Addr
	size   int64
	target *mem.Memory
	base   mem.Addr
}

func newDMAATB(name string) *DMAATB {
	return &DMAATB{name: name + "-dmaatb", next: vehvaBase}
}

// Entries returns the number of live registrations.
func (d *DMAATB) Entries() int { return len(d.entries) }

// Register maps [base, base+size) of target into the VEHVA window and
// returns the assigned VEHVA. Registrations are page (64 KiB) aligned in the
// window, mirroring the hardware's translation granularity.
func (d *DMAATB) Register(target *mem.Memory, base mem.Addr, size int64) (mem.Addr, error) {
	if size <= 0 {
		return 0, fmt.Errorf("%s: register size %d must be positive", d.name, size)
	}
	if !target.Mapped(base, size) {
		return 0, fmt.Errorf("%s: register of unmapped range [%#x,+%d) in %s",
			d.name, base, size, target.Name())
	}
	vehva := d.next
	d.next += mem.Addr(units.AlignUp(units.Bytes(size), 64*units.KiB).Int64())
	d.entries = append(d.entries, atbEntry{vehva: vehva, size: size, target: target, base: base})
	return vehva, nil
}

// Unregister removes the registration with the given VEHVA base.
func (d *DMAATB) Unregister(vehva mem.Addr) error {
	for i, e := range d.entries {
		if e.vehva == vehva {
			d.entries = append(d.entries[:i], d.entries[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("%s: unregister of unknown VEHVA %#x", d.name, vehva)
}

// Translate resolves [vehva, vehva+n) to its backing memory and address.
// The range must lie entirely within one registration, as a hardware DMA
// descriptor's address check would require.
func (d *DMAATB) Translate(vehva mem.Addr, n int64) (*mem.Memory, mem.Addr, error) {
	if n < 0 {
		return nil, 0, fmt.Errorf("%s: translate negative length %d", d.name, n)
	}
	i := sort.Search(len(d.entries), func(i int) bool {
		return d.entries[i].vehva+mem.Addr(d.entries[i].size) > vehva
	})
	if i >= len(d.entries) || d.entries[i].vehva > vehva {
		return nil, 0, fmt.Errorf("%s: DMA exception: VEHVA %#x not registered", d.name, vehva)
	}
	e := d.entries[i]
	if vehva+mem.Addr(n) > e.vehva+mem.Addr(e.size) {
		return nil, 0, fmt.Errorf("%s: DMA exception: [%#x,+%d) exceeds registration [%#x,+%d)",
			d.name, vehva, n, e.vehva, e.size)
	}
	return e.target, e.base + (vehva - e.vehva), nil
}
