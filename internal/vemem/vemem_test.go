package vemem

import (
	"testing"
	"testing/quick"

	"hamoffload/internal/mem"
	"hamoffload/internal/units"
)

func newVE(t *testing.T) *VE {
	t.Helper()
	v, err := New("ve0", 48*units.GiB)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return v
}

func TestAllocFree(t *testing.T) {
	v := newVE(t)
	addr, err := v.Alloc(1 << 20)
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	if addr < HeapBase {
		t.Errorf("VEMVA %#x below heap base", addr)
	}
	if err := v.HBM.WriteAt([]byte("hbm"), addr); err != nil {
		t.Fatalf("WriteAt: %v", err)
	}
	if err := v.Free(addr); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if v.LiveAllocs() != 0 {
		t.Errorf("LiveAllocs = %d", v.LiveAllocs())
	}
}

func TestSparse48GiB(t *testing.T) {
	// The full 48 GiB address space is available even though the test
	// machine has far less RAM: only touched buffers are backed.
	v := newVE(t)
	if v.FreeBytes() != (48 * units.GiB).Int64() {
		t.Fatalf("FreeBytes = %d", v.FreeBytes())
	}
	a, err := v.Alloc((40 * units.GiB).Int64())
	if err != nil {
		t.Fatalf("40 GiB address reservation failed: %v", err)
	}
	_ = a
	if _, err := v.Alloc((20 * units.GiB).Int64()); err == nil {
		t.Error("overcommit beyond 48 GiB should fail")
	}
}

func TestDMAATBRegisterTranslate(t *testing.T) {
	v := newVE(t)
	host := mem.NewMemory("vh")
	if err := host.Map(0x7000, 4096); err != nil {
		t.Fatal(err)
	}
	vehva, err := v.ATB().Register(host, 0x7000, 4096)
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	m, addr, err := v.ATB().Translate(vehva+16, 100)
	if err != nil {
		t.Fatalf("Translate: %v", err)
	}
	if m != host || addr != 0x7010 {
		t.Fatalf("Translate = %s/%#x, want vh/0x7010", m.Name(), addr)
	}
}

func TestDMAATBFaults(t *testing.T) {
	v := newVE(t)
	host := mem.NewMemory("vh")
	if err := host.Map(0, 4096); err != nil {
		t.Fatal(err)
	}
	vehva, err := v.ATB().Register(host, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := v.ATB().Translate(vehva, 5000); err == nil {
		t.Error("translate beyond registration should fault")
	}
	if _, _, err := v.ATB().Translate(0xdead0000, 8); err == nil {
		t.Error("translate of unregistered VEHVA should fault")
	}
	if _, err := v.ATB().Register(host, 8192, 100); err == nil {
		t.Error("register of unmapped host range should fail")
	}
	if _, err := v.ATB().Register(host, 0, 0); err == nil {
		t.Error("zero-size register should fail")
	}
}

func TestDMAATBUnregister(t *testing.T) {
	v := newVE(t)
	host := mem.NewMemory("vh")
	if err := host.Map(0, 8192); err != nil {
		t.Fatal(err)
	}
	v1, err := v.ATB().Register(host, 0, 4096)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := v.ATB().Register(host, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.ATB().Unregister(v1); err != nil {
		t.Fatalf("Unregister: %v", err)
	}
	if _, _, err := v.ATB().Translate(v1, 8); err == nil {
		t.Error("translate after unregister should fault")
	}
	// The second registration must survive.
	if _, _, err := v.ATB().Translate(v2, 8); err != nil {
		t.Errorf("unrelated registration broken: %v", err)
	}
	if err := v.ATB().Unregister(v1); err == nil {
		t.Error("double Unregister should fail")
	}
	if v.ATB().Entries() != 1 {
		t.Errorf("Entries = %d, want 1", v.ATB().Entries())
	}
}

// Property: for any set of registrations, translating any in-range VEHVA
// offset lands at the registered base plus that offset.
func TestDMAATBTranslateProperty(t *testing.T) {
	f := func(sizes []uint16, pick uint8, off uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 16 {
			sizes = sizes[:16]
		}
		v, err := New("ve", units.GiB)
		if err != nil {
			return false
		}
		host := mem.NewMemory("vh")
		type reg struct {
			vehva, base mem.Addr
			size        int64
		}
		var regs []reg
		var cursor mem.Addr
		for _, s := range sizes {
			size := int64(s%4096 + 1)
			if err := host.Map(cursor, size); err != nil {
				return false
			}
			vehva, err := v.ATB().Register(host, cursor, size)
			if err != nil {
				return false
			}
			regs = append(regs, reg{vehva, cursor, size})
			cursor += mem.Addr(size + 64) // gap so ranges are distinct
		}
		r := regs[int(pick)%len(regs)]
		o := int64(off) % r.size
		m, addr, err := v.ATB().Translate(r.vehva+mem.Addr(o), 1)
		return err == nil && m == host && addr == r.base+mem.Addr(o)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
