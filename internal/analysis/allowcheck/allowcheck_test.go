package allowcheck_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"hamoffload/internal/analysis"
	"hamoffload/internal/analysis/allowcheck"
)

// toy reports every use of the literal 42, giving the tracker real
// findings to suppress.
var toy = &analysis.Analyzer{
	Name: "toy",
	Doc:  "flags the literal 42",
	Run: func(pass *analysis.Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if bl, ok := n.(*ast.BasicLit); ok && bl.Value == "42" {
					pass.Reportf(bl.Pos(), "literal 42")
				}
				return true
			})
		}
		return nil
	},
}

// A trailing //lint:allow also covers the next line (comment-block form),
// so the unsuppressed literal sits two lines below the suppressed one.
const src = `package fix

var a = 42 //lint:allow toy justified suppression, stays silent
var gap = 1
var b = 42
var c = 1 //lint:allow toy stale: toy reports nothing here
var d = 1 //lint:allow other analyzer not part of this run
var e = 1 //lint:allow all blanket suppression with nothing to suppress
`

func load(t *testing.T) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, info, err := analysis.Typecheck(fset, "fix", []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return &analysis.Package{Path: "fix", Fset: fset, Files: []*ast.File{f}, Types: pkg, TypesInfo: info}
}

// run executes toy + allowcheck over the fixture under one tracker and
// returns the allowcheck findings as "line:name" strings.
func run(t *testing.T, full bool) []string {
	t.Helper()
	pkg := load(t)
	tracker := analysis.NewAllowTracker([]string{"toy", "allowcheck"}, full)
	diags, err := analysis.RunTracked(pkg, []*analysis.Analyzer{toy}, nil, tracker)
	if err != nil {
		t.Fatal(err)
	}
	// The only surviving toy finding must be the unsuppressed b.
	if len(diags) != 1 || diags[0].Pos.Line != 5 {
		t.Fatalf("toy findings = %v, want exactly the line-4 literal", diags)
	}
	mod, err := analysis.RunModuleTracked([]*analysis.Package{pkg}, []*analysis.Analyzer{allowcheck.Analyzer}, nil, tracker)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range mod {
		got = append(got, d.Message)
		if d.Pos.Line == 0 {
			t.Errorf("allowcheck finding without position: %v", d)
		}
		if d.Analyzer != "allowcheck" {
			t.Errorf("finding attributed to %q, want allowcheck", d.Analyzer)
		}
	}
	return got
}

// TestPartialRun: only directives naming executed analyzers are judged.
// The used `toy` directive stays silent, the unused one on line 5 is
// stale, `other` (not in the run) and `all` (partial run) are skipped.
func TestPartialRun(t *testing.T) {
	got := run(t, false)
	if len(got) != 1 || !strings.Contains(got[0], "stale //lint:allow toy") {
		t.Fatalf("partial-run stale set = %v, want exactly the unused toy directive", got)
	}
}

// TestFullRun: under the full suite the blanket `all` directive is judged
// too; `other` still is not — its analyzer does not exist in this run.
func TestFullRun(t *testing.T) {
	got := run(t, true)
	if len(got) != 2 {
		t.Fatalf("full-run stale set = %v, want the unused toy and all directives", got)
	}
	if !strings.Contains(got[0], "stale //lint:allow toy") || !strings.Contains(got[1], "stale //lint:allow all") {
		t.Fatalf("full-run stale set = %v", got)
	}
}

// TestUntrackedRunIsSilent: without a tracking driver the pass reports
// nothing rather than guessing.
func TestUntrackedRunIsSilent(t *testing.T) {
	pkg := load(t)
	diags, err := analysis.RunModule([]*analysis.Package{pkg}, []*analysis.Analyzer{allowcheck.Analyzer}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("untracked run reported %v, want nothing", diags)
	}
}
