// Package allowcheck keeps //lint:allow suppressions honest.
//
// A //lint:allow directive trades one analyzer finding for a written
// justification. When the code under it changes — the offending call is
// deleted, the analyzer stops matching, the line moves — the directive
// stays behind and silently suppresses whatever lands on that line next.
// allowcheck reports every directive that suppressed nothing during the
// run, so suppressions cannot rot.
//
// Staleness is only decidable when the named analyzer actually executed:
// on a partial run (hamlint -run walltime) directives naming other
// analyzers are skipped, and `all` directives are judged only under the
// full suite. The pass consumes the invocation-wide usage tracker the
// hamlint driver threads through analysis.RunTracked/RunModuleTracked and
// must therefore run after every other analyzer — it is registered last in
// the suite.
package allowcheck

import (
	"hamoffload/internal/analysis"
)

// Analyzer reports stale //lint:allow directives. Module-wide only, and a
// no-op without a tracking driver (plain analysis.RunModule), since only
// the driver sees the whole invocation.
var Analyzer = &analysis.Analyzer{
	Name: "allowcheck",
	Doc: "report stale //lint:allow directives that no longer suppress any " +
		"finding of the analyzer they name",
	RunModule: runModule,
}

func runModule(pass *analysis.ModulePass) error {
	if pass.Allows == nil {
		return nil
	}
	for _, e := range pass.Allows.Stale() {
		pass.ReportAt(e.Pos,
			"stale //lint:allow %s: it suppresses no finding; remove it (or fix the analyzer name)", e.Name)
	}
	return nil
}
