// Package analysis is a self-contained static-analysis framework for this
// repository, mirroring the vocabulary of golang.org/x/tools/go/analysis
// (Analyzer, Pass, diagnostics) on the standard library alone. The repo is
// deliberately dependency-free, so the framework is grown here instead of
// imported; the shape is kept close to x/tools so the analyzers could be
// ported to a stock multichecker by swapping this package out.
//
// The analyzers under internal/analysis/... enforce the simulator's
// foundational invariants statically: the DES clock is the only clock in
// simulation code (walltime), every opened trace span is closed on every
// path (spanend), deterministic-output paths never depend on map order or
// math/rand (detmap), all concurrency in DES packages flows through the
// engine (goroutine), and byte/picosecond quantities never cross a type
// boundary as bare numbers (unitcast). See docs/LINTING.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects a single package
// and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// comments. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// protects and why it matters for the simulator.
	Doc string
	// Run performs the check on one package. It may be nil for analyzers
	// that only operate module-wide through RunModule.
	Run func(*Pass) error
	// RunModule, when non-nil, performs an additional interprocedural check
	// over every loaded package at once (e.g. call-graph traversals that
	// cross package boundaries). It runs once per hamlint invocation, after
	// the per-package passes.
	RunModule func(*ModulePass) error
}

// A Diagnostic is one finding, resolved to a concrete source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowIndex records, per file and line, the analyzer names suppressed by
// //lint:allow comments. A comment suppresses findings on its own line and,
// when it stands alone, on the line directly below it.
type allowIndex map[string]map[int][]string

// buildAllowIndex scans the files of a package for //lint:allow comments.
// The first word after "lint:allow" is the analyzer name (or "all"); the
// rest of the comment is a free-form justification.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	idx := allowIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:allow"))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Slash)
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int][]string{}
					idx[pos.Filename] = lines
				}
				// Apply to the comment's own line (trailing comment) and to
				// the line after its comment group (comment block above the
				// offending statement, possibly spanning several lines).
				lines[pos.Line] = append(lines[pos.Line], fields[0])
				end := fset.Position(cg.End()).Line
				lines[end+1] = append(lines[end+1], fields[0])
			}
		}
	}
	return idx
}

func (idx allowIndex) allows(d Diagnostic) bool {
	for _, name := range idx[d.Pos.Filename][d.Pos.Line] {
		if name == d.Analyzer || name == "all" {
			return true
		}
	}
	return false
}

// Run applies the analyzers that the applies predicate selects for the
// package and returns the surviving findings in source order. A nil applies
// runs every analyzer. //lint:allow suppressions are honoured here so every
// entry point (hamlint, tests) treats them identically.
func Run(pkg *Package, analyzers []*Analyzer, applies func(analyzer, pkgPath string) bool) ([]Diagnostic, error) {
	idx := buildAllowIndex(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue // module-only analyzer
		}
		if applies != nil && !applies(a.Name, pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diags {
			if !idx.allows(d) {
				out = append(out, d)
			}
		}
	}
	SortDiagnostics(out)
	return out, nil
}

// SortDiagnostics orders findings by file, line, column, then analyzer —
// the stable order every output mode (text, JSON, tests) relies on.
func SortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// A ModulePass carries one analyzer's module-wide run over every loaded
// package at once. Interprocedural analyzers use it to follow calls across
// package boundaries.
type ModulePass struct {
	Analyzer *Analyzer
	// Fset is the file set shared by every loaded package.
	Fset *token.FileSet
	// Pkgs are the loaded root packages, sorted by import path.
	Pkgs []*Package
	// Applies is the scoping predicate the run was configured with (nil =
	// everything applies). Module passes consult it to pick their source
	// packages; RunModule itself is never skipped by it.
	Applies func(analyzer, pkgPath string) bool

	diags []Diagnostic
}

// Reportf records a module-wide finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunModule applies the module-wide (RunModule) phase of the given analyzers
// to the full package set and returns the surviving findings in source
// order. //lint:allow suppressions from any loaded file are honoured, and a
// finding whose position lies in a loaded package that the applies predicate
// excludes for the analyzer is dropped — the same scoping rule the
// per-package phase enforces.
func RunModule(pkgs []*Package, analyzers []*Analyzer, applies func(analyzer, pkgPath string) bool) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	fset := pkgs[0].Fset
	idx := allowIndex{}
	fileOwner := map[string]string{} // filename → import path
	for _, pkg := range pkgs {
		for file, lines := range buildAllowIndex(pkg.Fset, pkg.Files) {
			if idx[file] == nil {
				idx[file] = lines
				continue
			}
			for line, names := range lines {
				idx[file][line] = append(idx[file][line], names...)
			}
		}
		for _, f := range pkg.Files {
			fileOwner[pkg.Fset.Position(f.Pos()).Filename] = pkg.Path
		}
	}

	var out []Diagnostic
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		pass := &ModulePass{Analyzer: a, Fset: fset, Pkgs: pkgs, Applies: applies}
		if err := a.RunModule(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s (module pass): %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if idx.allows(d) {
				continue
			}
			if owner, ok := fileOwner[d.Pos.Filename]; ok && applies != nil && !applies(a.Name, owner) {
				continue
			}
			out = append(out, d)
		}
	}
	SortDiagnostics(out)
	return out, nil
}
