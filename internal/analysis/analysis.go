// Package analysis is a self-contained static-analysis framework for this
// repository, mirroring the vocabulary of golang.org/x/tools/go/analysis
// (Analyzer, Pass, diagnostics) on the standard library alone. The repo is
// deliberately dependency-free, so the framework is grown here instead of
// imported; the shape is kept close to x/tools so the analyzers could be
// ported to a stock multichecker by swapping this package out.
//
// The analyzers under internal/analysis/... enforce the simulator's
// foundational invariants statically: the DES clock is the only clock in
// simulation code (walltime), every opened trace span is closed on every
// path (spanend), deterministic-output paths never depend on map order or
// math/rand (detmap), all concurrency in DES packages flows through the
// engine (goroutine), and byte/picosecond quantities never cross a type
// boundary as bare numbers (unitcast). See docs/LINTING.md.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant check. Run inspects a single package
// and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //lint:allow
	// comments. It must be a valid identifier.
	Name string
	// Doc is a one-paragraph description of the invariant the analyzer
	// protects and why it matters for the simulator.
	Doc string
	// Run performs the check on one package. It may be nil for analyzers
	// that only operate module-wide through RunModule.
	Run func(*Pass) error
	// RunModule, when non-nil, performs an additional interprocedural check
	// over every loaded package at once (e.g. call-graph traversals that
	// cross package boundaries). It runs once per hamlint invocation, after
	// the per-package passes.
	RunModule func(*ModulePass) error
}

// A Diagnostic is one finding, resolved to a concrete source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass carries one analyzer run over one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// An AllowEntry is one //lint:allow directive found in a loaded file. The
// same entry is indexed on both lines it applies to, so suppressing a
// finding on either marks the directive used.
type AllowEntry struct {
	// Name is the analyzer the directive suppresses, or "all".
	Name string
	// Pos locates the comment itself.
	Pos token.Position
	// Used reports whether the directive suppressed at least one finding
	// during this run.
	Used bool
}

// allowIndex records, per file and line, the //lint:allow entries in force.
// A comment suppresses findings on its own line and, when it stands alone,
// on the line directly below it.
type allowIndex map[string]map[int][]*AllowEntry

// buildAllowIndex scans the files of a package for //lint:allow comments.
// The first word after "lint:allow" is the analyzer name (or "all"); the
// rest of the comment is a free-form justification. It returns the line
// index plus the distinct entries in source order.
func buildAllowIndex(fset *token.FileSet, files []*ast.File) (allowIndex, []*AllowEntry) {
	idx := allowIndex{}
	var entries []*AllowEntry
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:allow"))
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Slash)
				lines := idx[pos.Filename]
				if lines == nil {
					lines = map[int][]*AllowEntry{}
					idx[pos.Filename] = lines
				}
				e := &AllowEntry{Name: fields[0], Pos: pos}
				entries = append(entries, e)
				// Apply to the comment's own line (trailing comment) and to
				// the line after its comment group (comment block above the
				// offending statement, possibly spanning several lines).
				lines[pos.Line] = append(lines[pos.Line], e)
				end := fset.Position(cg.End()).Line
				lines[end+1] = append(lines[end+1], e)
			}
		}
	}
	return idx, entries
}

func (idx allowIndex) allows(d Diagnostic) bool {
	for _, e := range idx[d.Pos.Filename][d.Pos.Line] {
		// `all` does not cover allowcheck: a stale blanket directive would
		// otherwise suppress its own staleness report. Opting out of
		// allowcheck takes an explicit //lint:allow allowcheck.
		if e.Name == d.Analyzer || (e.Name == "all" && d.Analyzer != "allowcheck") {
			e.Used = true
			return true
		}
	}
	return false
}

// An AllowTracker accumulates every //lint:allow directive seen across one
// lint invocation and whether each suppressed a finding, so the allowcheck
// pass can report the stale ones. Pass the same tracker to RunTracked for
// every package and to RunModuleTracked; a nil tracker disables tracking.
type AllowTracker struct {
	selected map[string]bool
	full     bool
	byPkg    map[string]allowIndex
	entries  []*AllowEntry
}

// NewAllowTracker returns a tracker for a run executing the named analyzers.
// full marks a whole-suite run: only then can an `all` directive be judged
// stale, since a partial run might have skipped the analyzer it suppresses.
func NewAllowTracker(selected []string, full bool) *AllowTracker {
	t := &AllowTracker{
		selected: map[string]bool{},
		full:     full,
		byPkg:    map[string]allowIndex{},
	}
	for _, name := range selected {
		t.selected[name] = true
	}
	return t
}

// indexFor returns (building once) the package's allow index, registering
// its entries with the tracker.
func (t *AllowTracker) indexFor(pkg *Package) allowIndex {
	if idx, ok := t.byPkg[pkg.Path]; ok {
		return idx
	}
	idx, entries := buildAllowIndex(pkg.Fset, pkg.Files)
	t.byPkg[pkg.Path] = idx
	t.entries = append(t.entries, entries...)
	return idx
}

// Stale returns the directives that could not have suppressed anything: the
// analyzer they name ran in this invocation, yet no finding was suppressed.
// Directives naming analyzers outside the run are skipped — absence of
// findings proves nothing when the check did not execute — as are `all`
// directives on partial runs. Entries come back in source order.
func (t *AllowTracker) Stale() []*AllowEntry {
	var out []*AllowEntry
	for _, e := range t.entries {
		if e.Used {
			continue
		}
		if e.Name == "all" {
			if t.full {
				out = append(out, e)
			}
			continue
		}
		if t.selected[e.Name] {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Line < b.Line
	})
	return out
}

// Run applies the analyzers that the applies predicate selects for the
// package and returns the surviving findings in source order. A nil applies
// runs every analyzer. //lint:allow suppressions are honoured here so every
// entry point (hamlint, tests) treats them identically.
func Run(pkg *Package, analyzers []*Analyzer, applies func(analyzer, pkgPath string) bool) ([]Diagnostic, error) {
	return RunTracked(pkg, analyzers, applies, nil)
}

// RunTracked is Run with //lint:allow usage recorded in tracker (which may
// be nil). hamlint uses it so the allowcheck pass can see which directives
// suppressed nothing across the whole invocation.
func RunTracked(pkg *Package, analyzers []*Analyzer, applies func(analyzer, pkgPath string) bool, tracker *AllowTracker) ([]Diagnostic, error) {
	var idx allowIndex
	if tracker != nil {
		idx = tracker.indexFor(pkg)
	} else {
		idx, _ = buildAllowIndex(pkg.Fset, pkg.Files)
	}
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue // module-only analyzer
		}
		if applies != nil && !applies(a.Name, pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s on %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diags {
			if !idx.allows(d) {
				out = append(out, d)
			}
		}
	}
	SortDiagnostics(out)
	return out, nil
}

// SortDiagnostics orders findings by file, line, column, then analyzer —
// the stable order every output mode (text, JSON, tests) relies on.
func SortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// A ModulePass carries one analyzer's module-wide run over every loaded
// package at once. Interprocedural analyzers use it to follow calls across
// package boundaries.
type ModulePass struct {
	Analyzer *Analyzer
	// Fset is the file set shared by every loaded package.
	Fset *token.FileSet
	// Pkgs are the loaded root packages, sorted by import path.
	Pkgs []*Package
	// Applies is the scoping predicate the run was configured with (nil =
	// everything applies). Module passes consult it to pick their source
	// packages; RunModule itself is never skipped by it.
	Applies func(analyzer, pkgPath string) bool
	// Allows is the invocation-wide //lint:allow tracker, when the driver
	// runs with one (RunModuleTracked). The allowcheck pass reads it; it is
	// nil under plain RunModule.
	Allows *AllowTracker

	diags []Diagnostic
}

// ReportAt records a module-wide finding at an already-resolved position.
func (p *ModulePass) ReportAt(pos token.Position, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Reportf records a module-wide finding at pos.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RunModule applies the module-wide (RunModule) phase of the given analyzers
// to the full package set and returns the surviving findings in source
// order. //lint:allow suppressions from any loaded file are honoured, and a
// finding whose position lies in a loaded package that the applies predicate
// excludes for the analyzer is dropped — the same scoping rule the
// per-package phase enforces.
func RunModule(pkgs []*Package, analyzers []*Analyzer, applies func(analyzer, pkgPath string) bool) ([]Diagnostic, error) {
	return RunModuleTracked(pkgs, analyzers, applies, nil)
}

// RunModuleTracked is RunModule with //lint:allow usage recorded in tracker
// (which may be nil) and the tracker exposed to the passes via
// ModulePass.Allows. Analyzers whose module phase consumes the tracker
// (allowcheck) must come after the ones whose findings it counts, so run
// them last in the suite.
func RunModuleTracked(pkgs []*Package, analyzers []*Analyzer, applies func(analyzer, pkgPath string) bool, tracker *AllowTracker) ([]Diagnostic, error) {
	if len(pkgs) == 0 {
		return nil, nil
	}
	fset := pkgs[0].Fset
	idx := allowIndex{}
	fileOwner := map[string]string{} // filename → import path
	for _, pkg := range pkgs {
		var pkgIdx allowIndex
		if tracker != nil {
			pkgIdx = tracker.indexFor(pkg)
		} else {
			pkgIdx, _ = buildAllowIndex(pkg.Fset, pkg.Files)
		}
		for file, lines := range pkgIdx {
			if idx[file] == nil {
				idx[file] = lines
				continue
			}
			for line, names := range lines {
				idx[file][line] = append(idx[file][line], names...)
			}
		}
		for _, f := range pkg.Files {
			fileOwner[pkg.Fset.Position(f.Pos()).Filename] = pkg.Path
		}
	}

	var out []Diagnostic
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		pass := &ModulePass{Analyzer: a, Fset: fset, Pkgs: pkgs, Applies: applies, Allows: tracker}
		if err := a.RunModule(pass); err != nil {
			return nil, fmt.Errorf("analyzer %s (module pass): %w", a.Name, err)
		}
		for _, d := range pass.diags {
			if idx.allows(d) {
				continue
			}
			if owner, ok := fileOwner[d.Pos.Filename]; ok && applies != nil && !applies(a.Name, owner) {
				continue
			}
			out = append(out, d)
		}
	}
	SortDiagnostics(out)
	return out, nil
}
