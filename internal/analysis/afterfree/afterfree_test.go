package afterfree_test

import (
	"testing"

	"hamoffload/internal/analysis/afterfree"
	"hamoffload/internal/analysis/analysistest"
)

func TestAfterfree(t *testing.T) {
	analysistest.Run(t, afterfree.Analyzer, "afterfree")
}
