// Package afterfree forbids touching an internal/mem allocation after it
// has been freed on any control-flow path.
//
// The simulated memories (hostmem, vemem HBM, the adapter heaps) all hand
// out mem.Addr offsets from an internal/mem allocator; once Free(addr) runs,
// the allocator may re-issue the range to a concurrent transfer, so a later
// read/write through the stale address silently corrupts another message's
// buffer — the lifetime bug class the paper's buffer-registration protocol
// exists to prevent. The analyzer runs a forward dataflow pass tracking
// which address expressions may already be freed, and reports any later use
// (including a second Free). Re-assigning the variable kills the fact;
// deferred Frees run after every use and are ignored.
package afterfree

import (
	"go/ast"
	"go/token"
	"go/types"

	"hamoffload/internal/analysis"
	"hamoffload/internal/analysis/cfg"
)

// Analyzer flags uses of an allocation after its Free.
var Analyzer = &analysis.Analyzer{
	Name: "afterfree",
	Doc: "no use of an internal/mem allocation after its Free along any path; " +
		"the allocator may have re-issued the range to another transfer",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, fb := range cfg.FuncBodies(file) {
			checkFunc(pass, fb.Body)
		}
	}
	return nil
}

// An event is one ordered occurrence within a block: a Free of a key, a use
// of a key, or a kill (re-assignment) of a key.
type event struct {
	kind string // "free", "use", "kill"
	key  string
	pos  token.Pos
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	events := map[*cfg.Block][]event{}
	anyFree := false

	// First pass: find the freed address expressions, so use-collection can
	// limit itself to those keys.
	keys := map[string]bool{}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				continue
			}
			cfg.Shallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if key, ok := freeArg(pass.TypesInfo, call); ok {
						keys[key] = true
					}
				}
				return true
			})
		}
	}
	if len(keys) == 0 {
		return
	}

	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				continue // a deferred Free runs after every use in the body
			}
			evs := collect(pass.TypesInfo, n, keys)
			events[b] = append(events[b], evs...)
			for _, e := range evs {
				if e.kind == "free" {
					anyFree = true
				}
			}
		}
	}
	if !anyFree {
		return
	}

	// Solve: which keys may be freed at block entry.
	type freed = map[string]bool
	res := cfg.Forward(g, cfg.Problem[freed]{
		Entry: freed{},
		Transfer: func(b *cfg.Block, in freed) freed {
			out := make(freed, len(in))
			for k := range in {
				out[k] = true
			}
			for _, e := range events[b] {
				switch e.kind {
				case "free":
					out[e.key] = true
				case "kill":
					delete(out, e.key)
				}
			}
			return out
		},
		Join: func(a, b freed) freed {
			out := make(freed, len(a)+len(b))
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b freed) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	})

	// Report: replay each reachable block, checking uses against the
	// evolving freed set.
	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue // unreachable
		}
		cur := make(freed, len(in))
		for k := range in {
			cur[k] = true
		}
		for _, e := range events[b] {
			switch e.kind {
			case "free":
				cur[e.key] = true
			case "kill":
				delete(cur, e.key)
			case "use":
				if cur[e.key] {
					pass.Reportf(e.pos,
						"use of %s after Free; the allocator may have re-issued the range", e.key)
				}
			}
		}
	}
}

// collect extracts the ordered free/use/kill events of one CFG node for the
// given keys. Assignment left-hand sides are kills, not uses; the events are
// ordered by position, with each Free placed at its call's closing paren so
// the call's own argument does not count as a use-after-that-free.
func collect(info *types.Info, n ast.Node, keys map[string]bool) []event {
	var evs []event
	skip := map[ast.Node]bool{} // subtrees already handled (free args, kill LHS)

	cfg.Shallow(n, func(m ast.Node) bool {
		if skip[m] {
			return false
		}
		switch s := m.(type) {
		case *ast.CallExpr:
			if key, ok := freeArg(info, s); ok {
				// The free takes effect at the closing paren; the argument
				// itself is ordered before it, so Free(x) never self-reports
				// but a second Free(x) (a double free) does.
				evs = append(evs, event{kind: "free", key: key, pos: s.Rparen})
			}
		case *ast.AssignStmt:
			for _, lhs := range s.Lhs {
				if key := types.ExprString(lhs); keys[key] {
					evs = append(evs, event{kind: "kill", key: key, pos: lhs.Pos()})
				}
				skip[lhs] = true
			}
			return true
		case ast.Expr:
			if key := types.ExprString(s); keys[key] {
				evs = append(evs, event{kind: "use", key: key, pos: s.Pos()})
				return false // don't double-count sub-expressions
			}
		}
		return true
	})

	// Order by position; Frees sit at their Rparen, after their argument.
	for i := 1; i < len(evs); i++ {
		for j := i; j > 0 && evs[j].pos < evs[j-1].pos; j-- {
			evs[j], evs[j-1] = evs[j-1], evs[j]
		}
	}
	return evs
}

// freeArg recognises a Free call of the internal/mem allocator family — a
// method named Free with exactly one parameter whose underlying type is
// uint64 (mem.Addr) — and returns the freed expression's source text.
func freeArg(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Free" || len(call.Args) != 1 {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 1 {
		return "", false
	}
	basic, ok := sig.Params().At(0).Type().Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.Uint64 {
		return "", false
	}
	return types.ExprString(call.Args[0]), true
}
