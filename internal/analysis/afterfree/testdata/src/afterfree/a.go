// Fixture for the afterfree analyzer, exercising the real internal/mem
// allocator.
package afterfree

import "hamoffload/internal/mem"

func use(a mem.Addr) {}

// --- accepted idioms ---

func allocUseFree(a *mem.Allocator) {
	addr, _ := a.Alloc(64)
	use(addr)
	_ = a.Free(addr)
}

// A deferred Free runs after every use in the body.
func deferredFree(a *mem.Allocator) {
	addr, _ := a.Alloc(64)
	defer func() { _ = a.Free(addr) }()
	use(addr)
	use(addr + 8)
}

// Re-allocation into the same variable kills the freed fact.
func reallocated(a *mem.Allocator) {
	addr, _ := a.Alloc(64)
	_ = a.Free(addr)
	addr, _ = a.Alloc(128)
	use(addr)
	_ = a.Free(addr)
}

// Frees of distinct addresses do not poison each other.
func twoAllocations(a *mem.Allocator) {
	x, _ := a.Alloc(64)
	y, _ := a.Alloc(64)
	_ = a.Free(x)
	use(y)
	_ = a.Free(y)
}

// --- violations ---

func useAfterFree(a *mem.Allocator) {
	addr, _ := a.Alloc(64)
	_ = a.Free(addr)
	use(addr) // want `use of addr after Free`
}

func doubleFree(a *mem.Allocator) {
	addr, _ := a.Alloc(64)
	_ = a.Free(addr)
	_ = a.Free(addr) // want `use of addr after Free`
}

// Freed on one branch only — the use may still follow the Free.
func mayBeFreed(a *mem.Allocator, cond bool) {
	addr, _ := a.Alloc(64)
	if cond {
		_ = a.Free(addr)
	}
	use(addr) // want `use of addr after Free`
}

// Freed inside a loop, used in the next iteration — and the repeated Free
// is itself a double free on every iteration after the first.
func freedInLoop(a *mem.Allocator, n int) {
	addr, _ := a.Alloc(64)
	for i := 0; i < n; i++ {
		use(addr)        // want `use of addr after Free`
		_ = a.Free(addr) // want `use of addr after Free`
	}
}

// Suppression works as everywhere else.
func suppressed(a *mem.Allocator) {
	addr, _ := a.Alloc(64)
	_ = a.Free(addr)
	use(addr) //lint:allow afterfree fixture: proves suppression
}
