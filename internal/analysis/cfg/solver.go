package cfg

// This file holds the graph algorithms the analyzers share: a generic
// forward worklist solver, dominator computation (itself phrased as a
// forward dataflow problem over the solver), and back-edge classification
// for loop-aware path reasoning.

// A Problem describes one forward dataflow analysis. Facts of type T flow
// from Entry along edges; Join merges facts where paths meet; Transfer
// pushes a fact through one block.
//
// The solver is optimistic: a predecessor whose fact has not been computed
// yet contributes nothing to a join. With a monotone Transfer/Join this
// converges to the maximal-fixpoint solution for union-style problems and
// to the standard iterative solution for intersection-style problems
// (dominators).
type Problem[T any] struct {
	// Entry is the fact at function entry.
	Entry T
	// Transfer computes the fact at the end of b from the fact at its
	// start. It must not mutate its input.
	Transfer func(b *Block, in T) T
	// Join merges the facts of two incoming edges. It must not mutate its
	// inputs.
	Join func(a, b T) T
	// Equal detects the fixpoint.
	Equal func(a, b T) bool
}

// Result holds the solved facts: In at block entry, Out at block exit.
// Blocks unreachable from Entry are absent from both maps.
type Result[T any] struct {
	In, Out map[*Block]T
}

// Forward solves p over g by worklist iteration in reverse postorder.
func Forward[T any](g *Graph, p Problem[T]) Result[T] {
	order := postorder(g)
	// Reverse postorder: process a block after as many predecessors as
	// possible so most functions converge in one pass.
	rpo := make([]*Block, len(order))
	for i, b := range order {
		rpo[len(order)-1-i] = b
	}
	reachable := make(map[*Block]bool, len(order))
	for _, b := range order {
		reachable[b] = true
	}

	res := Result[T]{In: map[*Block]T{}, Out: map[*Block]T{}}
	res.In[g.Entry] = p.Entry
	res.Out[g.Entry] = p.Transfer(g.Entry, p.Entry)

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == g.Entry {
				continue
			}
			var in T
			have := false
			for _, pred := range b.Preds {
				if !reachable[pred] {
					continue
				}
				out, ok := res.Out[pred]
				if !ok {
					continue
				}
				if !have {
					in, have = out, true
				} else {
					in = p.Join(in, out)
				}
			}
			if !have {
				continue // no computed predecessor yet
			}
			if old, ok := res.In[b]; ok && p.Equal(old, in) {
				continue
			}
			res.In[b] = in
			res.Out[b] = p.Transfer(b, in)
			changed = true
		}
	}
	return res
}

// postorder returns the blocks reachable from Entry in DFS postorder.
func postorder(g *Graph) []*Block {
	var order []*Block
	seen := map[*Block]bool{}
	var visit func(*Block)
	visit = func(b *Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				visit(s)
			}
		}
		order = append(order, b)
	}
	visit(g.Entry)
	return order
}

// Dominance answers "does every path from entry to b pass through a?"
// queries for one graph.
type Dominance struct {
	dom map[*Block]map[*Block]bool // dom[b] = blocks dominating b (incl. b)
}

// Dominators computes the dominance relation of g, phrased as a forward
// dataflow problem: dom(b) = {b} ∪ ⋂ preds dom(p), solved over Forward
// with set intersection as the join.
func Dominators(g *Graph) *Dominance {
	type set = map[*Block]bool
	res := Forward(g, Problem[set]{
		Entry: set{},
		Transfer: func(b *Block, in set) set {
			out := make(set, len(in)+1)
			for k := range in {
				out[k] = true
			}
			out[b] = true
			return out
		},
		Join: func(a, b set) set {
			out := set{}
			for k := range a {
				if b[k] {
					out[k] = true
				}
			}
			return out
		},
		Equal: func(a, b set) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	})
	d := &Dominance{dom: map[*Block]map[*Block]bool{}}
	for b, in := range res.In {
		all := make(map[*Block]bool, len(in)+1)
		for k := range in {
			all[k] = true
		}
		all[b] = true
		d.dom[b] = all
	}
	return d
}

// Dominates reports whether a dominates b (reflexively: every block
// dominates itself). Blocks unreachable from entry dominate nothing and are
// dominated by nothing.
func (d *Dominance) Dominates(a, b *Block) bool {
	return d.dom[b][a]
}

// An Edge is one control-flow edge.
type Edge struct{ From, To *Block }

// BackEdges returns the edges u→v where v dominates u — the back edges of
// the graph's natural loops. Removing them yields the acyclic "one
// iteration" view that order-sensitive analyses (flagorder) reason over.
func BackEdges(g *Graph, d *Dominance) []Edge {
	var out []Edge
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if d.Dominates(s, b) {
				out = append(out, Edge{From: b, To: s})
			}
		}
	}
	return out
}
