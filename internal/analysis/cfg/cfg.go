// Package cfg builds per-function control-flow graphs from the AST and
// provides the dataflow machinery the interprocedural hamlint analyzers run
// on: a generic forward worklist solver, dominator computation, and
// back-edge classification. Like the rest of internal/analysis it is a
// deliberately small, stdlib-only sibling of golang.org/x/tools/go/cfg,
// grown here because the repo builds fully offline.
//
// The model: a Graph is a set of basic Blocks. Each block holds the
// statements (and control expressions — an if condition, a range operand)
// that execute unconditionally once the block is entered, in source order.
// Edges follow Go's control statements: if/else, for (with init/cond/post),
// range, switch (with fallthrough), type switch, select, goto, and labeled
// break/continue. A return statement edges to the synthetic Exit block; a
// call to the predeclared panic terminates its block with no successors, so
// paths that end in panic are invisible to must-reach-exit analyses.
//
// Two deliberate approximations, shared with x/tools:
//
//   - Expressions are atomic. Short-circuit && / || and function literals
//     introduce no blocks; analyzers that care about function literals build
//     a separate Graph per literal body (see Shallow).
//   - Defers are not woven into the edge structure. The Graph records every
//     *ast.DeferStmt in Defers; analyzers model "runs at every exit"
//     explicitly, which is both simpler and more honest than faking edges.
package cfg

import (
	"go/ast"
)

// A Block is a maximal sequence of nodes with a single entry at the top and
// branching only at the bottom.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable across builds
	// of the same function, used for deterministic iteration).
	Index int
	// Kind labels why the block exists ("entry", "if.then", "for.body",
	// ...); it is for diagnostics and tests only.
	Kind string
	// Nodes are the statements and control expressions executed in order.
	Nodes []ast.Node
	// Succs and Preds are the control-flow edges.
	Succs, Preds []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is where control enters; Exit is the single synthetic block
	// every return (and the fall-off-the-end path) edges to. Exit has no
	// nodes.
	Entry, Exit *Block
	// Blocks lists every block, Entry first. Blocks made unreachable by
	// return/branch statements are retained (with no predecessors) so node
	// positions stay discoverable.
	Blocks []*Block
	// Defers collects every defer statement in the body, in source order.
	// Deferred calls run at every exit from the function.
	Defers []*ast.DeferStmt
}

// New builds the control-flow graph of one function body.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}}
	b.g.Entry = b.block("entry")
	b.g.Exit = b.block("exit")
	b.cur = b.g.Entry
	b.stmt(body)
	b.edge(b.cur, b.g.Exit) // falling off the end returns
	return b.g
}

type builder struct {
	g   *Graph
	cur *Block
	// targets is the stack of enclosing breakable/continuable statements.
	targets *targets
	// labels maps label names to their blocks: the jump target for goto,
	// and the break/continue resolution for labeled loops.
	labels map[string]*labelInfo
	// pendingLabel is set between a LabeledStmt and the statement it
	// labels, so for/range/switch/select can claim the label.
	pendingLabel *labelInfo
}

type targets struct {
	prev    *targets
	label   string
	breakTo *Block
	contTo  *Block // nil for switch/select
}

type labelInfo struct {
	target *Block // jump target for goto and the labeled statement's entry
	// breakTo/contTo are set once the labeled statement turns out to be a
	// loop/switch/select.
	breakTo, contTo *Block
}

func (b *builder) block(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// start begins a new block reached from the current one.
func (b *builder) start(kind string) *Block {
	blk := b.block(kind)
	b.edge(b.cur, blk)
	b.cur = blk
	return blk
}

// dead makes the current block an unreachable continuation, used after
// return/branch/panic so trailing statements still get blocks (and thus
// positions) without fake edges.
func (b *builder) dead() {
	b.cur = b.block("unreachable")
}

func (b *builder) label(name string) *labelInfo {
	if b.labels == nil {
		b.labels = map[string]*labelInfo{}
	}
	li := b.labels[name]
	if li == nil {
		li = &labelInfo{target: b.block("label." + name)}
		b.labels[name] = li
	}
	return li
}

// claimLabel consumes the pending label (if any) for a loop/switch/select
// statement, wiring its break/continue targets.
func (b *builder) claimLabel(breakTo, contTo *Block) {
	if b.pendingLabel == nil {
		return
	}
	b.pendingLabel.breakTo = breakTo
	b.pendingLabel.contTo = contTo
	b.pendingLabel = nil
}

func (b *builder) stmt(s ast.Stmt) {
	if s == nil {
		return
	}
	// Any statement other than a loop/switch/select consumes a pending
	// label trivially (the label then only serves goto).
	switch s.(type) {
	case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
	default:
		b.pendingLabel = nil
	}

	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			b.stmt(st)
		}

	case *ast.LabeledStmt:
		li := b.label(s.Label.Name)
		b.edge(b.cur, li.target)
		b.cur = li.target
		b.pendingLabel = li
		b.stmt(s.Stmt)

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.edge(b.cur, b.g.Exit)
		b.dead()

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.cur.Nodes = append(b.cur.Nodes, s)

	case *ast.IfStmt:
		b.ifStmt(s)

	case *ast.ForStmt:
		b.forStmt(s)

	case *ast.RangeStmt:
		b.rangeStmt(s)

	case *ast.SwitchStmt:
		b.switchStmt(s.Init, s.Tag, nil, s.Body)

	case *ast.TypeSwitchStmt:
		b.switchStmt(s.Init, nil, s.Assign, s.Body)

	case *ast.SelectStmt:
		b.selectStmt(s)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && isPanic(call) {
			b.dead() // no successors: the path dies here
		}

	default:
		// Assignments, declarations, sends, inc/dec, go statements, empty
		// statements: straight-line.
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// isPanic reports whether call invokes the predeclared panic. The check is
// purely syntactic (cfg has no type information); a shadowed panic would be
// misclassified, which the repo does not do.
func isPanic(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}

func (b *builder) branch(s *ast.BranchStmt) {
	switch s.Tok.String() {
	case "break":
		to := b.breakTarget(s.Label)
		if to != nil {
			b.edge(b.cur, to)
		}
		b.dead()
	case "continue":
		to := b.continueTarget(s.Label)
		if to != nil {
			b.edge(b.cur, to)
		}
		b.dead()
	case "goto":
		if s.Label != nil {
			b.edge(b.cur, b.label(s.Label.Name).target)
		}
		b.dead()
	case "fallthrough":
		// Wired by switchStmt via the fallthrough map; the clause builder
		// records the statement so the edge to the next clause body can be
		// added there. Nothing to do here — switchStmt inspects the last
		// statement of each clause.
	}
}

func (b *builder) breakTarget(label *ast.Ident) *Block {
	if label != nil {
		if li := b.labels[label.Name]; li != nil {
			return li.breakTo
		}
		return nil
	}
	for t := b.targets; t != nil; t = t.prev {
		if t.breakTo != nil {
			return t.breakTo
		}
	}
	return nil
}

func (b *builder) continueTarget(label *ast.Ident) *Block {
	if label != nil {
		if li := b.labels[label.Name]; li != nil {
			return li.contTo
		}
		return nil
	}
	for t := b.targets; t != nil; t = t.prev {
		if t.contTo != nil {
			return t.contTo
		}
	}
	return nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	b.cur.Nodes = append(b.cur.Nodes, s.Cond)
	head := b.cur

	join := b.block("if.join")

	then := b.block("if.then")
	b.edge(head, then)
	b.cur = then
	b.stmt(s.Body)
	b.edge(b.cur, join)

	if s.Else != nil {
		els := b.block("if.else")
		b.edge(head, els)
		b.cur = els
		b.stmt(s.Else)
		b.edge(b.cur, join)
	} else {
		b.edge(head, join)
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt) {
	if s.Init != nil {
		b.cur.Nodes = append(b.cur.Nodes, s.Init)
	}
	head := b.start("for.head")
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	join := b.block("for.join")
	var post *Block
	contTo := head
	if s.Post != nil {
		post = b.block("for.post")
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		contTo = post
	}
	if s.Cond != nil {
		b.edge(head, join)
	}
	b.claimLabel(join, contTo)

	body := b.block("for.body")
	b.edge(head, body)
	b.cur = body
	b.targets = &targets{prev: b.targets, breakTo: join, contTo: contTo}
	b.stmt(s.Body)
	b.targets = b.targets.prev
	b.edge(b.cur, contTo)
	b.cur = join
}

func (b *builder) rangeStmt(s *ast.RangeStmt) {
	head := b.start("range.head")
	// Only the control expressions live in the head — storing the whole
	// RangeStmt would duplicate the body's statements into the head block.
	head.Nodes = append(head.Nodes, s.X)
	if s.Key != nil {
		head.Nodes = append(head.Nodes, s.Key)
	}
	if s.Value != nil {
		head.Nodes = append(head.Nodes, s.Value)
	}
	join := b.block("range.join")
	b.edge(head, join) // the range may be empty
	b.claimLabel(join, head)

	body := b.block("range.body")
	b.edge(head, body)
	b.cur = body
	b.targets = &targets{prev: b.targets, breakTo: join, contTo: head}
	b.stmt(s.Body)
	b.targets = b.targets.prev
	b.edge(b.cur, head)
	b.cur = join
}

// switchStmt handles both expression and type switches; exactly one of tag
// (expression switch) and assign (type switch) is non-nil, and either may be
// nil for a bare `switch {}`.
func (b *builder) switchStmt(init ast.Stmt, tag ast.Expr, assign ast.Stmt, body *ast.BlockStmt) {
	if init != nil {
		b.cur.Nodes = append(b.cur.Nodes, init)
	}
	if tag != nil {
		b.cur.Nodes = append(b.cur.Nodes, tag)
	}
	if assign != nil {
		b.cur.Nodes = append(b.cur.Nodes, assign)
	}
	head := b.cur
	join := b.block("switch.join")
	b.claimLabel(join, nil)

	// Pre-create a body block per clause so fallthrough can edge forward.
	var clauses []*ast.CaseClause
	var bodies []*Block
	hasDefault := false
	for _, st := range body.List {
		cc := st.(*ast.CaseClause)
		clauses = append(clauses, cc)
		bodies = append(bodies, b.block("case.body"))
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		b.edge(head, join) // no case may match
	}
	b.targets = &targets{prev: b.targets, breakTo: join}
	for i, cc := range clauses {
		blk := bodies[i]
		b.edge(head, blk)
		// Case expressions evaluate on the path into the clause.
		for _, e := range cc.List {
			blk.Nodes = append(blk.Nodes, e)
		}
		b.cur = blk
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok.String() == "fallthrough" {
				fallsThrough = true
				break
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(bodies) {
			b.edge(b.cur, bodies[i+1])
		} else {
			b.edge(b.cur, join)
		}
	}
	b.targets = b.targets.prev
	b.cur = join
}

func (b *builder) selectStmt(s *ast.SelectStmt) {
	head := b.cur
	join := b.block("select.join")
	b.claimLabel(join, nil)
	b.targets = &targets{prev: b.targets, breakTo: join}
	for _, st := range s.Body.List {
		cc := st.(*ast.CommClause)
		blk := b.block("comm.body")
		b.edge(head, blk)
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.cur = blk
		for _, bs := range cc.Body {
			b.stmt(bs)
		}
		b.edge(b.cur, join)
	}
	b.targets = b.targets.prev
	b.cur = join
}

// Shallow walks n in source order like ast.Inspect but does not descend
// into function literals: their bodies execute when called, not where they
// are written, so path-sensitive analyzers treat each literal as its own
// function (with its own Graph).
func Shallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok && m != n {
			return false
		}
		return f(m)
	})
}

// FuncBodies returns every function body in the file paired with a
// human-readable name: declared functions and methods, plus each function
// literal (named after its enclosing declaration). Analyzers build one
// Graph per body.
func FuncBodies(file *ast.File) []FuncBody {
	var out []FuncBody
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		out = append(out, FuncBody{Name: fd.Name.Name, Body: fd.Body})
		collectLits(fd.Body, fd.Name.Name, &out)
	}
	// Function literals in package-level variable initializers.
	for _, decl := range file.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok {
			continue
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				for _, v := range vs.Values {
					if lit, ok := v.(*ast.FuncLit); ok {
						out = append(out, FuncBody{Name: "init", Body: lit.Body})
						collectLits(lit.Body, "init", &out)
						continue
					}
					collectLits(v, "init", &out)
				}
			}
		}
	}
	return out
}

// FuncBody is one analyzable function-like body.
type FuncBody struct {
	Name string
	Body *ast.BlockStmt
}

func collectLits(n ast.Node, outer string, out *[]FuncBody) {
	ast.Inspect(n, func(m ast.Node) bool {
		if lit, ok := m.(*ast.FuncLit); ok && m != n {
			*out = append(*out, FuncBody{Name: outer + ".func", Body: lit.Body})
			collectLits(lit.Body, outer+".func", out)
			return false
		}
		return true
	})
}
