package cfg_test

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"
	"testing"

	"hamoffload/internal/analysis/cfg"
)

// build parses a function body (the src is wrapped in a package+func) and
// returns its graph plus the fileset for rendering.
func build(t *testing.T, body string) (*cfg.Graph, *token.FileSet) {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return cfg.New(fd.Body), fset
}

// render prints a node back to source for substring matching.
func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return "<?>"
	}
	return buf.String()
}

// blockWith returns the unique reachable block containing a node whose
// source rendering contains substr.
func blockWith(t *testing.T, g *cfg.Graph, fset *token.FileSet, substr string) *cfg.Block {
	t.Helper()
	var found *cfg.Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if strings.Contains(render(fset, n), substr) {
				if found != nil && found != b {
					t.Fatalf("%q appears in blocks %d and %d", substr, found.Index, b.Index)
				}
				found = b
			}
		}
	}
	if found == nil {
		t.Fatalf("no block contains %q", substr)
	}
	return found
}

func hasEdge(from, to *cfg.Block) bool {
	for _, s := range from.Succs {
		if s == to {
			return true
		}
	}
	return false
}

// reaches reports whether to is reachable from from along Succs.
func reaches(from, to *cfg.Block) bool {
	seen := map[*cfg.Block]bool{}
	var walk func(*cfg.Block) bool
	walk = func(b *cfg.Block) bool {
		if b == to {
			return true
		}
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] && walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestBranch(t *testing.T) {
	g, fset := build(t, `
		a()
		if cond {
			b()
		} else {
			c()
		}
		d()`)
	ba := blockWith(t, g, fset, "a()")
	bb := blockWith(t, g, fset, "b()")
	bc := blockWith(t, g, fset, "c()")
	bd := blockWith(t, g, fset, "d()")
	if len(ba.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2", len(ba.Succs))
	}
	if !hasEdge(ba, bb) || !hasEdge(ba, bc) {
		t.Error("if head must edge to both arms")
	}
	if !reaches(bb, bd) || !reaches(bc, bd) {
		t.Error("both arms must reach the join")
	}
	if reaches(bb, bc) || reaches(bc, bb) {
		t.Error("the arms must not reach each other")
	}
}

func TestIfWithoutElse(t *testing.T) {
	g, fset := build(t, `
		if cond {
			b()
		}
		d()`)
	head := blockWith(t, g, fset, "cond")
	bd := blockWith(t, g, fset, "d()")
	// head → then and head → join (the false path).
	if len(head.Succs) != 2 {
		t.Fatalf("if head has %d successors, want 2", len(head.Succs))
	}
	if !reaches(head, bd) {
		t.Error("join must be reachable")
	}
}

func TestLoopBackEdge(t *testing.T) {
	g, fset := build(t, `
		for i := 0; i < n; i++ {
			body()
		}
		after()`)
	head := blockWith(t, g, fset, "i < n")
	body := blockWith(t, g, fset, "body()")
	post := blockWith(t, g, fset, "i++")
	after := blockWith(t, g, fset, "after()")
	if !hasEdge(head, body) || !hasEdge(body, post) || !hasEdge(post, head) {
		t.Error("loop must cycle head → body → post → head")
	}
	if !hasEdge(head, after) {
		t.Error("loop head must edge to the exit path")
	}
	d := cfg.Dominators(g)
	back := cfg.BackEdges(g, d)
	if len(back) != 1 || back[0].From != post || back[0].To != head {
		t.Errorf("back edges = %v, want exactly post→head", back)
	}
	if !d.Dominates(head, body) || !d.Dominates(head, after) {
		t.Error("loop head must dominate body and exit path")
	}
	if d.Dominates(body, after) {
		t.Error("loop body must not dominate the exit path")
	}
}

func TestRangeLoop(t *testing.T) {
	g, fset := build(t, `
		for _, v := range xs {
			body(v)
		}
		after()`)
	head := blockWith(t, g, fset, "xs")
	body := blockWith(t, g, fset, "body(v)")
	after := blockWith(t, g, fset, "after()")
	if !hasEdge(head, body) || !hasEdge(body, head) || !hasEdge(head, after) {
		t.Error("range must cycle head ↔ body and edge to the join")
	}
}

func TestReturnAndPanic(t *testing.T) {
	g, fset := build(t, `
		if cond {
			return
		}
		if bad {
			panic("boom")
		}
		tail()`)
	ret := blockWith(t, g, fset, "return")
	pan := blockWith(t, g, fset, `panic("boom")`)
	if !hasEdge(ret, g.Exit) {
		t.Error("return must edge to Exit")
	}
	if len(pan.Succs) != 0 {
		t.Errorf("panic block has %d successors, want 0 (dead end)", len(pan.Succs))
	}
	tail := blockWith(t, g, fset, "tail()")
	if !hasEdge(tail, g.Exit) {
		t.Error("falling off the end must edge to Exit")
	}
}

func TestLabeledBreak(t *testing.T) {
	g, fset := build(t, `
	outer:
		for {
			for {
				if done {
					break outer
				}
				inner()
			}
		}
		after()`)
	brk := blockWith(t, g, fset, "done")
	after := blockWith(t, g, fset, "after()")
	inner := blockWith(t, g, fset, "inner()")
	// The break-outer block's true arm must reach after() without passing
	// through inner().
	if !reaches(brk, after) {
		t.Error("break outer must reach the statement after the outer loop")
	}
	if reaches(after, inner) {
		t.Error("after() must not reach back into the loops")
	}
}

func TestLabeledContinue(t *testing.T) {
	g, fset := build(t, `
	outer:
		for i := 0; i < n; i++ {
			for {
				continue outer
			}
		}
		after()`)
	post := blockWith(t, g, fset, "i++")
	// continue outer must edge to the outer post block.
	var cont *cfg.Block
	for _, b := range g.Blocks {
		if hasEdge(b, post) && b.Kind == "for.body" {
			cont = b
		}
	}
	_ = cont // the structural property below is the real assertion
	head := blockWith(t, g, fset, "i < n")
	if !reaches(head, blockWith(t, g, fset, "after()")) {
		t.Error("outer loop must still reach after()")
	}
	found := false
	for _, p := range post.Preds {
		if p.Kind != "for.head" {
			found = true
		}
	}
	if !found {
		t.Error("continue outer must edge into the outer post block")
	}
}

func TestGoto(t *testing.T) {
	g, fset := build(t, `
		a()
		goto L
		skipped()
	L:
		b()`)
	ba := blockWith(t, g, fset, "a()")
	bb := blockWith(t, g, fset, "b()")
	skipped := blockWith(t, g, fset, "skipped()")
	if !reaches(ba, bb) {
		t.Error("goto must reach its label")
	}
	if len(skipped.Preds) != 0 {
		t.Error("statements after an unconditional goto are unreachable")
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g, fset := build(t, `
		switch x {
		case 1:
			one()
			fallthrough
		case 2:
			two()
		default:
			dflt()
		}
		after()`)
	one := blockWith(t, g, fset, "one()")
	two := blockWith(t, g, fset, "two()")
	dflt := blockWith(t, g, fset, "dflt()")
	after := blockWith(t, g, fset, "after()")
	if !reaches(one, two) {
		t.Error("fallthrough must edge into the next case body")
	}
	if reaches(one, dflt) {
		t.Error("fallthrough must not reach the default clause")
	}
	for _, b := range []*cfg.Block{two, dflt} {
		if !reaches(b, after) {
			t.Error("every clause must reach the join")
		}
	}
}

func TestDefersCollected(t *testing.T) {
	g, _ := build(t, `
		defer cleanup()
		if cond {
			defer second()
		}
		work()`)
	if len(g.Defers) != 2 {
		t.Fatalf("collected %d defers, want 2", len(g.Defers))
	}
}

func TestSelect(t *testing.T) {
	g, fset := build(t, `
		select {
		case <-a:
			onA()
		case <-b:
			onB()
		}
		after()`)
	onA := blockWith(t, g, fset, "onA()")
	onB := blockWith(t, g, fset, "onB()")
	after := blockWith(t, g, fset, "after()")
	if !reaches(onA, after) || !reaches(onB, after) {
		t.Error("both comm clauses must reach the join")
	}
	if reaches(onA, onB) {
		t.Error("comm clauses must not reach each other")
	}
}

func TestDominatorsDiamond(t *testing.T) {
	g, fset := build(t, `
		top()
		if cond {
			left()
		} else {
			right()
		}
		bottom()`)
	top := blockWith(t, g, fset, "top()")
	left := blockWith(t, g, fset, "left()")
	right := blockWith(t, g, fset, "right()")
	bottom := blockWith(t, g, fset, "bottom()")
	d := cfg.Dominators(g)
	for _, b := range []*cfg.Block{left, right, bottom} {
		if !d.Dominates(top, b) {
			t.Errorf("top must dominate block %d", b.Index)
		}
	}
	if d.Dominates(left, bottom) || d.Dominates(right, bottom) {
		t.Error("neither diamond arm dominates the join")
	}
	if !d.Dominates(bottom, bottom) {
		t.Error("dominance is reflexive")
	}
}

// TestForwardSolver exercises the generic solver directly with a reaching
// "may have called risky()" analysis: the fact is a bool, joined with OR.
func TestForwardSolver(t *testing.T) {
	g, fset := build(t, `
		if cond {
			risky()
		}
		tail()`)
	res := cfg.Forward(g, cfg.Problem[bool]{
		Entry: false,
		Transfer: func(b *cfg.Block, in bool) bool {
			out := in
			for _, n := range b.Nodes {
				if strings.Contains(render(fset, n), "risky()") {
					out = true
				}
			}
			return out
		},
		Join:  func(a, b bool) bool { return a || b },
		Equal: func(a, b bool) bool { return a == b },
	})
	tail := blockWith(t, g, fset, "tail()")
	if !res.In[tail] {
		t.Error("risky() may reach tail() — join must OR the arms")
	}
	risky := blockWith(t, g, fset, "risky()")
	if res.In[risky] {
		t.Error("fact must be false entering the risky block")
	}
}

// TestForwardSolverLoop checks fixpoint iteration around a back edge: a
// fact generated in the loop body must flow back into the loop head.
func TestForwardSolverLoop(t *testing.T) {
	g, fset := build(t, `
		for i := 0; i < n; i++ {
			gen()
		}
		tail()`)
	res := cfg.Forward(g, cfg.Problem[bool]{
		Entry: false,
		Transfer: func(b *cfg.Block, in bool) bool {
			out := in
			for _, n := range b.Nodes {
				if strings.Contains(render(fset, n), "gen()") {
					out = true
				}
			}
			return out
		},
		Join:  func(a, b bool) bool { return a || b },
		Equal: func(a, b bool) bool { return a == b },
	})
	head := blockWith(t, g, fset, "i < n")
	if !res.In[head] {
		t.Error("the loop body's fact must flow around the back edge into the head")
	}
}

// taintProblem is a miniature of the borrowck engine over set-valued facts:
// "borrow(x)" gens x, "alias(y, x)" copies x's fact to y, "own(x)" kills x.
// Join is set union, so a fact killed on only one arm survives the join.
func taintProblem(fset *token.FileSet) cfg.Problem[map[string]bool] {
	arg := func(s, verb string) (string, string, bool) {
		rest, ok := strings.CutPrefix(s, verb+"(")
		if !ok {
			return "", "", false
		}
		rest, _, _ = strings.Cut(rest, ")")
		a, b, _ := strings.Cut(rest, ", ")
		return a, b, true
	}
	return cfg.Problem[map[string]bool]{
		Entry: map[string]bool{},
		Transfer: func(b *cfg.Block, in map[string]bool) map[string]bool {
			out := make(map[string]bool, len(in))
			for k := range in {
				out[k] = true
			}
			for _, n := range b.Nodes {
				s := render(fset, n)
				if x, _, ok := arg(s, "borrow"); ok {
					out[x] = true
				}
				if y, x, ok := arg(s, "alias"); ok {
					if out[x] {
						out[y] = true
					} else {
						delete(out, y)
					}
				}
				if x, _, ok := arg(s, "own"); ok {
					delete(out, x)
				}
			}
			return out
		},
		Join: func(a, b map[string]bool) map[string]bool {
			u := make(map[string]bool, len(a)+len(b))
			for k := range a {
				u[k] = true
			}
			for k := range b {
				u[k] = true
			}
			return u
		},
		Equal: func(a, b map[string]bool) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	}
}

// TestForwardSolverBranchKill checks union-join semantics for kills: a fact
// killed on one arm survives the join; a fact killed on both arms does not.
func TestForwardSolverBranchKill(t *testing.T) {
	g, fset := build(t, `
		borrow(x)
		borrow(y)
		if cond {
			own(x)
			own(y)
		} else {
			own(y)
		}
		tail()`)
	res := cfg.Forward(g, taintProblem(fset))
	in := res.In[blockWith(t, g, fset, "tail()")]
	if !in["x"] {
		t.Error("x is killed on only one arm: the union join must keep it")
	}
	if in["y"] {
		t.Error("y is killed on every arm: it must not survive the join")
	}
}

// TestForwardSolverAliasLoop checks that an alias fact created in a loop body
// rides the back edge: on the second iteration the head sees the alias as
// tainted even though the aliasing statement is below its first use.
func TestForwardSolverAliasLoop(t *testing.T) {
	g, fset := build(t, `
		borrow(x)
		for i := 0; i < n; i++ {
			use(y)
			alias(y, x)
		}
		tail()`)
	res := cfg.Forward(g, taintProblem(fset))
	if !res.In[blockWith(t, g, fset, "use(y)")]["y"] {
		t.Error("the alias fact must flow around the back edge into the loop body")
	}
	if !res.In[blockWith(t, g, fset, "tail()")]["y"] {
		t.Error("the alias fact must reach the loop exit")
	}
}

// TestForwardSolverAliasKill checks that re-aliasing from an owned source
// clears the destination's fact without touching the source chain.
func TestForwardSolverAliasKill(t *testing.T) {
	g, fset := build(t, `
		borrow(x)
		alias(y, x)
		own(x)
		alias(y, x)
		tail()`)
	res := cfg.Forward(g, taintProblem(fset))
	in := res.In[blockWith(t, g, fset, "tail()")]
	if in["y"] {
		t.Error("re-aliasing y from the now-owned x must kill y's fact")
	}
	if in["x"] {
		t.Error("x was owned and must stay untainted")
	}
}

func TestFuncBodies(t *testing.T) {
	src := `package p
func a() { go func() { inner() }() }
func (r T) b() {}
var v = func() { lit() }
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	var names []string
	for _, fb := range cfg.FuncBodies(file) {
		names = append(names, fb.Name)
	}
	want := []string{"a", "a.func", "b", "init"}
	if strings.Join(names, ",") != strings.Join(want, ",") {
		t.Errorf("FuncBodies = %v, want %v", names, want)
	}
}
