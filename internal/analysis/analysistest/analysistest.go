// Package analysistest runs an analyzer over fixture packages under
// testdata/src and checks its findings against // want comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard library.
//
// A fixture line carries expectations as quoted regular expressions:
//
//	end := tr.Begin("x") // want `never called`
//	_ = time.Now()       // want "wall clock" "second finding on this line"
//
// Every diagnostic must be matched by a want on its line and every want
// must match a diagnostic; //lint:allow suppression is applied exactly as
// hamlint applies it, so fixtures can test the suppression mechanism too.
// Fixture imports (both standard-library and hamoffload/...) are resolved
// from compiler export data, so fixtures may exercise the real simtime and
// units types.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"hamoffload/internal/analysis"
)

// Run loads testdata/src/<pkg> relative to the calling test's directory,
// applies the analyzer, and reports any mismatch with the // want comments
// as test failures.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	p := load(t, dir, pkg)
	diags, err := analysis.Run(p, []*analysis.Analyzer{a}, nil)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, pkg, err)
	}
	check(t, []*analysis.Package{p}, diags)
}

// RunModule loads several fixture packages under testdata/src into one
// shared file set — listed dependencies-first, so later fixtures may import
// earlier ones by their bare fixture name — applies the analyzer's
// module-wide pass under the given scoping predicate, and checks the
// findings against the // want comments of every fixture file.
func RunModule(t *testing.T, a *analysis.Analyzer, applies func(analyzer, pkgPath string) bool, pkgPaths ...string) {
	t.Helper()
	fset := token.NewFileSet()
	local := map[string]*types.Package{}
	var pkgs []*analysis.Package
	for _, pkgPath := range pkgPaths {
		dir := filepath.Join("testdata", "src", pkgPath)
		p := loadInto(t, fset, local, dir, pkgPath)
		local[pkgPath] = p.Types
		pkgs = append(pkgs, p)
	}
	diags, err := analysis.RunModule(pkgs, []*analysis.Analyzer{a}, applies)
	if err != nil {
		t.Fatalf("module pass of %s: %v", a.Name, err)
	}
	check(t, pkgs, diags)
}

// load parses and type-checks one fixture package in its own file set.
func load(t *testing.T, dir, pkgPath string) *analysis.Package {
	t.Helper()
	return loadInto(t, token.NewFileSet(), nil, dir, pkgPath)
}

// loadInto parses and type-checks one fixture package into fset. Imports
// resolve first against local (fixture packages loaded earlier in the same
// module set), then against compiler export data.
func loadInto(t *testing.T, fset *token.FileSet, local map[string]*types.Package, dir, pkgPath string) *analysis.Package {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no fixture files in %s (%v)", dir, err)
	}
	sort.Strings(names)
	var files []*ast.File
	imports := map[string]bool{}
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", name, err)
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil && local[path] == nil {
				imports[path] = true
			}
		}
	}
	exports := exportData(t, imports)
	exporter := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		return os.Open(exports[path])
	})
	pkg, info, err := analysis.Typecheck(fset, pkgPath, files, chainImporter{local, exporter})
	if err != nil {
		t.Fatalf("fixture %s must type-check: %v", pkgPath, err)
	}
	return &analysis.Package{
		Path: pkgPath, Dir: dir, Fset: fset, Files: files, Types: pkg, TypesInfo: info,
	}
}

// chainImporter resolves fixture-local packages before falling back to
// export data, so module fixtures can import each other.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.Importer
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	if p, ok := c.local[path]; ok {
		return p, nil
	}
	return c.fallback.Import(path)
}

// exportData resolves the fixture's imports (and their dependency closure)
// to compiler export-data files via `go list -deps -export`.
func exportData(t *testing.T, imports map[string]bool) map[string]string {
	t.Helper()
	exports := map[string]string{}
	if len(imports) == 0 {
		return exports
	}
	args := []string{"list", "-deps", "-export", "-f", "{{.ImportPath}}\t{{.Export}}"}
	for path := range imports {
		args = append(args, path)
	}
	sort.Strings(args[5:])
	out, err := exec.Command("go", args...).Output()
	if err != nil {
		t.Fatalf("go list %v: %v", args, err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if path, file, ok := strings.Cut(line, "\t"); ok && file != "" {
			exports[path] = file
		}
	}
	return exports
}

// want is one expectation: a regexp anchored to a file line.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// check matches diagnostics against the // want comments of the fixtures.
func check(t *testing.T, pkgs []*analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					if !strings.HasPrefix(text, "want ") {
						continue
					}
					pos := p.Fset.Position(c.Slash)
					for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
						expr := m[1]
						if m[2] != "" {
							expr = m[2]
						}
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, expr, err)
						}
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
	}
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// claim marks the first unclaimed want on the diagnostic's line that
// matches its message.
func claim(wants []*want, d analysis.Diagnostic) bool {
	for _, w := range wants {
		if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
			w.hit = true
			return true
		}
	}
	return false
}
