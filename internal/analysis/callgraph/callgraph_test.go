package callgraph_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"hamoffload/internal/analysis"
	"hamoffload/internal/analysis/callgraph"
)

// load typechecks one in-memory package (no imports) and wraps it as an
// analysis.Package so Build can consume it.
func load(t *testing.T, path, src string) *analysis.Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path+"/a.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	files := []*ast.File{file}
	pkg, info, err := analysis.Typecheck(fset, path, files, nil)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &analysis.Package{Path: path, Fset: fset, Files: files, Types: pkg, TypesInfo: info}
}

const src = `package cg

type Doer interface{ Do() }

type A struct{}
func (A) Do()  { leafA() }

type B struct{}
func (*B) Do() { leafB() }

func leafA() {}
func leafB() {}
func unrelated() {}

func static() { leafA() }

func dynamic(d Doer) { d.Do() }

func chain() { static() }

var hook = func() { leafB() }
`

func build(t *testing.T) *callgraph.Graph {
	t.Helper()
	return callgraph.Build([]*analysis.Package{load(t, "cg", src)})
}

func node(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	n := g.Lookup(name)
	if n == nil {
		var have []string
		for _, f := range g.Funcs() {
			have = append(have, f.Name)
		}
		t.Fatalf("no node %q; have %s", name, strings.Join(have, ", "))
	}
	return n
}

func TestStaticEdges(t *testing.T) {
	g := build(t)
	if !g.Reaches(node(t, g, "cg.static"), node(t, g, "cg.leafA")) {
		t.Error("static() calls leafA() — edge missing")
	}
	if g.Reaches(node(t, g, "cg.static"), node(t, g, "cg.leafB")) {
		t.Error("static() must not reach leafB()")
	}
}

func TestTransitiveReachability(t *testing.T) {
	g := build(t)
	if !g.Reaches(node(t, g, "cg.chain"), node(t, g, "cg.leafA")) {
		t.Error("chain() → static() → leafA() — transitive reachability broken")
	}
	if g.Reaches(node(t, g, "cg.chain"), node(t, g, "cg.unrelated")) {
		t.Error("chain() must not reach unrelated()")
	}
}

func TestInterfaceCHA(t *testing.T) {
	g := build(t)
	dyn := node(t, g, "cg.dynamic")
	// The interface call must fan out to both implementations, value and
	// pointer receiver alike, and on through to their leaves.
	for _, leaf := range []string{"cg.leafA", "cg.leafB"} {
		if !g.Reaches(dyn, node(t, g, leaf)) {
			t.Errorf("dynamic() must reach %s via CHA", leaf)
		}
	}
	if g.Reaches(dyn, node(t, g, "cg.unrelated")) {
		t.Error("dynamic() must not reach unrelated()")
	}
}

func TestInitializerLits(t *testing.T) {
	g := build(t)
	if !g.Reaches(node(t, g, "cg.init"), node(t, g, "cg.leafB")) {
		t.Error("package-level var hook literal must be attributed to cg.init")
	}
}

func TestPathTo(t *testing.T) {
	g := build(t)
	path := g.PathTo(node(t, g, "cg.chain"),
		func(n *callgraph.Node) bool { return n.Name == "cg.leafA" }, nil)
	if len(path) != 2 {
		t.Fatalf("PathTo returned %d edges, want 2 (chain→static→leafA)", len(path))
	}
	if path[0].Callee.Name != "cg.static" || path[1].Callee.Name != "cg.leafA" {
		t.Errorf("path = %s → %s", path[0].Callee.Name, path[1].Callee.Name)
	}
	// A through-predicate that forbids expanding static() must cut the path.
	blocked := g.PathTo(node(t, g, "cg.chain"),
		func(n *callgraph.Node) bool { return n.Name == "cg.leafA" },
		func(n *callgraph.Node) bool { return n.Name != "cg.static" })
	if blocked != nil {
		t.Error("through-predicate must prevent traversal beyond static()")
	}
}

func TestDefinedFlag(t *testing.T) {
	g := build(t)
	if !node(t, g, "cg.leafA").Defined {
		t.Error("leafA is defined in the loaded package")
	}
}

func TestFuncsSorted(t *testing.T) {
	g := build(t)
	funcs := g.Funcs()
	for i := 1; i < len(funcs); i++ {
		if funcs[i-1].Name >= funcs[i].Name {
			t.Fatalf("Funcs() not strictly sorted: %q before %q", funcs[i-1].Name, funcs[i].Name)
		}
	}
}
