// Package callgraph builds a type-based (CHA-style) call graph over every
// package loaded for analysis, with reachability queries for the
// interprocedural analyzers.
//
// Resolution is deliberately conservative:
//
//   - Static calls (package functions and concrete methods) produce one edge.
//   - Interface method calls produce an edge to the interface method plus one
//     edge to the corresponding method of every named type in the loaded
//     packages that implements the interface (class-hierarchy analysis).
//   - Calls inside function literals are attributed to the enclosing declared
//     function; literals in package-level variable initializers are
//     attributed to a synthetic per-package "init" node.
//
// Nodes are keyed by the callee's full name (types.Func.FullName), not by
// object identity: the loader type-checks root packages from source but
// resolves their dependencies from export data, so the same function is
// represented by distinct types.Func objects depending on which side of an
// import it is seen from. The full name is identical in both views.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"hamoffload/internal/analysis"
)

// A Node is one function (or synthetic package initializer) in the graph.
type Node struct {
	// Name is the stable identity: types.Func.FullName for real functions
	// (e.g. "time.Now", "(hamoffload/internal/trace.Tracer).Span"), or
	// "<pkgpath>.init" for the synthetic initializer node.
	Name string
	// PkgPath is the import path of the package owning the function.
	PkgPath string
	// Func is a representative types.Func (nil for synthetic init nodes).
	// When the function is seen both from source and from export data, the
	// source-checked object wins.
	Func *types.Func
	// Defined reports whether the function's body was loaded from source
	// (i.e. it belongs to an analyzed root package). Undefined nodes — the
	// standard library, export-data-only dependencies — are leaves.
	Defined bool
	// Out lists the calls made by this function, in source order.
	Out []*Edge
}

// An Edge is one resolved call.
type Edge struct {
	Caller, Callee *Node
	// Site is the call position. For CHA-resolved interface calls every
	// candidate implementation gets an edge carrying the same site.
	Site token.Pos
}

// A Graph is the call graph of one loaded module.
type Graph struct {
	Fset  *token.FileSet
	nodes map[string]*Node
}

// Build constructs the call graph of pkgs. The packages should come from one
// analysis.Load call (shared fset); pass them in the loader's order for
// deterministic edge ordering.
func Build(pkgs []*analysis.Package) *Graph {
	g := &Graph{nodes: map[string]*Node{}}
	if len(pkgs) > 0 {
		g.Fset = pkgs[0].Fset
	}
	impls := implementers(pkgs)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					fn, _ := pkg.TypesInfo.Defs[d.Name].(*types.Func)
					if fn == nil || d.Body == nil {
						continue
					}
					caller := g.node(fn.FullName(), pkg.Path, fn)
					caller.Defined = true
					g.addCalls(caller, d.Body, pkg, impls)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, v := range vs.Values {
							if !hasCall(v) {
								continue
							}
							caller := g.node(pkg.Path+".init", pkg.Path, nil)
							caller.Defined = true
							g.addCalls(caller, v, pkg, impls)
						}
					}
				}
			}
		}
	}
	return g
}

// node interns a node by name. A non-nil fn from a source-checked package
// replaces an export-data representative.
func (g *Graph) node(name, pkgPath string, fn *types.Func) *Node {
	n, ok := g.nodes[name]
	if !ok {
		n = &Node{Name: name, PkgPath: pkgPath, Func: fn}
		g.nodes[name] = n
		return n
	}
	if fn != nil && n.Func == nil {
		n.Func = fn
	}
	return n
}

// addCalls resolves every call expression under root (including those inside
// function literals) and records edges from caller.
func (g *Graph) addCalls(caller *Node, root ast.Node, pkg *analysis.Package, impls *implTable) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		g.resolve(caller, call, pkg, impls)
		return true
	})
}

// resolve records the edge(s) for one call expression.
func (g *Graph) resolve(caller *Node, call *ast.CallExpr, pkg *analysis.Package, impls *implTable) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.TypesInfo.Uses[fun].(*types.Func); ok {
			g.edge(caller, fn, call.Lparen)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.TypesInfo.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			g.edge(caller, fn, call.Lparen)
			if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
				for _, impl := range impls.methods(iface, fn) {
					g.edge(caller, impl, call.Lparen)
				}
			}
			return
		}
		// Qualified identifier (pkg.Func) or method expression receiver.
		if fn, ok := pkg.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			g.edge(caller, fn, call.Lparen)
		}
	}
}

func (g *Graph) edge(caller *Node, callee *types.Func, site token.Pos) {
	pkgPath := ""
	if callee.Pkg() != nil {
		pkgPath = callee.Pkg().Path()
	}
	to := g.node(callee.FullName(), pkgPath, callee)
	caller.Out = append(caller.Out, &Edge{Caller: caller, Callee: to, Site: site})
}

// hasCall reports whether any call expression occurs under n.
func hasCall(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// Node returns the graph node for fn, or nil if fn never appears as a caller
// or callee.
func (g *Graph) Node(fn *types.Func) *Node {
	if fn == nil {
		return nil
	}
	return g.nodes[fn.FullName()]
}

// Lookup returns the node with the given full name, or nil.
func (g *Graph) Lookup(fullName string) *Node {
	return g.nodes[fullName]
}

// Funcs returns every node sorted by name, for deterministic iteration.
func (g *Graph) Funcs() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Reaches reports whether to is reachable from from along call edges.
func (g *Graph) Reaches(from, to *Node) bool {
	return g.PathTo(from, func(n *Node) bool { return n == to }, nil) != nil
}

// PathTo runs a breadth-first search from from and returns the edges of a
// shortest path to the first node satisfying sink, or nil if none is
// reachable. If through is non-nil, only nodes satisfying it are expanded
// (from itself is always expanded); sink nodes need not satisfy through.
// from itself is not tested against sink.
func (g *Graph) PathTo(from *Node, sink func(*Node) bool, through func(*Node) bool) []*Edge {
	type hop struct {
		edge *Edge
		prev *hop
	}
	unwind := func(h *hop) []*Edge {
		var path []*Edge
		for ; h != nil; h = h.prev {
			path = append([]*Edge{h.edge}, path...)
		}
		return path
	}
	seen := map[*Node]bool{from: true}
	queue := []*hop{}
	for _, e := range from.Out {
		if !seen[e.Callee] {
			seen[e.Callee] = true
			queue = append(queue, &hop{edge: e})
		}
	}
	for len(queue) > 0 {
		h := queue[0]
		queue = queue[1:]
		n := h.edge.Callee
		if sink(n) {
			return unwind(h)
		}
		if through != nil && !through(n) {
			continue
		}
		for _, e := range n.Out {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				queue = append(queue, &hop{edge: e, prev: h})
			}
		}
	}
	return nil
}

// An ImplTable answers "which named types implement this interface?"
// queries over the loaded packages, caching per (interface, method name).
// It backs the CHA resolution here and is exported for other
// interprocedural analyzers (hotalloc) that resolve interface calls with
// the same class-hierarchy assumption.
type ImplTable = implTable

// NewImplTable collects every non-interface named type declared in pkgs.
func NewImplTable(pkgs []*analysis.Package) *ImplTable {
	return implementers(pkgs)
}

// Methods returns, for every collected type implementing iface (by value or
// by pointer receiver), its method corresponding to the interface method m.
func (t *implTable) Methods(iface *types.Interface, m *types.Func) []*types.Func {
	return t.methods(iface, m)
}

// implTable answers "which named types implement this interface?" queries
// over the loaded packages, caching per (interface, method name).
type implTable struct {
	named []types.Type // every non-interface named type in the loaded packages
	cache map[implKey][]*types.Func
}

type implKey struct {
	iface  *types.Interface
	method string
}

// implementers collects every non-interface named type declared in pkgs.
func implementers(pkgs []*analysis.Package) *implTable {
	t := &implTable{cache: map[implKey][]*types.Func{}}
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			if named.TypeParams().Len() > 0 {
				continue // uninstantiated generics have no concrete method set
			}
			t.named = append(t.named, named)
		}
	}
	return t
}

// methods returns, for every collected type implementing iface (by value or
// by pointer receiver), its method corresponding to the interface method m.
func (t *implTable) methods(iface *types.Interface, m *types.Func) []*types.Func {
	key := implKey{iface, m.Name()}
	if got, ok := t.cache[key]; ok {
		return got
	}
	var out []*types.Func
	for _, named := range t.named {
		if !types.Implements(named, iface) && !types.Implements(types.NewPointer(named), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, m.Pkg(), m.Name())
		if fn, ok := obj.(*types.Func); ok {
			out = append(out, fn)
		}
	}
	t.cache[key] = out
	return out
}
