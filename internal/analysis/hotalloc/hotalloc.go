// Package hotalloc enforces allocation-free hot paths.
//
// The ROADMAP's million-request serving item needs the DES engine and the
// offload fast path to run 10^7 simulated offloads in seconds of wall
// clock; BENCH_engine.json already gates allocs/event dynamically, but
// nothing stopped a new fmt.Sprintf or escaping closure from creeping into
// Dispatch until the benchmark drifted. hotalloc closes that gap
// statically: it walks every function reachable from a declared hot-path
// root and reports each operation that may allocate, with the full
// root→allocation call chain.
//
// Roots are declared centrally — analysis.HotPathRoots in policy.go, or a
// //hot:path marker in a function's doc comment. A //hot:cold marker
// asserts a function is off the hot path (terminal error construction,
// recovery paths); the walk does not enter it.
//
// The traversal understands the repository's armed-observability idiom:
// branches guarded by a nil check of an armed handle (*trace.Tracer,
// *trace.NodeTracer, *telemetry.Collector — analysis.ArmedGuardTypes) are
// the instrumented slow path and are pruned, as are then-branches of
// `if err != nil` error guards. Everything else reachable from a root must
// be allocation-free:
//
//   - &T{} / new(T) and slice/map composite literals
//   - append whose base is not an explicit reuse slice (s[:0], s[:n])
//   - make of slices (non-provable size), maps and channels
//   - interface boxing: concrete non-pointer values passed to interface
//     parameters, returned as interface results, or converted explicitly
//   - closures capturing variables
//   - non-constant string concatenation and string↔[]byte conversions
//   - fmt.* and errors.New calls
//   - map iteration
//
// Findings land only in the packages the hotalloc policy scopes
// (analysis.Applies); calls out into neutral packages are followed, but
// their internal findings are dropped by the shared module-pass scoping.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"hamoffload/internal/analysis"
	"hamoffload/internal/analysis/callgraph"
)

// Analyzer reports heap-allocating operations reachable from hot-path
// roots. It is module-wide only: the interesting allocations sit behind
// call chains that cross package boundaries.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc: "forbid heap allocation on hot paths: everything reachable from a " +
		"//hot:path root (or analysis.HotPathRoots) must not allocate outside " +
		"armed-observability and error branches",
	RunModule: runModule,
}

// site is one potential allocation inside a function body.
type site struct {
	pos  token.Pos
	what string
}

// callEdge is one resolved outgoing call.
type callEdge struct {
	callee string // Origin-normalized types.Func.FullName
}

// fnSummary is the per-function result of the pruning walk.
type fnSummary struct {
	name   string
	hot    bool // //hot:path marker or policy root
	cold   bool // //hot:cold marker
	allocs []site
	calls  []callEdge
}

func runModule(pass *analysis.ModulePass) error {
	impls := callgraph.NewImplTable(pass.Pkgs)
	roots := map[string]bool{}
	for _, name := range analysis.HotPathRoots {
		roots[name] = true
	}

	sums := map[string]*fnSummary{}
	var order []string // summary names in load order, for deterministic BFS
	for _, pkg := range pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				s := &fnSummary{
					name: fn.FullName(),
					hot:  hasMarker(fd.Doc, "hot:path") || roots[fn.FullName()],
					cold: hasMarker(fd.Doc, "hot:cold"),
				}
				if !s.cold {
					w := &walker{pkg: pkg, sum: s, impls: impls, sig: fn.Type().(*types.Signature)}
					w.block(fd.Body.List)
				}
				sums[s.name] = s
				order = append(order, s.name)
			}
		}
	}

	// BFS the call forest from every root, carrying the chain for the
	// diagnostic. Each function is visited once (first root wins) and each
	// allocation site reported once.
	type hop struct {
		name string
		prev *hop
	}
	render := func(h *hop) string {
		var parts []string
		for ; h != nil; h = h.prev {
			parts = append([]string{h.name}, parts...)
		}
		return strings.Join(parts, " → ")
	}
	seen := map[string]bool{}
	reported := map[token.Pos]bool{}
	var rootNames []string
	for _, name := range order {
		if sums[name].hot && !sums[name].cold {
			rootNames = append(rootNames, name)
		}
	}
	sort.Strings(rootNames)
	for _, root := range rootNames {
		if seen[root] {
			continue
		}
		seen[root] = true
		queue := []*hop{{name: root}}
		for len(queue) > 0 {
			h := queue[0]
			queue = queue[1:]
			s := sums[h.name]
			for _, a := range s.allocs {
				if reported[a.pos] {
					continue
				}
				reported[a.pos] = true
				pass.Reportf(a.pos, "%s on a hot path (%s)", a.what, render(h))
			}
			for _, c := range s.calls {
				callee := sums[c.callee]
				if callee == nil || callee.cold || seen[c.callee] {
					continue
				}
				seen[c.callee] = true
				queue = append(queue, &hop{name: c.callee, prev: h})
			}
		}
	}
	return nil
}

// hasMarker reports whether the doc comment group contains a line comment
// of exactly //<marker> (ignoring surrounding space).
func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(strings.TrimPrefix(c.Text, "//")) == marker {
			return true
		}
	}
	return false
}

// walker performs the pruning walk over one function body, accumulating
// allocation sites and outgoing call edges.
type walker struct {
	pkg      *analysis.Package
	sum      *fnSummary
	impls    *callgraph.ImplTable
	sig      *types.Signature
	inConcat bool // suppress nested string-concat reports
}

func (w *walker) typeOf(e ast.Expr) types.Type {
	return w.pkg.TypesInfo.TypeOf(e)
}

func (w *walker) report(pos token.Pos, what string) {
	w.sum.allocs = append(w.sum.allocs, site{pos: pos, what: what})
}

// block walks statements in order, stopping when a disarmed fast-path
// return makes the remainder armed-only.
func (w *walker) block(list []ast.Stmt) {
	for _, s := range list {
		if w.stmt(s) {
			return
		}
	}
}

// stmt walks one statement; it returns true when the remainder of the
// enclosing block is provably armed-only (a `if armed == nil { ...return }`
// fast path ran) and must be pruned.
func (w *walker) stmt(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.IfStmt:
		return w.ifStmt(s)
	case *ast.BlockStmt:
		w.block(s.List)
	case *ast.ForStmt:
		w.stmt(s.Init)
		w.expr(s.Cond)
		w.stmt(s.Post)
		w.block(s.Body.List)
	case *ast.RangeStmt:
		if t := w.typeOf(s.X); t != nil {
			if _, ok := t.Underlying().(*types.Map); ok {
				w.report(s.For, "map iteration (unbounded iterator state, nondeterministic order)")
			}
		}
		w.expr(s.X)
		w.block(s.Body.List)
	case *ast.SwitchStmt:
		w.stmt(s.Init)
		w.expr(s.Tag)
		for _, c := range s.Body.List {
			cc := c.(*ast.CaseClause)
			for _, e := range cc.List {
				w.expr(e)
			}
			w.block(cc.Body)
		}
	case *ast.TypeSwitchStmt:
		w.stmt(s.Init)
		w.stmt(s.Assign)
		for _, c := range s.Body.List {
			w.block(c.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			w.stmt(cc.Comm)
			w.block(cc.Body)
		}
	case *ast.ReturnStmt:
		w.returnStmt(s)
	case *ast.AssignStmt:
		for _, e := range s.Lhs {
			w.expr(e)
		}
		for _, e := range s.Rhs {
			w.expr(e)
		}
	case *ast.ExprStmt:
		w.expr(s.X)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						w.expr(v)
					}
				}
			}
		}
	case *ast.DeferStmt:
		w.expr(s.Call)
	case *ast.GoStmt:
		w.expr(s.Call)
	case *ast.SendStmt:
		w.expr(s.Chan)
		w.expr(s.Value)
	case *ast.IncDecStmt:
		w.expr(s.X)
	case *ast.LabeledStmt:
		return w.stmt(s.Stmt)
	}
	return false
}

// ifStmt applies the branch-condition whitelist:
//
//	if armed != nil { ... }        — armed-only branch: skipped
//	if armed == nil { ... }        — disarmed fast path: walked; a trailing
//	                                 return prunes the (armed) remainder
//	if err != nil { ... }          — error path: skipped
//
// Any other condition walks both branches.
func (w *walker) ifStmt(s *ast.IfStmt) bool {
	w.stmt(s.Init)
	w.expr(s.Cond)
	switch w.guardKind(s.Cond) {
	case guardArmed:
		// Then-branch runs only when instrumentation is armed.
		return w.stmt(s.Else)
	case guardDisarmed:
		w.block(s.Body.List)
		// `if armed == nil { fast; return }`: everything after the if runs
		// with instrumentation armed.
		return terminates(s.Body)
	case guardError:
		return w.stmt(s.Else)
	}
	w.block(s.Body.List)
	w.stmt(s.Else)
	return false
}

type guard int

const (
	guardNone     guard = iota
	guardArmed          // condition true ⇒ instrumentation armed
	guardDisarmed       // condition true ⇒ instrumentation disarmed
	guardError          // condition true ⇒ error path
)

// guardKind classifies a branch condition against the whitelist. Only the
// exact shapes `X op nil` (plus `X != nil && ...`) are recognized; anything
// richer is walked conservatively.
func (w *walker) guardKind(cond ast.Expr) guard {
	be, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return guardNone
	}
	if be.Op == token.LAND {
		// `armed != nil && ...` still implies armed when true.
		if g := w.guardKind(be.X); g == guardArmed || g == guardError {
			return g
		}
		return guardNone
	}
	if be.Op != token.EQL && be.Op != token.NEQ {
		return guardNone
	}
	operand := be.X
	if isNil(w.pkg, be.X) {
		operand = be.Y
	} else if !isNil(w.pkg, be.Y) {
		return guardNone
	}
	t := w.typeOf(operand)
	switch {
	case isArmedType(t):
		if be.Op == token.NEQ {
			return guardArmed
		}
		return guardDisarmed
	case isErrorType(t):
		if be.Op == token.NEQ {
			return guardError
		}
		return guardNone // `err == nil` guards the success path: keep walking
	}
	return guardNone
}

func isNil(pkg *analysis.Package, e ast.Expr) bool {
	tv, ok := pkg.TypesInfo.Types[e]
	return ok && tv.IsNil()
}

// isArmedType reports whether t is a pointer to one of the armed
// observability handle types from the policy.
func isArmedType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	for _, name := range analysis.ArmedGuardTypes {
		if full == name {
			return true
		}
	}
	return false
}

var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errorIface)
}

// terminates reports whether the block provably does not fall through: its
// last statement is a return or a panic call.
func terminates(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	switch last := b.List[len(b.List)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// returnStmt walks result expressions and reports concrete values boxed
// into interface-typed results.
func (w *walker) returnStmt(s *ast.ReturnStmt) {
	results := w.sig.Results()
	for i, e := range s.Results {
		if len(s.Results) == results.Len() && i < results.Len() {
			if iface := ifaceType(results.At(i).Type()); iface != nil {
				if w.boxes(e, iface) {
					w.report(e.Pos(), "return value boxes into interface "+results.At(i).Type().String())
				}
			}
		}
		w.expr(e)
	}
}

// expr walks one expression tree, reporting allocating operations.
func (w *walker) expr(e ast.Expr) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			if cl, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
				w.report(e.Pos(), "&"+typeLabel(w.typeOf(cl))+"{} escapes to the heap")
				w.compositeElts(cl)
				return
			}
		}
		w.expr(e.X)
	case *ast.CompositeLit:
		if t := w.typeOf(e); t != nil {
			switch t.Underlying().(type) {
			case *types.Slice:
				w.report(e.Pos(), "slice literal "+typeLabel(t)+"{...} allocates its backing array")
			case *types.Map:
				w.report(e.Pos(), "map literal "+typeLabel(t)+"{...} allocates")
			}
		}
		w.compositeElts(e)
	case *ast.CallExpr:
		w.call(e)
	case *ast.FuncLit:
		if captured := freeVars(w.pkg, e); len(captured) > 0 {
			w.report(e.Pos(), "closure captures "+strings.Join(captured, ", ")+" and escapes")
		}
		// The closure body is part of the hot path when invoked there; walk
		// it with the literal's own signature for return-boxing checks.
		inner := &walker{pkg: w.pkg, sum: w.sum, impls: w.impls}
		if sig, ok := w.typeOf(e).(*types.Signature); ok {
			inner.sig = sig
		} else {
			inner.sig = w.sig
		}
		inner.block(e.Body.List)
	case *ast.BinaryExpr:
		if e.Op == token.ADD && !w.inConcat {
			if t := w.typeOf(e); t != nil && isString(t) && !w.isConst(e) {
				w.report(e.Pos(), "string concatenation allocates")
				w.inConcat = true
				w.expr(e.X)
				w.expr(e.Y)
				w.inConcat = false
				return
			}
		}
		w.expr(e.X)
		w.expr(e.Y)
	case *ast.ParenExpr:
		w.expr(e.X)
	case *ast.StarExpr:
		w.expr(e.X)
	case *ast.SelectorExpr:
		w.expr(e.X)
	case *ast.IndexExpr:
		w.expr(e.X)
		w.expr(e.Index)
	case *ast.IndexListExpr:
		w.expr(e.X)
	case *ast.SliceExpr:
		w.expr(e.X)
		w.expr(e.Low)
		w.expr(e.High)
		w.expr(e.Max)
	case *ast.TypeAssertExpr:
		w.expr(e.X)
	case *ast.KeyValueExpr:
		w.expr(e.Key)
		w.expr(e.Value)
	}
}

func (w *walker) compositeElts(cl *ast.CompositeLit) {
	for _, el := range cl.Elts {
		w.expr(el)
	}
}

func (w *walker) isConst(e ast.Expr) bool {
	tv, ok := w.pkg.TypesInfo.Types[e]
	return ok && tv.Value != nil
}

// call handles conversions, builtins, allocation-prone callees, argument
// boxing and call-edge resolution for one call expression.
func (w *walker) call(call *ast.CallExpr) {
	info := w.pkg.TypesInfo

	// Type conversion T(x).
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		target := tv.Type
		src := w.typeOf(call.Args[0])
		switch {
		case src != nil &&
			((isString(target) && isByteSlice(src)) || (isByteSlice(target) && isString(src))):
			w.report(call.Pos(), "string ↔ []byte conversion copies and allocates")
		case ifaceType(target) != nil:
			if w.boxes(call.Args[0], ifaceType(target)) {
				w.report(call.Pos(), "conversion boxes "+typeLabel(src)+" into interface "+typeLabel(target))
			}
		}
		w.expr(call.Args[0])
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				w.appendCall(call)
			case "make":
				w.makeCall(call)
			case "new":
				if len(call.Args) == 1 {
					w.report(call.Pos(), "new("+typeLabel(w.typeOf(call.Args[0]))+") allocates")
				}
			}
			for _, a := range call.Args {
				w.expr(a)
			}
			return
		}
	}

	// Resolve the callee(s): static call, method call (with CHA fan-out for
	// interface receivers), or nothing for dynamic func values.
	var callees []*types.Func
	armedRecv := false
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			callees = append(callees, fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				if isArmedType(sel.Recv()) || isArmedPtr(sel.Recv()) {
					// Methods on an armed handle run only when armed (they
					// nil-check their receiver); don't traverse, but still
					// scan the arguments below.
					armedRecv = true
				} else {
					callees = append(callees, fn)
					if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
						callees = append(callees, w.impls.Methods(iface, fn)...)
					}
				}
			}
		} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			callees = append(callees, fn)
		}
		w.expr(fun.X)
	default:
		w.expr(call.Fun)
	}

	// fmt and errors.New are allocation factories by contract.
	isFmt := false
	for _, fn := range callees {
		if fn.Pkg() == nil {
			continue
		}
		switch {
		case fn.Pkg().Path() == "fmt":
			isFmt = true
			w.report(call.Pos(), "fmt."+fn.Name()+" formats and allocates")
		case fn.Pkg().Path() == "errors" && fn.Name() == "New":
			w.report(call.Pos(), "errors.New allocates")
		}
	}

	// Argument boxing against the callee signature (skipped for fmt calls:
	// the fmt finding subsumes its variadic boxing).
	if !isFmt && !armedRecv {
		if tv, ok := info.Types[call.Fun]; ok && tv.Type != nil {
			if sig, ok := tv.Type.Underlying().(*types.Signature); ok {
				w.boxedArgs(call, sig)
			}
		}
	}

	if !armedRecv {
		for _, fn := range callees {
			w.sum.calls = append(w.sum.calls, callEdge{callee: originName(fn)})
		}
	}
	for _, a := range call.Args {
		w.expr(a)
	}
}

// boxedArgs reports concrete values boxed into interface parameters.
func (w *walker) boxedArgs(call *ast.CallExpr, sig *types.Signature) {
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // f(xs...) passes the slice through
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if iface := ifaceType(pt); iface != nil && w.boxes(arg, iface) {
			w.report(arg.Pos(), "argument boxes "+typeLabel(w.typeOf(arg))+" into interface "+typeLabel(pt))
		}
	}
}

// boxes reports whether passing e where an interface is expected allocates:
// the static type is concrete, not pointer-shaped, and not a constant.
func (w *walker) boxes(e ast.Expr, _ *types.Interface) bool {
	tv, ok := w.pkg.TypesInfo.Types[e]
	if !ok || tv.IsNil() || tv.Value != nil {
		return false
	}
	t := tv.Type
	if t == nil || ifaceType(t) != nil {
		return false // interface→interface copies the word pair
	}
	return !pointerShaped(t)
}

// pointerShaped reports whether values of t fit the interface data word
// without a heap copy.
func pointerShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return true
	}
	return false
}

// appendCall reports appends whose base is not an explicit reuse slice
// expression (s[:0], s[:n]) — only those make amortized growth intent
// visible at the call site.
func (w *walker) appendCall(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	if _, ok := ast.Unparen(call.Args[0]).(*ast.SliceExpr); ok {
		return
	}
	w.report(call.Pos(), "append may grow its backing array (capacity not provable; use an explicit s[:0] reuse slice)")
}

// makeCall reports make of slices, maps and channels. A constant-size slice
// make still allocates at run time, so it is reported too, with a distinct
// message.
func (w *walker) makeCall(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	t := w.typeOf(call.Args[0])
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		allConst := true
		for _, a := range call.Args[1:] {
			if !w.isConst(a) {
				allConst = false
			}
		}
		if allConst {
			w.report(call.Pos(), "make("+typeLabel(t)+") allocates")
		} else {
			w.report(call.Pos(), "make("+typeLabel(t)+") with non-constant size allocates")
		}
	case *types.Map:
		w.report(call.Pos(), "make("+typeLabel(t)+") allocates")
	case *types.Chan:
		w.report(call.Pos(), "make("+typeLabel(t)+") allocates")
	}
}

// isArmedPtr reports whether t is itself one of the armed named types (a
// value receiver on an armed type).
func isArmedPtr(t types.Type) bool {
	return isArmedType(types.NewPointer(t))
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

func ifaceType(t types.Type) *types.Interface {
	if t == nil {
		return nil
	}
	iface, _ := t.Underlying().(*types.Interface)
	return iface
}

// typeLabel renders a type compactly for diagnostics.
func typeLabel(t types.Type) string {
	if t == nil {
		return "?"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// freeVars returns the names of variables the function literal captures
// from its enclosing function, in first-use order.
func freeVars(pkg *analysis.Package, lit *ast.FuncLit) []string {
	var out []string
	seen := map[*types.Var]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		// Captured = declared outside the literal but not at package scope.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level var: referenced directly, not captured
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			seen[v] = true
			out = append(out, v.Name())
		}
		return true
	})
	return out
}

// originName normalizes an (possibly instantiated generic) function to its
// declaration's full name, matching the Defs-side summaries.
func originName(fn *types.Func) string {
	return fn.Origin().FullName()
}
