package hotalloc_test

import (
	"testing"

	"hamoffload/internal/analysis/analysistest"
	"hamoffload/internal/analysis/hotalloc"
)

// TestFixtures drives the module pass over the rule fixture with a nil
// scoping predicate, so every finding in the fixture package is in scope.
func TestFixtures(t *testing.T) {
	analysistest.RunModule(t, hotalloc.Analyzer, nil, "hotallocfix")
}
