// Package hotallocfix exercises every hotalloc escape rule: allocation
// sites reachable from the //hot:path root must be reported with their call
// chain, while armed-observability branches, error branches and //hot:cold
// functions stay silent.
package hotallocfix

import (
	"errors"
	"fmt"

	"hamoffload/internal/trace"
)

type payload struct{ n int }

type sink interface{ accept(v any) }

type sinkImpl struct{}

// accept is reached through the interface call in box via CHA fan-out.
func (sinkImpl) accept(v any) {
	_ = errors.New("impl") // want `errors\.New allocates on a hot path \(hotallocfix\.root → hotallocfix\.box → \(hotallocfix\.sinkImpl\)\.accept\)`
}

//hot:path
func root(tr *trace.Tracer, s []byte) {
	p := &payload{n: 1} // want `&hotallocfix\.payload{} escapes to the heap on a hot path \(hotallocfix\.root\)`
	_ = p
	helper(len(s))
	fastPath(s)
	box(nil, len(s))
	_ = retBox(len(s))
	_ = closures(len(s))
	_ = concat("x")
	_ = fmtErr(len(s))
	errGuard(nil, len(s))
	armedArgs(tr, "x")
	_ = news()
	lits()
	_ = conv(len(s))
	_ = gen(len(s))
	coldPath(len(s))

	if tr != nil {
		_ = fmt.Sprintf("armed %d", len(s)) // armed branch: pruned, no want
	}
	if tr == nil {
		return
	}
	_ = fmt.Sprintf("armed tail %d", len(s)) // after disarmed return: pruned, no want
}

// helper pins the make rules and the root → helper chain rendering.
func helper(n int) {
	buf := make([]byte, n) // want `make\(\[\]byte\) with non-constant size allocates on a hot path \(hotallocfix\.root → hotallocfix\.helper\)`
	_ = buf
	fixed := make([]byte, 8) // want `make\(\[\]byte\) allocates`
	_ = fixed
	m := make(map[int]int) // want `make\(map\[int\]int\) allocates`
	for k := range m {     // want `map iteration`
		_ = k
	}
}

func fastPath(s []byte) {
	grown := append(s, 0) // want `append may grow its backing array`
	_ = grown
	reused := append(s[:0], 1) // explicit reuse slice: no want
	_ = reused
	str := string(s) // want `string ↔ \[\]byte conversion copies and allocates`
	b := []byte(str) // want `string ↔ \[\]byte conversion copies and allocates`
	_ = b
}

func box(k sink, v int) {
	k.accept(v)  // want `argument boxes int into interface any`
	k.accept(&v) // pointer-shaped: no want
}

type myErr struct{ code int }

func (myErr) Error() string { return "" }

func retBox(n int) error {
	if n > 0 {
		return myErr{code: n} // want `return value boxes into interface error`
	}
	return nil // no want: nil never boxes
}

func closures(n int) func() int {
	f := func() int { return n }  // want `closure captures n and escapes`
	g := func() int { return 42 } // no captures: no want
	_ = g
	return f
}

func concat(name string) string {
	s := "prefix " + name // want `string concatenation allocates`
	const c = "a" + "b"   // constant-folded: no want
	_ = c
	return s
}

func fmtErr(n int) error {
	err := errors.New("boom")  // want `errors\.New allocates`
	_ = fmt.Sprintf("x %d", n) // want `fmt\.Sprintf formats and allocates`
	return err
}

func errGuard(err error, n int) {
	if err != nil {
		_ = fmt.Sprintf("failed %d", n) // error branch: pruned, no want
	} else {
		_ = errors.New("else is live") // want `errors\.New allocates`
	}
}

// armedArgs calls a method on an armed handle: the callee is not traversed
// (it runs only when armed and nil-checks its receiver), but its arguments
// are still on the caller's hot path.
func armedArgs(tr *trace.Tracer, name string) {
	tr.Instant(nil, "cat", "evt "+name) // want `string concatenation allocates`
}

func news() *payload {
	return new(payload) // want `new\(hotallocfix\.payload\) allocates`
}

func lits() {
	s := []int{1, 2, 3}         // want `slice literal \[\]int{\.\.\.} allocates its backing array`
	m := map[string]int{"a": 1} // want `map literal map\[string\]int{\.\.\.} allocates`
	_, _ = s, m
}

func conv(n int) any {
	return any(n) // want `conversion boxes int into interface any`
}

func gen[T any](v T) *T {
	p := new(T) // want `new\(T\) allocates`
	*p = v
	return p
}

// coldPath is asserted off the hot path; nothing inside is reported.
//
//hot:cold
func coldPath(n int) {
	_ = fmt.Sprintf("cold %d", n) // no want: //hot:cold
}

// unreachable is never called from a root: nothing inside is reported.
func unreachable() {
	_ = errors.New("dead") // no want: not reachable from a hot root
}
