// Fixture for the spanend analyzer. T mimics the trace.Tracer /
// trace.NodeTracer shape: methods named Span/Begin returning a bare func()
// closer. The analyzer matches that shape structurally, so the fixture
// needs no dependency on the real trace package.
package spanend

type T struct{}

func (T) Span(name string) func()  { return func() {} }
func (T) Begin(name string) func() { return func() {} }

// --- accepted idioms ---

func deferredClose(t T) {
	defer t.Span("ok")()
}

func immediateClose(t T) {
	t.Begin("ok")()
}

func closeBeforeCheck(t T, err error) error {
	end := t.Begin("ok")
	werr := work()
	end()
	if werr != nil {
		return werr
	}
	return err
}

func closeOnEveryBranch(t T, err error) error {
	end := t.Begin("ok")
	if err != nil {
		end()
		return err
	}
	end()
	return nil
}

func deferVariable(t T, err error) error {
	end := t.Begin("ok")
	defer end()
	if err != nil {
		return err
	}
	return nil
}

func deferClosure(t T, err error) error {
	end := t.Begin("ok")
	defer func() { end() }()
	if err != nil {
		return err
	}
	return nil
}

func returned(t T) func() {
	return t.Begin("ok") // ownership transfers to the caller
}

func stored(t T, sink *func()) {
	*sink = t.Begin("ok") // ownership transfers to the destination
}

func passedOn(t T) {
	consume(t.Begin("ok")) // ownership transfers to consume
}

func consume(f func()) { f() }

// --- violations ---

func discarded(t T) {
	t.Span("x") // want `closer returned by Span is discarded`
}

func blanked(t T) {
	_ = t.Begin("x") // want `closer returned by Begin is assigned to _`
}

func neverCalled(t T) {
	end := t.Begin("x") // want `closer end returned by Begin is never called`
	_ = end
}

func earlyReturn(t T, err error) error {
	end := t.Begin("x") // want `closer end returned by Begin is not closed on the return path at line \d+`
	if err != nil {
		return err
	}
	end()
	return nil
}

func multiAssign(t T, err error) error {
	n, end := 1, t.Begin("x") // want `closer end returned by Begin is not closed on the return path at line \d+`
	if n > 0 && err != nil {
		return err
	}
	end()
	return nil
}

func deferOpener(t T) {
	defer t.Begin("x") // want `defers the opener, not the closer`
}

// --- shape filters: similarly named methods that return no closer ---

type U struct{}

func (U) Span(name string) int        { return 0 }
func (U) Begin(name string) func(int) { return func(int) {} }

func notACloser(u U) {
	_ = u.Span("x")  // result is not func(): ignored
	_ = u.Begin("x") // closer takes an argument: ignored
}

// --- suppression ---

func suppressed(t T) {
	t.Span("x") //lint:allow spanend fixture demonstrates suppression
}

func work() error { return nil }
