// Package spanend checks that trace-span closers are closed on every path.
//
// Tracer.Span and NodeTracer.Begin open a span and return a func() that
// closes it. A closer that is dropped, assigned to _, or skipped by an
// early return leaves the span open forever: the Chrome export and the
// Fig. 9 phase breakdown silently lose that phase, and the conformance
// contract (every offload carries encode/call/execute/wait spans) breaks
// only at runtime, on the error path nobody exercises. This is the
// lostcancel check, retargeted at span closers.
//
// The analyzer recognises closer-producing calls structurally: a method
// named Span or Begin whose result is a bare func(). For a closer bound to
// a variable it then demands, for every return statement after the binding,
// that the closer was deferred or called at an earlier source position.
// That position-based approximation (rather than a full CFG) catches the
// real bug class — err-check returns between Begin and the closing call —
// while accepting both idioms that fix it: defer, or closing before the
// error check. Closers that escape (returned, stored, passed on) transfer
// ownership and are accepted.
package spanend

import (
	"go/ast"
	"go/token"
	"go/types"

	"hamoffload/internal/analysis"
)

// Analyzer flags span closers that are dropped or skipped on a return path.
var Analyzer = &analysis.Analyzer{
	Name: "spanend",
	Doc: "closers returned by Tracer.Span/NodeTracer.Begin must be deferred or " +
		"called on every path, or the span never closes",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		parents := parentMap(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || (sel.Sel.Name != "Span" && sel.Sel.Name != "Begin") {
				return true
			}
			if !returnsCloser(pass, call) {
				return true
			}
			checkCloser(pass, parents, call, sel.Sel.Name)
			return true
		})
	}
	return nil
}

// returnsCloser reports whether call's single result is a bare func().
func returnsCloser(pass *analysis.Pass, call *ast.CallExpr) bool {
	sig, ok := pass.TypesInfo.TypeOf(call).(*types.Signature)
	return ok && sig.Recv() == nil && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

// checkCloser classifies how the closer produced at call is consumed.
func checkCloser(pass *analysis.Pass, parents map[ast.Node]ast.Node, call *ast.CallExpr, name string) {
	switch p := parents[call].(type) {
	case *ast.CallExpr:
		// x.Begin(...)() — immediately invoked; any surrounding context
		// (defer, statement, argument) consumes a closed span.
		return
	case *ast.DeferStmt:
		if p.Call == call {
			pass.Reportf(call.Pos(),
				"defer %s(...) defers the opener, not the closer; write `defer %s(...)()`",
				name, name)
		}
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(),
			"closer returned by %s is discarded; the span never closes", name)
	case *ast.AssignStmt:
		checkAssigned(pass, parents, p, call, name)
	default:
		// Return value, composite literal, argument, var decl initializer:
		// the closer escapes and ownership transfers to the consumer.
	}
}

// checkAssigned handles `end := x.Begin(...)`: the bound closer must be
// used, and used before every subsequent return.
func checkAssigned(pass *analysis.Pass, parents map[ast.Node]ast.Node, as *ast.AssignStmt, call *ast.CallExpr, name string) {
	id := lhsFor(as, call)
	if id == nil {
		return // assigned to a field or index expression: escapes
	}
	if id.Name == "_" {
		pass.Reportf(call.Pos(),
			"closer returned by %s is assigned to _; the span never closes", name)
		return
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		obj = pass.TypesInfo.Uses[id]
	}
	if obj == nil {
		return
	}
	body := enclosingFuncBody(parents, as)
	if body == nil {
		return
	}

	var deferred, called []token.Pos
	escapes := false
	ast.Inspect(body, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok || use.Pos() <= as.End() || pass.TypesInfo.Uses[use] != obj {
			return true
		}
		switch p := parents[use].(type) {
		case *ast.CallExpr:
			if p.Fun == use {
				if d, ok := parents[p].(*ast.DeferStmt); ok && d.Call == p {
					deferred = append(deferred, use.Pos())
				} else {
					called = append(called, use.Pos())
				}
				return true
			}
			escapes = true // passed as an argument
		case *ast.AssignStmt:
			// Re-assignment of the variable is not a use; `_ = end` only
			// silences the compiler and closes nothing. Assignment to a
			// real destination hands the closer on.
			if !onLHS(p, use) && !allBlankLHS(p) {
				escapes = true
			}
		default:
			escapes = true // returned, stored, compared, ...
		}
		return true
	})

	if escapes {
		return
	}
	if len(deferred) == 0 && len(called) == 0 {
		pass.Reportf(call.Pos(),
			"closer %s returned by %s is never called; the span never closes", id.Name, name)
		return
	}
	for _, ret := range returnsAfter(body, as.End()) {
		if !closedBefore(ret.Pos(), deferred, called) {
			pass.Reportf(call.Pos(),
				"closer %s returned by %s is not closed on the return path at line %d; "+
					"defer it or call it before returning",
				id.Name, name, pass.Fset.Position(ret.Pos()).Line)
			return // one report per closer is enough
		}
	}
}

// closedBefore reports whether some defer or call of the closer precedes
// pos in the source.
func closedBefore(pos token.Pos, deferred, called []token.Pos) bool {
	for _, p := range deferred {
		if p < pos {
			return true
		}
	}
	for _, p := range called {
		if p < pos {
			return true
		}
	}
	return false
}

// returnsAfter collects the return statements of body (not of nested
// function literals) positioned after from.
func returnsAfter(body *ast.BlockStmt, from token.Pos) []*ast.ReturnStmt {
	var out []*ast.ReturnStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its returns exit the literal, not this function
		case *ast.ReturnStmt:
			if n.Pos() > from {
				out = append(out, n)
			}
		}
		return true
	})
	return out
}

// onLHS reports whether id is one of the assignment's destinations.
func onLHS(as *ast.AssignStmt, id *ast.Ident) bool {
	for _, lhs := range as.Lhs {
		if lhs == id {
			return true
		}
	}
	return false
}

// allBlankLHS reports whether every destination of the assignment is _.
func allBlankLHS(as *ast.AssignStmt) bool {
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// lhsFor returns the identifier the call's result is bound to, or nil when
// the destination is not a plain identifier.
func lhsFor(as *ast.AssignStmt, call *ast.CallExpr) *ast.Ident {
	for i, rhs := range as.Rhs {
		if rhs == call && i < len(as.Lhs) {
			id, _ := as.Lhs[i].(*ast.Ident)
			return id
		}
	}
	return nil
}

// enclosingFuncBody walks up the parent chain to the body of the function
// containing n.
func enclosingFuncBody(parents map[ast.Node]ast.Node, n ast.Node) *ast.BlockStmt {
	for n != nil {
		switch f := n.(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
		n = parents[n]
	}
	return nil
}

// parentMap records each node's parent within one file.
func parentMap(f *ast.File) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}
