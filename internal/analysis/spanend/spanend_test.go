package spanend_test

import (
	"testing"

	"hamoffload/internal/analysis/analysistest"
	"hamoffload/internal/analysis/spanend"
)

func TestSpanend(t *testing.T) {
	analysistest.Run(t, spanend.Analyzer, "spanend")
}
