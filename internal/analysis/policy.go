package analysis

import "strings"

// Package-scoping policy: which analyzer runs where. Analyzers themselves
// are scope-free (so fixtures can exercise them under any package path);
// this table is the single place that says which parts of the tree live
// under which invariant regime.
//
// Two clock regimes exist in this repository. Simulation packages run on
// the DES picosecond clock and must be bit-for-bit deterministic; the
// wall-clock backends (tcpb over real sockets, mpib's proxy threads, and
// trace's WallClock bridge) deal in real time and real goroutines by
// design. The examples are demo programs, free to do either.

// desPackages are the simulation packages: the DES engine itself and every
// component whose time is simulated picoseconds. walltime and goroutine
// apply here.
var desPackages = []string{
	"hamoffload/internal/simtime",
	"hamoffload/internal/backend", // minus the wall-clock backends, below
	"hamoffload/internal/dma",
	"hamoffload/internal/faults",
	"hamoffload/internal/veo",
	"hamoffload/internal/veos",
	"hamoffload/internal/pcie",
	"hamoffload/internal/vecore",
	"hamoffload/internal/vemem",
	"hamoffload/internal/hostmem",
	"hamoffload/internal/mem",
	"hamoffload/internal/ib",
	"hamoffload/internal/topology",
	"hamoffload/bench",
	// Placement must stay a pure function of DES-visible state. The prefix
	// also covers sched/health: breaker cooldowns and latency EWMAs live on
	// the caller-supplied simulated clock, so the health tracker is as
	// wall-clock-free as the policies it feeds.
	"hamoffload/sched",
	// telemetry records simulated-clock series and SLO windows; only its
	// engine profiler reads the wall clock, under //lint:allow walltime.
	"hamoffload/internal/telemetry",
	// The serving gateway admits, quotas and steals on the simulated clock:
	// token buckets refill arithmetically from simtime, SLO windows ride the
	// telemetry series, and placement is a pure function of queue state.
	"hamoffload/gateway",
}

// wallClockPackages are allowed to use real time and raw goroutines: they
// bridge to the outside world on purpose. The loopback backend (locb) is
// deliberately NOT here: it runs inside simulations next to simulated
// backends, so it must stay clock-free even though it uses real channels.
var wallClockPackages = []string{
	"hamoffload/internal/backend/tcpb",
	"hamoffload/internal/backend/mpib",
}

// goroutineExtra extends the raw-goroutine ban to the offload runtime core
// (which multiplexes backends and must not fork OS concurrency of its own)
// and the scheduler built on top of it.
var goroutineExtra = []string{
	"hamoffload/internal/core",
	"hamoffload/sched",
}

// deterministicOutputPackages produce artifacts that must be bit-identical
// across runs of the same simulation: trace exports, metric registries, the
// HAM key tables, and the experiment drivers. detmap applies here.
var deterministicOutputPackages = []string{
	"hamoffload/internal/trace",
	"hamoffload/internal/ham",
	"hamoffload/internal/faults",
	"hamoffload/cmd/veinfo",
	"hamoffload/cmd/hambench",
	"hamoffload/cmd/benchreg",
	"hamoffload/bench",
	"hamoffload/sched", // batch frames and placement feed deterministic traces
	// telemetry's renders and exports (sparklines, SLO table, Chrome flows,
	// folded stacks) are diffed byte-for-byte in CI.
	"hamoffload/internal/telemetry",
	// the gateway's Report feeds the byte-compared serving experiment output
	"hamoffload/gateway",
}

// unitcastExempt own the unit types and may convert freely.
var unitcastExempt = []string{
	"hamoffload/internal/units",
	"hamoffload/internal/simtime",
}

// flagOrderPackages implement the paper's message protocols (Fig. 5 VEO,
// Fig. 8 DMA): payload bytes must be written before the flag word that
// publishes them. flagorder applies here.
var flagOrderPackages = []string{
	"hamoffload/internal/backend/dmab",
	"hamoffload/internal/backend/veob",
	"hamoffload/internal/backend/slots",
}

// acqrelExempt packages define the Acquire/Release primitives themselves
// and may manipulate them unpaired.
var acqrelExempt = []string{
	"hamoffload/internal/simtime",
}

// afterfreeExempt packages implement the allocator and may touch addresses
// across Free boundaries by design.
var afterfreeExempt = []string{
	"hamoffload/internal/mem",
}

// hotPathScoped are the packages whose code can appear on an offload or
// engine hot path: the runtime core, the DES engine, the wire codec, the
// flag protocol and the simulated transfer backends. hotalloc reports only
// inside these packages — a hot root may call out into neutral packages
// (trace, telemetry) but findings there are dropped, because those calls
// are either pruned behind armed guards or sanctioned observability cost.
var hotPathScoped = []string{
	"hamoffload/internal/core",
	"hamoffload/internal/simtime",
	"hamoffload/internal/ham",
	"hamoffload/internal/backend/slots",
	"hamoffload/internal/backend/dmab",
	"hamoffload/internal/backend/veob",
	"hamoffload/internal/dma",
}

// borrowckScoped are the packages living under the zero-copy buffer
// ownership contracts that //ham:borrowed annotations seed: the runtime
// core, the ham codec, every communication backend (the backend prefix
// covers locb/tcpb/veob/dmab/mpib, slots, the adapters and conformance) and
// the DMA/VEO layers their serve loops write through. borrowck reports only
// inside these packages; summaries are still computed module-wide, so an
// escape through a neutral helper surfaces at the in-scope call site.
var borrowckScoped = []string{
	"hamoffload/internal/core",
	"hamoffload/internal/ham",
	"hamoffload/internal/backend",
	"hamoffload/internal/dma",
	"hamoffload/internal/veo",
}

// HotPathRoots declares the hot-path entry points centrally, by the exact
// full function name (types.Func.FullName). Functions may equivalently
// carry a //hot:path marker in their doc comment; the policy list exists so
// the core entry points are visible in one place. hotalloc walks everything
// reachable from a root, pruning branches behind armed-observability and
// error guards, and reports heap allocations with the full call chain.
var HotPathRoots = []string{
	"(*hamoffload/internal/core.Runtime).Dispatch",
	"(*hamoffload/internal/simtime.Engine).Run",
	"hamoffload/internal/backend/slots.Encode",
	"hamoffload/internal/backend/slots.Decode",
}

// ArmedGuardTypes are the observability handle types whose nil checks mark
// the armed/disarmed fork of a hot path: `if tr == nil { ... }` bodies are
// the disarmed fast path (walked; a trailing return prunes the armed
// remainder), `if tr != nil { ... }` bodies are armed-only (skipped), and
// calls on an armed receiver are not traversed. Listed by the full name of
// the pointee type; the guard expressions are pointers to these.
var ArmedGuardTypes = []string{
	"hamoffload/internal/trace.Tracer",
	"hamoffload/internal/trace.NodeTracer",
	"hamoffload/internal/telemetry.Collector",
}

// WallClockSanctioned lists the packages allowed to touch the wall clock:
// the wall-clock backends plus trace's explicit WallClock bridge. The
// interprocedural walltime pass stops its call-graph traversal at these
// packages — a DES package reaching time.Now through them is sanctioned.
var WallClockSanctioned = []string{
	"hamoffload/internal/backend/tcpb",
	"hamoffload/internal/backend/mpib",
	"hamoffload/internal/trace",
	// telemetry's DES engine profiler measures real events-per-second by
	// design; its two time.Now reads carry //lint:allow walltime markers.
	"hamoffload/internal/telemetry",
}

// InAny reports whether path equals one of the roots or lies beneath one.
// Exported for module-wide analyzers that reuse the policy tables.
func InAny(path string, roots []string) bool { return inAny(path, roots) }

// Applies reports whether the named analyzer is in force for pkgPath. It is
// the predicate hamlint passes to Run.
func Applies(analyzer, pkgPath string) bool {
	switch analyzer {
	case "walltime":
		return inAny(pkgPath, desPackages) && !inAny(pkgPath, wallClockPackages)
	case "goroutine":
		if inAny(pkgPath, goroutineExtra) {
			return true
		}
		return inAny(pkgPath, desPackages) && !inAny(pkgPath, wallClockPackages)
	case "spanend":
		return true
	case "detmap":
		return inAny(pkgPath, deterministicOutputPackages)
	case "unitcast":
		return !inAny(pkgPath, unitcastExempt)
	case "flagorder":
		return inAny(pkgPath, flagOrderPackages)
	case "acqrel":
		return !inAny(pkgPath, acqrelExempt)
	case "afterfree":
		return !inAny(pkgPath, afterfreeExempt)
	case "hotalloc":
		return inAny(pkgPath, hotPathScoped)
	case "borrowck":
		return inAny(pkgPath, borrowckScoped)
	case "allowcheck":
		return true
	}
	return true
}

// PolicyExempt lists the packages deliberately outside every scoping table:
// neutral orchestration and tooling that only the universal analyzers
// (spanend, unitcast, acqrel, afterfree) cover. The policy-coverage test
// fails when a package is neither matched by a table nor listed here, so a
// new package cannot land unclassified.
var PolicyExempt = []string{
	"hamoffload",                   // top-level façade re-exporting the public API
	"hamoffload/offload",           // user-facing offload API over internal/core
	"hamoffload/machine",           // cluster assembly; bridges simulated and host worlds
	"hamoffload/cmd/hamlint",       // the lint driver itself
	"hamoffload/cmd/coverreg",      // coverage harness; shells out to go test on the wall clock
	"hamoffload/examples",          // demo programs, free to use either clock
	"hamoffload/internal/analysis", // the analyzers and their fixtures
}

// CoveredByPolicy reports whether pkgPath is matched by at least one scoping
// table above. The policy-coverage meta-test asserts every non-test package
// is either covered or explicitly in PolicyExempt.
func CoveredByPolicy(pkgPath string) bool {
	for _, table := range [][]string{
		desPackages, wallClockPackages, goroutineExtra,
		deterministicOutputPackages, unitcastExempt, flagOrderPackages,
		acqrelExempt, afterfreeExempt, hotPathScoped, borrowckScoped,
	} {
		if inAny(pkgPath, table) {
			return true
		}
	}
	return false
}

// inAny reports whether path equals one of the roots or lies beneath one.
func inAny(path string, roots []string) bool {
	for _, r := range roots {
		if path == r || strings.HasPrefix(path, r+"/") {
			return true
		}
	}
	return false
}
