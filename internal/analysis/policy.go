package analysis

import "strings"

// Package-scoping policy: which analyzer runs where. Analyzers themselves
// are scope-free (so fixtures can exercise them under any package path);
// this table is the single place that says which parts of the tree live
// under which invariant regime.
//
// Two clock regimes exist in this repository. Simulation packages run on
// the DES picosecond clock and must be bit-for-bit deterministic; the
// wall-clock backends (tcpb over real sockets, mpib's proxy threads, and
// trace's WallClock bridge) deal in real time and real goroutines by
// design. The examples are demo programs, free to do either.

// desPackages are the simulation packages: the DES engine itself and every
// component whose time is simulated picoseconds. walltime and goroutine
// apply here.
var desPackages = []string{
	"hamoffload/internal/simtime",
	"hamoffload/internal/backend", // minus the wall-clock backends, below
	"hamoffload/internal/dma",
	"hamoffload/internal/veo",
	"hamoffload/internal/veos",
	"hamoffload/internal/pcie",
	"hamoffload/internal/vecore",
	"hamoffload/internal/vemem",
	"hamoffload/internal/hostmem",
	"hamoffload/internal/mem",
	"hamoffload/internal/ib",
	"hamoffload/internal/topology",
	"hamoffload/bench",
}

// wallClockPackages are allowed to use real time and raw goroutines: they
// bridge to the outside world on purpose. The loopback backend (locb) is
// deliberately NOT here: it runs inside simulations next to simulated
// backends, so it must stay clock-free even though it uses real channels.
var wallClockPackages = []string{
	"hamoffload/internal/backend/tcpb",
	"hamoffload/internal/backend/mpib",
}

// goroutineExtra extends the raw-goroutine ban to the offload runtime core,
// which multiplexes backends and must not fork OS concurrency of its own.
var goroutineExtra = []string{
	"hamoffload/internal/core",
}

// deterministicOutputPackages produce artifacts that must be bit-identical
// across runs of the same simulation: trace exports, metric registries, the
// HAM key tables, and the experiment drivers. detmap applies here.
var deterministicOutputPackages = []string{
	"hamoffload/internal/trace",
	"hamoffload/internal/ham",
	"hamoffload/cmd/veinfo",
	"hamoffload/cmd/hambench",
	"hamoffload/bench",
}

// unitcastExempt own the unit types and may convert freely.
var unitcastExempt = []string{
	"hamoffload/internal/units",
	"hamoffload/internal/simtime",
}

// Applies reports whether the named analyzer is in force for pkgPath. It is
// the predicate hamlint passes to Run.
func Applies(analyzer, pkgPath string) bool {
	switch analyzer {
	case "walltime":
		return inAny(pkgPath, desPackages) && !inAny(pkgPath, wallClockPackages)
	case "goroutine":
		if inAny(pkgPath, goroutineExtra) {
			return true
		}
		return inAny(pkgPath, desPackages) && !inAny(pkgPath, wallClockPackages)
	case "spanend":
		return true
	case "detmap":
		return inAny(pkgPath, deterministicOutputPackages)
	case "unitcast":
		return !inAny(pkgPath, unitcastExempt)
	}
	return true
}

// inAny reports whether path equals one of the roots or lies beneath one.
func inAny(path string, roots []string) bool {
	for _, r := range roots {
		if path == r || strings.HasPrefix(path, r+"/") {
			return true
		}
	}
	return false
}
