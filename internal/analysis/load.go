package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked, to-be-analyzed package.
type Package struct {
	Path      string
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// Load type-checks the packages matching patterns (run from dir, which must
// lie inside the module) and returns them ready for analysis. Dependencies
// — including the standard library — are resolved from compiler export data
// produced by `go list -deps -export`, so loading needs no network access
// and no sources outside the module and GOROOT. Only non-test GoFiles are
// analyzed: the invariants guard production simulation code, and tests
// routinely (and legitimately) range over maps or measure wall time.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var roots []listedPackage
	for _, m := range metas {
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
		if !m.Standard && !m.DepOnly {
			roots = append(roots, m)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		e, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(e)
	})

	var pkgs []*Package
	for _, m := range roots {
		if len(m.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range m.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(m.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", m.ImportPath, err)
			}
			files = append(files, f)
		}
		pkg, info, err := Typecheck(fset, m.ImportPath, files, imp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, &Package{
			Path:      m.ImportPath,
			Dir:       m.Dir,
			Fset:      fset,
			Files:     files,
			Types:     pkg,
			TypesInfo: info,
		})
	}
	return pkgs, nil
}

// goList runs `go list -deps -export -json` and decodes the JSON stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Export,Standard,DepOnly,Dir,GoFiles",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %w\n%s", patterns, err, stderr.String())
	}
	var metas []listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var m listedPackage
		if err := dec.Decode(&m); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		metas = append(metas, m)
	}
	return metas, nil
}

// NewInfo returns a types.Info with every map the analyzers consult filled
// in. Shared with the analysistest fixture loader.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// Typecheck runs the go/types checker over one package, collecting every
// error rather than stopping at the first. It is shared with the
// analysistest fixture loader.
func Typecheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	var terrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	info := NewInfo()
	pkg, _ := conf.Check(path, fset, files, info)
	if len(terrs) > 0 {
		return nil, nil, fmt.Errorf("type-checking %s: %w", path, errors.Join(terrs...))
	}
	return pkg, info, nil
}
