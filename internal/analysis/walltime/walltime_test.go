package walltime_test

import (
	"testing"

	"hamoffload/internal/analysis/analysistest"
	"hamoffload/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, walltime.Analyzer, "walltime")
}
