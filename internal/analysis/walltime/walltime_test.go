package walltime_test

import (
	"testing"

	"hamoffload/internal/analysis/analysistest"
	"hamoffload/internal/analysis/walltime"
)

func TestWalltime(t *testing.T) {
	analysistest.Run(t, walltime.Analyzer, "walltime")
}

// TestWalltimeModule exercises the interprocedural phase: walltime_des plays
// a DES-scoped package, walltime_util a neutral helper package the traversal
// must see through.
func TestWalltimeModule(t *testing.T) {
	applies := func(analyzer, pkgPath string) bool {
		return pkgPath == "walltime_des"
	}
	analysistest.RunModule(t, walltime.Analyzer, applies, "walltime_util", "walltime_des")
}
