// Fixture DES package for the interprocedural walltime pass: calls into the
// neutral walltime_util package must be flagged when they transitively read
// the wall clock, and left alone when they are clock-free. Direct time.*
// calls are the per-package pass's job and must NOT be reported again by the
// module pass.
package walltime_des

import (
	"time"

	"walltime_util"
)

func badIndirect() int64 {
	return walltime_util.Stamp() // want `reaches the wall clock .*Stamp → .*inner → time\.Now`
}

func goodIndirect() int64 {
	return walltime_util.Pure()
}

func directOnly() {
	// Reported by the per-package pass, not the module pass.
	_ = time.Now()
}

func suppressed() int64 {
	return walltime_util.Stamp() //lint:allow walltime fixture: proves suppression
}
