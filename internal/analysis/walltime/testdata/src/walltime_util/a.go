// Fixture helper package for the interprocedural walltime pass: a neutral
// (un-scoped) utility package hiding a wall-clock read two calls deep. The
// module pass must see through it; no findings are reported here because
// the package is outside the walltime policy scope.
package walltime_util

import "time"

// Stamp reaches the wall clock transitively.
func Stamp() int64 { return inner() }

func inner() int64 { return time.Now().UnixNano() }

// Pure is clock-free.
func Pure() int64 { return 42 }
