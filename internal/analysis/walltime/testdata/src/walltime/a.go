// Fixture for the walltime analyzer: wall-clock reads must be flagged,
// clock-free uses of package time (types, constants, arithmetic) must not.
package walltime

import "time"

func bad() {
	_ = time.Now()                       // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)         // want `time\.Sleep reads the wall clock`
	_ = time.Since(time.Time{})          // want `time\.Since reads the wall clock`
	_ = time.Until(time.Time{})          // want `time\.Until reads the wall clock`
	_ = time.Tick(time.Second)           // want `time\.Tick reads the wall clock`
	_ = time.After(time.Second)          // want `time\.After reads the wall clock`
	_ = time.NewTimer(time.Second)       // want `time\.NewTimer reads the wall clock`
	_ = time.NewTicker(time.Second)      // want `time\.NewTicker reads the wall clock`
	_ = time.AfterFunc(time.Second, nil) // want `time\.AfterFunc reads the wall clock`
}

// indirect references (not just calls) are clock reads too.
func indirect() func() time.Time {
	return time.Now // want `time\.Now reads the wall clock`
}

func allowed() {
	// Pure data: durations, formatting, zero values — no clock involved.
	d := 5 * time.Second
	_ = d.String()
	_ = time.Duration(42) * time.Nanosecond
	_ = time.Time{}.IsZero()
	_ = time.RFC3339
}

func suppressed() {
	_ = time.Now() //lint:allow walltime fixture demonstrates suppression
}
