// Package walltime forbids wall-clock time in simulation packages.
//
// The DES engine's whole guarantee — every run of the same program is
// bit-for-bit reproducible, and traced runs are identical to untraced ones
// — holds only if simulated components never observe the host clock. One
// stray time.Now in a backend silently turns a deterministic experiment
// (Fig. 9 breakdowns, Tables I/III) into a flaky one. Simulation code must
// take time from *simtime.Proc / trace.Clock; the wall-clock backends and
// trace.WallClock are exempted by policy, not by this analyzer.
package walltime

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hamoffload/internal/analysis"
	"hamoffload/internal/analysis/callgraph"
)

// Analyzer flags references to wall-clock functions of package time. The
// per-package pass catches direct calls; the module pass follows the call
// graph out of DES packages and catches wall-clock reads hidden behind
// helpers in neutral (un-scoped) packages.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/Sleep/Since/... in simulation packages; " +
		"the DES clock (simtime.Proc.Now, Proc.Sleep) is the only time source there",
	Run:       run,
	RunModule: runModule,
}

// forbidden lists the package-time functions that observe or depend on the
// host clock. Pure data types (time.Duration arithmetic, constants) stay
// legal: they carry no clock reading.
var forbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if forbidden[obj.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock; simulation code must use the DES clock "+
						"(simtime.Proc.Now/Sleep or a trace.Clock)", obj.Name())
			}
			return true
		})
	}
	return nil
}

// runModule is the interprocedural phase: from every function in a package
// the walltime policy scopes, follow the call graph through neutral packages
// — ones neither scoped (their own pass covers them) nor wall-clock
// sanctioned (trace's WallClock bridge, the socket backends) — and flag any
// call whose transitive callees read the wall clock. Direct time.* calls are
// left to the per-package pass so each finding is reported exactly once.
func runModule(pass *analysis.ModulePass) error {
	applies := pass.Applies
	if applies == nil {
		applies = analysis.Applies
	}
	g := callgraph.Build(pass.Pkgs)

	isSink := func(n *callgraph.Node) bool {
		return n.Func != nil && n.Func.Pkg() != nil &&
			n.Func.Pkg().Path() == "time" && forbidden[n.Func.Name()]
	}
	sanctioned := func(path string) bool {
		return analysis.InAny(path, analysis.WallClockSanctioned)
	}
	// Traversal may pass only through neutral, source-loaded functions:
	// scoped packages report their own calls, sanctioned packages absorb
	// wall-clock use by design, and export-data-only functions have no
	// bodies to look through anyway.
	through := func(n *callgraph.Node) bool {
		return n.Defined && !sanctioned(n.PkgPath) && !applies("walltime", n.PkgPath)
	}

	for _, pkg := range pass.Pkgs {
		if !applies("walltime", pkg.Path) {
			continue
		}
		reported := map[token.Pos]bool{}
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.TypesInfo.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				node := g.Node(fn)
				if node == nil {
					continue
				}
				for _, e := range node.Out {
					if reported[e.Site] {
						continue
					}
					if isSink(e.Callee) || !through(e.Callee) {
						continue // direct call (per-package pass) or out of scope
					}
					path := g.PathTo(e.Callee, isSink, through)
					if path == nil {
						continue
					}
					reported[e.Site] = true
					pass.Reportf(e.Site,
						"call to %s reaches the wall clock (%s); simulation code must use "+
							"the DES clock (simtime.Proc.Now/Sleep or a trace.Clock)",
						e.Callee.Name, chain(e.Callee, path))
				}
			}
		}
	}
	return nil
}

// chain renders first → ... → sink for the diagnostic.
func chain(first *callgraph.Node, path []*callgraph.Edge) string {
	parts := []string{first.Name}
	for _, e := range path {
		parts = append(parts, e.Callee.Name)
	}
	return strings.Join(parts, " → ")
}
