// Package walltime forbids wall-clock time in simulation packages.
//
// The DES engine's whole guarantee — every run of the same program is
// bit-for-bit reproducible, and traced runs are identical to untraced ones
// — holds only if simulated components never observe the host clock. One
// stray time.Now in a backend silently turns a deterministic experiment
// (Fig. 9 breakdowns, Tables I/III) into a flaky one. Simulation code must
// take time from *simtime.Proc / trace.Clock; the wall-clock backends and
// trace.WallClock are exempted by policy, not by this analyzer.
package walltime

import (
	"go/ast"

	"hamoffload/internal/analysis"
)

// Analyzer flags references to wall-clock functions of package time.
var Analyzer = &analysis.Analyzer{
	Name: "walltime",
	Doc: "forbid time.Now/Sleep/Since/... in simulation packages; " +
		"the DES clock (simtime.Proc.Now, Proc.Sleep) is the only time source there",
	Run: run,
}

// forbidden lists the package-time functions that observe or depend on the
// host clock. Pure data types (time.Duration arithmetic, constants) stay
// legal: they carry no clock reading.
var forbidden = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"Since":     true,
	"Until":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[sel.Sel]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "time" {
				return true
			}
			if forbidden[obj.Name()] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock; simulation code must use the DES clock "+
						"(simtime.Proc.Now/Sleep or a trace.Clock)", obj.Name())
			}
			return true
		})
	}
	return nil
}
