package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestLoadTypechecksPackages(t *testing.T) {
	pkgs, err := Load(".", "hamoffload/internal/units", "hamoffload/internal/simtime")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("Load returned %d packages, want 2", len(pkgs))
	}
	// Deterministic order: sorted by import path.
	if pkgs[0].Path != "hamoffload/internal/simtime" || pkgs[1].Path != "hamoffload/internal/units" {
		t.Errorf("package order = %q, %q", pkgs[0].Path, pkgs[1].Path)
	}
	for _, p := range pkgs {
		if p.Types == nil || p.TypesInfo == nil || len(p.Files) == 0 {
			t.Errorf("package %s loaded incompletely", p.Path)
		}
		if obj := p.Types.Scope().Lookup("Bytes"); p.Path == "hamoffload/internal/units" && obj == nil {
			t.Errorf("units.Bytes not found in loaded scope")
		}
	}
}

// TestAllowIndex pins the //lint:allow placement rules: the comment's own
// line (trailing), and the line after its comment group — including groups
// that wrap across several comment lines, as at the engine's Spawn site.
func TestAllowIndex(t *testing.T) {
	const src = `package p

func f() {
	g() //lint:allow walltime trailing on the same line
	//lint:allow goroutine a multi-line justification that
	// continues on a second comment line
	g()
	g()
}

func g() {}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx, entries := buildAllowIndex(fset, []*ast.File{f})
	if len(entries) != 2 {
		t.Fatalf("buildAllowIndex found %d entries, want 2", len(entries))
	}
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "walltime", true},   // trailing comment suppresses its own line
		{4, "goroutine", false}, // but only the named analyzer
		{7, "goroutine", true},  // line after the multi-line group
		{8, "goroutine", false}, // one line only
	}
	for _, c := range cases {
		d := Diagnostic{Analyzer: c.analyzer}
		d.Pos.Filename = "p.go"
		d.Pos.Line = c.line
		if got := idx.allows(d); got != c.want {
			t.Errorf("line %d %s: allows = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
}
