package unitcast_test

import (
	"testing"

	"hamoffload/internal/analysis/analysistest"
	"hamoffload/internal/analysis/unitcast"
)

func TestUnitcast(t *testing.T) {
	analysistest.Run(t, unitcast.Analyzer, "unitcast")
}
