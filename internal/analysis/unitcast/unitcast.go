// Package unitcast stops byte counts and picosecond quantities from
// crossing type boundaries as bare numbers.
//
// units.Bytes and simtime.Duration/Time exist so that a byte count can
// never be charged as a duration (or vice versa) without the compiler
// noticing. Two conversion shapes defeat that protection while still
// type-checking:
//
//   - a bare numeric literal cast into a unit type — simtime.Duration(1000)
//     reads as "1000 of something"; 1000*simtime.Nanosecond or
//     4*units.KiB carries its unit in the expression;
//   - a raw cast between unit families (Time↔Duration, Bytes↔Duration) —
//     those must go through the semantic operations (Time.Sub, Time.Add,
//     simtime.BytesOver) that say what the conversion means.
//
// Literal 0 is exempt: zero is zero in every unit. The units and simtime
// packages themselves are exempted by policy — they own the types.
package unitcast

import (
	"go/ast"
	"go/token"
	"go/types"

	"hamoffload/internal/analysis"
)

// Analyzer flags unit-blind conversions involving units.Bytes and
// simtime.Duration/Time.
var Analyzer = &analysis.Analyzer{
	Name: "unitcast",
	Doc: "conversions to units.Bytes/simtime.Duration/simtime.Time must carry their " +
		"unit (3*units.KiB, 10*simtime.Nanosecond) and never cast raw between unit types",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.TypesInfo.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			dst := unitName(tv.Type)
			if dst == "" {
				return true
			}
			arg := unwrap(call.Args[0])
			if lit, ok := arg.(*ast.BasicLit); ok &&
				(lit.Kind == token.INT || lit.Kind == token.FLOAT) {
				if lit.Value != "0" {
					pass.Reportf(call.Pos(),
						"bare numeric literal converted to %s; spell the unit out "+
							"(e.g. 4*units.KiB, 10*simtime.Nanosecond) so readers see what %s means",
						dst, lit.Value)
				}
				return true
			}
			if src := unitName(pass.TypesInfo.TypeOf(call.Args[0])); src != "" && src != dst {
				pass.Reportf(call.Pos(),
					"raw cast from %s to %s; convert through the semantic operation "+
						"(Time.Sub/Add, Span.Dur, simtime.BytesOver) instead", src, dst)
			}
			return true
		})
	}
	return nil
}

// unwrap strips parentheses and numeric sign operators.
func unwrap(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.SUB && x.Op != token.ADD {
				return e
			}
			e = x.X
		default:
			return e
		}
	}
}

// unitName returns the qualified name of t when t is one of the guarded
// unit types, and "" otherwise.
func unitName(t types.Type) string {
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return ""
	}
	switch {
	case obj.Pkg().Path() == "hamoffload/internal/units" && obj.Name() == "Bytes":
		return "units.Bytes"
	case obj.Pkg().Path() == "hamoffload/internal/simtime" &&
		(obj.Name() == "Duration" || obj.Name() == "Time"):
		return "simtime." + obj.Name()
	}
	return ""
}
