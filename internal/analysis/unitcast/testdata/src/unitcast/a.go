// Fixture for the unitcast analyzer, exercised against the real units and
// simtime types (resolved from export data) so the type-identity match is
// the one hamlint uses on the tree.
package unitcast

import (
	"hamoffload/internal/simtime"
	"hamoffload/internal/units"
)

// --- accepted ---

func unitArithmetic() simtime.Duration {
	return 10*simtime.Nanosecond + 3*simtime.Microsecond
}

func unitConstants() units.Bytes {
	return 4*units.KiB + 512*units.B
}

func computedConversion(n int64, f float64) simtime.Duration {
	// Converting a computed numeric value is fine: the arithmetic context
	// carries the unit.
	d := simtime.Duration(n) * simtime.Nanosecond
	return d + simtime.Duration(f*float64(simtime.Second))
}

func zeroIsUnitless() (simtime.Duration, units.Bytes, simtime.Time) {
	return simtime.Duration(0), units.Bytes(0), simtime.Time(0)
}

func semanticOps(a, b simtime.Time) simtime.Duration {
	return b.Sub(a) // Time minus Time through the named operation
}

func fromUnits(d simtime.Duration, b units.Bytes) (int64, float64) {
	return b.Int64(), d.Seconds() // reading a unit out through its accessors
}

// --- violations: bare literals ---

func bareDuration() simtime.Duration {
	return simtime.Duration(1000) // want `bare numeric literal converted to simtime\.Duration`
}

func bareTime() simtime.Time {
	return simtime.Time(250_000) // want `bare numeric literal converted to simtime\.Time`
}

func bareBytes() units.Bytes {
	return units.Bytes(4096) // want `bare numeric literal converted to units\.Bytes`
}

func bareNegative() simtime.Duration {
	return simtime.Duration(-5) // want `bare numeric literal converted to simtime\.Duration`
}

func bareFloat() units.Bytes {
	return units.Bytes(1.5e9) // want `bare numeric literal converted to units\.Bytes`
}

// --- violations: raw casts across unit families ---

func timeAsDuration(t simtime.Time) simtime.Duration {
	return simtime.Duration(t) // want `raw cast from simtime\.Time to simtime\.Duration`
}

func durationAsTime(d simtime.Duration) simtime.Time {
	return simtime.Time(d) // want `raw cast from simtime\.Duration to simtime\.Time`
}

func bytesAsDuration(b units.Bytes) simtime.Duration {
	return simtime.Duration(b) // want `raw cast from units\.Bytes to simtime\.Duration`
}

// --- suppression ---

func suppressed() simtime.Duration {
	return simtime.Duration(800) //lint:allow unitcast fixture demonstrates suppression
}
