package analysis

import (
	"os/exec"
	"strings"
	"testing"
)

func TestPolicyScoping(t *testing.T) {
	cases := []struct {
		analyzer, path string
		want           bool
	}{
		// walltime: simulation packages yes, wall-clock bridges no.
		{"walltime", "hamoffload/internal/simtime", true},
		{"walltime", "hamoffload/internal/backend/dmab", true},
		{"walltime", "hamoffload/internal/backend/veob", true},
		{"walltime", "hamoffload/internal/backend/locb", true},
		{"walltime", "hamoffload/internal/faults", true},
		{"walltime", "hamoffload/bench", true},
		// sched/health rides under the sched prefix: breaker cooldowns are
		// measured on the caller-supplied simulated clock, never the wall one.
		{"walltime", "hamoffload/sched/health", true},
		// The serving gateway quotas and steals on the simulated clock.
		{"walltime", "hamoffload/gateway", true},
		{"walltime", "hamoffload/internal/backend/tcpb", false},
		{"walltime", "hamoffload/internal/backend/mpib", false},
		{"walltime", "hamoffload/internal/trace", false}, // owns WallClock
		{"walltime", "hamoffload/examples/tcpcluster", false},

		// goroutine: DES set plus the runtime core.
		{"goroutine", "hamoffload/internal/simtime", true},
		{"goroutine", "hamoffload/internal/core", true},
		{"goroutine", "hamoffload/sched/health", true},
		{"goroutine", "hamoffload/gateway", true},
		{"goroutine", "hamoffload/internal/backend/tcpb", false},
		{"goroutine", "hamoffload/internal/backend/mpib", false},

		// spanend: structural, everywhere.
		{"spanend", "hamoffload/internal/dma", true},
		{"spanend", "hamoffload/internal/backend/tcpb", true},
		{"spanend", "hamoffload/examples/quickstart", true},

		// detmap: deterministic-output paths only.
		{"detmap", "hamoffload/internal/trace", true},
		{"detmap", "hamoffload/internal/ham", true},
		{"detmap", "hamoffload/internal/faults", true},
		{"detmap", "hamoffload/cmd/veinfo", true},
		{"detmap", "hamoffload/sched/health", true},
		// the gateway report is byte-compared across runs in the serving tests
		{"detmap", "hamoffload/gateway", true},
		{"detmap", "hamoffload/machine", false},
		{"detmap", "hamoffload/internal/backend/tcpb", false},

		// unitcast: everywhere except the unit-owning packages.
		{"unitcast", "hamoffload/internal/units", false},
		{"unitcast", "hamoffload/internal/simtime", false},
		{"unitcast", "hamoffload/internal/dma", true},
		{"unitcast", "hamoffload/internal/trace", true},
	}
	for _, c := range cases {
		if got := Applies(c.analyzer, c.path); got != c.want {
			t.Errorf("Applies(%q, %q) = %v, want %v", c.analyzer, c.path, got, c.want)
		}
	}
}

// TestPolicyCoversModule is the coverage meta-test: every non-test package
// in the module must be matched by at least one scoping table or stand in
// PolicyExempt with a reason. A new package that is neither fails here, so
// nothing lands with an unconsidered lint posture.
func TestPolicyCoversModule(t *testing.T) {
	out, err := exec.Command("go", "list", "hamoffload/...").Output()
	if err != nil {
		t.Fatalf("go list hamoffload/...: %v", err)
	}
	for _, pkg := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if !CoveredByPolicy(pkg) && !InAny(pkg, PolicyExempt) {
			t.Errorf("package %s is matched by no scoping table and is not in PolicyExempt; classify it in internal/analysis/policy.go", pkg)
		}
	}
	// The exempt list must stay minimal: an entry that a scoping table now
	// covers, or that no longer resolves to a package, is stale.
	for _, root := range PolicyExempt {
		if CoveredByPolicy(root) {
			t.Errorf("PolicyExempt entry %q is already matched by a scoping table; remove it", root)
		}
	}
}

// TestPolicyRootsExist keeps the scoping tables honest across refactors:
// every path the policy names must still resolve to at least one package in
// the module, or the protection silently evaporates on a rename.
func TestPolicyRootsExist(t *testing.T) {
	// The test runs inside internal/analysis, so ask by module path rather
	// than by ./... to cover the whole module.
	out, err := exec.Command("go", "list", "hamoffload/...").Output()
	if err != nil {
		t.Fatalf("go list hamoffload/...: %v", err)
	}
	existing := strings.Split(strings.TrimSpace(string(out)), "\n")
	var roots []string
	roots = append(roots, desPackages...)
	roots = append(roots, wallClockPackages...)
	roots = append(roots, goroutineExtra...)
	roots = append(roots, deterministicOutputPackages...)
	roots = append(roots, unitcastExempt...)
	for _, root := range roots {
		found := false
		for _, pkg := range existing {
			if pkg == root || strings.HasPrefix(pkg, root+"/") {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("policy names %q, but no such package exists; update internal/analysis/policy.go", root)
		}
	}
}
