// Package hamlint assembles the repository's analyzer suite and drives it
// over packages, applying the scoping policy and printing findings. It is
// the library behind cmd/hamlint, split out so tests can assert the
// registered analyzer set and run the suite in-process.
package hamlint

import (
	"fmt"
	"io"

	"hamoffload/internal/analysis"
	"hamoffload/internal/analysis/detmap"
	"hamoffload/internal/analysis/goroutine"
	"hamoffload/internal/analysis/spanend"
	"hamoffload/internal/analysis/unitcast"
	"hamoffload/internal/analysis/walltime"
)

// Suite returns the full analyzer set, in the order findings are grouped.
// Adding an analyzer here is the single registration step; policy scoping
// lives in analysis.Applies and docs in docs/LINTING.md.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		walltime.Analyzer,
		spanend.Analyzer,
		detmap.Analyzer,
		goroutine.Analyzer,
		unitcast.Analyzer,
	}
}

// Main loads the packages matching patterns (from dir), runs the suite
// under the scoping policy, and writes findings to out. It returns the
// process exit code: 0 clean, 1 findings, 2 load failure.
func Main(dir string, patterns []string, out io.Writer) int {
	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(out, "hamlint: %v\n", err)
		return 2
	}
	suite := Suite()
	issues := 0
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg, suite, analysis.Applies)
		if err != nil {
			fmt.Fprintf(out, "hamlint: %v\n", err)
			return 2
		}
		for _, d := range diags {
			fmt.Fprintln(out, d)
			issues++
		}
	}
	if issues > 0 {
		fmt.Fprintf(out, "hamlint: %d issue(s); see docs/LINTING.md (//lint:allow <analyzer> <why> suppresses a finding)\n", issues)
		return 1
	}
	return 0
}
