// Package hamlint assembles the repository's analyzer suite and drives it
// over packages, applying the scoping policy and printing findings. It is
// the library behind cmd/hamlint, split out so tests can assert the
// registered analyzer set and run the suite in-process.
package hamlint

import (
	"encoding/json"
	"fmt"
	"io"

	"hamoffload/internal/analysis"
	"hamoffload/internal/analysis/acqrel"
	"hamoffload/internal/analysis/afterfree"
	"hamoffload/internal/analysis/allowcheck"
	"hamoffload/internal/analysis/detmap"
	"hamoffload/internal/analysis/flagorder"
	"hamoffload/internal/analysis/goroutine"
	"hamoffload/internal/analysis/hotalloc"
	"hamoffload/internal/analysis/spanend"
	"hamoffload/internal/analysis/unitcast"
	"hamoffload/internal/analysis/walltime"
)

// Suite returns the full analyzer set, in the order findings are grouped.
// Adding an analyzer here is the single registration step; policy scoping
// lives in analysis.Applies and docs in docs/LINTING.md. allowcheck must
// stay last: it consumes the //lint:allow usage every earlier analyzer
// recorded.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		walltime.Analyzer,
		spanend.Analyzer,
		detmap.Analyzer,
		goroutine.Analyzer,
		unitcast.Analyzer,
		flagorder.Analyzer,
		acqrel.Analyzer,
		afterfree.Analyzer,
		hotalloc.Analyzer,
		allowcheck.Analyzer,
	}
}

// A ListEntry describes one registered analyzer for -list output.
type ListEntry struct {
	Name       string `json:"name"`
	Doc        string `json:"doc"`
	ModuleWide bool   `json:"module_wide"`
}

// List returns the registered analyzers in suite order, the machine-facing
// counterpart of Suite for `hamlint -list -json`.
func List() []ListEntry {
	var out []ListEntry
	for _, a := range Suite() {
		out = append(out, ListEntry{Name: a.Name, Doc: a.Doc, ModuleWide: a.RunModule != nil})
	}
	return out
}

// Options configures one Main run.
type Options struct {
	// JSON switches the output from file:line:col: [analyzer] message lines
	// to a single sorted JSON array of findings.
	JSON bool
	// Run restricts the run to the named analyzers (suite order is kept
	// regardless of the order given here). Empty means the full suite. An
	// unknown name is a usage error: exit 2.
	Run []string
}

// jsonDiag is the stable wire shape of one finding in -json mode.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Main loads the packages matching patterns (from dir), runs the suite —
// per-package passes plus the module-wide interprocedural passes — under the
// scoping policy, and writes findings to out. It returns the process exit
// code: 0 clean, 1 findings, 2 load failure (including an empty package
// set, which almost always means a mistyped pattern) or an unknown -run
// name.
func Main(dir string, patterns []string, out io.Writer, opts Options) int {
	suite := Suite()
	if len(opts.Run) > 0 {
		known := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			known[a.Name] = a
		}
		want := map[string]bool{}
		for _, name := range opts.Run {
			if known[name] == nil {
				fmt.Fprintf(out, "hamlint: unknown analyzer %q in -run (use -list for the registered set)\n", name)
				return 2
			}
			want[name] = true
		}
		var selected []*analysis.Analyzer
		for _, a := range suite {
			if want[a.Name] {
				selected = append(selected, a)
			}
		}
		suite = selected
	}
	names := make([]string, 0, len(suite))
	for _, a := range suite {
		names = append(names, a.Name)
	}
	tracker := analysis.NewAllowTracker(names, len(opts.Run) == 0)

	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(out, "hamlint: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(out, "hamlint: patterns %v matched no packages; nothing was checked (mistyped pattern?)\n", patterns)
		return 2
	}
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := analysis.RunTracked(pkg, suite, analysis.Applies, tracker)
		if err != nil {
			fmt.Fprintf(out, "hamlint: %v\n", err)
			return 2
		}
		all = append(all, diags...)
	}
	moduleDiags, err := analysis.RunModuleTracked(pkgs, suite, analysis.Applies, tracker)
	if err != nil {
		fmt.Fprintf(out, "hamlint: %v\n", err)
		return 2
	}
	all = append(all, moduleDiags...)
	analysis.SortDiagnostics(all)

	if opts.JSON {
		jd := make([]jsonDiag, 0, len(all))
		for _, d := range all {
			jd = append(jd, jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jd); err != nil {
			fmt.Fprintf(out, "hamlint: %v\n", err)
			return 2
		}
		if len(all) > 0 {
			return 1
		}
		return 0
	}

	for _, d := range all {
		fmt.Fprintln(out, d)
	}
	if len(all) > 0 {
		fmt.Fprintf(out, "hamlint: %d issue(s); see docs/LINTING.md (//lint:allow <analyzer> <why> suppresses a finding)\n", len(all))
		return 1
	}
	return 0
}
