// Package hamlint assembles the repository's analyzer suite and drives it
// over packages, applying the scoping policy and printing findings. It is
// the library behind cmd/hamlint, split out so tests can assert the
// registered analyzer set and run the suite in-process.
package hamlint

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"hamoffload/internal/analysis"
	"hamoffload/internal/analysis/acqrel"
	"hamoffload/internal/analysis/afterfree"
	"hamoffload/internal/analysis/allowcheck"
	"hamoffload/internal/analysis/borrowck"
	"hamoffload/internal/analysis/detmap"
	"hamoffload/internal/analysis/flagorder"
	"hamoffload/internal/analysis/goroutine"
	"hamoffload/internal/analysis/hotalloc"
	"hamoffload/internal/analysis/spanend"
	"hamoffload/internal/analysis/unitcast"
	"hamoffload/internal/analysis/walltime"
)

// Suite returns the full analyzer set, in the order findings are grouped.
// Adding an analyzer here is the single registration step; policy scoping
// lives in analysis.Applies and docs in docs/LINTING.md. allowcheck must
// stay last: it consumes the //lint:allow usage every earlier analyzer
// recorded.
func Suite() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		walltime.Analyzer,
		spanend.Analyzer,
		detmap.Analyzer,
		goroutine.Analyzer,
		unitcast.Analyzer,
		flagorder.Analyzer,
		acqrel.Analyzer,
		afterfree.Analyzer,
		hotalloc.Analyzer,
		borrowck.Analyzer,
		allowcheck.Analyzer,
	}
}

// A ListEntry describes one registered analyzer for -list output.
type ListEntry struct {
	Name       string `json:"name"`
	Doc        string `json:"doc"`
	ModuleWide bool   `json:"module_wide"`
}

// List returns the registered analyzers in suite order, the machine-facing
// counterpart of Suite for `hamlint -list -json`.
func List() []ListEntry {
	var out []ListEntry
	for _, a := range Suite() {
		out = append(out, ListEntry{Name: a.Name, Doc: a.Doc, ModuleWide: a.RunModule != nil})
	}
	return out
}

// Options configures one Main run.
type Options struct {
	// JSON switches the output from file:line:col: [analyzer] message lines
	// to a single sorted JSON array of findings.
	JSON bool
	// Run restricts the run to the named analyzers (suite order is kept
	// regardless of the order given here). Empty means the full suite. An
	// unknown name is a usage error: exit 2.
	Run []string
	// Stats appends per-analyzer wall time and finding counts to the output:
	// a table in text mode, a {"findings":…,"stats":…} object in JSON mode.
	// The module-wide passes dominate the runtime, so this is the first stop
	// when iterating on the suite feels slow.
	Stats bool
}

// An AnalyzerStat is one row of -stats output: how long an analyzer's passes
// took (per-package and module phases combined) and how many findings
// survived suppression and scoping.
type AnalyzerStat struct {
	Name     string `json:"name"`
	Time     string `json:"time"`
	Nanos    int64  `json:"ns"`
	Findings int    `json:"findings"`
}

// jsonDiag is the stable wire shape of one finding in -json mode.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// Main loads the packages matching patterns (from dir), runs the suite —
// per-package passes plus the module-wide interprocedural passes — under the
// scoping policy, and writes findings to out. It returns the process exit
// code: 0 clean, 1 findings, 2 load failure (including an empty package
// set, which almost always means a mistyped pattern) or an unknown -run
// name.
func Main(dir string, patterns []string, out io.Writer, opts Options) int {
	suite := Suite()
	if len(opts.Run) > 0 {
		known := map[string]*analysis.Analyzer{}
		for _, a := range suite {
			known[a.Name] = a
		}
		want := map[string]bool{}
		for _, name := range opts.Run {
			if known[name] == nil {
				fmt.Fprintf(out, "hamlint: unknown analyzer %q in -run (use -list for the registered set)\n", name)
				return 2
			}
			want[name] = true
		}
		var selected []*analysis.Analyzer
		for _, a := range suite {
			if want[a.Name] {
				selected = append(selected, a)
			}
		}
		suite = selected
	}
	names := make([]string, 0, len(suite))
	for _, a := range suite {
		names = append(names, a.Name)
	}
	tracker := analysis.NewAllowTracker(names, len(opts.Run) == 0)

	pkgs, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(out, "hamlint: %v\n", err)
		return 2
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(out, "hamlint: patterns %v matched no packages; nothing was checked (mistyped pattern?)\n", patterns)
		return 2
	}
	// Without -stats the suite runs batched; with it, one analyzer at a
	// time so each one's wall time is attributable. The tracker, scoping
	// and ordering semantics are identical either way — RunTracked and
	// RunModuleTracked loop over the given analyzers independently.
	elapsed := map[string]time.Duration{}
	var all []analysis.Diagnostic
	for _, pkg := range pkgs {
		diags, err := runPerPkg(pkg, suite, tracker, opts.Stats, elapsed)
		if err != nil {
			fmt.Fprintf(out, "hamlint: %v\n", err)
			return 2
		}
		all = append(all, diags...)
	}
	moduleDiags, err := runModule(pkgs, suite, tracker, opts.Stats, elapsed)
	if err != nil {
		fmt.Fprintf(out, "hamlint: %v\n", err)
		return 2
	}
	all = append(all, moduleDiags...)
	analysis.SortDiagnostics(all)

	var stats []AnalyzerStat
	if opts.Stats {
		counts := map[string]int{}
		for _, d := range all {
			counts[d.Analyzer]++
		}
		for _, a := range suite {
			stats = append(stats, AnalyzerStat{
				Name:     a.Name,
				Time:     elapsed[a.Name].Round(time.Microsecond).String(),
				Nanos:    elapsed[a.Name].Nanoseconds(),
				Findings: counts[a.Name],
			})
		}
	}

	if opts.JSON {
		jd := make([]jsonDiag, 0, len(all))
		for _, d := range all {
			jd = append(jd, jsonDiag{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		var encErr error
		if opts.Stats {
			encErr = enc.Encode(struct {
				Findings []jsonDiag     `json:"findings"`
				Stats    []AnalyzerStat `json:"stats"`
			}{jd, stats})
		} else {
			encErr = enc.Encode(jd)
		}
		if encErr != nil {
			fmt.Fprintf(out, "hamlint: %v\n", encErr)
			return 2
		}
		if len(all) > 0 {
			return 1
		}
		return 0
	}

	for _, d := range all {
		fmt.Fprintln(out, d)
	}
	if opts.Stats {
		fmt.Fprintf(out, "hamlint stats (%d package(s)):\n", len(pkgs))
		for _, s := range stats {
			fmt.Fprintf(out, "  %-10s %12s  %d finding(s)\n", s.Name, s.Time, s.Findings)
		}
	}
	if len(all) > 0 {
		fmt.Fprintf(out, "hamlint: %d issue(s); see docs/LINTING.md (//lint:allow <analyzer> <why> suppresses a finding)\n", len(all))
		return 1
	}
	return 0
}

// runPerPkg runs the per-package phase over one package: batched normally,
// analyzer-by-analyzer with timing when stats are requested.
func runPerPkg(pkg *analysis.Package, suite []*analysis.Analyzer, tracker *analysis.AllowTracker, timed bool, elapsed map[string]time.Duration) ([]analysis.Diagnostic, error) {
	if !timed {
		return analysis.RunTracked(pkg, suite, analysis.Applies, tracker)
	}
	var all []analysis.Diagnostic
	for _, a := range suite {
		start := time.Now()
		diags, err := analysis.RunTracked(pkg, []*analysis.Analyzer{a}, analysis.Applies, tracker)
		elapsed[a.Name] += time.Since(start)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}

// runModule runs the module-wide phase: batched normally, timed per analyzer
// when stats are requested. Suite order is preserved so allowcheck still
// consumes every earlier analyzer's //lint:allow usage.
func runModule(pkgs []*analysis.Package, suite []*analysis.Analyzer, tracker *analysis.AllowTracker, timed bool, elapsed map[string]time.Duration) ([]analysis.Diagnostic, error) {
	if !timed {
		return analysis.RunModuleTracked(pkgs, suite, analysis.Applies, tracker)
	}
	var all []analysis.Diagnostic
	for _, a := range suite {
		start := time.Now()
		diags, err := analysis.RunModuleTracked(pkgs, []*analysis.Analyzer{a}, analysis.Applies, tracker)
		elapsed[a.Name] += time.Since(start)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	return all, nil
}
