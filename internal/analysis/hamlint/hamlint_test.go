package hamlint_test

import (
	"bytes"
	"encoding/json"
	"slices"
	"strings"
	"testing"

	"hamoffload/internal/analysis/hamlint"
)

// TestSuiteRegistration pins the registered analyzer set to the documented
// one: adding, removing or renaming an analyzer must update docs/LINTING.md
// and this list together.
func TestSuiteRegistration(t *testing.T) {
	want := []string{
		"walltime", "spanend", "detmap", "goroutine", "unitcast",
		"flagorder", "acqrel", "afterfree", "hotalloc", "borrowck",
		"allowcheck",
	}
	var got []string
	moduleRunners := 0
	for _, a := range hamlint.Suite() {
		got = append(got, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil && a.RunModule == nil {
			t.Errorf("analyzer %s has neither Run nor RunModule", a.Name)
		}
		if a.RunModule != nil {
			moduleRunners++
		}
	}
	if !slices.Equal(got, want) {
		t.Errorf("registered analyzers = %v, want %v", got, want)
	}
	// walltime carries the interprocedural phase; losing it would silently
	// drop the call-graph check.
	if moduleRunners == 0 {
		t.Error("no analyzer registers a module-wide (RunModule) phase; walltime should")
	}
}

// TestSelfLint runs the full suite over the repository: the tree must stay
// clean so that a regression against any invariant fails CI here as well as
// in `make lint`.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint type-checks the whole module")
	}
	var buf bytes.Buffer
	if code := hamlint.Main(".", []string{"hamoffload/..."}, &buf, hamlint.Options{}); code != 0 {
		t.Fatalf("hamlint over the repository: exit %d\n%s", code, buf.String())
	}
}

// TestEmptyPackageSet pins the hard-error contract: a pattern matching
// nothing must exit 2 with a clear message, not report a deceptive clean
// run.
func TestEmptyPackageSet(t *testing.T) {
	var buf bytes.Buffer
	code := hamlint.Main(".", []string{"hamoffload/internal/nosuchdir/..."}, &buf, hamlint.Options{})
	if code != 2 {
		t.Fatalf("empty package set: exit %d, want 2\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "matched no packages") {
		t.Errorf("empty package set message = %q, want it to say 'matched no packages'", buf.String())
	}
}

// TestRunSelection pins the -run contract: a known subset runs clean over a
// clean package, and an unknown name is a usage error (exit 2) naming the
// bad analyzer rather than a silent no-op run.
func TestRunSelection(t *testing.T) {
	if testing.Short() {
		t.Skip("loads real packages")
	}
	var buf bytes.Buffer
	code := hamlint.Main(".", []string{"hamoffload/internal/backend/slots"}, &buf,
		hamlint.Options{Run: []string{"walltime", "flagorder"}})
	if code != 0 {
		t.Fatalf("-run walltime,flagorder on slots: exit %d\n%s", code, buf.String())
	}
	buf.Reset()
	code = hamlint.Main(".", []string{"hamoffload/internal/backend/slots"}, &buf,
		hamlint.Options{Run: []string{"nosuchanalyzer"}})
	if code != 2 {
		t.Fatalf("unknown -run name: exit %d, want 2\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "nosuchanalyzer") {
		t.Errorf("unknown -run message %q does not name the bad analyzer", buf.String())
	}
}

// TestList pins the -list -json shape: one entry per registered analyzer,
// suite order, with the module-wide flag set for the interprocedural ones.
func TestList(t *testing.T) {
	entries := hamlint.List()
	suite := hamlint.Suite()
	if len(entries) != len(suite) {
		t.Fatalf("List() has %d entries, Suite() has %d", len(entries), len(suite))
	}
	for i, e := range entries {
		if e.Name != suite[i].Name {
			t.Errorf("List()[%d] = %s, want %s", i, e.Name, suite[i].Name)
		}
		if e.ModuleWide != (suite[i].RunModule != nil) {
			t.Errorf("List()[%d].ModuleWide = %v, disagrees with Suite", i, e.ModuleWide)
		}
	}
	data, err := json.Marshal(entries)
	if err != nil {
		t.Fatalf("List() must marshal: %v", err)
	}
	if !strings.Contains(string(data), `"module_wide":true`) {
		t.Error("no module-wide analyzer in List() output; walltime and hotalloc should be")
	}
}

// TestJSONOutput runs one real package in -json mode and checks the output
// decodes as the documented array shape (empty but non-null on a clean
// package).
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("loads real packages")
	}
	var buf bytes.Buffer
	code := hamlint.Main(".", []string{"hamoffload/internal/backend/slots"}, &buf, hamlint.Options{JSON: true})
	if code != 0 {
		t.Fatalf("slots package should be clean: exit %d\n%s", code, buf.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not decode: %v\n%s", err, buf.String())
	}
	if strings.TrimSpace(buf.String()) == "null" {
		t.Error("-json must emit [] for a clean run, not null")
	}
}

// TestStatsOutput runs one real package in -stats mode, text and JSON: every
// registered analyzer must appear exactly once with a timing, and the JSON
// form must carry both the findings array and the stats rows.
func TestStatsOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("loads real packages")
	}
	var buf bytes.Buffer
	code := hamlint.Main(".", []string{"hamoffload/internal/backend/slots"}, &buf,
		hamlint.Options{Stats: true})
	if code != 0 {
		t.Fatalf("slots package should be clean: exit %d\n%s", code, buf.String())
	}
	text := buf.String()
	if !strings.Contains(text, "hamlint stats") {
		t.Errorf("-stats text output lacks the stats header:\n%s", text)
	}
	for _, a := range hamlint.Suite() {
		if !strings.Contains(text, a.Name) {
			t.Errorf("-stats text output lacks a row for %s:\n%s", a.Name, text)
		}
	}

	buf.Reset()
	code = hamlint.Main(".", []string{"hamoffload/internal/backend/slots"}, &buf,
		hamlint.Options{JSON: true, Stats: true})
	if code != 0 {
		t.Fatalf("slots package should be clean: exit %d\n%s", code, buf.String())
	}
	var out struct {
		Findings []json.RawMessage `json:"findings"`
		Stats    []hamlint.AnalyzerStat
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("-json -stats output does not decode: %v\n%s", err, buf.String())
	}
	if out.Findings == nil {
		t.Error("-json -stats must carry a non-null findings array")
	}
	if len(out.Stats) != len(hamlint.Suite()) {
		t.Errorf("-json -stats has %d stat rows, want one per analyzer (%d)",
			len(out.Stats), len(hamlint.Suite()))
	}
	for _, s := range out.Stats {
		if s.Nanos < 0 {
			t.Errorf("analyzer %s reports negative time %d", s.Name, s.Nanos)
		}
	}
}
