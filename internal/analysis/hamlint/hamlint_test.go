package hamlint_test

import (
	"bytes"
	"slices"
	"testing"

	"hamoffload/internal/analysis/hamlint"
)

// TestSuiteRegistration pins the registered analyzer set to the documented
// one: adding, removing or renaming an analyzer must update docs/LINTING.md
// and this list together.
func TestSuiteRegistration(t *testing.T) {
	want := []string{"walltime", "spanend", "detmap", "goroutine", "unitcast"}
	var got []string
	for _, a := range hamlint.Suite() {
		got = append(got, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %s has no Run", a.Name)
		}
	}
	if !slices.Equal(got, want) {
		t.Errorf("registered analyzers = %v, want %v", got, want)
	}
}

// TestSelfLint runs the full suite over the repository: the tree must stay
// clean so that a regression against any invariant fails CI here as well as
// in `make lint`.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint type-checks the whole module")
	}
	var buf bytes.Buffer
	if code := hamlint.Main(".", []string{"hamoffload/..."}, &buf); code != 0 {
		t.Fatalf("hamlint over the repository: exit %d\n%s", code, buf.String())
	}
}
