package hamlint_test

import (
	"bytes"
	"encoding/json"
	"slices"
	"strings"
	"testing"

	"hamoffload/internal/analysis/hamlint"
)

// TestSuiteRegistration pins the registered analyzer set to the documented
// one: adding, removing or renaming an analyzer must update docs/LINTING.md
// and this list together.
func TestSuiteRegistration(t *testing.T) {
	want := []string{
		"walltime", "spanend", "detmap", "goroutine", "unitcast",
		"flagorder", "acqrel", "afterfree",
	}
	var got []string
	moduleRunners := 0
	for _, a := range hamlint.Suite() {
		got = append(got, a.Name)
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
		if a.Run == nil && a.RunModule == nil {
			t.Errorf("analyzer %s has neither Run nor RunModule", a.Name)
		}
		if a.RunModule != nil {
			moduleRunners++
		}
	}
	if !slices.Equal(got, want) {
		t.Errorf("registered analyzers = %v, want %v", got, want)
	}
	// walltime carries the interprocedural phase; losing it would silently
	// drop the call-graph check.
	if moduleRunners == 0 {
		t.Error("no analyzer registers a module-wide (RunModule) phase; walltime should")
	}
}

// TestSelfLint runs the full suite over the repository: the tree must stay
// clean so that a regression against any invariant fails CI here as well as
// in `make lint`.
func TestSelfLint(t *testing.T) {
	if testing.Short() {
		t.Skip("self-lint type-checks the whole module")
	}
	var buf bytes.Buffer
	if code := hamlint.Main(".", []string{"hamoffload/..."}, &buf, hamlint.Options{}); code != 0 {
		t.Fatalf("hamlint over the repository: exit %d\n%s", code, buf.String())
	}
}

// TestEmptyPackageSet pins the hard-error contract: a pattern matching
// nothing must exit 2 with a clear message, not report a deceptive clean
// run.
func TestEmptyPackageSet(t *testing.T) {
	var buf bytes.Buffer
	code := hamlint.Main(".", []string{"hamoffload/internal/nosuchdir/..."}, &buf, hamlint.Options{})
	if code != 2 {
		t.Fatalf("empty package set: exit %d, want 2\n%s", code, buf.String())
	}
	if !strings.Contains(buf.String(), "matched no packages") {
		t.Errorf("empty package set message = %q, want it to say 'matched no packages'", buf.String())
	}
}

// TestJSONOutput runs one real package in -json mode and checks the output
// decodes as the documented array shape (empty but non-null on a clean
// package).
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("loads real packages")
	}
	var buf bytes.Buffer
	code := hamlint.Main(".", []string{"hamoffload/internal/backend/slots"}, &buf, hamlint.Options{JSON: true})
	if code != 0 {
		t.Fatalf("slots package should be clean: exit %d\n%s", code, buf.String())
	}
	var diags []struct {
		File     string `json:"file"`
		Line     int    `json:"line"`
		Column   int    `json:"column"`
		Analyzer string `json:"analyzer"`
		Message  string `json:"message"`
	}
	if err := json.Unmarshal(buf.Bytes(), &diags); err != nil {
		t.Fatalf("-json output does not decode: %v\n%s", err, buf.String())
	}
	if strings.TrimSpace(buf.String()) == "null" {
		t.Error("-json must emit [] for a clean run, not null")
	}
}
