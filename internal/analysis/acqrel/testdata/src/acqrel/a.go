// Fixture for the acqrel analyzer, exercising the real simtime
// Semaphore/Resource pairs.
package acqrel

import "hamoffload/internal/simtime"

func work() error { return nil }

// --- accepted idioms ---

func balanced(sem *simtime.Semaphore, p *simtime.Proc) {
	sem.Acquire(p, 1)
	_ = work()
	sem.Release(1)
}

func deferredRelease(sem *simtime.Semaphore, p *simtime.Proc) error {
	sem.Acquire(p, 1)
	defer sem.Release(1)
	if err := work(); err != nil {
		return err
	}
	return nil
}

func releasedOnEveryBranch(sem *simtime.Semaphore, p *simtime.Proc) error {
	sem.Acquire(p, 1)
	if err := work(); err != nil {
		sem.Release(1)
		return err
	}
	sem.Release(1)
	return nil
}

func resourceBalanced(r *simtime.Resource, p *simtime.Proc) {
	r.Acquire(p)
	_ = work()
	r.Release(p)
}

// A path ending in panic is teardown, not a leak.
func panicPath(sem *simtime.Semaphore, p *simtime.Proc) {
	sem.Acquire(p, 1)
	if err := work(); err != nil {
		panic(err)
	}
	sem.Release(1)
}

// Distinct receivers are tracked independently.
func twoSemaphores(a, b *simtime.Semaphore, p *simtime.Proc) {
	a.Acquire(p, 1)
	b.Acquire(p, 1)
	b.Release(1)
	a.Release(1)
}

// --- violations ---

// The early error return leaks the unit.
func leakOnEarlyReturn(sem *simtime.Semaphore, p *simtime.Proc) error {
	sem.Acquire(p, 1) // want `sem\.Acquire is not matched by a sem\.Release on every path`
	if err := work(); err != nil {
		return err
	}
	sem.Release(1)
	return nil
}

// No release anywhere.
func leakAlways(r *simtime.Resource, p *simtime.Proc) {
	r.Acquire(p) // want `r\.Acquire is not matched by a r\.Release on every path`
	_ = work()
}

// Releasing the wrong semaphore does not discharge the obligation.
func leakWrongReceiver(a, b *simtime.Semaphore, p *simtime.Proc) {
	a.Acquire(p, 1) // want `a\.Acquire is not matched by a a\.Release on every path`
	b.Acquire(p, 1)
	b.Release(1)
	b.Release(1)
}

// Suppression works as everywhere else.
func suppressed(sem *simtime.Semaphore, p *simtime.Proc) {
	sem.Acquire(p, 1) //lint:allow acqrel fixture: proves suppression
	_ = work()
}
