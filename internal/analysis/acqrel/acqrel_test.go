package acqrel_test

import (
	"testing"

	"hamoffload/internal/analysis/acqrel"
	"hamoffload/internal/analysis/analysistest"
)

func TestAcqrel(t *testing.T) {
	analysistest.Run(t, acqrel.Analyzer, "acqrel")
}
