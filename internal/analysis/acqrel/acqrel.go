// Package acqrel verifies that every simtime semaphore/resource Acquire is
// matched by a Release on every control-flow path to return.
//
// The DES engine models contended hardware (DMA engines, VEO worker pools)
// with simtime.Semaphore and simtime.Resource; a path that returns while
// still holding a unit starves every later process queued on it — the
// simulation deadlocks silently instead of finishing, the exact
// deadlock-shaped bug class spanend catches for trace spans. The analyzer
// runs a forward dataflow pass over each function's CFG tracking the set of
// acquires that may still be held, and reports any Acquire that can reach
// the function's exit unreleased. A Release on the same receiver inside a
// defer discharges the obligation on every path at once.
//
// Paths that end in panic are not exits for this purpose: the simulation is
// already tearing down.
package acqrel

import (
	"go/ast"
	"go/token"
	"go/types"

	"hamoffload/internal/analysis"
	"hamoffload/internal/analysis/cfg"
)

// Analyzer flags Acquires that may leak past a return.
var Analyzer = &analysis.Analyzer{
	Name: "acqrel",
	Doc: "every simtime.Semaphore/Resource Acquire must be matched by a Release on " +
		"all paths to return; a leaked unit deadlocks every later process queued on it",
	Run: run,
}

const simtimePath = "hamoffload/internal/simtime"

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, fb := range cfg.FuncBodies(file) {
			checkFunc(pass, fb.Body)
		}
	}
	return nil
}

// site is one Acquire call, identified by position.
type site struct {
	pos  token.Pos
	recv string // types.ExprString of the receiver
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)

	// Receivers released inside any defer are covered on every exit path;
	// acquires on those receivers carry no per-path obligation.
	deferred := map[string]bool{}
	for _, d := range g.Defers {
		ast.Inspect(d, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if recv, kind := pairCall(pass.TypesInfo, call); kind == "Release" {
					deferred[recv] = true
				}
			}
			return true
		})
	}

	// Collect the per-block event sequences.
	type event struct {
		acquire *site  // non-nil for Acquire
		release string // receiver, for Release
	}
	events := map[*cfg.Block][]event{}
	any := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				continue // handled via the deferred set
			}
			cfg.Shallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				recv, kind := pairCall(pass.TypesInfo, call)
				switch kind {
				case "Acquire":
					if !deferred[recv] {
						events[b] = append(events[b], event{acquire: &site{pos: call.Pos(), recv: recv}})
						any = true
					}
				case "Release":
					events[b] = append(events[b], event{release: recv})
				}
				return true
			})
		}
	}
	if !any {
		return
	}

	sites := map[token.Pos]*site{}
	type held = map[token.Pos]bool
	res := cfg.Forward(g, cfg.Problem[held]{
		Entry: held{},
		Transfer: func(b *cfg.Block, in held) held {
			out := make(held, len(in))
			for k := range in {
				out[k] = true
			}
			for _, e := range events[b] {
				if e.acquire != nil {
					out[e.acquire.pos] = true
					sites[e.acquire.pos] = e.acquire
				} else {
					for pos := range out {
						if sites[pos].recv == e.release {
							delete(out, pos)
						}
					}
				}
			}
			return out
		},
		Join: func(a, b held) held {
			out := make(held, len(a)+len(b))
			for k := range a {
				out[k] = true
			}
			for k := range b {
				out[k] = true
			}
			return out
		},
		Equal: func(a, b held) bool {
			if len(a) != len(b) {
				return false
			}
			for k := range a {
				if !b[k] {
					return false
				}
			}
			return true
		},
	})

	leaked := make([]token.Pos, 0, len(res.In[g.Exit]))
	for pos := range res.In[g.Exit] {
		leaked = append(leaked, pos)
	}
	// Deterministic report order.
	for _, pos := range sortedPos(leaked) {
		s := sites[pos]
		pass.Reportf(pos,
			"%s.Acquire is not matched by a %s.Release on every path to return; "+
				"a leaked unit deadlocks later acquirers", s.recv, s.recv)
	}
}

func sortedPos(ps []token.Pos) []token.Pos {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j] < ps[j-1]; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
	return ps
}

// pairCall classifies call as an Acquire or Release on a simtime
// Semaphore/Resource and returns the receiver's source expression. kind is
// "" for unrelated calls.
func pairCall(info *types.Info, call *ast.CallExpr) (recv, kind string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name := sel.Sel.Name
	if name != "Acquire" && name != "Release" {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != simtimePath {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	return types.ExprString(sel.X), name
}
