// Package flagorder enforces the payload-before-flag protocol ordering of
// the paper's two message channels (Fig. 5 for VEO, Fig. 8 for DMA).
//
// Both protocols publish a message by raising a flag word — written with
// slots.Encode — after the payload bytes are in place; the receiver spins on
// the flag and then reads the payload. Any write that can land after the
// flag is raised races the receiver: it may read a half-written message
// while still trusting the length in the flag word. The analyzer therefore
// flags every memory write that is reachable, within one function, from a
// flag publish on a flag-free path.
//
// Loop iterations are handled by reasoning over the back-edge-pruned
// (acyclic) CFG: the flag raised in iteration i may legitimately precede the
// payload writes of iteration i+1, so reachability is only computed within
// one iteration.
package flagorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hamoffload/internal/analysis"
	"hamoffload/internal/analysis/cfg"
)

// Analyzer flags payload writes that may execute after a flag publish.
var Analyzer = &analysis.Analyzer{
	Name: "flagorder",
	Doc: "in the dmab/veob/slots protocol paths, the flag word publishing a message " +
		"must be the last write: payload bytes written after it race the receiver (Fig. 5/8)",
	Run: run,
}

// writeVerbs are the memory-write entry points of the protocol layers: host
// and HBM stores, VEO bulk copies, VE store instructions, and DMA posts.
var writeVerbs = map[string]bool{
	"WriteAt":     true,
	"WriteMem":    true,
	"WriteUint64": true,
	"StoreBytes":  true,
	"StoreWord":   true,
	"Post":        true,
}

// A write is one classified memory-write call site.
type write struct {
	pos  token.Pos
	name string // callee name, for diagnostics
	flag bool   // publishes a flag word
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, fb := range cfg.FuncBodies(file) {
			checkFunc(pass, fb.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	writes := map[*cfg.Block][]write{}
	any := false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if _, ok := n.(*ast.DeferStmt); ok {
				continue // deferred writes run at exit, outside the protocol path
			}
			cfg.Shallow(n, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if w, ok := classify(pass.TypesInfo, call); ok {
					writes[b] = append(writes[b], w)
					any = true
				}
				return true
			})
		}
	}
	if !any {
		return
	}

	dom := cfg.Dominators(g)
	back := map[cfg.Edge]bool{}
	for _, e := range cfg.BackEdges(g, dom) {
		back[e] = true
	}

	reported := map[token.Pos]bool{}
	for _, fb := range g.Blocks {
		for fi, f := range writes[fb] {
			if !f.flag {
				continue
			}
			// Later writes in the same block execute strictly after the flag.
			for _, p := range writes[fb][fi+1:] {
				report(pass, reported, p, f)
			}
			// Writes in blocks reachable within the same iteration.
			for _, pb := range reachableAcyclic(fb, back) {
				for _, p := range writes[pb] {
					report(pass, reported, p, f)
				}
			}
		}
	}
}

// report flags the payload write p as racing the flag publish f. Flag
// rewrites after a flag are legal (re-publish of the next slot state).
func report(pass *analysis.Pass, reported map[token.Pos]bool, p, f write) {
	if p.flag || reported[p.pos] {
		return
	}
	reported[p.pos] = true
	fpos := pass.Fset.Position(f.pos)
	pass.Reportf(p.pos,
		"%s may execute after the flag publish at line %d; the payload must be "+
			"complete before its flag is raised (Fig. 5/8)", p.name, fpos.Line)
}

// reachableAcyclic returns the blocks strictly reachable from b along
// non-back edges — the "later in this iteration" set.
func reachableAcyclic(b *cfg.Block, back map[cfg.Edge]bool) []*cfg.Block {
	var out []*cfg.Block
	seen := map[*cfg.Block]bool{b: true}
	stack := []*cfg.Block{b}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range cur.Succs {
			if back[cfg.Edge{From: cur, To: s}] || seen[s] {
				continue
			}
			seen[s] = true
			out = append(out, s)
			stack = append(stack, s)
		}
	}
	return out
}

// classify decides whether call is a protocol memory write and, if so,
// whether it publishes a flag: its arguments contain either a slots.Encode
// call (building the flag word) or a call to a *Flag* helper (computing the
// flag address).
func classify(info *types.Info, call *ast.CallExpr) (write, bool) {
	name := calleeName(call)
	if !writeVerbs[name] {
		return write{}, false
	}
	w := write{pos: call.Pos(), name: name}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			inner, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isEncode(info, inner) || containsFlag(calleeName(inner)) {
				w.flag = true
			}
			return true
		})
	}
	return w, true
}

// calleeName extracts the syntactic callee name of a call.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isEncode reports whether call invokes the slots package's Encode.
func isEncode(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != "Encode" || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "hamoffload/internal/backend/slots" || fn.Pkg().Name() == "slots"
}

// containsFlag reports whether a helper name marks a flag address
// computation (recvFlagAddr, sendFlagOff, ...).
func containsFlag(name string) bool {
	return strings.Contains(name, "Flag")
}
