package flagorder_test

import (
	"testing"

	"hamoffload/internal/analysis/analysistest"
	"hamoffload/internal/analysis/flagorder"
)

func TestFlagorder(t *testing.T) {
	analysistest.Run(t, flagorder.Analyzer, "flagorder")
}
