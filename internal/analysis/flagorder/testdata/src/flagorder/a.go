// Fixture for the flagorder analyzer. memdev mimics the write surface of
// the protocol layers (hostmem/HBM/VEO); the flag classification is driven
// by the real slots.Encode and by *Flag* address helpers, exactly as in
// dmab/veob.
package flagorder

import "hamoffload/internal/backend/slots"

type memdev struct{}

func (memdev) WriteAt(b []byte, addr uint64) error    { return nil }
func (memdev) WriteUint64(addr, v uint64) error       { return nil }
func (memdev) StoreBytes(addr uint64, b []byte) error { return nil }

func recvFlagOff(slot int) uint64 { return uint64(slot * slots.FlagBits) }
func recvBufOff(slot int) uint64  { return 4096 }

// --- accepted idioms ---

// The canonical Fig. 8 send: payload first, flag last.
func goodSend(m memdev, msg []byte, seq uint32) {
	_ = m.WriteAt(msg, recvBufOff(0))
	_ = m.WriteUint64(recvFlagOff(0), slots.Encode(seq, len(msg)))
}

// A second flag write after the first is a re-publish, not a payload race.
func goodDoubleFlag(m memdev, seq uint32) {
	_ = m.WriteUint64(recvFlagOff(0), slots.Encode(seq, 0))
	_ = m.WriteUint64(recvFlagOff(1), slots.Encode(seq, 0))
}

// Loop iterations are independent: the flag of iteration i precedes the
// payload of iteration i+1 only across the back edge.
func goodLoop(m memdev, msgs [][]byte, seq uint32) {
	for i, msg := range msgs {
		_ = m.WriteAt(msg, recvBufOff(i))
		_ = m.WriteUint64(recvFlagOff(i), slots.Encode(seq, len(msg)))
	}
}

// The flag on the early-return path cannot reach the slow path's payload.
func goodBranchIsolated(m memdev, msg []byte, seq uint32, fast bool) {
	if fast {
		_ = m.WriteUint64(recvFlagOff(0), slots.Encode(seq, 0))
		return
	}
	_ = m.WriteAt(msg, recvBufOff(0))
	_ = m.WriteUint64(recvFlagOff(0), slots.Encode(seq, len(msg)))
}

// --- violations ---

// Straight-line payload-after-flag: the receiver may read a half-written
// message.
func badSend(m memdev, msg []byte, seq uint32) {
	_ = m.WriteUint64(recvFlagOff(0), slots.Encode(seq, len(msg)))
	_ = m.WriteAt(msg, recvBufOff(0)) // want `WriteAt may execute after the flag publish at line \d+`
}

// The overflow branch writes payload after the flag was already raised.
func badOverflow(m memdev, msg []byte, seq uint32, over bool) {
	_ = m.WriteUint64(recvFlagOff(0), slots.Encode(seq, len(msg)))
	if over {
		_ = m.StoreBytes(recvBufOff(1), msg) // want `StoreBytes may execute after the flag publish at line \d+`
	}
}

// Inside one loop body the same-iteration order still matters.
func badLoop(m memdev, msgs [][]byte, seq uint32) {
	for i, msg := range msgs {
		_ = m.WriteUint64(recvFlagOff(i), slots.Encode(seq, len(msg)))
		_ = m.WriteAt(msg, recvBufOff(i)) // want `WriteAt may execute after the flag publish at line \d+`
	}
}

// A *Flag* address helper marks a flag write even without slots.Encode.
func badFlagHelper(m memdev, msg []byte, word uint64) {
	_ = m.WriteUint64(recvFlagOff(0), word)
	_ = m.WriteAt(msg, recvBufOff(0)) // want `WriteAt may execute after the flag publish at line \d+`
}

// Suppression works as everywhere else.
func suppressed(m memdev, msg []byte, seq uint32) {
	_ = m.WriteUint64(recvFlagOff(0), slots.Encode(seq, len(msg)))
	_ = m.WriteAt(msg, recvBufOff(0)) //lint:allow flagorder fixture: proves suppression
}
