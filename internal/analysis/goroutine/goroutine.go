// Package goroutine keeps OS concurrency out of the DES packages.
//
// The simulation engine is cooperative: exactly one process runs at a time,
// and every context switch happens at a known simulated instant through
// Engine.Spawn / the park-resume protocol. A raw `go` statement in a DES
// package introduces OS-scheduler nondeterminism that the picosecond clock
// cannot see — the same program starts producing different event orders
// under load, which is precisely the failure mode the simulator exists to
// exclude. The engine's own goroutine launch sites carry //lint:allow.
//
// The second check targets a subtler escape: a function handed to
// Engine.Spawn/Proc.Spawn that captures a *simtime.Proc from an enclosing
// scope. Each spawned process must talk to the engine through its own Proc
// argument; driving a parent's Proc from the child goroutine corrupts the
// park-resume handshake.
package goroutine

import (
	"go/ast"
	"go/types"

	"hamoffload/internal/analysis"
)

// Analyzer flags raw go statements and cross-process *simtime.Proc capture.
var Analyzer = &analysis.Analyzer{
	Name: "goroutine",
	Doc: "DES packages must route all concurrency through Engine.Spawn/Proc.Spawn; " +
		"spawned functions must use their own *simtime.Proc, not a captured one",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"raw goroutine in a DES package; all concurrency must go through "+
						"simtime Engine.Spawn/Proc.Spawn so the engine owns every context switch")
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Spawn" {
					return true
				}
				for _, arg := range n.Args {
					lit, ok := arg.(*ast.FuncLit)
					if !ok {
						continue
					}
					checkCaptures(pass, lit)
				}
			}
			return true
		})
	}
	return nil
}

// checkCaptures reports *simtime.Proc variables that lit references but
// that are declared outside it.
func checkCaptures(pass *analysis.Pass, lit *ast.FuncLit) {
	reported := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || reported[obj] || !isProcPtr(obj.Type()) {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // the literal's own parameter or local
		}
		reported[obj] = true
		pass.Reportf(id.Pos(),
			"function passed to Spawn captures *simtime.Proc %q from an enclosing scope; "+
				"a spawned process must use its own Proc argument", obj.Name())
		return true
	})
}

// isProcPtr reports whether t is *simtime.Proc.
func isProcPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Proc" && obj.Pkg() != nil &&
		obj.Pkg().Path() == "hamoffload/internal/simtime"
}
