// Fixture for the goroutine analyzer: raw go statements and *simtime.Proc
// captured across a Spawn boundary must be flagged; engine-mediated
// concurrency using the spawned process's own Proc must not. The fixture
// imports the real simtime package (resolved from export data) so the
// Proc-type match is exercised against the true type identity.
package goroutine

import "hamoffload/internal/simtime"

// --- accepted ---

func engineSpawn(e *simtime.Engine) {
	e.Spawn("worker", func(p *simtime.Proc) {
		p.Sleep(simtime.Microsecond) // the child's own Proc: fine
	})
}

func nestedSpawn(e *simtime.Engine) {
	e.Spawn("parent", func(p *simtime.Proc) {
		p.Engine().Spawn("child", func(q *simtime.Proc) {
			q.Sleep(simtime.Nanosecond) // child uses its own q
		})
	})
}

// --- violations ---

func rawGoroutine(ch chan int) {
	go func() { ch <- 1 }() // want `raw goroutine in a DES package`
}

func rawGoCall(f func()) {
	go f() // want `raw goroutine in a DES package`
}

func capturedProc(e *simtime.Engine, outer *simtime.Proc) {
	e.Spawn("leak", func(p *simtime.Proc) {
		outer.Sleep(simtime.Microsecond) // want `captures \*simtime\.Proc "outer" from an enclosing scope`
	})
}

func capturedParent(e *simtime.Engine) {
	e.Spawn("parent", func(p *simtime.Proc) {
		p.Engine().Spawn("child", func(q *simtime.Proc) {
			p.Sleep(simtime.Nanosecond) // want `captures \*simtime\.Proc "p" from an enclosing scope`
		})
	})
}

// --- suppression ---

func suppressedGo(done chan struct{}) {
	go close(done) //lint:allow goroutine fixture demonstrates suppression
}
