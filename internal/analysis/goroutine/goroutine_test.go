package goroutine_test

import (
	"testing"

	"hamoffload/internal/analysis/analysistest"
	"hamoffload/internal/analysis/goroutine"
)

func TestGoroutine(t *testing.T) {
	analysistest.Run(t, goroutine.Analyzer, "goroutine")
}
