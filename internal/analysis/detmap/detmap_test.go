package detmap_test

import (
	"testing"

	"hamoffload/internal/analysis/analysistest"
	"hamoffload/internal/analysis/detmap"
)

func TestDetmap(t *testing.T) {
	analysistest.Run(t, detmap.Analyzer, "detmap")
}
