// Fixture for the detmap analyzer: order-sensitive map iteration and
// math/rand must be flagged; the collect-then-sort idiom and commutative
// accumulation must not.
package detmap

import (
	"fmt"
	"math/rand" // want `math/rand in a deterministic-output path`
	"sort"
)

// --- accepted idioms ---

func collectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func collectValues(m map[string]*int) []*int {
	var out []*int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

func commutativeSum(m map[string]int64) int64 {
	var sum int64
	for _, v := range m {
		sum += v
	}
	return sum
}

func guardedSum(m map[string]int64) (n int, sum int64) {
	for k, v := range m {
		if len(k) > 3 {
			sum += v
			n++
		}
	}
	return n, sum
}

func sliceIteration(s []string) {
	for _, v := range s { // slices iterate in order: ignored
		fmt.Println(v)
	}
}

// --- violations ---

func printDirectly(m map[string]int) {
	for k, v := range m { // want `iteration over map map\[string\]int has nondeterministic order`
		fmt.Println(k, v)
	}
}

func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `iteration over map map\[string\]float64 has nondeterministic order`
		sum += v // float addition rounds differently per order
	}
	return sum
}

func firstMatch(m map[string]int) (string, bool) {
	for k := range m { // want `iteration over map map\[string\]int has nondeterministic order`
		if len(k) > 0 {
			return k, true
		}
	}
	return "", false
}

func useRand() int { return rand.Int() }

// --- suppression ---

func suppressed(m map[string]int) int {
	n := 0
	//lint:allow detmap result is the map size, order-free by construction
	for k := range m {
		if m[k] > 0 {
			n = n + 1 // spelled to defeat the += heuristic on purpose
		}
	}
	return n
}
