// Package detmap guards deterministic-output paths against map iteration
// order and math/rand.
//
// The trace exporters, metric registries, HAM key tables and experiment
// drivers promise bit-identical output for identical simulations — the
// golden Chrome-export test and the §III-E sorted-key-table property depend
// on it. Go randomises map iteration order per run, so a bare `range m`
// in one of these paths is a nondeterminism bug that survives every test
// run until it doesn't.
//
// A range over a map is accepted only when its body is order-insensitive:
// nothing but append collection, integer accumulation (+=, ++/--), or such
// statements behind an else-less if. That admits the collect-then-sort
// idiom and commutative sums; everything else needs an explicit
// //lint:allow detmap with a justification. Importing math/rand (or v2) in
// a deterministic-output package is flagged unconditionally.
package detmap

import (
	"go/ast"
	"go/types"
	"strconv"

	"hamoffload/internal/analysis"
)

// Analyzer flags order-sensitive map iteration and math/rand use.
var Analyzer = &analysis.Analyzer{
	Name: "detmap",
	Doc: "deterministic-output paths must not depend on map iteration order " +
		"(collect and sort keys first) or on math/rand",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil &&
				(path == "math/rand" || path == "math/rand/v2") {
				pass.Reportf(imp.Pos(),
					"%s in a deterministic-output path; outputs must be a pure function of the inputs", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if orderInsensitive(pass, rs.Body.List) {
				return true
			}
			pass.Reportf(rs.Pos(),
				"iteration over map %s has nondeterministic order; collect the keys, "+
					"sort them, and iterate the sorted slice", types.TypeString(t, types.RelativeTo(pass.Pkg)))
			return true
		})
	}
	return nil
}

// orderInsensitive reports whether every statement commutes across loop
// iterations: append collection, integer accumulation, or either behind an
// else-less if.
func orderInsensitive(pass *analysis.Pass, stmts []ast.Stmt) bool {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.AssignStmt:
			if !commutativeAssign(pass, s) {
				return false
			}
		case *ast.IncDecStmt:
			// counting is commutative
		case *ast.IfStmt:
			if s.Else != nil || !orderInsensitive(pass, s.Body.List) {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// commutativeAssign accepts `x = append(x, ...)` and integer `x += e`.
func commutativeAssign(pass *analysis.Pass, as *ast.AssignStmt) bool {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	switch as.Tok.String() {
	case "=", ":=":
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return false
		}
		b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
		return ok && b.Name() == "append"
	case "+=":
		// Integer addition commutes; float addition does not (rounding
		// depends on order).
		t := pass.TypesInfo.TypeOf(as.Lhs[0])
		if t == nil {
			return false
		}
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsInteger != 0
	}
	return false
}
