package borrowck_test

import (
	"testing"

	"hamoffload/internal/analysis/analysistest"
	"hamoffload/internal/analysis/borrowck"
)

func TestBorrowck(t *testing.T) {
	analysistest.RunModule(t, borrowck.Analyzer, nil, "borrowfix")
}

// TestBorrowckSolver pins the dataflow-solver corner cases: alias facts
// across branch joins and loop back edges, one-arm vs. all-arm kills, alias
// independence from the root fact, and defer discharge.
func TestBorrowckSolver(t *testing.T) {
	analysistest.RunModule(t, borrowck.Analyzer, nil, "borrowflow")
}
