// Package borrowfix exercises the borrowck analyzer: every escape rule for
// //ham:borrowed buffers (field store, global, channel, map, closure,
// goroutine, element append, unannotated return, reslice aliasing), the
// kills (copy, bytes.Clone, append spread, reassignment), //ham:owned
// ownership transfer, interface annotation propagation, borrowed-result
// origins and interprocedural chains through unannotated helpers.
package borrowfix

import "bytes"

type sink struct {
	buf  []byte
	many [][]byte
}

var global []byte

var sinkCh = make(chan []byte, 1)

var table = map[string][]byte{}

var keep func() []byte

// --- direct escapes ---

//ham:borrowed msg
func fieldStore(s *sink, msg []byte) {
	s.buf = msg // want `borrowed buffer "msg" stored into struct field s\.buf \(chain: borrowfix\.fieldStore\)`
}

//ham:borrowed msg
func globalStore(msg []byte) {
	global = msg // want `borrowed buffer "msg" stored into package-level variable global`
}

//ham:borrowed msg
func channelSend(msg []byte) {
	sinkCh <- msg // want `borrowed buffer "msg" sent on a channel`
}

//ham:borrowed msg
func mapStore(msg []byte) {
	table["k"] = msg // want `borrowed buffer "msg" stored into a map`
}

// A closure carries the taint of what it captures: it escapes the borrow
// only when the closure value itself escapes (stored here into a global).
//
//ham:borrowed msg
func closureCapture(msg []byte) {
	keep = func() []byte { return msg } // want `borrowed buffer "msg" stored into package-level variable keep`
}

// A literal passed as a plain call argument runs within the window: the
// walk/visitor callback idiom is quiet even though it captures the borrow.
func walker(f func(i int)) {
	for i := 0; i < 4; i++ {
		f(i)
	}
}

//ham:borrowed msg
func callbackCapture(msg []byte) {
	n := 0
	walker(func(i int) { n += int(msg[i]) })
	consume(msg[:n%len(msg)])
}

//ham:borrowed msg
func goroutineArg(msg []byte) {
	go consume(msg) // want `borrowed buffer "msg" passed to a goroutine`
}

//ham:borrowed msg
func goroutineCapture(msg []byte) {
	go func() { consume(msg) }() // want `borrowed buffer "msg" captured by a goroutine closure`
}

//ham:borrowed msg
func appendElement(s *sink, msg []byte) {
	s.many = append(s.many, msg) // want `borrowed buffer "msg" appended as an element into another slice`
}

//ham:borrowed msg
func returnBorrowed(msg []byte) []byte {
	return msg // want `borrowed buffer "msg" returned from a function not annotated`
}

// A reslice aliases the same backing array: the fact follows it.
//
//ham:borrowed msg
func resliceAlias(s *sink, msg []byte) {
	tail := msg[4:]
	s.buf = tail // want `borrowed buffer "msg" stored into struct field s\.buf`
}

// Sending an aggregate that carries the borrowed buffer escapes it too.
type req struct{ payload []byte }

var reqCh = make(chan req, 1)

//ham:borrowed msg
func compositeSend(msg []byte) {
	reqCh <- req{payload: msg} // want `borrowed buffer "msg" sent on a channel`
}

// --- kills: copies produce owned memory, reassignment drops the fact ---

//ham:borrowed msg
func copyKills(s *sink, msg []byte) {
	own := make([]byte, len(msg))
	copy(own, msg)
	s.buf = own

	s.buf = bytes.Clone(msg)

	s.buf = append([]byte(nil), msg...)

	reqCh <- req{payload: append([]byte(nil), msg...)}
}

//ham:borrowed msg
func reassignKills(s *sink, msg []byte) {
	b := msg[8:]
	b = make([]byte, 4)
	s.buf = b
}

// Directly invoked and deferred literals discharge inside the window.
//
//ham:borrowed msg
func dischargedLiterals(msg []byte) int {
	defer func() { consume(msg) }()
	return func() int { return len(msg) }()
}

// --- declared hand-offs ---

// take retains data: callers must hand over ownership.
//
//ham:owned data
func take(s *sink, data []byte) {
	s.buf = data
}

//ham:borrowed msg
func ownedTransfer(s *sink, msg []byte) {
	take(s, msg) // want `borrowed buffer "msg" passed to borrowfix\.take, whose parameter takes ownership`
	take(s, bytes.Clone(msg))
}

// view declares that its result is borrowed memory, so returning a reslice
// of its borrowed parameter is legal — and callers inherit the borrow.
//
//ham:borrowed msg return
func view(msg []byte) []byte {
	return msg[4:]
}

//ham:borrowed msg
func useView(s *sink, msg []byte) {
	s.buf = view(msg) // want `borrowed result of borrowfix\.view stored into struct field s\.buf`
}

// --- interprocedural chains through unannotated helpers ---

func stash(b []byte) {
	global = b
}

func relay(b []byte) {
	stash(b)
}

//ham:borrowed msg
func deepEscape(msg []byte) {
	stash(msg) // want `borrowed buffer "msg" stored into package-level variable global at .*borrowfix\.go:\d+:\d+ \(chain: borrowfix\.deepEscape → borrowfix\.stash\)`
}

//ham:borrowed msg
func deepEscape2(msg []byte) {
	relay(msg) // want `chain: borrowfix\.deepEscape2 → borrowfix\.relay → borrowfix\.stash`
}

// idSlice returns its argument: callers' results alias their argument.
func idSlice(b []byte) []byte { return b }

//ham:borrowed msg
func throughHelper(s *sink, msg []byte) {
	s.buf = idSlice(msg) // want `borrowed buffer "msg" stored into struct field s\.buf`
}

// consumeAll reads without retaining: passing a borrow through is quiet.
func consumeAll(b []byte) int {
	n := 0
	for _, c := range b {
		n += int(c)
	}
	return n
}

//ham:borrowed msg
func passThrough(msg []byte) int {
	return consumeAll(msg)
}

// --- interface annotation propagation ---

type transport interface {
	// Send posts msg somewhere. Implementations may read msg for the
	// duration of the call only.
	//
	//ham:borrowed msg
	Send(msg []byte)
}

type badTransport struct{ last []byte }

func (t *badTransport) Send(msg []byte) {
	t.last = msg // want `borrowed buffer "msg" stored into struct field t\.last \(chain: \(\*borrowfix\.badTransport\)\.Send\)`
}

type goodTransport struct{ last []byte }

func (t *goodTransport) Send(msg []byte) {
	t.last = append(t.last[:0], msg...)
}

// Dynamic dispatch through the annotated interface is quiet at the call
// site: every implementation is checked in its own body.
//
//ham:borrowed msg
func forward(t transport, msg []byte) {
	t.Send(msg)
}

// --- borrowed results ---

var scratchArr [64]byte

// scratchResult returns scratch that is valid only until the next call.
//
//ham:borrowed return
func scratchResult() []byte {
	return scratchArr[:0]
}

func stashScratch(s *sink) {
	r := scratchResult()
	s.buf = r // want `borrowed result of borrowfix\.scratchResult stored into struct field s\.buf`
}

func consumeScratch() int {
	return len(scratchResult())
}

func badReturnScratch() []byte {
	return scratchResult() // want `borrowed result of borrowfix\.scratchResult returned from a function not annotated`
}

// An annotated function may pass the borrow outward.
//
//ham:borrowed return
func okReturnScratch() []byte {
	return scratchResult()
}

func consume([]byte) {}
