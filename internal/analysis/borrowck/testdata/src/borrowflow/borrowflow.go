// Package borrowflow exercises the dataflow-solver corner cases of borrowck:
// alias facts crossing branch joins and loop back edges, kills that must (and
// must not) survive the union join, independence of an alias's fact from its
// root, and defer-discharged uses.
package borrowflow

type sink struct{ buf []byte }

var global []byte

// A reslice chain keeps the taint across multiple hops.
//
//ham:borrowed msg
func resliceChain(s *sink, msg []byte) {
	a := msg[4:]
	b := a[2:10]
	c := b[:4]
	s.buf = c // want `borrowed buffer "msg" stored into struct field s\.buf`
}

// A kill on one branch does not clear the fact: the join is a union, so the
// alias may still carry the borrow on the fall-through path.
//
//ham:borrowed msg
func branchKill(s *sink, msg []byte, cond bool) {
	x := msg[4:]
	if cond {
		x = make([]byte, 8)
	}
	s.buf = x // want `borrowed buffer "msg" stored into struct field s\.buf`
}

// A kill on every path does clear the fact at the join.
//
//ham:borrowed msg
func fullKill(s *sink, msg []byte, cond bool) {
	x := msg[4:]
	if cond {
		x = make([]byte, 8)
	} else {
		x = append([]byte(nil), x...)
	}
	s.buf = x
}

// An alias created inside a loop body escapes on the next iteration: the
// fact must ride the back edge into the loop head.
//
//ham:borrowed msg
func loopCarried(s *sink, msg []byte, n int) {
	var x []byte
	for i := 0; i < n; i++ {
		s.buf = x // want `borrowed buffer "msg" stored into struct field s\.buf`
		x = msg[i:]
	}
}

// Reassigning an alias kills its fact without touching the root's.
//
//ham:borrowed msg
func aliasReassign(s *sink, msg []byte) {
	x := msg[4:]
	x = []byte("owned")
	s.buf = x
	global = msg // want `borrowed buffer "msg" stored into package-level variable global`
}

// Deferred literals and calls discharge before the borrow window closes:
// reads through them are quiet.
//
//ham:borrowed msg
func deferredRead(msg []byte) (n int) {
	defer func() { n += len(msg) }()
	x := msg[:2]
	defer consume(x)
	return 0
}

func consume([]byte) {}
