// Package borrowck tracks borrowed byte buffers interprocedurally and
// reports escapes from their validity window.
//
// The zero-copy wire path of this repository rests on ownership contracts
// that are stated in doc comments: Backend.Call may read msg only for the
// duration of the call, Dispatch responses alias scratch and are valid only
// until the next Dispatch, codec Reset re-targets a decoder at a caller's
// buffer. borrowck mechanises those contracts. A parameter named in a
// //ham:borrowed annotation is a borrowed buffer: the function may read it
// and pass it on, but must not store it (or any reslice/alias of it) into a
// struct field, package-level variable, map, channel, captured closure or
// goroutine argument, must not append it as an element into another slice,
// and may return it only when the function itself is annotated
// `//ham:borrowed ... return`. Copying kills the fact: copy(dst, b),
// bytes.Clone(b), string(b) and append(dst, b...) all produce owned memory.
// A //ham:owned annotation on a callee parameter marks deliberate transfer
// of ownership — passing a borrowed buffer there is a diagnostic, passing
// owned memory is the sanctioned hand-off.
//
// Annotations on interface methods (Backend.Call, Server.Dispatch) propagate
// to every implementation by parameter index through the CHA table, so a new
// backend inherits the contract without writing anything. Functions without
// annotations are summarised: if stash(b) stores b into a global, a caller
// passing a borrowed buffer to stash gets the diagnostic at its own call
// site, with the full hop chain to the deep store.
//
// Closures carry the taint of what they capture: storing, sending or
// returning a literal that captures a borrowed buffer reports, as does
// launching one on a goroutine; a literal merely passed as a call argument
// (the walk/visitor callback idiom) runs within the window and stays quiet.
//
// Approximations, in the conservative-but-quiet direction: directly invoked
// and deferred function literals discharge within the validity window and
// are not walked; receivers and non-[]byte aggregates do not carry facts
// across call boundaries; summary cycles resolve optimistically.
package borrowck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"hamoffload/internal/analysis"
	"hamoffload/internal/analysis/callgraph"
	"hamoffload/internal/analysis/cfg"
)

var Analyzer = &analysis.Analyzer{
	Name:      "borrowck",
	Doc:       "borrowed byte buffers (//ham:borrowed) must not escape their validity window: no stores to fields/globals/maps/channels, no closure captures or goroutine hand-offs, no element appends, no unannotated returns; copy/bytes.Clone kill the fact, //ham:owned transfers ownership",
	RunModule: runModule,
}

const (
	markerBorrowed = "ham:borrowed"
	markerOwned    = "ham:owned"
	maxOrigins     = 64
)

// annotation is the parsed ownership contract of one function, keyed by
// parameter index so interface annotations can propagate to implementations
// whose parameters are unnamed or named differently.
type annotation struct {
	borrowed map[int]bool
	owned    map[int]bool
	ret      bool // result is borrowed (valid-until-next-call scratch or alias of a borrowed param)
}

func (a *annotation) empty() bool {
	return a == nil || (len(a.borrowed) == 0 && len(a.owned) == 0 && !a.ret)
}

func mergeAnn(dst, src *annotation) *annotation {
	if src.empty() {
		return dst
	}
	if dst == nil {
		dst = &annotation{borrowed: map[int]bool{}, owned: map[int]bool{}}
	}
	for i := range src.borrowed {
		dst.borrowed[i] = true
	}
	for i := range src.owned {
		dst.owned[i] = true
	}
	dst.ret = dst.ret || src.ret
	return dst
}

// escInfo describes how a parameter escapes inside a function, for
// propagation to call sites.
type escInfo struct {
	what  string   // "stored into struct field d.buf"
	site  string   // file:line of the deep store
	chain []string // callee hop names below the recording function
}

// summary is the interprocedural digest of one function body.
type summary struct {
	escapes  map[int]*escInfo // param index -> first escape
	returned map[int]bool     // param index may alias a returned value
}

type funcInfo struct {
	name       string // types.Func.FullName of the declared function
	pkg        *analysis.Package
	decl       *ast.FuncDecl
	paramNames []string
	paramTypes []types.Type
}

type checker struct {
	pass     *analysis.ModulePass
	impls    *callgraph.ImplTable
	info     map[string]*funcInfo
	order    []string
	anns     map[string]*annotation // by full function name; includes interface methods
	sums     map[string]*summary
	active   map[string]bool // summary computation in progress (cycle break)
	reported map[string]bool // pos + origin desc
}

func runModule(pass *analysis.ModulePass) error {
	c := &checker{
		pass:     pass,
		impls:    callgraph.NewImplTable(pass.Pkgs),
		info:     map[string]*funcInfo{},
		anns:     map[string]*annotation{},
		sums:     map[string]*summary{},
		active:   map[string]bool{},
		reported: map[string]bool{},
	}
	c.collect()
	for _, name := range c.order {
		c.analyze(name)
	}
	return nil
}

// collect indexes every declared function body and parses //ham:borrowed
// and //ham:owned annotations, including interface method annotations which
// propagate to all implementations by parameter index.
func (c *checker) collect() {
	for _, pkg := range c.pass.Pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					c.collectFunc(pkg, d)
				case *ast.GenDecl:
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						if _, ok := ts.Type.(*ast.InterfaceType); ok {
							c.collectInterface(pkg, ts)
						}
					}
				}
			}
		}
	}
}

func (c *checker) collectFunc(pkg *analysis.Package, d *ast.FuncDecl) {
	if d.Body == nil {
		return
	}
	obj, ok := pkg.TypesInfo.Defs[d.Name].(*types.Func)
	if !ok {
		return
	}
	name := obj.FullName()
	names, ptypes := fieldListParams(pkg, d.Type.Params)
	c.info[name] = &funcInfo{name: name, pkg: pkg, decl: d, paramNames: names, paramTypes: ptypes}
	c.order = append(c.order, name)
	if ann := c.parseAnn(pkg, d.Doc, names); !ann.empty() {
		c.anns[name] = mergeAnn(c.anns[name], ann)
	}
}

// collectInterface registers annotations written on interface method doc
// comments — under the interface method's own name (consulted at dynamic
// call sites) and under every implementation found by the CHA table.
func (c *checker) collectInterface(pkg *analysis.Package, ts *ast.TypeSpec) {
	tn, ok := pkg.TypesInfo.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	iface, ok := tn.Type().Underlying().(*types.Interface)
	if !ok {
		return
	}
	it := ts.Type.(*ast.InterfaceType)
	for _, f := range it.Methods.List {
		if len(f.Names) != 1 || f.Doc == nil {
			continue
		}
		ft, ok := f.Type.(*ast.FuncType)
		if !ok {
			continue
		}
		names, _ := fieldListParams(pkg, ft.Params)
		ann := c.parseAnn(pkg, f.Doc, names)
		if ann.empty() {
			continue
		}
		mfn, ok := pkg.TypesInfo.Defs[f.Names[0]].(*types.Func)
		if !ok {
			continue
		}
		c.anns[mfn.FullName()] = mergeAnn(c.anns[mfn.FullName()], ann)
		for _, impl := range c.impls.Methods(iface, mfn) {
			n := impl.Origin().FullName()
			c.anns[n] = mergeAnn(c.anns[n], ann)
		}
	}
}

// parseAnn extracts //ham:borrowed and //ham:owned lines from a doc comment.
// Each names parameters of the annotated function; "return" in a borrowed
// line marks the result borrowed.
func (c *checker) parseAnn(pkg *analysis.Package, doc *ast.CommentGroup, paramNames []string) *annotation {
	if doc == nil {
		return nil
	}
	var ann *annotation
	for _, cm := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
		var marker string
		switch {
		case strings.HasPrefix(text, markerBorrowed):
			marker = markerBorrowed
		case strings.HasPrefix(text, markerOwned):
			marker = markerOwned
		default:
			continue
		}
		if ann == nil {
			ann = &annotation{borrowed: map[int]bool{}, owned: map[int]bool{}}
		}
		for _, f := range strings.Fields(strings.TrimPrefix(text, marker)) {
			if f == "return" && marker == markerBorrowed {
				ann.ret = true
				continue
			}
			idx := -1
			for i, n := range paramNames {
				if n == f {
					idx = i
					break
				}
			}
			if idx < 0 {
				c.pass.Reportf(cm.Pos(), "//%s names %q, which is not a parameter of the annotated function", marker, f)
				continue
			}
			if marker == markerBorrowed {
				ann.borrowed[idx] = true
			} else {
				ann.owned[idx] = true
			}
		}
	}
	return ann
}

// fieldListParams expands a parameter field list into parallel name and type
// slices (grouped declarations expanded, unnamed parameters as "").
func fieldListParams(pkg *analysis.Package, fl *ast.FieldList) ([]string, []types.Type) {
	var names []string
	var ptypes []types.Type
	if fl == nil {
		return nil, nil
	}
	for _, f := range fl.List {
		t := pkg.TypesInfo.TypeOf(f.Type)
		if len(f.Names) == 0 {
			names = append(names, "")
			ptypes = append(ptypes, t)
			continue
		}
		for _, n := range f.Names {
			names = append(names, n.Name)
			ptypes = append(ptypes, t)
		}
	}
	return names, ptypes
}

func (c *checker) annOf(name string) *annotation { return c.anns[name] }

// analyze runs the dataflow over one function body, emitting diagnostics for
// borrowed origins and recording a summary for unannotated parameters. It is
// memoized; cycles resolve to the optimistic in-progress summary.
func (c *checker) analyze(name string) *summary {
	if s, ok := c.sums[name]; ok {
		return s
	}
	fi := c.info[name]
	if fi == nil {
		return nil
	}
	s := &summary{escapes: map[int]*escInfo{}, returned: map[int]bool{}}
	c.sums[name] = s
	c.active[name] = true
	defer delete(c.active, name)

	ng := &engine{c: c, fi: fi, ann: c.annOf(name), sum: s, resOrigin: map[token.Pos]int{}}
	entry := state{}
	for i, pname := range fi.paramNames {
		if pname == "" || pname == "_" || !isByteSlice(fi.paramTypes[i]) {
			continue
		}
		if ng.ann != nil && ng.ann.owned[i] {
			continue // owned inside: the function may retain it
		}
		borrowed := ng.ann != nil && ng.ann.borrowed[i]
		bit := ng.addOrigin(origin{param: i, borrowed: borrowed, desc: fmt.Sprintf("buffer %q", pname)})
		if bit != 0 {
			entry[pname] = bit
		}
	}
	ng.prepRanges(fi.decl.Body)

	g := cfg.New(fi.decl.Body)
	res := cfg.Forward(g, cfg.Problem[state]{
		Entry:    entry,
		Transfer: ng.transfer,
		Join:     joinState,
		Equal:    equalState,
	})
	ng.emit = true
	for _, b := range g.Blocks {
		in, ok := res.In[b]
		if !ok {
			continue // unreachable
		}
		ng.transfer(b, in)
	}
	return s
}

// summaryOf returns the summary of a callee with a body, or nil for
// functions outside the module (assumed non-retaining).
func (c *checker) summaryOf(name string) *summary {
	if c.active[name] {
		return c.sums[name] // optimistic partial summary for cycles
	}
	if c.info[name] == nil {
		return nil
	}
	return c.analyze(name)
}

// --- dataflow state ---

// state maps local variable names to origin bitmasks. Zero masks are never
// stored. Keying by name (rather than object) trades shadowing precision for
// simplicity, matching the other dataflow analyzers in this module.
type state map[string]uint64

func cloneState(s state) state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func joinState(a, b state) state {
	out := cloneState(a)
	for k, v := range b {
		out[k] |= v
	}
	return out
}

func equalState(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

type origin struct {
	param    int // parameter index, or -1 for a borrowed call result
	borrowed bool
	desc     string
}

type engine struct {
	c         *checker
	fi        *funcInfo
	ann       *annotation
	sum       *summary
	origins   []origin
	resOrigin map[token.Pos]int     // call pos -> origin index (stable across solver iterations)
	rangeVal  map[ast.Expr]ast.Expr // range Key/Value expr -> range X
	emit      bool                  // replay phase: report and record
}

func (ng *engine) addOrigin(o origin) uint64 {
	if len(ng.origins) >= maxOrigins {
		return 0 // beyond capacity: untracked (quiet, not wrong reports)
	}
	ng.origins = append(ng.origins, o)
	return 1 << (len(ng.origins) - 1)
}

// resultOriginBit returns the stable origin bit for a borrowed-result call
// site, allocating it on first encounter.
func (ng *engine) resultOriginBit(pos token.Pos, callee string) uint64 {
	if i, ok := ng.resOrigin[pos]; ok {
		return 1 << i
	}
	bit := ng.addOrigin(origin{param: -1, borrowed: true, desc: "result of " + callee})
	if bit != 0 {
		ng.resOrigin[pos] = len(ng.origins) - 1
	}
	return bit
}

// prepRanges maps range-clause Key/Value expressions to the ranged operand,
// so the per-node transfer (which sees the head expressions individually)
// can bind element aliases: `for _, sub := range subs` taints sub with subs'
// mask.
func (ng *engine) prepRanges(body *ast.BlockStmt) {
	ng.rangeVal = map[ast.Expr]ast.Expr{}
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if rs, ok := n.(*ast.RangeStmt); ok {
			if rs.Key != nil {
				ng.rangeVal[rs.Key] = rs.X
			}
			if rs.Value != nil {
				ng.rangeVal[rs.Value] = rs.X
			}
		}
		return true
	})
}

func (ng *engine) transfer(b *cfg.Block, in state) state {
	st := cloneState(in)
	for _, n := range b.Nodes {
		ng.node(st, n)
	}
	return st
}

func (ng *engine) node(st state, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		ng.assign(st, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					var m uint64
					if i < len(vs.Values) {
						m = ng.eval(st, vs.Values[i])
					}
					ng.store(st, name, m)
				}
			}
		}
	case *ast.ReturnStmt:
		ng.ret(st, n)
	case *ast.ExprStmt:
		ng.eval(st, n.X)
	case *ast.SendStmt:
		ng.eval(st, n.Chan)
		if m := ng.eval(st, n.Value); m != 0 {
			ng.escape(m, "sent on a channel", n.Value.Pos(), "", nil)
		}
	case *ast.GoStmt:
		ng.goStmt(st, n)
	case *ast.DeferStmt:
		// Deferred calls discharge before the function returns, inside the
		// borrow's validity window — not an escape.
	case *ast.IncDecStmt:
		ng.eval(st, n.X)
	case ast.Expr:
		if x, ok := ng.rangeVal[n]; ok {
			m := ng.eval(st, x)
			if id, ok := n.(*ast.Ident); ok && id.Name != "_" {
				if isSliceOfSlices(ng.fi.pkg.TypesInfo.TypeOf(x)) {
					ng.setMask(st, id.Name, m)
				} else {
					ng.setMask(st, id.Name, 0)
				}
			}
			return
		}
		ng.eval(st, n)
	}
}

func (ng *engine) assign(st state, as *ast.AssignStmt) {
	// Multi-value RHS: one call/type-assert producing several results.
	if len(as.Lhs) > 1 && len(as.Rhs) == 1 {
		m := ng.eval(st, as.Rhs[0])
		for _, l := range as.Lhs {
			lm := m
			if lm != 0 && !trackable(ng.fi.pkg.TypesInfo.TypeOf(l)) {
				lm = 0 // an ok/err result cannot carry the buffer
			}
			ng.store(st, l, lm)
		}
		return
	}
	for i, l := range as.Lhs {
		if i >= len(as.Rhs) {
			break
		}
		ng.store(st, l, ng.eval(st, as.Rhs[i]))
	}
}

// store applies an assignment of mask m to an lvalue: locals gen/kill the
// fact, everything longer-lived is an escape.
func (ng *engine) store(st state, lhs ast.Expr, m uint64) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		if v, ok := ng.objOf(l).(*types.Var); ok && isPkgLevel(v) {
			if m != 0 {
				ng.escape(m, "stored into package-level variable "+l.Name, l.Pos(), "", nil)
			}
			return
		}
		ng.setMask(st, l.Name, m)
	case *ast.SelectorExpr:
		ng.eval(st, l.X)
		if m == 0 {
			return
		}
		if v, ok := ng.fi.pkg.TypesInfo.Uses[l.Sel].(*types.Var); ok && isPkgLevel(v) {
			ng.escape(m, "stored into package-level variable "+l.Sel.Name, l.Pos(), "", nil)
			return
		}
		ng.escape(m, "stored into struct field "+types.ExprString(l), l.Pos(), "", nil)
	case *ast.IndexExpr:
		ng.eval(st, l.Index)
		xt := ng.fi.pkg.TypesInfo.TypeOf(l.X)
		if _, isMap := typeUnder(xt).(*types.Map); isMap {
			ng.eval(st, l.X)
			if m != 0 {
				ng.escape(m, "stored into a map", l.Pos(), "", nil)
			}
			return
		}
		// Element store into a local slice taints the container; if the
		// container later escapes, the escape reports there.
		if id, ok := ast.Unparen(l.X).(*ast.Ident); ok {
			if v, ok := ng.objOf(id).(*types.Var); !ok || !isPkgLevel(v) {
				ng.setMask(st, id.Name, st[id.Name]|m)
				return
			}
		}
		ng.eval(st, l.X)
		if m != 0 {
			ng.escape(m, "stored into an element of a longer-lived slice", l.Pos(), "", nil)
		}
	case *ast.StarExpr:
		ng.eval(st, l.X)
		if m != 0 {
			ng.escape(m, "stored through a pointer", l.Pos(), "", nil)
		}
	default:
		ng.eval(st, lhs)
	}
}

func (ng *engine) setMask(st state, name string, m uint64) {
	if m == 0 {
		delete(st, name)
		return
	}
	st[name] = m
}

func (ng *engine) ret(st state, rs *ast.ReturnStmt) {
	for _, e := range rs.Results {
		m := ng.eval(st, e)
		if m == 0 || !ng.emit {
			continue
		}
		for i := range ng.origins {
			if m&(1<<i) == 0 {
				continue
			}
			o := ng.origins[i]
			if o.param >= 0 && !o.borrowed {
				// Unannotated parameter flowing to a result: callers'
				// results alias their argument (the openFlow pattern).
				ng.sum.returned[o.param] = true
				continue
			}
			if ng.ann != nil && ng.ann.ret {
				continue // declared: this function returns borrowed memory
			}
			ng.reportOrigin(o, "returned from a function not annotated \"//ham:borrowed ... return\"", e.Pos(), "", nil)
		}
	}
}

func (ng *engine) goStmt(st state, g *ast.GoStmt) {
	call := g.Call
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		ng.checkCaptures(st, lit, "captured by a goroutine closure")
	} else {
		ng.eval(st, call.Fun)
	}
	for _, a := range call.Args {
		if m := ng.eval(st, a); m != 0 {
			ng.escape(m, "passed to a goroutine", a.Pos(), "", nil)
		}
	}
}

// eval computes the origin mask of an expression, reporting escapes and
// interprocedural violations found along the way.
func (ng *engine) eval(st state, e ast.Expr) uint64 {
	switch e := e.(type) {
	case nil:
		return 0
	case *ast.Ident:
		return st[e.Name]
	case *ast.ParenExpr:
		return ng.eval(st, e.X)
	case *ast.SliceExpr:
		ng.eval(st, e.Low)
		ng.eval(st, e.High)
		ng.eval(st, e.Max)
		return ng.eval(st, e.X) // a reslice aliases the same backing array
	case *ast.UnaryExpr:
		return ng.eval(st, e.X) // &x carries x's taint
	case *ast.StarExpr:
		return ng.eval(st, e.X)
	case *ast.CompositeLit:
		var m uint64
		for _, el := range e.Elts {
			m |= ng.eval(st, el)
		}
		return m // aggregate carrying a borrowed buffer is tainted as a whole
	case *ast.KeyValueExpr:
		ng.eval(st, e.Key)
		return ng.eval(st, e.Value)
	case *ast.CallExpr:
		return ng.call(st, e)
	case *ast.IndexExpr:
		ng.eval(st, e.Index)
		return ng.eval(st, e.X) // element of a tainted container
	case *ast.IndexListExpr:
		return ng.eval(st, e.X)
	case *ast.SelectorExpr:
		ng.eval(st, e.X)
		return 0 // field reads yield unknown (owned) memory
	case *ast.BinaryExpr:
		ng.eval(st, e.X)
		ng.eval(st, e.Y)
		return 0
	case *ast.TypeAssertExpr:
		return ng.eval(st, e.X)
	case *ast.FuncLit:
		// The literal is tainted by what it captures; the escape (if any)
		// reports where the closure value itself escapes — stored, sent,
		// returned or launched. A literal merely passed as a call argument
		// (the walk/visitor idiom) runs within the window and stays quiet.
		return ng.captureMask(st, e)
	}
	return 0
}

// checkCaptures reports borrowed variables captured by a goroutine literal,
// which escapes the window by construction.
func (ng *engine) checkCaptures(st state, lit *ast.FuncLit, what string) {
	seen := map[string]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := ng.fi.pkg.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || isPkgLevel(v) || seen[v.Name()] {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		if m := st[v.Name()]; m != 0 {
			seen[v.Name()] = true
			ng.escape(m, what, id.Pos(), "", nil)
		}
		return true
	})
}

// captureMask unions the masks of the borrowed outer variables a function
// literal captures, tainting the closure value itself.
func (ng *engine) captureMask(st state, lit *ast.FuncLit) uint64 {
	var mask uint64
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := ng.fi.pkg.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || isPkgLevel(v) {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal
		}
		mask |= st[v.Name()]
		return true
	})
	return mask
}

func (ng *engine) call(st state, call *ast.CallExpr) uint64 {
	info := ng.fi.pkg.TypesInfo

	// Type conversion: string(b) and []T(b) to an unrelated element copy or
	// re-type; conversions between byte-slice types alias the same array.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		m := ng.eval(st, call.Args[0])
		if isByteSlice(info.TypeOf(call.Args[0])) && isByteSlice(tv.Type) {
			return m
		}
		return 0
	}

	// Builtins: append aliases/copies per form; copy produces owned bytes.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			if id.Name == "append" {
				return ng.appendCall(st, call)
			}
			for _, a := range call.Args {
				ng.eval(st, a)
			}
			return 0
		}
	}

	// Directly invoked literal: runs here, inside the window.
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		for _, a := range call.Args {
			ng.eval(st, a)
		}
		return 0
	}

	// Resolve callees: static calls plus CHA fan-out at interface calls.
	var callees []*types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			callees = append(callees, fn)
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if fn, ok := sel.Obj().(*types.Func); ok {
				callees = append(callees, fn)
				if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
					callees = append(callees, ng.c.impls.Methods(iface, fn)...)
				}
			}
		} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			callees = append(callees, fn)
		}
		ng.eval(st, fun.X)
	default:
		ng.eval(st, call.Fun)
	}

	// bytes.Clone / slices.Clone return fresh memory: the fact dies.
	for _, fn := range callees {
		if p := fn.Pkg(); p != nil && fn.Name() == "Clone" && (p.Path() == "bytes" || p.Path() == "slices") {
			for _, a := range call.Args {
				ng.eval(st, a)
			}
			return 0
		}
	}

	argMasks := make([]uint64, len(call.Args))
	for i, a := range call.Args {
		argMasks[i] = ng.eval(st, a)
	}

	var res uint64
	for _, fn := range callees {
		name := fn.Origin().FullName()
		ann := ng.c.annOf(name)
		sum := ng.c.summaryOf(name)
		sig, _ := fn.Type().(*types.Signature)
		nparams := 0
		if sig != nil {
			nparams = sig.Params().Len()
		}
		for i, m := range argMasks {
			if m == 0 || !isByteSlice(info.TypeOf(call.Args[i])) {
				continue // only byte buffers carry the contract across calls
			}
			pi := i
			if sig != nil && sig.Variadic() && pi >= nparams-1 {
				pi = nparams - 1
			}
			if pi >= nparams {
				continue
			}
			switch {
			case ann != nil && ann.owned[pi]:
				ng.escape(m, fmt.Sprintf("passed to %s, whose parameter takes ownership (//ham:owned); copy before handing it off", shortName(name)), call.Args[i].Pos(), "", nil)
			case ann != nil && ann.borrowed[pi]:
				// The callee borrows and is checked on its own.
			case sum != nil:
				if esc := sum.escapes[pi]; esc != nil {
					ng.escape(m, esc.what, call.Args[i].Pos(), esc.site, append([]string{shortName(name)}, esc.chain...))
				}
				if sum.returned[pi] {
					res |= m // result aliases the argument
				}
			default:
				// No body in the module: assumed non-retaining, owned result.
			}
		}
		if ann != nil && ann.ret {
			res |= ng.resultOriginBit(call.Pos(), shortName(name))
		}
	}
	return res
}

func (ng *engine) appendCall(st state, call *ast.CallExpr) uint64 {
	if len(call.Args) == 0 {
		return 0
	}
	dst := ng.eval(st, call.Args[0])
	if call.Ellipsis.IsValid() {
		if len(call.Args) == 2 {
			ng.eval(st, call.Args[1]) // bytes copied out element-wise: kill
		}
		return dst
	}
	for _, a := range call.Args[1:] {
		m := ng.eval(st, a)
		if m != 0 && isByteSlice(ng.fi.pkg.TypesInfo.TypeOf(a)) {
			// Reported here, at the root cause; the container is not
			// re-tainted, so the store of the grown slice stays quiet.
			ng.escape(m, "appended as an element into another slice (the element aliases the borrowed buffer)", a.Pos(), "", nil)
		}
	}
	return dst
}

// escape reports borrowed origins in mask m and records unannotated
// parameter origins into the summary for call-site propagation.
func (ng *engine) escape(m uint64, what string, pos token.Pos, site string, chain []string) {
	if !ng.emit || m == 0 {
		return
	}
	for i := range ng.origins {
		if m&(1<<i) == 0 {
			continue
		}
		o := ng.origins[i]
		if o.borrowed || o.param < 0 {
			ng.reportOrigin(o, what, pos, site, chain)
			continue
		}
		if ng.sum.escapes[o.param] == nil {
			s := site
			if s == "" {
				s = ng.c.pass.Fset.Position(pos).String()
			}
			ng.sum.escapes[o.param] = &escInfo{what: what, site: s, chain: chain}
		}
	}
}

func (ng *engine) reportOrigin(o origin, what string, pos token.Pos, site string, chain []string) {
	key := fmt.Sprintf("%d|%s|%s", pos, o.desc, what)
	if ng.c.reported[key] {
		return
	}
	ng.c.reported[key] = true
	full := append([]string{shortName(ng.fi.name)}, chain...)
	msg := fmt.Sprintf("borrowed %s %s", o.desc, what)
	if site != "" {
		msg += " at " + site
	}
	msg += " (chain: " + strings.Join(full, " → ") + ")"
	ng.c.pass.Reportf(pos, "%s", msg)
}

func (ng *engine) objOf(id *ast.Ident) types.Object {
	info := ng.fi.pkg.TypesInfo
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}

// --- type helpers ---

func typeUnder(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	return t.Underlying()
}

func isByteSlice(t types.Type) bool {
	sl, ok := typeUnder(t).(*types.Slice)
	if !ok {
		return false
	}
	b, ok := typeUnder(sl.Elem()).(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Uint8)
}

func isSliceOfSlices(t types.Type) bool {
	sl, ok := typeUnder(t).(*types.Slice)
	if !ok {
		return false
	}
	_, ok = typeUnder(sl.Elem()).(*types.Slice)
	return ok
}

// trackable reports whether a value of type t can carry a buffer alias:
// slices, pointers, interfaces, structs, channels and maps can; scalars,
// strings and functions cannot.
func trackable(t types.Type) bool {
	switch u := typeUnder(t).(type) {
	case *types.Slice, *types.Pointer, *types.Interface, *types.Struct, *types.Chan, *types.Map, *types.Array:
		return true
	case *types.Basic:
		_ = u
		return false
	}
	return false
}

func isPkgLevel(v *types.Var) bool {
	if v.IsField() {
		return false
	}
	if p := v.Pkg(); p != nil && v.Parent() == p.Scope() {
		return true
	}
	return false
}

// shortName trims the module path prefix out of a full function name so
// diagnostics stay readable: (*hamoffload/internal/ham.Binary).Dispatch
// becomes (*ham.Binary).Dispatch.
func shortName(full string) string {
	return strings.NewReplacer("hamoffload/internal/", "", "hamoffload/", "").Replace(full)
}
