package ib

import (
	"testing"

	"hamoffload/internal/simtime"
	"hamoffload/internal/units"
)

func TestSendLatencyAndBandwidth(t *testing.T) {
	eng := simtime.NewEngine()
	f, err := NewFabric(eng, 2, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var small, large simtime.Duration
	eng.Spawn("sender", func(p *simtime.Proc) {
		s := p.Now()
		if err := f.Send(p, 0, 1, 8); err != nil {
			t.Error(err)
		}
		small = p.Now().Sub(s)
		s = p.Now()
		if err := f.Send(p, 0, 1, (64 * units.MiB).Int64()); err != nil {
			t.Error(err)
		}
		large = p.Now().Sub(s)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Small message ≈ latency + overheads ≈ 2.1 µs.
	if us := small.Microseconds(); us < 1.5 || us > 3 {
		t.Errorf("small message = %.2f us, want ≈2", us)
	}
	// Large message bandwidth ≈ 11 GiB/s.
	gibps := 64.0 / large.Seconds() / 1024
	if gibps < 10 || gibps > 11.5 {
		t.Errorf("large message bandwidth = %.2f GiB/s, want ≈11", gibps)
	}
	if f.Moved(0, 1) != 8+(64*units.MiB).Int64() {
		t.Errorf("Moved = %d", f.Moved(0, 1))
	}
	if f.Moved(1, 0) != 0 {
		t.Error("reverse direction should be untouched")
	}
}

func TestConcurrentSendsShareChannel(t *testing.T) {
	eng := simtime.NewEngine()
	f, err := NewFabric(eng, 2, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	n := (16 * units.MiB).Int64()
	var t1, t2 simtime.Time
	eng.Spawn("a", func(p *simtime.Proc) {
		if err := f.Send(p, 0, 1, n); err != nil {
			t.Error(err)
		}
		t1 = p.Now()
	})
	eng.Spawn("b", func(p *simtime.Proc) {
		if err := f.Send(p, 0, 1, n); err != nil {
			t.Error(err)
		}
		t2 = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if t2 < t1+simtime.Time(simtime.BytesOver(n, DefaultParams().Bandwidth))/2 {
		t.Errorf("same-channel sends did not serialize: %v vs %v", t1, t2)
	}
}

func TestDistinctRoutesIndependent(t *testing.T) {
	eng := simtime.NewEngine()
	f, err := NewFabric(eng, 3, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	n := (16 * units.MiB).Int64()
	var t1, t2 simtime.Time
	eng.Spawn("a", func(p *simtime.Proc) {
		if err := f.Send(p, 0, 1, n); err != nil {
			t.Error(err)
		}
		t1 = p.Now()
	})
	eng.Spawn("b", func(p *simtime.Proc) {
		if err := f.Send(p, 0, 2, n); err != nil {
			t.Error(err)
		}
		t2 = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Errorf("independent routes should finish together: %v vs %v", t1, t2)
	}
}

func TestValidation(t *testing.T) {
	eng := simtime.NewEngine()
	if _, err := NewFabric(eng, 1, DefaultParams()); err == nil {
		t.Error("single-host fabric accepted")
	}
	bad := DefaultParams()
	bad.Bandwidth = 0
	if _, err := NewFabric(eng, 2, bad); err == nil {
		t.Error("zero bandwidth accepted")
	}
	f, err := NewFabric(eng, 2, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	eng.Spawn("main", func(p *simtime.Proc) {
		if err := f.Send(p, 0, 0, 8); err == nil {
			t.Error("self-send accepted")
		}
		if err := f.Send(p, 0, 5, 8); err == nil {
			t.Error("out-of-range destination accepted")
		}
		if err := f.Send(p, 0, 1, -1); err == nil {
			t.Error("negative size accepted")
		}
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
