// Package ib models the optional InfiniBand interconnect of Fig. 3 between
// Vector Hosts of different SX-Aurora nodes. The paper's outlook (§VI)
// anticipates heterogeneous MPI jobs spanning hosts and VEs across nodes —
// "HAM-Offload applications will also benefit from remote offloading
// capabilities, again without changes in the application code". The mpib
// backend builds exactly that on this link model.
package ib

import (
	"fmt"

	"hamoffload/internal/simtime"
	"hamoffload/internal/units"
)

// Params describes one InfiniBand HCA/link (EDR 4x defaults).
type Params struct {
	// Latency is the one-way MPI-level latency between two hosts (wire +
	// HCA + software stack).
	Latency simtime.Duration
	// Bandwidth is the sustained payload bandwidth in bytes/second.
	Bandwidth float64
	// PerMessage is the per-message CPU overhead on each side (matching,
	// completion handling).
	PerMessage simtime.Duration
	// MTU is the message chunk size for serialization modelling.
	MTU units.Bytes
}

// DefaultParams returns EDR-class numbers: ~1.5 µs latency, ~11 GiB/s.
func DefaultParams() Params {
	return Params{
		Latency:    1500 * simtime.Nanosecond,
		Bandwidth:  11 * float64(units.GiB),
		PerMessage: 300 * simtime.Nanosecond,
		MTU:        4 * units.KiB,
	}
}

// Validate rejects non-physical parameters.
func (p Params) Validate() error {
	if p.Latency <= 0 || p.Bandwidth < 1 || p.MTU <= 0 || p.PerMessage < 0 {
		return fmt.Errorf("ib: invalid parameters %+v", p)
	}
	return nil
}

// Fabric is a full-crossbar IB network between n hosts: each ordered pair
// has an independent send channel (send-side serialization), which models a
// non-blocking switch well enough for host counts this small.
type Fabric struct {
	params Params
	n      int
	chans  []*simtime.Resource // [src*n+dst]
	moved  []int64
}

// NewFabric creates the network for n hosts.
func NewFabric(eng *simtime.Engine, n int, p Params) (*Fabric, error) {
	if n < 2 {
		return nil, fmt.Errorf("ib: need at least 2 hosts, got %d", n)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{params: p, n: n,
		chans: make([]*simtime.Resource, n*n),
		moved: make([]int64, n*n)}
	for s := 0; s < n; s++ {
		for d := 0; d < n; d++ {
			f.chans[s*n+d] = simtime.NewResource(eng, fmt.Sprintf("ib-%d-%d", s, d))
		}
	}
	return f, nil
}

// Hosts returns the number of hosts in the fabric.
func (f *Fabric) Hosts() int { return f.n }

// Send models an eager-protocol message of n payload bytes from src to dst:
// per-message overhead, serialization on the (src,dst) channel, propagation.
// The calling process is the sender; the function returns when the payload
// has arrived at dst (rendezvous-style completion, which is what a blocking
// forwarding proxy needs).
func (f *Fabric) Send(p *simtime.Proc, src, dst int, n int64) error {
	if src == dst || src < 0 || dst < 0 || src >= f.n || dst >= f.n {
		return fmt.Errorf("ib: bad route %d -> %d", src, dst)
	}
	if n < 0 {
		return fmt.Errorf("ib: negative message size %d", n)
	}
	ch := f.chans[src*f.n+dst]
	p.Sleep(f.params.PerMessage)
	wire := simtime.BytesOver(n, f.params.Bandwidth)
	ch.Use(p, wire)
	p.Sleep(f.params.Latency + f.params.PerMessage)
	f.moved[src*f.n+dst] += n
	return nil
}

// Moved returns the payload bytes sent from src to dst.
func (f *Fabric) Moved(src, dst int) int64 {
	if src < 0 || dst < 0 || src >= f.n || dst >= f.n {
		return 0
	}
	return f.moved[src*f.n+dst]
}
