package veos

import (
	"testing"

	"hamoffload/internal/dma"
	"hamoffload/internal/hostmem"
	"hamoffload/internal/pcie"
	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
	"hamoffload/internal/units"
	"hamoffload/internal/vemem"
)

type rig struct {
	eng  *simtime.Engine
	tm   topology.Timing
	host *hostmem.Host
	card *Card
}

func newRig(t *testing.T) *rig {
	t.Helper()
	eng := simtime.NewEngine()
	tm := topology.DefaultTiming()
	host, err := hostmem.New("vh", 2*units.GiB, tm.HostPageSize)
	if err != nil {
		t.Fatal(err)
	}
	veMem, err := vemem.New("ve0", 4*units.GiB)
	if err != nil {
		t.Fatal(err)
	}
	fab, err := pcie.NewFabric(eng, topology.A300_8(), tm)
	if err != nil {
		t.Fatal(err)
	}
	path, err := fab.PathFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	card := NewCard(eng, 0, tm, host, veMem, path, dma.TranslateBulk4DMA)
	return &rig{eng: eng, tm: tm, host: host, card: card}
}

// run executes fn as the VH program process, then stops the simulation (so
// idle VE pollers do not keep it alive) and shuts down.
func (r *rig) run(t *testing.T, fn func(p *simtime.Proc)) {
	t.Helper()
	r.eng.Spawn("vh-main", func(p *simtime.Proc) {
		fn(p)
		r.eng.Stop()
	})
	if err := r.eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	r.eng.Shutdown()
}

func TestProcessLifecycle(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *simtime.Proc) {
		vp, err := r.card.CreateProcess(p)
		if err != nil {
			t.Fatalf("CreateProcess: %v", err)
		}
		if p.Now() < simtime.Time(r.tm.ProcCreate) {
			t.Error("process creation cost not charged")
		}
		if r.card.Process() != vp {
			t.Error("Process() does not return the created process")
		}
		if _, err := r.card.CreateProcess(p); err == nil {
			t.Error("second CreateProcess should fail")
		}
		if err := r.card.DestroyProcess(p); err != nil {
			t.Fatalf("DestroyProcess: %v", err)
		}
		if err := r.card.DestroyProcess(p); err == nil {
			t.Error("double DestroyProcess should fail")
		}
	})
}

func TestLibraryLoadAndSymbolLookup(t *testing.T) {
	RegisterLibrary("libtest.so", Library{
		"empty": func(ctx *Ctx, args []uint64) (uint64, error) { return 0, nil },
		"add":   func(ctx *Ctx, args []uint64) (uint64, error) { return args[0] + args[1], nil },
	})
	r := newRig(t)
	r.run(t, func(p *simtime.Proc) {
		vp, err := r.card.CreateProcess(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := vp.LoadLibrary(p, "libmissing.so"); err == nil {
			t.Error("loading unregistered library should fail")
		}
		if err := vp.LoadLibrary(p, "libtest.so"); err != nil {
			t.Fatalf("LoadLibrary: %v", err)
		}
		if _, err := vp.FindSymbol(p, "add"); err != nil {
			t.Errorf("FindSymbol(add): %v", err)
		}
		if _, err := vp.FindSymbol(p, "nope"); err == nil {
			t.Error("FindSymbol of missing symbol should fail")
		}
	})
}

func TestCallRoundTripExecutesKernel(t *testing.T) {
	RegisterLibrary("libadd.so", Library{
		"add": func(ctx *Ctx, args []uint64) (uint64, error) { return args[0] + args[1], nil },
	})
	r := newRig(t)
	r.run(t, func(p *simtime.Proc) {
		vp, err := r.card.CreateProcess(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := vp.LoadLibrary(p, "libadd.so"); err != nil {
			t.Fatal(err)
		}
		k, err := vp.FindSymbol(p, "add")
		if err != nil {
			t.Fatal(err)
		}
		ctx := vp.OpenContext(p)
		cmd := ctx.Submit(p, k, []uint64{40, 2})
		v, err := ctx.Wait(p, cmd)
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if v != 42 {
			t.Errorf("kernel result = %d, want 42", v)
		}
		if ctx.Executed() != 1 {
			t.Errorf("Executed = %d", ctx.Executed())
		}
	})
}

func TestEmptyCallCostNearPaperVEONumber(t *testing.T) {
	// Calibration: a native VEO empty offload should cost ≈80 µs (derived
	// from the paper's 13.1× claim against the 6.1 µs DMA protocol).
	RegisterLibrary("libempty.so", Library{
		"empty": func(ctx *Ctx, args []uint64) (uint64, error) { return 0, nil },
	})
	r := newRig(t)
	r.run(t, func(p *simtime.Proc) {
		vp, _ := r.card.CreateProcess(p)
		if err := vp.LoadLibrary(p, "libempty.so"); err != nil {
			t.Fatal(err)
		}
		k, _ := vp.FindSymbol(p, "empty")
		ctx := vp.OpenContext(p)
		// Warm up so the worker's idle backoff is reset.
		for i := 0; i < 10; i++ {
			if _, err := ctx.Wait(p, ctx.Submit(p, k, nil)); err != nil {
				t.Fatal(err)
			}
		}
		start := p.Now()
		const reps = 100
		for i := 0; i < reps; i++ {
			if _, err := ctx.Wait(p, ctx.Submit(p, k, nil)); err != nil {
				t.Fatal(err)
			}
		}
		us := p.Now().Sub(start).Microseconds() / reps
		if us < 60 || us > 100 {
			t.Errorf("empty VEO call = %.2f us, want ≈80", us)
		}
	})
}

func TestContextsRunConcurrently(t *testing.T) {
	// Two contexts execute long kernels in parallel: total time ≈ one
	// kernel, not two.
	kernelTime := 10 * simtime.Millisecond
	RegisterLibrary("libslow.so", Library{
		"slow": func(ctx *Ctx, args []uint64) (uint64, error) {
			ctx.P.Sleep(kernelTime)
			return 0, nil
		},
	})
	r := newRig(t)
	r.run(t, func(p *simtime.Proc) {
		vp, _ := r.card.CreateProcess(p)
		if err := vp.LoadLibrary(p, "libslow.so"); err != nil {
			t.Fatal(err)
		}
		k, _ := vp.FindSymbol(p, "slow")
		c1 := vp.OpenContext(p)
		c2 := vp.OpenContext(p)
		start := p.Now()
		cmd1 := c1.Submit(p, k, nil)
		cmd2 := c2.Submit(p, k, nil)
		if _, err := c1.Wait(p, cmd1); err != nil {
			t.Fatal(err)
		}
		if _, err := c2.Wait(p, cmd2); err != nil {
			t.Fatal(err)
		}
		total := p.Now().Sub(start)
		if total > kernelTime+kernelTime/2 {
			t.Errorf("two contexts took %v, want ≈%v (parallel)", total, kernelTime)
		}
	})
}

func TestDMAWriteReadThroughVEOS(t *testing.T) {
	r := newRig(t)
	r.run(t, func(p *simtime.Proc) {
		vp, _ := r.card.CreateProcess(p)
		hAddr, err := r.host.Alloc(4096)
		if err != nil {
			t.Fatal(err)
		}
		vAddr, err := vp.AllocMem(p, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := r.host.Mem.WriteAt([]byte("through veos"), hAddr); err != nil {
			t.Fatal(err)
		}
		if err := r.card.DMAWrite(p, vAddr, uint64(hAddr), 12); err != nil {
			t.Fatalf("DMAWrite: %v", err)
		}
		// Read it back into a different host location.
		hAddr2, _ := r.host.Alloc(4096)
		if err := r.card.DMARead(p, uint64(hAddr2), vAddr, 12); err != nil {
			t.Fatalf("DMARead: %v", err)
		}
		got := make([]byte, 12)
		if err := r.host.Mem.ReadAt(got, hAddr2); err != nil {
			t.Fatal(err)
		}
		if string(got) != "through veos" {
			t.Errorf("round trip = %q", got)
		}
		if err := vp.FreeMem(p, vAddr); err != nil {
			t.Errorf("FreeMem: %v", err)
		}
	})
}

func TestKernelCtxFacilities(t *testing.T) {
	var vectorTime, scalarTime, sysBefore, sysAfter simtime.Duration
	var syscalls int64
	RegisterLibrary("libctx.so", Library{
		"probe": func(ctx *Ctx, args []uint64) (uint64, error) {
			s := ctx.P.Now()
			ctx.ChargeVector(1e9, 0, 8)
			vectorTime = ctx.P.Now().Sub(s)
			s = ctx.P.Now()
			ctx.ChargeScalar(1e6)
			scalarTime = ctx.P.Now().Sub(s)
			s = ctx.P.Now()
			sysBefore = ctx.P.Now().Sub(s)
			ctx.Syscall(simtime.Microsecond)
			sysAfter = ctx.P.Now().Sub(s)
			syscalls = ctx.Context.proc.Syscalls()
			if ctx.VE() == nil || ctx.UserDMA() == nil || ctx.Instr() == nil {
				return 1, nil
			}
			return 0, nil
		},
	})
	r := newRig(t)
	r.run(t, func(p *simtime.Proc) {
		vp, _ := r.card.CreateProcess(p)
		if err := vp.LoadLibrary(p, "libctx.so"); err != nil {
			t.Fatal(err)
		}
		k, _ := vp.FindSymbol(p, "probe")
		ctx := vp.OpenContext(p)
		v, err := ctx.Wait(p, ctx.Submit(p, k, nil))
		if err != nil || v != 0 {
			t.Fatalf("probe = %d, %v", v, err)
		}
	})
	if vectorTime <= 0 || scalarTime <= 0 {
		t.Error("compute charges not applied")
	}
	if sysAfter-sysBefore < topology.DefaultTiming().SyscallRoundTrip {
		t.Error("syscall round trip not charged")
	}
	if syscalls != 1 {
		t.Errorf("syscall counter = %d", syscalls)
	}
}

func TestIdleWorkerBacksOff(t *testing.T) {
	// An idle VE context must not flood the event queue: over 100 ms of
	// idle simulated time, the worker should take far fewer than the
	// 50k polls a fixed 2 µs interval would produce.
	r := newRig(t)
	r.run(t, func(p *simtime.Proc) {
		vp, _ := r.card.CreateProcess(p)
		vp.OpenContext(p)
		p.Sleep(100 * simtime.Millisecond)
	})
	if ev := r.eng.Events(); ev > 5000 {
		t.Errorf("idle simulation processed %d events, backoff not working", ev)
	}
}
