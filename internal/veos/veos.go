// Package veos models the Vector Engine Operating System layer of the
// SX-Aurora platform (paper §I-B): the per-VE veos daemon with its DMA
// manager, the per-process VH pseudo-process that services syscalls, and the
// VE-side execution contexts that pop and run offloaded commands. The VEs
// run no kernel of their own — every OS interaction crosses PCIe to the VH,
// which is exactly where the privileged-DMA latency of the VEO protocol
// comes from.
package veos

import (
	"errors"
	"fmt"

	"hamoffload/internal/dma"
	"hamoffload/internal/faults"
	"hamoffload/internal/hostmem"
	"hamoffload/internal/mem"
	"hamoffload/internal/pcie"
	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
	"hamoffload/internal/vecore"
	"hamoffload/internal/vemem"
)

// ErrCrashed marks operations against a VE whose process has crashed (a VE
// exception, or an injected faults.Crash). It is a permanent failure: the
// backends map it to core.ErrNodeFailed, and the card serves nothing until
// the dead process is destroyed and a fresh one created.
var ErrCrashed = errors.New("veos: VE process crashed")

// Kernel is a function loadable into a VE process — the simulation's stand-in
// for a symbol in an NCC-compiled VE shared library. Arguments and the return
// value are raw 64-bit words, matching VEO's restriction to basic types.
type Kernel func(ctx *Ctx, args []uint64) (uint64, error)

// Library is a named symbol table, the analog of a .so built for the VE.
type Library map[string]Kernel

// Card bundles one VE's hardware and OS state: its memory, privileged DMA
// engine (driven by the veos daemon), PCIe link, and at most one VE process.
type Card struct {
	ID     int
	Eng    *simtime.Engine
	Timing topology.Timing
	Mem    *vemem.VE
	Priv   *dma.Privileged
	Path   pcie.Path // daemon-socket → VE route
	Host   *hostmem.Host
	// Cores arbitrates the VE's compute cores between concurrently running
	// kernels (contexts): a kernel charging work on n cores holds n units
	// for its duration, so full-width kernels serialise while narrower ones
	// overlap — VEOS's scheduling responsibility (§I-B) at kernel grain.
	Cores *simtime.Semaphore

	proc    *Process
	crashed bool
	vhcalls map[string]VHHandler
}

// VHHandler is a VH-side function callable from VE code via VHcall.
type VHHandler func(p *simtime.Proc, args []uint64) (uint64, error)

// RegisterVHCall publishes a VH-side handler under name, making it callable
// from VE kernels through Ctx.VHCall (the platform's reverse-offload
// mechanism with syscall semantics, §I-B).
func (c *Card) RegisterVHCall(name string, h VHHandler) {
	if c.vhcalls == nil {
		c.vhcalls = make(map[string]VHHandler)
	}
	c.vhcalls[name] = h
}

// NewCard assembles a VE card. The privileged DMA engine translates with
// mode over the host's page size.
func NewCard(eng *simtime.Engine, id int, t topology.Timing, host *hostmem.Host,
	veMem *vemem.VE, path pcie.Path, mode dma.TranslateMode) *Card {
	name := fmt.Sprintf("ve%d", id)
	return &Card{
		ID:     id,
		Eng:    eng,
		Timing: t,
		Mem:    veMem,
		Priv: dma.NewPrivileged(eng, name, t, mode, host.PageSize.Int64(),
			path, host.Mem, veMem.HBM),
		Path:  path,
		Host:  host,
		Cores: simtime.NewSemaphore(eng, name+"-cores", topology.VEType10B().Cores),
	}
}

// Process returns the running VE process, if any.
func (c *Card) Process() *Process { return c.proc }

// Crashed reports whether the card's VE process has crashed. The target
// serve loops poll it to bail out instead of spinning on a dead machine.
func (c *Card) Crashed() bool { return c.crashed }

// Kill crashes the VE process: execution contexts stop after their current
// command, every queued command fails with ErrCrashed, and all further VEOS
// services on the card refuse work until recovery (DestroyProcess followed
// by a fresh CreateProcess). Chaos tests and the faults.Crash schedule both
// funnel through here.
func (c *Card) Kill() {
	if c.crashed {
		return
	}
	c.crashed = true
	if c.proc == nil {
		return
	}
	for _, ctx := range c.proc.ctxs {
		ctx.stop = true
		for {
			cmd, ok := ctx.cmdQ.TryPop()
			if !ok {
				break
			}
			cmd.err = fmt.Errorf("ve %d: %w", c.ID, ErrCrashed)
			cmd.done.Fire()
		}
	}
}

// enterVEOS runs the shared fault hooks of every VEOS daemon entry point:
// a scheduled stall window delays the caller, a fail-slow rule stretches
// the daemon's IPC service time, a scheduled crash kills the card, and a
// dead card refuses service.
func (c *Card) enterVEOS(p *simtime.Proc) error {
	if inj := c.Timing.Faults; inj != nil {
		if d := inj.StallDelay(p.Now(), c.ID); d > 0 {
			c.Timing.Tracer.Instant(p, "fault", "veos-stall")
			p.Sleep(d)
		}
		if d := inj.SlowDelay(p.Now(), faults.SiteVEOS, c.ID, c.Timing.IPCUserVEOS); d > 0 {
			c.Timing.Tracer.Instant(p, "fault", "slow-down veos")
			p.Sleep(d)
		}
		if inj.CrashNow(p.Now(), c.ID) {
			c.Timing.Tracer.Instant(p, "fault", "ve-crash")
			c.Kill()
		}
	}
	if c.crashed {
		return fmt.Errorf("ve %d: %w", c.ID, ErrCrashed)
	}
	return nil
}

// CreateProcess boots a VE process on the card (veos work: load the loader,
// set up memory management). The calling process p is the VH program; it
// blocks for the creation time. Only one process per card is modelled, like
// the dedicated-VE usage in the paper's benchmarks.
func (c *Card) CreateProcess(p *simtime.Proc) (*Process, error) {
	if c.proc != nil {
		return nil, fmt.Errorf("veos: VE %d already runs a process", c.ID)
	}
	c.crashed = false // booting a fresh process recovers a crashed card
	p.Sleep(c.Timing.ProcCreate)
	vp := &Process{
		card:  c,
		libs:  make(map[string]Library),
		model: vecore.DefaultModel(),
	}
	c.proc = vp
	return vp, nil
}

// DestroyProcess tears the VE process down; its contexts stop after their
// current command.
func (c *Card) DestroyProcess(p *simtime.Proc) error {
	if c.proc == nil {
		return fmt.Errorf("veos: VE %d runs no process", c.ID)
	}
	for _, ctx := range c.proc.ctxs {
		ctx.stop = true
	}
	c.proc = nil
	return nil
}

// DMAWrite services a veo_write_mem: the VH process p pays the user-space
// library cost and the IPC into the veos daemon, whose DMA manager performs
// the privileged transfer of n bytes from VH hostAddr into VE veAddr.
func (c *Card) DMAWrite(p *simtime.Proc, veAddr, hostAddr uint64, n int64) error {
	if err := c.enterVEOS(p); err != nil {
		return err
	}
	defer c.Timing.Tracer.Span(p, "veo", "veo_write_mem")()
	p.Sleep(c.Timing.VEOLibOverhead + c.Timing.IPCUserVEOS + c.Timing.DriverHop)
	if err := c.Priv.Write(p, memAddr(veAddr), memAddr(hostAddr), n); err != nil {
		return err
	}
	p.Sleep(c.Timing.IPCUserVEOS)
	return nil
}

// DMARead services a veo_read_mem: n bytes from VE veAddr into VH hostAddr.
func (c *Card) DMARead(p *simtime.Proc, hostAddr, veAddr uint64, n int64) error {
	if err := c.enterVEOS(p); err != nil {
		return err
	}
	defer c.Timing.Tracer.Span(p, "veo", "veo_read_mem")()
	p.Sleep(c.Timing.VEOLibOverhead + c.Timing.IPCUserVEOS + c.Timing.DriverHop)
	if err := c.Priv.Read(p, memAddr(hostAddr), memAddr(veAddr), n); err != nil {
		return err
	}
	p.Sleep(c.Timing.IPCUserVEOS)
	return nil
}

// Process is one VE process: loaded libraries, HBM allocations, and its
// execution contexts.
type Process struct {
	card  *Card
	libs  map[string]Library
	ctxs  []*Context
	model vecore.Model

	syscalls int64
}

// Card returns the card the process runs on.
func (vp *Process) Card() *Card { return vp.card }

// Model returns the process's VE execution cost model.
func (vp *Process) Model() vecore.Model { return vp.model }

// globalLibs is the registry of "compiled" VE libraries. Registering a
// library is the simulation analog of building a .so with NCC; loading it
// into a process charges the dlopen cost.
var globalLibs = map[string]Library{}

// RegisterLibrary publishes a library so processes can load it by name.
// Typically called from init functions, mirroring static registration of
// compiled artifacts. Re-registering a name overwrites it (like replacing a
// .so on disk).
func RegisterLibrary(name string, lib Library) {
	cp := make(Library, len(lib))
	for k, v := range lib {
		cp[k] = v
	}
	globalLibs[name] = cp
}

// LoadLibrary loads a registered library into the process, charging the
// dlopen-on-VE cost proportional to the symbol count.
func (vp *Process) LoadLibrary(p *simtime.Proc, name string) error {
	lib, ok := globalLibs[name]
	if !ok {
		return fmt.Errorf("veos: library %q not registered", name)
	}
	t := vp.card.Timing
	p.Sleep(t.LoadLibraryBase + simtime.Duration(len(lib))*t.LoadLibraryPerKiB)
	vp.libs[name] = lib
	return nil
}

// FindSymbol resolves a kernel by symbol name across loaded libraries,
// charging the lookup cost.
func (vp *Process) FindSymbol(p *simtime.Proc, sym string) (Kernel, error) {
	p.Sleep(vp.card.Timing.GetSym)
	for _, lib := range vp.libs {
		if k, ok := lib[sym]; ok {
			return k, nil
		}
	}
	return nil, fmt.Errorf("veos: symbol %q not found in loaded libraries", sym)
}

// AllocMem allocates n bytes of HBM on behalf of the VH (veo_alloc_mem):
// an IPC round trip plus allocator work.
func (vp *Process) AllocMem(p *simtime.Proc, n int64) (uint64, error) {
	if err := vp.card.enterVEOS(p); err != nil {
		return 0, err
	}
	p.Sleep(vp.card.Timing.AllocMem)
	addr, err := vp.card.Mem.Alloc(n)
	return uint64(addr), err
}

// FreeMem frees a veo_alloc_mem allocation.
func (vp *Process) FreeMem(p *simtime.Proc, addr uint64) error {
	if err := vp.card.enterVEOS(p); err != nil {
		return err
	}
	p.Sleep(vp.card.Timing.AllocMem)
	return vp.card.Mem.Free(memAddr(addr))
}

// Syscalls returns how many reverse-offloaded system calls the process made.
func (vp *Process) Syscalls() int64 { return vp.syscalls }

// memAddr converts the raw 64-bit addresses used at the VEO API surface into
// typed simulation addresses.
func memAddr(a uint64) mem.Addr { return mem.Addr(a) }
