package veos

import (
	"fmt"

	"hamoffload/internal/dma"
	"hamoffload/internal/simtime"
	"hamoffload/internal/vecore"
	"hamoffload/internal/vemem"
)

// Context is one VE-side execution thread (the analog of veo_thr_ctxt): a
// simulated process that polls a command queue and runs kernels to
// completion, one at a time. Multiple contexts on one process model VEO's
// multi-context API; the HAM-Offload backend runs its message loop in one
// while leaving others free.
type Context struct {
	id   int
	proc *Process
	cmdQ *simtime.Queue[*Command]
	stop bool

	udma  *dma.UserDMA
	instr *dma.Instr

	executed int64
}

// Command is one queued kernel invocation with its completion state.
type Command struct {
	Kernel Kernel
	Args   []uint64

	done   *simtime.Event
	result uint64
	err    error
}

// Done reports whether the command has finished.
func (c *Command) Done() bool { return c.done.Fired() }

// Result returns the kernel's return word and error; valid once Done.
func (c *Command) Result() (uint64, error) { return c.result, c.err }

// OpenContext spawns a new execution context on the VE process. The calling
// VH process pays an IPC round trip for the thread creation.
func (vp *Process) OpenContext(p *simtime.Proc) *Context {
	t := vp.card.Timing
	p.Sleep(2 * t.IPCUserVEOS)
	ctx := &Context{
		id:    len(vp.ctxs),
		proc:  vp,
		cmdQ:  simtime.NewQueue[*Command](vp.card.Eng, fmt.Sprintf("ve%d-ctx%d", vp.card.ID, len(vp.ctxs))),
		udma:  dma.NewUserDMA(vp.card.Eng, fmt.Sprintf("ve%d-ctx%d", vp.card.ID, len(vp.ctxs)), t, vp.card.Mem.ATB(), vp.card.Path),
		instr: dma.NewInstr(t, vp.card.Mem.ATB(), vp.card.Path),
	}
	vp.ctxs = append(vp.ctxs, ctx)
	vp.card.Eng.Spawn(fmt.Sprintf("ve%d-worker%d", vp.card.ID, ctx.id), ctx.workerLoop)
	return ctx
}

// Executed returns how many commands this context has completed.
func (ctx *Context) Executed() int64 { return ctx.executed }

// Process returns the VE process the context belongs to.
func (ctx *Context) Process() *Process { return ctx.proc }

// workerLoop polls the command queue at the VEO command poll interval. So a
// quiet VE does not flood the event queue, the interval backs off
// exponentially — but only after a sustained idle period, so the hot path of
// back-to-back offload benchmarks always sees the base interval.
func (ctx *Context) workerLoop(p *simtime.Proc) {
	t := ctx.proc.card.Timing
	const (
		backoffAfter = 500 * simtime.Microsecond
		maxBackoff   = 128
	)
	interval := t.VEOCmdPollInterval
	var idle simtime.Duration
	for !ctx.stop && !ctx.proc.card.crashed {
		cmd, ok := ctx.cmdQ.TryPop()
		if !ok {
			p.Sleep(interval)
			idle += interval
			if idle >= backoffAfter && interval < t.VEOCmdPollInterval*maxBackoff {
				interval *= 2
			}
			continue
		}
		interval = t.VEOCmdPollInterval
		idle = 0
		end := t.Tracer.Span(p, "veo", "ve-kernel")
		p.Sleep(t.VEOCallDispatchVE)
		kctx := &Ctx{P: p, Context: ctx}
		cmd.result, cmd.err = cmd.Kernel(kctx, cmd.Args)
		end()
		ctx.executed++
		cmd.done.Fire()
	}
}

// Submit enqueues a kernel invocation from the VH side (veo_call_async).
// The caller pays the VH-side submission chain; the command then travels the
// PCIe doorbell path and becomes visible to the worker.
func (ctx *Context) Submit(p *simtime.Proc, k Kernel, args []uint64) *Command {
	card := ctx.proc.card
	t := card.Timing
	if err := card.enterVEOS(p); err != nil {
		// The doorbell has nowhere to ring: hand back an already-failed
		// command so VEO's request/wait surface stays uniform.
		cmd := &Command{done: simtime.NewEvent(card.Eng), err: err}
		cmd.done.Fire()
		return cmd
	}
	defer t.Tracer.Span(p, "veo", "veo_call_async")()
	p.Sleep(t.VEOLibOverhead + t.VEOCallSubmit + t.IPCUserVEOS + t.DriverHop +
		card.Path.OneWayLatency())
	cmd := &Command{
		Kernel: k,
		Args:   args,
		done:   simtime.NewEvent(card.Eng),
	}
	ctx.cmdQ.Push(cmd)
	return cmd
}

// Wait blocks the VH process until the command completes, polling at the
// result poll interval, then pays the result return path.
func (ctx *Context) Wait(p *simtime.Proc, cmd *Command) (uint64, error) {
	t := ctx.proc.card.Timing
	for !cmd.done.Fired() {
		p.Sleep(t.VEOResultPollInterval)
	}
	p.Sleep(t.IPCUserVEOS + t.VEOLibOverhead)
	return cmd.result, cmd.err
}

// Ctx is the environment passed to a running kernel: the simulated process
// it runs on and the VE facilities it may use. It is the simulation analog
// of "code compiled for the VE": user DMA, LHM/SHM, local memory, the
// roofline cost model, and reverse-offloaded syscalls.
type Ctx struct {
	P       *simtime.Proc
	Context *Context
}

// VE returns the local VE memory system.
func (c *Ctx) VE() *vemem.VE { return c.Context.proc.card.Mem }

// UserDMA returns this context's user DMA engine.
func (c *Ctx) UserDMA() *dma.UserDMA { return c.udma() }

func (c *Ctx) udma() *dma.UserDMA { return c.Context.udma }

// Instr returns this context's LHM/SHM instruction unit.
func (c *Ctx) Instr() *dma.Instr { return c.Context.instr }

// Model returns the VE execution cost model.
func (c *Ctx) Model() vecore.Model { return c.Context.proc.model }

// ChargeVector advances simulated time by the roofline cost of a vectorised
// kernel region (flops floating-point ops, bytes of HBM traffic, cores VE
// cores). The cores are held for the region's duration, so concurrent
// kernels on one VE contend for them like real threads would.
func (c *Ctx) ChargeVector(flops, bytes int64, cores int) {
	pool := c.Context.proc.card.Cores
	got := pool.Acquire(c.P, cores)
	c.P.Sleep(c.Model().VectorTime(flops, bytes, got))
	pool.Release(got)
}

// ChargeScalar advances simulated time by ops scalar instructions on one
// core.
func (c *Ctx) ChargeScalar(ops int64) {
	pool := c.Context.proc.card.Cores
	got := pool.Acquire(c.P, 1)
	c.P.Sleep(c.Model().ScalarTime(ops))
	pool.Release(got)
}

// Syscall performs a reverse-offloaded system call serviced by the VH
// pseudo-process, with body being the VH-side service time.
func (c *Ctx) Syscall(body simtime.Duration) {
	c.P.Sleep(c.Context.proc.card.Timing.SyscallRoundTrip + body)
	c.Context.proc.syscalls++
}

// VHCall synchronously invokes a registered VH-side handler from VE code —
// the platform's VHcall mechanism. The cost is a syscall-style round trip;
// the handler runs in the VH pseudo-process's context.
func (c *Ctx) VHCall(name string, args ...uint64) (uint64, error) {
	card := c.Context.proc.card
	h, ok := card.vhcalls[name]
	if !ok {
		return 0, fmt.Errorf("veos: VHcall %q not registered on VE %d", name, card.ID)
	}
	c.P.Sleep(card.Timing.SyscallRoundTrip)
	c.Context.proc.syscalls++
	return h(c.P, args)
}
