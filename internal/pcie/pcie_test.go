package pcie

import (
	"testing"
	"testing/quick"

	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
	"hamoffload/internal/units"
)

func defaultFabric(t *testing.T, eng *simtime.Engine) *Fabric {
	t.Helper()
	f, err := NewFabric(eng, topology.A300_8(), topology.DefaultTiming())
	if err != nil {
		t.Fatalf("NewFabric: %v", err)
	}
	return f
}

func TestWireTimeMatchesEfficiency(t *testing.T) {
	eng := simtime.NewEngine()
	tm := topology.DefaultTiming()
	l := NewLink(eng, 0, tm)
	// A large transfer should achieve ~91 % of the raw rate ≈ 13.4 GiB/s.
	n := (256 * units.MiB).Int64()
	d := l.WireTime(n)
	gibps := float64(n) / float64(units.GiB) / d.Seconds()
	if gibps < 13.2 || gibps > 13.6 {
		t.Errorf("large-transfer wire rate = %.2f GiB/s, want ≈13.4", gibps)
	}
	// A single byte still costs a full TLP header.
	one := l.WireTime(1)
	hdr := simtime.BytesOver(1+tm.PCIeTLPHeader.Int64(), tm.PCIeRawRate)
	if one != hdr {
		t.Errorf("WireTime(1) = %v, want %v", one, hdr)
	}
	if l.WireTime(0) != 0 || l.WireTime(-8) != 0 {
		t.Error("WireTime of non-positive size should be 0")
	}
}

func TestWireTimeMonotone(t *testing.T) {
	eng := simtime.NewEngine()
	l := NewLink(eng, 0, topology.DefaultTiming())
	prev := simtime.Duration(0)
	for n := int64(1); n <= 1<<28; n *= 2 {
		d := l.WireTime(n)
		if d <= prev {
			t.Fatalf("WireTime(%d) = %v not greater than WireTime(%d) = %v", n, d, n/2, prev)
		}
		prev = d
	}
}

func TestRoundTripLatency(t *testing.T) {
	// The paper's reference point: ~1.2 µs PCIe round trip from socket 0.
	eng := simtime.NewEngine()
	f := defaultFabric(t, eng)
	pa, err := f.PathFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	rtt := 2 * pa.OneWayLatency()
	us := simtime.Duration(rtt).Microseconds()
	if us < 1.0 || us > 1.4 {
		t.Errorf("PCIe RTT = %.2f us, want ≈1.2", us)
	}
}

func TestUPIHopAddsLatency(t *testing.T) {
	eng := simtime.NewEngine()
	f := defaultFabric(t, eng)
	local, err := f.PathFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := f.PathFrom(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if remote.UPIHops != 1 || local.UPIHops != 0 {
		t.Fatalf("UPIHops = %d/%d, want 1/0", remote.UPIHops, local.UPIHops)
	}
	// §V-A: up to ~1 µs extra per offload (two crossings); one crossing adds
	// a few hundred ns.
	extra := remote.OneWayLatency() - local.OneWayLatency()
	if extra <= 0 || extra > simtime.Microsecond {
		t.Errorf("UPI extra latency = %v", extra)
	}
	// VE 4 lives on socket 1: the affinities invert.
	local4, err := f.PathFrom(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if local4.UPIHops != 0 {
		t.Errorf("socket 1 to VE 4 should be local")
	}
}

func TestDirectionsAreIndependent(t *testing.T) {
	// Full duplex: an up transfer does not wait behind a down transfer.
	eng := simtime.NewEngine()
	l := NewLink(eng, 0, topology.DefaultTiming())
	n := (1 * units.MiB).Int64()
	var downDone, upDone simtime.Time
	eng.Spawn("down", func(p *simtime.Proc) {
		l.Occupy(p, Down, n)
		downDone = p.Now()
	})
	eng.Spawn("up", func(p *simtime.Proc) {
		l.Occupy(p, Up, n)
		upDone = p.Now()
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if downDone != upDone {
		t.Errorf("full-duplex transfers should finish together: %v vs %v", downDone, upDone)
	}
}

func TestSameDirectionSerializes(t *testing.T) {
	eng := simtime.NewEngine()
	l := NewLink(eng, 0, topology.DefaultTiming())
	n := (1 * units.MiB).Int64()
	wire := l.WireTime(n)
	var done []simtime.Time
	for i := 0; i < 2; i++ {
		eng.Spawn("w", func(p *simtime.Proc) {
			l.Occupy(p, Down, n)
			done = append(done, p.Now())
		})
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if done[0] != simtime.Time(wire) || done[1] != simtime.Time(2*wire) {
		t.Errorf("done = %v, want %v and %v", done, wire, 2*wire)
	}
	if l.Moved(Down) != 2*n || l.Moved(Up) != 0 {
		t.Errorf("Moved = %d/%d", l.Moved(Down), l.Moved(Up))
	}
	if l.BusyTime(Down) != 2*wire {
		t.Errorf("BusyTime = %v, want %v", l.BusyTime(Down), 2*wire)
	}
}

func TestPathTransferAdvancesTime(t *testing.T) {
	eng := simtime.NewEngine()
	f := defaultFabric(t, eng)
	pa, err := f.PathFrom(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var took simtime.Duration
	eng.Spawn("x", func(p *simtime.Proc) {
		start := p.Now()
		pa.Transfer(p, Down, 4096)
		took = p.Now().Sub(start)
	})
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := pa.Link.WireTime(4096) + pa.OneWayLatency()
	if took != want {
		t.Errorf("Transfer took %v, want %v", took, want)
	}
}

func TestFabricErrors(t *testing.T) {
	eng := simtime.NewEngine()
	f := defaultFabric(t, eng)
	if _, err := f.Link(99); err == nil {
		t.Error("Link(99) should fail")
	}
	if _, err := f.PathFrom(0, 99); err == nil {
		t.Error("PathFrom to missing VE should fail")
	}
	if _, err := f.PathFrom(7, 0); err == nil {
		t.Error("PathFrom from missing socket should fail")
	}
	bad := topology.DefaultTiming()
	bad.PCIeRawRate = 0
	if _, err := NewFabric(eng, topology.A300_8(), bad); err == nil {
		t.Error("NewFabric with invalid timing should fail")
	}
}

// Property: WireTime is superadditive-safe — splitting a transfer never
// beats sending it whole (per-TLP overhead only grows with fragmentation) —
// and scales linearly beyond one payload.
func TestWireTimeFragmentationProperty(t *testing.T) {
	eng := simtime.NewEngine()
	l := NewLink(eng, 0, topology.DefaultTiming())
	f := func(a, b uint16) bool {
		n1, n2 := int64(a)+1, int64(b)+1
		whole := l.WireTime(n1 + n2)
		split := l.WireTime(n1) + l.WireTime(n2)
		return split >= whole
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
