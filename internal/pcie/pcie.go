// Package pcie models the PCIe Gen3 x16 fabric between the Vector Host's
// sockets and the Vector Engine cards, including TLP payload/header overhead
// (256 B max payload for the VE → 91 % efficiency → 13.4 GiB/s achievable,
// paper §V), full-duplex per-direction occupancy, propagation latency, and
// the UPI hop taken when offloading from the socket that does not host the
// VE's PCIe switch (Fig. 3, §V-A).
package pcie

import (
	"fmt"

	"hamoffload/internal/faults"
	"hamoffload/internal/simtime"
	"hamoffload/internal/topology"
)

// Direction of a transfer over a link.
type Direction int

const (
	// Down is VH → VE (writes toward the device).
	Down Direction = iota
	// Up is VE → VH (reads toward the host).
	Up
)

func (d Direction) String() string {
	if d == Down {
		return "VH=>VE"
	}
	return "VE=>VH"
}

// Link is the PCIe connection of one VE card: two independent simplex
// channels (PCIe is full duplex), each serving transfers FIFO.
type Link struct {
	ve      int
	timing  topology.Timing
	channel [2]*simtime.Resource
	moved   [2]int64 // payload bytes per direction, for stats
}

// NewLink creates the link for VE ve using the given timing model.
func NewLink(eng *simtime.Engine, ve int, t topology.Timing) *Link {
	return &Link{
		ve:     ve,
		timing: t,
		channel: [2]*simtime.Resource{
			simtime.NewResource(eng, fmt.Sprintf("pcie-ve%d-down", ve)),
			simtime.NewResource(eng, fmt.Sprintf("pcie-ve%d-up", ve)),
		},
	}
}

// WireTime returns the serialization delay of n payload bytes: the time the
// TLPs (payload plus per-TLP header overhead) occupy the link at the raw
// line rate.
func (l *Link) WireTime(n int64) simtime.Duration {
	if n <= 0 {
		return 0
	}
	payload := l.timing.PCIeMaxPayload.Int64()
	tlps := (n + payload - 1) / payload
	wire := n + tlps*l.timing.PCIeTLPHeader.Int64()
	return simtime.BytesOver(wire, l.timing.PCIeRawRate)
}

// Occupy serializes n bytes in the given direction, blocking while earlier
// transfers in the same direction drain. It does not include propagation
// latency; callers add Latency separately so that pipelined engines can
// overlap occupancy with their own bookkeeping.
//
// A fail-slow rule at SitePCIe stretches the occupancy itself — the model
// of a link renegotiated to a lower generation speed — so a degraded link
// slows every transfer that crosses it, in both directions.
func (l *Link) Occupy(p *simtime.Proc, dir Direction, n int64) {
	if n <= 0 {
		return
	}
	wire := l.WireTime(n)
	if l.timing.Faults != nil {
		if d := l.timing.Faults.SlowDelay(p.Now(), faults.SitePCIe, l.ve, wire); d > 0 {
			l.timing.Tracer.Instant(p, "fault", "slow-down pcie")
			wire += d
		}
	}
	l.channel[dir].Use(p, wire)
	l.moved[dir] += n
}

// Latency returns the one-way propagation latency of the link.
func (l *Link) Latency() simtime.Duration { return l.timing.PCIeLatency }

// VE returns the id of the VE card this link attaches.
func (l *Link) VE() int { return l.ve }

// Err consults the fault injector's link-down schedule: it returns a
// transient error while the link is inside a down window, and nil — at zero
// cost — without an injector. The DMA engines check it before moving bytes,
// so a down link fails transfers instead of delivering them.
func (l *Link) Err(p *simtime.Proc) error {
	return l.timing.Faults.LinkError(p.Now(), l.ve)
}

// Moved returns the payload bytes transferred in the given direction.
func (l *Link) Moved(dir Direction) int64 { return l.moved[dir] }

// BusyTime returns cumulative occupancy of the given direction.
func (l *Link) BusyTime(dir Direction) simtime.Duration {
	return l.channel[dir].BusyTime()
}

// Path is a route between a VH process pinned to a socket and one VE,
// accumulating the UPI hop when the route crosses sockets.
type Path struct {
	Link    *Link
	UPIHops int
	timing  topology.Timing
}

// OneWayLatency is the propagation latency along the path in one direction.
func (pa Path) OneWayLatency() simtime.Duration {
	return pa.Link.Latency() + simtime.Duration(pa.UPIHops)*pa.timing.UPILatency
}

// Transfer moves n payload bytes along the path in the given direction:
// serialization occupancy followed by propagation.
func (pa Path) Transfer(p *simtime.Proc, dir Direction, n int64) {
	pa.Link.Occupy(p, dir, n)
	p.Sleep(pa.OneWayLatency())
}

// Err reports the path's injected link-down state (see Link.Err).
func (pa Path) Err(p *simtime.Proc) error { return pa.Link.Err(p) }

// Fabric is the whole PCIe/UPI interconnect of a system: one link per VE.
type Fabric struct {
	sys    *topology.System
	timing topology.Timing
	links  []*Link
}

// NewFabric builds the interconnect for sys.
func NewFabric(eng *simtime.Engine, sys *topology.System, t topology.Timing) (*Fabric, error) {
	if err := sys.Validate(); err != nil {
		return nil, err
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{sys: sys, timing: t}
	for _, ve := range sys.VEs {
		f.links = append(f.links, NewLink(eng, ve.ID, t))
	}
	return f, nil
}

// Link returns the link of VE ve.
func (f *Fabric) Link(ve int) (*Link, error) {
	if ve < 0 || ve >= len(f.links) {
		return nil, fmt.Errorf("pcie: no link for VE %d", ve)
	}
	return f.links[ve], nil
}

// PathFrom returns the route from a process pinned on socket to VE ve.
func (f *Fabric) PathFrom(socket, ve int) (Path, error) {
	crosses, err := f.sys.CrossesUPI(socket, ve)
	if err != nil {
		return Path{}, err
	}
	l, err := f.Link(ve)
	if err != nil {
		return Path{}, err
	}
	hops := 0
	if crosses {
		hops = 1
	}
	return Path{Link: l, UPIHops: hops, timing: f.timing}, nil
}
