package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

// White-box tests of the batch frame encoding (sealBatch/openBatch): the
// exact analogue of the FT envelope tests one layer down — nothing that is
// not a frame may parse as one, and every broken frame must surface as
// ErrPayloadCorrupt rather than mis-split.

func TestBatchWireRoundTrip(t *testing.T) {
	cases := [][][]byte{
		{{1, 2, 3}},
		{{}, {0xff}, make([]byte, 300)},
		{bytes.Repeat([]byte{7}, 1), bytes.Repeat([]byte{8}, 2), bytes.Repeat([]byte{9}, 3)},
	}
	for _, msgs := range cases {
		frame := sealBatch(msgs)
		got, isBatch, err := openBatch(frame)
		if !isBatch || err != nil {
			t.Fatalf("openBatch(seal(%d msgs)) = batch %v, %v", len(msgs), isBatch, err)
		}
		if len(got) != len(msgs) {
			t.Fatalf("round trip count = %d, want %d", len(got), len(msgs))
		}
		for i := range msgs {
			if !bytes.Equal(got[i], msgs[i]) {
				t.Fatalf("entry %d mismatch", i)
			}
		}
	}
}

func TestBatchWireRoundTripProperty(t *testing.T) {
	prop := func(raw [][]byte) bool {
		if len(raw) == 0 {
			return true // sealBatch is never called on an empty queue
		}
		got, isBatch, err := openBatch(sealBatch(raw))
		if !isBatch || err != nil || len(got) != len(raw) {
			return false
		}
		for i := range raw {
			if !bytes.Equal(got[i], raw[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBatchWireRejectsNonFrames(t *testing.T) {
	for _, msg := range [][]byte{
		nil,
		{},
		{1, 2, 3},
		binary.LittleEndian.AppendUint32(nil, batMagic), // magic alone, too short
		make([]byte, 64), // zeroes
	} {
		if _, isBatch, err := openBatch(msg); isBatch || err != nil {
			t.Errorf("openBatch(%d bytes) = batch %v, %v — plain messages must pass through",
				len(msg), isBatch, err)
		}
	}
}

func TestBatchWireCorruption(t *testing.T) {
	base := sealBatch([][]byte{{1, 2, 3}, {4, 5}})
	mutate := func(f func(b []byte) []byte) []byte {
		return f(append([]byte(nil), base...))
	}
	for name, frame := range map[string][]byte{
		"zero count": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], 0)
			return b
		}),
		"absurd count": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], 1<<30)
			return b
		}),
		"count beyond entries": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], 3)
			return b
		}),
		"truncated entry": base[:len(base)-1],
		"trailing bytes":  append(append([]byte(nil), base...), 0xEE),
		"entry length overruns": mutate(func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[batHeader:batHeader+4], 1<<20)
			return b
		}),
	} {
		_, isBatch, err := openBatch(frame)
		if !isBatch {
			t.Errorf("%s: not recognised as a (broken) frame", name)
			continue
		}
		if !errors.Is(err, ErrPayloadCorrupt) {
			t.Errorf("%s: err = %v, want ErrPayloadCorrupt", name, err)
		}
	}
}
