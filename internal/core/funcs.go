package core

import (
	"fmt"

	"hamoffload/internal/ham"
)

// This file is the Go analog of HAM's f2f() machinery (§III-E, Fig. 6): in
// C++, every (function, argument-types) combination instantiates a message
// type with generated serialisation and a handler; here, NewFuncN performs
// the same instantiation through generics and registers the handler under
// the function's name. Binding arguments yields a Functor that an offload
// transfers and the target executes.

// Marshaler lets composite argument types (like BufferPtr) define their own
// wire format. Implement it with pointer receivers.
type Marshaler interface {
	EncodeHAM(*ham.Encoder)
	DecodeHAM(*ham.Decoder)
}

// valCodec encodes/decodes one argument or result type.
type valCodec[T any] struct {
	enc func(*ham.Encoder, T)
	dec func(*ham.Decoder) T
}

// codecFor resolves the codec for T: Marshaler implementations first, then
// the built-in scalar/slice types. Unsupported types panic at registration
// time — the moment the C++ original would fail to compile.
func codecFor[T any]() valCodec[T] {
	var zero T
	if _, ok := any(&zero).(Marshaler); ok {
		return valCodec[T]{
			enc: func(e *ham.Encoder, v T) { any(&v).(Marshaler).EncodeHAM(e) },
			dec: func(d *ham.Decoder) T {
				var v T
				any(&v).(Marshaler).DecodeHAM(d)
				return v
			},
		}
	}
	switch any(zero).(type) {
	case Unit:
		return valCodec[T]{
			enc: func(e *ham.Encoder, v T) {},
			dec: func(d *ham.Decoder) T { var v T; return v },
		}
	case bool:
		return valCodec[T]{
			enc: func(e *ham.Encoder, v T) { e.PutBool(any(v).(bool)) },
			dec: func(d *ham.Decoder) T { return any(d.Bool()).(T) },
		}
	case int:
		return valCodec[T]{
			enc: func(e *ham.Encoder, v T) { e.PutI64(int64(any(v).(int))) },
			dec: func(d *ham.Decoder) T { return any(int(d.I64())).(T) },
		}
	case int32:
		return valCodec[T]{
			enc: func(e *ham.Encoder, v T) { e.PutU32(uint32(any(v).(int32))) },
			dec: func(d *ham.Decoder) T { return any(int32(d.U32())).(T) },
		}
	case int64:
		return valCodec[T]{
			enc: func(e *ham.Encoder, v T) { e.PutI64(any(v).(int64)) },
			dec: func(d *ham.Decoder) T { return any(d.I64()).(T) },
		}
	case uint32:
		return valCodec[T]{
			enc: func(e *ham.Encoder, v T) { e.PutU32(any(v).(uint32)) },
			dec: func(d *ham.Decoder) T { return any(d.U32()).(T) },
		}
	case uint64:
		return valCodec[T]{
			enc: func(e *ham.Encoder, v T) { e.PutU64(any(v).(uint64)) },
			dec: func(d *ham.Decoder) T { return any(d.U64()).(T) },
		}
	case float32:
		return valCodec[T]{
			enc: func(e *ham.Encoder, v T) { e.PutF32(any(v).(float32)) },
			dec: func(d *ham.Decoder) T { return any(d.F32()).(T) },
		}
	case float64:
		return valCodec[T]{
			enc: func(e *ham.Encoder, v T) { e.PutF64(any(v).(float64)) },
			dec: func(d *ham.Decoder) T { return any(d.F64()).(T) },
		}
	case string:
		return valCodec[T]{
			enc: func(e *ham.Encoder, v T) { e.PutString(any(v).(string)) },
			dec: func(d *ham.Decoder) T { return any(d.String()).(T) },
		}
	case []byte:
		return valCodec[T]{
			enc: func(e *ham.Encoder, v T) { e.PutBytes(any(v).([]byte)) },
			dec: func(d *ham.Decoder) T { return any(d.Bytes()).(T) },
		}
	case []float64:
		return valCodec[T]{
			enc: func(e *ham.Encoder, v T) { e.PutF64s(any(v).([]float64)) },
			dec: func(d *ham.Decoder) T { return any(d.F64s()).(T) },
		}
	case []int64:
		return valCodec[T]{
			enc: func(e *ham.Encoder, v T) { e.PutI64s(any(v).([]int64)) },
			dec: func(d *ham.Decoder) T { return any(d.I64s()).(T) },
		}
	default:
		panic(fmt.Sprintf("core: no HAM codec for type %T; implement core.Marshaler", zero))
	}
}

// Unit is the result type of offloaded functions that return nothing.
type Unit struct{}

// Functor is a function with bound arguments, ready to offload — the result
// of the C++ f2f() call.
type Functor[R any] struct {
	name    string
	payload func(*ham.Encoder)
	decode  func(*ham.Decoder) (R, error)
}

// Name returns the registered function name the functor offloads.
func (f Functor[R]) Name() string { return f.name }

// Async performs an asynchronous offload of fn to node, returning a future
// (Table II's async). The offload lifecycle span opens here and closes when
// the future settles.
func Async[R any](rt *Runtime, node NodeID, fn Functor[R]) *Future[R] {
	endOff := rt.beginOffload(node, fn.name)
	h, pd, err := rt.callAsync(node, fn.name, fn.payload)
	if err != nil {
		f := &Future[R]{rt: rt, onDone: endOff}
		f.fail(err)
		return f
	}
	f := newFuture(rt, h, fn.decode)
	f.pd = pd
	f.onDone = endOff
	return f
}

// Sync performs a synchronous offload of fn to node (Table II's sync).
func Sync[R any](rt *Runtime, node NodeID, fn Functor[R]) (R, error) {
	return Async(rt, node, fn).Get()
}

func resultDecoder[R any](rc valCodec[R]) func(*ham.Decoder) (R, error) {
	return func(d *ham.Decoder) (R, error) {
		v := rc.dec(d)
		return v, d.Err()
	}
}

// fnName namespaces user functions in the message table.
func fnName(name string) string { return "fn:" + name }

// Func0 is a registered offloadable function with no arguments.
type Func0[R any] struct {
	name string
	rc   valCodec[R]
}

// NewFunc0 registers impl as an offloadable function. Registration must
// happen before the application's runtimes are created — package init
// functions are the natural place, mirroring C++ static initialisation.
func NewFunc0[R any](name string, impl func(*Ctx) (R, error)) Func0[R] {
	rc := codecFor[R]()
	ham.RegisterHandler(fnName(name), func(env any, dec *ham.Decoder, enc *ham.Encoder) error {
		r, err := impl(ctxOf(env))
		if err != nil {
			return err
		}
		rc.enc(enc, r)
		return nil
	})
	return Func0[R]{name: fnName(name), rc: rc}
}

// Bind produces the offloadable functor.
func (f Func0[R]) Bind() Functor[R] {
	return Functor[R]{name: f.name, payload: func(*ham.Encoder) {}, decode: resultDecoder(f.rc)}
}

// Func1 is a registered offloadable function with one argument.
type Func1[R, A1 any] struct {
	name string
	rc   valCodec[R]
	a1   valCodec[A1]
}

// NewFunc1 registers impl as an offloadable one-argument function.
func NewFunc1[R, A1 any](name string, impl func(*Ctx, A1) (R, error)) Func1[R, A1] {
	rc, a1 := codecFor[R](), codecFor[A1]()
	ham.RegisterHandler(fnName(name), func(env any, dec *ham.Decoder, enc *ham.Encoder) error {
		v1 := a1.dec(dec)
		if err := dec.Err(); err != nil {
			return err
		}
		r, err := impl(ctxOf(env), v1)
		if err != nil {
			return err
		}
		rc.enc(enc, r)
		return nil
	})
	return Func1[R, A1]{name: fnName(name), rc: rc, a1: a1}
}

// Bind binds the argument, producing the offloadable functor.
func (f Func1[R, A1]) Bind(v1 A1) Functor[R] {
	return Functor[R]{
		name:    f.name,
		payload: func(e *ham.Encoder) { f.a1.enc(e, v1) },
		decode:  resultDecoder(f.rc),
	}
}

// Func2 is a registered offloadable function with two arguments.
type Func2[R, A1, A2 any] struct {
	name string
	rc   valCodec[R]
	a1   valCodec[A1]
	a2   valCodec[A2]
}

// NewFunc2 registers impl as an offloadable two-argument function.
func NewFunc2[R, A1, A2 any](name string, impl func(*Ctx, A1, A2) (R, error)) Func2[R, A1, A2] {
	rc, a1, a2 := codecFor[R](), codecFor[A1](), codecFor[A2]()
	ham.RegisterHandler(fnName(name), func(env any, dec *ham.Decoder, enc *ham.Encoder) error {
		v1 := a1.dec(dec)
		v2 := a2.dec(dec)
		if err := dec.Err(); err != nil {
			return err
		}
		r, err := impl(ctxOf(env), v1, v2)
		if err != nil {
			return err
		}
		rc.enc(enc, r)
		return nil
	})
	return Func2[R, A1, A2]{name: fnName(name), rc: rc, a1: a1, a2: a2}
}

// Bind binds the arguments, producing the offloadable functor.
func (f Func2[R, A1, A2]) Bind(v1 A1, v2 A2) Functor[R] {
	return Functor[R]{
		name: f.name,
		payload: func(e *ham.Encoder) {
			f.a1.enc(e, v1)
			f.a2.enc(e, v2)
		},
		decode: resultDecoder(f.rc),
	}
}

// Func3 is a registered offloadable function with three arguments.
type Func3[R, A1, A2, A3 any] struct {
	name string
	rc   valCodec[R]
	a1   valCodec[A1]
	a2   valCodec[A2]
	a3   valCodec[A3]
}

// NewFunc3 registers impl as an offloadable three-argument function.
func NewFunc3[R, A1, A2, A3 any](name string, impl func(*Ctx, A1, A2, A3) (R, error)) Func3[R, A1, A2, A3] {
	rc, a1, a2, a3 := codecFor[R](), codecFor[A1](), codecFor[A2](), codecFor[A3]()
	ham.RegisterHandler(fnName(name), func(env any, dec *ham.Decoder, enc *ham.Encoder) error {
		v1 := a1.dec(dec)
		v2 := a2.dec(dec)
		v3 := a3.dec(dec)
		if err := dec.Err(); err != nil {
			return err
		}
		r, err := impl(ctxOf(env), v1, v2, v3)
		if err != nil {
			return err
		}
		rc.enc(enc, r)
		return nil
	})
	return Func3[R, A1, A2, A3]{name: fnName(name), rc: rc, a1: a1, a2: a2, a3: a3}
}

// Bind binds the arguments, producing the offloadable functor.
func (f Func3[R, A1, A2, A3]) Bind(v1 A1, v2 A2, v3 A3) Functor[R] {
	return Functor[R]{
		name: f.name,
		payload: func(e *ham.Encoder) {
			f.a1.enc(e, v1)
			f.a2.enc(e, v2)
			f.a3.enc(e, v3)
		},
		decode: resultDecoder(f.rc),
	}
}

// Func4 is a registered offloadable function with four arguments.
type Func4[R, A1, A2, A3, A4 any] struct {
	name string
	rc   valCodec[R]
	a1   valCodec[A1]
	a2   valCodec[A2]
	a3   valCodec[A3]
	a4   valCodec[A4]
}

// NewFunc4 registers impl as an offloadable four-argument function.
func NewFunc4[R, A1, A2, A3, A4 any](name string, impl func(*Ctx, A1, A2, A3, A4) (R, error)) Func4[R, A1, A2, A3, A4] {
	rc, a1, a2, a3, a4 := codecFor[R](), codecFor[A1](), codecFor[A2](), codecFor[A3](), codecFor[A4]()
	ham.RegisterHandler(fnName(name), func(env any, dec *ham.Decoder, enc *ham.Encoder) error {
		v1 := a1.dec(dec)
		v2 := a2.dec(dec)
		v3 := a3.dec(dec)
		v4 := a4.dec(dec)
		if err := dec.Err(); err != nil {
			return err
		}
		r, err := impl(ctxOf(env), v1, v2, v3, v4)
		if err != nil {
			return err
		}
		rc.enc(enc, r)
		return nil
	})
	return Func4[R, A1, A2, A3, A4]{name: fnName(name), rc: rc, a1: a1, a2: a2, a3: a3, a4: a4}
}

// Bind binds the arguments, producing the offloadable functor.
func (f Func4[R, A1, A2, A3, A4]) Bind(v1 A1, v2 A2, v3 A3, v4 A4) Functor[R] {
	return Functor[R]{
		name: f.name,
		payload: func(e *ham.Encoder) {
			f.a1.enc(e, v1)
			f.a2.enc(e, v2)
			f.a3.enc(e, v3)
			f.a4.enc(e, v4)
		},
		decode: resultDecoder(f.rc),
	}
}

// AsyncAll offloads one functor to each listed node and returns the futures
// in node order — the fan-out idiom of multi-VE applications (Table II's
// async, vectorised over targets).
func AsyncAll[R any](rt *Runtime, nodes []NodeID, fn Functor[R]) []*Future[R] {
	futs := make([]*Future[R], len(nodes))
	for i, n := range nodes {
		futs[i] = Async(rt, n, fn)
	}
	return futs
}

// GetAll collects every future, returning the results in order and the
// first error encountered (after draining all futures, so no offload is
// left dangling).
func GetAll[R any](futs []*Future[R]) ([]R, error) {
	out := make([]R, len(futs))
	var firstErr error
	for i, f := range futs {
		v, err := f.Get()
		out[i] = v
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}
