package core_test

import (
	"strings"
	"testing"

	"hamoffload/internal/backend/locb"
	"hamoffload/internal/core"
	"hamoffload/internal/simtime"
)

// Behavioural tests of message batching over the loopback backend: flush
// policies, ordering, error isolation and the disabled-policy fallback.
// The wire-format edge cases live in batch_wire_test.go, the cross-backend
// contract in internal/backend/conformance, and the retry/dedup interaction
// in both conformance and the machine chaos tests.

func TestBatchDisabledFallsBackToAsync(t *testing.T) {
	host, done := app(t)
	defer done()
	if host.Batching().Enabled() {
		t.Fatal("fresh runtime has batching armed")
	}
	b := core.NewBatcher(host)
	f := core.BatchAdd(b, 1, fnEcho.Bind("plain"))
	// With the zero policy BatchAdd degrades to Async: nothing queues and no
	// flush is needed.
	if n := b.Pending(1); n != 0 {
		t.Fatalf("disabled batcher queued %d messages", n)
	}
	if s, err := f.Get(); err != nil || s != "plain/plain" {
		t.Fatalf("fallback future = %q, %v", s, err)
	}
}

func TestBatchCountFlush(t *testing.T) {
	host, done := app(t)
	defer done()
	host.SetBatching(core.BatchPolicy{MaxMessages: 4})
	b := core.NewBatcher(host)
	var futs []*core.Future[string]
	for i := 0; i < 3; i++ {
		futs = append(futs, core.BatchAdd(b, 1, fnEcho.Bind("q")))
		if n := b.Pending(1); n != i+1 {
			t.Fatalf("after %d adds Pending = %d", i+1, n)
		}
	}
	// The fourth message reaches MaxMessages and ships the frame.
	futs = append(futs, core.BatchAdd(b, 1, fnEcho.Bind("q")))
	if n := b.Pending(1); n != 0 {
		t.Fatalf("after count flush Pending = %d", n)
	}
	for i, f := range futs {
		if s, err := f.Get(); err != nil || s != "q/q" {
			t.Fatalf("future %d = %q, %v", i, s, err)
		}
	}
}

func TestBatchByteCapFlush(t *testing.T) {
	host, done := app(t)
	defer done()
	// A cap of one byte cannot hold any message: every add must ship its
	// message immediately as a frame of one rather than stall or error.
	host.SetBatching(core.BatchPolicy{MaxMessages: 1 << 20, MaxBytes: 1})
	b := core.NewBatcher(host)
	for i := 0; i < 3; i++ {
		f := core.BatchAdd(b, 1, fnEcho.Bind("tiny"))
		if n := b.Pending(1); n != 0 {
			t.Fatalf("add %d left %d queued under a 1-byte cap", i, n)
		}
		if s, err := f.Get(); err != nil || s != "tiny/tiny" {
			t.Fatalf("byte-capped future %d = %q, %v", i, s, err)
		}
	}
}

func TestBatchGetForcesFlush(t *testing.T) {
	host, done := app(t)
	defer done()
	host.SetBatching(core.BatchPolicy{MaxMessages: 100})
	b := core.NewBatcher(host)
	f1 := core.BatchAdd(b, 1, fnEcho.Bind("a"))
	f2 := core.BatchAdd(b, 1, fnEcho.Bind("b"))
	if n := b.Pending(1); n != 2 {
		t.Fatalf("Pending = %d", n)
	}
	// No explicit Flush: blocking on any queued future must push the frame
	// out, or the program would deadlock right here.
	if s, err := f1.Get(); err != nil || s != "a/a" {
		t.Fatalf("f1 = %q, %v", s, err)
	}
	if s, err := f2.Get(); err != nil || s != "b/b" {
		t.Fatalf("f2 = %q, %v", s, err)
	}
}

func TestBatchTestIsNonBlocking(t *testing.T) {
	host, done := app(t)
	defer done()
	host.SetBatching(core.BatchPolicy{MaxMessages: 100})
	b := core.NewBatcher(host)
	f := core.BatchAdd(b, 1, fnEcho.Bind("t"))
	for !f.Test() {
	}
	if s, err := f.Get(); err != nil || s != "t/t" {
		t.Fatalf("future = %q, %v", s, err)
	}
}

func TestBatchErrorIsolation(t *testing.T) {
	host, done := app(t)
	defer done()
	host.SetBatching(core.BatchPolicy{MaxMessages: 8})
	b := core.NewBatcher(host)
	ok1 := core.BatchAdd(b, 1, fnEcho.Bind("pre"))
	bad := core.BatchAdd(b, 1, fnBoom.Bind())
	ok2 := core.BatchAdd(b, 1, fnEcho.Bind("post"))
	b.FlushAll()
	if s, err := ok1.Get(); err != nil || s != "pre/pre" {
		t.Fatalf("ok1 = %q, %v", s, err)
	}
	if _, err := bad.Get(); err == nil || !strings.Contains(err.Error(), "synthetic kernel failure") {
		t.Fatalf("bad = %v", err)
	}
	if s, err := ok2.Get(); err != nil || s != "post/post" {
		t.Fatalf("ok2 = %q, %v", s, err)
	}
	// The runtime is still live for plain offloads afterwards.
	if n, err := core.Sync(host, 1, fnWhoAmI.Bind()); err != nil || n != 1 {
		t.Fatalf("after mixed batch: whoami = %d, %v", n, err)
	}
}

func TestBatchAsyncBatchOrdering(t *testing.T) {
	host, done := app(t)
	defer done()
	host.SetBatching(core.BatchPolicy{MaxMessages: 4})
	fns := make([]core.Functor[int64], 11) // 4+4+3 frames
	for i := range fns {
		fns[i] = fnSum4.Bind(int64(i), 0, 0, 0)
	}
	futs := core.AsyncBatch(host, 1, fns)
	for i := len(futs) - 1; i >= 0; i-- { // out-of-order harvest
		if v, err := futs[i].Get(); err != nil || v != int64(i) {
			t.Fatalf("future %d = %d, %v", i, v, err)
		}
	}
}

func TestBatchValidation(t *testing.T) {
	host, done := app(t)
	defer done()
	host.SetBatching(core.BatchPolicy{MaxMessages: 4})
	b := core.NewBatcher(host)
	if _, err := core.BatchAdd(b, 0, fnEcho.Bind("x")).Get(); err == nil {
		t.Error("batched offload to self accepted")
	}
	if _, err := core.BatchAdd(b, 99, fnEcho.Bind("x")).Get(); err == nil {
		t.Error("batched offload to missing node accepted")
	}
	if n := b.Pending(0) + b.Pending(99); n != 0 {
		t.Errorf("invalid targets left %d messages queued", n)
	}
}

// simBackend wraps the loopback backend with a manually advanced simulated
// clock, so the MaxDelay flush path is testable without a full machine.
type simBackend struct {
	*locb.Node
	now simtime.Time
}

func (s *simBackend) SimNow() simtime.Time { return s.now }

func TestBatchDeadlineFlush(t *testing.T) {
	hb, tb, err := locb.NewPair(1 << 22)
	if err != nil {
		t.Fatal(err)
	}
	sb := &simBackend{Node: hb}
	target := core.NewRuntime(tb, "batch-deadline-target")
	host := core.NewRuntime(sb, "batch-deadline-host")
	serveDone := make(chan struct{})
	go func() {
		defer close(serveDone)
		if err := target.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	host.SetBatching(core.BatchPolicy{MaxMessages: 100, MaxDelay: 5 * simtime.Microsecond})

	b := core.NewBatcher(host)
	f1 := core.BatchAdd(b, 1, fnEcho.Bind("old"))
	if n := b.Pending(1); n != 1 {
		t.Fatalf("Pending = %d", n)
	}
	// Within the deadline the queue keeps accumulating...
	sb.now = sb.now.Add(2 * simtime.Microsecond)
	f2 := core.BatchAdd(b, 1, fnEcho.Bind("old"))
	if n := b.Pending(1); n != 2 {
		t.Fatalf("Pending before deadline = %d", n)
	}
	// ...but once the oldest message has waited past MaxDelay, the next add
	// flushes the overdue frame before queuing itself.
	sb.now = sb.now.Add(4 * simtime.Microsecond)
	f3 := core.BatchAdd(b, 1, fnEcho.Bind("new"))
	if n := b.Pending(1); n != 1 {
		t.Fatalf("Pending after deadline flush = %d (want just the new message)", n)
	}
	for i, f := range []*core.Future[string]{f1, f2, f3} {
		if _, err := f.Get(); err != nil {
			t.Fatalf("future %d: %v", i, err)
		}
	}
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	<-serveDone
}
