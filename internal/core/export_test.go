package core

// Test hooks for the external core_test package: the flow and batch frame
// parsers, so the wire-bytes guard tests can take captured frames apart.
// (The external package cannot see the unexported parsers, and this package
// cannot import a backend to build frames end-to-end without a cycle.)

// FlowHeaderLen is the size of the flow frame prefix (magic + trace ID).
const FlowHeaderLen = flowHeader

// OpenFlowFrame exposes openFlow.
func OpenFlowFrame(msg []byte) (id uint64, inner []byte, ok bool) { return openFlow(msg) }

// OpenBatchFrame exposes openBatch.
func OpenBatchFrame(msg []byte) (entries [][]byte, isBatch bool, err error) {
	return openBatch(msg)
}
