package core

import (
	"encoding/binary"
	"fmt"

	"hamoffload/internal/ham"
	"hamoffload/internal/simtime"
	"hamoffload/internal/telemetry"
	"hamoffload/internal/trace"
)

// Message batching: the fixed per-message overhead of the SX-Aurora
// protocols (flag write, DMA setup, target poll — the bulk of the 6 µs
// Fig. 9 cost) is paid once per wire message, so N small offloads bound
// for the same node can amortise it by travelling as one frame:
//
//	[u32 magic][u32 count]  then per message  [u32 len][bytes]
//
// The response comes back in the same framing, one entry per request, in
// request order. Each entry is an ordinary HAM message (or, with fault
// tolerance armed, an FT envelope around one), so per-message error
// isolation, checksums and the target's dedup window all keep working
// unchanged inside a batch — the target simply dispatches the entries
// through the normal path one by one.
//
// Batching is strictly opt-in per runtime (SetBatching); with the zero
// policy every offload travels exactly as before, bit-identical on the
// wire. Like the FT envelope, frame detection on the target relies on the
// magic being far above any plain HAM handler key.

const (
	batMagic  uint32 = 0xBA7C41ED
	batHeader        = 4 + 4 // magic + count
	batPerMsg        = 4     // per-entry length prefix
)

// sealBatch frames msgs into one batch wire message.
func sealBatch(msgs [][]byte) []byte {
	n := batHeader
	for _, m := range msgs {
		n += batPerMsg + len(m)
	}
	out := make([]byte, batHeader, n)
	binary.LittleEndian.PutUint32(out[0:4], batMagic)
	binary.LittleEndian.PutUint32(out[4:8], uint32(len(msgs)))
	for _, m := range msgs {
		var l [batPerMsg]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(m)))
		out = append(out, l[:]...)
		out = append(out, m...)
	}
	return out
}

// openBatch undoes sealBatch. isBatch is false when msg does not carry the
// magic (a plain HAM message or FT envelope). A magic match with broken
// framing — truncated entry, trailing bytes, absurd count — returns
// isBatch = true and an ErrPayloadCorrupt error.
func openBatch(msg []byte) (msgs [][]byte, isBatch bool, err error) {
	return openBatchInto(nil, msg)
}

// openBatchInto is openBatch appending the entries to dst, so steady-state
// frame splitting can reuse one scratch slice instead of allocating an entry
// list per frame. On a framing error dst is returned (possibly partially
// filled) so the caller keeps its scratch capacity. The returned entries
// alias msg and share its validity window.
//
//ham:borrowed msg
func openBatchInto(dst [][]byte, msg []byte) (msgs [][]byte, isBatch bool, err error) {
	if len(msg) < batHeader || binary.LittleEndian.Uint32(msg[0:4]) != batMagic {
		return nil, false, nil
	}
	count := int(binary.LittleEndian.Uint32(msg[4:8]))
	rest := msg[batHeader:]
	if count <= 0 || count > len(rest) {
		return dst, true, fmt.Errorf("%w: batch frame count %d for %d payload bytes", //lint:allow hotalloc corrupt-frame path: runs at most once per rejected frame
			ErrPayloadCorrupt, count, len(rest))
	}
	msgs = dst
	for i := 0; i < count; i++ {
		if len(rest) < batPerMsg {
			return msgs, true, fmt.Errorf("%w: batch entry %d truncated", ErrPayloadCorrupt, i) //lint:allow hotalloc corrupt-frame path: runs at most once per rejected frame
		}
		l := int(binary.LittleEndian.Uint32(rest[:batPerMsg]))
		rest = rest[batPerMsg:]
		if l < 0 || l > len(rest) {
			return msgs, true, fmt.Errorf("%w: batch entry %d claims %d of %d bytes", //lint:allow hotalloc corrupt-frame path: runs at most once per rejected frame
				ErrPayloadCorrupt, i, l, len(rest))
		}
		//lint:allow borrowck the entries alias the inbound frame by design; Dispatch consumes them before the serve loop reuses it
		msgs = append(msgs, rest[:l]) //lint:allow hotalloc amortized growth of the caller's entry scratch
		rest = rest[l:]
	}
	if len(rest) != 0 {
		return msgs, true, fmt.Errorf("%w: %d trailing bytes after batch", ErrPayloadCorrupt, len(rest)) //lint:allow hotalloc corrupt-frame path: runs at most once per rejected frame
	}
	return msgs, true, nil
}

// BatchPolicy drives when a Batcher flushes a node's queue. The zero value
// disables batching entirely: BatchAdd degrades to a plain Async and the
// wire bytes stay bit-identical to the unbatched protocol.
//
// With any field set, messages queue per node and a frame ships when the
// queue reaches MaxMessages entries (default 16), when its wire size would
// exceed MaxBytes (default: the backend's message-size limit), or — on
// backends with a simulated clock — when an Add or Flush observes that the
// oldest queued message has waited MaxDelay (0 = no deadline). The runtime
// has no timer of its own, so the deadline is checked lazily at those
// points; an idle queue still requires an explicit Flush/FlushAll or a
// blocking Future.Get, which always forces its own frame out.
type BatchPolicy struct {
	MaxMessages int
	MaxBytes    int
	MaxDelay    simtime.Duration
}

// Enabled reports whether the policy arms batching at all.
func (p BatchPolicy) Enabled() bool {
	return p.MaxMessages > 0 || p.MaxBytes > 0 || p.MaxDelay > 0
}

// messages returns the effective count threshold.
func (p BatchPolicy) messages() int {
	if p.MaxMessages > 0 {
		return p.MaxMessages
	}
	return 16
}

// SetBatching installs the batching policy on the initiating runtime.
// Call it before issuing offloads, alongside SetFaultTolerance.
func (rt *Runtime) SetBatching(p BatchPolicy) { rt.batch = p }

// Batching returns the runtime's batching policy.
func (rt *Runtime) Batching() BatchPolicy { return rt.batch }

// MessageSizer is implemented by backends with a bounded wire-message size
// (the slot protocols cap messages at min(BufSize, slots.MaxLen)); the
// batcher uses it to split frames so batch-aware length accounting never
// exceeds what a flag word can publish.
type MessageSizer interface {
	MaxMessageLen() int
}

// simClock is implemented by backends whose initiator runs on the DES
// clock; the batcher reads it for MaxDelay-based flushes. Wall-clock
// backends do not implement it and ignore the deadline.
type simClock interface {
	SimNow() simtime.Time
}

// settler is the type-erased face of *Future[T] a batch frame settles
// results through.
type settler interface {
	settle(resp []byte)
	fail(err error)
}

// Batcher queues offloads per target node and ships each queue as batch
// frames according to the runtime's BatchPolicy. It is not safe for
// concurrent use, matching the rest of the runtime's initiator API.
type Batcher struct {
	rt     *Runtime
	queues []*batchQueue // first-use order, so FlushAll is deterministic
}

// NewBatcher creates a batcher over rt's backend and policy.
func NewBatcher(rt *Runtime) *Batcher { return &Batcher{rt: rt} }

// batchQueue accumulates one node's pending frame. The frame is built as it
// queues: each added message is copied into the frame arena behind its
// length prefix, so a flush only stamps the header and posts the arena —
// no per-flush assembly, and the queue never retains the (scratch-backed)
// wire bytes it was handed.
type batchQueue struct {
	node     NodeID
	frame    []byte         // the wire frame under construction: header + entries
	count    int            // messages queued in frame
	pds      []*pending     // per-message FT state, nil entries with FT off
	sinks    []settler      // futures awaiting the frame, parallel to entries
	tks      []*batchTicket // tickets to rebind at flush, parallel to entries
	fids     []uint64       // per-message causal trace IDs, 0 without flows
	firstAdd simtime.Time   // clock at first queued message (deadline basis)
	timed    bool           // firstAdd is valid
}

// putEntry copies one wire message into the frame arena.
func (q *batchQueue) putEntry(wire []byte) {
	var l [batPerMsg]byte
	binary.LittleEndian.PutUint32(l[:], uint32(len(wire)))
	q.frame = append(q.frame, l[:]...) //lint:allow hotalloc amortized growth of the frame arena (covers both appends)
	q.frame = append(q.frame, wire...)
	q.count++
}

// reset clears the queue for the next frame, keeping the arena and the
// ticket/trace-ID capacity. pds and sinks are NOT touched here: flushQueue
// hands their backing arrays to the batchCall and replaces them.
func (q *batchQueue) reset() {
	q.frame = q.frame[:batHeader]
	q.count = 0
	q.tks = q.tks[:0]
	q.fids = q.fids[:0]
	q.timed = false
}

// queue returns (creating if needed) the queue for node.
func (b *Batcher) queue(node NodeID) *batchQueue {
	for _, q := range b.queues {
		if q.node == node {
			return q
		}
	}
	q := &batchQueue{node: node, frame: make([]byte, batHeader)} //lint:allow hotalloc one queue per target node, created on first use and reused forever
	b.queues = append(b.queues, q)
	return q
}

// frameCap returns the largest frame the policy and backend permit.
func (b *Batcher) frameCap() int {
	limit := int(^uint(0) >> 1) // effectively unbounded
	if ms, ok := b.rt.backend.(MessageSizer); ok {
		limit = ms.MaxMessageLen()
	}
	if mb := b.rt.batch.MaxBytes; mb > 0 && mb < limit {
		limit = mb
	}
	return limit
}

// Pending returns how many messages are queued for node, for tests and
// introspection.
func (b *Batcher) Pending(node NodeID) int {
	for _, q := range b.queues {
		if q.node == node {
			return q.count
		}
	}
	return 0
}

// Flush ships node's queued messages now, if any.
func (b *Batcher) Flush(node NodeID) {
	for _, q := range b.queues {
		if q.node == node {
			b.flushQueue(q)
			return
		}
	}
}

// FlushAll ships every node's queued messages, in first-use node order.
func (b *Batcher) FlushAll() {
	for _, q := range b.queues {
		b.flushQueue(q)
	}
}

// deadlineDue reports whether q's oldest message has outwaited MaxDelay.
func (b *Batcher) deadlineDue(q *batchQueue) bool {
	d := b.rt.batch.MaxDelay
	if d <= 0 || !q.timed {
		return false
	}
	clk, ok := b.rt.backend.(simClock)
	return ok && clk.SimNow().Sub(q.firstAdd) >= d
}

// BatchAdd queues fn for node on b and returns its future. The frame ships
// when the policy says so, on an explicit Flush/FlushAll, or when one of
// the frame's futures blocks in Get. With batching disabled it is exactly
// Async. (A package-level function because Go methods cannot introduce the
// result type parameter.)
//
//hot:path
func BatchAdd[R any](b *Batcher, node NodeID, fn Functor[R]) *Future[R] {
	rt := b.rt
	if !rt.batch.Enabled() {
		return Async(rt, node, fn)
	}
	endOff := rt.beginOffload(node, fn.name)
	if node == rt.ThisNode() {
		return failedFuture[R](rt, endOff, errOffloadSelf(node))
	}
	if int(node) < 0 || int(node) >= rt.NumNodes() {
		return failedFuture[R](rt, endOff, errNoNode(node, rt.NumNodes()))
	}
	var endEnc func()
	if rt.tr != nil {
		endEnc = rt.tr.Begin(trace.PhaseEncode, "encode "+fn.name, rt.offloads+1)
	}
	msg, err := rt.bin.EncodeRequest(fn.name, fn.payload)
	if endEnc != nil {
		endEnc()
	}
	if err != nil {
		return failedFuture[R](rt, endOff, err)
	}
	rt.offloads++
	wire, pd := rt.seal(node, msg)
	wire, fid := rt.flowSeal(wire, pd)

	q := b.queue(node)
	// Length accounting against the frame cap: ship the current frame first
	// if this message would overflow it. A message too large for any frame
	// still goes out (as a batch of one) and draws the backend's own
	// size error, like an unbatched oversized Call would.
	if q.count > 0 && len(q.frame)+batPerMsg+len(wire) > b.frameCap() {
		b.flushQueue(q)
	}
	if b.deadlineDue(q) {
		b.flushQueue(q)
	}
	f := &Future[R]{rt: rt, decode: fn.decode, onDone: endOff} //lint:allow hotalloc one future per offload is the API contract
	f.btv = batchTicket{b: b, q: q}
	f.bt = &f.btv
	if !q.timed {
		if clk, ok := rt.backend.(simClock); ok {
			q.firstAdd, q.timed = clk.SimNow(), true
		}
	}
	q.putEntry(wire)
	q.pds = append(q.pds, pd)    //lint:allow hotalloc amortized: backing array cycles through the batchCall pool
	q.sinks = append(q.sinks, f) //lint:allow hotalloc amortized: backing array cycles through the batchCall pool
	q.tks = append(q.tks, f.bt)  //lint:allow hotalloc amortized growth of the queue's ticket list
	q.fids = append(q.fids, fid)
	if rt.tel != nil {
		rt.tel.Gauge(int(node), telemetry.SeriesQueue, rt.telNow(), int64(q.count))
	}
	if q.count >= rt.batch.messages() || len(q.frame) >= b.frameCap() {
		b.flushQueue(q)
	}
	return f
}

// AsyncBatch offloads fns to node as batch frames under rt's policy and
// returns the futures in submission order — the bulk analogue of Async.
// With batching disabled each functor goes out individually.
func AsyncBatch[R any](rt *Runtime, node NodeID, fns []Functor[R]) []*Future[R] {
	b := NewBatcher(rt)
	futs := make([]*Future[R], len(fns))
	for i, fn := range fns {
		futs[i] = BatchAdd(b, node, fn)
	}
	b.FlushAll()
	return futs
}

// flushQueue stamps the header onto q's frame arena, posts it, and rebinds
// the queued futures to the in-flight batchCall.
//
//hot:path
func (b *Batcher) flushQueue(q *batchQueue) {
	if q.count == 0 {
		return
	}
	rt := b.rt
	frame := q.frame
	binary.LittleEndian.PutUint32(frame[0:4], batMagic)
	binary.LittleEndian.PutUint32(frame[4:8], uint32(q.count))
	var endBatch func()
	if rt.tr != nil {
		endBatch = rt.tr.Begin(trace.PhaseBatch,
			fmt.Sprintf("batch flush node %d x%d", q.node, q.count), rt.offloads)
		rt.tr.Count("batch.flushes", 1)
		rt.tr.Count("batch.messages", int64(q.count))
	}
	if rt.tel != nil {
		now := rt.telNow()
		rt.tel.Add(int(q.node), telemetry.SeriesOccupancy, now, int64(q.count))
		rt.tel.Gauge(int(q.node), telemetry.SeriesQueue, now, 0)
		label := fmt.Sprintf("x%d", q.count)
		for _, fid := range q.fids {
			rt.tel.Event(fid, now, int(rt.ThisNode()), telemetry.FlowFlush, label)
		}
	}
	var fpd *pending
	if rt.ft.enabled() {
		// The frame retransmits as a unit; the sub-envelopes' sequence
		// numbers make re-execution safe, so the frame reuses the first
		// entry's seq (and first trace ID) for bookkeeping and labels. The
		// arena is reset below, so retransmission needs its own stable copy
		// of the frame.
		fpd = &pending{ //lint:allow hotalloc retransmission state must outlive the flush
			node: q.node,
			msg:  append([]byte(nil), frame...), //lint:allow hotalloc retransmission needs a stable copy of the scratch-backed frame
			seq:  q.pds[0].seq,
			fid:  q.fids[0],
		}
	}
	// The batchCall takes ownership of the pds and sinks arrays; the queue
	// continues on the recycled call's arrays (nil on the first flush), so
	// post-flush appends can never clobber the in-flight call's view.
	bc := rt.takeBatchCall()
	bc.fpd = fpd
	bc.pds, q.pds = q.pds, bc.pds[:0]
	bc.sinks, q.sinks = q.sinks, bc.sinks[:0]
	rt.noteSent(q.node, len(frame))
	h, err := rt.backend.Call(q.node, frame)
	if err != nil && rt.canRetry(fpd, err) {
		h, err = rt.resubmit(fpd)
	}
	if endBatch != nil {
		endBatch()
	}
	for _, tk := range q.tks {
		tk.bc, tk.q = bc, nil
	}
	q.reset()
	if err != nil {
		bc.failAll(err)
		return
	}
	bc.h = h
}

// batchTicket links one future to its frame: before the flush it points at
// the queue (so a blocking Get can force the frame out), afterwards at the
// in-flight batchCall.
type batchTicket struct {
	b  *Batcher
	q  *batchQueue
	bc *batchCall
}

func (tk *batchTicket) ensureFlushed() {
	if tk.bc == nil {
		tk.b.flushQueue(tk.q)
	}
}

// batchCall is one in-flight batch frame: the shared resolution state of
// all its futures. The whole frame retries as a unit under the runtime's
// fault-tolerance policy; the target answers retransmitted entries from
// its dedup window, so handlers still run at most once.
//
// Completed calls recycle through the runtime's single-slot pool
// (takeBatchCall): once deliver or failAll has settled every sink, the
// futures short-circuit on their own done flag and never touch the call
// again, so its arrays are free to back the next frame.
type batchCall struct {
	rt    *Runtime
	h     Handle
	fpd   *pending   // frame retransmission state, nil with FT off
	pds   []*pending // per-entry envelope state, nil entries with FT off
	sinks []settler
	done  bool

	// deliver scratch, reused across retries and pool cycles.
	subs     [][]byte
	payloads [][]byte
}

// takeBatchCall returns a batchCall for the next flush, recycling the last
// completed one when available.
func (rt *Runtime) takeBatchCall() *batchCall {
	bc := rt.freeBC
	if bc == nil {
		return &batchCall{rt: rt} //lint:allow hotalloc pool miss: one call object per concurrently in-flight frame
	}
	rt.freeBC = nil
	bc.h, bc.fpd, bc.done = nil, nil, false
	return bc
}

// recycle parks the completed call for reuse. Callers must have settled
// every sink first.
func (bc *batchCall) recycle() { bc.rt.freeBC = bc }

// resolve blocks until the frame completes and settles every future.
func (bc *batchCall) resolve() {
	if bc.done {
		return
	}
	for {
		resp, err := bc.rt.backend.Wait(bc.h)
		if err == nil {
			err = bc.deliver(resp)
			if err == nil {
				return
			}
		}
		if !bc.rt.canRetry(bc.fpd, err) {
			bc.rt.noteTimeout(err)
			bc.failAll(err)
			return
		}
		h, rerr := bc.rt.resubmit(bc.fpd)
		if rerr != nil {
			bc.failAll(rerr)
			return
		}
		bc.h = h
	}
}

// poll is the non-blocking variant of resolve, for Future.Test.
func (bc *batchCall) poll() {
	if bc.done {
		return
	}
	resp, done, err := bc.rt.backend.Poll(bc.h)
	if err == nil && !done {
		return
	}
	if err == nil {
		if err = bc.deliver(resp); err == nil {
			return
		}
	}
	if bc.rt.canRetry(bc.fpd, err) {
		h, rerr := bc.rt.resubmit(bc.fpd)
		if rerr == nil {
			bc.h = h
			return
		}
		err = rerr
	}
	bc.rt.noteTimeout(err)
	bc.failAll(err)
}

// deliver splits the batch response and settles the futures. A non-nil
// return means the frame must be treated as failed (and possibly retried):
// the response was not batch-framed under FT, the entry count is off, or
// an entry failed envelope validation.
func (bc *batchCall) deliver(resp []byte) error {
	subs, isBatch, err := openBatchInto(bc.subs[:0], resp)
	bc.subs = subs
	if !isBatch {
		if bc.fpd != nil {
			return fmt.Errorf("%w: batch response not framed", ErrPayloadCorrupt)
		}
		// Without FT nothing retries: surface whatever the target said —
		// typically its failure response to a frame it could not parse —
		// through every future.
		for _, s := range bc.sinks {
			s.settle(resp)
		}
		bc.done = true
		bc.recycle()
		return nil
	}
	if err != nil {
		return err
	}
	if len(subs) != len(bc.sinks) {
		return fmt.Errorf("%w: batch response carries %d entries, want %d",
			ErrPayloadCorrupt, len(subs), len(bc.sinks))
	}
	// Validate every entry before settling any, so a single corrupt entry
	// retries the frame instead of splitting it into settled and lost
	// halves. The dedup window answers the already-executed entries.
	payloads := bc.payloads[:0]
	for i, sub := range subs {
		p, err := bc.rt.openResponse(bc.pds[i], sub)
		if err != nil {
			bc.payloads = payloads
			return err
		}
		payloads = append(payloads, p)
	}
	bc.payloads = payloads
	for i, s := range bc.sinks {
		s.settle(payloads[i])
	}
	bc.done = true
	bc.recycle()
	return nil
}

// failAll fails every unsettled future with err.
func (bc *batchCall) failAll(err error) {
	for _, s := range bc.sinks {
		s.fail(err)
	}
	bc.done = true
	bc.recycle()
}

// dispatchBatch executes one batch frame on the target: every entry runs
// through the normal Dispatch path (FT validation, dedup, handler), so
// errors stay isolated per entry, and the responses return as one frame.
// A frame with broken framing draws a plain failure response.
//
// The response frame is built incrementally in the runtime's arena: each
// entry's response is copied in before the next entry dispatches, because a
// Dispatch response is only valid until the next Dispatch (it may alias the
// binary's scratch encoder). The arena is stolen for the duration, so a
// nested batch entry builds its frame in a fresh buffer.
func (rt *Runtime) dispatchBatch(subs [][]byte, berr error) []byte {
	if berr != nil {
		rt.tr.Instant(trace.PhaseFault, "corrupt batch frame", rt.executed)
		rt.tr.Count("dispatch.batch.corrupt", 1)
		return ham.EncodeFailure(berr.Error())
	}
	var end func()
	if rt.tr != nil {
		end = rt.tr.Begin(trace.PhaseBatch, fmt.Sprintf("batch x%d", len(subs)), rt.executed+1)
		rt.tr.Count("dispatch.batches", 1)
	}
	frame := rt.batchScratch[:0]
	rt.batchScratch = nil
	var hdr [batHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], batMagic)
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(subs)))
	frame = append(frame, hdr[:]...) //lint:allow hotalloc amortized growth of the response-frame arena
	for _, m := range subs {
		resp := rt.Dispatch(m)
		var l [batPerMsg]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(resp)))
		frame = append(frame, l[:]...) //lint:allow hotalloc amortized growth of the response-frame arena (covers both appends)
		frame = append(frame, resp...)
	}
	if end != nil {
		end()
	}
	rt.batchScratch = frame
	return frame
}
