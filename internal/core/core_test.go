package core_test

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"hamoffload/internal/backend/locb"
	"hamoffload/internal/core"
	"hamoffload/internal/ham"
)

// Offloadable functions used by the tests, registered once at package level
// — the analog of C++ static initialisation (§III-C).
var (
	fnInner = core.NewFunc3[float64]("test.inner_prod",
		func(c *core.Ctx, a, b core.BufferPtr[float64], n int64) (float64, error) {
			av, err := core.ReadLocal(c, a, 0, n)
			if err != nil {
				return 0, err
			}
			bv, err := core.ReadLocal(c, b, 0, n)
			if err != nil {
				return 0, err
			}
			c.ChargeVector(2*n, 16*n, 8)
			r := 0.0
			for i := range av {
				r += av[i] * bv[i]
			}
			return r, nil
		})

	fnScale = core.NewFunc2[core.Unit]("test.scale",
		func(c *core.Ctx, buf core.BufferPtr[float64], f float64) (core.Unit, error) {
			v, err := core.ReadLocal(c, buf, 0, buf.Count)
			if err != nil {
				return core.Unit{}, err
			}
			for i := range v {
				v[i] *= f
			}
			return core.Unit{}, core.WriteLocal(c, buf, 0, v)
		})

	fnEcho = core.NewFunc1[string]("test.echo",
		func(c *core.Ctx, s string) (string, error) { return s + "/" + s, nil })

	fnWhoAmI = core.NewFunc0[int]("test.whoami",
		func(c *core.Ctx) (int, error) { return int(c.Node()), nil })

	fnBoom = core.NewFunc0[core.Unit]("test.boom",
		func(c *core.Ctx) (core.Unit, error) {
			return core.Unit{}, errTestBoom
		})

	fnSum4 = core.NewFunc4[int64]("test.sum4",
		func(c *core.Ctx, a, b, cc, d int64) (int64, error) { return a + b + cc + d, nil })
)

type boomErr struct{}

func (boomErr) Error() string { return "boom: synthetic kernel failure" }

var errTestBoom = boomErr{}

// app spins up a two-node loopback application and returns the host runtime
// plus a cleanup function.
func app(t *testing.T) (*core.Runtime, func()) {
	t.Helper()
	hb, tb, err := locb.NewPair(1 << 24)
	if err != nil {
		t.Fatal(err)
	}
	// Order matters, as with real heterogeneous binaries: register
	// everything, then instantiate both binaries.
	target := core.NewRuntime(tb, "loopback-target-arch")
	host := core.NewRuntime(hb, "loopback-host-arch")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := target.Serve(); err != nil {
			t.Errorf("target Serve: %v", err)
		}
	}()
	return host, func() {
		if err := host.Finalize(); err != nil {
			t.Errorf("Finalize: %v", err)
		}
		wg.Wait()
	}
}

func TestInnerProductEndToEnd(t *testing.T) {
	// The paper's Fig. 2 example, ported: allocate, put, async offload, get.
	host, done := app(t)
	defer done()

	const n = 1024
	a := make([]float64, n)
	b := make([]float64, n)
	want := 0.0
	for i := range a {
		a[i] = float64(i)
		b[i] = 2.0
		want += a[i] * b[i]
	}
	target := core.NodeID(1)
	aT, err := core.Allocate[float64](host, target, n)
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	bT, err := core.Allocate[float64](host, target, n)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Put(host, a, aT); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := core.Put(host, b, bT); err != nil {
		t.Fatal(err)
	}
	fut := core.Async(host, target, fnInner.Bind(aT, bT, n))
	got, err := fut.Get()
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if got != want {
		t.Fatalf("inner product = %v, want %v", got, want)
	}
	if err := core.Free(host, aT); err != nil {
		t.Fatal(err)
	}
	if err := core.Free(host, bT); err != nil {
		t.Fatal(err)
	}
}

func TestSyncOffloadAndVoidResult(t *testing.T) {
	host, done := app(t)
	defer done()
	target := core.NodeID(1)
	buf, err := core.Allocate[float64](host, target, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Put(host, []float64{1, 2, 3, 4}, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := core.Sync(host, target, fnScale.Bind(buf, 10.0)); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	got := make([]float64, 4)
	if err := core.Get(host, buf, got); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != float64(i+1)*10 {
			t.Fatalf("got = %v", got)
		}
	}
}

func TestStringAndMultiArgOffloads(t *testing.T) {
	host, done := app(t)
	defer done()
	target := core.NodeID(1)
	s, err := core.Sync(host, target, fnEcho.Bind("ham"))
	if err != nil || s != "ham/ham" {
		t.Fatalf("echo = %q, %v", s, err)
	}
	n, err := core.Sync(host, target, fnWhoAmI.Bind())
	if err != nil || n != 1 {
		t.Fatalf("whoami = %d, %v", n, err)
	}
	v, err := core.Sync(host, target, fnSum4.Bind(1, 2, 3, 4))
	if err != nil || v != 10 {
		t.Fatalf("sum4 = %d, %v", v, err)
	}
}

func TestFutureTestIsNonBlocking(t *testing.T) {
	host, done := app(t)
	defer done()
	fut := core.Async(host, 1, fnEcho.Bind("x"))
	// Eventually the result arrives; Test must never block.
	for !fut.Test() {
	}
	s, err := fut.Get()
	if err != nil || s != "x/x" {
		t.Fatalf("future = %q, %v", s, err)
	}
}

func TestRemoteErrorPropagates(t *testing.T) {
	host, done := app(t)
	defer done()
	_, err := core.Sync(host, 1, fnBoom.Bind())
	if err == nil || !strings.Contains(err.Error(), "synthetic kernel failure") {
		t.Fatalf("err = %v", err)
	}
	// The application survives a failed offload.
	if _, err := core.Sync(host, 1, fnWhoAmI.Bind()); err != nil {
		t.Fatalf("offload after failure: %v", err)
	}
}

func TestMustGetPanicsOnRemoteError(t *testing.T) {
	host, done := app(t)
	defer done()
	defer func() {
		if recover() == nil {
			t.Error("MustGet did not panic")
		}
	}()
	core.Async(host, 1, fnBoom.Bind()).MustGet()
}

func TestOffloadValidation(t *testing.T) {
	host, done := app(t)
	defer done()
	if _, err := core.Sync(host, 0, fnWhoAmI.Bind()); err == nil {
		t.Error("offload to self should fail")
	}
	if _, err := core.Sync(host, 99, fnWhoAmI.Bind()); err == nil {
		t.Error("offload to missing node should fail")
	}
	if _, err := core.Allocate[float64](host, 1, 0); err == nil {
		t.Error("zero-size allocate should fail")
	}
	if _, err := core.Allocate[float64](host, 1, -3); err == nil {
		t.Error("negative allocate should fail")
	}
}

func TestPutGetBounds(t *testing.T) {
	host, done := app(t)
	defer done()
	buf, err := core.Allocate[int64](host, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Put(host, make([]int64, 9), buf); err == nil {
		t.Error("oversized put accepted")
	}
	if err := core.Get(host, buf, make([]int64, 9)); err == nil {
		t.Error("oversized get accepted")
	}
	if err := core.Put(host, nil, buf); err != nil {
		t.Errorf("empty put should be a no-op: %v", err)
	}
	if err := core.Free(host, buf); err != nil {
		t.Fatal(err)
	}
	// Double free fails remotely.
	if err := core.Free(host, buf); err == nil {
		t.Error("double free accepted")
	}
	// Freeing a nil pointer is a no-op.
	if err := core.Free(host, core.BufferPtr[int64]{}); err != nil {
		t.Errorf("nil free: %v", err)
	}
}

func TestBufferPtrOffset(t *testing.T) {
	host, done := app(t)
	defer done()
	buf, err := core.Allocate[float64](host, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.Put(host, []float64{1, 2, 3, 4, 5}, buf); err != nil {
		t.Fatal(err)
	}
	off, err := buf.Offset(2)
	if err != nil {
		t.Fatal(err)
	}
	if off.Count != 98 {
		t.Errorf("offset Count = %d", off.Count)
	}
	got := make([]float64, 3)
	if err := core.Get(host, off, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 3 || got[1] != 4 || got[2] != 5 {
		t.Errorf("offset read = %v", got)
	}
	if _, err := buf.Offset(-1); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := buf.Offset(101); err == nil {
		t.Error("out-of-range offset accepted")
	}
}

func TestCopyBetweenTargets(t *testing.T) {
	nodes, err := locb.NewN(3, 1<<22)
	if err != nil {
		t.Fatal(err)
	}
	rts := make([]*core.Runtime, 3)
	for i, n := range nodes {
		arch := "multi-target-arch"
		if i == 0 {
			arch = "multi-host-arch"
		}
		rts[i] = core.NewRuntime(n, arch)
	}
	var wg sync.WaitGroup
	for i := 1; i < 3; i++ {
		wg.Add(1)
		go func(rt *core.Runtime) {
			defer wg.Done()
			if err := rt.Serve(); err != nil {
				t.Errorf("Serve: %v", err)
			}
		}(rts[i])
	}
	host := rts[0]
	src, err := core.Allocate[int32](host, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := core.Allocate[int32](host, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	vals := []int32{10, 20, 30, 40}
	if err := core.Put(host, vals, src); err != nil {
		t.Fatal(err)
	}
	if err := core.Copy(host, src, dst, 4); err != nil {
		t.Fatalf("Copy: %v", err)
	}
	got := make([]int32, 4)
	if err := core.Get(host, dst, got); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("copy result = %v", got)
		}
	}
	if err := core.Copy(host, src, dst, 99); err == nil {
		t.Error("oversized copy accepted")
	}
	if err := host.Finalize(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
}

func TestNodeIntrospection(t *testing.T) {
	host, done := app(t)
	defer done()
	if host.ThisNode() != 0 {
		t.Error("host is not node 0")
	}
	if host.NumNodes() != 2 {
		t.Error("NumNodes != 2")
	}
	d, err := host.Ping(1)
	if err != nil {
		t.Fatalf("Ping: %v", err)
	}
	if d.Name != "loc1" || d.Device != "target" {
		t.Errorf("descriptor = %+v", d)
	}
	if host.Offloads() == 0 {
		t.Error("offload counter not advancing")
	}
}

func TestHeapLeakAccounting(t *testing.T) {
	h, err := core.NewHeap("leak", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	a1, err := h.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if h.Live() != 1 {
		t.Errorf("Live = %d", h.Live())
	}
	if err := h.Write(a1, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := h.Free(a1); err != nil {
		t.Fatal(err)
	}
	if h.Live() != 0 {
		t.Errorf("Live after free = %d", h.Live())
	}
	if err := h.Read(a1, make([]byte, 1)); err == nil {
		t.Error("read after free should fault")
	}
}

// Property: Put followed by Get round-trips arbitrary float64 payloads
// through target memory.
func TestPutGetRoundTripProperty(t *testing.T) {
	host, done := app(t)
	defer done()
	buf, err := core.Allocate[float64](host, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	f := func(vals []float64) bool {
		if len(vals) > 512 {
			vals = vals[:512]
		}
		if err := core.Put(host, vals, buf); err != nil {
			return false
		}
		got := make([]float64, len(vals))
		if err := core.Get(host, buf, got); err != nil {
			return false
		}
		for i := range vals {
			// Compare bit patterns (NaN-safe) via equality of both or both NaN.
			if got[i] != vals[i] && (got[i] == got[i] || vals[i] == vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAsyncPutGetVariants(t *testing.T) {
	host, done := app(t)
	defer done()
	buf, err := core.Allocate[float64](host, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	fput := core.PutAsync(host, []float64{1, 2, 3}, buf)
	if !fput.Test() {
		t.Error("PutAsync future should be immediately ready")
	}
	if _, err := fput.Get(); err != nil {
		t.Fatalf("PutAsync: %v", err)
	}
	out := make([]float64, 3)
	fget := core.GetAsync(host, buf, out)
	if _, err := fget.Get(); err != nil {
		t.Fatalf("GetAsync: %v", err)
	}
	if out[0] != 1 || out[2] != 3 {
		t.Fatalf("GetAsync data = %v", out)
	}
	// Errors surface through the future.
	bad := core.PutAsync(host, make([]float64, 99), buf)
	if _, err := bad.Get(); err == nil {
		t.Error("oversized PutAsync should fail")
	}
}

func TestCheckCompatible(t *testing.T) {
	host, done := app(t)
	defer done()
	if err := host.CheckCompatible(1); err != nil {
		t.Fatalf("matching binaries reported incompatible: %v", err)
	}
}

func TestFingerprintDetectsProgramSkew(t *testing.T) {
	// A target whose binary was instantiated BEFORE an extra registration is
	// incompatible with a host instantiated after it — the mistake the
	// fingerprint exists to catch.
	hb, tb, err := locb.NewPair(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	target := core.NewRuntime(tb, "skew-target")
	// The extra name sorts after every other registered message (raw
	// registration, to dodge the "fn:" prefix), so existing keys keep their
	// values (terminate still works for cleanup) while the fingerprints must
	// differ.
	ham.RegisterHandler("zzz.skew.extra",
		func(env any, dec *ham.Decoder, enc *ham.Encoder) error { return nil })
	host := core.NewRuntime(hb, "skew-host")
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = target.Serve()
	}()
	defer func() {
		_ = host.Finalize()
		wg.Wait()
	}()
	err = host.CheckCompatible(1)
	if err == nil {
		t.Fatal("skewed binaries reported compatible")
	}
}
