package core

import "errors"

// The typed error taxonomy of the fault-tolerant runtime. Backends wrap
// these sentinels (with %w) so applications can classify failures with
// errors.Is regardless of which transport produced them.
var (
	// ErrNodeFailed marks a permanent node failure: the VE process crashed,
	// the connection dropped, or the node was killed. In-flight futures fail
	// with it and new offloads to the node are rejected until the node is
	// recovered (Runtime.RecoverNode).
	ErrNodeFailed = errors.New("ham: node failed")

	// ErrOffloadTimeout marks an offload whose response did not arrive
	// within the backend's configured timeout on the simulated clock.
	ErrOffloadTimeout = errors.New("ham: offload timed out")

	// ErrPayloadCorrupt marks a message whose checksum did not verify; the
	// payload was damaged in transit. It is transient: retransmission draws
	// fresh transfers.
	ErrPayloadCorrupt = errors.New("ham: payload corrupt")
)

// transienter is the classification interface injected faults implement
// (faults.Error); core stays decoupled from the faults package by chasing
// it through the wrap chain instead of importing the type.
type transienter interface{ Transient() bool }

// IsTransient reports whether err is worth retrying: corrupt payloads,
// injected transfer errors, dropped-connection resets. Node failures and
// timeouts are not — a dead node needs recovery, and a timed-out offload
// already exhausted its budget.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrNodeFailed) || errors.Is(err, ErrOffloadTimeout) {
		return false
	}
	if errors.Is(err, ErrPayloadCorrupt) {
		return true
	}
	var t transienter
	if errors.As(err, &t) {
		return t.Transient()
	}
	return false
}
