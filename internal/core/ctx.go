package core

import "fmt"

// Ctx is the execution context passed to offloaded functions while they run
// on a target node: access to the local memory behind buffer pointers, the
// node identity, and the compute-time model of the executing device.
type Ctx struct {
	rt *Runtime
}

// ctxOf returns the runtime's embedded context: handlers run strictly
// sequentially on their runtime, so one cached Ctx serves every dispatch
// without a per-call allocation.
func ctxOf(env any) *Ctx { return &env.(*Runtime).ctx }

// Runtime returns the target-side runtime.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// Node returns the executing node's id.
func (c *Ctx) Node() NodeID { return c.rt.ThisNode() }

// ChargeVector accounts roofline time for a vectorised kernel region on the
// executing device (no-op on wall-clock nodes).
func (c *Ctx) ChargeVector(flops, bytes int64, cores int) {
	c.rt.backend.ChargeVector(flops, bytes, cores)
}

// ChargeScalar accounts scalar-pipeline time (no-op on wall-clock nodes).
func (c *Ctx) ChargeScalar(ops int64) {
	c.rt.backend.ChargeScalar(ops)
}

// checkLocal verifies that the buffer lives on the executing node.
func (c *Ctx) checkLocal(node NodeID) error {
	if node != c.rt.ThisNode() {
		return fmt.Errorf("core: buffer on node %d accessed from node %d", node, c.rt.ThisNode())
	}
	return nil
}

// ReadLocal loads count elements starting at element offset off from a
// local buffer — how an offloaded function gets at the data behind a
// buffer_ptr argument.
func ReadLocal[T Elem](c *Ctx, b BufferPtr[T], off, count int64) ([]T, error) {
	if err := c.checkLocal(b.Node); err != nil {
		return nil, err
	}
	if off < 0 || count < 0 || off+count > b.Count {
		return nil, fmt.Errorf("core: local read [%d,+%d) outside buffer of %d elements", off, count, b.Count)
	}
	raw := make([]byte, count*sizeOf[T]())
	if err := c.rt.backend.Memory().Read(b.Addr+uint64(off*sizeOf[T]()), raw); err != nil {
		return nil, err
	}
	out := make([]T, count)
	if err := bytesToElems(raw, out); err != nil {
		return nil, err
	}
	return out, nil
}

// WriteLocal stores vals into a local buffer at element offset off.
func WriteLocal[T Elem](c *Ctx, b BufferPtr[T], off int64, vals []T) error {
	if err := c.checkLocal(b.Node); err != nil {
		return err
	}
	if off < 0 || off+int64(len(vals)) > b.Count {
		return fmt.Errorf("core: local write [%d,+%d) outside buffer of %d elements", off, len(vals), b.Count)
	}
	data, err := elemsToBytes(vals)
	if err != nil {
		return err
	}
	return c.rt.backend.Memory().Write(b.Addr+uint64(off*sizeOf[T]()), data)
}
