package core

// Gray-failure resilience: hedged requests and per-target retry budgets.
//
// The fault-tolerance layer (ft.go) handles fail-stop: a request that
// errors is retried. A fail-slow target — degraded DMA, a stalling VEOS
// daemon, a jittery link — never errors; callers just eat the tail
// latency. Hedging bounds that tail: once an offload has been in flight
// for the configured delay (set it near the workload's healthy p99), the
// sealed request is speculatively re-issued to a second healthy node and
// the first settled copy wins. Because the hedge re-posts the same
// sequence-numbered envelope, the dedup window keeps handler execution
// at-most-once per node: a hedge to the same node is answered from the
// cache without re-executing, and retransmissions of either copy dedup as
// usual. A hedge to a *different* node is a genuine speculative
// re-execution (the classic hedged-request trade-off), so cross-node
// hedging is for idempotent work — which offloaded functions overwhelmingly
// are. The runtime's own control messages (allocate, free, terminate,
// ping) are node-pinned and never hedge: they mutate one specific node's
// state, so a speculative copy on another node is wrong, not just wasted
// (see pinnedMessage in ft.go).
//
// The retry budget is the storm brake: every retransmission and every
// hedge spends a token from the target node's bucket, refilled on the
// simulated clock. When a node degrades, the budget caps how much extra
// traffic retries + hedges can aim at it, instead of amplifying the
// overload that made it slow in the first place.
//
// Everything here is off the hot path: with the zero HedgePolicy and zero
// RetryBudget the only cost is one comparison per resolve, wire bytes are
// bit-identical, and the un-armed Dispatch path stays zero-alloc (pinned
// by TestDispatchZeroAllocResilienceConfigured).

import (
	"fmt"

	"hamoffload/internal/faults"
	"hamoffload/internal/simtime"
	"hamoffload/internal/telemetry"
	"hamoffload/internal/trace"
)

// HedgePolicy arms hedged requests on the initiating runtime. Hedging
// requires fault tolerance (the envelope's sequence numbers are what make
// the duplicate safe), and engages on blocking waits (Sync, Future.Get);
// non-blocking Future.Test polls do not hedge.
type HedgePolicy struct {
	// Delay is how long the primary may stay in flight before the hedge is
	// issued, on the simulated clock — set it near the workload's healthy
	// p99. 0 disables hedging. Wall-clock backends (locb, tcpb) have no
	// simulated clock to measure the delay against and hedge immediately.
	Delay simtime.Duration
	// Targets are the candidate nodes for the hedge; the first healthy
	// candidate that differs from the primary target wins. Empty, or no
	// healthy alternative, hedges to the primary node itself, where the
	// dedup window fully suppresses the duplicate execution.
	Targets []NodeID
	// Healthy filters hedge candidates — wire a health tracker's admission
	// check here so hedges avoid ejected nodes. Nil admits every candidate.
	Healthy func(NodeID) bool
	// Seed keys the splitmix64 stream (faults.Mix — the plan's stream, not
	// a fresh source) that jitters the hedge delay per offload, so
	// synchronized slow requests do not hedge in lockstep. 0 disables
	// jitter and every hedge fires at exactly Delay.
	Seed uint64
}

func (h HedgePolicy) enabled() bool { return h.Delay > 0 }

// RetryBudget is a per-target token bucket shared by retries and hedges:
// each retransmission or hedged re-issue to a node spends one token from
// that node's bucket. Tokens refill at one per Refill of simulated time,
// up to the Tokens capacity. The zero value disables budgeting (retries
// bounded only by FaultTolerance.MaxRetries, hedges unbounded).
//
// On wall-clock backends there is no simulated clock to refill against, so
// the bucket is a one-time allowance of Tokens per node.
type RetryBudget struct {
	Tokens int
	Refill simtime.Duration
}

func (b RetryBudget) enabled() bool { return b.Tokens > 0 }

// tokenBucket is one node's budget state.
type tokenBucket struct {
	tokens int
	last   simtime.Time
}

// SetHedging installs the hedged-request policy on the initiating runtime.
// Call it before issuing offloads; hedging only engages for offloads that
// carry a fault-tolerance envelope (SetFaultTolerance with MaxRetries > 0).
func (rt *Runtime) SetHedging(h HedgePolicy) { rt.hedge = h }

// HedgingPolicy returns the installed hedging policy.
func (rt *Runtime) HedgingPolicy() HedgePolicy { return rt.hedge }

// SetRetryBudget installs the per-target retry/hedge token bucket.
func (rt *Runtime) SetRetryBudget(b RetryBudget) { rt.budget = b }

// RetryBudgetPolicy returns the installed retry budget.
func (rt *Runtime) RetryBudgetPolicy() RetryBudget { return rt.budget }

// Hedges returns how many hedged requests this runtime has issued.
func (rt *Runtime) Hedges() int64 { return rt.hedges }

// HedgeWins returns how many offloads were settled by their hedge rather
// than the primary request.
func (rt *Runtime) HedgeWins() int64 { return rt.hedgeWins }

// BudgetDenied returns how many retries or hedges the retry budget
// suppressed.
func (rt *Runtime) BudgetDenied() int64 { return rt.budgetDenied }

// SimNow returns this node's simulated clock: the telemetry clock when one
// is attached, else the backend's, else 0 (wall-clock backends). Health
// trackers and schedulers use it to timestamp observations.
func (rt *Runtime) SimNow() simtime.Time { return rt.telNow() }

// spendToken charges one retry/hedge token against node's bucket and
// reports whether the budget allows the transmission. Always true with the
// budget off, which keeps the un-budgeted path allocation-free.
func (rt *Runtime) spendToken(node NodeID) bool {
	if !rt.budget.enabled() {
		return true
	}
	return rt.spendTokenSlow(node)
}

// spendTokenSlow is the armed-budget path: lazily build the buckets, refill
// node's on the simulated clock, spend one token or deny.
//
//hot:cold
func (rt *Runtime) spendTokenSlow(node NodeID) bool {
	if rt.buckets == nil {
		rt.buckets = make([]tokenBucket, rt.NumNodes())
		now := rt.telNow()
		for i := range rt.buckets {
			rt.buckets[i] = tokenBucket{tokens: rt.budget.Tokens, last: now}
		}
	}
	if int(node) < 0 || int(node) >= len(rt.buckets) {
		return true
	}
	b := &rt.buckets[node]
	if rt.budget.Refill > 0 {
		now := rt.telNow()
		if add := int(now.Sub(b.last) / rt.budget.Refill); add > 0 {
			b.tokens += add
			if b.tokens > rt.budget.Tokens {
				b.tokens = rt.budget.Tokens
			}
			b.last = b.last.Add(simtime.Duration(add) * rt.budget.Refill)
		}
	}
	if b.tokens <= 0 {
		rt.budgetDenied++
		rt.tr.Instant(trace.PhaseRetry, "retry budget exhausted", rt.offloads)
		rt.tr.Count("offload.budget.denied", 1)
		return false
	}
	b.tokens--
	return true
}

// hedgePollQuantum paces the resolveHedged poll loop on simulated
// backends: between unproductive polls the initiator sleeps this long, so
// the loop always advances the simulated clock toward the hedge deadline.
const hedgePollQuantum = 250 * simtime.Nanosecond

// hedgeDelay returns the simulated in-flight time after which pd's hedge
// fires: the configured Delay, jittered per offload from the plan's
// splitmix64 stream when a seed is set (up to +Delay/4).
func (rt *Runtime) hedgeDelay(pd *pending) simtime.Duration {
	d := rt.hedge.Delay
	if rt.hedge.Seed != 0 && d >= 4 {
		d += simtime.Duration(faults.Mix(rt.hedge.Seed, pd.seq) % uint64(d/4))
	}
	return d
}

// hedgeTarget picks the node the hedge goes to: the first configured
// candidate that is not the primary, passes the Healthy filter, and is a
// valid offload target. With no viable alternative the hedge goes back to
// the primary node, where dedup suppresses the duplicate execution.
func (rt *Runtime) hedgeTarget(primary NodeID) NodeID {
	for _, n := range rt.hedge.Targets {
		if n == primary || n == rt.ThisNode() || int(n) < 0 || int(n) >= rt.NumNodes() {
			continue
		}
		if rt.hedge.Healthy != nil && !rt.hedge.Healthy(n) {
			continue
		}
		return n
	}
	return primary
}

// issueHedge re-posts pd's sealed wire bytes to the hedge target, spending
// a budget token. It returns the hedge handle, or nil when the budget
// denied the hedge or the post itself failed (the primary remains the only
// copy in flight; resolveHedged does not retry a failed hedge — the retry
// machinery belongs to the primary).
//
//hot:cold
func (rt *Runtime) issueHedge(pd *pending) Handle {
	node := rt.hedgeTarget(pd.node)
	if !rt.spendToken(node) {
		return nil
	}
	rt.hedges++
	rt.tr.Instant(trace.PhaseHedge, fmt.Sprintf("hedge seq %d -> node %d", pd.seq, node), rt.offloads)
	rt.tr.Count("offload.hedges", 1)
	if rt.tel != nil {
		now := rt.telNow()
		rt.tel.Add(int(node), telemetry.SeriesHedges, now, 1)
		rt.tel.Event(pd.fid, now, int(rt.ThisNode()), telemetry.FlowRetry, "hedge")
	}
	rt.noteSent(node, len(pd.msg))
	h, err := rt.backend.Call(node, pd.msg)
	if err != nil {
		return nil
	}
	return h
}

// reapStrays polls the abandoned hedge losers so their backend slots free
// up as responses arrive. Strays that are still in flight stay queued; the
// backends additionally self-drain (Call waits out a slot's previous
// occupant), so a straggler can delay a later offload but never wedge one.
//
//hot:cold
func (rt *Runtime) reapStrays() {
	kept := rt.strays[:0]
	for _, s := range rt.strays {
		if _, done, err := rt.backend.Poll(s); !done && err == nil {
			kept = append(kept, s)
		}
	}
	rt.strays = kept
}

// resolveHedged is resolve for a hedging-armed runtime: poll the primary,
// issue the hedge once the delay elapses, first settled copy wins, the
// loser is left to the stray reaper. A copy that fails transiently drops
// out of the race; when both copies have failed, the ordinary retry
// machinery takes over.
//
//hot:cold
func (rt *Runtime) resolveHedged(h Handle, pd *pending) ([]byte, error) {
	rt.reapStrays()
	clk, hasClock := rt.backend.(simClock)
	pacer, canPace := rt.backend.(backoffSleeper)
	// The delay measures in-flight time, so it counts from the moment the
	// request was sealed — on protocols whose Call itself advances simulated
	// time (veob's privileged-DMA writes) the primary may already be past the
	// deadline when the caller first blocks.
	start := pd.sentAt
	delay := rt.hedgeDelay(pd)
	hs := [2]Handle{h, nil}
	alive := [2]bool{true, false}
	hedgeTried := false
	var lastErr error
	for {
		// Without a simulated clock the delay is unmeasurable; hedge before
		// the first poll so wall-clock behaviour is deterministic.
		if !hedgeTried && alive[0] && (!hasClock || clk.SimNow().Sub(start) >= delay) {
			hedgeTried = true
			if nh := rt.issueHedge(pd); nh != nil {
				hs[1], alive[1] = nh, true
			}
		}
		progressed := false
		for i := 0; i < 2; i++ {
			if !alive[i] {
				continue
			}
			resp, done, err := rt.backend.Poll(hs[i])
			if !done && err == nil {
				continue
			}
			progressed = true
			if err == nil {
				resp, err = rt.openResponse(pd, resp)
				if err == nil {
					if i == 1 {
						rt.hedgeWins++
						rt.tr.Count("offload.hedge.wins", 1)
					}
					if other := 1 - i; alive[other] {
						rt.strays = append(rt.strays, hs[other])
					}
					return resp, nil
				}
			}
			alive[i] = false
			lastErr = err
		}
		if !alive[0] && !alive[1] {
			// Both copies failed: fall back to the plain retry machinery on
			// the primary target. The re-post becomes the new primary and may
			// hedge again after another delay.
			if !rt.canRetry(pd, lastErr) {
				rt.noteTimeout(lastErr)
				return nil, lastErr
			}
			nh, err := rt.resubmit(pd)
			if err != nil {
				return nil, err
			}
			hs[0], alive[0] = nh, true
			hedgeTried = false
			if hasClock {
				start = clk.SimNow()
			}
			continue
		}
		if !progressed && canPace {
			pacer.Backoff(hedgePollQuantum)
		}
	}
}
