package core

import (
	"encoding/binary"

	"hamoffload/internal/simtime"
	"hamoffload/internal/telemetry"
	"hamoffload/internal/trace"
)

// Continuous telemetry (see internal/telemetry): the runtime records
// per-node time series (in-flight offloads, batch queue depth, retries,
// bytes moved), feeds issue-to-settle latencies to the SLO tracker, and —
// when causal flows are armed — carries a deterministic 64-bit trace ID on
// every wire message so the initiator's issue/flush/retry events and the
// target's execute event link into one causal record.
//
// The trace ID travels in its own frame around whatever the message already
// is (FT envelope or bare HAM message; inside a batch, each entry is framed
// individually):
//
//	[u32 magic][u64 trace id]  then the inner message
//
// Like the FT envelope and the batch frame, detection relies on the magic
// being far above any plain HAM handler key. The frame is only ever added
// when Config.Flows is armed, because 12 extra bytes per message are a
// (deterministic) change to simulated transfer timing; with flows off or no
// collector attached, wire bytes are bit-identical to the un-instrumented
// runtime.

const (
	flowMagic  uint32 = 0xF10DC0DE
	flowHeader        = 4 + 8 // magic + trace id
)

// sealFlow frames inner with its offload's trace ID. Only armed causal
// flows reach it (flowSeal passes bare wire through when no flow is open),
// and armed flows opt in to the instrumentation cost.
//
//hot:cold
func sealFlow(id uint64, inner []byte) []byte {
	out := make([]byte, flowHeader+len(inner))
	binary.LittleEndian.PutUint32(out[0:4], flowMagic)
	binary.LittleEndian.PutUint64(out[4:12], id)
	copy(out[flowHeader:], inner)
	return out
}

// openFlow undoes sealFlow; ok is false when msg carries no flow frame.
func openFlow(msg []byte) (id uint64, inner []byte, ok bool) {
	if len(msg) < flowHeader || binary.LittleEndian.Uint32(msg[0:4]) != flowMagic {
		return 0, nil, false
	}
	return binary.LittleEndian.Uint64(msg[4:12]), msg[flowHeader:], true
}

// SetTelemetry attaches a collector to this runtime. clk supplies recording
// timestamps (the node's simulated clock); when nil, the backend's own clock
// is used if it exposes one, else everything records at t=0. The host and
// target runtimes of one application should share a collector so causal
// records span nodes. A nil collector (the default) disables telemetry at
// the cost of one nil check per instrumentation site.
func (rt *Runtime) SetTelemetry(c *telemetry.Collector, clk trace.Clock) {
	rt.tel = c
	rt.telClock = clk
}

// Telemetry returns the attached collector (nil when telemetry is off).
func (rt *Runtime) Telemetry() *telemetry.Collector { return rt.tel }

// telNow reads the node's simulated clock for telemetry stamps.
func (rt *Runtime) telNow() simtime.Time {
	if rt.telClock != nil {
		return rt.telClock.Now()
	}
	if c, ok := rt.backend.(simClock); ok {
		return c.SimNow()
	}
	return 0
}

// flowSeal wraps one sealed wire message with the current offload's trace
// ID, consuming it. With flows off (or no offload span open) the wire
// passes through untouched. A non-nil pending is rebound to the wrapped
// bytes so retransmissions carry the same trace ID.
func (rt *Runtime) flowSeal(wire []byte, pd *pending) ([]byte, uint64) {
	fid := rt.curFlow
	rt.curFlow = 0
	if fid == 0 {
		return wire, 0
	}
	wrapped := sealFlow(fid, wire)
	if pd != nil {
		pd.msg = wrapped
		pd.fid = fid
	}
	return wrapped, fid
}

// noteSent counts wire bytes shipped to node (every post attempt, including
// retransmissions — the bytes move each time).
func (rt *Runtime) noteSent(node NodeID, n int) {
	if rt.tel == nil {
		return
	}
	rt.tel.Add(int(node), telemetry.SeriesBytes, rt.telNow(), int64(n))
}

// noteExecute records the target-side causal event for a flow-framed
// message, named after the inner HAM message when it can be resolved.
func (rt *Runtime) noteExecute(fid uint64, inner []byte) {
	if rt.tel == nil {
		return
	}
	name := ""
	if _, _, payload, enveloped, err := openMessage(inner); enveloped && err == nil {
		name = rt.bin.MessageName(payload)
	} else {
		name = rt.bin.MessageName(inner)
	}
	rt.tel.Event(fid, rt.telNow(), int(rt.ThisNode()), telemetry.FlowExecute, name)
}

// NotePlacement records a scheduler placement decision on the most recently
// issued offload's causal record: policy is the deciding policy's name, node
// the chosen target. The cluster scheduler calls it right after handing the
// offload to the runtime. A no-op without armed flows.
func (rt *Runtime) NotePlacement(policy string, node NodeID) {
	if rt.tel == nil || rt.lastFlow == 0 {
		return
	}
	rt.tel.Event(rt.lastFlow, rt.telNow(), int(node), telemetry.FlowPlace, policy)
}
