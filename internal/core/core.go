// Package core implements the HAM-Offload runtime — the paper's primary
// contribution, ported from C++ to Go. It provides the programming model of
// Table II (nodes, buffer pointers, futures, synchronous and asynchronous
// offloads, explicit data transfers) on top of Heterogeneous Active Messages
// (internal/ham) and an exchangeable communication backend (internal/backend/...),
// mirroring the layer architecture of Fig. 1.
package core

import (
	"fmt"

	"hamoffload/internal/ham"
	"hamoffload/internal/telemetry"
	"hamoffload/internal/trace"
)

// NodeID addresses one process of a HAM-Offload application. Node 0 is the
// host by convention; offload targets follow.
type NodeID int

// HostNode is the conventional host rank.
const HostNode NodeID = 0

// NodeDescriptor carries static information about a node (Table II's
// node_descriptor).
type NodeDescriptor struct {
	Name   string // e.g. "vh" or "ve0"
	Arch   string // e.g. "x86_64" or "aurora-ve"
	Device string // free-form device description
}

// Handle identifies an in-flight offload at the backend level.
type Handle any

// LocalMemory is the target-local memory a node's built-in allocate/free
// handlers and kernel buffer accessors operate on.
type LocalMemory interface {
	// Alloc reserves n bytes and returns the buffer address.
	Alloc(n int64) (uint64, error)
	// Free releases an allocation made with Alloc.
	Free(addr uint64) error
	// Read copies len(p) bytes from addr into p.
	Read(addr uint64, p []byte) error
	// Write copies data to addr.
	Write(addr uint64, data []byte) error
}

// Backend is the abstract communication layer of Fig. 1. One Backend value
// serves one node: initiator-side methods are used where offloads originate,
// Serve runs the message loop where they execute. The paper's two SX-Aurora
// protocols (backend/veob, backend/dmab), the portable TCP/IP backend
// (backend/tcpb) and the in-process loopback (backend/locb) all implement it.
type Backend interface {
	// Self returns this node's id.
	Self() NodeID
	// NumNodes returns the number of nodes in the application.
	NumNodes() int
	// Descriptor describes a node.
	Descriptor(n NodeID) NodeDescriptor

	// Call posts an active message to the target node and returns a handle
	// for result retrieval. msg may alias a runtime scratch buffer: the
	// backend may read it for the duration of the call (including any parks
	// on a simulated clock) but must not retain it after Call returns —
	// implementations that hand the message to another goroutine or defer
	// the transfer must copy it first. The borrowck analyzer enforces this
	// in every implementation through the annotation below.
	//
	//ham:borrowed msg
	Call(target NodeID, msg []byte) (Handle, error)
	// Wait blocks until the response for h arrives and returns it.
	Wait(h Handle) ([]byte, error)
	// Poll checks for the response without blocking.
	Poll(h Handle) (resp []byte, done bool, err error)

	// Put writes data into target memory at dstAddr (Table II's put).
	Put(target NodeID, data []byte, dstAddr uint64) error
	// Get reads len(dst) bytes from target memory at srcAddr (Table II's get).
	Get(target NodeID, srcAddr uint64, dst []byte) error

	// Serve runs the target-side message loop: receive, dispatch, respond,
	// until the server reports Done (a terminate message executed).
	Serve(s Server) error

	// Memory returns this node's local memory.
	Memory() LocalMemory

	// ChargeVector and ChargeScalar advance this node's notion of compute
	// time for kernel work (roofline model on simulated VEs, no-ops on
	// wall-clock nodes, where the Go computation itself takes the time).
	ChargeVector(flops, bytes int64, cores int)
	ChargeScalar(ops int64)

	// Close releases backend resources on the initiator side.
	Close() error
}

// Server is what a Backend's Serve loop drives; the Runtime implements it.
type Server interface {
	// Dispatch executes one wire message and returns the wire response. The
	// response may alias the server's scratch buffers and is only valid
	// until the next Dispatch call on this server: serve loops must copy or
	// fully consume it (write it to the transport) before dispatching the
	// next message. Both directions are enforced by borrowck: msg is
	// borrowed for the duration of the call, the response is borrowed until
	// the next Dispatch.
	//
	//ham:borrowed msg return
	Dispatch(msg []byte) []byte
	// Done reports whether a terminate message has been executed.
	Done() bool
}

// Runtime is one node's HAM-Offload runtime instance.
type Runtime struct {
	backend Backend
	bin     *ham.Binary
	tr      *trace.NodeTracer // nil disables lifecycle tracing

	terminated bool
	offloads   int64 // initiated offloads, for stats
	executed   int64 // executed messages, for stats

	// Fault tolerance (see ft.go). ft zero = off; seq numbers envelopes on
	// the initiator; dedup is the target-side at-most-once window, created
	// lazily on the first enveloped request.
	ft       FaultTolerance
	seq      uint64
	dedup    *respCache
	retries  int64
	timeouts int64

	// Message batching (see batch.go). The zero policy is off: every
	// offload travels as its own wire message, bit-identical to before.
	batch BatchPolicy

	// Gray-failure resilience (see resilience.go). hedge zero = off; budget
	// zero = unbudgeted. buckets are the per-target token buckets, built
	// lazily on the first armed spend; strays hold abandoned hedge-loser
	// handles until their late responses drain.
	hedge        HedgePolicy
	budget       RetryBudget
	buckets      []tokenBucket
	strays       []Handle
	hedges       int64
	hedgeWins    int64
	budgetDenied int64

	// Continuous telemetry (see telemetry.go). tel nil = off; curFlow is
	// the trace ID of the offload currently being sealed, lastFlow the most
	// recently issued one (for scheduler placement events); inflight counts
	// open offloads per target node for the gauge series.
	tel      *telemetry.Collector
	telClock trace.Clock
	curFlow  uint64
	lastFlow uint64
	inflight map[NodeID]int64

	// Hot-path scratch (see docs/LINTING.md, hotalloc). ctx is the one
	// execution context handed to every handler; respDec settles futures
	// without a per-response decoder; batchScratch is the arena a batch
	// response frame is built in (stolen for the duration of a dispatch so
	// nested frames fall back to fresh buffers); subsScratch backs batch
	// frame splitting the same way; freeBC recycles the per-flush batchCall.
	ctx          Ctx
	respDec      ham.Decoder
	batchScratch []byte
	subsScratch  [][]byte
	freeBC       *batchCall
}

// NewRuntime creates the runtime for one node. arch labels this node's
// "binary" for the heterogeneous address-translation tables; the host and
// target of one application must use different arch strings to model the
// differing code layouts, and all message/function registration must happen
// before the first NewRuntime of the application.
func NewRuntime(b Backend, arch string) *Runtime {
	rt := &Runtime{backend: b, bin: ham.NewBinary(arch)}
	rt.ctx.rt = rt
	return rt
}

// Backend returns the node's communication backend.
func (rt *Runtime) Backend() Backend { return rt.backend }

// Binary returns the node's HAM binary (message table).
func (rt *Runtime) Binary() *ham.Binary { return rt.bin }

// ThisNode returns this process's address (Table II's this_node).
func (rt *Runtime) ThisNode() NodeID { return rt.backend.Self() }

// NumNodes returns the process count (Table II's num_nodes).
func (rt *Runtime) NumNodes() int { return rt.backend.NumNodes() }

// GetNodeDescriptor returns a node's descriptor (Table II).
func (rt *Runtime) GetNodeDescriptor(n NodeID) NodeDescriptor {
	return rt.backend.Descriptor(n)
}

// SetTracer attaches a per-node trace handle. The runtime then records
// lifecycle spans (offload, encode, execute) tagged with this node's id and
// a per-runtime message id. A nil handle (the default) disables tracing.
func (rt *Runtime) SetTracer(nt *trace.NodeTracer) { rt.tr = nt }

// Tracer returns the attached trace handle (nil when tracing is off).
func (rt *Runtime) Tracer() *trace.NodeTracer { return rt.tr }

// Metrics returns this node's metrics registry, or nil when tracing is off.
func (rt *Runtime) Metrics() *trace.Registry { return rt.tr.Registry() }

// Offloads returns how many offloads this runtime has initiated.
func (rt *Runtime) Offloads() int64 { return rt.offloads }

// Executed returns how many messages this runtime has executed.
func (rt *Runtime) Executed() int64 { return rt.executed }

// Dispatch implements Server: it executes one incoming active message
// against this runtime. With tracing attached it wraps the handler in a
// PhaseExecute span named after the message type, so every backend's
// target side reports execution uniformly.
//
// Fault-tolerant (enveloped) requests are validated and deduplicated here,
// transparently to the backends: a failed checksum draws a NACK without
// touching the handler, and a retransmitted sequence number is answered
// from the dedup window — the handler runs at most once per offload no
// matter how often the initiator had to retry.
//
// Batch frames (see batch.go) unpack here too: each entry re-enters
// Dispatch individually, so enveloping and dedup compose with batching.
//
// The returned response may alias per-runtime scratch buffers; it is valid
// only until the next Dispatch on this runtime (see Server).
func (rt *Runtime) Dispatch(msg []byte) []byte {
	if fid, inner, ok := openFlow(msg); ok {
		rt.noteExecute(fid, inner)
		msg = inner
	}
	// The split scratch is stolen for the duration of the batch dispatch so
	// a (hostile) nested batch entry splits into a fresh slice instead of
	// corrupting the outer frame's entry list.
	scratch := rt.subsScratch
	rt.subsScratch = nil
	if subs, isBatch, berr := openBatchInto(scratch[:0], msg); isBatch {
		resp := rt.dispatchBatch(subs, berr)
		rt.subsScratch = subs[:0]
		return resp
	}
	rt.subsScratch = scratch
	_, seq, payload, enveloped, cerr := openMessage(msg)
	if !enveloped {
		return rt.dispatchRaw(msg)
	}
	if cerr != nil {
		rt.tr.Instant(trace.PhaseFault, "corrupt request", rt.executed)
		rt.tr.Count("dispatch.corrupt", 1)
		return sealMessage(envNack, 0, nil)
	}
	if rt.dedup == nil {
		rt.dedup = newRespCache()
	}
	if resp, ok := rt.dedup.get(seq); ok {
		rt.tr.Count("dispatch.dedup", 1)
		return resp
	}
	sealed := sealMessage(envResponse, seq, rt.dispatchRaw(payload))
	rt.dedup.put(seq, sealed)
	return sealed
}

// dispatchRaw executes one bare active message.
//
//ham:borrowed msg return
func (rt *Runtime) dispatchRaw(msg []byte) []byte {
	rt.executed++
	if rt.tr == nil {
		return rt.bin.Dispatch(rt, msg)
	}
	name := rt.bin.MessageName(msg)
	if name == "" {
		name = "(unknown)"
	}
	defer rt.tr.Begin(trace.PhaseExecute, "execute "+name, rt.executed)()
	return rt.bin.Dispatch(rt, msg)
}

// Done implements Server.
func (rt *Runtime) Done() bool { return rt.terminated }

// Serve runs this node's message-processing loop until terminated — the
// body of ham_main on an offload target (§III-C).
func (rt *Runtime) Serve() error {
	return rt.backend.Serve(rt)
}

// beginOffload opens the whole-lifecycle span for the next offload to node
// and returns the closure that closes it when the offload settles. With a
// tracer attached it opens the PhaseOffload span; with telemetry attached it
// additionally bumps the target's in-flight gauge, allocates the offload's
// causal trace ID (flows armed), and — in the returned closure — feeds the
// issue-to-settle latency to the SLO tracker. Without either it is a no-op.
func (rt *Runtime) beginOffload(node NodeID, name string) func() {
	id := rt.offloads + 1
	var endSpan func()
	if rt.tr != nil {
		endSpan = rt.tr.Begin(trace.PhaseOffload, "offload "+name, id)
	}
	if rt.tel == nil {
		if endSpan == nil {
			return func() {}
		}
		return endSpan
	}
	start := rt.telNow()
	var fid uint64
	if rt.tel.FlowsEnabled() {
		fid = rt.tel.NextTraceID()
		rt.tel.Event(fid, start, int(rt.ThisNode()), telemetry.FlowIssue, name)
	}
	rt.curFlow, rt.lastFlow = fid, fid
	if rt.inflight == nil {
		rt.inflight = map[NodeID]int64{}
	}
	rt.inflight[node]++
	rt.tel.Gauge(int(node), telemetry.SeriesInflight, start, rt.inflight[node])
	return func() {
		if endSpan != nil {
			endSpan()
		}
		end := rt.telNow()
		rt.inflight[node]--
		rt.tel.Gauge(int(node), telemetry.SeriesInflight, end, rt.inflight[node])
		rt.tel.ObserveLatency(end, end.Sub(start))
		rt.tel.Event(fid, end, int(rt.ThisNode()), telemetry.FlowSettle, name)
	}
}

// callAsync posts the named message with the given payload. With fault
// tolerance enabled the message is sealed in a checksummed envelope and the
// returned pending carries the retransmission state; transient failures of
// the post itself are retried here.
//
//hot:path
func (rt *Runtime) callAsync(node NodeID, name string, payload func(*ham.Encoder)) (Handle, *pending, error) {
	if node == rt.ThisNode() {
		return nil, nil, errOffloadSelf(node)
	}
	if int(node) < 0 || int(node) >= rt.NumNodes() {
		return nil, nil, errNoNode(node, rt.NumNodes())
	}
	var endEnc func()
	if rt.tr != nil {
		endEnc = rt.tr.Begin(trace.PhaseEncode, "encode "+name, rt.offloads+1)
	}
	msg, err := rt.bin.EncodeRequest(name, payload)
	if endEnc != nil {
		endEnc()
	}
	if err != nil {
		return nil, nil, err
	}
	rt.offloads++
	wire, pd := rt.seal(node, msg)
	if pd != nil && pinnedMessage(name) {
		pd.pinned = true
	}
	wire, _ = rt.flowSeal(wire, pd)
	rt.noteSent(node, len(wire))
	h, err := rt.backend.Call(node, wire)
	if err != nil && rt.canRetry(pd, err) {
		h, err = rt.resubmit(pd)
	}
	if err != nil {
		return nil, nil, err
	}
	return h, pd, nil
}

// errOffloadSelf and errNoNode render the target-validation failures; split
// out of callAsync so the successful offload path carries no formatting.
//
//hot:cold
func errOffloadSelf(node NodeID) error {
	return fmt.Errorf("core: offload to self (node %d) is not supported", node)
}

//hot:cold
func errNoNode(node NodeID, n int) error {
	return fmt.Errorf("core: no node %d in this application (%d nodes)", node, n)
}

// callSync posts the message and waits for its response payload.
func (rt *Runtime) callSync(node NodeID, name string, payload func(*ham.Encoder)) (*ham.Decoder, error) {
	endOff := rt.beginOffload(node, name)
	defer endOff()
	h, pd, err := rt.callAsync(node, name, payload)
	if err != nil {
		return nil, err
	}
	resp, err := rt.resolve(h, pd)
	if err != nil {
		return nil, err
	}
	return ham.DecodeResponse(resp)
}

// Finalize sends terminate messages to all other nodes and closes the
// backend. Call it on the host once the application is done.
func (rt *Runtime) Finalize() error {
	var firstErr error
	for n := 0; n < rt.NumNodes(); n++ {
		if NodeID(n) == rt.ThisNode() {
			continue
		}
		if _, err := rt.callSync(NodeID(n), msgTerminate, nil); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: terminating node %d: %w", n, err)
		}
	}
	if err := rt.backend.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
