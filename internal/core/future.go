package core

import "hamoffload/internal/ham"

// Future is the lazy synchronisation object returned by asynchronous
// offloads (Table II's future<T>): Test polls without blocking, Get blocks
// until the result message arrived and decodes it.
type Future[T any] struct {
	rt     *Runtime
	h      Handle
	pd     *pending // fault-tolerance retransmission state, nil with FT off
	decode func(*ham.Decoder) (T, error)

	// bt, when set, marks this future as one entry of a batch frame (see
	// batch.go): resolution goes through the shared batchCall instead of a
	// private backend handle. btv is the ticket's storage, embedded so a
	// batched future needs no second allocation; bt points at btv.
	bt  *batchTicket
	btv batchTicket

	// onDone, when set, fires exactly once as the future settles or fails;
	// the runtime uses it to close the offload lifecycle span.
	onDone func()

	done bool
	val  T
	err  error
}

// Test reports whether the result is available, without blocking. Under a
// fault-tolerance policy a transient failure observed here re-posts the
// request and keeps the future in flight.
func (f *Future[T]) Test() bool {
	if f.done {
		return true
	}
	if f.bt != nil {
		// A still-queued frame cannot complete on its own; force it out so
		// polling makes progress, then poll the shared call.
		f.bt.ensureFlushed()
		f.bt.bc.poll()
		return f.done
	}
	resp, h, done, err := f.rt.pollResolved(f.h, f.pd)
	f.h = h
	if !done {
		return false
	}
	if err != nil {
		f.fail(err)
		return true
	}
	f.settle(resp)
	return true
}

// Get blocks until the offload completed and returns its result.
func (f *Future[T]) Get() (T, error) {
	if f.done {
		return f.val, f.err
	}
	if f.bt != nil {
		f.bt.ensureFlushed()
		f.bt.bc.resolve()
		return f.val, f.err
	}
	resp, err := f.rt.resolve(f.h, f.pd)
	if err != nil {
		f.fail(err)
		return f.val, f.err
	}
	f.settle(resp)
	return f.val, f.err
}

// OnSettle registers fn to run once when the future completes, after any
// result decoding; a future that already completed runs it immediately.
// The cluster scheduler uses it for in-flight accounting.
func (f *Future[T]) OnSettle(fn func()) {
	if f.done {
		fn()
		return
	}
	prev := f.onDone
	f.onDone = func() {
		if prev != nil {
			prev()
		}
		fn()
	}
}

// MustGet is Get for cases where a remote failure is a programming error.
func (f *Future[T]) MustGet() T {
	v, err := f.Get()
	if err != nil {
		panic(err)
	}
	return v
}

func (f *Future[T]) fail(err error) {
	if f.done {
		return
	}
	f.done = true
	f.err = err
	f.fireDone()
}

func (f *Future[T]) settle(resp []byte) {
	if f.done {
		return
	}
	f.done = true
	// Settling is strictly sequential per runtime, so the runtime's scratch
	// decoder serves every future; decoded slices and strings are copied out
	// by the Decoder accessors, so nothing aliases the scratch afterwards.
	dec, err := ham.DecodeResponseInto(&f.rt.respDec, resp)
	if err != nil {
		f.err = err
		f.fireDone()
		return
	}
	f.val, f.err = f.decode(dec)
	f.fireDone()
}

func (f *Future[T]) fireDone() {
	if f.onDone != nil {
		f.onDone()
		f.onDone = nil
	}
}

// newFuture wires a backend handle to a result decoder.
func newFuture[T any](rt *Runtime, h Handle, decode func(*ham.Decoder) (T, error)) *Future[T] {
	return &Future[T]{rt: rt, h: h, decode: decode} //lint:allow hotalloc one future per offload is the API contract
}

// completedFuture wraps an already-finished operation, for the data-transfer
// variants whose backends complete eagerly.
func completedFuture[T any](val T, err error) *Future[T] {
	return &Future[T]{done: true, val: val, err: err}
}

// failedFuture builds a future that failed before it was posted, closing the
// offload span through onDone like a settled one would.
//
//hot:cold
func failedFuture[T any](rt *Runtime, onDone func(), err error) *Future[T] {
	f := &Future[T]{rt: rt, onDone: onDone}
	f.fail(err)
	return f
}
