package core

import "hamoffload/internal/ham"

// Future is the lazy synchronisation object returned by asynchronous
// offloads (Table II's future<T>): Test polls without blocking, Get blocks
// until the result message arrived and decodes it.
type Future[T any] struct {
	rt     *Runtime
	h      Handle
	pd     *pending // fault-tolerance retransmission state, nil with FT off
	decode func(*ham.Decoder) (T, error)

	// onDone, when set, fires exactly once as the future settles or fails;
	// the runtime uses it to close the offload lifecycle span.
	onDone func()

	done bool
	val  T
	err  error
}

// Test reports whether the result is available, without blocking. Under a
// fault-tolerance policy a transient failure observed here re-posts the
// request and keeps the future in flight.
func (f *Future[T]) Test() bool {
	if f.done {
		return true
	}
	resp, h, done, err := f.rt.pollResolved(f.h, f.pd)
	f.h = h
	if !done {
		return false
	}
	if err != nil {
		f.fail(err)
		return true
	}
	f.settle(resp)
	return true
}

// Get blocks until the offload completed and returns its result.
func (f *Future[T]) Get() (T, error) {
	if f.done {
		return f.val, f.err
	}
	resp, err := f.rt.resolve(f.h, f.pd)
	if err != nil {
		f.fail(err)
		return f.val, f.err
	}
	f.settle(resp)
	return f.val, f.err
}

// MustGet is Get for cases where a remote failure is a programming error.
func (f *Future[T]) MustGet() T {
	v, err := f.Get()
	if err != nil {
		panic(err)
	}
	return v
}

func (f *Future[T]) fail(err error) {
	f.done = true
	f.err = err
	f.fireDone()
}

func (f *Future[T]) settle(resp []byte) {
	f.done = true
	dec, err := ham.DecodeResponse(resp)
	if err != nil {
		f.err = err
		f.fireDone()
		return
	}
	f.val, f.err = f.decode(dec)
	f.fireDone()
}

func (f *Future[T]) fireDone() {
	if f.onDone != nil {
		f.onDone()
		f.onDone = nil
	}
}

// newFuture wires a backend handle to a result decoder.
func newFuture[T any](rt *Runtime, h Handle, decode func(*ham.Decoder) (T, error)) *Future[T] {
	return &Future[T]{rt: rt, h: h, decode: decode}
}

// completedFuture wraps an already-finished operation, for the data-transfer
// variants whose backends complete eagerly.
func completedFuture[T any](val T, err error) *Future[T] {
	return &Future[T]{done: true, val: val, err: err}
}
