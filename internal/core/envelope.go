package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Fault-tolerant message envelope. When a runtime has fault tolerance
// enabled, every offload request travels as
//
//	[u32 magic][u32 crc][u64 seq][u8 kind][payload]
//
// with crc = CRC-32 (IEEE) over seq..payload, so any damaged byte — header
// or payload — fails verification. The target answers with the same frame
// (kind envResponse, the response as payload) or, on a checksum mismatch,
// an empty envNack, and remembers recent sequence numbers with their sealed
// responses so a retransmitted request is answered from cache instead of
// re-executing the handler: at-most-once execution survives retries.
//
// The envelope is strictly opt-in on the initiator, which keeps un-faulted
// wire traffic byte-identical to the non-FT protocol. Detection on the
// target is unambiguous: a plain HAM request starts with a u32 handler key,
// a small index into the sorted handler table, which can never equal the
// magic.

const (
	envMagic  uint32 = 0xFA17C0DE
	envHeader        = 4 + 4 + 8 + 1

	envRequest  byte = 1
	envResponse byte = 2
	envNack     byte = 3
)

// sealMessage frames payload in an envelope of the given kind.
func sealMessage(kind byte, seq uint64, payload []byte) []byte {
	out := make([]byte, envHeader+len(payload)) //lint:allow hotalloc envelopes are retained by the dedup window and FT retransmission
	binary.LittleEndian.PutUint32(out[0:4], envMagic)
	binary.LittleEndian.PutUint64(out[8:16], seq)
	out[16] = kind
	copy(out[envHeader:], payload)
	binary.LittleEndian.PutUint32(out[4:8], crc32.ChecksumIEEE(out[8:]))
	return out
}

// openMessage undoes sealMessage. enveloped is false when msg does not
// carry the magic (a plain HAM message). A magic match with a failing
// checksum returns enveloped = true and an ErrPayloadCorrupt error; the
// other fields are then untrustworthy.
func openMessage(msg []byte) (kind byte, seq uint64, payload []byte, enveloped bool, err error) {
	if len(msg) < envHeader || binary.LittleEndian.Uint32(msg[0:4]) != envMagic {
		return 0, 0, nil, false, nil
	}
	if crc32.ChecksumIEEE(msg[8:]) != binary.LittleEndian.Uint32(msg[4:8]) {
		return 0, 0, nil, true, fmt.Errorf("%w: envelope checksum mismatch", ErrPayloadCorrupt) //lint:allow hotalloc corrupt-envelope path: runs at most once per damaged frame
	}
	return msg[16], binary.LittleEndian.Uint64(msg[8:16]), msg[envHeader:], true, nil
}

// respCache is the target-side dedup window: the sealed responses of the
// most recent executed sequence numbers, bounded FIFO. 64 entries is far
// beyond any backend's in-flight window (slot counts are single-digit),
// so a retransmission always finds its original answer.
type respCache struct {
	resp  map[uint64][]byte
	order []uint64
	limit int
}

// newRespCache runs once per runtime, on the first enveloped request.
//
//hot:cold
func newRespCache() *respCache {
	return &respCache{resp: make(map[uint64][]byte), limit: 64}
}

func (c *respCache) get(seq uint64) ([]byte, bool) {
	r, ok := c.resp[seq]
	return r, ok
}

func (c *respCache) put(seq uint64, sealed []byte) {
	if _, dup := c.resp[seq]; dup {
		return
	}
	if len(c.order) >= c.limit {
		delete(c.resp, c.order[0])
		c.order = c.order[1:]
	}
	c.resp[seq] = sealed
	c.order = append(c.order, seq) //lint:allow hotalloc FT-only dedup window, bounded at 64 entries
}
